//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic byte-mutation driver shared by the fuzz harnesses. When
/// the toolchain has libFuzzer the harnesses link -fsanitize=fuzzer and
/// this file is unused beyond the RNG; otherwise each harness's main()
/// runs a fixed-seed mutation loop over its valid seed corpus, so the
/// "fuzz" targets stay meaningful (and runnable as plain ctest tests) on
/// every toolchain. Fixed seed means a failure reproduces exactly from
/// the reported iteration number.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FUZZ_FUZZMUTATE_H
#define ACE_FUZZ_FUZZMUTATE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ace {
namespace fuzz {

/// xorshift64* - tiny deterministic RNG, independent of libc rand state.
class Rand {
public:
  explicit Rand(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, Bound); Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

/// Applies 1..8 random mutations to \p Data in place: bit flips, byte
/// sets, truncations, extensions, and splices from \p Other (another
/// valid blob, to synthesize tag/length confusions).
inline void mutate(std::vector<uint8_t> &Data, Rand &R,
                   const std::vector<uint8_t> &Other) {
  size_t Rounds = 1 + R.below(8);
  for (size_t I = 0; I < Rounds; ++I) {
    switch (R.below(6)) {
    case 0: // flip one bit
      if (!Data.empty())
        Data[R.below(Data.size())] ^= uint8_t(1) << R.below(8);
      break;
    case 1: // overwrite one byte
      if (!Data.empty())
        Data[R.below(Data.size())] = static_cast<uint8_t>(R.next());
      break;
    case 2: // truncate
      if (!Data.empty())
        Data.resize(R.below(Data.size() + 1));
      break;
    case 3: // extend with random bytes
      for (size_t J = 0, E = 1 + R.below(32); J < E; ++J)
        Data.push_back(static_cast<uint8_t>(R.next()));
      break;
    case 4: { // overwrite a 4-byte window (hits length/CRC fields)
      if (Data.size() >= 4) {
        size_t At = R.below(Data.size() - 3);
        for (size_t J = 0; J < 4; ++J)
          Data[At + J] = static_cast<uint8_t>(R.next());
      }
      break;
    }
    case 5: { // splice a window from the other blob
      if (!Other.empty() && !Data.empty()) {
        size_t SrcAt = R.below(Other.size());
        size_t Len = 1 + R.below(Other.size() - SrcAt);
        size_t DstAt = R.below(Data.size());
        if (Len > Data.size() - DstAt)
          Len = Data.size() - DstAt;
        for (size_t J = 0; J < Len; ++J)
          Data[DstAt + J] = Other[SrcAt + J];
      }
      break;
    }
    }
  }
}

} // namespace fuzz
} // namespace ace

#endif // ACE_FUZZ_FUZZMUTATE_H
