//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Fuzz harness for the wire-format deserializers. One input buffer is fed
// to every loader (buffer and stream variants); the contract under test is
// the docs/serialization.md trust boundary: any byte sequence either
// parses into a fully validated object or fails with a clean Status -
// never a crash, hang, over-allocation, or sanitizer report.
//
// With ACE_ENABLE_LIBFUZZER (clang only) this builds against libFuzzer.
// Otherwise main() runs a deterministic seeded mutation loop over valid
// serialized objects, registered in ctest as FuzzSmoke.Deserialize.
//
//===----------------------------------------------------------------------===//

#include "fhe/Encoder.h"
#include "fhe/Encryptor.h"
#include "fhe/Serializer.h"

#include "FuzzMutate.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace ace;
using namespace ace::fhe;

namespace {

/// Deliberately tiny parameters so mutated residue arrays stay cheap to
/// validate; shared by the harness and the corpus generator
/// (tests/make_wire_corpus.cpp), which must agree on them.
const Context &fuzzContext() {
  static Context *Ctx = [] {
    CkksParams P;
    P.RingDegree = 32;
    P.Slots = 8;
    P.LogScale = 30;
    P.LogFirstModulus = 40;
    P.NumRescaleModuli = 2;
    P.LogSpecialModulus = 45;
    P.Seed = 7;
    return new Context(P);
  }();
  return *Ctx;
}

/// Consumes a load result; the harness only cares that it returned.
template <typename T> void sink(const StatusOr<T> &R) {
  if (R.ok())
    (void)*R;
  else
    (void)R.status().message().size();
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  const Context &Ctx = fuzzContext();
  sink(wire::loadParams(Data, Size));
  sink(wire::loadPlaintext(Ctx, Data, Size));
  sink(wire::loadCiphertext(Ctx, Data, Size));
  sink(wire::loadPublicKey(Ctx, Data, Size));
  sink(wire::loadSecretKey(Ctx, Data, Size));
  sink(wire::loadSwitchKey(Ctx, Data, Size));
  sink(wire::loadEvalKeys(Ctx, Data, Size));
  // Stream variants go through the separate header-then-payload read path.
  {
    std::istringstream IS(
        std::string(reinterpret_cast<const char *>(Data), Size));
    sink(wire::loadCiphertext(Ctx, IS));
  }
  {
    std::istringstream IS(
        std::string(reinterpret_cast<const char *>(Data), Size));
    sink(wire::loadParams(IS));
  }
  return 0;
}

#ifndef ACE_USE_LIBFUZZER

int main(int argc, char **argv) {
  size_t Iterations = 2000;
  if (argc > 1)
    Iterations = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  const Context &Ctx = fuzzContext();
  Encoder Enc(Ctx);
  KeyGenerator Gen(Ctx);
  PublicKey Pub = Gen.makePublicKey();
  Encryptor Encrypt(Ctx, Pub);

  EvalKeys Keys;
  Gen.fillEvalKeys(Keys, {1, 2}, /*NeedRelin=*/true, /*NeedConjugate=*/true);

  Plaintext Pt = Enc.encodeReal({0.5, -1.25, 3.0}, Ctx.scale(), 2);
  Ciphertext Ct = Encrypt.encrypt(Pt);

  // One valid serialized blob per object type.
  std::vector<std::vector<uint8_t>> Seeds(7);
  Status S = Status::success();
  auto Add = [&](Status New) {
    if (S.ok())
      S = std::move(New);
  };
  Add(wire::save(Ctx.params(), Seeds[0]));
  Add(wire::save(Pt, Seeds[1]));
  Add(wire::save(Ct, Seeds[2]));
  Add(wire::save(Pub, Seeds[3]));
  Add(wire::save(Gen.secretKey(), Seeds[4]));
  Add(wire::save(Keys.Relin, Seeds[5]));
  Add(wire::save(Keys, Seeds[6]));
  if (!S.ok()) {
    std::fprintf(stderr, "seed generation failed: %s\n",
                 S.message().c_str());
    return 1;
  }

  // Pristine seeds must survive the harness too (round-trip smoke).
  for (const auto &Seed : Seeds)
    LLVMFuzzerTestOneInput(Seed.data(), Seed.size());

  fuzz::Rand R(0xACE4F5EEDull);
  for (size_t I = 0; I < Iterations; ++I) {
    std::vector<uint8_t> Input;
    if (R.below(16) == 0) { // occasionally: pure garbage
      Input.resize(R.below(512));
      for (auto &B : Input)
        B = static_cast<uint8_t>(R.next());
    } else {
      Input = Seeds[R.below(Seeds.size())];
      fuzz::mutate(Input, R, Seeds[R.below(Seeds.size())]);
    }
    LLVMFuzzerTestOneInput(Input.data(), Input.size());
  }
  std::printf("fuzz_deserialize: %zu iterations, no crashes\n", Iterations);
  return 0;
}

#endif // !ACE_USE_LIBFUZZER
