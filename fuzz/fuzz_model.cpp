//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Fuzz harness for the acemodel text parser (onnx::parseModel). Model
// files arrive with the workload and are attacker-controllable, so the
// parser must reject any mutation with a clean Status: no crash, no
// unbounded allocation from forged count fields, no dangling references
// surviving into the compiler.
//
// With ACE_ENABLE_LIBFUZZER this builds against libFuzzer; otherwise
// main() runs a deterministic seeded mutation loop over the model zoo's
// serialized models, registered in ctest as FuzzSmoke.Model.
//
//===----------------------------------------------------------------------===//

#include "nn/ModelZoo.h"
#include "onnx/Model.h"

#include "FuzzMutate.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace ace;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Text(reinterpret_cast<const char *>(Data), Size);
  auto M = onnx::parseModel(Text);
  if (M.ok()) {
    // A parse that succeeds must yield a self-consistent model: the
    // round trip through the serializer must parse again.
    std::string Again = onnx::serializeModel(*M);
    (void)onnx::parseModel(Again);
  } else {
    (void)M.status().message().size();
  }
  return 0;
}

#ifndef ACE_USE_LIBFUZZER

int main(int argc, char **argv) {
  size_t Iterations = 2000;
  if (argc > 1)
    Iterations = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  std::vector<std::vector<uint8_t>> Seeds;
  for (const std::string &Text :
       {onnx::serializeModel(nn::buildLinearInfer(42)),
        onnx::serializeModel(nn::buildMlp({84, 32, 10}, 43))}) {
    Seeds.emplace_back(Text.begin(), Text.end());
  }

  for (const auto &Seed : Seeds)
    LLVMFuzzerTestOneInput(Seed.data(), Seed.size());

  fuzz::Rand R(0xACE50DE1ull);
  for (size_t I = 0; I < Iterations; ++I) {
    std::vector<uint8_t> Input;
    if (R.below(16) == 0) {
      Input.resize(R.below(512));
      for (auto &B : Input)
        B = static_cast<uint8_t>(R.next());
    } else {
      Input = Seeds[R.below(Seeds.size())];
      fuzz::mutate(Input, R, Seeds[R.below(Seeds.size())]);
    }
    LLVMFuzzerTestOneInput(Input.data(), Input.size());
  }
  std::printf("fuzz_model: %zu iterations, no crashes\n", Iterations);
  return 0;
}

#endif // !ACE_USE_LIBFUZZER
