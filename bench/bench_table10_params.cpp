//===----------------------------------------------------------------------===//
// Paper Table 10: security parameters selected automatically by the
// compiler for each model at 128-bit security. The paper reports
// log2(N) = 16, log2(Q0) = 60, log2(Delta) = 56 across all six ResNets;
// the reproduction reports the same production-parameter selection next
// to the toy parameters actually used for fast single-core execution.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cmath>
#include <cstdio>

using namespace ace;
using namespace ace::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/6, /*DefaultImages=*/0);
  auto Models = buildPaperModels(Args.Models);

  std::printf("=== Table 10: automatically selected security parameters "
              "===\n");
  std::printf("%-18s | %-26s | %-26s\n", "",
              "128-bit production params", "toy execution params");
  std::printf("%-18s | %6s %8s %9s | %6s %8s %9s %5s\n", "model", "log2N",
              "log2Q0", "log2Delta", "log2N", "log2Q0", "log2Delta",
              "chain");
  std::string Rows;
  for (auto &M : Models) {
    auto R = compileOrDie(M.Model, M.Data, benchOptions());
    const auto &P = R->State.SelectedParams;
    int LogNToy = static_cast<int>(std::log2(P.RingDegree));
    int LogNSec = static_cast<int>(std::log2(R->State.SecureRingDegree));
    std::printf("%-18s | %6d %8d %9d | %6d %8d %9d %5d\n",
                M.Spec.Name.c_str(), LogNSec, 60, 56, LogNToy,
                P.LogFirstModulus, P.LogScale, P.NumRescaleModuli + 1);
    char Row[256];
    std::snprintf(Row, sizeof(Row),
                  "{\"model\": \"%s\", \"secure_log2n\": %d, "
                  "\"toy_log2n\": %d, \"toy_log2q0\": %d, "
                  "\"toy_log2delta\": %d, \"chain\": %d}",
                  M.Spec.Name.c_str(), LogNSec, LogNToy, P.LogFirstModulus,
                  P.LogScale, P.NumRescaleModuli + 1);
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }
  std::printf("\n(paper Table 10: log2N=16, log2Q0=60, log2Delta=56 for "
              "every model)\n");
  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "table10_params", "[" + Rows + "]");
  return 0;
}
