//===----------------------------------------------------------------------===//
// Ablation study over the design choices DESIGN.md calls out: each of the
// compiler automations (rotation-key analysis, minimal-level
// bootstrapping, delayed rescale placement) is disabled in isolation on
// nano-resnet-20; the deltas decompose the ACE-vs-Expert gap of Figs. 6-7.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

namespace {

struct Sample {
  double Seconds = 0;
  size_t KeyBytes = 0;
  size_t KeyCount = 0;
  size_t Rotations = 0;
};

Sample runOne(const BenchModel &M, const air::CompileOptions &Opt) {
  auto R = compileOrDie(M.Model, M.Data, Opt);
  codegen::CkksExecutor Exec(R->Program, R->State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    std::exit(1);
  }
  WallTimer Clock;
  auto Logits = Exec.infer(M.Data.Images[0]);
  if (!Logits.ok())
    std::exit(1);
  Sample Out;
  Out.Seconds = Clock.seconds();
  Out.KeyBytes = Exec.memory().evaluationKeyBytes();
  Out.KeyCount = Exec.evalKeys().rotationKeyCount();
  Out.Rotations = Exec.counters().Rotate;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/1, /*DefaultImages=*/0);
  auto Models = buildPaperModels(1);
  BenchModel &M = Models[0];

  struct Config {
    const char *Name;
    air::CompileOptions Opt;
  };
  air::CompileOptions Base = benchOptions();
  std::vector<Config> Configs;
  Configs.push_back({"all-optimizations", Base});
  {
    auto O = Base;
    O.EnableRotationKeyAnalysis = false;
    Configs.push_back({"no-rotation-key-analysis", O});
  }
  {
    auto O = Base;
    O.EnableMinimalBootstrapLevel = false;
    O.ExpertMarginLevels = 3;
    Configs.push_back({"no-minimal-bootstrap", O});
  }
  {
    auto O = Base;
    O.EnableRescalePlacement = false;
    Configs.push_back({"no-delayed-rescale", O});
  }
  Configs.push_back({"expert-(all-off)", expert::expertOptions(Base)});

  std::printf("=== Ablation on %s: one encrypted inference ===\n",
              M.Spec.Name.c_str());
  std::printf("%-26s | %8s %8s %9s %12s\n", "configuration", "seconds",
              "rotkeys", "rotations", "key-memory");
  std::string Rows;
  for (auto &C : Configs) {
    Sample S = runOne(M, C.Opt);
    std::printf("%-26s | %8.2f %8zu %9zu %12s\n", C.Name, S.Seconds,
                S.KeyCount, S.Rotations, formatBytes(S.KeyBytes).c_str());
    char Row[256];
    std::snprintf(Row, sizeof(Row),
                  "{\"config\": \"%s\", \"seconds\": %.4f, "
                  "\"rotkeys\": %zu, \"rotations\": %zu, "
                  "\"key_bytes\": %zu}",
                  C.Name, S.Seconds, S.KeyCount, S.Rotations, S.KeyBytes);
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }
  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "ablation", "[" + Rows + "]");
  return 0;
}
