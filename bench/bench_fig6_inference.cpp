//===----------------------------------------------------------------------===//
// Paper Figure 6: per-image encrypted inference time, ANT-ACE (left)
// versus the Expert hand-tuned baseline (right), broken down into Conv,
// Bootstrap and ReLU. Expected shape: ACE wins on every model; the paper
// reports Conv -31.5%, Bootstrap -63.3%, ReLU -44.6%, 2.24x average.
//
// Defaults cover the two smallest models (single-core friendly); pass
// --all or --models=N for the full sweep. --thread-sweep instead runs
// the MLP end-to-end at 1/2/4/8 worker threads, verifies the decrypted
// logits are bit-identical at every count, and reports the speedup
// (docs/performance.md quotes this table). --pipeline-sweep compiles
// the MLP under each rescale-placement mode and packing strategy
// (docs/compiler.md) and reports compiled op budgets plus measured
// per-image seconds per policy. --json=PATH writes any mode's numbers
// with git-rev/build-type/threads metadata.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Telemetry.h"

#include <cstdio>
#include <cstring>

using namespace ace;
using namespace ace::bench;

namespace {

struct RunResult {
  double Conv = 0, Boot = 0, Relu = 0, Pool = 0, Gemm = 0, Other = 0;
  uint64_t CtCtMuls = 0, Rotations = 0, Bootstraps = 0;
  double total() const { return Conv + Boot + Relu + Pool + Gemm + Other; }
};

RunResult runOne(const BenchModel &M, const air::CompileOptions &Opt) {
  // Region breakdown and op counts both come from telemetry: the
  // executor's region spans accumulate per origin-operator phase times,
  // and the evaluator hooks count the FHE ops behind them.
  telemetry::Telemetry &Tel = telemetry::Telemetry::instance();
  Tel.clear();
  auto R = compileOrDie(M.Model, M.Data, Opt);
  codegen::CkksExecutor Exec(R->Program, R->State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    std::exit(1);
  }
  telemetry::CounterSnapshot Before = Tel.counters();
  auto Logits = Exec.infer(M.Data.Images[0]);
  if (!Logits.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 Logits.status().message().c_str());
    std::exit(1);
  }
  telemetry::CounterSnapshot Ops = Tel.counters().deltaSince(Before);
  RunResult Out;
  Out.Conv = Tel.phaseSeconds("conv");
  Out.Boot = Tel.phaseSeconds("bootstrap");
  Out.Relu = Tel.phaseSeconds("relu");
  Out.Pool = Tel.phaseSeconds("pool");
  Out.Gemm = Tel.phaseSeconds("gemm");
  Out.Other = Tel.phaseSeconds("add") + Tel.phaseSeconds("other") +
              Tel.phaseSeconds("input");
  Out.CtCtMuls = Ops.get(telemetry::Counter::CtCtMul);
  Out.Rotations = Ops.get(telemetry::Counter::Rotate);
  Out.Bootstraps = Ops.get(telemetry::Counter::Bootstrap);
  return Out;
}

// Runs the 2-hidden-layer MLP end to end at 1/2/4/8 worker threads:
// compile and key-setup once, encrypt the input once, then time run()
// at each thread count and require the decrypted logits to be
// bit-identical to the single-threaded reference (the pool's
// determinism guarantee, see support/ThreadPool.h).
int runThreadSweep(const std::string &JsonPath) {
  const int Classes = 6;
  onnx::Model Model = nn::buildMlp({24, 16, 12, Classes}, 31);
  nn::Dataset Data = nn::makeSyntheticDataset({1, 24}, Classes,
                                              /*Count=*/8,
                                              /*NoiseSigma=*/0.1, 77);
  auto R = compileOrDie(Model, Data, benchOptions());
  codegen::CkksExecutor Exec(R->Program, R->State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    return 1;
  }
  // Encrypt once so every thread count evaluates the same ciphertext
  // (infer() re-encrypts and would advance the RNG between runs).
  auto Ct = Exec.encryptInput(Data.Images[0]);
  if (!Ct.ok()) {
    std::fprintf(stderr, "encrypt failed: %s\n",
                 Ct.status().message().c_str());
    return 1;
  }

  std::printf("=== Thread sweep: MLP encrypted inference ===\n");
  std::printf("%8s %10s %9s  %s\n", "threads", "seconds", "speedup",
              "logits");
  std::vector<double> Reference;
  std::string Rows;
  double Serial = 0;
  bool AllIdentical = true;
  for (size_t T : {1, 2, 4, 8}) {
    ThreadPool::instance().setNumThreads(T);
    WallTimer Clock;
    auto Out = Exec.run(*Ct);
    if (!Out.ok()) {
      std::fprintf(stderr, "inference failed at %zu threads: %s\n", T,
                   Out.status().message().c_str());
      return 1;
    }
    double Seconds = Clock.seconds();
    auto LogitsOr = Exec.decryptLogits(*Out);
    if (!LogitsOr.ok()) {
      std::fprintf(stderr, "decrypt failed: %s\n",
                   LogitsOr.status().message().c_str());
      return 1;
    }
    bool Identical = true;
    if (T == 1) {
      Reference = *LogitsOr;
      Serial = Seconds;
    } else {
      Identical =
          LogitsOr->size() == Reference.size() &&
          std::memcmp(LogitsOr->data(), Reference.data(),
                      Reference.size() * sizeof(double)) == 0;
      AllIdentical = AllIdentical && Identical;
    }
    std::printf("%8zu %10.2f %8.2fx  %s\n", T, Seconds,
                Serial / Seconds,
                Identical ? "bit-identical" : "MISMATCH");
    char Row[128];
    std::snprintf(Row, sizeof(Row),
                  "%s{\"threads\": %zu, \"seconds\": %.4f, "
                  "\"bit_identical\": %s}",
                  Rows.empty() ? "" : ",\n  ", T, Seconds,
                  Identical ? "true" : "false");
    Rows += Row;
  }
  ThreadPool::instance().setNumThreads(0); // back to the env default
  if (!JsonPath.empty())
    writeBenchJson(JsonPath, "fig6_thread_sweep", "[" + Rows + "]");
  if (!AllIdentical) {
    std::fprintf(stderr, "determinism violation: logits differ across "
                         "thread counts\n");
    return 1;
  }
  return 0;
}

// Compiles the MLP under each rescale-placement policy (packing pinned
// to bsgs) and, under lazy placement, each packing strategy, then runs
// one encrypted image per policy. The compiled rescale/relin budget is
// the headline (EXPERIMENTS.md quotes it); the measured seconds show
// the runtime saving the removed ops buy.
int runPipelineSweep(const std::string &JsonPath) {
  const int Classes = 6;
  onnx::Model Model = nn::buildMlp({24, 16, 12, Classes}, 31);
  nn::Dataset Data = nn::makeSyntheticDataset({1, 24}, Classes,
                                              /*Count=*/8,
                                              /*NoiseSigma=*/0.1, 77);

  struct Leg {
    RescaleMode Rescale;
    PackingStrategy Packing;
  };
  const Leg Legs[] = {
      {RescaleMode::RM_Eager, PackingStrategy::PS_Bsgs},
      {RescaleMode::RM_Waterline, PackingStrategy::PS_Bsgs},
      {RescaleMode::RM_Lazy, PackingStrategy::PS_Bsgs},
      {RescaleMode::RM_Lazy, PackingStrategy::PS_Diag},
      {RescaleMode::RM_Lazy, PackingStrategy::PS_Column},
  };

  std::printf("=== Pipeline policy sweep: MLP encrypted inference ===\n");
  std::printf("%10s %-7s | %8s %8s %8s | %8s %9s\n", "rescale", "packing",
              "rescales", "relins", "rotates", "seconds", "vs eager");
  std::string Rows;
  double EagerSeconds = 0;
  for (const Leg &L : Legs) {
    air::CompileOptions Opt = benchOptions();
    Opt.Rescale = L.Rescale;
    Opt.Packing = L.Packing;
    auto R = compileOrDie(Model, Data, Opt);
    codegen::CkksExecutor Exec(R->Program, R->State);
    if (Status S = Exec.setup()) {
      std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
      return 1;
    }
    WallTimer Clock;
    auto Logits = Exec.infer(Data.Images[0]);
    if (!Logits.ok()) {
      std::fprintf(stderr, "inference failed under %s/%s: %s\n",
                   rescaleModeName(L.Rescale),
                   packingStrategyName(L.Packing),
                   Logits.status().message().c_str());
      return 1;
    }
    double Seconds = Clock.seconds();
    if (L.Rescale == RescaleMode::RM_Eager)
      EagerSeconds = Seconds;
    const air::CkksOpBudget &B = R->State.Budget;
    std::printf("%10s %-7s | %8zu %8zu %8zu | %8.2f %8.2fx\n",
                rescaleModeName(L.Rescale), packingStrategyName(L.Packing),
                B.Rescale, B.Relinearize, B.Rotate, Seconds,
                EagerSeconds / Seconds);
    char Row[256];
    std::snprintf(Row, sizeof(Row),
                  "%s{\"pipeline\": {\"rescale\": \"%s\", "
                  "\"packing\": \"%s\"}, \"budget\": {\"rescale\": %zu, "
                  "\"relin\": %zu, \"rotate\": %zu}, \"seconds\": %.4f}",
                  Rows.empty() ? "" : ",\n  ", rescaleModeName(L.Rescale),
                  packingStrategyName(L.Packing), B.Rescale, B.Relinearize,
                  B.Rotate, Seconds);
    Rows += Row;
  }
  if (!JsonPath.empty())
    writeBenchJson(JsonPath, "fig6_pipeline_sweep", "[" + Rows + "]");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/2, /*DefaultImages=*/1);
  if (Args.ThreadSweep)
    return runThreadSweep(Args.JsonPath);
  if (Args.PipelineSweep)
    return runPipelineSweep(Args.JsonPath);
  auto Models = buildPaperModels(Args.Models);
  telemetry::Telemetry::instance().setEnabled(true);

  std::printf("=== Figure 6: per-image inference time, ACE vs Expert "
              "(seconds) ===\n");
  std::printf("%-18s %-7s | %8s %8s %8s %8s | %8s\n", "model", "impl",
              "conv", "bootstr", "relu", "rest", "total");
  double SpeedupSum = 0;
  std::string Rows;
  for (auto &M : Models) {
    RunResult Ace = runOne(M, benchOptions());
    RunResult Exp = runOne(M, expert::expertOptions(benchOptions()));
    auto Print = [&](const char *Impl, const RunResult &R) {
      std::printf("%-18s %-7s | %8.2f %8.2f %8.2f %8.2f | %8.2f\n",
                  M.Spec.Name.c_str(), Impl, R.Conv, R.Boot, R.Relu,
                  R.Pool + R.Gemm + R.Other, R.total());
    };
    Print("ace", Ace);
    Print("expert", Exp);
    std::printf("%-18s %-7s | ct-ct-muls %llu vs %llu, rotations %llu vs "
                "%llu, bootstraps %llu vs %llu\n",
                "", "ops",
                static_cast<unsigned long long>(Ace.CtCtMuls),
                static_cast<unsigned long long>(Exp.CtCtMuls),
                static_cast<unsigned long long>(Ace.Rotations),
                static_cast<unsigned long long>(Exp.Rotations),
                static_cast<unsigned long long>(Ace.Bootstraps),
                static_cast<unsigned long long>(Exp.Bootstraps));
    double Speedup = Exp.total() / Ace.total();
    SpeedupSum += Speedup;
    char Row[256];
    std::snprintf(Row, sizeof(Row),
                  "%s{\"model\": \"%s\", \"ace_total\": %.4f, "
                  "\"expert_total\": %.4f, \"ace_bootstrap\": %.4f, "
                  "\"speedup\": %.4f}",
                  Rows.empty() ? "" : ",\n  ", M.Spec.Name.c_str(),
                  Ace.total(), Exp.total(), Ace.Boot, Speedup);
    Rows += Row;
    std::printf("%-18s %-7s | conv %+5.1f%%  bootstrap %+5.1f%%  relu "
                "%+5.1f%%  speedup %.2fx\n",
                "", "delta", 100.0 * (Ace.Conv - Exp.Conv) / Exp.Conv,
                100.0 * (Ace.Boot - Exp.Boot) / Exp.Boot,
                100.0 * (Ace.Relu - Exp.Relu) / Exp.Relu, Speedup);
  }
  std::printf("\naverage speedup: %.2fx (paper: 2.24x; Conv -31.5%%, "
              "Bootstrap -63.3%%, ReLU -44.6%%)\n",
              SpeedupSum / Models.size());
  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "fig6_inference", "[" + Rows + "]");
  return 0;
}
