//===----------------------------------------------------------------------===//
// Paper Figure 6: per-image encrypted inference time, ANT-ACE (left)
// versus the Expert hand-tuned baseline (right), broken down into Conv,
// Bootstrap and ReLU. Expected shape: ACE wins on every model; the paper
// reports Conv -31.5%, Bootstrap -63.3%, ReLU -44.6%, 2.24x average.
//
// Defaults cover the two smallest models (single-core friendly); pass
// --all or --models=N for the full sweep.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Telemetry.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

namespace {

struct RunResult {
  double Conv = 0, Boot = 0, Relu = 0, Pool = 0, Gemm = 0, Other = 0;
  uint64_t CtCtMuls = 0, Rotations = 0, Bootstraps = 0;
  double total() const { return Conv + Boot + Relu + Pool + Gemm + Other; }
};

RunResult runOne(const BenchModel &M, const air::CompileOptions &Opt) {
  // Region breakdown and op counts both come from telemetry: the
  // executor's region spans accumulate per origin-operator phase times,
  // and the evaluator hooks count the FHE ops behind them.
  telemetry::Telemetry &Tel = telemetry::Telemetry::instance();
  Tel.clear();
  auto R = compileOrDie(M.Model, M.Data, Opt);
  codegen::CkksExecutor Exec(R->Program, R->State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    std::exit(1);
  }
  telemetry::CounterSnapshot Before = Tel.counters();
  auto Logits = Exec.infer(M.Data.Images[0]);
  if (!Logits.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 Logits.status().message().c_str());
    std::exit(1);
  }
  telemetry::CounterSnapshot Ops = Tel.counters().deltaSince(Before);
  RunResult Out;
  Out.Conv = Tel.phaseSeconds("conv");
  Out.Boot = Tel.phaseSeconds("bootstrap");
  Out.Relu = Tel.phaseSeconds("relu");
  Out.Pool = Tel.phaseSeconds("pool");
  Out.Gemm = Tel.phaseSeconds("gemm");
  Out.Other = Tel.phaseSeconds("add") + Tel.phaseSeconds("other") +
              Tel.phaseSeconds("input");
  Out.CtCtMuls = Ops.get(telemetry::Counter::CtCtMul);
  Out.Rotations = Ops.get(telemetry::Counter::Rotate);
  Out.Bootstraps = Ops.get(telemetry::Counter::Bootstrap);
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/2, /*DefaultImages=*/1);
  auto Models = buildPaperModels(Args.Models);
  telemetry::Telemetry::instance().setEnabled(true);

  std::printf("=== Figure 6: per-image inference time, ACE vs Expert "
              "(seconds) ===\n");
  std::printf("%-18s %-7s | %8s %8s %8s %8s | %8s\n", "model", "impl",
              "conv", "bootstr", "relu", "rest", "total");
  double SpeedupSum = 0;
  for (auto &M : Models) {
    RunResult Ace = runOne(M, benchOptions());
    RunResult Exp = runOne(M, expert::expertOptions(benchOptions()));
    auto Print = [&](const char *Impl, const RunResult &R) {
      std::printf("%-18s %-7s | %8.2f %8.2f %8.2f %8.2f | %8.2f\n",
                  M.Spec.Name.c_str(), Impl, R.Conv, R.Boot, R.Relu,
                  R.Pool + R.Gemm + R.Other, R.total());
    };
    Print("ace", Ace);
    Print("expert", Exp);
    std::printf("%-18s %-7s | ct-ct-muls %llu vs %llu, rotations %llu vs "
                "%llu, bootstraps %llu vs %llu\n",
                "", "ops",
                static_cast<unsigned long long>(Ace.CtCtMuls),
                static_cast<unsigned long long>(Exp.CtCtMuls),
                static_cast<unsigned long long>(Ace.Rotations),
                static_cast<unsigned long long>(Exp.Rotations),
                static_cast<unsigned long long>(Ace.Bootstraps),
                static_cast<unsigned long long>(Exp.Bootstraps));
    double Speedup = Exp.total() / Ace.total();
    SpeedupSum += Speedup;
    std::printf("%-18s %-7s | conv %+5.1f%%  bootstrap %+5.1f%%  relu "
                "%+5.1f%%  speedup %.2fx\n",
                "", "delta", 100.0 * (Ace.Conv - Exp.Conv) / Exp.Conv,
                100.0 * (Ace.Boot - Exp.Boot) / Exp.Boot,
                100.0 * (Ace.Relu - Exp.Relu) / Exp.Relu, Speedup);
  }
  std::printf("\naverage speedup: %.2fx (paper: 2.24x; Conv -31.5%%, "
              "Bootstrap -63.3%%, ReLU -44.6%%)\n",
              SpeedupSum / Models.size());
  return 0;
}
