//===----------------------------------------------------------------------===//
// Paper Table 11: inference accuracy, unencrypted vs encrypted. The paper
// reports an average accuracy drop of 0.43% over 1000 CIFAR images; the
// reproduction compares the cleartext executor with the compiled
// encrypted pipeline on the synthetic dataset. Expected shape: encrypted
// accuracy within a couple of points of cleartext, the loss coming from
// CKKS precision plus the polynomial ReLU approximation.
//
// Defaults: one model, a handful of images (encrypted inference is
// seconds per image single-core); scale with --models= / --images=.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/1, /*DefaultImages=*/6);
  auto Models = buildPaperModels(Args.Models);

  std::printf("=== Table 11: accuracy, unencrypted vs encrypted ===\n");
  std::printf("%-18s %7s | %12s %10s %8s\n", "model", "images",
              "unencrypted", "encrypted", "loss");
  std::string Rows;
  for (auto &M : Models) {
    size_t Count = std::min<size_t>(Args.Images, M.Data.Images.size());
    double Clear = nn::cleartextAccuracy(M.Model.MainGraph, M.Data,
                                         static_cast<int>(Count));

    auto R = compileOrDie(M.Model, M.Data, benchOptions());
    codegen::CkksExecutor Exec(R->Program, R->State);
    if (Status S = Exec.setup()) {
      std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
      return 1;
    }
    size_t Correct = 0;
    for (size_t I = 0; I < Count; ++I) {
      auto Logits = Exec.infer(M.Data.Images[I]);
      if (!Logits.ok()) {
        std::fprintf(stderr, "inference failed: %s\n",
                     Logits.status().message().c_str());
        return 1;
      }
      size_t Best = 0;
      for (size_t K = 1; K < Logits->size(); ++K)
        if ((*Logits)[K] > (*Logits)[Best])
          Best = K;
      Correct += Best == static_cast<size_t>(M.Data.Labels[I]);
    }
    double Enc = static_cast<double>(Correct) / Count;
    std::printf("%-18s %7zu | %11.1f%% %9.1f%% %+7.1f%%\n",
                M.Spec.Name.c_str(), Count, 100 * Clear, 100 * Enc,
                100 * (Clear - Enc));
    char Row[256];
    std::snprintf(Row, sizeof(Row),
                  "{\"model\": \"%s\", \"images\": %zu, "
                  "\"clear_accuracy\": %.4f, \"encrypted_accuracy\": %.4f, "
                  "\"loss\": %.4f}",
                  M.Spec.Name.c_str(), Count, Clear, Enc, Clear - Enc);
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }
  std::printf("\n(paper: average accuracy loss 0.43%% over 1000 images)\n");
  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "table11_accuracy", "[" + Rows + "]");
  return 0;
}
