//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the paper-figure benchmark binaries: builds the
/// six evaluation models with their synthetic datasets and compiles them
/// under ACE or Expert options. Each bench binary accepts `--all` to
/// cover every model (the defaults are sized to finish in minutes on one
/// core) and `--models=N` / `--images=N` to scale coverage.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_BENCH_BENCHUTIL_H
#define ACE_BENCH_BENCHUTIL_H

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "expert/ExpertBaseline.h"
#include "nn/ModelZoo.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace ace {
namespace bench {

struct BenchModel {
  nn::NanoResNetSpec Spec;
  onnx::Model Model;
  nn::Dataset Data;
};

inline std::vector<BenchModel> buildPaperModels(size_t Count,
                                                uint64_t Seed = 7) {
  std::vector<BenchModel> Out;
  auto Specs = nn::paperModelSpecs();
  if (Count > Specs.size())
    Count = Specs.size();
  for (size_t I = 0; I < Count; ++I) {
    BenchModel M;
    M.Spec = Specs[I];
    M.Data = nn::makeSyntheticDataset(
        {1, M.Spec.InputChannels, M.Spec.InputHW, M.Spec.InputHW},
        static_cast<int>(M.Spec.Classes), 64, 0.12, Seed + I);
    auto ModelOr = nn::buildNanoResNet(M.Spec, M.Data, Seed * 31 + I);
    if (!ModelOr.ok())
      reportFatalError("bench model build failed: " +
                       ModelOr.status().message());
    M.Model = ModelOr.take();
    Out.push_back(std::move(M));
  }
  return Out;
}

inline air::CompileOptions benchOptions(uint64_t Seed = 13) {
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.Seed = Seed;
  return Opt;
}

/// Parses `--models=N`, `--images=N`, `--all`, `--threads=N`,
/// `--thread-sweep`, `--pipeline-sweep`, `--json=PATH` style flags. A
/// positive --threads is applied to the process-wide pool immediately
/// (see support/ThreadPool.h); otherwise the ACE_THREADS default stands.
struct BenchArgs {
  size_t Models;
  size_t Images;
  int Threads = 0;
  bool ThreadSweep = false;
  bool PipelineSweep = false;
  std::string JsonPath;
  BenchArgs(int Argc, char **Argv, size_t DefaultModels,
            size_t DefaultImages)
      : Models(DefaultModels), Images(DefaultImages) {
    for (int I = 1; I < Argc; ++I) {
      if (!std::strcmp(Argv[I], "--all"))
        Models = 6;
      else if (!std::strncmp(Argv[I], "--models=", 9))
        Models = std::strtoul(Argv[I] + 9, nullptr, 10);
      else if (!std::strncmp(Argv[I], "--images=", 9))
        Images = std::strtoul(Argv[I] + 9, nullptr, 10);
      else if (!std::strncmp(Argv[I], "--threads=", 10))
        Threads = std::atoi(Argv[I] + 10);
      else if (!std::strcmp(Argv[I], "--thread-sweep"))
        ThreadSweep = true;
      else if (!std::strcmp(Argv[I], "--pipeline-sweep"))
        PipelineSweep = true;
      else if (!std::strncmp(Argv[I], "--json=", 7))
        JsonPath = Argv[I] + 7;
    }
    if (Threads > 0)
      ThreadPool::instance().setNumThreads(static_cast<size_t>(Threads));
  }
};

/// \name Bench JSON metadata
/// Every --json file carries the context needed to compare BENCH_*.json
/// trajectories across PRs: the bench name, worker-thread count, git
/// revision and build type (both baked in at configure time), and the
/// host's core count.
/// @{

#ifndef ACE_GIT_REV
#define ACE_GIT_REV "unknown"
#endif
#ifndef ACE_BUILD_TYPE
#define ACE_BUILD_TYPE "unknown"
#endif

/// The shared `"metadata": {...}` object for bench JSON files.
inline std::string benchMetadataJson(const std::string &BenchName) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"bench\": \"%s\", \"threads\": %zu, \"git_rev\": "
                "\"%s\", \"build_type\": \"%s\", \"host_cores\": %u}",
                BenchName.c_str(), ThreadPool::instance().numThreads(),
                ACE_GIT_REV, ACE_BUILD_TYPE,
                std::thread::hardware_concurrency());
  return Buf;
}

/// Writes `{"metadata": ..., "results": [ResultsJson]}` to Path.
/// ResultsJson must already be valid JSON (an array or object body).
inline void writeBenchJson(const std::string &Path,
                           const std::string &BenchName,
                           const std::string &ResultsJson) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::fprintf(F, "{\"metadata\": %s,\n \"results\": %s}\n",
               benchMetadataJson(BenchName).c_str(), ResultsJson.c_str());
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// @}

inline std::unique_ptr<driver::CompileResult>
compileOrDie(const onnx::Model &Model, const nn::Dataset &Data,
             const air::CompileOptions &Opt) {
  driver::AceCompiler Compiler(Opt);
  std::vector<nn::Tensor> Calib(Data.Images.begin(),
                                Data.Images.begin() +
                                    std::min<size_t>(4, Data.Images.size()));
  auto R = Compiler.compile(Model, Calib);
  if (!R.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", R.status().message().c_str());
    std::exit(1);
  }
  return R.take();
}

} // namespace bench
} // namespace ace

#endif // ACE_BENCH_BENCHUTIL_H
