//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the paper-figure benchmark binaries: builds the
/// six evaluation models with their synthetic datasets and compiles them
/// under ACE or Expert options. Each bench binary accepts `--all` to
/// cover every model (the defaults are sized to finish in minutes on one
/// core) and `--models=N` / `--images=N` to scale coverage.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_BENCH_BENCHUTIL_H
#define ACE_BENCH_BENCHUTIL_H

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "expert/ExpertBaseline.h"
#include "nn/ModelZoo.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace ace {
namespace bench {

struct BenchModel {
  nn::NanoResNetSpec Spec;
  onnx::Model Model;
  nn::Dataset Data;
};

inline std::vector<BenchModel> buildPaperModels(size_t Count,
                                                uint64_t Seed = 7) {
  std::vector<BenchModel> Out;
  auto Specs = nn::paperModelSpecs();
  if (Count > Specs.size())
    Count = Specs.size();
  for (size_t I = 0; I < Count; ++I) {
    BenchModel M;
    M.Spec = Specs[I];
    M.Data = nn::makeSyntheticDataset(
        {1, M.Spec.InputChannels, M.Spec.InputHW, M.Spec.InputHW},
        static_cast<int>(M.Spec.Classes), 64, 0.12, Seed + I);
    auto ModelOr = nn::buildNanoResNet(M.Spec, M.Data, Seed * 31 + I);
    if (!ModelOr.ok())
      reportFatalError("bench model build failed: " +
                       ModelOr.status().message());
    M.Model = ModelOr.take();
    Out.push_back(std::move(M));
  }
  return Out;
}

inline air::CompileOptions benchOptions(uint64_t Seed = 13) {
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.Seed = Seed;
  return Opt;
}

/// Parses `--models=N`, `--images=N`, `--all` style flags.
struct BenchArgs {
  size_t Models;
  size_t Images;
  BenchArgs(int Argc, char **Argv, size_t DefaultModels,
            size_t DefaultImages)
      : Models(DefaultModels), Images(DefaultImages) {
    for (int I = 1; I < Argc; ++I) {
      if (!std::strcmp(Argv[I], "--all"))
        Models = 6;
      else if (!std::strncmp(Argv[I], "--models=", 9))
        Models = std::strtoul(Argv[I] + 9, nullptr, 10);
      else if (!std::strncmp(Argv[I], "--images=", 9))
        Images = std::strtoul(Argv[I] + 9, nullptr, 10);
    }
  }
};

inline std::unique_ptr<driver::CompileResult>
compileOrDie(const onnx::Model &Model, const nn::Dataset &Data,
             const air::CompileOptions &Opt) {
  driver::AceCompiler Compiler(Opt);
  std::vector<nn::Tensor> Calib(Data.Images.begin(),
                                Data.Images.begin() +
                                    std::min<size_t>(4, Data.Images.size()));
  auto R = Compiler.compile(Model, Calib);
  if (!R.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", R.status().message().c_str());
    std::exit(1);
  }
  return R.take();
}

} // namespace bench
} // namespace ace

#endif // ACE_BENCH_BENCHUTIL_H
