//===----------------------------------------------------------------------===//
// Service stress bench: N client sessions x M requests each against one
// compiled model, driven from concurrent client threads so admission
// control, per-session serialization, and cross-request parallelism are
// all exercised. Reports throughput and latency percentiles; tolerates
// per-request failures (expected when run under ACE_FAULT_INJECT - the
// CI soak job does exactly that) and counts them by error code.
//
//   bench_service_stress [--clients=N] [--requests=M] [--queue=K]
//                        [--deadline=SECONDS] [--budget=BYTES]
//                        [--threads=N] [--json=PATH]
//
// --budget installs a hard process memory budget (accepts the same
// "512m"/"8g" suffixes as ACE_MEMORY_BUDGET). Under a tight budget the
// expected outcome mix shifts toward ResourceExhausted: requests are
// shed in-band, never by crashing the process.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "service/InferenceService.h"
#include "support/ResourceGovernor.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

using namespace ace;

int main(int Argc, char **Argv) {
  size_t Clients = 3, Requests = 4, QueueCap = 32;
  double DeadlineSeconds = 0.0;
  size_t BudgetBytes = 0;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strncmp(Argv[I], "--clients=", 10))
      Clients = std::strtoul(Argv[I] + 10, nullptr, 10);
    else if (!std::strncmp(Argv[I], "--requests=", 11))
      Requests = std::strtoul(Argv[I] + 11, nullptr, 10);
    else if (!std::strncmp(Argv[I], "--queue=", 8))
      QueueCap = std::strtoul(Argv[I] + 8, nullptr, 10);
    else if (!std::strncmp(Argv[I], "--deadline=", 11))
      DeadlineSeconds = std::strtod(Argv[I] + 11, nullptr);
    else if (!std::strncmp(Argv[I], "--budget=", 9)) {
      if (!parseByteSize(Argv[I] + 9, BudgetBytes)) {
        std::fprintf(stderr, "bad --budget value '%s'\n", Argv[I] + 9);
        return 1;
      }
    }
  }
  bench::BenchArgs Args(Argc, Argv, 1, 1); // applies --threads, --json

  // Compile once.
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  Rng R(23);
  std::vector<nn::Tensor> Calib;
  for (int I = 0; I < 4; ++I) {
    nn::Tensor T;
    T.Shape = {1, 16};
    T.Values.resize(16);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Calib.push_back(std::move(T));
  }
  air::CompileOptions Opt = bench::benchOptions(11);
  Opt.CalibrationSamples = 4;
  driver::AceCompiler Compiler(Opt);
  auto Compiled = Compiler.compile(Model, Calib);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 Compiled.status().message().c_str());
    return 1;
  }

  service::ServiceConfig Config;
  Config.QueueCapacity = QueueCap;
  Config.DefaultDeadlineSeconds = DeadlineSeconds;
  Config.MemoryBudgetBytes = BudgetBytes;
  service::InferenceService Svc((*Compiled)->Program, (*Compiled)->State,
                                Config);

  // Sessions + one request frame per client, prepared up front so the
  // timed region measures serving, not keygen.
  std::vector<uint64_t> SessionIds;
  std::vector<std::vector<uint8_t>> Frames;
  for (size_t C = 0; C < Clients; ++C) {
    auto Id = Svc.openSession();
    if (!Id.ok()) {
      std::fprintf(stderr, "openSession failed: %s\n",
                   Id.status().message().c_str());
      return 1;
    }
    nn::Tensor T;
    T.Shape = {1, 16};
    T.Values.resize(16);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    auto Frame = Svc.encryptRequest(*Id, T, /*ClientTag=*/C);
    if (!Frame.ok()) {
      std::fprintf(stderr, "encryptRequest failed: %s\n",
                   Frame.status().message().c_str());
      return 1;
    }
    SessionIds.push_back(*Id);
    Frames.push_back(Frame.take());
  }

  // N client threads, M requests each. Failures (queue overflow under a
  // small --queue, injected faults under ACE_FAULT_INJECT) are counted,
  // not fatal: graceful degradation is the property under test.
  std::mutex OutcomeMutex;
  std::map<std::string, uint64_t> Outcomes;
  std::atomic<uint64_t> OkCount{0};
  WallTimer Wall;
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      for (size_t Q = 0; Q < Requests; ++Q) {
        auto Ticket = Svc.submit(Frames[C]);
        Status Outcome = Ticket.ok() ? Ticket->Result.get().Outcome
                                     : Ticket.status();
        if (Outcome.ok())
          ++OkCount;
        std::lock_guard<std::mutex> Lock(OutcomeMutex);
        ++Outcomes[errorCodeName(Outcome.code())];
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  double Seconds = Wall.seconds();

  service::ServiceStats Stats = Svc.stats();
  uint64_t Total = static_cast<uint64_t>(Clients * Requests);
  std::printf("service stress: %zu clients x %zu requests, %zu queue cap, "
              "%zu pool threads\n",
              Clients, Requests, QueueCap,
              ThreadPool::instance().numThreads());
  std::printf("  wall %.3fs, %.2f req/s, %llu/%llu ok\n", Seconds,
              Seconds > 0 ? static_cast<double>(OkCount) / Seconds : 0.0,
              static_cast<unsigned long long>(OkCount.load()),
              static_cast<unsigned long long>(Total));
  for (const auto &KV : Outcomes)
    std::printf("  outcome %-20s %llu\n", KV.first.c_str(),
                static_cast<unsigned long long>(KV.second));
  std::printf("  stats %s\n", Stats.json().c_str());

  // Per-stage latency quantiles from the service's lock-free histograms
  // (queue wait, execution, end-to-end; p50/p90/p99/p99.9).
  std::string StageJson = "{";
  bool FirstStage = true;
  for (size_t I = 0;
       I < static_cast<size_t>(service::InferenceService::kStageCount);
       ++I) {
    auto Stage = static_cast<service::InferenceService::Stage>(I);
    auto Snap = Svc.latencySnapshot(Stage);
    if (Snap.Count == 0)
      continue;
    std::printf("  stage %-8s %s\n",
                service::InferenceService::stageName(Stage),
                Snap.quantilesJson().c_str());
    if (!FirstStage)
      StageJson += ", ";
    FirstStage = false;
    StageJson += std::string("\"") +
                 service::InferenceService::stageName(Stage) +
                 "\": " + Snap.quantilesJson();
  }
  StageJson += "}";

  if (!Args.JsonPath.empty()) {
    char Results[1536];
    std::snprintf(Results, sizeof(Results),
                  "{\"clients\": %zu, \"requests_per_client\": %zu, "
                  "\"queue_capacity\": %zu, \"wall_seconds\": %.6f, "
                  "\"throughput_rps\": %.3f, \"ok\": %llu, \"total\": %llu, "
                  "\"service\": %s, \"stages\": %s}",
                  Clients, Requests, QueueCap, Seconds,
                  Seconds > 0 ? static_cast<double>(OkCount) / Seconds : 0.0,
                  static_cast<unsigned long long>(OkCount.load()),
                  static_cast<unsigned long long>(Total),
                  Stats.json().c_str(), StageJson.c_str());
    bench::writeBenchJson(Args.JsonPath, "service_stress", Results);
  }
  return 0;
}
