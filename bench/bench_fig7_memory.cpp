//===----------------------------------------------------------------------===//
// Paper Figure 7: memory usage of ANT-ACE versus the Expert baseline,
// highlighting the CKKS evaluation keys' share. ACE generates only the
// keys the rotation analysis found (paper: 84.8% average reduction);
// the Expert baseline carries the full power-of-two set plus margin
// levels. Alongside the measured toy-parameter bytes, the bench projects
// the same key counts to the paper's production parameters
// (N = 2^16, ~30 primes), where a single key exceeds 1 GB.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Telemetry.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

namespace {

struct MemResult {
  size_t RotationKeys = 0;
  size_t RelinBytes = 0;
  size_t KeyBytes = 0;
  size_t TotalBytes = 0;
  size_t ChainLen = 0;
  size_t RingDegree = 0;
  size_t PeakRssBytes = 0;
};

MemResult runOne(const BenchModel &M, const air::CompileOptions &Opt) {
  auto R = compileOrDie(M.Model, M.Data, Opt);
  codegen::CkksExecutor Exec(R->Program, R->State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    std::exit(1);
  }
  MemResult Out;
  Out.RotationKeys = Exec.evalKeys().rotationKeyCount();
  Out.RelinBytes = Exec.evalKeys().relinByteSize();
  Out.KeyBytes = Exec.memory().evaluationKeyBytes();
  Out.TotalBytes = Exec.memory().total();
  Out.ChainLen =
      static_cast<size_t>(R->State.SelectedParams.NumRescaleModuli) + 1;
  Out.RingDegree = R->State.SelectedParams.RingDegree;
  // Setup sampled RSS into telemetry — the same source of truth the
  // --telemetry-report summaries print.
  Out.PeakRssBytes = telemetry::Telemetry::instance().peakRssBytes();
  return Out;
}

/// Projects one switch key's bytes to production parameters: L digits,
/// 2 polynomials, L+1 moduli, N coefficients of 8 bytes.
double productionKeyGiB(size_t L, size_t N) {
  double Bytes = static_cast<double>(L) * 2.0 * (L + 1) * N * 8.0;
  return Bytes / (1024.0 * 1024.0 * 1024.0);
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/3, /*DefaultImages=*/0);
  auto Models = buildPaperModels(Args.Models);
  telemetry::Telemetry::instance().setEnabled(true);

  std::printf("=== Figure 7: key memory, ACE vs Expert ===\n");
  std::printf("%-18s %-7s | %8s %12s %12s %10s | %14s\n", "model", "impl",
              "rotkeys", "eval-keys", "total-mem", "peak-rss",
              "prod-scale-keys");
  std::string Rows;
  for (auto &M : Models) {
    MemResult Ace = runOne(M, benchOptions());
    MemResult Exp = runOne(M, expert::expertOptions(benchOptions()));
    auto Print = [&](const char *Impl, const MemResult &R, size_t ToyN) {
      // Production projection: scale the measured key bytes (which embed
      // the level-aware truncation) by the ring-degree ratio to N=2^16.
      double Scale = 65536.0 / static_cast<double>(ToyN);
      double ProjGiB = static_cast<double>(R.KeyBytes) * Scale /
                       (1024.0 * 1024.0 * 1024.0);
      std::printf("%-18s %-7s | %8zu %12s %12s %10s | %10.1f GiB\n",
                  M.Spec.Name.c_str(), Impl, R.RotationKeys,
                  formatBytes(R.KeyBytes).c_str(),
                  formatBytes(R.TotalBytes).c_str(),
                  formatBytes(R.PeakRssBytes).c_str(), ProjGiB);
    };
    Print("ace", Ace, Ace.RingDegree);
    Print("expert", Exp, Exp.RingDegree);
    std::printf("%-18s %-7s | key-memory reduction: %.1f%%\n", "", "delta",
                100.0 * (1.0 - static_cast<double>(Ace.KeyBytes) /
                                   static_cast<double>(Exp.KeyBytes)));
    char Row[384];
    std::snprintf(Row, sizeof(Row),
                  "{\"model\": \"%s\", \"ace_rotkeys\": %zu, "
                  "\"ace_key_bytes\": %zu, \"expert_rotkeys\": %zu, "
                  "\"expert_key_bytes\": %zu, \"reduction_pct\": %.2f}",
                  M.Spec.Name.c_str(), Ace.RotationKeys, Ace.KeyBytes,
                  Exp.RotationKeys, Exp.KeyBytes,
                  100.0 * (1.0 - static_cast<double>(Ace.KeyBytes) /
                                     static_cast<double>(Exp.KeyBytes)));
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }
  std::printf("\n(paper: ACE reduces key memory by 84.8%% on average; "
              "ResNet-20 still needs 34.3 GB of evaluation keys)\n");
  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "fig7_memory", "[" + Rows + "]");
  return 0;
}
