//===----------------------------------------------------------------------===//
// Paper Figure 7: memory usage of ANT-ACE versus the Expert baseline,
// highlighting the CKKS evaluation keys' share. ACE generates only the
// keys the rotation analysis found (paper: 84.8% average reduction);
// the Expert baseline carries the full power-of-two set plus margin
// levels. Alongside the measured toy-parameter bytes, the bench projects
// the same key counts to the paper's production parameters
// (N = 2^16, ~30 primes), where a single key exceeds 1 GB.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/LimbPool.h"
#include "support/Telemetry.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

namespace {

struct MemResult {
  size_t RotationKeys = 0;
  size_t RelinBytes = 0;
  size_t KeyBytes = 0;
  size_t TotalBytes = 0;
  size_t ChainLen = 0;
  size_t RingDegree = 0;
  size_t PeakRssBytes = 0;
};

MemResult runOne(const BenchModel &M, const air::CompileOptions &Opt) {
  auto R = compileOrDie(M.Model, M.Data, Opt);
  codegen::CkksExecutor Exec(R->Program, R->State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    std::exit(1);
  }
  MemResult Out;
  Out.RotationKeys = Exec.evalKeys().rotationKeyCount();
  Out.RelinBytes = Exec.evalKeys().relinByteSize();
  Out.KeyBytes = Exec.memory().evaluationKeyBytes();
  Out.TotalBytes = Exec.memory().total();
  Out.ChainLen =
      static_cast<size_t>(R->State.SelectedParams.NumRescaleModuli) + 1;
  Out.RingDegree = R->State.SelectedParams.RingDegree;
  // Setup sampled RSS into telemetry — the same source of truth the
  // --telemetry-report summaries print.
  Out.PeakRssBytes = telemetry::Telemetry::instance().peakRssBytes();
  return Out;
}

/// One steady-state measurement leg: \p Runs encrypted inferences over
/// the same ciphertext with the limb pool forced to \p PoolOn, counting
/// fresh heap allocations (pool misses — counted in bypass mode too, so
/// both legs read the same counter) and the peak-RSS growth.
struct SteadyResult {
  double AllocsPerRun = 0.0;
  size_t RssDeltaBytes = 0;
};

SteadyResult steadyStateLeg(codegen::CkksExecutor &Exec,
                            const fhe::Ciphertext &Ct, int Runs,
                            bool PoolOn) {
  LimbPool &Pool = LimbPool::instance();
  bool Saved = Pool.enabled();
  Pool.setEnabled(PoolOn);
  // Warm up: populate the pool's bins (or the allocator's free lists)
  // so the measured window is the long-running server's steady state.
  for (int I = 0; I < 2; ++I) {
    auto Out = Exec.run(Ct);
    if (!Out.ok()) {
      std::fprintf(stderr, "steady-state run failed: %s\n",
                   Out.status().message().c_str());
      std::exit(1);
    }
  }
  telemetry::Telemetry::instance().sampleRss("steady_state_before");
  size_t RssBefore = telemetry::Telemetry::instance().peakRssBytes();
  Pool.resetCounters();
  for (int I = 0; I < Runs; ++I) {
    auto Out = Exec.run(Ct);
    if (!Out.ok()) {
      std::fprintf(stderr, "steady-state run failed: %s\n",
                   Out.status().message().c_str());
      std::exit(1);
    }
  }
  LimbPoolStats S = Pool.stats();
  telemetry::Telemetry::instance().sampleRss("steady_state_after");
  size_t RssAfter = telemetry::Telemetry::instance().peakRssBytes();
  Pool.setEnabled(Saved);
  SteadyResult Out;
  Out.AllocsPerRun =
      static_cast<double>(S.Misses) / static_cast<double>(Runs);
  Out.RssDeltaBytes = RssAfter > RssBefore ? RssAfter - RssBefore : 0;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/3, /*DefaultImages=*/0);
  auto Models = buildPaperModels(Args.Models);
  telemetry::Telemetry::instance().setEnabled(true);

  std::printf("=== Figure 7: key memory, ACE vs Expert ===\n");
  std::printf("%-18s %-7s | %8s %12s %12s %10s | %14s\n", "model", "impl",
              "rotkeys", "eval-keys", "total-mem", "peak-rss",
              "prod-scale-keys");
  std::string Rows;
  for (auto &M : Models) {
    MemResult Ace = runOne(M, benchOptions());
    MemResult Exp = runOne(M, expert::expertOptions(benchOptions()));
    auto Print = [&](const char *Impl, const MemResult &R, size_t ToyN) {
      // Production projection: scale the measured key bytes (which embed
      // the level-aware truncation) by the ring-degree ratio to N=2^16.
      double Scale = 65536.0 / static_cast<double>(ToyN);
      double ProjGiB = static_cast<double>(R.KeyBytes) * Scale /
                       (1024.0 * 1024.0 * 1024.0);
      std::printf("%-18s %-7s | %8zu %12s %12s %10s | %10.1f GiB\n",
                  M.Spec.Name.c_str(), Impl, R.RotationKeys,
                  formatBytes(R.KeyBytes).c_str(),
                  formatBytes(R.TotalBytes).c_str(),
                  formatBytes(R.PeakRssBytes).c_str(), ProjGiB);
    };
    Print("ace", Ace, Ace.RingDegree);
    Print("expert", Exp, Exp.RingDegree);
    std::printf("%-18s %-7s | key-memory reduction: %.1f%%\n", "", "delta",
                100.0 * (1.0 - static_cast<double>(Ace.KeyBytes) /
                                   static_cast<double>(Exp.KeyBytes)));
    char Row[384];
    std::snprintf(Row, sizeof(Row),
                  "{\"model\": \"%s\", \"ace_rotkeys\": %zu, "
                  "\"ace_key_bytes\": %zu, \"expert_rotkeys\": %zu, "
                  "\"expert_key_bytes\": %zu, \"reduction_pct\": %.2f}",
                  M.Spec.Name.c_str(), Ace.RotationKeys, Ace.KeyBytes,
                  Exp.RotationKeys, Exp.KeyBytes,
                  100.0 * (1.0 - static_cast<double>(Ace.KeyBytes) /
                                     static_cast<double>(Exp.KeyBytes)));
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }
  std::printf("\n(paper: ACE reduces key memory by 84.8%% on average; "
              "ResNet-20 still needs 34.3 GB of evaluation keys)\n");

  // Steady-state allocation churn: the long-running server story. One
  // executor, one ciphertext, many inferences — count fresh heap
  // allocations per run with the limb pool on vs bypassed.
  {
    const int Runs = 8;
    onnx::Model Model = nn::buildMlp({24, 16, 12, 6}, 31);
    nn::Dataset Data = nn::makeSyntheticDataset({1, 24}, 6, /*Count=*/4,
                                                /*NoiseSigma=*/0.1, 77);
    auto R = compileOrDie(Model, Data, benchOptions());
    codegen::CkksExecutor Exec(R->Program, R->State);
    if (Status S = Exec.setup()) {
      std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
      return 1;
    }
    auto Ct = Exec.encryptInput(Data.Images[0]);
    if (!Ct.ok()) {
      std::fprintf(stderr, "encrypt failed: %s\n",
                   Ct.status().message().c_str());
      return 1;
    }
    SteadyResult Off = steadyStateLeg(Exec, *Ct, Runs, /*PoolOn=*/false);
    SteadyResult On = steadyStateLeg(Exec, *Ct, Runs, /*PoolOn=*/true);
    double Reduction =
        On.AllocsPerRun > 0.0 ? Off.AllocsPerRun / On.AllocsPerRun : 0.0;
    std::printf("\n=== Steady-state limb allocations per inference ===\n");
    std::printf("%-10s %16s %14s\n", "pool", "allocs/run",
                "peak-rss-delta");
    std::printf("%-10s %16.1f %14s\n", "off", Off.AllocsPerRun,
                formatBytes(Off.RssDeltaBytes).c_str());
    std::printf("%-10s %16.1f %14s\n", "on", On.AllocsPerRun,
                formatBytes(On.RssDeltaBytes).c_str());
    if (On.AllocsPerRun > 0.0)
      std::printf("%-10s %15.1fx fewer heap allocations\n", "delta",
                  Reduction);
    else
      std::printf("%-10s zero steady-state heap allocations with pool "
                  "on\n", "delta");
    char Row[384];
    std::snprintf(Row, sizeof(Row),
                  "{\"model\": \"steady_state_mlp\", "
                  "\"pool_off_allocs_per_run\": %.1f, "
                  "\"pool_on_allocs_per_run\": %.1f, "
                  "\"alloc_reduction_x\": %.1f, "
                  "\"pool_off_rss_delta_bytes\": %zu, "
                  "\"pool_on_rss_delta_bytes\": %zu}",
                  Off.AllocsPerRun, On.AllocsPerRun, Reduction,
                  Off.RssDeltaBytes, On.RssDeltaBytes);
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }

  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "fig7_memory", "[" + Rows + "]");
  return 0;
}
