//===----------------------------------------------------------------------===//
// Paper Figure 5: ANT-ACE compile times per model with the percentage
// breakdown across IR phases (NN / VECTOR / SIHE / CKKS / Others).
// Expected shape: compilation takes seconds, with the VECTOR phase
// (cleartext-to-vector transformation, i.e. weight/mask processing)
// dominating - exactly what the paper reports.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/6, /*DefaultImages=*/0);
  auto Models = buildPaperModels(Args.Models);

  std::printf("=== Figure 5: compile time per model (seconds) ===\n");
  std::printf("%-18s %8s | %6s %7s %6s %6s %7s\n", "model", "total",
              "NN%", "VECTOR%", "SIHE%", "CKKS%", "Others%");
  for (auto &M : Models) {
    auto R = compileOrDie(M.Model, M.Data, benchOptions());
    const TimingRegistry &T = R->State.Timing;
    double Total = T.total();
    double Known = T.get("NN") + T.get("VECTOR") + T.get("SIHE") +
                   T.get("CKKS");
    auto Pct = [&](const char *Phase) {
      return Total > 0 ? 100.0 * T.get(Phase) / Total : 0.0;
    };
    std::printf("%-18s %8.3f | %6.1f %7.1f %6.1f %6.1f %7.1f\n",
                M.Spec.Name.c_str(), Total, Pct("NN"), Pct("VECTOR"),
                Pct("SIHE"), Pct("CKKS"),
                Total > 0 ? 100.0 * (Total - Known) / Total : 0.0);
    std::printf("%-18s          | nodes: NN=%zu VECTOR=%zu SIHE=%zu "
                "CKKS=%zu, bootstraps=%zu\n",
                "", R->PhaseNodeCounts["NN"], R->PhaseNodeCounts["VECTOR"],
                R->PhaseNodeCounts["SIHE"], R->PhaseNodeCounts["CKKS"],
                R->State.BootstrapCount);
  }
  std::printf("\n(paper: seconds per model, VECTOR phase dominant)\n");
  return 0;
}
