//===----------------------------------------------------------------------===//
// Paper Figure 5: ANT-ACE compile times per model with the percentage
// breakdown across IR phases (NN / VECTOR / SIHE / CKKS / Others).
// Expected shape: compilation takes seconds, with the VECTOR phase
// (cleartext-to-vector transformation, i.e. weight/mask processing)
// dominating - exactly what the paper reports.
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Telemetry.h"

#include <cstdio>

using namespace ace;
using namespace ace::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv, /*DefaultModels=*/6, /*DefaultImages=*/0);
  auto Models = buildPaperModels(Args.Models);

  // Phase breakdowns come from the telemetry spans the pass manager
  // opens around every pass (the per-result TimingRegistry stays as a
  // backward-compat adapter fed by the same spans).
  telemetry::Telemetry &Tel = telemetry::Telemetry::instance();
  Tel.setEnabled(true);

  std::printf("=== Figure 5: compile time per model (seconds) ===\n");
  std::printf("%-18s %8s | %6s %7s %6s %6s %7s\n", "model", "total",
              "NN%", "VECTOR%", "SIHE%", "CKKS%", "Others%");
  std::string Rows;
  for (auto &M : Models) {
    Tel.clear();
    auto R = compileOrDie(M.Model, M.Data, benchOptions());
    double Known = Tel.phaseSeconds("NN") + Tel.phaseSeconds("VECTOR") +
                   Tel.phaseSeconds("SIHE") + Tel.phaseSeconds("CKKS");
    // "compile" wraps the whole pipeline, so total - phases = Others.
    double Total = Tel.phaseSeconds("compile");
    if (Total <= 0)
      Total = Known;
    auto Pct = [&](const char *Phase) {
      return Total > 0 ? 100.0 * Tel.phaseSeconds(Phase) / Total : 0.0;
    };
    std::printf("%-18s %8.3f | %6.1f %7.1f %6.1f %6.1f %7.1f\n",
                M.Spec.Name.c_str(), Total, Pct("NN"), Pct("VECTOR"),
                Pct("SIHE"), Pct("CKKS"),
                Total > 0 ? 100.0 * (Total - Known) / Total : 0.0);
    std::printf("%-18s          | nodes: NN=%zu VECTOR=%zu SIHE=%zu "
                "CKKS=%zu, bootstraps=%zu\n",
                "", R->PhaseNodeCounts["NN"], R->PhaseNodeCounts["VECTOR"],
                R->PhaseNodeCounts["SIHE"], R->PhaseNodeCounts["CKKS"],
                R->State.BootstrapCount);
    char Row[384];
    std::snprintf(Row, sizeof(Row),
                  "{\"model\": \"%s\", \"total_seconds\": %.4f, "
                  "\"nn_pct\": %.2f, \"vector_pct\": %.2f, "
                  "\"sihe_pct\": %.2f, \"ckks_pct\": %.2f, "
                  "\"bootstraps\": %zu}",
                  M.Spec.Name.c_str(), Total, Pct("NN"), Pct("VECTOR"),
                  Pct("SIHE"), Pct("CKKS"), R->State.BootstrapCount);
    Rows += std::string(Rows.empty() ? "" : ",\n  ") + Row;
  }
  std::printf("\n(paper: seconds per model, VECTOR phase dominant)\n");
  if (!Args.JsonPath.empty())
    writeBenchJson(Args.JsonPath, "fig5_compile_time", "[" + Rows + "]");
  return 0;
}
