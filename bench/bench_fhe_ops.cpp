//===----------------------------------------------------------------------===//
// Microbenchmarks of the ACEfhe primitives backing the paper's cost
// discussion (Sec. 2.3: multiplications and rotations are
// O(N log N r^2) and dominate): add, ct-pt mul, ct-ct mul+relin,
// rotation, rescale and a full bootstrap, across ring degrees.
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"
#include "fhe/Encryptor.h"
#include "fhe/ModArith.h"
#include "fhe/Ntt.h"
#include "fhe/PolyBackend.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <string>

using namespace ace;
using namespace ace::fhe;

namespace {

struct Fixture {
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Bootstrapper> Boot;
  std::unique_ptr<Encryptor> Encrypt;
  Ciphertext CtA, CtB;
  Plaintext Pt;

  explicit Fixture(size_t N, bool WithBootstrap = false) {
    CkksParams P;
    P.RingDegree = N;
    P.Slots = N / 2;
    P.LogScale = 45;
    P.LogFirstModulus = 55;
    P.NumRescaleModuli = WithBootstrap ? 22 : 8;
    P.LogSpecialModulus = 60;
    P.SparseSecret = WithBootstrap;
    P.Seed = 5;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys);
    if (WithBootstrap) {
      Boot = std::make_unique<Bootstrapper>(*Eval);
      Gen->fillEvalKeys(Keys, Boot->requiredRotations(), true, true);
      Gen->fillGaloisKeys(Keys, Boot->requiredGaloisElements());
    } else {
      Gen->fillEvalKeys(Keys, {1}, true, false);
    }
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);

    Rng R(3);
    std::vector<double> X(Ctx->slots());
    for (auto &V : X)
      V = R.uniformReal(-0.5, 0.5);
    CtA = Encrypt->encryptValues(*Enc, X, Ctx->chainLength());
    CtB = Encrypt->encryptValues(*Enc, X, Ctx->chainLength());
    Pt = Eval->encodeForMul(CtA, X);
  }
};

void BM_Add(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->add(F.CtA, F.CtB));
}
BENCHMARK(BM_Add)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_MulPlain(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->mulPlain(F.CtA, F.Pt));
}
BENCHMARK(BM_MulPlain)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_MulRelin(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->mul(F.CtA, F.CtB));
}
BENCHMARK(BM_MulRelin)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Rotate(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->rotate(F.CtA, 1));
}
BENCHMARK(BM_Rotate)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// Rotation batches, naive vs hoisted (the tentpole of the hoisting PR):
// the naive loop pays one digit decomposition (ModUp) per rotation, the
// hoisted batch pays ONE for the whole batch and spreads the remaining
// per-rotation inner products over the thread pool. Results are
// bit-identical (tests/fhe/HoistedRotationTest.cpp); this measures the
// speedup. Batch of 8 matches a BSGS baby-step sweep at BS = 8.
const std::vector<int64_t> &batchSteps() {
  static const std::vector<int64_t> Steps = {1, 2, 3, 4, 5, 6, 7, 8};
  return Steps;
}

Fixture &batchFixture(size_t N) {
  // The key set covers every batch step; shared across iterations so the
  // benchmark loop measures rotations, not keygen.
  static std::map<size_t, std::unique_ptr<Fixture>> Cache;
  auto It = Cache.find(N);
  if (It == Cache.end()) {
    auto F = std::make_unique<Fixture>(N);
    F->Gen->fillEvalKeys(F->Keys, batchSteps(), /*NeedRelin=*/false,
                         /*NeedConjugate=*/false);
    It = Cache.emplace(N, std::move(F)).first;
  }
  return *It->second;
}

void BM_RotateBatchNaive(benchmark::State &State) {
  Fixture &F = batchFixture(State.range(0));
  for (auto _ : State)
    for (int64_t S : batchSteps())
      benchmark::DoNotOptimize(F.Eval->rotate(F.CtA, S));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(batchSteps().size()));
  State.counters["modups_per_batch"] =
      static_cast<double>(batchSteps().size());
}
BENCHMARK(BM_RotateBatchNaive)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_RotateBatchHoisted(benchmark::State &State) {
  Fixture &F = batchFixture(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->rotateHoisted(F.CtA, batchSteps()));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(batchSteps().size()));
  State.counters["modups_per_batch"] = 1.0;
}
BENCHMARK(BM_RotateBatchHoisted)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Rescale(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State) {
    Ciphertext C = F.CtA;
    F.Eval->rescaleInPlace(C);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_Rescale)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Bootstrap(benchmark::State &State) {
  Fixture F(State.range(0), /*WithBootstrap=*/true);
  Ciphertext Low = F.CtA;
  F.Eval->modSwitchTo(Low, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Boot->bootstrap(Low, 3));
}
BENCHMARK(BM_Bootstrap)->Arg(1024)->Unit(benchmark::kMillisecond);

// Telemetry overhead guard (docs/observability.md): with telemetry
// disabled the hook sites must reduce to a branch on a cached flag, so
// the disabled and never-instrumented rotate paths should be
// indistinguishable. Compare BM_Rotate (above; telemetry off = the
// default) against this enabled variant: the enabled cost bounds the
// hook overhead from above, and any disabled-path regression shows up
// as BM_Rotate drift against its recorded baseline.
void BM_RotateTelemetryEnabled(benchmark::State &State) {
  Fixture F(State.range(0));
  telemetry::Telemetry::instance().setEnabled(true);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->rotate(F.CtA, 1));
  telemetry::Telemetry::instance().setEnabled(false);
  telemetry::Telemetry::instance().clear();
}
BENCHMARK(BM_RotateTelemetryEnabled)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// The disabled-path branch in isolation: telemetry::enabled() is all a
// counter-only hook site pays when telemetry is off.
void BM_TelemetryDisabledCheck(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(telemetry::enabled());
}
BENCHMARK(BM_TelemetryDisabledCheck)->Unit(benchmark::kNanosecond);

//===----------------------------------------------------------------------===//
// Per-kernel roofline numbers (docs/performance.md "Kernel roofline"):
// one RNS limb through each backend, no thread pool, no evaluator
// bookkeeping - the raw cost of a butterfly and a modular multiply that
// everything above is built from. Arg 0 = ring degree, arg 1 = backend
// (0 = scalar reference, 1 = simd); the simd rows skip cleanly on hosts
// without vector support. ns_per_butterfly divides by the (N/2)*log2(N)
// butterflies of one transform; ns_per_modmul by the N lane multiplies
// of one pointwise pass.
//===----------------------------------------------------------------------===//

const PolyBackend *kernelBackend(benchmark::State &State) {
  if (State.range(1) == 0)
    return &scalarPolyBackend();
  const PolyBackend *B = simdPolyBackend();
  if (!B)
    State.SkipWithError("simd backend not supported on this host/build");
  return B;
}

void addButterflyRate(benchmark::State &State, size_t N) {
  double Bf = (static_cast<double>(N) / 2) * std::log2(N);
  State.counters["ns_per_butterfly"] = benchmark::Counter(
      State.iterations() * Bf / 1e9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_NttForwardKernel(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  const PolyBackend *B = kernelBackend(State);
  if (!B)
    return;
  uint64_t P = generateNttPrimes(55, 2 * N, 1, {})[0];
  NttTable Table(N, P);
  Rng R(7);
  std::vector<uint64_t> Data;
  R.uniformVector(P, N, Data);
  for (auto _ : State) {
    B->forwardNtt(Table, Data.data());
    benchmark::DoNotOptimize(Data.data());
  }
  addButterflyRate(State, N);
}
BENCHMARK(BM_NttForwardKernel)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_NttInverseKernel(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  const PolyBackend *B = kernelBackend(State);
  if (!B)
    return;
  uint64_t P = generateNttPrimes(55, 2 * N, 1, {})[0];
  NttTable Table(N, P);
  Rng R(7);
  std::vector<uint64_t> Data;
  R.uniformVector(P, N, Data);
  for (auto _ : State) {
    B->inverseNtt(Table, Data.data());
    benchmark::DoNotOptimize(Data.data());
  }
  addButterflyRate(State, N);
}
BENCHMARK(BM_NttInverseKernel)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_PointwiseMulKernel(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  const PolyBackend *B = kernelBackend(State);
  if (!B)
    return;
  uint64_t P = generateNttPrimes(55, 2 * N, 1, {})[0];
  Rng R(7);
  std::vector<uint64_t> A, X;
  R.uniformVector(P, N, A);
  R.uniformVector(P, N, X);
  for (auto _ : State) {
    B->mul(A.data(), X.data(), N, P);
    benchmark::DoNotOptimize(A.data());
  }
  State.counters["ns_per_modmul"] = benchmark::Counter(
      State.iterations() * static_cast<double>(N) / 1e9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_PointwiseMulKernel)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_MulAccKernel(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  const PolyBackend *B = kernelBackend(State);
  if (!B)
    return;
  uint64_t P = generateNttPrimes(55, 2 * N, 1, {})[0];
  Rng R(7);
  std::vector<uint64_t> Acc, X, Y;
  R.uniformVector(P, N, Acc);
  R.uniformVector(P, N, X);
  R.uniformVector(P, N, Y);
  for (auto _ : State) {
    B->mulAcc(Acc.data(), X.data(), Y.data(), N, P);
    benchmark::DoNotOptimize(Acc.data());
  }
  State.counters["ns_per_modmul"] = benchmark::Counter(
      State.iterations() * static_cast<double>(N) / 1e9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_MulAccKernel)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the JSON/console output
// with the metadata that makes BENCH_*.json files comparable across
// machines and revisions (git revision, build type, pool thread count).
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::AddCustomContext("git_rev", ACE_GIT_REV);
  benchmark::AddCustomContext("build_type", ACE_BUILD_TYPE);
  benchmark::AddCustomContext(
      "threads", std::to_string(ThreadPool::instance().numThreads()));
  benchmark::AddCustomContext("poly_backend", activePolyBackendName());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
