//===----------------------------------------------------------------------===//
// Microbenchmarks of the ACEfhe primitives backing the paper's cost
// discussion (Sec. 2.3: multiplications and rotations are
// O(N log N r^2) and dominate): add, ct-pt mul, ct-ct mul+relin,
// rotation, rescale and a full bootstrap, across ring degrees.
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"
#include "fhe/Encryptor.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <benchmark/benchmark.h>

using namespace ace;
using namespace ace::fhe;

namespace {

struct Fixture {
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Bootstrapper> Boot;
  std::unique_ptr<Encryptor> Encrypt;
  Ciphertext CtA, CtB;
  Plaintext Pt;

  explicit Fixture(size_t N, bool WithBootstrap = false) {
    CkksParams P;
    P.RingDegree = N;
    P.Slots = N / 2;
    P.LogScale = 45;
    P.LogFirstModulus = 55;
    P.NumRescaleModuli = WithBootstrap ? 22 : 8;
    P.LogSpecialModulus = 60;
    P.SparseSecret = WithBootstrap;
    P.Seed = 5;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys);
    if (WithBootstrap) {
      Boot = std::make_unique<Bootstrapper>(*Eval);
      Gen->fillEvalKeys(Keys, Boot->requiredRotations(), true, true);
      Gen->fillGaloisKeys(Keys, Boot->requiredGaloisElements());
    } else {
      Gen->fillEvalKeys(Keys, {1}, true, false);
    }
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);

    Rng R(3);
    std::vector<double> X(Ctx->slots());
    for (auto &V : X)
      V = R.uniformReal(-0.5, 0.5);
    CtA = Encrypt->encryptValues(*Enc, X, Ctx->chainLength());
    CtB = Encrypt->encryptValues(*Enc, X, Ctx->chainLength());
    Pt = Eval->encodeForMul(CtA, X);
  }
};

void BM_Add(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->add(F.CtA, F.CtB));
}
BENCHMARK(BM_Add)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_MulPlain(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->mulPlain(F.CtA, F.Pt));
}
BENCHMARK(BM_MulPlain)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_MulRelin(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->mul(F.CtA, F.CtB));
}
BENCHMARK(BM_MulRelin)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Rotate(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->rotate(F.CtA, 1));
}
BENCHMARK(BM_Rotate)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Rescale(benchmark::State &State) {
  Fixture F(State.range(0));
  for (auto _ : State) {
    Ciphertext C = F.CtA;
    F.Eval->rescaleInPlace(C);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_Rescale)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Bootstrap(benchmark::State &State) {
  Fixture F(State.range(0), /*WithBootstrap=*/true);
  Ciphertext Low = F.CtA;
  F.Eval->modSwitchTo(Low, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Boot->bootstrap(Low, 3));
}
BENCHMARK(BM_Bootstrap)->Arg(1024)->Unit(benchmark::kMillisecond);

// Telemetry overhead guard (docs/observability.md): with telemetry
// disabled the hook sites must reduce to a branch on a cached flag, so
// the disabled and never-instrumented rotate paths should be
// indistinguishable. Compare BM_Rotate (above; telemetry off = the
// default) against this enabled variant: the enabled cost bounds the
// hook overhead from above, and any disabled-path regression shows up
// as BM_Rotate drift against its recorded baseline.
void BM_RotateTelemetryEnabled(benchmark::State &State) {
  Fixture F(State.range(0));
  telemetry::Telemetry::instance().setEnabled(true);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Eval->rotate(F.CtA, 1));
  telemetry::Telemetry::instance().setEnabled(false);
  telemetry::Telemetry::instance().clear();
}
BENCHMARK(BM_RotateTelemetryEnabled)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// The disabled-path branch in isolation: telemetry::enabled() is all a
// counter-only hook site pays when telemetry is off.
void BM_TelemetryDisabledCheck(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(telemetry::enabled());
}
BENCHMARK(BM_TelemetryDisabledCheck)->Unit(benchmark::kNanosecond);

} // namespace

BENCHMARK_MAIN();
