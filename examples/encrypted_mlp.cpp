//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Privacy-preserving MLP inference, in the paper's threat model (Fig. 2):
// the client owns the data and the keys; the untrusted server sees only
// ciphertexts. This example exercises the nonlinear path: the hidden
// ReLU layer is approximated by composite sign polynomials and preceded
// by an automatically placed bootstrap.
//
// Run: ./encrypted_mlp [--telemetry-report[=json]] [--threads=N]
//                       [--metrics-dump=FILE] [--rescale=MODE]
//                       [--packing=STRATEGY]
//   ACE_TRACE=trace.json ./encrypted_mlp   # chrome://tracing span dump
//   --metrics-dump writes the Prometheus exposition on exit
//   --rescale: eager | waterline | lazy (default: ACE_LAZY_RESCALE,
//     then waterline); --packing: auto | diag | bsgs | column (default:
//     ACE_PACKING, then the per-layer cost model). See docs/compiler.md.
//
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/MetricsRegistry.h"
#include "support/PipelineConfig.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace ace;

int main(int argc, char **argv) {
  bool Report = false, ReportJson = false;
  int Threads = 0;
  std::string MetricsDump;
  RescaleMode Rescale = RescaleMode::RM_Auto;
  PackingStrategy Packing = PackingStrategy::PS_Auto;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--telemetry-report") == 0)
      Report = true;
    else if (std::strcmp(argv[I], "--telemetry-report=json") == 0)
      Report = ReportJson = true;
    else if (std::strncmp(argv[I], "--threads=", 10) == 0)
      Threads = std::atoi(argv[I] + 10);
    else if (std::strncmp(argv[I], "--metrics-dump=", 15) == 0)
      MetricsDump = argv[I] + 15;
    else if (std::strncmp(argv[I], "--rescale=", 10) == 0) {
      if (!parseRescaleMode(argv[I] + 10, Rescale)) {
        std::fprintf(stderr, "unknown --rescale mode '%s'\n", argv[I] + 10);
        return 2;
      }
    } else if (std::strncmp(argv[I], "--packing=", 10) == 0) {
      if (!parsePackingStrategy(argv[I] + 10, Packing)) {
        std::fprintf(stderr, "unknown --packing strategy '%s'\n",
                     argv[I] + 10);
        return 2;
      }
    }
  }
  if (Report || !MetricsDump.empty())
    telemetry::Telemetry::instance().setEnabled(true);
  // A 2-hidden-layer MLP classifying synthetic 24-dim vectors.
  const int Classes = 6;
  onnx::Model Model = nn::buildMlp({24, 16, 12, Classes}, 31);
  nn::Dataset Data = nn::makeSyntheticDataset({1, 24}, Classes,
                                              /*Count=*/12,
                                              /*NoiseSigma=*/0.1, 77);
  // Attach a prototype readout so decisions are meaningful: rerun the
  // feature stack on each prototype and point the last layer at it.
  // (buildMlp already has random weights; accuracy here is over the
  // cluster structure that survives them.)

  air::CompileOptions Opt;
  Opt.NumThreads = Threads; // 0 keeps the ACE_THREADS default
  Opt.Rescale = Rescale;    // RM_Auto keeps the ACE_LAZY_RESCALE default
  Opt.Packing = Packing;    // PS_Auto keeps the ACE_PACKING default
  driver::AceCompiler Compiler(Opt);
  auto Result = Compiler.compile(Model, Data.Images);
  if (!Result.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 Result.status().message().c_str());
    return 1;
  }
  auto &R = **Result;
  std::printf("compiled mlp: %zu CKKS nodes, %zu bootstraps, depth %d, "
              "%zu rotation steps\n",
              R.PhaseNodeCounts["CKKS"], R.State.BootstrapCount,
              R.State.MaxComputeDepth, R.State.RotationSteps.size());
  std::printf("pipeline: rescale=%s ops[rescale=%zu relin=%zu rotate=%zu "
              "ctct=%zu ctpt=%zu]\n",
              rescaleModeName(R.State.ResolvedRescale), R.State.Budget.Rescale,
              R.State.Budget.Relinearize, R.State.Budget.Rotate,
              R.State.Budget.CtCtMul, R.State.Budget.CtPtMul);
  for (const auto &D : R.State.PackingDecisions)
    std::printf("  gemm %-8s -> %-6s%s (rot %zu, keys %zu, muls %zu, "
                "depth %zu)\n",
                D.Layer.c_str(), packingStrategyName(D.Strategy),
                D.Forced ? (D.Fallback ? " [forced, fell back]" : " [forced]")
                         : "",
                D.Rotations, D.RotationKeys, D.CtPtMuls, D.RescaleDepth);

  codegen::CkksExecutor Exec(R.Program, R.State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    return 1;
  }

  // Client encrypts; server computes; client decrypts.
  size_t Match = 0, Total = 6;
  for (size_t I = 0; I < Total; ++I) {
    auto Clear = nn::executeSingle(Model.MainGraph, Data.Images[I]);
    auto Ct = Exec.encryptInput(Data.Images[I]);
    if (!Ct.ok()) {
      std::fprintf(stderr, "encrypt failed: %s\n",
                   Ct.status().message().c_str());
      return 1;
    }
    auto Out = Exec.run(*Ct);
    if (!Clear.ok() || !Out.ok()) {
      std::fprintf(stderr, "inference failed\n");
      return 1;
    }
    auto LogitsOr = Exec.decryptLogits(*Out);
    if (!LogitsOr.ok()) {
      std::fprintf(stderr, "decrypt failed: %s\n",
                   LogitsOr.status().message().c_str());
      return 1;
    }
    auto &Logits = *LogitsOr;
    size_t ClearTop = nn::argmax(*Clear);
    size_t EncTop = 0;
    for (size_t K = 1; K < Logits.size(); ++K)
      if (Logits[K] > Logits[EncTop])
        EncTop = K;
    Match += ClearTop == EncTop;
    std::printf("sample %zu: cleartext class %zu, encrypted class %zu "
                "(top logit %.4f vs %.4f)\n",
                I, ClearTop, EncTop,
                static_cast<double>(Clear->Values[ClearTop]),
                Logits[EncTop]);
  }
  std::printf("\ndecision agreement: %zu/%zu\n", Match, Total);
  std::printf("timings: ");
  for (const auto &[Region, Seconds] : Exec.regionTimes().entries())
    std::printf("%s=%.2fs ", Region.c_str(), Seconds);
  std::printf("\nencrypted_mlp OK\n");
  if (Report)
    driver::printTelemetryReport(std::cout, ReportJson);
  if (!MetricsDump.empty()) {
    Status S =
        metrics::MetricsRegistry::instance().writePrometheusFile(MetricsDump);
    if (!S.ok()) {
      std::fprintf(stderr, "metrics-dump failed: %s\n",
                   S.message().c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", MetricsDump.c_str());
  }
  return Match >= Total - 1 ? 0 : 1;
}
