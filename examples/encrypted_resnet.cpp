//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Encrypted ResNet inference - the paper's headline workload. Builds the
// nano-resnet-20 evaluation model (convolutions with BatchNorm folding,
// residual blocks with projection shortcuts, strided downsampling,
// global average pooling, FC readout), compiles it, and classifies an
// encrypted image, printing the per-operator time breakdown that
// Figure 6 reports.
//
// Run: ./encrypted_resnet [--threads=N]
//
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ace;

int main(int argc, char **argv) {
  int Threads = 0;
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--threads=", 10) == 0)
      Threads = std::atoi(argv[I] + 10);
  nn::NanoResNetSpec Spec = nn::paperModelSpecs()[0]; // nano-resnet-20
  nn::Dataset Data = nn::makeSyntheticDataset(
      {1, Spec.InputChannels, Spec.InputHW, Spec.InputHW},
      static_cast<int>(Spec.Classes), 16, 0.12, 3);
  auto ModelOr = nn::buildNanoResNet(Spec, Data, 9);
  if (!ModelOr.ok()) {
    std::fprintf(stderr, "model build failed: %s\n",
                 ModelOr.status().message().c_str());
    return 1;
  }
  onnx::Model Model = ModelOr.take();
  std::printf("built %s: %lld parameters, cleartext accuracy %.0f%%\n",
              Spec.Name.c_str(),
              static_cast<long long>(Model.parameterCount()),
              100.0 * nn::cleartextAccuracy(Model.MainGraph, Data, 16));

  air::CompileOptions Opt;
  Opt.NumThreads = Threads; // 0 keeps the ACE_THREADS default
  driver::AceCompiler Compiler(Opt);
  auto Result = Compiler.compile(Model, Data.Images);
  if (!Result.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 Result.status().message().c_str());
    return 1;
  }
  auto &R = **Result;
  std::printf(
      "compiled in %.2fs: %zu CKKS nodes, %zu bootstraps, chain %d "
      "primes, N=2^%d (production: N=2^%d at 128-bit security)\n",
      R.State.Timing.total(), R.PhaseNodeCounts["CKKS"],
      R.State.BootstrapCount, R.State.SelectedParams.NumRescaleModuli + 1,
      static_cast<int>(std::log2(R.State.SelectedParams.RingDegree)),
      static_cast<int>(std::log2(R.State.SecureRingDegree)));

  codegen::CkksExecutor Exec(R.Program, R.State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("keys: %zu rotation keys, %s evaluation-key memory\n",
              Exec.evalKeys().rotationKeyCount(),
              formatBytes(Exec.memory().evaluationKeyBytes()).c_str());

  const nn::Tensor &Image = Data.Images[0];
  auto Clear = nn::executeSingle(Model.MainGraph, Image);
  WallTimer Clock;
  auto Logits = Exec.infer(Image);
  if (!Clear.ok() || !Logits.ok()) {
    std::fprintf(stderr, "inference failed\n");
    return 1;
  }
  double Seconds = Clock.seconds();

  size_t EncTop = 0;
  for (size_t K = 1; K < Logits->size(); ++K)
    if ((*Logits)[K] > (*Logits)[EncTop])
      EncTop = K;
  std::printf("\nencrypted inference: %.2f s; class %zu (cleartext %zu, "
              "true label %d)\n",
              Seconds, EncTop, nn::argmax(*Clear), Data.Labels[0]);
  std::printf("breakdown: ");
  for (const auto &[Region, T] : Exec.regionTimes().entries())
    std::printf("%s=%.2fs ", Region.c_str(), T);
  std::printf("\nencrypted_resnet OK\n");
  return 0;
}
