//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Quickstart: the paper's Figure 4 walkthrough end to end.
//
//   1. Build (or load) the `linear_infer` model - a single 10x84 gemv.
//   2. Compile it through the NN -> VECTOR -> SIHE -> CKKS pipeline and
//      print the IR at every abstraction level (paper Listings 1-4).
//   3. Generate keys, encrypt an input vector, run the encrypted gemv on
//      the server side, decrypt, and compare with cleartext execution.
//
// Run: ./quickstart [--telemetry-report[=json]] [--threads=N]
//                   [--save-ct=FILE] [--load-ct=FILE]
//                   [--metrics-dump=FILE]
//
// --metrics-dump writes the Prometheus text exposition (every counter
// and latency histogram; docs/observability.md) to FILE on exit.
//
// --save-ct writes the encrypted input to FILE over the hardened wire
// format (docs/serialization.md); --load-ct runs inference on a
// ciphertext previously saved that way, demonstrating the paper's
// client/server split where encrypted inputs travel as files.
//
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "fhe/Serializer.h"
#include "nn/ModelZoo.h"
#include "support/MetricsRegistry.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

using namespace ace;

int main(int argc, char **argv) {
  bool Report = false, ReportJson = false;
  int Threads = 0;
  std::string SaveCt, LoadCt, MetricsDump;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--telemetry-report") == 0)
      Report = true;
    else if (std::strcmp(argv[I], "--telemetry-report=json") == 0)
      Report = ReportJson = true;
    else if (std::strncmp(argv[I], "--threads=", 10) == 0)
      Threads = std::atoi(argv[I] + 10);
    else if (std::strncmp(argv[I], "--save-ct=", 10) == 0)
      SaveCt = argv[I] + 10;
    else if (std::strncmp(argv[I], "--load-ct=", 10) == 0)
      LoadCt = argv[I] + 10;
    else if (std::strncmp(argv[I], "--metrics-dump=", 15) == 0)
      MetricsDump = argv[I] + 15;
  }
  if (Report || !MetricsDump.empty())
    telemetry::Telemetry::instance().setEnabled(true);
  // --- 1. The model (paper Fig. 4), round-tripped through a model file.
  onnx::Model Model = nn::buildLinearInfer(/*Seed=*/42);
  if (Status S = onnx::saveModel(Model, "linear_infer.acemodel")) {
    std::fprintf(stderr, "save failed: %s\n", S.message().c_str());
    return 1;
  }
  auto Loaded = onnx::loadModel("linear_infer.acemodel");
  if (!Loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 Loaded.status().message().c_str());
    return 1;
  }
  std::printf("loaded %s: %lld parameters\n",
              Loaded->MainGraph.Name.c_str(),
              static_cast<long long>(Loaded->parameterCount()));

  // --- 2. Compile, keeping the per-phase IR dumps.
  Rng R(7);
  std::vector<nn::Tensor> Calibration;
  for (int I = 0; I < 3; ++I) {
    nn::Tensor T;
    T.Shape = {1, 84};
    T.Values.resize(84);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1, 1));
    Calibration.push_back(std::move(T));
  }

  air::CompileOptions Opt;
  Opt.NumThreads = Threads; // 0 keeps the ACE_THREADS default
  driver::AceCompiler Compiler(Opt);
  auto Result = Compiler.compile(*Loaded, Calibration, /*KeepDumps=*/true);
  if (!Result.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 Result.status().message().c_str());
    return 1;
  }
  auto &RC = **Result;
  for (const char *Phase : {"NN", "VECTOR", "SIHE", "CKKS"}) {
    std::printf("\n===== %s IR (%zu nodes) =====\n", Phase,
                RC.PhaseNodeCounts[Phase]);
    const std::string &Dump = RC.PhaseDumps[Phase];
    // Print the first lines of each level (full dumps get long).
    size_t Pos = 0;
    for (int Line = 0; Line < 12 && Pos != std::string::npos; ++Line) {
      size_t End = Dump.find('\n', Pos);
      std::printf("%s\n", Dump.substr(Pos, End - Pos).c_str());
      Pos = End == std::string::npos ? End : End + 1;
    }
    if (Pos != std::string::npos)
      std::printf("  ...\n");
  }
  std::printf("\nselected parameters: N=2^%zu, chain=%d primes "
              "(production selection: N=2^%zu at 128-bit)\n",
              static_cast<size_t>(
                  std::log2(RC.State.SelectedParams.RingDegree)),
              RC.State.SelectedParams.NumRescaleModuli + 1,
              static_cast<size_t>(std::log2(RC.State.SecureRingDegree)));

  // --- 3. Keys, encrypt, evaluate, decrypt.
  codegen::CkksExecutor Exec(RC.Program, RC.State);
  if (Status S = Exec.setup()) {
    std::fprintf(stderr, "setup failed: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("key setup: %.3f s, rotation keys: %zu, key memory: %s\n",
              Exec.setupSeconds(), Exec.evalKeys().rotationKeyCount(),
              formatBytes(Exec.memory().evaluationKeyBytes()).c_str());

  const nn::Tensor &Image = Calibration[0];
  auto Clear = nn::executeSingle(Loaded->MainGraph, Image);
  auto InputCt = Exec.encryptInput(Image);
  if (!InputCt.ok()) {
    std::fprintf(stderr, "encrypt failed: %s\n",
                 InputCt.status().message().c_str());
    return 1;
  }
  if (!SaveCt.empty()) {
    std::ofstream OS(SaveCt, std::ios::binary | std::ios::trunc);
    Status S = OS ? fhe::wire::save(*InputCt, OS)
                  : Status::ioError("cannot open '" + SaveCt +
                                    "' for writing");
    if (!S.ok()) {
      std::fprintf(stderr, "save-ct failed: %s\n", S.message().c_str());
      return 1;
    }
    std::printf("saved encrypted input to %s (%s)\n", SaveCt.c_str(),
                formatBytes(static_cast<size_t>(OS.tellp())).c_str());
  }
  if (!LoadCt.empty()) {
    std::ifstream IS(LoadCt, std::ios::binary);
    if (!IS) {
      std::fprintf(stderr, "load-ct failed: cannot open '%s'\n",
                   LoadCt.c_str());
      return 1;
    }
    auto Restored = fhe::wire::loadCiphertext(Exec.context(), IS);
    if (!Restored.ok()) {
      std::fprintf(stderr, "load-ct failed: %s\n",
                   Restored.status().message().c_str());
      return 1;
    }
    std::printf("running on ciphertext restored from %s\n", LoadCt.c_str());
    *InputCt = Restored.take();
  }
  auto OutputCt = Exec.run(*InputCt);
  auto Encrypted =
      OutputCt.ok() ? Exec.decryptLogits(*OutputCt)
                    : StatusOr<std::vector<double>>(OutputCt.status());
  if (!Clear.ok() || !Encrypted.ok()) {
    std::fprintf(stderr, "inference failed\n");
    return 1;
  }
  std::printf("\n%-8s %12s %12s\n", "logit", "cleartext", "encrypted");
  for (size_t K = 0; K < Encrypted->size(); ++K)
    std::printf("%-8zu %12.6f %12.6f\n", K,
                static_cast<double>(Clear->Values[K]), (*Encrypted)[K]);
  std::printf("\nquickstart OK\n");
  if (Report)
    driver::printTelemetryReport(std::cout, ReportJson);
  if (!MetricsDump.empty()) {
    Status S =
        metrics::MetricsRegistry::instance().writePrometheusFile(MetricsDump);
    if (!S.ok()) {
      std::fprintf(stderr, "metrics-dump failed: %s\n",
                   S.message().c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", MetricsDump.c_str());
  }
  return 0;
}
