//===----------------------------------------------------------------------===//
// Serving-layer walkthrough (docs/serving.md): compile an MLP once, stand
// up an InferenceService over it, and drive the request lifecycle end to
// end - two independent client sessions, a normal request, an
// already-expired deadline, an explicit cancellation, and a ciphertext
// routed to the wrong session - then print the service stats.
//===----------------------------------------------------------------------===//

#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "service/InferenceService.h"
#include "support/Crc32c.h"
#include "support/MetricsRegistry.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace ace;

// Prints the per-request diagnostics every completed response carries:
// trace id, stage latencies, and (when telemetry is on) the request's
// own FHE op-count delta.
static void printDiagnostics(const service::InferenceResponse &Resp) {
  std::printf("  trace 0x%016llx: queue %.6fs, exec %.6fs, total %.6fs",
              static_cast<unsigned long long>(Resp.TraceId),
              Resp.QueueSeconds, Resp.ExecSeconds, Resp.LatencySeconds);
  if (Resp.HasMinNoiseBudget)
    std::printf(", min budget %.1f bits", Resp.MinNoiseBudgetBits);
  std::printf("\n  ops:");
  bool Any = false;
  for (size_t I = 0; I < telemetry::kCounterCount; ++I)
    if (Resp.OpDelta.Values[I] > 0) {
      std::printf(" %s=%llu",
                  telemetry::counterName(
                      static_cast<telemetry::Counter>(I)),
                  static_cast<unsigned long long>(Resp.OpDelta.Values[I]));
      Any = true;
    }
  std::printf(Any ? "\n" : " (telemetry disabled)\n");
}

static nn::Tensor randomInput(Rng &R, int64_t Width) {
  nn::Tensor T;
  T.Shape = {1, Width};
  T.Values.resize(static_cast<size_t>(Width));
  for (auto &V : T.Values)
    V = static_cast<float>(R.uniformReal(-1.0, 1.0));
  return T;
}

int main(int argc, char **argv) {
  std::string MetricsDump;
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--metrics-dump=", 15) == 0)
      MetricsDump = argv[I] + 15;
  if (!MetricsDump.empty())
    telemetry::Telemetry::instance().setEnabled(true);
  // Compile once (fast toy parameters; the service shape is the point).
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  Rng R(19);
  std::vector<nn::Tensor> Calib;
  for (int I = 0; I < 4; ++I)
    Calib.push_back(randomInput(R, 16));

  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 4;
  Opt.Seed = 11;
  driver::AceCompiler Compiler(Opt);
  auto Compiled = Compiler.compile(Model, Calib);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 Compiled.status().message().c_str());
    return 1;
  }

  // Serve many: each session generates its own keys.
  service::ServiceConfig Config;
  Config.QueueCapacity = 8;
  service::InferenceService Svc((*Compiled)->Program, (*Compiled)->State,
                                Config);
  auto Alice = Svc.openSession();
  auto Bob = Svc.openSession();
  if (!Alice.ok() || !Bob.ok()) {
    std::fprintf(stderr, "session setup failed\n");
    return 1;
  }

  // 1. A normal request: encrypt -> submit -> await -> decrypt.
  auto Frame = Svc.encryptRequest(*Alice, randomInput(R, 16));
  auto Ticket = Svc.submit(Frame.take());
  auto Resp = Ticket->Result.get();
  auto Logits = Svc.decryptResponse(*Alice, Resp.Bytes);
  std::printf("normal request: %s, %zu logits, latency %.3fs\n",
              Resp.Outcome.ok() ? "ok" : Resp.Outcome.message().c_str(),
              Logits.ok() ? Logits->size() : 0, Resp.LatencySeconds);
  printDiagnostics(Resp);

  // A client-chosen trace id round-trips through both frames, so a log
  // pipeline can join client- and server-side records on it.
  Frame = Svc.encryptRequest(*Alice, randomInput(R, 16), /*ClientTag=*/7,
                             /*DeadlineSeconds=*/-1.0,
                             /*TraceId=*/0xace0000000000001ull);
  Ticket = Svc.submit(Frame.take());
  Resp = Ticket->Result.get();
  std::printf("traced request: [%s] client-chosen trace id echoed: %s\n",
              errorCodeName(Resp.Outcome.code()),
              Resp.TraceId == 0xace0000000000001ull ? "yes" : "NO");
  printDiagnostics(Resp);

  // 2. A request whose deadline already passed when it was submitted.
  Frame = Svc.encryptRequest(*Bob, randomInput(R, 16), /*ClientTag=*/1,
                             /*DeadlineSeconds=*/1e-6);
  Ticket = Svc.submit(Frame.take());
  Resp = Ticket->Result.get();
  std::printf("expired deadline: [%s] %s\n",
              errorCodeName(Resp.Outcome.code()),
              Resp.Outcome.message().c_str());

  // 3. Explicit cancellation of an admitted request.
  Frame = Svc.encryptRequest(*Bob, randomInput(R, 16), /*ClientTag=*/2);
  Ticket = Svc.submit(Frame.take());
  Svc.cancel(Ticket->Id);
  Resp = Ticket->Result.get();
  std::printf("cancelled: [%s] %s\n", errorCodeName(Resp.Outcome.code()),
              Resp.Outcome.message().c_str());

  // 4. Key isolation: Alice's ciphertext submitted as Bob's request is
  // rejected before it can decrypt to garbage under the wrong keys.
  Frame = Svc.encryptRequest(*Alice, randomInput(R, 16));
  std::vector<uint8_t> Forged = Frame.take();
  // Patch the session id to Bob's and re-seal the header CRC the way a
  // confused proxy would.
  for (int I = 0; I < 8; ++I)
    Forged[6 + I] = static_cast<uint8_t>(*Bob >> (8 * I));
  {
    uint32_t Crc = crc32c(Forged.data(), service::frame::kHeaderCrcOffset);
    for (int I = 0; I < 4; ++I)
      Forged[service::frame::kHeaderCrcOffset + I] =
          static_cast<uint8_t>(Crc >> (8 * I));
  }
  auto Misrouted = Svc.submit(std::move(Forged));
  std::printf("misrouted ciphertext: [%s] %s\n",
              errorCodeName(Misrouted.status().code()),
              Misrouted.status().message().c_str());

  std::printf("stats: %s\n", Svc.stats().json().c_str());
  for (size_t I = 0;
       I < static_cast<size_t>(service::InferenceService::kStageCount); ++I) {
    auto Stage = static_cast<service::InferenceService::Stage>(I);
    auto Snap = Svc.latencySnapshot(Stage);
    if (Snap.Count == 0)
      continue;
    std::printf("stage %s: %s\n",
                service::InferenceService::stageName(Stage),
                Snap.quantilesJson().c_str());
  }
  if (!MetricsDump.empty()) {
    // While the service is still alive, so its gauges and stage
    // histograms are part of the exposition.
    Status S =
        metrics::MetricsRegistry::instance().writePrometheusFile(MetricsDump);
    if (!S.ok()) {
      std::fprintf(stderr, "metrics-dump failed: %s\n",
                   S.message().c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", MetricsDump.c_str());
  }
  return 0;
}
