/* Demonstrates the C API's error channel: the same flat interface the
 * generated programs call, driven into a caller mistake on purpose. The
 * rotation below needs a Galois key that keygen never produced; instead
 * of crashing, the call returns NULL and ace_last_error() /
 * ace_last_error_message() describe exactly what is missing.
 *
 * Faults can also be injected from the environment without recompiling:
 *
 *   ACE_FAULT_INJECT=scale-drift ./capi_error_demo
 *
 * corrupts the first ciphertext's scale metadata; ace_encrypt checks
 * its own postcondition (fresh ciphertexts are at the context scale)
 * and reports the mismatch instead of letting the corruption escape.
 */
#include "fhe/CApi.h"

#include <stdio.h>

int main(void) {
  AceFheContext *ctx = ace_create(/*ring_degree=*/1024, /*slots=*/64,
                                  /*log_scale=*/45, /*log_q0=*/55,
                                  /*num_rescale=*/8, /*log_special=*/60,
                                  /*sparse_secret=*/0, /*seed=*/7);
  if (!ctx) {
    fprintf(stderr, "create failed: %s\n", ace_last_error_message());
    return 1;
  }

  /* Generate a rotation key for step 1 only. */
  int64_t steps[] = {1};
  if (ace_keygen(ctx, steps, NULL, 1, /*need_relin=*/1, /*need_conj=*/0,
                 /*bootstrap=*/0, 12, 2, 39) != ACE_OK) {
    fprintf(stderr, "keygen failed: %s\n", ace_last_error_message());
    ace_destroy(ctx);
    return 1;
  }

  double x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = 0.01 * i;
  AceFheCiphertext *ct = ace_encrypt(ctx, x, 64, 9);
  if (!ct) {
    fprintf(stderr, "encrypt failed: %s\n", ace_last_error_message());
    ace_destroy(ctx);
    return 1;
  }

  /* A second encrypt and an add; both succeed in a clean run (with
   * ACE_FAULT_INJECT=scale-drift the program never gets here: the very
   * first ace_encrypt rejects its corrupted output, naming both scales
   * and their ratio). */
  AceFheCiphertext *ct2 = ace_encrypt(ctx, x, 64, 9);
  AceFheCiphertext *sum = ct2 ? ace_add(ctx, ct, ct2) : NULL;
  if (sum) {
    printf("add: ok\n");
    ace_ct_free(sum);
  } else {
    printf("add rejected (code %d): %s\n", (int)ace_last_error(),
           ace_last_error_message());
  }
  ace_ct_free(ct2);

  /* Step 1 has its key: this works. */
  AceFheCiphertext *ok = ace_rotate(ctx, ct, 1);
  printf("rotate by 1: %s\n", ok ? "ok" : "failed");

  /* Step 5 has no key: this fails cleanly with a diagnostic. */
  AceFheCiphertext *bad = ace_rotate(ctx, ct, 5);
  if (!bad) {
    printf("rotate by 5 rejected (code %d): %s\n", (int)ace_last_error(),
           ace_last_error_message());
  } else {
    printf("unexpected: rotate by 5 succeeded\n");
    ace_ct_free(bad);
  }

  ace_ct_free(ok);
  ace_ct_free(ct);
  ace_destroy(ctx);
  printf("capi_error_demo OK\n");
  return 0;
}
