//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// C code generation walkthrough (paper Sec. 3.4): compile the Figure 4
// model, emit a standalone C program against the ACEfhe C API with the
// weights externalized to a binary side file, and lower the program to
// the POLY IR, printing the operator-fusion statistics of Sec. 4.5.
//
// Run: ./emit_c   (writes linear_infer.c + linear_infer.weights)
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "passes/CkksToPoly.h"
#include "support/Rng.h"

#include <cstdio>

using namespace ace;

int main() {
  onnx::Model Model = nn::buildLinearInfer(42);
  Rng R(5);
  std::vector<nn::Tensor> Calib(1);
  Calib[0].Shape = {1, 84};
  Calib[0].Values.resize(84);
  for (auto &V : Calib[0].Values)
    V = static_cast<float>(R.uniformReal(-1, 1));

  driver::AceCompiler Compiler(air::CompileOptions{});
  auto Result = Compiler.compile(Model, Calib);
  if (!Result.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 Result.status().message().c_str());
    return 1;
  }
  auto &RC = **Result;

  // Emit C + external weights (paper: 384 KB source + 215 MB weights for
  // ResNet-20; proportions shrink with the nano models).
  auto Program = codegen::emitC(RC.Program, RC.State,
                                "linear_infer.weights");
  if (Status S = codegen::writeProgram(Program, "linear_infer")) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  std::printf("emitted linear_infer.c (%zu bytes) + linear_infer.weights "
              "(%zu doubles across %zu constants)\n",
              Program.CSource.size(), Program.Weights.size(),
              Program.ConstCount);

  // Lower to POLY with and without fusion (paper Sec. 4.5).
  for (bool Fusion : {false, true}) {
    passes::PolyStats Stats;
    air::IrFunction Poly("linear_infer.poly");
    if (Status S =
            passes::lowerToPoly(RC.Program, RC.State, Fusion, Poly, &Stats)) {
      std::fprintf(stderr, "%s\n", S.message().c_str());
      return 1;
    }
    std::printf("POLY IR (%s fusion): %zu rns loops, %zu hw ops "
                "(modmul=%zu modadd=%zu modmuladd=%zu ntt=%zu intt=%zu), "
                "fused decomp_modup=%zu\n",
                Fusion ? "with" : "without", Stats.RnsLoops,
                Stats.totalHwOps(), Stats.HwModMul, Stats.HwModAdd,
                Stats.HwModMulAdd, Stats.HwNtt, Stats.HwIntt,
                Stats.FusedDecompModUp);
  }
  std::printf("emit_c OK\n");
  return 0;
}
