#!/bin/sh
# Table 8-style lines-of-code breakdown of this repository.
cd "$(dirname "$0")/.."
echo "component            code   tests"
for d in support fhe onnx nn air passes codegen expert driver; do
  code=$(cat src/$d/*.h src/$d/*.cpp 2>/dev/null | wc -l)
  printf "%-18s %7d\n" "src/$d" "$code"
done
printf "%-18s %7d\n" "tests" "$(find tests -name '*.cpp' | xargs cat | wc -l)"
printf "%-18s %7d\n" "bench" "$(find bench -name '*.cpp' -o -name '*.h' | xargs cat | wc -l)"
printf "%-18s %7d\n" "examples" "$(find examples -name '*.cpp' | xargs cat | wc -l)"
printf "%-18s %7d\n" "total" "$(find src tests bench examples -name '*.cpp' -o -name '*.h' | xargs cat | wc -l)"
