#!/usr/bin/env python3
"""Documentation checks run by CI (docs-check job).

Two invariants:
  1. Every page under docs/ is referenced (linked) from README.md, so
     the README docs index stays the complete entry point.
  2. Every relative markdown link in README.md, DESIGN.md,
     EXPERIMENTS.md, ROADMAP.md, and docs/*.md points at a file that
     exists (anchors are stripped; absolute URLs are ignored).

Exits nonzero listing every violation.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images and in-page/external targets.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def markdown_files():
    top = [ROOT / n for n in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                              "ROADMAP.md")]
    return [p for p in top if p.exists()] + sorted(
        (ROOT / "docs").glob("*.md"))


def check_links(path):
    errors = []
    for num, line in enumerate(path.read_text().splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#")[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(ROOT)}:{num}: "
                              f"broken link -> {target}")
    return errors


def main():
    errors = []
    readme = (ROOT / "README.md").read_text()
    for page in sorted((ROOT / "docs").glob("*.md")):
        if f"docs/{page.name}" not in readme:
            errors.append(f"README.md: docs/{page.name} is not referenced "
                          "(add it to the docs index)")
    for path in markdown_files():
        errors.extend(check_links(path))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    count = len(markdown_files())
    print(f"docs check OK: {count} markdown files, all docs/ pages "
          "indexed, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
