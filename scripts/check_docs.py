#!/usr/bin/env python3
"""Documentation checks run by CI (docs-check job).

Three invariants:
  1. Every page under docs/ is referenced (linked) from README.md, so
     the README docs index stays the complete entry point.
  2. Every relative markdown link in README.md, DESIGN.md,
     EXPERIMENTS.md, ROADMAP.md, and docs/*.md points at a file that
     exists (anchors are stripped; absolute URLs are ignored).
  3. Every public entry point of the poly-ops backend contract
     (src/fhe/PolyBackend.h: the PolyBackend virtual methods and the
     free selection functions) is mentioned by name in docs/kernels.md,
     so the backend contract documentation cannot silently fall behind
     the interface.
  4. Same for the memory-governance contract: every public entry point
     of src/support/ResourceGovernor.h (governor methods, GovernorStats
     helpers, the free parsing/naming functions) is mentioned by name
     in docs/memory.md.
  5. Same for the compiler pipeline-policy contract: every public entry
     point of src/support/PipelineConfig.h (knob enums, parse/resolve
     functions, the ACE_LAZY_RESCALE / ACE_PACKING environment
     variables) is mentioned by name in docs/compiler.md.

Exits nonzero listing every violation.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images and in-page/external targets.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def markdown_files():
    top = [ROOT / n for n in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                              "ROADMAP.md")]
    return [p for p in top if p.exists()] + sorted(
        (ROOT / "docs").glob("*.md"))


def check_links(path):
    errors = []
    for num, line in enumerate(path.read_text().splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#")[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(ROOT)}:{num}: "
                              f"broken link -> {target}")
    return errors


GENERIC_NAMES = {"name"}  # too common to grep for meaningfully

# `virtual ... name(...)` methods and namespace-scope `... name(...);`
# free-function declarations in the backend header.
VIRTUAL_METHOD = re.compile(r"virtual\s+[\w:*&\s]+?(\w+)\s*\(")
FREE_FUNCTION = re.compile(r"^(?:const\s+)?[\w:&*]+\s+[&*]?(\w+)\s*\(",
                           re.MULTILINE)


def backend_entry_points():
    """Public names of the poly backend contract: the PolyBackend
    virtual methods plus the free selection functions declared after the
    class body."""
    header = (ROOT / "src/fhe/PolyBackend.h").read_text()
    names = set(VIRTUAL_METHOD.findall(header))
    after_class = header.split("};", 1)[1] if "};" in header else header
    names.update(m for m in FREE_FUNCTION.findall(after_class)
                 if m not in ("namespace", "endif", "include"))
    return sorted(names - GENERIC_NAMES)


def check_backend_doc():
    doc = ROOT / "docs/kernels.md"
    if not doc.exists():
        return ["docs/kernels.md: missing (the poly backend contract "
                "must be documented)"]
    text = doc.read_text()
    return [f"docs/kernels.md: backend entry point '{name}' from "
            "src/fhe/PolyBackend.h is not documented"
            for name in backend_entry_points() if name not in text]


def governor_entry_points():
    """Public names of the memory-governance contract: ResourceGovernor's
    public methods, the GovernorStats helpers, and the namespace-scope
    free functions in src/support/ResourceGovernor.h."""
    header = (ROOT / "src/support/ResourceGovernor.h").read_text()
    names = set()
    access_public = True  # namespace scope; class bodies toggle it
    for line in header.splitlines():
        stripped = line.strip()
        if stripped == "private:":
            access_public = False
            continue
        if stripped == "public:" or stripped.startswith("};"):
            access_public = True
            continue
        if not access_public:
            continue
        # Declarations sit at indent 0 (free functions) or 2 (members);
        # deeper lines are inline bodies.
        if not re.match(r"^(?:  )?\S", line):
            continue
        code = line.split("///")[0].split("//")[0]
        if stripped.startswith(("//", "/*", "*", "#", "using", "struct",
                                "class", "enum", "}", "{", "return")):
            continue
        m = re.search(r"[&*]?(\w+)\(", code)
        if m:
            names.add(m.group(1))
    return sorted(names - GENERIC_NAMES)


def check_governor_doc():
    doc = ROOT / "docs/memory.md"
    if not doc.exists():
        return ["docs/memory.md: missing (the memory-governance contract "
                "must be documented)"]
    text = doc.read_text()
    return [f"docs/memory.md: governance entry point '{name}' from "
            "src/support/ResourceGovernor.h is not documented"
            for name in governor_entry_points() if name not in text]


def pipeline_entry_points():
    """Public names of the compiler pipeline-policy contract: the free
    functions of src/support/PipelineConfig.h plus the knob enum values
    and the environment variables they resolve from."""
    header = (ROOT / "src/support/PipelineConfig.h").read_text()
    names = set(m for m in FREE_FUNCTION.findall(header)
                if m not in ("namespace", "endif", "include", "define",
                             "ifndef"))
    names.update(re.findall(r"\b(RM_\w+|PS_\w+)\b", header))
    names.update(("ACE_LAZY_RESCALE", "ACE_PACKING"))
    return sorted(names - GENERIC_NAMES)


def check_pipeline_doc():
    doc = ROOT / "docs/compiler.md"
    if not doc.exists():
        return ["docs/compiler.md: missing (the pipeline policy contract "
                "must be documented)"]
    text = doc.read_text()
    return [f"docs/compiler.md: pipeline entry point '{name}' from "
            "src/support/PipelineConfig.h is not documented"
            for name in pipeline_entry_points() if name not in text]


def main():
    errors = []
    readme = (ROOT / "README.md").read_text()
    for page in sorted((ROOT / "docs").glob("*.md")):
        if f"docs/{page.name}" not in readme:
            errors.append(f"README.md: docs/{page.name} is not referenced "
                          "(add it to the docs index)")
    for path in markdown_files():
        errors.extend(check_links(path))
    errors.extend(check_backend_doc())
    errors.extend(check_governor_doc())
    errors.extend(check_pipeline_doc())
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    count = len(markdown_files())
    entry_points = len(backend_entry_points())
    governor_points = len(governor_entry_points())
    pipeline_points = len(pipeline_entry_points())
    print(f"docs check OK: {count} markdown files, all docs/ pages "
          "indexed, all relative links resolve, all "
          f"{entry_points} poly-backend, {governor_points} "
          f"memory-governance and {pipeline_points} pipeline-policy "
          "entry points documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
