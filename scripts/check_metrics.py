#!/usr/bin/env python3
"""Validate the observability exports (docs/observability.md).

Usage:
    check_metrics.py METRICS_FILE [EVENTLOG_FILE] [--service] [--expect-slow]

METRICS_FILE is a Prometheus text exposition written by --metrics-dump
or ACE_METRICS. Checks:

  * every sample line parses, and its family is introduced by exactly
    one ``# HELP`` + ``# TYPE`` header pair before the first sample;
  * histogram families are complete: cumulative ``_bucket`` counts are
    monotone in ``le``, the ``+Inf`` bucket equals ``_count``, and
    ``_sum``/``_count`` are present per label set;
  * the built-in families (``ace_ops_total``, trace-buffer accounting,
    peak RSS) are present; with ``--service``, the serving families
    (``ace_service_stage_seconds``, queue/in-flight/session gauges) too.

EVENTLOG_FILE is a JSONL request log written by ACE_EVENT_LOG. Checks:

  * every line is one valid JSON object with the required schema keys;
  * ``trace_id`` is a 16-digit hex string;
  * records flagged ``slow`` carry the upgraded payload (``spans`` and
    ``health`` objects); with ``--expect-slow``, at least one such
    record must exist.

Exits nonzero with a message per violation.
"""

import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'      # metric name
    r'(?:\{([^}]*)\})?'                  # optional label list
    r' (-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|[+-]Inf|NaN)$'
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

REQUIRED_FAMILIES = [
    "ace_ops_total",
    "ace_trace_events_total",
    "ace_trace_dropped_events_total",
    "ace_peak_rss_bytes",
    # Resource governor / limb pool / key cache (docs/memory.md) —
    # always exported, zero-valued when the feature is idle.
    "ace_memory_budget_bytes",
    "ace_memory_charged_bytes",
    "ace_memory_remaining_bytes",
    "ace_memory_shed_total",
    "ace_memory_reclaimed_bytes_total",
    "ace_limb_pool_resident_bytes",
    "ace_limb_pool_free_bytes",
    "ace_limb_pool_acquires_total",
    "ace_key_cache_requests_total",
    "ace_key_cache_evictions_total",
    "ace_key_cache_hit_ratio",
]
SERVICE_FAMILIES = [
    "ace_service_stage_seconds",
    "ace_service_queue_depth",
    "ace_service_in_flight",
    "ace_service_open_sessions",
]

EVENT_REQUIRED_KEYS = [
    "ts", "event", "session", "trace_id", "request", "client_tag",
    "status", "ops",
]


def family_of(name):
    """Histogram series share one family header."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(path, require_service):
    errors = []
    helps, types = {}, {}
    # family -> label-set-sans-le -> list of (le, value); plus _sum/_count
    buckets, sums, counts = {}, {}, {}
    seen_families = set()

    with open(path) as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split(None, 3)[2]
            if name in helps:
                errors.append(f"{path}:{lineno}: duplicate # HELP for {name}")
            helps[name] = lineno
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"{path}:{lineno}: malformed # TYPE line")
                continue
            name = parts[2]
            if name in types:
                errors.append(f"{path}:{lineno}: duplicate # TYPE for {name}")
            types[name] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{path}:{lineno}: unparseable sample: {line!r}")
            continue
        name, labelstr, value = m.group(1), m.group(2) or "", m.group(3)
        fam = family_of(name)
        seen_families.add(fam)
        if fam not in helps or fam not in types:
            errors.append(
                f"{path}:{lineno}: sample {name} before its family header")
            continue
        labels = dict(LABEL_RE.findall(labelstr))
        if types.get(fam) == "histogram":
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{path}:{lineno}: _bucket without le")
                    continue
                le = (float("inf") if labels["le"] == "+Inf"
                      else float(labels["le"]))
                buckets.setdefault(fam, {}).setdefault(key, []).append(
                    (le, float(value), lineno))
            elif name.endswith("_sum"):
                sums.setdefault(fam, {})[key] = float(value)
            elif name.endswith("_count"):
                counts.setdefault(fam, {})[key] = float(value)
            else:
                errors.append(
                    f"{path}:{lineno}: bare sample {name} in histogram "
                    f"family {fam}")

    for fam, by_label in buckets.items():
        for key, series in by_label.items():
            where = f"{path}: {fam}{dict(key)}"
            series.sort(key=lambda t: t[0])
            values = [v for _, v, _ in series]
            if values != sorted(values):
                errors.append(f"{where}: bucket counts not cumulative")
            if series[-1][0] != float("inf"):
                errors.append(f"{where}: missing le=\"+Inf\" bucket")
            elif key in counts.get(fam, {}) and \
                    series[-1][1] != counts[fam][key]:
                errors.append(
                    f"{where}: +Inf bucket {series[-1][1]} != _count "
                    f"{counts[fam][key]}")
            if key not in sums.get(fam, {}):
                errors.append(f"{where}: missing _sum")
            if key not in counts.get(fam, {}):
                errors.append(f"{where}: missing _count")

    required = list(REQUIRED_FAMILIES)
    if require_service:
        required += SERVICE_FAMILIES
    for fam in required:
        if fam not in seen_families:
            errors.append(f"{path}: required family {fam} missing")
    return errors


def check_event_log(path, expect_slow):
    errors = []
    records = slow_records = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: invalid JSON: {exc}")
                continue
            if not isinstance(rec, dict):
                errors.append(f"{path}:{lineno}: not a JSON object")
                continue
            records += 1
            for key in EVENT_REQUIRED_KEYS:
                if key not in rec:
                    errors.append(f"{path}:{lineno}: missing key {key!r}")
            if "trace_id" in rec and not re.fullmatch(
                    r"0x[0-9a-f]{16}", str(rec["trace_id"])):
                errors.append(
                    f"{path}:{lineno}: malformed trace_id "
                    f"{rec.get('trace_id')!r}")
            if "ops" in rec and not isinstance(rec["ops"], dict):
                errors.append(f"{path}:{lineno}: 'ops' is not an object")
            if rec.get("slow"):
                slow_records += 1
                for key in ("spans", "health"):
                    if not isinstance(rec.get(key), dict):
                        errors.append(
                            f"{path}:{lineno}: slow record missing "
                            f"object key {key!r}")
    if records == 0:
        errors.append(f"{path}: no event-log records")
    if expect_slow and slow_records == 0:
        errors.append(f"{path}: no slow-flagged records "
                      "(is ACE_SLOW_REQUEST_SECONDS armed?)")
    return errors


def main(argv):
    flags = [a for a in argv[1:] if a.startswith("--")]
    paths = [a for a in argv[1:] if not a.startswith("--")]
    unknown = set(flags) - {"--service", "--expect-slow"}
    if unknown or not paths or len(paths) > 2:
        sys.stderr.write(__doc__)
        return 2
    errors = check_metrics(paths[0], "--service" in flags)
    if len(paths) == 2:
        errors += check_event_log(paths[1], "--expect-slow" in flags)
    for err in errors:
        print(f"ERROR: {err}")
    if not errors:
        print(f"check_metrics: OK ({', '.join(paths)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
