//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C code generation (paper Sec. 3.4): turns a compiled CKKS program into
/// a standalone C source file calling the ACEfhe C API, with weights and
/// masks externalized into a binary side file (the paper reports this
/// cuts ResNet-20's generated source from 621 MB to 384 KB). The
/// generated program performs setup, key generation (with the analyzed
/// rotation set and level caps), encryption, the full homomorphic
/// program, and decryption.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_CODEGEN_CODEEMITTER_H
#define ACE_CODEGEN_CODEEMITTER_H

#include "air/Pass.h"

#include <string>

namespace ace {
namespace codegen {

/// Emission result: the C translation unit plus the weight blob.
struct EmittedProgram {
  std::string CSource;
  std::vector<double> Weights; ///< externalized constants, in blob order
  size_t ConstCount = 0;
};

/// Emits C for \p F (CKKS dialect). \p WeightsPath is the file name the
/// generated program loads the blob from.
EmittedProgram emitC(const air::IrFunction &F,
                     const air::CompileState &State,
                     const std::string &WeightsPath);

/// Writes both artifacts to disk: <Stem>.c and <Stem>.weights.
Status writeProgram(const EmittedProgram &Program, const std::string &Stem);

} // namespace codegen
} // namespace ace

#endif // ACE_CODEGEN_CODEEMITTER_H
