//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process execution of a compiled CKKS-IR program against the ACEfhe
/// runtime - the role the generated C program plays in the real ANT-ACE
/// deployment (paper Fig. 2): setup generates exactly the keys the
/// compiler's analysis requested; the encryptor packs and normalizes a
/// tensor per the selected layout; run() interprets the CKKS IR; the
/// decryptor unpacks the logits. Region timing by origin operator feeds
/// the paper's Figure 6 breakdown, and key-material byte counts feed
/// Figure 7.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_CODEGEN_CKKSEXECUTOR_H
#define ACE_CODEGEN_CKKSEXECUTOR_H

#include "air/Pass.h"
#include "fhe/Bootstrapper.h"
#include "fhe/Encryptor.h"
#include "nn/Executor.h"
#include "support/MemTrack.h"
#include "support/Timer.h"

#include <memory>

namespace ace {
namespace codegen {

/// Executes one compiled program.
class CkksExecutor {
public:
  /// \p F must be in the CKKS dialect; \p State the post-pipeline state.
  /// Both must outlive the executor.
  CkksExecutor(const air::IrFunction &F, const air::CompileState &State);
  ~CkksExecutor();

  /// Builds the context, generates keys (secret, public, relin,
  /// rotation set from the key analysis, bootstrap Galois set), and
  /// instantiates evaluator + bootstrapper.
  Status setup();

  /// Client-side: packs, normalizes, encodes and encrypts a tensor.
  /// Routes through the checked encryptor, so injected ciphertext faults
  /// (and bad layouts) surface here as a Status.
  StatusOr<fhe::Ciphertext> encryptInput(const nn::Tensor &Input);

  /// Server-side: runs the encrypted inference. Every homomorphic step
  /// goes through the checked evaluator tier: a corrupted operand or a
  /// missing key aborts the run with a diagnostic Status instead of
  /// crashing the process.
  StatusOr<fhe::Ciphertext> run(const fhe::Ciphertext &Input);

  /// Client-side: decrypts and unpacks the logits.
  StatusOr<std::vector<double>> decryptLogits(const fhe::Ciphertext &Output);

  /// Convenience: encrypt, run, decrypt.
  StatusOr<std::vector<double>> infer(const nn::Tensor &Input);

  /// Wall time per origin operator kind for the last run() (Fig. 6).
  const TimingRegistry &regionTimes() const { return RegionTimes; }

  /// Key/ciphertext memory by category (Fig. 7).
  const MemTracker &memory() const { return Memory; }

  /// Seconds spent in setup (key generation dominates).
  double setupSeconds() const { return SetupSeconds; }

  const fhe::Context &context() const { return *Ctx; }
  const fhe::OpCounters &counters() const { return Eval->counters(); }
  const fhe::EvalKeys &evalKeys() const { return Keys; }

private:
  const air::IrFunction &F;
  const air::CompileState &State;

  std::unique_ptr<fhe::Context> Ctx;
  std::unique_ptr<fhe::Encoder> Enc;
  std::unique_ptr<fhe::KeyGenerator> Gen;
  fhe::PublicKey Pub;
  fhe::EvalKeys Keys;
  std::unique_ptr<fhe::Evaluator> Eval;
  std::unique_ptr<fhe::Bootstrapper> Boot;
  std::unique_ptr<fhe::Encryptor> Encrypt;
  std::unique_ptr<fhe::Decryptor> Decrypt;

  TimingRegistry RegionTimes;
  MemTracker Memory;
  double SetupSeconds = 0.0;

  /// Encoded-plaintext cache: (node id, numQ, log2 scale bucket).
  std::map<std::tuple<int, size_t, int64_t>, fhe::Plaintext> PlainCache;

  const fhe::Plaintext &encodedConst(const air::IrNode *ConstNode,
                                     const fhe::Ciphertext &For,
                                     bool ForMul);
};

} // namespace codegen
} // namespace ace

#endif // ACE_CODEGEN_CKKSEXECUTOR_H
