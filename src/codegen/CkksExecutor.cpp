//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"

#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::codegen;
using namespace ace::air;
using fhe::Ciphertext;
using fhe::Plaintext;

CkksExecutor::CkksExecutor(const IrFunction &F, const CompileState &State)
    : F(F), State(State) {}

CkksExecutor::~CkksExecutor() = default;

void CkksExecutor::enableLazyRotationKeys(size_t CapacityBytes) {
  LazyRotationKeys = true;
  KeyCacheCapacity = CapacityBytes;
}

Status CkksExecutor::setup(uint64_t SeedOverride) {
  telemetry::TraceSpan Span("executor", "setup");
  WallTimer Clock;
  fhe::CkksParams P = State.SelectedParams;
  if (SeedOverride != 0)
    P.Seed = SeedOverride;
  if (!P.valid())
    return Status::error("invalid selected parameters");
  // Apply the compile-level thread request before any runtime work so
  // key generation and execution share one pool configuration.
  if (State.Options.NumThreads > 0)
    ACE_RETURN_IF_ERROR(ThreadPool::instance().setNumThreads(
        static_cast<size_t>(State.Options.NumThreads)));
  // The old cache (a re-setup) references the old Ctx/Gen; drop it
  // before they are replaced.
  KeyCache.reset();
  Ctx = std::make_unique<fhe::Context>(P);
  Enc = std::make_unique<fhe::Encoder>(*Ctx);
  Gen = std::make_unique<fhe::KeyGenerator>(*Ctx);
  Pub = Gen->makePublicKey();
  if (LazyRotationKeys) {
    KeyCache = std::make_unique<fhe::RotationKeyCache>(*Ctx, *Gen);
    KeyCache->setCapacityBytes(KeyCacheCapacity);
  }
  Eval = std::make_unique<fhe::Evaluator>(*Ctx, *Enc, Keys, KeyCache.get());

  // Key generation restricted to the analyzed requirements (paper RQ2's
  // memory win over generating every power-of-two key). The Expert
  // baseline instead generates the full power-of-two key set, as hand
  // implementations and FHE libraries do by default.
  // Bootstrap keys first: its rotations run at the raised levels and need
  // full-depth keys, even when the same step also appears in the program.
  std::vector<int64_t> FullSteps;
  if (State.BootstrapCount > 0) {
    fhe::BootstrapConfig Cfg;
    Cfg.RangeK = State.Options.BootstrapRangeK;
    Cfg.DoubleAngleCount = State.Options.BootstrapDoubleAngle;
    Cfg.ChebyshevDegree = State.Options.BootstrapChebDegree;
    Boot = std::make_unique<fhe::Bootstrapper>(*Eval, Cfg);
    FullSteps = Boot->requiredRotations();
    if (KeyCache)
      for (uint64_t Galois : Boot->requiredGaloisElements())
        KeyCache->declareGalois(Galois);
    else
      Gen->fillGaloisKeys(Keys, Boot->requiredGaloisElements());
  }
  if (!State.Options.EnableRotationKeyAnalysis) {
    // Hand implementations generate every key their rotations might use -
    // the exact step set plus the generic power-of-two set (both
    // directions) - at the full margin-padded chain, so each key is also
    // bigger.
    FullSteps.insert(FullSteps.end(), State.RotationSteps.begin(),
                     State.RotationSteps.end());
    for (size_t S = 1; S < P.Slots; S <<= 1) {
      FullSteps.push_back(static_cast<int64_t>(S));
      FullSteps.push_back(static_cast<int64_t>(P.Slots - S));
    }
  }
  // In lazy mode only relin/conjugation are generated here; rotations
  // are declared on the cache (bootstrap steps at full depth, analyzed
  // steps at their truncation level — declareRotation keeps the widest
  // when they overlap) and materialize on first use.
  Gen->fillEvalKeys(Keys, KeyCache ? std::vector<int64_t>() : FullSteps,
                    State.NeedsRelin, State.NeedsConjugation);
  if (KeyCache)
    for (int64_t Step : FullSteps)
      KeyCache->declareRotation(Step);
  if (State.Options.EnableRotationKeyAnalysis) {
    // Level-aware key generation: each step's key truncates to the
    // deepest level the dataflow analysis saw it used at. Compute
    // rotations sit far below the bootstrap's raised levels, so their
    // keys shrink quadratically.
    for (int64_t Step : State.RotationSteps) {
      uint64_t Galois =
          fhe::galoisForRotation(Ctx->degree(), Ctx->slots(), Step);
      auto It = State.RotationStepMaxNumQ.find(Step);
      size_t MaxNumQ = It != State.RotationStepMaxNumQ.end()
                           ? It->second
                           : Ctx->chainLength();
      if (KeyCache) {
        KeyCache->declareRotation(Step, MaxNumQ);
        continue;
      }
      if (Keys.Rotations.count(Galois))
        continue;
      Keys.Rotations.emplace(Galois,
                             Gen->makeRotationKey(Step, MaxNumQ));
    }
  }
  Encrypt = std::make_unique<fhe::Encryptor>(*Ctx, Pub);
  Decrypt = std::make_unique<fhe::Decryptor>(*Ctx, Gen->secretKey());

  Memory.clear();
  Memory.add(MemCategoryKind::MC_SecretKey, Gen->secretKey().byteSize());
  Memory.add(MemCategoryKind::MC_PublicKey, Pub.byteSize());
  Memory.add(MemCategoryKind::MC_RelinKey, Keys.relinByteSize());
  Memory.add(MemCategoryKind::MC_RotationKeys, Keys.rotationByteSize());

  SetupSeconds = Clock.seconds();
  if (telemetry::enabled()) {
    telemetry::Telemetry::instance().recordSnapshot("executor:setup");
    telemetry::Telemetry::instance().sampleRss("rss");
  }
  return Status::success();
}

StatusOr<fhe::Ciphertext>
CkksExecutor::encryptInput(const nn::Tensor &Input) {
  if (!Encrypt)
    return Status::invalidArgument("executor: setup() not run");
  telemetry::TraceSpan Span("executor", "encrypt");
  const CipherLayout &L = State.InputLayout;
  std::vector<double> Slots(L.slotCount(), 0.0);
  double Inv = 1.0 / State.InputDataScale;
  if (Input.Shape.size() == 4) {
    size_t C = Input.Shape[1], H = Input.Shape[2], W = Input.Shape[3];
    if (Input.Values.size() < C * H * W)
      return Status::invalidArgument(
          "executor: input tensor holds " +
          std::to_string(Input.Values.size()) + " values but its shape " +
          std::to_string(C) + "x" + std::to_string(H) + "x" +
          std::to_string(W) + " needs " + std::to_string(C * H * W));
    // Channels map to disjoint slot sets (the layout is injective), so
    // the packing loop is parallel per channel.
    parallelFor(0, C, [&](size_t Cc) {
      for (size_t Hh = 0; Hh < H; ++Hh)
        for (size_t Ww = 0; Ww < W; ++Ww)
          Slots[L.slotOf(Cc, Hh, Ww)] =
              Input.Values[(Cc * H + Hh) * W + Ww] * Inv;
    });
  } else {
    for (size_t I = 0; I < Input.Values.size(); ++I)
      Slots[L.slotOf(0, 0, I)] = Input.Values[I] * Inv;
  }
  return Encrypt->checkedEncryptValues(*Enc, Slots, State.InputNumQ);
}

const Plaintext &CkksExecutor::encodedConst(const IrNode *ConstNode,
                                            const Ciphertext &For,
                                            bool ForMul) {
  double Scale = ForMul ? Eval->mulPlainScale(For) : For.Scale;
  auto Key = std::make_tuple(ConstNode->Id, For.numQ(),
                             static_cast<int64_t>(std::llround(
                                 std::log2(Scale) * 4096.0)));
  auto It = PlainCache.find(Key);
  if (It != PlainCache.end())
    return It->second;
  Plaintext P = Enc->encodeReal(ConstNode->Data, Scale, For.numQ());
  Memory.add(MemCategoryKind::MC_Plaintexts, P.byteSize());
  return PlainCache.emplace(Key, std::move(P)).first->second;
}

StatusOr<fhe::Ciphertext>
CkksExecutor::run(const Ciphertext &Input, const CancellationToken &Token) {
  CancellationScope Scope(Token);
  return run(Input);
}

StatusOr<fhe::Ciphertext> CkksExecutor::run(const Ciphertext &Input) {
  if (!Eval)
    return Status::invalidArgument("executor: setup() not run");
  // A fresh client input is always encrypted at the context scale with
  // the layout's packing; rejecting corrupted inputs here catches faults
  // (e.g. metadata drift) that a purely linear program would otherwise
  // carry through to wrong logits, because plaintext encoding adapts to
  // whatever scale the operand claims.
  ACE_RETURN_IF_ERROR(fhe::validateCiphertext(*Ctx, Input, "run input"));
  if (!fhe::scalesClose(Input.Scale, Ctx->scale()))
    return Status::scaleMismatch(
        fhe::scaleMismatchMessage("executor input", Input.Scale,
                                  Ctx->scale()) +
        "; fresh inputs must be encrypted at the context scale");
  RegionTimes.clear();
  telemetry::TraceSpan RunSpan("executor", "run");
  std::map<int, Ciphertext> Values;
  const IrNode *ConstOf[1]; // silence unused warnings in release
  (void)ConstOf;

  auto ConstOperand = [&](const IrNode *N) -> const IrNode * {
    // CkksEncode wraps a ConstVec.
    assert(N->Kind == NodeKind::NK_CkksEncode && "expected encode node");
    return N->Operands[0];
  };

  // Rotations that share an operand ciphertext (the baby steps of a BSGS
  // matvec) are served as one hoisted batch: one digit decomposition for
  // the whole group instead of one per rotation. SSA guarantees the
  // operand's value never changes, so the batch can run at the first
  // member and later members just read their precomputed result.
  std::map<int, std::vector<const IrNode *>> RotateGroups;
  if (State.Options.EnableRotationKeyAnalysis)
    for (const auto &NPtr : F.nodes())
      if (NPtr->Kind == NodeKind::NK_CkksRotate)
        RotateGroups[NPtr->Operands[0]->Id].push_back(NPtr.get());

  Ciphertext Result;
  bool HaveResult = false;
  for (const auto &NPtr : F.nodes()) {
    const IrNode *N = NPtr.get();
    if (N->Kind == NodeKind::NK_ConstVec ||
        N->Kind == NodeKind::NK_CkksEncode)
      continue; // materialized at use
    // Cooperative cancellation boundary: one poll per IR node, so a
    // cancelled or deadline-expired request costs at most one more CKKS
    // op before unwinding.
    ACE_RETURN_IF_ERROR(checkCancellation("executor"));
    telemetry::TraceSpan RegionSpan("region", originKindName(N->Origin),
                                    &RegionTimes);
    switch (N->Kind) {
    case NodeKind::NK_Input:
      Values[N->Id] = Input;
      break;
    case NodeKind::NK_CkksRotate: {
      const Ciphertext &A = Values.at(N->Operands[0]->Id);
      int64_t Slots = static_cast<int64_t>(A.Slots);
      if (Slots <= 0)
        return Status::invalidArgument(
            "executor rotate: operand reports " + std::to_string(Slots) +
            " slots");
      int64_t Step = ((N->rotationSteps() % Slots) + Slots) % Slots;
      if (State.Options.EnableRotationKeyAnalysis) {
        if (Values.count(N->Id))
          break; // already served by an earlier hoisted batch
        auto GroupIt = RotateGroups.find(N->Operands[0]->Id);
        if (GroupIt != RotateGroups.end() && GroupIt->second.size() >= 2) {
          std::vector<int64_t> Steps;
          Steps.reserve(GroupIt->second.size());
          for (const IrNode *Member : GroupIt->second)
            Steps.push_back(Member->rotationSteps());
          ACE_ASSIGN_OR_RETURN(std::vector<Ciphertext> Outs,
                               Eval->checkedRotateHoisted(A, Steps));
          for (size_t I = 0; I < Outs.size(); ++I)
            Values[GroupIt->second[I]->Id] = std::move(Outs[I]);
          break;
        }
        ACE_ASSIGN_OR_RETURN(Values[N->Id], Eval->checkedRotate(A, Step));
      } else {
        // Power-of-two key set only: decompose the step bit by bit (the
        // extra key switches are the Expert baseline's rotation cost).
        Ciphertext Cur = A;
        for (int64_t Bit = 1; Bit < Slots; Bit <<= 1) {
          if (Step & Bit) {
            ACE_ASSIGN_OR_RETURN(Cur, Eval->checkedRotate(Cur, Bit));
          }
        }
        Values[N->Id] = std::move(Cur);
      }
      break;
    }
    case NodeKind::NK_CkksMul: {
      const Ciphertext &A = Values.at(N->Operands[0]->Id);
      if (N->Operands[1]->Type == TypeKind::TK_Plain) {
        ACE_RETURN_IF_ERROR(fhe::validateCiphertext(*Ctx, A, "mulPlain"));
        const Plaintext &P =
            encodedConst(ConstOperand(N->Operands[1]), A, /*ForMul=*/true);
        Values[N->Id] = Eval->mulPlain(A, P);
      } else {
        const Ciphertext &B = Values.at(N->Operands[1]->Id);
        ACE_RETURN_IF_ERROR(fhe::validateCiphertext(*Ctx, A, "mul"));
        ACE_RETURN_IF_ERROR(fhe::validateCiphertext(*Ctx, B, "mul"));
        if (A.numQ() != B.numQ())
          return Status::levelMismatch(
              "executor mul: lhs at " + std::to_string(A.numQ()) +
              " active primes, rhs at " + std::to_string(B.numQ()) +
              " (the compiler should have inserted a modswitch)");
        if (!fhe::scalesClose(A.Scale, B.Scale))
          return Status::scaleMismatch(
              fhe::scaleMismatchMessage("executor mul", A.Scale, B.Scale));
        Values[N->Id] = Eval->mulNoRelin(A, B);
      }
      break;
    }
    case NodeKind::NK_CkksRelin: {
      ACE_ASSIGN_OR_RETURN(
          Values[N->Id],
          Eval->checkedRelinearize(Values.at(N->Operands[0]->Id)));
      break;
    }
    case NodeKind::NK_CkksMulConst: {
      const Ciphertext &A = Values.at(N->Operands[0]->Id);
      ACE_ASSIGN_OR_RETURN(Values[N->Id],
                           Eval->checkedMulScalar(A, N->Scalar, A.Scale));
      break;
    }
    case NodeKind::NK_CkksAddConst: {
      ACE_ASSIGN_OR_RETURN(
          Values[N->Id],
          Eval->checkedAddConst(Values.at(N->Operands[0]->Id), N->Scalar));
      break;
    }
    case NodeKind::NK_CkksAdd:
    case NodeKind::NK_CkksSub: {
      Ciphertext A = Values.at(N->Operands[0]->Id);
      if (N->Operands[1]->Type == TypeKind::TK_Plain) {
        ACE_RETURN_IF_ERROR(fhe::validateCiphertext(*Ctx, A, "addPlain"));
        const Plaintext &P = encodedConst(ConstOperand(N->Operands[1]), A,
                                          /*ForMul=*/false);
        if (N->Kind == NodeKind::NK_CkksAdd)
          Eval->addPlainInPlace(A, P);
        else
          return Status::error("plaintext subtraction not emitted");
        Values[N->Id] = std::move(A);
      } else {
        Ciphertext B = Values.at(N->Operands[1]->Id);
        ACE_RETURN_IF_ERROR(Eval->checkedMatchForAdd(A, B));
        if (N->Kind == NodeKind::NK_CkksAdd)
          Eval->addInPlace(A, B);
        else
          Eval->subInPlace(A, B);
        Values[N->Id] = std::move(A);
      }
      break;
    }
    case NodeKind::NK_CkksRescale: {
      ACE_ASSIGN_OR_RETURN(
          Values[N->Id],
          Eval->checkedRescale(Values.at(N->Operands[0]->Id)));
      break;
    }
    case NodeKind::NK_CkksModSwitch: {
      ACE_ASSIGN_OR_RETURN(
          Values[N->Id],
          Eval->checkedModSwitchTo(Values.at(N->Operands[0]->Id),
                                   static_cast<size_t>(N->Ints[0])));
      break;
    }
    case NodeKind::NK_CkksBootstrap: {
      if (!Boot)
        return Status::keyMissing(
            "executor bootstrap: program contains a bootstrap node but "
            "setup() generated no bootstrapping keys");
      const Ciphertext &A = Values.at(N->Operands[0]->Id);
      ACE_ASSIGN_OR_RETURN(
          Values[N->Id],
          Boot->checkedBootstrap(A,
                                 static_cast<size_t>(N->BootstrapTarget)));
      break;
    }
    case NodeKind::NK_Return:
      Result = Values.at(N->Operands[0]->Id);
      HaveResult = true;
      break;
    default:
      return Status::error(std::string("executor: unsupported node ") +
                           nodeKindName(N->Kind));
    }
  }
  if (!HaveResult)
    return Status::error("executor: program produced no result");
  Memory.add(MemCategoryKind::MC_Ciphertexts, Result.byteSize());
  if (telemetry::enabled()) {
    telemetry::Telemetry::instance().recordSnapshot("executor:run");
    telemetry::Telemetry::instance().sampleRss("rss");
  }
  return Result;
}

StatusOr<std::vector<double>>
CkksExecutor::decryptLogits(const Ciphertext &Output) {
  if (!Decrypt)
    return Status::invalidArgument("executor: setup() not run");
  telemetry::TraceSpan Span("executor", "decrypt");
  ACE_ASSIGN_OR_RETURN(std::vector<double> Slots,
                       Decrypt->checkedDecryptRealValues(*Enc, Output));
  const CipherLayout &L = State.OutputLayout;
  bool ChannelMode = L.C0 > 1;
  std::vector<double> Logits(State.OutputCount);
  for (int64_t K = 0; K < State.OutputCount; ++K) {
    size_t Slot = ChannelMode ? L.slotOf(K, 0, 0) : L.slotOf(0, 0, K);
    if (Slot >= Slots.size())
      return Status::invalidArgument(
          "executor: output layout maps logit " + std::to_string(K) +
          " to slot " + std::to_string(Slot) + " but the ciphertext holds " +
          std::to_string(Slots.size()));
    Logits[K] = Slots[Slot] * State.OutputDataScale;
  }
  return Logits;
}

StatusOr<std::vector<double>> CkksExecutor::infer(const nn::Tensor &Input) {
  ACE_ASSIGN_OR_RETURN(Ciphertext Ct, encryptInput(Input));
  auto Out = run(Ct);
  if (!Out.ok())
    return Out.status();
  return decryptLogits(*Out);
}
