//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over byte ranges,
/// the checksum the hardened wire format (docs/serialization.md) puts in
/// every object header. CRC-32C detects accidental corruption - bit flips,
/// truncation survived by the length field, transport damage - before any
/// payload field is interpreted; it is NOT a cryptographic MAC and does
/// not defend against deliberate forgery (see the trust-boundary notes in
/// docs/error-handling.md).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_CRC32C_H
#define ACE_SUPPORT_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace ace {

/// CRC-32C of \p Size bytes at \p Data, with the conventional init/final
/// XOR of 0xFFFFFFFF. crc32c(nullptr, 0) == 0.
uint32_t crc32c(const void *Data, size_t Size);

/// Streaming form: extends \p Crc (a previous crc32c result, or 0 for an
/// empty prefix) by \p Size bytes at \p Data.
uint32_t crc32cExtend(uint32_t Crc, const void *Data, size_t Size);

} // namespace ace

#endif // ACE_SUPPORT_CRC32C_H
