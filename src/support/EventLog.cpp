//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

using namespace ace;
using namespace ace::obs;

namespace {

/// Default line cap: a million request records bound the file to low
/// hundreds of MB; overflow is counted, mirroring the trace buffer.
constexpr uint64_t kDefaultMaxRecords = uint64_t(1) << 20;

void appendHex(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendSeconds(std::string &Out, const char *Key, double S) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), ",\"%s\":%.6f", Key, S);
  Out += Buf;
}

} // namespace

struct EventLog::Impl {
  std::mutex Mutex;
  std::FILE *File = nullptr;
  double SlowThresholdSeconds = 0.0;
  uint64_t MaxRecords = kDefaultMaxRecords;
  uint64_t Written = 0;
  uint64_t Dropped = 0;
};

EventLog::EventLog() : P(new Impl) {}

EventLog &EventLog::instance() {
  static EventLog *L = new EventLog(); // leaked: see header
  return *L;
}

Status EventLog::open(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  if (P->File) {
    std::fclose(P->File);
    P->File = nullptr;
  }
  P->File = std::fopen(Path.c_str(), "w");
  if (!P->File) {
    Enabled.store(false, std::memory_order_relaxed);
    return Status::ioError("event log: cannot open '" + Path +
                           "' for writing");
  }
  P->Written = 0;
  P->Dropped = 0;
  Enabled.store(true, std::memory_order_relaxed);
  return Status::success();
}

void EventLog::close() {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  Enabled.store(false, std::memory_order_relaxed);
  if (P->File) {
    std::fclose(P->File);
    P->File = nullptr;
  }
}

void EventLog::setSlowThresholdSeconds(double S) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  P->SlowThresholdSeconds = S;
}

double EventLog::slowThresholdSeconds() const {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  return P->SlowThresholdSeconds;
}

void EventLog::setMaxRecords(uint64_t N) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  P->MaxRecords = N;
}

uint64_t EventLog::writtenCount() const {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  return P->Written;
}

uint64_t EventLog::droppedCount() const {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  return P->Dropped;
}

std::string EventLog::renderLine(const RequestLogEntry &E, bool Slow) {
  std::string Out;
  Out.reserve(256);
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "{\"ts\":%.6f,\"event\":\"request\"",
                telemetry::Telemetry::instance().nowUs() * 1e-6);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), ",\"session\":%llu",
                static_cast<unsigned long long>(E.SessionId));
  Out += Buf;
  Out += ",\"trace_id\":";
  appendHex(Out, E.TraceId);
  std::snprintf(Buf, sizeof(Buf), ",\"request\":%llu,\"client_tag\":%llu",
                static_cast<unsigned long long>(E.RequestId),
                static_cast<unsigned long long>(E.ClientTag));
  Out += Buf;
  Out += ",\"status\":\"";
  Out += telemetry::jsonEscape(E.StatusName);
  Out += "\"";
  if (E.QueueSeconds >= 0)
    appendSeconds(Out, "queue_s", E.QueueSeconds);
  if (E.ExecSeconds >= 0)
    appendSeconds(Out, "exec_s", E.ExecSeconds);
  if (E.TotalSeconds >= 0)
    appendSeconds(Out, "total_s", E.TotalSeconds);
  Out += ",\"ops\":{";
  bool First = true;
  for (size_t I = 0; I < telemetry::kCounterCount; ++I) {
    if (E.OpDelta.Values[I] == 0)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\"";
    Out += telemetry::counterName(static_cast<telemetry::Counter>(I));
    std::snprintf(Buf, sizeof(Buf), "\":%llu",
                  static_cast<unsigned long long>(E.OpDelta.Values[I]));
    Out += Buf;
  }
  Out += "}";
  if (E.HasMinNoiseBudget && std::isfinite(E.MinNoiseBudgetBits)) {
    std::snprintf(Buf, sizeof(Buf), ",\"min_noise_budget_bits\":%.2f",
                  E.MinNoiseBudgetBits);
    Out += Buf;
  }
  if (Slow) {
    // The slow-request dump: the request's own span breakdown plus the
    // process ciphertext-health snapshot at completion time. Spans are
    // aggregated by name (total seconds + invocation count) so repeated
    // ops render as one JSON key, not duplicates a parser would drop.
    std::vector<std::pair<std::string, std::pair<double, uint64_t>>> Agg;
    for (const auto &[Name, Seconds] : E.Spans) {
      auto It = Agg.begin();
      for (; It != Agg.end(); ++It)
        if (It->first == Name)
          break;
      if (It == Agg.end())
        Agg.push_back({Name, {Seconds, 1}});
      else {
        It->second.first += Seconds;
        ++It->second.second;
      }
    }
    Out += ",\"slow\":true,\"spans\":{";
    First = true;
    for (const auto &[Name, Tot] : Agg) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"";
      Out += telemetry::jsonEscape(Name);
      std::snprintf(Buf, sizeof(Buf),
                    "\":{\"seconds\":%.6f,\"count\":%llu}", Tot.first,
                    static_cast<unsigned long long>(Tot.second));
      Out += Buf;
    }
    Out += "},\"health\":{";
    First = true;
    for (const auto &[Op, H] :
         telemetry::Telemetry::instance().health()) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"";
      Out += telemetry::counterName(Op);
      std::snprintf(Buf, sizeof(Buf),
                    "\":{\"count\":%llu,\"minLevel\":%d,\"maxLevel\":%d",
                    static_cast<unsigned long long>(H.Count), H.MinLevel,
                    H.MaxLevel);
      Out += Buf;
      if (std::isfinite(H.MinNoiseBudgetBits)) {
        std::snprintf(Buf, sizeof(Buf), ",\"minNoiseBudgetBits\":%.2f",
                      H.MinNoiseBudgetBits);
        Out += Buf;
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "}\n";
  return Out;
}

void EventLog::record(const RequestLogEntry &E) {
  if (!enabled())
    return;
  // Render outside the lock: only the slow check, the cap check, and
  // the write serialize.
  double Threshold;
  {
    std::lock_guard<std::mutex> Lock(P->Mutex);
    Threshold = P->SlowThresholdSeconds;
  }
  bool Slow = Threshold > 0.0 && E.TotalSeconds >= Threshold;
  std::string Line = renderLine(E, Slow);
  std::lock_guard<std::mutex> Lock(P->Mutex);
  if (!P->File)
    return;
  if (P->Written >= P->MaxRecords) {
    ++P->Dropped;
    return;
  }
  std::fwrite(Line.data(), 1, Line.size(), P->File);
  std::fflush(P->File);
  ++P->Written;
}

//===----------------------------------------------------------------------===//
// Environment activation: ACE_EVENT_LOG=<file> opens the log at process
// start and enables telemetry (op deltas and noise budgets come from
// the telemetry hooks); ACE_SLOW_REQUEST_SECONDS=<s> arms the slow dump.
//===----------------------------------------------------------------------===//

namespace {

void closeEventLogAtExit() { EventLog::instance().close(); }

struct EventLogEnvActivation {
  EventLogEnvActivation() {
    const char *Path = std::getenv("ACE_EVENT_LOG");
    if (Path && *Path) {
      Status S = EventLog::instance().open(Path);
      if (!S.ok())
        std::fprintf(stderr, "ace: %s\n", S.message().c_str());
      telemetry::Telemetry::instance().setEnabled(true);
      std::atexit(closeEventLogAtExit);
    }
    const char *Slow = std::getenv("ACE_SLOW_REQUEST_SECONDS");
    if (Slow && *Slow) {
      char *End = nullptr;
      double V = std::strtod(Slow, &End);
      if (End != Slow && V > 0.0)
        EventLog::instance().setSlowThresholdSeconds(V);
    }
  }
} EventLogEnvActivationInstance;

} // namespace
