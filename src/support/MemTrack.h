//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte accounting for FHE materials. CKKS evaluation keys dominate memory
/// (paper Figure 7: tens of GB at production parameters); the runtime
/// reports exact byte counts per category so the Figure 7 bench can compare
/// ANT-ACE's pruned key set against the Expert baseline's full set.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_MEMTRACK_H
#define ACE_SUPPORT_MEMTRACK_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ace {

/// Categories of FHE memory the Figure 7 bench reports.
enum class MemCategoryKind {
  MC_SecretKey,
  MC_PublicKey,
  MC_RelinKey,
  MC_RotationKeys,
  MC_BootstrapKeys,
  MC_Ciphertexts,
  MC_Plaintexts,
  MC_Other,
};

/// Human-readable name for a memory category.
const char *memCategoryName(MemCategoryKind Kind);

/// Accumulates byte counts per category.
class MemTracker {
public:
  /// Records \p Bytes under \p Kind.
  void add(MemCategoryKind Kind, size_t Bytes) {
    Totals[static_cast<size_t>(Kind)] += Bytes;
  }

  /// Bytes recorded under \p Kind.
  size_t get(MemCategoryKind Kind) const {
    return Totals[static_cast<size_t>(Kind)];
  }

  /// Sum across all categories.
  size_t total() const {
    size_t Sum = 0;
    for (size_t V : Totals)
      Sum += V;
    return Sum;
  }

  /// Bytes across the evaluation-key categories (relin + rotation +
  /// bootstrap) — the "CKKS-Keys" share in Figure 7.
  size_t evaluationKeyBytes() const {
    return get(MemCategoryKind::MC_RelinKey) +
           get(MemCategoryKind::MC_RotationKeys) +
           get(MemCategoryKind::MC_BootstrapKeys);
  }

  /// Clears all counters.
  void clear() { Totals = {}; }

private:
  std::array<size_t, 8> Totals{};
};

/// Formats a byte count as a human-friendly string ("12.3 MB").
std::string formatBytes(size_t Bytes);

/// Current process resident-set size in bytes (/proc/self/status VmRSS).
/// Returns 0 when the platform does not expose it.
size_t currentRssBytes();

/// Process peak resident-set size in bytes (/proc/self/status VmHWM).
/// Returns 0 when the platform does not expose it.
size_t peakRssBytes();

} // namespace ace

#endif // ACE_SUPPORT_MEMTRACK_H
