//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

using namespace ace;

void TimingRegistry::add(const std::string &Phase, double Seconds) {
  auto [It, Inserted] = Index.try_emplace(Phase, Entries.size());
  if (Inserted) {
    Entries.emplace_back(Phase, Seconds);
    return;
  }
  Entries[It->second].second += Seconds;
}

double TimingRegistry::get(const std::string &Phase) const {
  auto It = Index.find(Phase);
  return It == Index.end() ? 0.0 : Entries[It->second].second;
}

double TimingRegistry::total() const {
  double Sum = 0.0;
  for (const auto &Entry : Entries)
    Sum += Entry.second;
  return Sum;
}
