//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

using namespace ace;

void TimingRegistry::add(const std::string &Phase, double Seconds) {
  for (auto &Entry : Entries) {
    if (Entry.first == Phase) {
      Entry.second += Seconds;
      return;
    }
  }
  Entries.emplace_back(Phase, Seconds);
}

double TimingRegistry::get(const std::string &Phase) const {
  for (const auto &Entry : Entries)
    if (Entry.first == Phase)
      return Entry.second;
  return 0.0;
}

double TimingRegistry::total() const {
  double Sum = 0.0;
  for (const auto &Entry : Entries)
    Sum += Entry.second;
  return Sum;
}
