//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only little-endian encoder over a caller-owned byte buffer, the
/// write half of the hardened wire format (docs/serialization.md). All
/// multi-byte integers are emitted least-significant byte first regardless
/// of host endianness; doubles travel as their IEEE-754 bit pattern so
/// round-trips are bit-exact. Writing cannot fail: the buffer grows as
/// needed, and I/O only happens when the finished buffer is flushed to a
/// stream by the serializer.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_BYTEWRITER_H
#define ACE_SUPPORT_BYTEWRITER_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace ace {

/// Little-endian append encoder. Holds a reference; the buffer outlives
/// the writer.
class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t> &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(V); }

  void u16(uint16_t V) {
    Out.push_back(static_cast<uint8_t>(V));
    Out.push_back(static_cast<uint8_t>(V >> 8));
  }

  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  /// IEEE-754 bit pattern; NaNs and infinities round-trip unchanged (the
  /// deserializer, not the encoding, rejects non-finite scales).
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Out.insert(Out.end(), P, P + Size);
  }

  /// Overwrites 4 bytes at \p Offset with \p V (backpatching length or
  /// checksum fields after the payload is known). \p Offset must have
  /// been returned by size() before at least 4 subsequent bytes were
  /// written.
  void patchU32(size_t Offset, uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  void patchU64(size_t Offset, uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  /// Bytes written so far (== current buffer size).
  size_t size() const { return Out.size(); }

private:
  std::vector<uint8_t> &Out;
};

} // namespace ace

#endif // ACE_SUPPORT_BYTEWRITER_H
