//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ace;

const char *ace::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::ScaleDrift:
    return "scale-drift";
  case FaultKind::SlotCorrupt:
    return "slot-corrupt";
  case FaultKind::TruncateChain:
    return "truncate-chain";
  case FaultKind::DropGaloisKey:
    return "drop-galois-key";
  case FaultKind::DropRelinKey:
    return "drop-relin-key";
  case FaultKind::AllocFail:
    return "alloc-fail";
  case FaultKind::ShortRead:
    return "short-read";
  case FaultKind::ShortWrite:
    return "short-write";
  case FaultKind::ChecksumCorrupt:
    return "checksum-corrupt";
  case FaultKind::BudgetExceeded:
    return "budget-exceeded";
  case FaultKind::KindCount:
    break;
  }
  return "unknown";
}

static bool kindFromName(const std::string &Name, FaultKind &Out) {
  for (unsigned I = 0; I < static_cast<unsigned>(FaultKind::KindCount); ++I) {
    FaultKind K = static_cast<FaultKind>(I);
    if (Name == faultKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

FaultInjector::FaultInjector() {
  if (const char *Env = std::getenv("ACE_FAULT_INJECT")) {
    if (!configure(Env))
      std::fprintf(stderr,
                   "ace: ignoring malformed ACE_FAULT_INJECT spec '%s'\n",
                   Env);
  }
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Injector;
  return Injector;
}

void FaultInjector::arm(FaultKind Kind, int Count, int SkipFirst) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Slot &S = Slots[static_cast<size_t>(Kind)];
  S.Armed = true;
  S.Skip = SkipFirst < 0 ? 0 : SkipFirst;
  S.Remaining = Count;
  recomputeAnyArmed();
}

void FaultInjector::disarm(FaultKind Kind) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Slots[static_cast<size_t>(Kind)].Armed = false;
  recomputeAnyArmed();
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (Slot &S : Slots)
    S = Slot();
  recomputeAnyArmed();
}

bool FaultInjector::shouldFire(FaultKind Kind) {
  if (!enabled())
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  Slot &S = Slots[static_cast<size_t>(Kind)];
  if (!S.Armed || S.Remaining == 0)
    return false;
  if (S.Skip > 0) {
    --S.Skip;
    return false;
  }
  if (S.Remaining > 0)
    --S.Remaining;
  if (S.Remaining == 0) {
    S.Armed = false;
    recomputeAnyArmed();
  }
  ++S.Fired;
  return true;
}

size_t FaultInjector::firedCount(FaultKind Kind) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Slots[static_cast<size_t>(Kind)].Fired;
}

bool FaultInjector::configure(const std::string &Spec) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Item.empty())
      continue;

    int Count = 1, Skip = 0;
    std::string Name = Item;
    size_t Colon = Item.find(':');
    if (Colon != std::string::npos) {
      Name = Item.substr(0, Colon);
      char *End = nullptr;
      std::string Rest = Item.substr(Colon + 1);
      Count = static_cast<int>(std::strtol(Rest.c_str(), &End, 10));
      if (End == Rest.c_str())
        return false;
      if (*End == ':') {
        const char *SkipStr = End + 1;
        Skip = static_cast<int>(std::strtol(SkipStr, &End, 10));
        if (End == SkipStr)
          return false;
      }
      if (*End != '\0')
        return false;
    }
    FaultKind Kind;
    if (!kindFromName(Name, Kind))
      return false;
    arm(Kind, Count, Skip);
  }
  return true;
}

void FaultInjector::recomputeAnyArmed() {
  bool Any = false;
  for (const Slot &S : Slots)
    Any = Any || (S.Armed && S.Remaining != 0);
  AnyArmed.store(Any, std::memory_order_relaxed);
}
