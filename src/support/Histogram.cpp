//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace ace;

namespace {

/// Index of the highest set bit (v must be nonzero).
inline unsigned highestBit(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
  return 63u - static_cast<unsigned>(__builtin_clzll(V));
#else
  unsigned B = 0;
  while (V >>= 1)
    ++B;
  return B;
#endif
}

} // namespace

size_t Histogram::bucketIndex(uint64_t Nanos) {
  if (Nanos < kSubBuckets)
    return static_cast<size_t>(Nanos);
  unsigned Msb = highestBit(Nanos);
  unsigned Shift = Msb - kSubBucketBits;
  size_t Sub = static_cast<size_t>((Nanos >> Shift) & (kSubBuckets - 1));
  size_t Idx = (Msb - kSubBucketBits + 1) * kSubBuckets + Sub;
  return Idx < kBuckets ? Idx : kBuckets - 1;
}

uint64_t Histogram::bucketLowerNanos(size_t Index) {
  if (Index < kSubBuckets)
    return static_cast<uint64_t>(Index);
  size_t Block = Index / kSubBuckets;      // 1-based octave block
  size_t Sub = Index % kSubBuckets;
  unsigned Msb = static_cast<unsigned>(Block + kSubBucketBits - 1);
  return (static_cast<uint64_t>(kSubBuckets + Sub))
         << (Msb - kSubBucketBits);
}

uint64_t Histogram::bucketUpperNanos(size_t Index) {
  if (Index < kSubBuckets)
    return static_cast<uint64_t>(Index) + 1;
  if (Index >= kBuckets - 1)
    return ~uint64_t(0);
  size_t Block = Index / kSubBuckets;
  unsigned Msb = static_cast<unsigned>(Block + kSubBucketBits - 1);
  return bucketLowerNanos(Index) + (uint64_t(1) << (Msb - kSubBucketBits));
}

void Histogram::recordSeconds(double Seconds) {
  if (!(Seconds > 0.0)) { // NaN and negatives land in the zero bucket
    recordNanos(0);
    return;
  }
  double Nanos = Seconds * 1e9;
  constexpr double kMax = 1.8e19; // < 2^64, saturate instead of wrapping
  recordNanos(Nanos >= kMax ? ~uint64_t(0)
                            : static_cast<uint64_t>(Nanos + 0.5));
}

void Histogram::recordNanos(uint64_t Nanos) {
  Buckets[bucketIndex(Nanos)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  SumNanos.fetch_add(Nanos, std::memory_order_relaxed);
  uint64_t Prev = MinNanos.load(std::memory_order_relaxed);
  while (Nanos < Prev &&
         !MinNanos.compare_exchange_weak(Prev, Nanos,
                                         std::memory_order_relaxed))
    ;
  Prev = MaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Prev &&
         !MaxNanos.compare_exchange_weak(Prev, Nanos,
                                         std::memory_order_relaxed))
    ;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  for (size_t I = 0; I < kBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  S.Count = Count.load(std::memory_order_relaxed);
  S.SumNanos = SumNanos.load(std::memory_order_relaxed);
  S.MinNanos = MinNanos.load(std::memory_order_relaxed);
  S.MaxNanos = MaxNanos.load(std::memory_order_relaxed);
  return S;
}

void Histogram::merge(const Histogram &Other) {
  Snapshot S = Other.snapshot();
  for (size_t I = 0; I < kBuckets; ++I)
    if (S.Buckets[I])
      Buckets[I].fetch_add(S.Buckets[I], std::memory_order_relaxed);
  Count.fetch_add(S.Count, std::memory_order_relaxed);
  SumNanos.fetch_add(S.SumNanos, std::memory_order_relaxed);
  uint64_t Prev = MinNanos.load(std::memory_order_relaxed);
  while (S.MinNanos < Prev &&
         !MinNanos.compare_exchange_weak(Prev, S.MinNanos,
                                         std::memory_order_relaxed))
    ;
  Prev = MaxNanos.load(std::memory_order_relaxed);
  while (S.MaxNanos > Prev &&
         !MaxNanos.compare_exchange_weak(Prev, S.MaxNanos,
                                         std::memory_order_relaxed))
    ;
}

void Histogram::clear() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  SumNanos.store(0, std::memory_order_relaxed);
  MinNanos.store(~uint64_t(0), std::memory_order_relaxed);
  MaxNanos.store(0, std::memory_order_relaxed);
}

void Histogram::Snapshot::merge(const Snapshot &Other) {
  for (size_t I = 0; I < kBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  SumNanos += Other.SumNanos;
  MinNanos = std::min(MinNanos, Other.MinNanos);
  MaxNanos = std::max(MaxNanos, Other.MaxNanos);
}

double Histogram::Snapshot::quantileSeconds(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  // Rank of the order statistic we are estimating (0-based, nearest).
  uint64_t Rank = static_cast<uint64_t>(
      Q * static_cast<double>(Count - 1) + 0.5);
  uint64_t Seen = 0;
  for (size_t I = 0; I < kBuckets; ++I) {
    uint64_t B = Buckets[I];
    if (B == 0)
      continue;
    if (Seen + B > Rank) {
      // Linear interpolation within the bucket's value range.
      double Lo = static_cast<double>(bucketLowerNanos(I));
      double Hi = static_cast<double>(bucketUpperNanos(I));
      double Frac =
          (static_cast<double>(Rank - Seen) + 0.5) / static_cast<double>(B);
      double Nanos = Lo + (Hi - Lo) * Frac;
      // The observed extrema are exact; never report outside them.
      Nanos = std::max(Nanos, static_cast<double>(MinNanos));
      Nanos = std::min(Nanos, static_cast<double>(MaxNanos));
      return Nanos * 1e-9;
    }
    Seen += B;
  }
  return static_cast<double>(MaxNanos) * 1e-9;
}

uint64_t Histogram::Snapshot::cumulativeCount(double Seconds) const {
  if (Seconds < 0)
    return 0;
  double Nanos = Seconds * 1e9;
  uint64_t N = Nanos >= 1.8e19 ? ~uint64_t(0)
                               : static_cast<uint64_t>(Nanos + 0.5);
  size_t Limit = bucketIndex(N);
  uint64_t Total = 0;
  for (size_t I = 0; I <= Limit && I < kBuckets; ++I)
    Total += Buckets[I];
  return Total;
}

std::string Histogram::Snapshot::quantilesJson() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\": %llu, \"p50\": %.6f, \"p90\": %.6f, "
                "\"p99\": %.6f, \"p999\": %.6f, \"mean\": %.6f, "
                "\"max\": %.6f}",
                static_cast<unsigned long long>(Count),
                quantileSeconds(0.50), quantileSeconds(0.90),
                quantileSeconds(0.99), quantileSeconds(0.999),
                meanSeconds(), maxSeconds());
  return Buf;
}
