//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error types for a library that does not use C++
/// exceptions. Status carries success or an error code plus message;
/// StatusOr<T> carries a value or an error. Both follow the LLVM Error
/// discipline in spirit (errors must be inspected), without the heavy
/// machinery. See docs/error-handling.md for the project-wide discipline.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_STATUS_H
#define ACE_SUPPORT_STATUS_H

#include <cassert>
#include <new>
#include <string>
#include <utility>

namespace ace {

/// Machine-inspectable failure category. The codes mirror the runtime's
/// precondition classes: what the caller passed (InvalidArgument), CKKS
/// level/scale management (LevelMismatch, ScaleMismatch, DepthExhausted),
/// key material (KeyMissing), resources (ResourceExhausted), broken
/// internal invariants (Internal), malformed or tampered serialized bytes
/// (DataCorrupt), failed file/stream operations (IoError), and request
/// lifecycle in the serving layer (Cancelled, DeadlineExceeded - see
/// support/Cancellation.h and docs/serving.md).
enum class ErrorCode : unsigned char {
  Ok = 0,
  InvalidArgument,
  LevelMismatch,
  ScaleMismatch,
  KeyMissing,
  DepthExhausted,
  ResourceExhausted,
  Internal,
  DataCorrupt,
  IoError,
  Cancelled,
  DeadlineExceeded,
};

/// Stable lowercase name of \p Code ("ok", "invalid-argument", ...).
const char *errorCodeName(ErrorCode Code);

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is success. Failure carries an ErrorCode
/// and a human-readable message; messages follow the LLVM diagnostic style
/// (lowercase first letter, no trailing period) and name the concrete
/// offending values (levels, scales, steps) wherever possible.
class Status {
public:
  Status() = default;

  /// Creates a success value.
  static Status success() { return Status(); }

  /// Creates a failure value carrying \p Message under \p Code.
  static Status error(ErrorCode Code, std::string Message) {
    assert(Code != ErrorCode::Ok && "error Status requires a failure code");
    Status S;
    S.Code = Code == ErrorCode::Ok ? ErrorCode::Internal : Code;
    S.Message = std::move(Message);
    return S;
  }

  /// Creates a failure value with the generic Internal code (legacy
  /// call sites that predate the error-code enum).
  static Status error(std::string Message) {
    return error(ErrorCode::Internal, std::move(Message));
  }

  /// \name Per-code factories.
  /// @{
  static Status invalidArgument(std::string M) {
    return error(ErrorCode::InvalidArgument, std::move(M));
  }
  static Status levelMismatch(std::string M) {
    return error(ErrorCode::LevelMismatch, std::move(M));
  }
  static Status scaleMismatch(std::string M) {
    return error(ErrorCode::ScaleMismatch, std::move(M));
  }
  static Status keyMissing(std::string M) {
    return error(ErrorCode::KeyMissing, std::move(M));
  }
  static Status depthExhausted(std::string M) {
    return error(ErrorCode::DepthExhausted, std::move(M));
  }
  static Status resourceExhausted(std::string M) {
    return error(ErrorCode::ResourceExhausted, std::move(M));
  }
  static Status internal(std::string M) {
    return error(ErrorCode::Internal, std::move(M));
  }
  static Status dataCorrupt(std::string M) {
    return error(ErrorCode::DataCorrupt, std::move(M));
  }
  static Status ioError(std::string M) {
    return error(ErrorCode::IoError, std::move(M));
  }
  static Status cancelled(std::string M) {
    return error(ErrorCode::Cancelled, std::move(M));
  }
  static Status deadlineExceeded(std::string M) {
    return error(ErrorCode::DeadlineExceeded, std::move(M));
  }
  /// @}

  /// True when the operation succeeded.
  bool ok() const { return Code == ErrorCode::Ok; }

  /// True when the operation failed (enables `if (auto S = f())` idiom).
  explicit operator bool() const { return !ok(); }

  /// The failure category; ErrorCode::Ok for success values.
  ErrorCode code() const { return Code; }

  /// The error message; empty for success values.
  const std::string &message() const { return Message; }

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
};

/// Result of a fallible operation that produces a \p T on success.
///
/// Mirrors llvm::Expected without the checked-flag machinery: callers test
/// ok() before dereferencing; dereferencing a failed StatusOr asserts.
/// The value lives in inline storage that is only constructed on success,
/// so T does not need to be default-constructible.
template <typename T> class StatusOr {
public:
  /// Constructs a success value.
  StatusOr(T Value) : HasValue(true) {
    new (&Storage) T(std::move(Value));
  }

  /// Constructs a failure from a failed Status. Constructing from a
  /// success Status is a caller bug; it is coerced to an Internal error so
  /// release builds never observe an ok() StatusOr without a value.
  StatusOr(Status S) : Failure(std::move(S)), HasValue(false) {
    assert(!Failure.ok() && "StatusOr constructed from success Status");
    if (Failure.ok())
      Failure = Status::internal("StatusOr constructed from success Status");
  }

  StatusOr(const StatusOr &Other)
      : Failure(Other.Failure), HasValue(Other.HasValue) {
    if (HasValue)
      new (&Storage) T(*Other.valuePtr());
  }

  StatusOr(StatusOr &&Other)
      : Failure(std::move(Other.Failure)), HasValue(Other.HasValue) {
    if (HasValue)
      new (&Storage) T(std::move(*Other.valuePtr()));
  }

  StatusOr &operator=(const StatusOr &Other) {
    if (this == &Other)
      return *this;
    destroyValue();
    Failure = Other.Failure;
    HasValue = Other.HasValue;
    if (HasValue)
      new (&Storage) T(*Other.valuePtr());
    return *this;
  }

  StatusOr &operator=(StatusOr &&Other) {
    if (this == &Other)
      return *this;
    destroyValue();
    Failure = std::move(Other.Failure);
    HasValue = Other.HasValue;
    if (HasValue)
      new (&Storage) T(std::move(*Other.valuePtr()));
    return *this;
  }

  ~StatusOr() { destroyValue(); }

  /// True when a value is present.
  bool ok() const { return HasValue; }

  /// The failure description (success Status when ok()).
  const Status &status() const { return Failure; }

  /// Accesses the contained value; asserts when in the error state.
  T &operator*() {
    assert(ok() && "dereferencing failed StatusOr");
    return *valuePtr();
  }
  const T &operator*() const {
    assert(ok() && "dereferencing failed StatusOr");
    return *valuePtr();
  }
  T *operator->() {
    assert(ok() && "dereferencing failed StatusOr");
    return valuePtr();
  }
  const T *operator->() const {
    assert(ok() && "dereferencing failed StatusOr");
    return valuePtr();
  }

  /// Moves the contained value out; asserts when in the error state.
  T take() {
    assert(ok() && "taking value from failed StatusOr");
    return std::move(*valuePtr());
  }

private:
  T *valuePtr() { return std::launder(reinterpret_cast<T *>(&Storage)); }
  const T *valuePtr() const {
    return std::launder(reinterpret_cast<const T *>(&Storage));
  }
  void destroyValue() {
    if (HasValue) {
      valuePtr()->~T();
      HasValue = false;
    }
  }

  alignas(T) unsigned char Storage[sizeof(T)];
  Status Failure;
  bool HasValue;
};

/// Aborts the process with \p Message. Used for unrecoverable internal
/// errors in tool code; library code should return Status instead.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace ace

/// Evaluates \p Expr (a Status expression) and returns it from the
/// enclosing function when it is a failure. StatusOr return types accept
/// the implicit conversion.
#define ACE_RETURN_IF_ERROR(Expr)                                            \
  do {                                                                       \
    ::ace::Status AceStatusInMacro_ = (Expr);                                \
    if (!AceStatusInMacro_.ok())                                             \
      return AceStatusInMacro_;                                              \
  } while (false)

/// Evaluates \p Expr (a StatusOr expression); on success move-assigns the
/// value into \p Lhs, on failure returns the error status.
#define ACE_ASSIGN_OR_RETURN(Lhs, Expr)                                      \
  ACE_ASSIGN_OR_RETURN_IMPL_(ACE_STATUS_CONCAT_(AceOr_, __LINE__), Lhs, Expr)
#define ACE_ASSIGN_OR_RETURN_IMPL_(Tmp, Lhs, Expr)                           \
  auto Tmp = (Expr);                                                         \
  if (!Tmp.ok())                                                             \
    return Tmp.status();                                                     \
  Lhs = Tmp.take()
#define ACE_STATUS_CONCAT_(A, B) ACE_STATUS_CONCAT_IMPL_(A, B)
#define ACE_STATUS_CONCAT_IMPL_(A, B) A##B

#endif // ACE_SUPPORT_STATUS_H
