//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error types for a library that does not use C++
/// exceptions. Status carries success or an error message; StatusOr<T>
/// carries a value or an error. Both follow the LLVM Error discipline in
/// spirit (errors must be inspected), without the heavy machinery.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_STATUS_H
#define ACE_SUPPORT_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace ace {

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is success. Failure carries a human-readable
/// message; messages follow the LLVM diagnostic style (lowercase first
/// letter, no trailing period).
class Status {
public:
  Status() = default;

  /// Creates a success value.
  static Status success() { return Status(); }

  /// Creates a failure value carrying \p Message.
  static Status error(std::string Message) {
    Status S;
    S.Failed = true;
    S.Message = std::move(Message);
    return S;
  }

  /// True when the operation succeeded.
  bool ok() const { return !Failed; }

  /// True when the operation failed (enables `if (auto S = f())` idiom).
  explicit operator bool() const { return Failed; }

  /// The error message; empty for success values.
  const std::string &message() const { return Message; }

private:
  bool Failed = false;
  std::string Message;
};

/// Result of a fallible operation that produces a \p T on success.
///
/// Mirrors llvm::Expected without the checked-flag machinery: callers test
/// ok() before dereferencing; dereferencing a failed StatusOr asserts.
template <typename T> class StatusOr {
public:
  /// Constructs a success value.
  StatusOr(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from a failed Status.
  StatusOr(Status S) : Failure(std::move(S)) {
    assert(!Failure.ok() && "StatusOr constructed from success Status");
  }

  /// True when a value is present.
  bool ok() const { return Failure.ok(); }

  /// The failure description (success Status when ok()).
  const Status &status() const { return Failure; }

  /// Accesses the contained value; asserts when in the error state.
  T &operator*() {
    assert(ok() && "dereferencing failed StatusOr");
    return Value;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing failed StatusOr");
    return Value;
  }
  T *operator->() {
    assert(ok() && "dereferencing failed StatusOr");
    return &Value;
  }
  const T *operator->() const {
    assert(ok() && "dereferencing failed StatusOr");
    return &Value;
  }

  /// Moves the contained value out; asserts when in the error state.
  T take() {
    assert(ok() && "taking value from failed StatusOr");
    return std::move(Value);
  }

private:
  T Value{};
  Status Failure;
};

/// Aborts the process with \p Message. Used for unrecoverable internal
/// errors in tool code; library code should return Status instead.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace ace

#endif // ACE_SUPPORT_STATUS_H
