//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/MetricsRegistry.h"

#include "support/LimbPool.h"
#include "support/ResourceGovernor.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

using namespace ace;
using namespace ace::metrics;

const double ace::metrics::kExportBoundsSeconds[] = {
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
    0.25, 0.5,  1.0,  2.5,  5.0,  10.0, 30.0,   60.0};
const size_t ace::metrics::kExportBoundCount =
    sizeof(kExportBoundsSeconds) / sizeof(kExportBoundsSeconds[0]);

namespace {

void writeSampleLine(std::ostream &OS, const std::string &Name,
                     const std::string &Labels, double Value) {
  char Buf[64];
  // Counters and cumulative bucket counts are integral; print them
  // without a fraction so the exposition is stable to diff.
  if (Value == static_cast<double>(static_cast<long long>(Value)))
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(Value));
  else
    std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
  OS << Name;
  if (!Labels.empty())
    OS << "{" << Labels << "}";
  OS << " " << Buf << "\n";
}

std::string joinLabels(const std::string &A, const std::string &B) {
  if (A.empty())
    return B;
  if (B.empty())
    return A;
  return A + "," + B;
}

} // namespace

void ace::metrics::writeHistogramSeries(std::ostream &OS,
                                        const std::string &Name,
                                        const std::string &Labels,
                                        const Histogram::Snapshot &S) {
  for (size_t I = 0; I < kExportBoundCount; ++I) {
    char Le[64];
    std::snprintf(Le, sizeof(Le), "le=\"%.9g\"", kExportBoundsSeconds[I]);
    writeSampleLine(OS, Name + "_bucket", joinLabels(Labels, Le),
                    static_cast<double>(
                        S.cumulativeCount(kExportBoundsSeconds[I])));
  }
  writeSampleLine(OS, Name + "_bucket", joinLabels(Labels, "le=\"+Inf\""),
                  static_cast<double>(S.Count));
  writeSampleLine(OS, Name + "_sum", Labels, S.sumSeconds());
  writeSampleLine(OS, Name + "_count", Labels,
                  static_cast<double>(S.Count));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

struct MetricsRegistry::Impl {
  struct Entry {
    enum Kind { Gauge, Counter, Hist } K = Gauge;
    std::string Name;
    std::string Help;
    std::string Labels;
    GaugeFn GFn;
    CounterFn CFn;
    const Histogram *H = nullptr;
  };

  mutable std::mutex Mutex;
  std::map<uint64_t, Entry> Entries;
  uint64_t NextId = 1;
};

MetricsRegistry::MetricsRegistry() : P(new Impl) {}

MetricsRegistry &MetricsRegistry::instance() {
  // Leaked on purpose: atexit exporters and static-destruction-order
  // races must never observe a destroyed registry.
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

uint64_t MetricsRegistry::addGauge(std::string Name, std::string Help,
                                   std::string Labels, GaugeFn Fn) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  uint64_t Id = P->NextId++;
  Impl::Entry &E = P->Entries[Id];
  E.K = Impl::Entry::Gauge;
  E.Name = std::move(Name);
  E.Help = std::move(Help);
  E.Labels = std::move(Labels);
  E.GFn = std::move(Fn);
  return Id;
}

uint64_t MetricsRegistry::addCounter(std::string Name, std::string Help,
                                     std::string Labels, CounterFn Fn) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  uint64_t Id = P->NextId++;
  Impl::Entry &E = P->Entries[Id];
  E.K = Impl::Entry::Counter;
  E.Name = std::move(Name);
  E.Help = std::move(Help);
  E.Labels = std::move(Labels);
  E.CFn = std::move(Fn);
  return Id;
}

uint64_t MetricsRegistry::addHistogram(std::string Name, std::string Help,
                                       std::string Labels,
                                       const Histogram *H) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  uint64_t Id = P->NextId++;
  Impl::Entry &E = P->Entries[Id];
  E.K = Impl::Entry::Hist;
  E.Name = std::move(Name);
  E.Help = std::move(Help);
  E.Labels = std::move(Labels);
  E.H = H;
  return Id;
}

void MetricsRegistry::remove(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  P->Entries.erase(Id);
}

void MetricsRegistry::writePrometheus(std::ostream &OS) const {
  telemetry::Telemetry &T = telemetry::Telemetry::instance();

  // Built-in: every telemetry counter as one family, labeled by op.
  telemetry::CounterSnapshot S = T.counters();
  OS << "# HELP ace_ops_total Process-wide telemetry counters (FHE ops, "
        "wire bytes, service request lifecycle).\n";
  OS << "# TYPE ace_ops_total counter\n";
  for (size_t I = 0; I < telemetry::kCounterCount; ++I) {
    std::string Label =
        std::string("op=\"") +
        telemetry::counterName(static_cast<telemetry::Counter>(I)) + "\"";
    writeSampleLine(OS, "ace_ops_total", Label,
                    static_cast<double>(S.Values[I]));
  }

  // Built-in: trace-buffer accounting. Silent overflow in long service
  // runs must be visible to a monitoring stack, not just the report.
  OS << "# HELP ace_trace_events_total Telemetry trace events currently "
        "buffered.\n";
  OS << "# TYPE ace_trace_events_total gauge\n";
  writeSampleLine(OS, "ace_trace_events_total", "",
                  static_cast<double>(T.eventCount()));
  OS << "# HELP ace_trace_dropped_events_total Trace events dropped on "
        "buffer overflow.\n";
  OS << "# TYPE ace_trace_dropped_events_total counter\n";
  writeSampleLine(OS, "ace_trace_dropped_events_total", "",
                  static_cast<double>(T.droppedEventCount()));

  OS << "# HELP ace_peak_rss_bytes Peak resident set size sampled by "
        "telemetry.\n";
  OS << "# TYPE ace_peak_rss_bytes gauge\n";
  writeSampleLine(OS, "ace_peak_rss_bytes", "",
                  static_cast<double>(T.peakRssBytes()));

  // Built-in: resource governor accounting (docs/memory.md). A
  // long-running server is tuned off these four families: how much of
  // the budget is charged (by category), how often admission shed work,
  // and how the limb pool / key caches behave under that budget.
  GovernorStats G = ResourceGovernor::instance().stats();
  OS << "# HELP ace_memory_budget_bytes Configured process memory "
        "budget (0 = unlimited).\n";
  OS << "# TYPE ace_memory_budget_bytes gauge\n";
  writeSampleLine(OS, "ace_memory_budget_bytes", "",
                  static_cast<double>(G.BudgetBytes));
  OS << "# HELP ace_memory_charged_bytes Bytes currently charged to the "
        "resource governor, by category.\n";
  OS << "# TYPE ace_memory_charged_bytes gauge\n";
  for (size_t I = 0;
       I < static_cast<size_t>(MemCategory::CategoryCount); ++I) {
    std::string Label = std::string("category=\"") +
                        memCategoryName(static_cast<MemCategory>(I)) +
                        "\"";
    writeSampleLine(OS, "ace_memory_charged_bytes", Label,
                    static_cast<double>(G.ChargedBytes[I]));
  }
  OS << "# HELP ace_memory_remaining_bytes Budget headroom "
        "(budget - charged; 0 when over budget or unlimited).\n";
  OS << "# TYPE ace_memory_remaining_bytes gauge\n";
  writeSampleLine(OS, "ace_memory_remaining_bytes", "",
                  G.BudgetBytes == 0
                      ? 0.0
                      : static_cast<double>(G.remainingBytes()));
  OS << "# HELP ace_memory_shed_total Admissions refused with "
        "ResourceExhausted after reclaim could not cover the charge.\n";
  OS << "# TYPE ace_memory_shed_total counter\n";
  writeSampleLine(OS, "ace_memory_shed_total", "",
                  static_cast<double>(G.Sheds));
  OS << "# HELP ace_memory_reclaimed_bytes_total Bytes recovered by "
        "governor reclaim callbacks (cold keys, pool trims).\n";
  OS << "# TYPE ace_memory_reclaimed_bytes_total counter\n";
  writeSampleLine(OS, "ace_memory_reclaimed_bytes_total", "",
                  static_cast<double>(G.ReclaimedBytes));

  LimbPoolStats PoolStats = LimbPool::instance().stats();
  OS << "# HELP ace_limb_pool_resident_bytes RNS limb blocks owned by "
        "the pool (free + in use).\n";
  OS << "# TYPE ace_limb_pool_resident_bytes gauge\n";
  writeSampleLine(OS, "ace_limb_pool_resident_bytes", "",
                  static_cast<double>(PoolStats.residentBytes()));
  OS << "# HELP ace_limb_pool_free_bytes Parked limb blocks available "
        "for reuse.\n";
  OS << "# TYPE ace_limb_pool_free_bytes gauge\n";
  writeSampleLine(OS, "ace_limb_pool_free_bytes", "",
                  static_cast<double>(PoolStats.FreeBytes));
  OS << "# HELP ace_limb_pool_acquires_total Limb block acquisitions, "
        "split by whether a parked block was reused.\n";
  OS << "# TYPE ace_limb_pool_acquires_total counter\n";
  writeSampleLine(OS, "ace_limb_pool_acquires_total", "kind=\"hit\"",
                  static_cast<double>(PoolStats.Hits));
  writeSampleLine(OS, "ace_limb_pool_acquires_total", "kind=\"miss\"",
                  static_cast<double>(PoolStats.Misses));

  OS << "# HELP ace_key_cache_requests_total Rotation-key cache "
        "lookups across all sessions, split by hit/miss.\n";
  OS << "# TYPE ace_key_cache_requests_total counter\n";
  writeSampleLine(OS, "ace_key_cache_requests_total", "kind=\"hit\"",
                  static_cast<double>(G.KeyCacheHits));
  writeSampleLine(OS, "ace_key_cache_requests_total", "kind=\"miss\"",
                  static_cast<double>(G.KeyCacheMisses));
  OS << "# HELP ace_key_cache_evictions_total Rotation keys dropped by "
        "LRU/budget/idle eviction (regenerated on next use).\n";
  OS << "# TYPE ace_key_cache_evictions_total counter\n";
  writeSampleLine(OS, "ace_key_cache_evictions_total", "",
                  static_cast<double>(G.KeyCacheEvictions));
  OS << "# HELP ace_key_cache_hit_ratio Hits / (hits + misses) since "
        "process start; 0 before any lookup.\n";
  OS << "# TYPE ace_key_cache_hit_ratio gauge\n";
  uint64_t Lookups = G.KeyCacheHits + G.KeyCacheMisses;
  writeSampleLine(OS, "ace_key_cache_hit_ratio", "",
                  Lookups == 0 ? 0.0
                               : static_cast<double>(G.KeyCacheHits) /
                                     static_cast<double>(Lookups));

  // Built-in: run metadata as a constant-1 info gauge, labels from the
  // telemetry metadata map (the runtime stamps poly_backend there when
  // it selects a kernel path - docs/kernels.md). Omitted entirely when
  // nothing was stamped so expositions from metadata-free processes
  // stay unchanged.
  auto Meta = T.metadata();
  if (!Meta.empty()) {
    OS << "# HELP ace_build_info Constant run metadata (selected kernel "
          "backend, ...); value is always 1.\n";
    OS << "# TYPE ace_build_info gauge\n";
    std::string Labels;
    for (const auto &[Key, Value] : Meta) {
      if (!Labels.empty())
        Labels += ",";
      Labels += Key + "=\"" + Value + "\"";
    }
    writeSampleLine(OS, "ace_build_info", Labels, 1.0);
  }

  // Built-in: per-FHE-op latency histograms (only ops that ran; an
  // all-zero histogram for every taxonomy slot would triple the
  // exposition for no information).
  bool WroteOpHeader = false;
  for (size_t I = 0; I < telemetry::kCounterCount; ++I) {
    const Histogram &H =
        T.opLatency(static_cast<telemetry::Counter>(I));
    if (H.count() == 0)
      continue;
    if (!WroteOpHeader) {
      OS << "# HELP ace_fhe_op_seconds Wall time per traced FHE "
            "primitive.\n";
      OS << "# TYPE ace_fhe_op_seconds histogram\n";
      WroteOpHeader = true;
    }
    std::string Label =
        std::string("op=\"") +
        telemetry::counterName(static_cast<telemetry::Counter>(I)) + "\"";
    writeHistogramSeries(OS, "ace_fhe_op_seconds", Label, H.snapshot());
  }

  // Registered metrics, grouped by family so # TYPE headers are emitted
  // once per name (map iteration orders by id; collect names first).
  std::vector<Impl::Entry> Entries;
  {
    std::lock_guard<std::mutex> Lock(P->Mutex);
    Entries.reserve(P->Entries.size());
    for (const auto &KV : P->Entries)
      Entries.push_back(KV.second);
  }
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const Impl::Entry &A, const Impl::Entry &B) {
                     return A.Name < B.Name;
                   });
  std::string LastFamily;
  for (const Impl::Entry &E : Entries) {
    if (E.Name != LastFamily) {
      const char *Type = E.K == Impl::Entry::Gauge
                             ? "gauge"
                             : E.K == Impl::Entry::Counter ? "counter"
                                                           : "histogram";
      OS << "# HELP " << E.Name << " " << E.Help << "\n";
      OS << "# TYPE " << E.Name << " " << Type << "\n";
      LastFamily = E.Name;
    }
    switch (E.K) {
    case Impl::Entry::Gauge:
      writeSampleLine(OS, E.Name, E.Labels, E.GFn ? E.GFn() : 0.0);
      break;
    case Impl::Entry::Counter:
      writeSampleLine(OS, E.Name, E.Labels,
                      static_cast<double>(E.CFn ? E.CFn() : 0));
      break;
    case Impl::Entry::Hist:
      if (E.H)
        writeHistogramSeries(OS, E.Name, E.Labels, E.H->snapshot());
      break;
    }
  }
}

std::string MetricsRegistry::prometheusString() const {
  std::ostringstream OS;
  writePrometheus(OS);
  return OS.str();
}

Status MetricsRegistry::writePrometheusFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return Status::error("metrics: cannot write exposition file '" + Path +
                         "'");
  writePrometheus(OS);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Environment activation: ACE_METRICS=<file> enables telemetry at
// process start (so the counters feeding the exposition actually count)
// and dumps the Prometheus exposition to the file at exit.
//===----------------------------------------------------------------------===//

namespace {

std::string &metricsPath() {
  static std::string Path;
  return Path;
}

void dumpMetricsAtExit() {
  Status S =
      MetricsRegistry::instance().writePrometheusFile(metricsPath());
  if (!S.ok())
    std::fprintf(stderr, "ace: %s\n", S.message().c_str());
}

struct MetricsEnvActivation {
  MetricsEnvActivation() {
    const char *Path = std::getenv("ACE_METRICS");
    if (Path && *Path) {
      metricsPath() = Path;
      telemetry::Telemetry::instance().setEnabled(true);
      std::atexit(dumpMetricsAtExit);
    }
  }
} MetricsEnvActivationInstance;

} // namespace
