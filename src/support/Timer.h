//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing utilities. TimingRegistry accumulates named phase
/// timings; the compiler driver uses it to produce the Figure 5 per-IR
/// compile-time breakdown, and the inference harness uses it for the
/// Figure 6 Conv/Bootstrap/ReLU breakdown.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_TIMER_H
#define ACE_SUPPORT_TIMER_H

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ace {

/// Simple wall-clock stopwatch.
class WallTimer {
public:
  WallTimer() { reset(); }

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    auto Now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(Now - Start).count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Accumulates wall time per named phase, preserving first-seen order.
class TimingRegistry {
public:
  /// Adds \p Seconds to the accumulator for \p Phase.
  void add(const std::string &Phase, double Seconds);

  /// Accumulated seconds for \p Phase (0 when never recorded).
  double get(const std::string &Phase) const;

  /// Sum over all phases.
  double total() const;

  /// All (phase, seconds) pairs in first-seen order.
  const std::vector<std::pair<std::string, double>> &entries() const {
    return Entries;
  }

  /// Drops all recorded data.
  void clear() {
    Entries.clear();
    Index.clear();
  }

private:
  std::vector<std::pair<std::string, double>> Entries;
  /// Phase name -> position in Entries, so add()/get() are O(1) amortized
  /// while Entries keeps first-seen order for reporting.
  std::unordered_map<std::string, size_t> Index;
};

/// RAII helper: times its scope and records into a TimingRegistry.
class ScopedTimer {
public:
  ScopedTimer(TimingRegistry &Registry, std::string Phase)
      : Registry(Registry), Phase(std::move(Phase)) {}
  ~ScopedTimer() { Registry.add(Phase, Clock.seconds()); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  TimingRegistry &Registry;
  std::string Phase;
  WallTimer Clock;
};

} // namespace ace

#endif // ACE_SUPPORT_TIMER_H
