//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

using namespace ace;

void ace::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "ace fatal error: %s\n", Message.c_str());
  std::abort();
}
