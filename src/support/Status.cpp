//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

using namespace ace;

const char *ace::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::LevelMismatch:
    return "level-mismatch";
  case ErrorCode::ScaleMismatch:
    return "scale-mismatch";
  case ErrorCode::KeyMissing:
    return "key-missing";
  case ErrorCode::DepthExhausted:
    return "depth-exhausted";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::Internal:
    return "internal";
  case ErrorCode::DataCorrupt:
    return "data-corrupt";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  }
  return "unknown";
}

void ace::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "ace fatal error: %s\n", Message.c_str());
  std::abort();
}
