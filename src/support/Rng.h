//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random generation used across the stack: uniform
/// integers for RLWE masks, centered-binomial / discrete-Gaussian-style
/// noise, ternary secrets, and floating-point samples for synthetic
/// workloads. Everything is seeded so tests and benches are reproducible.
///
/// Security note: this reproduction targets correctness and performance
/// research, not deployment. A production ACEfhe would draw key and noise
/// randomness from a CSPRNG; the sampling *distributions* here are the
/// standard ones (uniform ring element, ternary secret, centered binomial
/// with sigma ~= 3.2), so noise-growth behaviour matches the real scheme.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_RNG_H
#define ACE_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ace {

/// xoshiro256++ PRNG: fast, high-quality, deterministic across platforms.
class Rng {
public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t Seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit output.
  uint64_t next64();

  /// Uniform value in [0, Bound) without modulo bias for Bound > 0.
  uint64_t uniform(uint64_t Bound);

  /// Uniform double in [0, 1).
  double uniformReal();

  /// Uniform double in [Lo, Hi).
  double uniformReal(double Lo, double Hi);

  /// Standard normal via Box-Muller.
  double gaussian();

  /// Sample from a centered binomial distribution with standard deviation
  /// close to 3.2 (the HE-standard RLWE error distribution); returns a
  /// signed integer in a small range around zero.
  int32_t noiseCbd();

  /// Sample from {-1, 0, 1} with P(0) = 1/2, P(+-1) = 1/4 each (the ternary
  /// secret distribution used by CKKS implementations).
  int32_t ternary();

  /// Fills \p Out with \p Count uniform residues modulo \p Modulus.
  void uniformVector(uint64_t Modulus, size_t Count,
                     std::vector<uint64_t> &Out);

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace ace

#endif // ACE_SUPPORT_RNG_H
