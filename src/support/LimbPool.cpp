//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/LimbPool.h"

#include "support/ResourceGovernor.h"

#include <cstdlib>
#include <cstring>

namespace ace {

LimbPool &LimbPool::instance() {
  // Leaked, never destroyed: RnsPoly values owned by statics may release
  // their storage after main() returns.
  static LimbPool *Pool = new LimbPool();
  return *Pool;
}

LimbPool::LimbPool() {
  if (const char *Env = std::getenv("ACE_LIMB_POOL")) {
    if (std::strcmp(Env, "off") == 0 || std::strcmp(Env, "0") == 0 ||
        std::strcmp(Env, "false") == 0)
      Enabled.store(false, std::memory_order_relaxed);
  }
  // Priority 10: the governor drains cold rotation keys (priority 0)
  // before it gives back the free lists — parked limbs are cheap to
  // refill, but the pool can still cover a shortfall on its own.
  // Never removed; the pool outlives every reclaim (leaked singleton).
  ResourceGovernor::instance().addReclaimer(
      10, "limb-pool-trim", [this](size_t WantBytes) {
        size_t Free = FreeBytes.load(std::memory_order_relaxed);
        return trim(Free > WantBytes ? Free - WantBytes : 0);
      });
}

void LimbPool::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

uint64_t *LimbPool::acquire(size_t Words, bool &FromPool) {
  const size_t Bytes = Words * sizeof(uint64_t);
  if (enabled()) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto It = Bins.find(Words);
      if (It != Bins.end() && !It->second.empty()) {
        uint64_t *Ptr = It->second.back();
        It->second.pop_back();
        Hits.fetch_add(1, std::memory_order_relaxed);
        FreeBytes.fetch_sub(Bytes, std::memory_order_relaxed);
        InUseBytes.fetch_add(Bytes, std::memory_order_relaxed);
        FromPool = true;
        return Ptr;
      }
    }
    // Miss: a fresh heap block that will live in the pool from now on.
    Misses.fetch_add(1, std::memory_order_relaxed);
    ResourceGovernor::instance().charge(MemCategory::LimbPool, Bytes);
    InUseBytes.fetch_add(Bytes, std::memory_order_relaxed);
    FromPool = true;
    return new uint64_t[Words];
  }
  // Bypass mode: plain heap allocation. Still counted as a miss so the
  // pool-off baseline of the allocations/op bench reads from the same
  // counter.
  Misses.fetch_add(1, std::memory_order_relaxed);
  FromPool = false;
  return new uint64_t[Words];
}

void LimbPool::release(uint64_t *Ptr, size_t Words, bool FromPool) {
  if (!Ptr)
    return;
  if (!FromPool) {
    delete[] Ptr;
    return;
  }
  const size_t Bytes = Words * sizeof(uint64_t);
  InUseBytes.fetch_sub(Bytes, std::memory_order_relaxed);
  FreeBytes.fetch_add(Bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mutex);
  Bins[Words].push_back(Ptr);
}

size_t LimbPool::trim(size_t TargetFreeBytes) {
  size_t Released = 0;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (auto &Bin : Bins) {
      const size_t BinBytes = Bin.first * sizeof(uint64_t);
      while (!Bin.second.empty() &&
             FreeBytes.load(std::memory_order_relaxed) > TargetFreeBytes) {
        delete[] Bin.second.back();
        Bin.second.pop_back();
        FreeBytes.fetch_sub(BinBytes, std::memory_order_relaxed);
        Released += BinBytes;
        Trims.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (Released)
    ResourceGovernor::instance().release(MemCategory::LimbPool, Released);
  return Released;
}

LimbPoolStats LimbPool::stats() const {
  LimbPoolStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Trims = Trims.load(std::memory_order_relaxed);
  S.FreeBytes = FreeBytes.load(std::memory_order_relaxed);
  S.InUseBytes = InUseBytes.load(std::memory_order_relaxed);
  return S;
}

void LimbPool::resetCounters() {
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
  Trims.store(0, std::memory_order_relaxed);
}

void LimbStorage::assignZero(size_t Words) {
  if (Cap < Words) {
    reset();
    Ptr = LimbPool::instance().acquire(Words, FromPool);
    Cap = Words;
  }
  Size = Words;
  if (Words)
    std::memset(Ptr, 0, Words * sizeof(uint64_t));
}

void LimbStorage::shrinkTo(size_t Words) {
  if (Words < Size)
    Size = Words;
}

void LimbStorage::reset() {
  if (Ptr)
    LimbPool::instance().release(Ptr, Cap, FromPool);
  Ptr = nullptr;
  Size = Cap = 0;
}

void LimbStorage::copyFrom(const LimbStorage &O) {
  if (Cap < O.Size) {
    reset();
    if (O.Size) {
      Ptr = LimbPool::instance().acquire(O.Size, FromPool);
      Cap = O.Size;
    }
  }
  Size = O.Size;
  if (Size)
    std::memcpy(Ptr, O.Ptr, Size * sizeof(uint64_t));
}

} // namespace ace
