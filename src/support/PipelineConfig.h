//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler pipeline knobs: the rescale/relinearize placement policy of
/// the SIHE->CKKS lowering and the packing strategy of the NN->VECTOR
/// lowering (docs/compiler.md). Both knobs resolve through the same
/// precedence chain:
///
///   explicit CompileOptions value
///     > process-wide default (ace_set_rescale_mode /
///       ace_set_packing_strategy C API)
///       > environment (ACE_LAZY_RESCALE / ACE_PACKING)
///         > builtin default (waterline / auto)
///
/// so a test that pins a mode stays deterministic while the CI matrix can
/// sweep whole test suites through the environment.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_PIPELINE_CONFIG_H
#define ACE_SUPPORT_PIPELINE_CONFIG_H

namespace ace {

/// Rescale/relinearize placement policy (docs/compiler.md).
enum class RescaleMode {
  /// Resolve through the process default / ACE_LAZY_RESCALE chain.
  RM_Auto,
  /// Settle the pending rescale and relinearize immediately after every
  /// multiplication (the hand-implementation baseline the op-budget
  /// contract measures against).
  RM_Eager,
  /// The historical default: postpone one rescale per value (scale
  /// Delta^2 "waterline") but settle at every consumer that cannot take a
  /// pending operand, re-settling per consumer.
  RM_Waterline,
  /// Last-responsible-moment placement: memoized settles, rescales sunk
  /// past same-scale additions, relinearization deferred (Cipher3 flows
  /// through additions and scalar ops) and fused over added products;
  /// canonical form is produced only at rotations, ct-ct multiply
  /// operands, bootstraps, and the return value.
  RM_Lazy,
};

/// Matrix-vector packing strategy of the NN->VECTOR lowering.
enum class PackingStrategy {
  /// Per-layer cost model (docs/compiler.md) picks among the concrete
  /// strategies below.
  PS_Auto,
  /// Halevi-Shoup diagonals as an explicit rotate/mask/add chain: one
  /// (hoistable) rotation and one ct-pt multiply per nonzero diagonal,
  /// one rotation key per distinct diagonal.
  PS_Diag,
  /// Baby-step/giant-step mat_diag (O(sqrt n) rotations and keys).
  PS_Bsgs,
  /// Column packing: replicate the input across K padded blocks, one
  /// wide ct-pt multiply, then a rotate-and-add reduction. Costs a slot
  /// grid large enough for K_pad * block and two multiplicative levels;
  /// only eligible on flat (non-spatial) layouts.
  PS_Column,
};

/// Printable knob values ("lazy", "bsgs", ...).
const char *rescaleModeName(RescaleMode Mode);
const char *packingStrategyName(PackingStrategy Strategy);

/// Parses a knob spelling; returns false on unknown input. Accepted
/// rescale spellings: auto, eager, waterline, lazy, and the
/// ACE_LAZY_RESCALE values on/1/true (lazy) and off/0/false (waterline).
/// Accepted packing spellings: auto, diag, bsgs, column.
bool parseRescaleMode(const char *Spec, RescaleMode &Out);
bool parsePackingStrategy(const char *Spec, PackingStrategy &Out);

/// Process-wide defaults consulted when a CompileOptions knob is Auto.
/// Setting RM_Auto / PS_Auto clears the override back to the environment.
void setProcessRescaleMode(RescaleMode Mode);
void setProcessPackingStrategy(PackingStrategy Strategy);
RescaleMode processRescaleMode();
PackingStrategy processPackingStrategy();

/// Resolves a CompileOptions knob to a concrete policy: an explicit
/// (non-Auto) option wins, then the process default, then the
/// environment (ACE_LAZY_RESCALE / ACE_PACKING, re-read on every resolve
/// so tests can flip it), then the builtin default. Unknown environment
/// values warn once and fall through; they never abort.
RescaleMode resolveRescaleMode(RescaleMode Option);
PackingStrategy resolvePackingStrategy(PackingStrategy Option);

} // namespace ace

#endif // ACE_SUPPORT_PIPELINE_CONFIG_H
