//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/MemTrack.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace ace;
using namespace ace::telemetry;

std::atomic<bool> ace::telemetry::detail::Enabled{false};
thread_local RequestContext *ace::telemetry::detail::CurrentRequest = nullptr;

namespace {

/// Buffered-event cap: ~1M events bound the buffer to low hundreds of MB
/// even on pathological runs; overflow is counted and reported instead of
/// silently truncating the story.
constexpr size_t kMaxEvents = 1u << 20;

/// Small dense thread ids for the trace (std::thread::id is opaque).
uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

} // namespace

const char *ace::telemetry::counterName(Counter C) {
  switch (C) {
  case Counter::CtCtMul:
    return "ct-ct-mul";
  case Counter::CtPtMul:
    return "ct-pt-mul";
  case Counter::Add:
    return "add";
  case Counter::Rotate:
    return "rotate";
  case Counter::Conjugate:
    return "conjugate";
  case Counter::Relinearize:
    return "relinearize";
  case Counter::Rescale:
    return "rescale";
  case Counter::ModSwitch:
    return "modswitch";
  case Counter::KeySwitch:
    return "key-switch";
  case Counter::KeySwitchDigit:
    return "key-switch-digit";
  case Counter::ModUp:
    return "modup";
  case Counter::HoistedKeySwitch:
    return "hoisted-keyswitch";
  case Counter::Bootstrap:
    return "bootstrap";
  case Counter::NttForward:
    return "ntt-forward";
  case Counter::NttInverse:
    return "ntt-inverse";
  case Counter::ParallelFor:
    return "parallel-for";
  case Counter::BytesSerialized:
    return "bytes-serialized";
  case Counter::BytesDeserialized:
    return "bytes-deserialized";
  case Counter::SvcAccepted:
    return "service-accepted";
  case Counter::SvcRejected:
    return "service-rejected";
  case Counter::SvcCompleted:
    return "service-completed";
  case Counter::SvcFailed:
    return "service-failed";
  case Counter::SvcDeadlineExpired:
    return "service-deadline-expired";
  case Counter::SvcCancelled:
    return "service-cancelled";
  case Counter::CounterCount:
    break;
  }
  return "unknown";
}

bool ace::telemetry::counterFromName(const std::string &Name, Counter &Out) {
  for (size_t I = 0; I < kCounterCount; ++I) {
    Counter C = static_cast<Counter>(I);
    if (Name == counterName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

std::string ace::telemetry::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (Ch < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += static_cast<char>(Ch);
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Telemetry hub
//===----------------------------------------------------------------------===//

Telemetry::Telemetry() : Epoch(std::chrono::steady_clock::now()) {}

Telemetry &Telemetry::instance() {
  static Telemetry T;
  return T;
}

void Telemetry::setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

double Telemetry::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

CounterSnapshot Telemetry::counters() const {
  CounterSnapshot S;
  for (size_t I = 0; I < kCounterCount; ++I)
    S.Values[I] = Counters[I].load(std::memory_order_relaxed);
  return S;
}

void Telemetry::recordSnapshot(const std::string &Label) {
  CounterSnapshot S = counters();
  std::lock_guard<std::mutex> Lock(Mutex);
  Snapshots.emplace_back(Label, S);
}

std::vector<std::pair<std::string, CounterSnapshot>>
Telemetry::snapshots() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Snapshots;
}

void Telemetry::addEvent(TraceEvent E) {
  if (E.Tid == 0)
    E.Tid = threadId();
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink)
    Sink->onEvent(E);
  if (Events.size() >= kMaxEvents) {
    ++DroppedEvents;
    return;
  }
  Events.push_back(std::move(E));
}

void Telemetry::setSink(TraceSink *NewSink) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Sink = NewSink;
}

size_t Telemetry::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

size_t Telemetry::droppedEventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DroppedEvents;
}

std::vector<TraceEvent> Telemetry::eventsCopy() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events;
}

void Telemetry::recordHealth(Counter Op, int NumQ, double Log2Scale,
                             double NoiseBudgetBits) {
  std::lock_guard<std::mutex> Lock(Mutex);
  OpHealth &H = Health[static_cast<size_t>(Op)];
  ++H.Count;
  if (NumQ >= 0) {
    H.MinLevel = std::min(H.MinLevel, NumQ);
    H.MaxLevel = std::max(H.MaxLevel, NumQ);
  }
  if (std::isfinite(NoiseBudgetBits))
    H.MinNoiseBudgetBits = std::min(H.MinNoiseBudgetBits, NoiseBudgetBits);
  H.LastLog2Scale = Log2Scale;
}

std::vector<std::pair<Counter, OpHealth>> Telemetry::health() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::pair<Counter, OpHealth>> Out;
  for (size_t I = 0; I < kCounterCount; ++I)
    if (Health[I].Count > 0)
      Out.emplace_back(static_cast<Counter>(I), Health[I]);
  return Out;
}

void Telemetry::nameThread(const std::string &Name) {
  uint32_t Tid = threadId();
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[ExistingTid, ExistingName] : ThreadNames)
    if (ExistingTid == Tid) {
      ExistingName = Name;
      return;
    }
  ThreadNames.emplace_back(Tid, Name);
}

std::vector<std::pair<uint32_t, std::string>>
Telemetry::threadNames() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return ThreadNames;
}

void Telemetry::setMetadata(const std::string &Key,
                            const std::string &Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[ExistingKey, ExistingValue] : Metadata)
    if (ExistingKey == Key) {
      ExistingValue = Value;
      return;
    }
  Metadata.emplace_back(Key, Value);
}

std::vector<std::pair<std::string, std::string>>
Telemetry::metadata() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Metadata;
}

void Telemetry::accumulatePhase(const std::string &Name, double Seconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Phases.add(Name, Seconds);
}

double Telemetry::phaseSeconds(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Phases.get(Name);
}

std::vector<std::pair<std::string, double>> Telemetry::phaseEntries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Phases.entries();
}

void Telemetry::sampleRss(const char *Label) {
  size_t Rss = currentRssBytes();
  size_t Prev = PeakRss.load(std::memory_order_relaxed);
  while (Rss > Prev &&
         !PeakRss.compare_exchange_weak(Prev, Rss,
                                        std::memory_order_relaxed))
    ;
  TraceEvent E;
  E.Name = Label;
  E.Category = "memory";
  E.Phase = 'C';
  E.TsUs = nowUs();
  E.CounterValue = static_cast<double>(Rss);
  addEvent(std::move(E));
}

void Telemetry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
  DroppedEvents = 0;
  Snapshots.clear();
  Health = {};
  ThreadNames.clear();
  Phases.clear();
  PeakRss.store(0, std::memory_order_relaxed);
  for (auto &C : Counters)
    C.store(0, std::memory_order_relaxed);
  for (auto &H : OpLatency)
    H.clear();
}

//===----------------------------------------------------------------------===//
// Chrome trace output
//===----------------------------------------------------------------------===//

void Telemetry::writeChromeTrace(std::ostream &OS) const {
  std::vector<TraceEvent> Copy;
  std::vector<std::pair<uint32_t, std::string>> Names;
  std::vector<std::pair<std::string, std::string>> Meta;
  size_t Dropped;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Copy = Events;
    Names = ThreadNames;
    Meta = Metadata;
    Dropped = DroppedEvents;
  }
  OS << "{\"traceEvents\":[";
  bool First = true;
  // Metadata first: the process name and one thread_name 'M' event per
  // registered thread, so pool workers and the service dispatcher show
  // up labeled in chrome://tracing. Synthesized at write time - naming
  // works even for threads started before telemetry was enabled.
  OS << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"ace\"}}";
  First = false;
  for (const auto &[Tid, Name] : Names)
    OS << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << Tid << ",\"args\":{\"name\":\"" << jsonEscape(Name) << "\"}}";
  for (const TraceEvent &E : Copy) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n{\"name\":\"" << jsonEscape(E.Name) << "\",\"cat\":\""
       << jsonEscape(E.Category) << "\",\"ph\":\"" << E.Phase
       << "\",\"pid\":1,\"tid\":" << E.Tid;
    char Buf[64];
    if (E.Phase == 'b' || E.Phase == 'e') {
      std::snprintf(Buf, sizeof(Buf), "\"0x%llx\"",
                    static_cast<unsigned long long>(E.Id));
      OS << ",\"id\":" << Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "%.3f", E.TsUs);
    OS << ",\"ts\":" << Buf;
    if (E.Phase == 'X') {
      std::snprintf(Buf, sizeof(Buf), "%.3f", E.DurUs);
      OS << ",\"dur\":" << Buf;
    }
    OS << ",\"args\":{";
    bool FirstArg = true;
    auto Arg = [&](const char *Key, double V, bool AsInt = false) {
      if (!FirstArg)
        OS << ",";
      FirstArg = false;
      if (AsInt)
        std::snprintf(Buf, sizeof(Buf), "%.0f", V);
      else
        std::snprintf(Buf, sizeof(Buf), "%.4f", V);
      OS << "\"" << Key << "\":" << Buf;
    };
    if (E.Level >= 0)
      Arg("level", E.Level, /*AsInt=*/true);
    if (std::isfinite(E.Log2Scale))
      Arg("log2Scale", E.Log2Scale);
    if (std::isfinite(E.NoiseBudgetBits))
      Arg("noiseBudgetBits", E.NoiseBudgetBits);
    if (std::isfinite(E.CounterValue))
      Arg("value", E.CounterValue, /*AsInt=*/true);
    if (E.Id != 0 && E.Phase != 'b' && E.Phase != 'e') {
      if (!FirstArg)
        OS << ",";
      FirstArg = false;
      std::snprintf(Buf, sizeof(Buf), "\"0x%016llx\"",
                    static_cast<unsigned long long>(E.Id));
      OS << "\"trace\":" << Buf;
    }
    OS << "}}";
  }
  OS << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"tool\":\"ace-telemetry\",\"droppedEvents\":" << Dropped
     << ",\"peakRssBytes\":" << peakRssBytes();
  // Run metadata (kernel backend, ...) so a saved trace records which
  // code path produced its timings.
  for (const auto &[Key, Value] : Meta)
    OS << ",\"" << jsonEscape(Key) << "\":\"" << jsonEscape(Value)
       << "\"";
  OS << "}}\n";
}

Status Telemetry::writeChromeTraceFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return Status::error("telemetry: cannot write trace file '" + Path +
                         "'");
  writeChromeTrace(OS);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

void Telemetry::writeReport(std::ostream &OS, bool Json) const {
  CounterSnapshot S = counters();
  auto HealthCopy = health();
  auto PhaseCopy = phaseEntries();
  auto SnapCopy = snapshots();
  size_t Rss = peakRssBytes();
  size_t NumEvents = eventCount();
  size_t Dropped = droppedEventCount();

  if (Json) {
    OS << "{\"counters\":{";
    bool First = true;
    for (size_t I = 0; I < kCounterCount; ++I) {
      if (!First)
        OS << ",";
      First = false;
      OS << "\"" << counterName(static_cast<Counter>(I))
         << "\":" << S.Values[I];
    }
    OS << "},\"health\":{";
    First = true;
    for (const auto &[Op, H] : HealthCopy) {
      if (!First)
        OS << ",";
      First = false;
      OS << "\"" << counterName(Op) << "\":{\"count\":" << H.Count
         << ",\"minLevel\":" << H.MinLevel
         << ",\"maxLevel\":" << H.MaxLevel;
      char Buf[64];
      if (std::isfinite(H.MinNoiseBudgetBits)) {
        std::snprintf(Buf, sizeof(Buf), "%.2f", H.MinNoiseBudgetBits);
        OS << ",\"minNoiseBudgetBits\":" << Buf;
      }
      if (std::isfinite(H.LastLog2Scale)) {
        std::snprintf(Buf, sizeof(Buf), "%.2f", H.LastLog2Scale);
        OS << ",\"lastLog2Scale\":" << Buf;
      }
      OS << "}";
    }
    OS << "},\"phases\":{";
    First = true;
    for (const auto &[Name, Secs] : PhaseCopy) {
      if (!First)
        OS << ",";
      First = false;
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.6f", Secs);
      OS << "\"" << jsonEscape(Name) << "\":" << Buf;
    }
    OS << "},\"snapshots\":[";
    First = true;
    for (const auto &[Label, Snap] : SnapCopy) {
      if (!First)
        OS << ",";
      First = false;
      OS << "{\"label\":\"" << jsonEscape(Label) << "\",\"counters\":{";
      bool FirstC = true;
      for (size_t I = 0; I < kCounterCount; ++I) {
        if (!FirstC)
          OS << ",";
        FirstC = false;
        OS << "\"" << counterName(static_cast<Counter>(I))
           << "\":" << Snap.Values[I];
      }
      OS << "}}";
    }
    OS << "],\"peakRssBytes\":" << Rss << ",\"traceEvents\":" << NumEvents
       << ",\"droppedEvents\":" << Dropped << "}\n";
    return;
  }

  OS << "=== ACE telemetry report ===\n";
  OS << "FHE op counters:\n";
  for (size_t I = 0; I < kCounterCount; ++I)
    if (S.Values[I] > 0) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "  %-18s %12llu\n",
                    counterName(static_cast<Counter>(I)),
                    static_cast<unsigned long long>(S.Values[I]));
      OS << Buf;
    }
  if (!HealthCopy.empty()) {
    OS << "Ciphertext health (level = active primes):\n";
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), "  %-18s %10s %14s %18s %12s\n", "op",
                  "count", "level[min,max]", "min-budget(bits)",
                  "log2(scale)");
    OS << Buf;
    for (const auto &[Op, H] : HealthCopy) {
      std::string Levels = "[" + std::to_string(H.MinLevel) + "," +
                           std::to_string(H.MaxLevel) + "]";
      std::snprintf(Buf, sizeof(Buf), "  %-18s %10llu %14s %18.1f %12.1f\n",
                    counterName(Op),
                    static_cast<unsigned long long>(H.Count),
                    Levels.c_str(),
                    std::isfinite(H.MinNoiseBudgetBits)
                        ? H.MinNoiseBudgetBits
                        : 0.0,
                    std::isfinite(H.LastLog2Scale) ? H.LastLog2Scale : 0.0);
      OS << Buf;
    }
  }
  if (!PhaseCopy.empty()) {
    OS << "Span times (wall seconds):\n";
    for (const auto &[Name, Secs] : PhaseCopy) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "  %-18s %12.4f\n", Name.c_str(),
                    Secs);
      OS << Buf;
    }
  }
  if (!SnapCopy.empty()) {
    OS << "Counter snapshots (deltas since previous):\n";
    CounterSnapshot Prev;
    for (const auto &[Label, Snap] : SnapCopy) {
      CounterSnapshot D = Snap.deltaSince(Prev);
      Prev = Snap;
      OS << "  " << Label << ":";
      bool Any = false;
      for (size_t I = 0; I < kCounterCount; ++I)
        if (D.Values[I] > 0) {
          OS << " " << counterName(static_cast<Counter>(I)) << "="
             << D.Values[I];
          Any = true;
        }
      OS << (Any ? "\n" : " (no FHE ops)\n");
    }
  }
  if (Rss > 0)
    OS << "Peak RSS: " << formatBytes(Rss) << "\n";
  OS << "Trace events: " << NumEvents << " recorded, " << Dropped
     << " dropped\n";
}

std::string Telemetry::reportString(bool Json) const {
  std::ostringstream OS;
  writeReport(OS, Json);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(const char *Category, std::string Name,
                     TimingRegistry *Also)
    : Category(Category), Name(std::move(Name)), Also(Also),
      Emit(enabled()) {
  if (Emit)
    StartUs = Telemetry::instance().nowUs();
}

TraceSpan::~TraceSpan() {
  double Seconds = Clock.seconds();
  if (Also)
    Also->add(Name, Seconds);
  if (!Emit)
    return;
  Telemetry &T = Telemetry::instance();
  RequestContext *Ctx = detail::CurrentRequest;
  if (Ctx && Ctx->Spans.size() < RequestContext::kMaxSpans)
    Ctx->Spans.emplace_back(Name, Seconds);
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Phase = 'X';
  E.TsUs = StartUs;
  E.DurUs = Seconds * 1e6;
  if (Ctx)
    E.Id = Ctx->TraceId;
  T.addEvent(std::move(E));
  T.accumulatePhase(Name, Seconds);
}

void FheOpSpan::begin(Counter BeginOp, size_t BeginNumQ, double Scale,
                      double Budget) {
  Active = true;
  Op = BeginOp;
  NumQ = static_cast<int>(BeginNumQ);
  Log2Scale = Scale > 0.0 ? std::log2(Scale)
                          : std::numeric_limits<double>::quiet_NaN();
  NoiseBudgetBits = Budget;
  Telemetry &T = Telemetry::instance();
  T.count(Op);
  StartUs = T.nowUs();
}

FheOpSpan::~FheOpSpan() {
  if (!Active)
    return;
  Telemetry &T = Telemetry::instance();
  double EndUs = T.nowUs();
  double DurUs = EndUs - StartUs;
  T.opLatency(Op).recordNanos(
      DurUs > 0.0 ? static_cast<uint64_t>(DurUs * 1e3) : 0);
  RequestContext *Ctx = detail::CurrentRequest;
  if (Ctx && std::isfinite(NoiseBudgetBits)) {
    Ctx->MinNoiseBudgetBits =
        std::min(Ctx->MinNoiseBudgetBits, NoiseBudgetBits);
    Ctx->SawHealth = true;
  }
  TraceEvent E;
  E.Name = counterName(Op);
  E.Category = "fhe";
  E.Phase = 'X';
  E.TsUs = StartUs;
  E.DurUs = DurUs;
  E.Level = NumQ;
  E.Log2Scale = Log2Scale;
  E.NoiseBudgetBits = NoiseBudgetBits;
  if (Ctx)
    E.Id = Ctx->TraceId;
  T.addEvent(std::move(E));
  T.recordHealth(Op, NumQ, Log2Scale, NoiseBudgetBits);
}

//===----------------------------------------------------------------------===//
// Environment activation: ACE_TRACE=<file> enables telemetry at process
// start and writes the Chrome trace at exit; ACE_TELEMETRY=1 enables
// collection without the exit-time file.
//===----------------------------------------------------------------------===//

namespace {

std::string &tracePath() {
  static std::string Path;
  return Path;
}

void flushTraceAtExit() {
  Status S = Telemetry::instance().writeChromeTraceFile(tracePath());
  if (!S.ok())
    std::fprintf(stderr, "ace: %s\n", S.message().c_str());
}

struct EnvActivation {
  EnvActivation() {
    const char *Trace = std::getenv("ACE_TRACE");
    if (Trace && *Trace) {
      tracePath() = Trace;
      Telemetry::instance().setEnabled(true);
      std::atexit(flushTraceAtExit);
    }
    const char *Collect = std::getenv("ACE_TELEMETRY");
    if (Collect && *Collect && *Collect != '0')
      Telemetry::instance().setEnabled(true);
  }
} EnvActivationInstance;

} // namespace
