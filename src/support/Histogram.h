//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free log-bucketed latency histogram (see docs/observability.md).
///
/// Replaces the service layer's fixed sample ring: a bounded, mergeable
/// histogram whose record() path is two relaxed atomic adds plus two
/// relaxed min/max updates - safe to call from any number of threads
/// with no locks and no allocation, so a serving hot path can record
/// every request forever without growing memory.
///
/// Bucketing is HdrHistogram-style log-linear: values (nanoseconds) are
/// grouped by power-of-two octave, each octave subdivided into
/// kSubBuckets linear sub-buckets. Worst-case relative bucket width is
/// 1/kSubBuckets (12.5%), so any quantile estimate is within one bucket
/// - at most ~12.5% relative error - of the exact order statistic.
/// Values below kSubBuckets nanoseconds are exact.
///
/// All statistics are monotone counters, so a Snapshot taken while other
/// threads record is a consistent-enough view: every bucket count is a
/// true value the bucket held at some point during the copy.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_HISTOGRAM_H
#define ACE_SUPPORT_HISTOGRAM_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ace {

class Histogram {
public:
  /// Sub-buckets per power-of-two octave (8 = 12.5% max relative error).
  static constexpr size_t kSubBucketBits = 3;
  static constexpr size_t kSubBuckets = size_t(1) << kSubBucketBits;
  /// Bucket count covering the full uint64 nanosecond range: one block
  /// of exact small values (indices [0, kSubBuckets)) plus one block per
  /// octave with the most-significant bit in [kSubBucketBits, 63].
  static constexpr size_t kBuckets =
      (64 - kSubBucketBits + 1) * kSubBuckets;

  /// A point-in-time copy with derived statistics. Plain data:
  /// mergeable, copyable, serializable by the caller.
  struct Snapshot {
    std::array<uint64_t, kBuckets> Buckets{};
    uint64_t Count = 0;
    uint64_t SumNanos = 0;
    uint64_t MinNanos = ~uint64_t(0);
    uint64_t MaxNanos = 0;

    /// Estimate of the Q-quantile (Q in [0,1]) in seconds, interpolated
    /// within the owning bucket and clamped to the observed min/max.
    /// 0 when empty.
    double quantileSeconds(double Q) const;
    /// Number of recorded values <= Seconds (bucket-granular: counts the
    /// whole bucket containing Seconds).
    uint64_t cumulativeCount(double Seconds) const;
    double sumSeconds() const { return static_cast<double>(SumNanos) * 1e-9; }
    double minSeconds() const {
      return Count ? static_cast<double>(MinNanos) * 1e-9 : 0.0;
    }
    double maxSeconds() const { return static_cast<double>(MaxNanos) * 1e-9; }
    double meanSeconds() const {
      return Count ? sumSeconds() / static_cast<double>(Count) : 0.0;
    }

    /// Element-wise accumulate (histograms are mergeable: a merged
    /// snapshot's quantiles are the quantiles of the combined stream).
    void merge(const Snapshot &Other);

    /// `{"count":N,"p50":...,"p90":...,"p99":...,"p999":...,"mean":...,
    /// "max":...}` - the shared quantile block bench JSON emits.
    std::string quantilesJson() const;
  };

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Records one value. Negative and NaN clamp to zero; values are
  /// saturated at ~584 years. Lock-free, wait-free, allocation-free.
  void recordSeconds(double Seconds);
  void recordNanos(uint64_t Nanos);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  Snapshot snapshot() const;

  /// Folds \p Other's current contents into this histogram.
  void merge(const Histogram &Other);

  /// Resets every bucket and statistic to empty.
  void clear();

  /// \name Bucket geometry (pure functions; exposed for tests and
  /// exporters).
  /// @{
  static size_t bucketIndex(uint64_t Nanos);
  static uint64_t bucketLowerNanos(size_t Index);
  /// Exclusive upper bound; saturates at the top bucket.
  static uint64_t bucketUpperNanos(size_t Index);
  /// @}

private:
  std::array<std::atomic<uint64_t>, kBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> SumNanos{0};
  std::atomic<uint64_t> MinNanos{~uint64_t(0)};
  std::atomic<uint64_t> MaxNanos{0};
};

} // namespace ace

#endif // ACE_SUPPORT_HISTOGRAM_H
