//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded structured JSONL event log for the serving stack (see
/// docs/observability.md). One JSON object per line, one line per
/// request lifecycle completion: session, trace id, outcome, stage
/// latencies (queue wait / execute / end-to-end), the request's FHE
/// op-count delta, and its minimum observed noise budget - the record a
/// log pipeline ingests to answer "why was THIS request slow" after the
/// fact.
///
/// A configurable slow-request threshold upgrades a record: requests at
/// or above it additionally carry their full span breakdown (every
/// trace span closed on the request's thread, with wall seconds) and a
/// ciphertext-health snapshot, so the one pathological request in a
/// million arrives in the log with its own profile attached.
///
/// Bounded by design: records beyond MaxRecords are counted as dropped,
/// never buffered; each record is a single bounded write under one
/// mutex. Disabled (the default) the check is one relaxed atomic load.
/// ACE_EVENT_LOG=<file> opens the log at process start (and enables
/// telemetry so op deltas and noise budgets are populated);
/// ACE_SLOW_REQUEST_SECONDS=<s> sets the threshold.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_EVENTLOG_H
#define ACE_SUPPORT_EVENTLOG_H

#include "support/Status.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ace {
namespace obs {

/// Everything one request-completion line carries. Stage seconds that
/// never happened (a request failed before execution) stay negative and
/// are omitted from the line.
struct RequestLogEntry {
  uint64_t SessionId = 0;
  uint64_t TraceId = 0;
  uint64_t RequestId = 0;
  uint64_t ClientTag = 0;
  /// Stable status-code name ("ok", "deadline-exceeded", ...).
  const char *StatusName = "ok";
  double QueueSeconds = -1.0;
  double ExecSeconds = -1.0;
  double TotalSeconds = -1.0;
  /// Per-request counter delta; only nonzero slots are written.
  telemetry::CounterSnapshot OpDelta;
  /// Minimum noise budget any FHE op in this request observed;
  /// +infinity (= absent) when no op recorded health.
  double MinNoiseBudgetBits = 0.0;
  bool HasMinNoiseBudget = false;
  /// Span breakdown for the slow-request dump: (name, wall seconds) of
  /// every trace span closed while the request executed.
  std::vector<std::pair<std::string, double>> Spans;
};

/// The process-wide JSONL sink. Thread-safe; record() takes one mutex
/// only when the log is open.
class EventLog {
public:
  static EventLog &instance();

  /// The one branch the disabled path pays.
  bool enabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }

  /// Opens (truncates) \p Path and starts accepting records.
  Status open(const std::string &Path);
  /// Flushes and closes; record() becomes a no-op again.
  void close();

  /// Requests with TotalSeconds >= the threshold get the span/health
  /// dump. <= 0 disables slow dumps (the default when the env var is
  /// unset).
  void setSlowThresholdSeconds(double S);
  double slowThresholdSeconds() const;

  /// Cap on emitted lines; records beyond it are counted, not written.
  void setMaxRecords(uint64_t N);

  /// Appends one line (or counts a drop past the cap). No-op while
  /// closed.
  void record(const RequestLogEntry &E);

  uint64_t writtenCount() const;
  uint64_t droppedCount() const;

  /// Renders \p E exactly as record() would write it (exposed so tests
  /// and bespoke sinks share one schema).
  static std::string renderLine(const RequestLogEntry &E, bool Slow);

private:
  EventLog();
  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  std::atomic<bool> Enabled{false};
  struct Impl;
  Impl *P; // leaked singleton state: the atexit close must stay valid
};

} // namespace obs
} // namespace ace

#endif // ACE_SUPPORT_EVENTLOG_H
