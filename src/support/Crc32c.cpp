//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Crc32c.h"

#include <array>

using namespace ace;

namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial. Built
/// once at first use; 1 KiB. Throughput is irrelevant next to the FHE
/// arithmetic the checksummed payloads carry.
struct Crc32cTable {
  std::array<uint32_t, 256> Entry;

  Crc32cTable() {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0x82F63B78u ^ (C >> 1)) : (C >> 1);
      Entry[I] = C;
    }
  }
};

const Crc32cTable &table() {
  static const Crc32cTable T;
  return T;
}

} // namespace

uint32_t ace::crc32cExtend(uint32_t Crc, const void *Data, size_t Size) {
  const auto &T = table();
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint32_t C = Crc ^ 0xFFFFFFFFu;
  for (size_t I = 0; I < Size; ++I)
    C = T.Entry[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

uint32_t ace::crc32c(const void *Data, size_t Size) {
  return crc32cExtend(0, Data, Size);
}
