//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace ace;

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  // SplitMix64 expansion of the seed into the xoshiro state, as recommended
  // by the xoshiro authors; guarantees a non-zero state.
  uint64_t Z = Seed;
  for (auto &S : State) {
    Z += 0x9e3779b97f4a7c15ULL;
    uint64_t T = Z;
    T = (T ^ (T >> 30)) * 0xbf58476d1ce4e5b9ULL;
    T = (T ^ (T >> 27)) * 0x94d049bb133111ebULL;
    S = T ^ (T >> 31);
  }
}

uint64_t Rng::next64() {
  uint64_t Result = rotl(State[0] + State[3], 23) + State[0];
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::uniform(uint64_t Bound) {
  assert(Bound > 0 && "uniform bound must be positive");
  // Rejection sampling over the largest multiple of Bound below 2^64.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next64();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Rng::uniformReal() {
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double Lo, double Hi) {
  return Lo + (Hi - Lo) * uniformReal();
}

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = 2.0 * uniformReal() - 1.0;
    V = 2.0 * uniformReal() - 1.0;
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Mul = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Mul;
  HasSpareGaussian = true;
  return U * Mul;
}

int32_t Rng::noiseCbd() {
  // Centered binomial with 21 coin pairs: variance 21/2 = 10.5, standard
  // deviation ~3.24, matching the HE-standard sigma = 3.2 closely.
  uint64_t Bits = next64();
  int32_t Acc = 0;
  for (int I = 0; I < 21; ++I) {
    Acc += static_cast<int32_t>((Bits >> (2 * I)) & 1);
    Acc -= static_cast<int32_t>((Bits >> (2 * I + 1)) & 1);
  }
  return Acc;
}

int32_t Rng::ternary() {
  uint64_t R = next64() & 3;
  if (R == 0)
    return -1;
  if (R == 1)
    return 1;
  return 0;
}

void Rng::uniformVector(uint64_t Modulus, size_t Count,
                        std::vector<uint64_t> &Out) {
  Out.resize(Count);
  for (auto &V : Out)
    V = uniform(Modulus);
}
