//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGovernor.h"

#include "support/FaultInjector.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ace {

const char *memCategoryName(MemCategory Category) {
  switch (Category) {
  case MemCategory::LimbPool:
    return "limb_pool";
  case MemCategory::EvalKeys:
    return "eval_keys";
  case MemCategory::Sessions:
    return "sessions";
  case MemCategory::Other:
    return "other";
  case MemCategory::CategoryCount:
    break;
  }
  return "unknown";
}

size_t GovernorStats::remainingBytes() const {
  if (BudgetBytes == 0)
    return SIZE_MAX;
  size_t Total = totalChargedBytes();
  return Total >= BudgetBytes ? 0 : BudgetBytes - Total;
}

ResourceGovernor &ResourceGovernor::instance() {
  // Leaked, never destroyed: consumers release charges during static
  // teardown.
  static ResourceGovernor *Gov = new ResourceGovernor();
  return *Gov;
}

ResourceGovernor::ResourceGovernor() {
  for (auto &C : Charged)
    C.store(0, std::memory_order_relaxed);
  if (const char *Env = std::getenv("ACE_MEMORY_BUDGET")) {
    size_t Bytes = 0;
    if (parseByteSize(Env, Bytes))
      Budget.store(Bytes, std::memory_order_relaxed);
    else
      std::fprintf(stderr, "ace: ignoring malformed ACE_MEMORY_BUDGET '%s'\n",
                   Env);
  }
}

void ResourceGovernor::setBudgetBytes(size_t Bytes) {
  Budget.store(Bytes, std::memory_order_relaxed);
}

void ResourceGovernor::charge(MemCategory Category, size_t Bytes) {
  Charged[static_cast<size_t>(Category)].fetch_add(Bytes,
                                                   std::memory_order_relaxed);
}

void ResourceGovernor::release(MemCategory Category, size_t Bytes) {
  auto &Gauge = Charged[static_cast<size_t>(Category)];
  size_t Cur = Gauge.load(std::memory_order_relaxed);
  while (true) {
    size_t Next = Cur >= Bytes ? Cur - Bytes : 0;
    if (Gauge.compare_exchange_weak(Cur, Next, std::memory_order_relaxed))
      return;
  }
}

size_t ResourceGovernor::totalCharged() const {
  size_t Total = 0;
  for (const auto &C : Charged)
    Total += C.load(std::memory_order_relaxed);
  return Total;
}

Status ResourceGovernor::admit(size_t Bytes, const std::string &What) {
  const size_t Limit = Budget.load(std::memory_order_relaxed);
  bool Injected = false;
  if (FaultInjector::instance().enabled() &&
      FaultInjector::instance().shouldFire(FaultKind::BudgetExceeded))
    Injected = true;

  if (!Injected) {
    if (Limit == 0 || totalCharged() + Bytes <= Limit)
      return Status::success();
    // Over budget: ask reclaimers for the shortfall, then recheck.
    size_t Total = totalCharged();
    size_t Need = Total + Bytes > Limit ? Total + Bytes - Limit : 0;
    reclaim(Need);
    if (totalCharged() + Bytes <= Limit)
      return Status::success();
  } else {
    // The injected path still exercises reclaim so tests cover the full
    // degradation sequence, then sheds unconditionally.
    reclaim(Bytes);
  }

  Sheds.fetch_add(1, std::memory_order_relaxed);
  return Status::resourceExhausted(
      What + ": memory budget exceeded (" + std::to_string(Bytes) +
      " bytes requested, " + std::to_string(totalCharged()) + " of " +
      std::to_string(Limit) + " charged" +
      (Injected ? ", injected fault)" : ")"));
}

size_t ResourceGovernor::reclaim(size_t WantBytes) {
  // The shared invoke lock spans the snapshot AND every callback:
  // removeReclaimer acquires it exclusively after erasing, so a consumer
  // tearing down (e.g. ~RotationKeyCache on closeSession) cannot free
  // its state while a concurrent pass still holds a snapshotted copy of
  // its callback. Taken BEFORE snapshotting — a snapshot made outside
  // the lock could otherwise be invoked after removal completes.
  std::shared_lock<std::shared_mutex> Invoke(InvokeMutex);
  std::vector<Reclaimer> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(ReclaimerMutex);
    Snapshot = Reclaimers;
  }
  size_t Got = 0;
  for (const Reclaimer &R : Snapshot) {
    if (Got >= WantBytes)
      break;
    Got += R.Fn(WantBytes - Got);
  }
  if (Got)
    ReclaimedBytes.fetch_add(Got, std::memory_order_relaxed);
  return Got;
}

uint64_t ResourceGovernor::addReclaimer(int Priority, std::string Name,
                                        ReclaimFn Fn) {
  std::lock_guard<std::mutex> Lock(ReclaimerMutex);
  uint64_t Id = NextReclaimerId++;
  Reclaimers.push_back({Id, Priority, std::move(Name), std::move(Fn)});
  std::stable_sort(Reclaimers.begin(), Reclaimers.end(),
                   [](const Reclaimer &A, const Reclaimer &B) {
                     return A.Priority < B.Priority;
                   });
  return Id;
}

void ResourceGovernor::removeReclaimer(uint64_t Id) {
  {
    std::lock_guard<std::mutex> Lock(ReclaimerMutex);
    Reclaimers.erase(std::remove_if(Reclaimers.begin(), Reclaimers.end(),
                                    [Id](const Reclaimer &R) {
                                      return R.Id == Id;
                                    }),
                     Reclaimers.end());
  }
  // Drain in-flight reclaim passes: any pass that snapshotted this
  // reclaimer holds InvokeMutex shared for its whole run, so once the
  // exclusive lock is granted no snapshot can still call the callback
  // and the caller may free its captured state.
  std::unique_lock<std::shared_mutex> Drain(InvokeMutex);
}

GovernorStats ResourceGovernor::stats() const {
  GovernorStats S;
  S.BudgetBytes = Budget.load(std::memory_order_relaxed);
  for (size_t I = 0; I < static_cast<size_t>(MemCategory::CategoryCount); ++I)
    S.ChargedBytes[I] = Charged[I].load(std::memory_order_relaxed);
  S.Sheds = Sheds.load(std::memory_order_relaxed);
  S.ReclaimedBytes = ReclaimedBytes.load(std::memory_order_relaxed);
  S.KeyCacheHits = CacheHits.load(std::memory_order_relaxed);
  S.KeyCacheMisses = CacheMisses.load(std::memory_order_relaxed);
  S.KeyCacheEvictions = CacheEvictions.load(std::memory_order_relaxed);
  return S;
}

void ResourceGovernor::resetCounters() {
  Sheds.store(0, std::memory_order_relaxed);
  ReclaimedBytes.store(0, std::memory_order_relaxed);
  CacheHits.store(0, std::memory_order_relaxed);
  CacheMisses.store(0, std::memory_order_relaxed);
  CacheEvictions.store(0, std::memory_order_relaxed);
}

bool parseByteSize(const std::string &Text, size_t &OutBytes) {
  // strtoull silently wraps negatives; require a leading digit.
  if (Text.empty() || Text[0] < '0' || Text[0] > '9')
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long Value = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str())
    return false;
  size_t Mult = 1;
  if (*End) {
    switch (*End) {
    case 'k':
    case 'K':
      Mult = 1ull << 10;
      break;
    case 'm':
    case 'M':
      Mult = 1ull << 20;
      break;
    case 'g':
    case 'G':
      Mult = 1ull << 30;
      break;
    default:
      return false;
    }
    if (*(End + 1))
      return false;
  }
  // Reject anything that would wrap: a budget like "17179869184g" must
  // fail loudly, not silently truncate to a tiny (or 0 = unlimited)
  // value. Errno catches inputs strtoull itself clamped to ULLONG_MAX.
  if (errno == ERANGE || Value > SIZE_MAX / Mult)
    return false;
  OutBytes = static_cast<size_t>(Value) * Mult;
  return true;
}

} // namespace ace
