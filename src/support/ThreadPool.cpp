//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

using namespace ace;

namespace {

/// Set while a thread (worker or the caller) executes parallelFor chunks;
/// nested parallelFor calls observe it and run inline.
thread_local bool InParallelTask = false;

/// Saves and restores the previous flag value: a nested inline
/// parallelFor also opens a scope, and clearing the flag outright on its
/// exit would let the NEXT nested call inside the same chunk take the
/// fork path and self-deadlock on the pool's run lock.
struct TaskFlagScope {
  bool Prev;
  TaskFlagScope() : Prev(InParallelTask) { InParallelTask = true; }
  ~TaskFlagScope() { InParallelTask = Prev; }
};

} // namespace

size_t ace::threadCountFromSpec(const char *Spec) {
  if (!Spec || !*Spec)
    return 1;
  char *End = nullptr;
  long V = std::strtol(Spec, &End, 10);
  if (End == Spec || *End != '\0' || V <= 0)
    return 1;
  if (V > 256)
    return 256;
  return static_cast<size_t>(V);
}

struct ThreadPool::Impl {
  /// One parallelFor invocation. Geometry is immutable after
  /// publication; NextChunk hands each chunk to exactly one thread. A
  /// worker drains only the job it snapshotted under the pool mutex, so
  /// a late-waking thread can never claim chunks of a newer job with
  /// stale geometry.
  struct Job {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t Begin = 0;
    size_t Len = 0;
    size_t NumChunks = 0;
    std::atomic<size_t> NextChunk{0};
    size_t ChunksLeft = 0; ///< guarded by the pool mutex
    std::exception_ptr FirstError; ///< guarded by the pool mutex
  };

  /// Serializes whole parallelFor invocations from distinct user threads
  /// (the runtime itself issues them from one thread at a time).
  std::mutex RunMutex;

  /// Protects job publication, completion counts, and worker lifecycle.
  std::mutex Mutex;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;

  size_t NumThreads = 1;
  bool Exit = false;
  std::vector<std::thread> Workers;

  uint64_t Generation = 0;
  std::shared_ptr<Job> Current;

  /// Runs chunks of \p J until none are left, recording the first
  /// exception. The caller's Fn outlives every claimed chunk: the
  /// publishing thread blocks until ChunksLeft reaches zero.
  void drainChunks(Job &J) {
    TaskFlagScope Scope;
    for (;;) {
      size_t C = J.NextChunk.fetch_add(1, std::memory_order_relaxed);
      if (C >= J.NumChunks)
        return;
      // Fixed contiguous partitioning: chunk C covers
      // [Begin + C*Len/NumChunks, Begin + (C+1)*Len/NumChunks).
      size_t Lo = J.Begin + C * J.Len / J.NumChunks;
      size_t Hi = J.Begin + (C + 1) * J.Len / J.NumChunks;
      std::exception_ptr Err;
      try {
        for (size_t I = Lo; I < Hi; ++I)
          (*J.Fn)(I);
      } catch (...) {
        Err = std::current_exception();
      }
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Err && !J.FirstError)
        J.FirstError = Err;
      if (--J.ChunksLeft == 0)
        DoneCv.notify_all();
    }
  }

  void workerMain() {
    uint64_t SeenGeneration = 0;
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      WorkCv.wait(Lock, [&] {
        return Exit || Generation != SeenGeneration;
      });
      if (Exit)
        return;
      SeenGeneration = Generation;
      std::shared_ptr<Job> J = Current;
      Lock.unlock();
      if (J)
        drainChunks(*J);
      Lock.lock();
    }
  }

  /// Joins all workers. Callers hold no pool lock.
  void stopWorkers() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Exit = true;
    }
    WorkCv.notify_all();
    for (std::thread &W : Workers)
      W.join();
    Workers.clear();
    std::lock_guard<std::mutex> Lock(Mutex);
    Exit = false;
  }
};

ThreadPool::ThreadPool() : P(std::make_unique<Impl>()) {
  P->NumThreads = threadCountFromSpec(std::getenv("ACE_THREADS"));
}

ThreadPool::~ThreadPool() { P->stopWorkers(); }

ThreadPool &ThreadPool::instance() {
  static ThreadPool Pool;
  return Pool;
}

bool ThreadPool::inWorker() { return InParallelTask; }

ThreadPool::InlineRegion::InlineRegion() : Prev(InParallelTask) {
  InParallelTask = true;
}

ThreadPool::InlineRegion::~InlineRegion() { InParallelTask = Prev; }

size_t ThreadPool::numThreads() const {
  std::lock_guard<std::mutex> Lock(P->Mutex);
  return P->NumThreads;
}

Status ThreadPool::setNumThreads(size_t N) {
  // A pool task asking the pool to reconfigure would join the very
  // workers executing it (self-join deadlock). Fail cleanly instead of
  // relying on the header's "must not" - a service request handler is
  // exactly the kind of caller that might reach this by accident. No
  // assert here: this repo keeps asserts on in every build type, and the
  // recoverable path must stay testable.
  if (InParallelTask)
    return Status::invalidArgument(
        "setNumThreads: called from inside a parallelFor task; the pool "
        "cannot join its own workers (reconfigure from a quiescent "
        "point instead)");
  if (N == 0)
    N = threadCountFromSpec(std::getenv("ACE_THREADS"));
  std::lock_guard<std::mutex> RunLock(P->RunMutex);
  P->stopWorkers();
  std::lock_guard<std::mutex> Lock(P->Mutex);
  P->NumThreads = N;
  return Status::success();
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Fn) {
  if (End <= Begin)
    return;
  size_t Len = End - Begin;
  size_t Threads;
  {
    std::lock_guard<std::mutex> Lock(P->Mutex);
    Threads = P->NumThreads;
  }
  // Serial pool, trivial range, or nested call: run inline. The task
  // flag is still set so the serial path exercises the same nesting
  // semantics the forked path has.
  if (Threads <= 1 || Len == 1 || InParallelTask) {
    TaskFlagScope Scope;
    for (size_t I = Begin; I < End; ++I)
      Fn(I);
    return;
  }

  std::lock_guard<std::mutex> RunLock(P->RunMutex);
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(telemetry::Counter::ParallelFor);
  auto J = std::make_shared<Impl::Job>();
  J->Fn = &Fn;
  J->Begin = Begin;
  J->Len = Len;
  // More chunks than threads smooths imbalance (limbs at mixed levels);
  // chunk geometry is a pure function of (Len, NumChunks), and results
  // never depend on it either way - chunks are disjoint and every
  // parallelized loop is per-index independent.
  J->NumChunks = std::min(Len, Threads * 4);
  J->ChunksLeft = J->NumChunks;
  {
    std::lock_guard<std::mutex> Lock(P->Mutex);
    // Lazy worker start: Threads - 1 workers, the caller is the Nth.
    while (P->Workers.size() + 1 < Threads) {
      size_t WorkerIndex = P->Workers.size();
      P->Workers.emplace_back([Impl = P.get(), WorkerIndex] {
        telemetry::Telemetry::instance().nameThread(
            "ace-pool-worker-" + std::to_string(WorkerIndex));
        Impl->workerMain();
      });
    }
    P->Current = J;
    ++P->Generation;
  }
  P->WorkCv.notify_all();
  P->drainChunks(*J);
  std::unique_lock<std::mutex> Lock(P->Mutex);
  P->DoneCv.wait(Lock, [&] { return J->ChunksLeft == 0; });
  P->Current.reset();
  if (J->FirstError) {
    std::exception_ptr Err = J->FirstError;
    Lock.unlock();
    std::rethrow_exception(Err);
  }
}
