//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deadlines and cooperative cancellation for long-running FHE work (see
/// docs/serving.md). A single encrypted inference is seconds to minutes of
/// compute; a serving layer must be able to abandon a request whose client
/// gave up or whose deadline passed without burning the rest of that
/// compute. The runtime has no preemption: instead, every checked
/// evaluator entry point and every executor IR step polls the current
/// thread's CancellationToken and unwinds with Status(Cancelled) or
/// Status(DeadlineExceeded) between homomorphic operations. Granularity is
/// therefore one CKKS op (typically milliseconds at toy parameters, up to
/// one bootstrap at worst) - coarse enough to cost nothing on the hot
/// path, fine enough to bound wasted work.
///
/// Three pieces:
///  - Deadline: a steady-clock expiry point (or "never").
///  - CancellationSource / CancellationToken: the source side flips a
///    shared atomic flag; tokens are cheap value-type views that combine
///    the flag with a deadline.
///  - CancellationScope: RAII installation of a token as the calling
///    thread's current token, which is where the evaluator's checked tier
///    looks. Scopes nest (the previous token is restored), and a thread
///    with no scope installed polls a never-cancelled token - one
///    thread-local read and two predictable branches.
///
/// The flag is only ever checked between operations on the thread that
/// entered the scope; parallelFor workers inside one CKKS op never see a
/// mid-op cancellation, which is what keeps cancelled runs free of
/// half-written ciphertexts.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_CANCELLATION_H
#define ACE_SUPPORT_CANCELLATION_H

#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace ace {

/// A point in steady-clock time after which work should stop. Value type;
/// default construction means "never expires".
class Deadline {
public:
  Deadline() = default;

  /// A deadline that never expires.
  static Deadline never() { return Deadline(); }

  /// Expires \p Seconds from now. Non-positive values produce an
  /// already-expired deadline (the natural meaning for a request whose
  /// budget was spent before it was dequeued).
  static Deadline afterSeconds(double Seconds) {
    Deadline D;
    D.Bounded = true;
    D.At = std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(Seconds));
    return D;
  }

  /// Expires \p Micros microseconds from now (the wire-framing unit).
  static Deadline afterMicros(uint64_t Micros) {
    return afterSeconds(static_cast<double>(Micros) * 1e-6);
  }

  /// True when the deadline can expire at all.
  bool bounded() const { return Bounded; }

  /// True when the deadline has passed. Never true for never().
  bool expired() const {
    return Bounded && std::chrono::steady_clock::now() >= At;
  }

  /// Seconds until expiry: negative when already expired, +infinity for
  /// never().
  double remainingSeconds() const {
    if (!Bounded)
      return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(
               At - std::chrono::steady_clock::now())
        .count();
  }

private:
  bool Bounded = false;
  std::chrono::steady_clock::time_point At{};
};

/// A cheap, copyable view a long computation polls: "was I cancelled, or
/// did my deadline pass?". Default-constructed tokens never cancel and
/// never expire. Obtain cancellable tokens from a CancellationSource.
class CancellationToken {
public:
  CancellationToken() = default;

  /// True when the owning source was cancelled.
  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }

  /// The deadline this token carries (never() by default).
  const Deadline &deadline() const { return Limit; }

  /// The poll every checkpoint performs: Status(Cancelled) when the
  /// source was cancelled, Status(DeadlineExceeded) when the deadline
  /// passed, success otherwise. \p What names the operation for the
  /// diagnostic ("mul", "executor run", ...). Cancellation is checked
  /// first so an explicitly abandoned request reports Cancelled even
  /// after its deadline also expired.
  Status check(const char *What) const;

private:
  friend class CancellationSource;
  CancellationToken(std::shared_ptr<const std::atomic<bool>> Flag,
                    Deadline Limit)
      : Flag(std::move(Flag)), Limit(Limit) {}

  std::shared_ptr<const std::atomic<bool>> Flag;
  Deadline Limit;
};

/// The owner side of a cancellation: cancel() flips a shared flag every
/// token minted from this source observes. Copyable (copies share the
/// flag); thread-safe.
class CancellationSource {
public:
  CancellationSource()
      : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; visible to all tokens on their
  /// next check().
  void cancel() { Flag->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return Flag->load(std::memory_order_relaxed); }

  /// Mints a token observing this source's flag, optionally bounded by
  /// \p Limit.
  CancellationToken token(Deadline Limit = Deadline::never()) const {
    return CancellationToken(Flag, Limit);
  }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// Installs \p Token as the calling thread's current token for the
/// scope's lifetime; the evaluator's checked tier and the executor's IR
/// loop poll it via checkCancellation(). Scopes nest: destruction
/// restores the previously installed token.
class CancellationScope {
public:
  explicit CancellationScope(CancellationToken Token);
  ~CancellationScope();

  CancellationScope(const CancellationScope &) = delete;
  CancellationScope &operator=(const CancellationScope &) = delete;

  /// The calling thread's installed token (a never-cancelled token when
  /// no scope is active).
  static const CancellationToken &current();

private:
  CancellationToken Previous;
};

/// Convenience poll of the calling thread's current token; the spelling
/// the checked evaluator tier uses. Success when no scope is installed.
Status checkCancellation(const char *What);

} // namespace ace

#endif // ACE_SUPPORT_CANCELLATION_H
