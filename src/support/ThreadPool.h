//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's parallel execution layer (see docs/performance.md).
///
/// A deliberately small, work-stealing-free thread pool with exactly one
/// primitive: parallelFor over an index range. The FHE hot paths use it
/// at RNS-limb and key-switch-digit granularity - every parallelized loop
/// writes disjoint data per index and performs only exact (modular
/// integer, or per-index-independent floating-point) arithmetic, so
/// results are bit-identical at every thread count. There are no
/// cross-iteration floating-point reductions anywhere under the pool.
///
/// Lifecycle: the pool is a lazy process-wide singleton. Worker threads
/// start on the first parallelFor that actually forks; the default
/// thread count comes from the ACE_THREADS environment variable (absent
/// or invalid = 1, i.e. serial - threading is opt-in so the default
/// configuration stays exactly as reproducible and sanitizer-friendly as
/// the single-threaded seed). ThreadPool::setNumThreads (or the C API's
/// ace_set_num_threads) reconfigures it at any quiescent point.
///
/// Semantics:
///  - parallelFor(Begin, End, Fn) calls Fn(I) exactly once for every I in
///    [Begin, End). The range is split into fixed contiguous chunks;
///    which thread runs which chunk is unspecified, the set of chunks is
///    not.
///  - Runs inline (no queueing, same thread) when the pool is serial,
///    the range is a single index, or the caller is itself a pool worker
///    (nested parallelFor never deadlocks, it just serializes).
///  - Exceptions thrown by Fn are captured; the first one is rethrown on
///    the calling thread after every chunk finished. The pool stays
///    usable afterwards - this is how injected faults keep failing
///    cleanly under threads.
///  - Telemetry-aware: each forked region bumps the parallel-for op
///    counter (atomic, exact); telemetry spans and counters used inside
///    Fn work from worker threads (the trace records their tids).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_THREADPOOL_H
#define ACE_SUPPORT_THREADPOOL_H

#include "support/Status.h"

#include <cstddef>
#include <functional>
#include <memory>

namespace ace {

/// Parses a thread-count spec (the ACE_THREADS value): returns the count
/// for a positive integer, 1 for null/empty/invalid/zero/negative input.
/// Counts above 256 clamp to 256.
size_t threadCountFromSpec(const char *Spec);

/// The process-wide worker pool. All methods are safe to call from the
/// main thread; parallelFor is additionally safe (and serial) from
/// within a worker.
class ThreadPool {
public:
  /// The singleton. First access reads ACE_THREADS for the default
  /// thread count; workers are not started until a parallelFor forks.
  static ThreadPool &instance();

  ~ThreadPool();

  /// The configured thread count (>= 1). 1 means every parallelFor runs
  /// inline on the calling thread.
  size_t numThreads() const;

  /// Reconfigures the pool to \p N threads (0 = re-read the ACE_THREADS
  /// default). Joins existing workers first. Calling it from inside a
  /// parallelFor task would have the pool join itself; that is detected
  /// and rejected with Status(InvalidArgument), leaving the configuration
  /// unchanged.
  Status setNumThreads(size_t N);

  /// Calls \p Fn(I) for every I in [Begin, End), potentially on worker
  /// threads. Blocks until all indices completed; rethrows the first
  /// exception any index threw.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Fn);

  /// True on a thread currently executing pool tasks (used to serialize
  /// nested parallelFor calls).
  static bool inWorker();

  /// RAII: while alive, every parallelFor on THIS thread runs inline,
  /// exactly as if it were nested inside a pool task. For callers that
  /// must not contend for the pool's fork lock while holding their own
  /// mutex: forking under an external lock inverts lock order against
  /// pool tasks that take the same lock (the inference service's
  /// per-session mutexes were the motivating deadlock). Results are
  /// unchanged - inline and forked execution are bit-identical.
  class InlineRegion {
  public:
    InlineRegion();
    ~InlineRegion();
    InlineRegion(const InlineRegion &) = delete;
    InlineRegion &operator=(const InlineRegion &) = delete;

  private:
    bool Prev;
  };

private:
  ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Convenience forwarding to ThreadPool::instance().parallelFor: the
/// spelling the runtime kernels use.
inline void parallelFor(size_t Begin, size_t End,
                        const std::function<void(size_t)> &Fn) {
  ThreadPool::instance().parallelFor(Begin, End, Fn);
}

} // namespace ace

#endif // ACE_SUPPORT_THREADPOOL_H
