//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/PipelineConfig.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ace;

namespace {

std::atomic<RescaleMode> ProcessRescale{RescaleMode::RM_Auto};
std::atomic<PackingStrategy> ProcessPacking{PackingStrategy::PS_Auto};

bool equalsIgnoreCase(const char *A, const char *B) {
  for (; *A && *B; ++A, ++B)
    if ((*A | 0x20) != (*B | 0x20))
      return false;
  return *A == *B;
}

void warnOnce(const char *Var, const char *Value, const char *Want) {
  static std::atomic<bool> Warned{false};
  if (Warned.exchange(true))
    return;
  std::fprintf(stderr, "ace: ignoring unknown %s='%s' (want %s)\n", Var,
               Value, Want);
}

} // namespace

const char *ace::rescaleModeName(RescaleMode Mode) {
  switch (Mode) {
  case RescaleMode::RM_Auto:
    return "auto";
  case RescaleMode::RM_Eager:
    return "eager";
  case RescaleMode::RM_Waterline:
    return "waterline";
  case RescaleMode::RM_Lazy:
    return "lazy";
  }
  return "auto";
}

const char *ace::packingStrategyName(PackingStrategy Strategy) {
  switch (Strategy) {
  case PackingStrategy::PS_Auto:
    return "auto";
  case PackingStrategy::PS_Diag:
    return "diag";
  case PackingStrategy::PS_Bsgs:
    return "bsgs";
  case PackingStrategy::PS_Column:
    return "column";
  }
  return "auto";
}

bool ace::parseRescaleMode(const char *Spec, RescaleMode &Out) {
  if (!Spec)
    return false;
  if (equalsIgnoreCase(Spec, "auto")) {
    Out = RescaleMode::RM_Auto;
  } else if (equalsIgnoreCase(Spec, "eager")) {
    Out = RescaleMode::RM_Eager;
  } else if (equalsIgnoreCase(Spec, "waterline") ||
             equalsIgnoreCase(Spec, "off") || equalsIgnoreCase(Spec, "0") ||
             equalsIgnoreCase(Spec, "false")) {
    Out = RescaleMode::RM_Waterline;
  } else if (equalsIgnoreCase(Spec, "lazy") ||
             equalsIgnoreCase(Spec, "on") || equalsIgnoreCase(Spec, "1") ||
             equalsIgnoreCase(Spec, "true")) {
    Out = RescaleMode::RM_Lazy;
  } else {
    return false;
  }
  return true;
}

bool ace::parsePackingStrategy(const char *Spec, PackingStrategy &Out) {
  if (!Spec)
    return false;
  if (equalsIgnoreCase(Spec, "auto")) {
    Out = PackingStrategy::PS_Auto;
  } else if (equalsIgnoreCase(Spec, "diag")) {
    Out = PackingStrategy::PS_Diag;
  } else if (equalsIgnoreCase(Spec, "bsgs")) {
    Out = PackingStrategy::PS_Bsgs;
  } else if (equalsIgnoreCase(Spec, "column")) {
    Out = PackingStrategy::PS_Column;
  } else {
    return false;
  }
  return true;
}

void ace::setProcessRescaleMode(RescaleMode Mode) {
  ProcessRescale.store(Mode, std::memory_order_relaxed);
}

void ace::setProcessPackingStrategy(PackingStrategy Strategy) {
  ProcessPacking.store(Strategy, std::memory_order_relaxed);
}

RescaleMode ace::processRescaleMode() {
  return ProcessRescale.load(std::memory_order_relaxed);
}

PackingStrategy ace::processPackingStrategy() {
  return ProcessPacking.load(std::memory_order_relaxed);
}

RescaleMode ace::resolveRescaleMode(RescaleMode Option) {
  if (Option != RescaleMode::RM_Auto)
    return Option;
  RescaleMode Process = processRescaleMode();
  if (Process != RescaleMode::RM_Auto)
    return Process;
  if (const char *Env = std::getenv("ACE_LAZY_RESCALE")) {
    RescaleMode Parsed;
    if (parseRescaleMode(Env, Parsed) && Parsed != RescaleMode::RM_Auto)
      return Parsed;
    if (*Env)
      warnOnce("ACE_LAZY_RESCALE", Env, "on|off|lazy|waterline|eager");
  }
  return RescaleMode::RM_Waterline;
}

PackingStrategy ace::resolvePackingStrategy(PackingStrategy Option) {
  if (Option != PackingStrategy::PS_Auto)
    return Option;
  PackingStrategy Process = processPackingStrategy();
  if (Process != PackingStrategy::PS_Auto)
    return Process;
  if (const char *Env = std::getenv("ACE_PACKING")) {
    PackingStrategy Parsed;
    if (parsePackingStrategy(Env, Parsed))
      return Parsed;
    if (*Env)
      warnOnce("ACE_PACKING", Env, "auto|diag|bsgs|column");
  }
  return PackingStrategy::PS_Auto;
}
