//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide telemetry with three faces (see docs/observability.md):
///
///  1. Structured tracing: RAII spans (TraceSpan for coarse compiler
///     passes and executor regions, FheOpSpan for hot runtime primitives)
///     recorded as Chrome trace-event JSON, openable in chrome://tracing
///     or Perfetto. Setting ACE_TRACE=<file> enables telemetry at process
///     start and writes the trace at exit; a programmatic TraceSink
///     receives every event as it completes.
///
///  2. FHE op counters: a fixed taxonomy of atomic counters (ct-ct mults,
///     ct-pt mults, rotations, rescales, relinearizations, bootstraps,
///     NTT invocations, key-switch digits, ...) with named snapshots so
///     each compile phase and each inference can report its op cost.
///
///  3. Ciphertext health: per-op aggregation of level (active primes),
///     scale (log2), and a noise-budget estimate (log2 of the remaining
///     active modulus minus log2 of the scale) - the quantities the
///     paper's parameter selection and rescale placement reason about.
///
/// Overhead contract: when telemetry is disabled (the default), every
/// hook site reduces to one branch on a cached atomic flag
/// (telemetry::enabled()); no clocks are read and no locks are taken on
/// the primitive path. bench_fhe_ops guards the disabled path.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_TELEMETRY_H
#define ACE_SUPPORT_TELEMETRY_H

#include "support/Histogram.h"
#include "support/Status.h"
#include "support/Timer.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ace {
namespace telemetry {

/// The FHE op-counter taxonomy. Counter slots are fixed so increments are
/// plain relaxed atomic adds with no lookup.
enum class Counter : unsigned {
  CtCtMul = 0,     ///< ciphertext-ciphertext products (before relin)
  CtPtMul,         ///< ciphertext-plaintext products (incl. scalar muls)
  Add,             ///< ciphertext additions/subtractions
  Rotate,          ///< slot rotations (one per key-switched automorphism)
  Conjugate,       ///< complex conjugations
  Relinearize,     ///< Cipher3 -> Cipher conversions
  Rescale,         ///< rescales (scale-dividing prime drops)
  ModSwitch,       ///< mod-switches (scale-preserving prime drops)
  KeySwitch,       ///< key-switch invocations
  KeySwitchDigit,  ///< per-chain-prime digits processed by key switches
  ModUp,           ///< digit decompositions lifted to the extended basis
  HoistedKeySwitch, ///< rotations served from a shared (hoisted) ModUp
  Bootstrap,       ///< full bootstrap invocations
  NttForward,      ///< forward negacyclic NTTs
  NttInverse,      ///< inverse negacyclic NTTs
  ParallelFor,     ///< forked parallelFor regions (see support/ThreadPool.h)
  BytesSerialized,   ///< wire-format bytes written (docs/serialization.md)
  BytesDeserialized, ///< wire-format bytes accepted by a successful load
  SvcAccepted,        ///< service requests admitted to the queue
  SvcRejected,        ///< service requests shed at admission (backpressure)
  SvcCompleted,       ///< service requests finished successfully
  SvcFailed,          ///< service requests failed (malformed, bad key, ...)
  SvcDeadlineExpired, ///< service requests abandoned on an expired deadline
  SvcCancelled,       ///< service requests abandoned by client cancellation
  CounterCount,
};

constexpr size_t kCounterCount = static_cast<size_t>(Counter::CounterCount);

/// Stable report/JSON name of \p C ("ct-ct-mul", "rotate", ...).
const char *counterName(Counter C);

/// Reverse lookup for the C API. Returns false on unknown names.
bool counterFromName(const std::string &Name, Counter &Out);

namespace detail {
/// The cached global enable flag. Do not touch directly; hook sites read
/// it through telemetry::enabled(), and Telemetry::setEnabled writes it.
extern std::atomic<bool> Enabled;
} // namespace detail

/// The one branch every disabled hook site pays.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// A point-in-time copy of every counter.
struct CounterSnapshot {
  std::array<uint64_t, kCounterCount> Values{};

  uint64_t get(Counter C) const {
    return Values[static_cast<size_t>(C)];
  }

  /// Element-wise this - earlier (counters are monotonic).
  CounterSnapshot deltaSince(const CounterSnapshot &Earlier) const {
    CounterSnapshot D;
    for (size_t I = 0; I < kCounterCount; ++I)
      D.Values[I] = Values[I] - Earlier.Values[I];
    return D;
  }
};

/// Per-request observation context (see docs/observability.md). While a
/// RequestScope is installed on a thread, every Telemetry::count() on
/// that thread also accumulates into OpDelta, every FheOpSpan folds its
/// noise budget into MinNoiseBudgetBits, and every TraceSpan appends its
/// (name, wall seconds) to Spans - giving the serving layer an exact
/// per-request op-cost and span breakdown without any global diffing.
///
/// Not thread-safe by design: one context belongs to the one thread
/// executing the request (nested kernels run inline on that thread at
/// the service's per-request fan-out; see docs/serving.md for the
/// attribution caveat when a lone request forks across workers).
struct RequestContext {
  /// Cap on captured spans; requests past it count but stop recording.
  static constexpr size_t kMaxSpans = 256;

  uint64_t TraceId = 0;
  /// Counter increments observed while this context was installed.
  std::array<uint64_t, kCounterCount> OpDelta{};
  double MinNoiseBudgetBits = std::numeric_limits<double>::infinity();
  bool SawHealth = false;
  /// (span name, wall seconds) of every TraceSpan closed in scope.
  std::vector<std::pair<std::string, double>> Spans;

  CounterSnapshot opSnapshot() const {
    CounterSnapshot S;
    S.Values = OpDelta;
    return S;
  }
};

namespace detail {
/// The thread's active request context (nullptr outside any request).
/// Only touched through RequestScope; read by the telemetry hooks.
extern thread_local RequestContext *CurrentRequest;
} // namespace detail

/// RAII installer for a RequestContext on the current thread. Nests:
/// the previous context is restored on destruction.
class RequestScope {
public:
  explicit RequestScope(RequestContext &Ctx) : Prev(detail::CurrentRequest) {
    detail::CurrentRequest = &Ctx;
  }
  ~RequestScope() { detail::CurrentRequest = Prev; }

  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

private:
  RequestContext *Prev;
};

/// One completed trace event. Phase 'X' = complete span (TsUs + DurUs),
/// 'C' = counter sample (CounterValue), 'i' = instant, 'b'/'e' = async
/// span begin/end (correlated by Id; the service emits one async span
/// per request so queue wait and execution render as one bar per
/// request in chrome://tracing).
struct TraceEvent {
  std::string Name;
  const char *Category = "";     ///< must point at a static string
  char Phase = 'X';
  double TsUs = 0.0;             ///< microseconds since the trace epoch
  double DurUs = 0.0;            ///< span duration ('X' only)
  uint32_t Tid = 0;
  /// Ciphertext-health args (negative level / NaN = absent).
  int Level = -1;
  double Log2Scale = std::numeric_limits<double>::quiet_NaN();
  double NoiseBudgetBits = std::numeric_limits<double>::quiet_NaN();
  /// Sample value for 'C' events (e.g. RSS bytes).
  double CounterValue = std::numeric_limits<double>::quiet_NaN();
  /// Correlation id: the async-span id for 'b'/'e' events, and the
  /// owning request's trace id (rendered as a "trace" arg) for 'X'
  /// events recorded inside a RequestScope. 0 = absent.
  uint64_t Id = 0;
};

/// Programmatic consumer of completed events (in addition to the
/// in-memory buffer). Callbacks run under the telemetry lock: keep them
/// short and do not call back into Telemetry.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void onEvent(const TraceEvent &E) = 0;
};

/// Aggregated health statistics for one op kind.
struct OpHealth {
  uint64_t Count = 0;
  int MinLevel = std::numeric_limits<int>::max();
  int MaxLevel = std::numeric_limits<int>::min();
  double MinNoiseBudgetBits = std::numeric_limits<double>::infinity();
  double LastLog2Scale = std::numeric_limits<double>::quiet_NaN();
};

/// The process-wide telemetry hub. Thread-safe throughout; counter
/// increments are lock-free.
class Telemetry {
public:
  static Telemetry &instance();

  /// Flips the cached global flag. Enabling mid-run is safe; spans opened
  /// while disabled stay silent.
  void setEnabled(bool On);
  bool isEnabled() const { return enabled(); }

  /// \name Counters
  /// @{
  void count(Counter C, uint64_t N = 1) {
    Counters[static_cast<size_t>(C)].fetch_add(N,
                                               std::memory_order_relaxed);
    // Per-request attribution. Hook sites only reach count() behind a
    // telemetry::enabled() check, so the disabled path never pays this.
    if (RequestContext *Ctx = detail::CurrentRequest)
      Ctx->OpDelta[static_cast<size_t>(C)] += N;
  }
  uint64_t counterValue(Counter C) const {
    return Counters[static_cast<size_t>(C)].load(
        std::memory_order_relaxed);
  }
  CounterSnapshot counters() const;
  /// Records a named snapshot of every counter (per-phase reporting: the
  /// report prints deltas between consecutive snapshots).
  void recordSnapshot(const std::string &Label);
  std::vector<std::pair<std::string, CounterSnapshot>> snapshots() const;
  /// @}

  /// \name Events
  /// @{
  /// Appends \p E to the buffer (bounded; overflow counts as dropped) and
  /// forwards it to the sink when one is set.
  void addEvent(TraceEvent E);
  /// Installs \p Sink (nullptr restores buffer-only operation).
  void setSink(TraceSink *Sink);
  size_t eventCount() const;
  size_t droppedEventCount() const;
  /// Copy of the buffered events, for tests and custom exporters.
  std::vector<TraceEvent> eventsCopy() const;
  /// @}

  /// \name Ciphertext health
  /// @{
  void recordHealth(Counter Op, int NumQ, double Log2Scale,
                    double NoiseBudgetBits);
  /// (op, stats) pairs for every op kind seen at least once.
  std::vector<std::pair<Counter, OpHealth>> health() const;
  /// @}

  /// \name Per-op latency
  /// Lock-free histogram of wall time per traced FHE primitive, fed by
  /// FheOpSpan and exported as ace_fhe_op_seconds{op=...} (see
  /// support/MetricsRegistry.h). One histogram per counter slot.
  /// @{
  Histogram &opLatency(Counter C) {
    return OpLatency[static_cast<size_t>(C)];
  }
  const Histogram &opLatency(Counter C) const {
    return OpLatency[static_cast<size_t>(C)];
  }
  /// @}

  /// \name Thread names
  /// Names the calling thread for the Chrome trace ('M' thread_name
  /// metadata events, synthesized at write time so naming works even
  /// before telemetry is enabled). Cheap: one mutex take per call;
  /// call once per thread at startup.
  /// @{
  void nameThread(const std::string &Name);
  /// (tid, name) pairs registered so far.
  std::vector<std::pair<uint32_t, std::string>> threadNames() const;
  /// @}

  /// \name Phase accumulation
  /// Wall seconds per span name, accumulated when spans close. This is
  /// what the Figure 5/6 benches read instead of bespoke TimingRegistry
  /// plumbing.
  /// @{
  void accumulatePhase(const std::string &Name, double Seconds);
  double phaseSeconds(const std::string &Name) const;
  std::vector<std::pair<std::string, double>> phaseEntries() const;
  /// @}

  /// \name Run metadata
  /// Small string key/value map describing the process configuration
  /// (e.g. the selected poly-ops kernel backend). Stamped into the
  /// Chrome trace's "otherData" block and exported as the
  /// ace_build_info Prometheus gauge so perf records are attributable
  /// to a kernel path (docs/kernels.md). Recorded even while telemetry
  /// is disabled - setters run once per selection, never on a hot path.
  /// @{
  void setMetadata(const std::string &Key, const std::string &Value);
  /// (key, value) pairs in insertion order.
  std::vector<std::pair<std::string, std::string>> metadata() const;
  /// @}

  /// \name Memory
  /// @{
  /// Appends a 'C' event sampling the process RSS (see MemTrack) under
  /// \p Label and folds it into the tracked peak.
  void sampleRss(const char *Label);
  size_t peakRssBytes() const {
    return PeakRss.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Output
  /// @{
  /// Writes the buffered events as Chrome trace-event JSON
  /// ({"traceEvents": [...]}; open in chrome://tracing or Perfetto).
  void writeChromeTrace(std::ostream &OS) const;
  Status writeChromeTraceFile(const std::string &Path) const;
  /// Human-readable (or JSON, when \p Json) summary of counters, health,
  /// phase times, snapshots, and memory.
  void writeReport(std::ostream &OS, bool Json) const;
  std::string reportString(bool Json) const;
  /// @}

  /// Drops all recorded data (events, snapshots, health, phases,
  /// counters, peak RSS). The enable flag is left untouched.
  void clear();

  /// Microseconds since the trace epoch (process telemetry start).
  double nowUs() const;

private:
  Telemetry();
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  std::array<std::atomic<uint64_t>, kCounterCount> Counters{};
  std::array<Histogram, kCounterCount> OpLatency{};
  std::atomic<size_t> PeakRss{0};

  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  size_t DroppedEvents = 0;
  std::vector<std::pair<std::string, CounterSnapshot>> Snapshots;
  std::array<OpHealth, kCounterCount> Health{};
  std::vector<std::pair<uint32_t, std::string>> ThreadNames;
  std::vector<std::pair<std::string, std::string>> Metadata;
  TimingRegistry Phases;
  TraceSink *Sink = nullptr;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span for coarse scopes (compiler passes, executor regions,
/// setup). Always measures wall time; when \p Also is non-null the
/// seconds are recorded there even with telemetry disabled, which is how
/// TimingRegistry remains a thin backward-compatible adapter over the
/// trace spans. Events and phase accumulation happen only when telemetry
/// was enabled at construction.
class TraceSpan {
public:
  TraceSpan(const char *Category, std::string Name,
            TimingRegistry *Also = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Category;
  std::string Name;
  TimingRegistry *Also;
  bool Emit;
  double StartUs = 0.0;
  WallTimer Clock;
};

/// RAII span for hot FHE primitives. Default construction is free; call
/// begin() only behind a telemetry::enabled() check:
///
///   FheOpSpan Span;
///   if (telemetry::enabled())
///     Span.begin(telemetry::Counter::CtCtMul, A.numQ(), A.Scale, Budget);
///
/// begin() bumps the op counter immediately; destruction emits the trace
/// event with health args and updates the per-op health aggregate.
class FheOpSpan {
public:
  FheOpSpan() = default;
  ~FheOpSpan();

  FheOpSpan(const FheOpSpan &) = delete;
  FheOpSpan &operator=(const FheOpSpan &) = delete;

  void begin(Counter Op, size_t NumQ, double Scale, double NoiseBudgetBits);

private:
  bool Active = false;
  Counter Op = Counter::CtCtMul;
  int NumQ = -1;
  double Log2Scale = std::numeric_limits<double>::quiet_NaN();
  double NoiseBudgetBits = std::numeric_limits<double>::quiet_NaN();
  double StartUs = 0.0;
};

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace telemetry
} // namespace ace

#endif // ACE_SUPPORT_TELEMETRY_H
