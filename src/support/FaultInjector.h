//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide fault-injection harness for robustness testing. The FHE
/// runtime consults the injector at well-defined hook points (ciphertext
/// construction, key lookup, checked-operation entry) and, when a fault is
/// armed, corrupts metadata or simulates a missing resource. Property
/// tests then assert that every injected fault surfaces as a clean
/// ace::Status error - never undefined behavior, never a silently wrong
/// result - including in release (-DNDEBUG) builds where asserts vanish.
///
/// Faults are armed programmatically (FaultInjector::instance().arm(...))
/// or from the ACE_FAULT_INJECT environment variable, a comma-separated
/// list of `kind[:count[:skip]]` specs, e.g.
///
///   ACE_FAULT_INJECT="scale-drift,drop-galois-key:2:1"
///
/// arms one scale drift plus two Galois-key drops starting at the second
/// key lookup. This layer is deliberately scheme-agnostic: it only counts
/// and answers "should this fault fire now?"; the FHE layer decides what
/// the fault concretely does.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_FAULTINJECTOR_H
#define ACE_SUPPORT_FAULTINJECTOR_H

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

namespace ace {

/// The injectable fault classes the runtime implements.
enum class FaultKind : unsigned {
  /// Drift a freshly produced ciphertext's scale metadata by ~5%.
  ScaleDrift = 0,
  /// Corrupt a freshly produced ciphertext's slot count.
  SlotCorrupt,
  /// Truncate the prime chain of one polynomial of a fresh ciphertext,
  /// leaving its components inconsistent.
  TruncateChain,
  /// Pretend the Galois/rotation key for a lookup is absent.
  DropGaloisKey,
  /// Pretend the relinearization key is absent.
  DropRelinKey,
  /// Simulate an allocation failure at a checked-operation entry.
  AllocFail,
  /// Truncate a wire-format payload while it is read from a stream
  /// (serializer load paths; see docs/serialization.md).
  ShortRead,
  /// Fail a wire-format write mid-stream (serializer save paths).
  ShortWrite,
  /// Flip bits in a wire-format checksum as it is written, so the next
  /// load of those bytes must fail CRC verification.
  ChecksumCorrupt,
  /// Pretend the memory budget is exhausted at a ResourceGovernor
  /// admission point, forcing the eviction/shed path without needing a
  /// real tight budget.
  BudgetExceeded,
  KindCount,
};

/// Stable spec name of \p Kind ("scale-drift", ...).
const char *faultKindName(FaultKind Kind);

/// Process-wide singleton; thread-safe. All counters are per-kind.
class FaultInjector {
public:
  /// The singleton. On first access, arms any faults requested via the
  /// ACE_FAULT_INJECT environment variable.
  static FaultInjector &instance();

  /// Arms \p Kind to fire \p Count times (-1 = unlimited), skipping the
  /// first \p SkipFirst hook hits.
  void arm(FaultKind Kind, int Count = 1, int SkipFirst = 0);

  /// Disarms \p Kind without clearing its fired counter.
  void disarm(FaultKind Kind);

  /// Disarms everything and zeroes all counters.
  void reset();

  /// Cheap global gate for hook sites: false when nothing is armed.
  bool enabled() const { return AnyArmed.load(std::memory_order_relaxed); }

  /// Consumes one firing of \p Kind: true when the hook site must inject
  /// the fault now. Honors skip counts and remaining-fire budgets.
  bool shouldFire(FaultKind Kind);

  /// Number of times \p Kind actually fired since the last reset().
  size_t firedCount(FaultKind Kind) const;

  /// Parses and arms a spec string (`kind[:count[:skip]]`, comma
  /// separated). Returns false (arming nothing further) on a malformed
  /// spec or unknown kind name.
  bool configure(const std::string &Spec);

private:
  FaultInjector();

  struct Slot {
    bool Armed = false;
    int Skip = 0;
    int Remaining = 0; // -1 = unlimited
    size_t Fired = 0;
  };

  void recomputeAnyArmed();

  mutable std::mutex Mutex;
  std::array<Slot, static_cast<size_t>(FaultKind::KindCount)> Slots;
  std::atomic<bool> AnyArmed{false};
};

} // namespace ace

#endif // ACE_SUPPORT_FAULTINJECTOR_H
