//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide memory governor (see docs/memory.md). Long-lived
/// consumers — the limb pool, per-session rotation-key caches, service
/// sessions — charge their resident bytes against a single optional hard
/// budget (ACE_MEMORY_BUDGET env, ServiceConfig::MemoryBudgetBytes,
/// ace_set_memory_budget). Admission points call admit() before growing;
/// when a charge would exceed the budget the governor first asks
/// registered reclaimers (key caches evict cold keys, the pool trims its
/// free lists) to give memory back, and only if that is not enough does
/// the caller get Status::resourceExhausted — degrading by shedding the
/// incoming unit of work, never by crashing in-flight work.
///
/// charge()/release() are pure accounting (never fail, release clamps at
/// zero); budget enforcement happens only at admit() call sites.
/// FaultKind::BudgetExceeded forces admit() down the reclaim/shed path
/// for testing without a real tight budget.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_RESOURCEGOVERNOR_H
#define ACE_SUPPORT_RESOURCEGOVERNOR_H

#include "support/Status.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace ace {

/// Accounting categories, each an independent gauge under the shared
/// budget.
enum class MemCategory : unsigned {
  LimbPool = 0, ///< limb-pool resident bytes (free lists + in use)
  EvalKeys,     ///< cached rotation/eval-key material
  Sessions,     ///< service session bookkeeping (executor graphs, frames)
  Other,
  CategoryCount,
};

/// Stable metric-label name of \p Category ("limb_pool", ...).
const char *memCategoryName(MemCategory Category);

/// Point-in-time governor statistics for metrics export.
struct GovernorStats {
  size_t BudgetBytes = 0; ///< 0 = unlimited
  size_t ChargedBytes[static_cast<size_t>(MemCategory::CategoryCount)] = {};
  uint64_t Sheds = 0;           ///< admissions refused after reclaim
  uint64_t ReclaimedBytes = 0;  ///< total bytes reclaimers gave back
  uint64_t KeyCacheHits = 0;    ///< aggregated across all key caches
  uint64_t KeyCacheMisses = 0;
  uint64_t KeyCacheEvictions = 0;
  size_t totalChargedBytes() const {
    size_t Total = 0;
    for (size_t C : ChargedBytes)
      Total += C;
    return Total;
  }
  /// Bytes left under the budget (SIZE_MAX when unlimited).
  size_t remainingBytes() const;
};

/// Process-wide singleton; thread-safe. Leaked at exit so charges
/// released during static teardown stay valid.
class ResourceGovernor {
public:
  /// The singleton. First access parses ACE_MEMORY_BUDGET (bytes, or
  /// with a k/m/g suffix; 0/unset = unlimited).
  static ResourceGovernor &instance();

  /// Sets the hard budget in bytes; 0 means unlimited. Takes effect at
  /// the next admit() — existing charges are never forcibly reclaimed.
  void setBudgetBytes(size_t Bytes);
  size_t budgetBytes() const {
    return Budget.load(std::memory_order_relaxed);
  }

  /// Records \p Bytes as resident under \p Category. Pure accounting:
  /// never fails, never blocks on reclaim.
  void charge(MemCategory Category, size_t Bytes);

  /// Returns \p Bytes previously charged under \p Category. Clamps at
  /// zero — a stray double-release can never drive a gauge negative.
  void release(MemCategory Category, size_t Bytes);

  /// Asks whether \p Bytes more may be charged. Under budget (or with no
  /// budget set): OK. Over budget: runs reclaimers in priority order
  /// until the charge fits, then rechecks; if still over, counts a shed
  /// and returns resourceExhausted naming \p What. Does NOT itself
  /// charge — the caller charges after acquiring the resource.
  /// FaultKind::BudgetExceeded forces the over-budget path once.
  Status admit(size_t Bytes, const std::string &What);

  /// Reclaimer callback: try to release up to WantBytes; return the
  /// bytes actually given back (the callee also calls release() for its
  /// category as usual).
  using ReclaimFn = std::function<size_t(size_t WantBytes)>;

  /// Registers a reclaimer; lower \p Priority runs first (key caches at
  /// 0, pool trim at 10). Returns an id for removeReclaimer. The
  /// callback may call charge/release; it must not call admit() or
  /// add/remove reclaimers (removeReclaimer from inside a callback
  /// self-deadlocks on the invoke lock).
  uint64_t addReclaimer(int Priority, std::string Name, ReclaimFn Fn);
  /// Unregisters \p Id and BLOCKS until every in-flight reclaim pass
  /// that may have snapshotted the callback has finished invoking it.
  /// On return the callback will never run again, so the caller can
  /// safely free any state it captured (this is what lets
  /// ~RotationKeyCache tear down while another thread is mid-admit()).
  void removeReclaimer(uint64_t Id);

  /// Aggregated key-cache telemetry: caches live in the fhe layer, the
  /// metrics exporter in support — caches push their counters here so
  /// the exporter needs no upward dependency.
  void noteKeyCacheHit() { CacheHits.fetch_add(1, std::memory_order_relaxed); }
  void noteKeyCacheMiss() {
    CacheMisses.fetch_add(1, std::memory_order_relaxed);
  }
  void noteKeyCacheEviction() {
    CacheEvictions.fetch_add(1, std::memory_order_relaxed);
  }

  GovernorStats stats() const;

  /// Zeroes shed/reclaim/key-cache counters (charges and the budget are
  /// live state and untouched). For tests and steady-state benches.
  void resetCounters();

private:
  ResourceGovernor();
  ResourceGovernor(const ResourceGovernor &) = delete;
  ResourceGovernor &operator=(const ResourceGovernor &) = delete;

  size_t totalCharged() const;
  /// Runs reclaimers until \p WantBytes have been given back or all are
  /// exhausted. Returns bytes reclaimed.
  size_t reclaim(size_t WantBytes);

  std::atomic<size_t> Budget{0};
  std::atomic<size_t> Charged[static_cast<size_t>(MemCategory::CategoryCount)];
  std::atomic<uint64_t> Sheds{0}, ReclaimedBytes{0};
  std::atomic<uint64_t> CacheHits{0}, CacheMisses{0}, CacheEvictions{0};

  struct Reclaimer {
    uint64_t Id;
    int Priority;
    std::string Name;
    ReclaimFn Fn;
  };
  mutable std::mutex ReclaimerMutex; ///< guards the list, not the calls
  /// Held shared across each reclaim pass (snapshot + callback calls),
  /// exclusively by removeReclaimer: removal synchronizes with in-flight
  /// invocations so a removed callback's state can be freed immediately.
  mutable std::shared_mutex InvokeMutex;
  std::vector<Reclaimer> Reclaimers; ///< kept sorted by Priority
  uint64_t NextReclaimerId = 1;
};

/// Parses a human-friendly byte size: a non-negative integer with an
/// optional k/K, m/M, or g/G suffix (binary multiples). Returns false on
/// malformed input. Exposed for ACE_MEMORY_BUDGET and flag parsing.
bool parseByteSize(const std::string &Text, size_t &OutBytes);

} // namespace ace

#endif // ACE_SUPPORT_RESOURCEGOVERNOR_H
