//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/MemTrack.h"

#include <cstdio>
#include <cstring>

using namespace ace;

const char *ace::memCategoryName(MemCategoryKind Kind) {
  switch (Kind) {
  case MemCategoryKind::MC_SecretKey:
    return "secret-key";
  case MemCategoryKind::MC_PublicKey:
    return "public-key";
  case MemCategoryKind::MC_RelinKey:
    return "relin-key";
  case MemCategoryKind::MC_RotationKeys:
    return "rotation-keys";
  case MemCategoryKind::MC_BootstrapKeys:
    return "bootstrap-keys";
  case MemCategoryKind::MC_Ciphertexts:
    return "ciphertexts";
  case MemCategoryKind::MC_Plaintexts:
    return "plaintexts";
  case MemCategoryKind::MC_Other:
    return "other";
  }
  return "unknown";
}

std::string ace::formatBytes(size_t Bytes) {
  const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  int Unit = 0;
  while (Value >= 1024.0 && Unit < 4) {
    Value /= 1024.0;
    ++Unit;
  }
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f %s", Value, Units[Unit]);
  return Buffer;
}

namespace {

/// Reads a "<Key>:  <kB> kB" line from /proc/self/status; 0 if absent.
size_t readProcStatusKb(const char *Key) {
#if defined(__linux__)
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  size_t KeyLen = std::strlen(Key);
  char Line[256];
  size_t Kb = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, Key, KeyLen) == 0 && Line[KeyLen] == ':') {
      unsigned long long Value = 0;
      if (std::sscanf(Line + KeyLen + 1, "%llu", &Value) == 1)
        Kb = static_cast<size_t>(Value);
      break;
    }
  }
  std::fclose(F);
  return Kb;
#else
  (void)Key;
  return 0;
#endif
}

} // namespace

size_t ace::currentRssBytes() { return readProcStatusKb("VmRSS") * 1024; }

size_t ace::peakRssBytes() { return readProcStatusKb("VmHWM") * 1024; }
