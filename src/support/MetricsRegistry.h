//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics export layer (see docs/observability.md): one registry
/// that renders every counter, gauge, and histogram the process knows
/// about in Prometheus text exposition format, so a scrape endpoint,
/// a node-exporter textfile collector, or a CI check can consume the
/// same numbers the in-process reports print.
///
/// Two sources feed the exposition:
///
///  1. Built-ins, always exported: the telemetry op counters
///     (`ace_ops_total{op="..."}`), trace buffer occupancy and drops,
///     peak RSS, and the per-FHE-op latency histograms
///     (`ace_fhe_op_seconds{op="..."}`).
///  2. Registered metrics: components (the inference service, benches,
///     user code) add gauges, counter callbacks, and Histogram pointers
///     with a name + help + optional label set, and remove them when the
///     owning object dies. Registration is cheap and does not touch any
///     hot path - the callbacks run at export time only.
///
/// Histograms are exported against a fixed, compact set of `le` bounds
/// (the internal log-linear resolution is much finer; export coarsens so
/// the exposition stays a few KB). ACE_METRICS=<file> enables telemetry
/// at process start and dumps the exposition to the file at exit -
/// the serving analogue of ACE_TRACE.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_METRICSREGISTRY_H
#define ACE_SUPPORT_METRICSREGISTRY_H

#include "support/Histogram.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace ace {
namespace metrics {

/// The export-time `le` bounds (seconds) histogram expositions use,
/// terminated by +Inf which is always emitted.
extern const double kExportBoundsSeconds[];
extern const size_t kExportBoundCount;

/// Process-wide registry. Thread-safe; export never blocks a record
/// path (histograms are snapshotted lock-free, callbacks are invoked
/// outside any recording code).
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  using GaugeFn = std::function<double()>;
  using CounterFn = std::function<uint64_t()>;

  /// \name Registration
  /// \p Name must be a valid Prometheus metric name (the same family
  /// may be registered many times with distinct \p Labels). \p Labels
  /// is the inner label list without braces (`stage="queue"`), empty
  /// for none. Returns an id for remove(). The callback / histogram
  /// must stay valid until removed.
  /// @{
  uint64_t addGauge(std::string Name, std::string Help, std::string Labels,
                    GaugeFn Fn);
  uint64_t addCounter(std::string Name, std::string Help,
                      std::string Labels, CounterFn Fn);
  uint64_t addHistogram(std::string Name, std::string Help,
                        std::string Labels, const Histogram *H);
  void remove(uint64_t Id);
  /// @}

  /// Renders the full exposition: built-ins plus every registered
  /// metric, families grouped under one # HELP / # TYPE header each.
  void writePrometheus(std::ostream &OS) const;
  std::string prometheusString() const;
  Status writePrometheusFile(const std::string &Path) const;

private:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  struct Impl;
  Impl *P; // leaked singleton state: exporters may run at exit
};

/// Writes one histogram exposition block (the `_bucket`/`_sum`/`_count`
/// series for one label set) - shared by the registry and any bespoke
/// exporter.
void writeHistogramSeries(std::ostream &OS, const std::string &Name,
                          const std::string &Labels,
                          const Histogram::Snapshot &S);

} // namespace metrics
} // namespace ace

#endif // ACE_SUPPORT_METRICSREGISTRY_H
