//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Cancellation.h"

#include <cstdio>

using namespace ace;

namespace {

/// The calling thread's installed token. A default-constructed token
/// (never cancels, never expires) when no CancellationScope is active, so
/// checkpoints outside any request context cost one thread-local read
/// plus two always-false branches.
thread_local CancellationToken CurrentToken;

} // namespace

Status CancellationToken::check(const char *What) const {
  if (cancelled())
    return Status::cancelled(std::string(What) +
                             ": request cancelled by caller");
  if (Limit.expired()) {
    double Over = -Limit.remainingSeconds();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", Over);
    return Status::deadlineExceeded(std::string(What) +
                                    ": request deadline exceeded by " +
                                    Buf + "s");
  }
  return Status::success();
}

CancellationScope::CancellationScope(CancellationToken Token)
    : Previous(CurrentToken) {
  CurrentToken = std::move(Token);
}

CancellationScope::~CancellationScope() { CurrentToken = Previous; }

const CancellationToken &CancellationScope::current() {
  return CurrentToken;
}

Status ace::checkCancellation(const char *What) {
  return CurrentToken.check(What);
}
