//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounds-checked little-endian decoder over an in-memory byte span, the
/// read half of the hardened wire format (docs/serialization.md). This is
/// the innermost layer of the attacker-facing deserializer, so its
/// contract is strict: every accessor checks the remaining byte count
/// before touching memory, a failed read consumes nothing, and no input -
/// truncated, oversized, or bit-flipped - can make it read out of bounds.
/// Accessors return false on underflow; the serializer state machine above
/// turns that into a descriptive Status naming the offset.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_BYTEREADER_H
#define ACE_SUPPORT_BYTEREADER_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ace {

/// Non-owning little-endian cursor. The span must outlive the reader.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return Size - Pos; }

  /// True when every byte has been consumed (trailing-byte detection).
  bool atEnd() const { return Pos == Size; }

  /// Current cursor position (for diagnostics).
  size_t offset() const { return Pos; }

  bool u8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = Data[Pos++];
    return true;
  }

  bool u16(uint16_t &V) {
    if (remaining() < 2)
      return false;
    V = static_cast<uint16_t>(Data[Pos]) |
        static_cast<uint16_t>(Data[Pos + 1]) << 8;
    Pos += 2;
    return true;
  }

  bool u32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return true;
  }

  bool u64(uint64_t &V) {
    if (remaining() < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return true;
  }

  bool i32(int32_t &V) {
    uint32_t U;
    if (!u32(U))
      return false;
    V = static_cast<int32_t>(U);
    return true;
  }

  bool i64(int64_t &V) {
    uint64_t U;
    if (!u64(U))
      return false;
    V = static_cast<int64_t>(U);
    return true;
  }

  bool f64(double &V) {
    uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }

  /// Copies \p Count bytes into \p Dst; fails (consuming nothing) when
  /// fewer remain.
  bool bytes(void *Dst, size_t Count) {
    if (remaining() < Count)
      return false;
    std::memcpy(Dst, Data + Pos, Count);
    Pos += Count;
    return true;
  }

  /// Advances past \p Count bytes without copying.
  bool skip(size_t Count) {
    if (remaining() < Count)
      return false;
    Pos += Count;
    return true;
  }

  /// Pointer to the unconsumed region (valid for remaining() bytes). Used
  /// to checksum a payload in place before parsing it.
  const uint8_t *cursor() const { return Data + Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace ace

#endif // ACE_SUPPORT_BYTEREADER_H
