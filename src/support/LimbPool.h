//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe free-list pool for RNS limb storage (see docs/memory.md).
/// Every evaluator operation builds and drops several RnsPoly values; at a
/// fixed parameter set their residue buffers come in a handful of exact
/// sizes (degree x component count), so a resident server that recycles
/// them stops hitting the heap allocator in steady state. Blocks are
/// binned by exact word count; a miss allocates from the heap and charges
/// the process ResourceGovernor (MemCategory::LimbPool), a release parks
/// the block on its bin for the next acquire.
///
/// The pool can be bypassed (every acquire goes straight to the heap) with
/// ACE_LIMB_POOL=off or LimbPool::setEnabled(false) - the differential
/// tests prove pooled and bypassed runs produce bit-identical ciphertexts.
/// Each block remembers its provenance, so flipping the switch with blocks
/// outstanding is safe: pooled blocks return to the pool, heap blocks to
/// the heap.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SUPPORT_LIMBPOOL_H
#define ACE_SUPPORT_LIMBPOOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ace {

/// Point-in-time pool statistics. Hits + Misses = total acquires; the
/// miss count doubles as the steady-state heap-allocation counter the
/// Figure 7 bench reports as allocations/op.
struct LimbPoolStats {
  uint64_t Hits = 0;      ///< acquires served from a free list
  uint64_t Misses = 0;    ///< acquires that hit the heap allocator
  uint64_t Trims = 0;     ///< blocks returned to the heap by trim()
  size_t FreeBytes = 0;   ///< bytes parked on free lists
  size_t InUseBytes = 0;  ///< bytes currently acquired by live storages
  /// Bytes the pool holds against the process (free + in use); what the
  /// governor sees charged under MemCategory::LimbPool while enabled.
  size_t residentBytes() const { return FreeBytes + InUseBytes; }
};

/// Process-wide singleton; thread-safe. Leaked at exit (like the metrics
/// registry) so storages destroyed during static teardown stay valid.
class LimbPool {
public:
  /// The singleton. First access resolves ACE_LIMB_POOL ("off"/"0"
  /// disables; anything else, including unset, enables).
  static LimbPool &instance();

  /// True when acquires are served from the free lists. Bypass mode
  /// (false) routes every acquire to the heap - the differential-testing
  /// switch.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Flips pool mode. Safe with blocks outstanding (each remembers its
  /// provenance). Disabling does not trim already-parked blocks; call
  /// trim() for that.
  void setEnabled(bool On);

  /// Returns a block of at least \p Words uint64 words, uninitialized.
  /// \p FromPool receives the provenance the caller must hand back to
  /// release(). Never returns nullptr (a true OOM aborts via new[]).
  uint64_t *acquire(size_t Words, bool &FromPool);

  /// Returns \p Ptr (of bin size \p Words, provenance \p FromPool) to the
  /// pool or the heap.
  void release(uint64_t *Ptr, size_t Words, bool FromPool);

  /// Frees parked free-list blocks until FreeBytes <= \p TargetFreeBytes
  /// (0 = free everything parked). Returns the bytes released back to the
  /// heap; in-use blocks are untouched.
  size_t trim(size_t TargetFreeBytes = 0);

  LimbPoolStats stats() const;

  /// Zeroes the hit/miss/trim counters (byte gauges reflect live state
  /// and are untouched). For benches that measure steady-state deltas.
  void resetCounters();

private:
  LimbPool();
  LimbPool(const LimbPool &) = delete;
  LimbPool &operator=(const LimbPool &) = delete;

  std::atomic<bool> Enabled{true};
  std::atomic<uint64_t> Hits{0}, Misses{0}, Trims{0};
  std::atomic<size_t> FreeBytes{0}, InUseBytes{0};

  mutable std::mutex Mutex;
  /// Exact-size bins: word count -> parked blocks.
  std::unordered_map<size_t, std::vector<uint64_t *>> Bins;
};

/// Owning handle for one limb buffer, the storage behind RnsPoly::Data.
/// Vector-like surface restricted to what RnsPoly needs: zero-fill
/// construction, copy/move, and size-only shrinking (dropLastQ /
/// dropSpecial keep the block and its bin capacity). Destruction returns
/// the block to the pool.
class LimbStorage {
public:
  LimbStorage() = default;

  LimbStorage(const LimbStorage &O) { copyFrom(O); }
  LimbStorage &operator=(const LimbStorage &O) {
    if (this != &O)
      copyFrom(O);
    return *this;
  }

  LimbStorage(LimbStorage &&O) noexcept
      : Ptr(O.Ptr), Size(O.Size), Cap(O.Cap), FromPool(O.FromPool) {
    O.Ptr = nullptr;
    O.Size = O.Cap = 0;
  }
  LimbStorage &operator=(LimbStorage &&O) noexcept {
    if (this != &O) {
      reset();
      Ptr = O.Ptr;
      Size = O.Size;
      Cap = O.Cap;
      FromPool = O.FromPool;
      O.Ptr = nullptr;
      O.Size = O.Cap = 0;
    }
    return *this;
  }

  ~LimbStorage() { reset(); }

  uint64_t *data() { return Ptr; }
  const uint64_t *data() const { return Ptr; }
  size_t size() const { return Size; }

  /// vector::assign(Words, 0): reuses the block when its bin capacity
  /// suffices, otherwise swaps it for one that does.
  void assignZero(size_t Words);

  /// Size-only shrink; the block keeps its acquired bin capacity and is
  /// released under it.
  void shrinkTo(size_t Words);

  /// Releases the block now (empty storage).
  void reset();

private:
  void copyFrom(const LimbStorage &O);

  uint64_t *Ptr = nullptr;
  size_t Size = 0;
  size_t Cap = 0;
  bool FromPool = false;
};

} // namespace ace

#endif // ACE_SUPPORT_LIMBPOOL_H
