//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SIHE -> CKKS lowering (paper Sec. 4.4), the automation core:
///
///  - Rescale placement: lazily after multiplications, delayed through
///    addition trees (EVA-style waterline; paper Table 2).
///  - Relinearization insertion after ciphertext-ciphertext products.
///  - Level inference with modswitch insertion for operand alignment.
///  - Minimal-level bootstrap placement before every ReLU region: each
///    refresh targets exactly the depth the downstream program needs.
///  - Rotation-key analysis: the precise set of rotation steps used.
///  - Automatic security parameter selection: the modulus chain follows
///    from the measured depth, N = max(N_security, N_simd) (Table 10).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_PASSES_SIHETOCKKS_H
#define ACE_PASSES_SIHETOCKKS_H

#include "air/Pass.h"

namespace ace {
namespace passes {

class SiheToCkksPass : public air::Pass {
public:
  const char *name() const override { return "sihe-to-ckks"; }
  const char *phase() const override { return "CKKS"; }
  Status run(air::IrFunction &F, air::CompileState &State) override;
};

} // namespace passes
} // namespace ace

#endif // ACE_PASSES_SIHETOCKKS_H
