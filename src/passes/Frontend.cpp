//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "passes/Frontend.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::passes;
using namespace ace::air;
using onnx::Graph;
using onnx::Node;
using onnx::OpKind;

StatusOr<Graph> ace::passes::foldBatchNorm(const Graph &G) {
  Graph Out = G;
  // Map each value name to the index of its producing Conv (if any).
  std::map<std::string, size_t> ConvByOutput;
  for (size_t I = 0; I < Out.Nodes.size(); ++I)
    if (Out.Nodes[I].Kind == OpKind::OK_Conv)
      ConvByOutput[Out.Nodes[I].Outputs[0]] = I;

  std::vector<Node> Kept;
  for (const Node &N : Out.Nodes) {
    if (N.Kind != OpKind::OK_BatchNormalization) {
      Kept.push_back(N);
      continue;
    }
    auto It = ConvByOutput.find(N.Inputs[0]);
    if (It == ConvByOutput.end())
      return Status::error("batch_norm '" + N.Name +
                           "' does not follow a convolution");
    // Locate the conv inside Kept (it was already copied).
    Node *Conv = nullptr;
    for (auto &K : Kept)
      if (K.Kind == OpKind::OK_Conv && K.Outputs[0] == N.Inputs[0])
        Conv = &K;
    if (!Conv)
      return Status::error("batch_norm '" + N.Name +
                           "': producing conv already consumed");

    onnx::TensorData &W = Out.Initializers.at(Conv->Inputs[1]);
    const auto &Scale = Out.Initializers.at(N.Inputs[1]);
    const auto &Bias = Out.Initializers.at(N.Inputs[2]);
    const auto &Mean = Out.Initializers.at(N.Inputs[3]);
    const auto &Var = Out.Initializers.at(N.Inputs[4]);
    float Eps = N.floatAttr("epsilon", 1e-5f);

    int64_t CO = W.Shape[0];
    int64_t PerChannel = W.elementCount() / CO;
    // Ensure the conv has a bias to fold into.
    std::string BiasName;
    if (Conv->Inputs.size() > 2) {
      BiasName = Conv->Inputs[2];
    } else {
      BiasName = Conv->Outputs[0] + ".folded_bias";
      onnx::TensorData B;
      B.Shape = {CO};
      B.Values.assign(CO, 0.0f);
      Out.Initializers.emplace(BiasName, std::move(B));
      Conv->Inputs.push_back(BiasName);
    }
    onnx::TensorData &B = Out.Initializers.at(BiasName);

    for (int64_t Co = 0; Co < CO; ++Co) {
      float Inv = 1.0f / std::sqrt(Var.Values[Co] + Eps);
      float A = Scale.Values[Co] * Inv;
      for (int64_t I = 0; I < PerChannel; ++I)
        W.Values[Co * PerChannel + I] *= A;
      B.Values[Co] = A * (B.Values[Co] - Mean.Values[Co]) + Bias.Values[Co];
    }
    // The BN's output aliases the conv's output.
    Conv->Outputs[0] = N.Outputs[0];
    ConvByOutput[N.Outputs[0]] = It->second;
  }
  Out.Nodes = std::move(Kept);
  return Out;
}

/// Resolves per-value normalization scales so that both operands of every
/// Add (residual join) and each structural op share one scale; convs and
/// gemms absorb scale ratios into their weights, so only these tying
/// constraints matter.
static std::map<std::string, double>
resolveScales(const Graph &G, const std::map<std::string, double> &Bounds) {
  std::map<std::string, double> S;
  auto Get = [&](const std::string &Name) {
    auto It = S.find(Name);
    if (It != S.end())
      return It->second;
    auto B = Bounds.find(Name);
    double V = B != Bounds.end() ? std::fmax(B->second, 1e-6) : 1.0;
    S[Name] = V;
    return V;
  };
  bool Changed = true;
  int Guard = 0;
  while (Changed && Guard++ < 64) {
    Changed = false;
    auto Tie = [&](const std::string &A, const std::string &B) {
      double M = std::fmax(Get(A), Get(B));
      if (S[A] != M || S[B] != M) {
        S[A] = S[B] = M;
        Changed = true;
      }
    };
    for (const Node &N : G.Nodes) {
      switch (N.Kind) {
      case OpKind::OK_Add:
        Tie(N.Inputs[0], N.Outputs[0]);
        Tie(N.Inputs[1], N.Outputs[0]);
        break;
      case OpKind::OK_Relu:
      case OpKind::OK_AveragePool:
      case OpKind::OK_GlobalAveragePool:
      case OpKind::OK_Flatten:
      case OpKind::OK_Reshape:
      case OpKind::OK_StridedSlice:
        // Structure-preserving ops keep the scale of their input.
        Tie(N.Inputs[0], N.Outputs[0]);
        break;
      default:
        break;
      }
    }
  }
  return S;
}

Status ace::passes::importModel(const onnx::Model &Model,
                                const std::vector<nn::Tensor> &Calibration,
                                IrFunction &F, CompileState &State) {
  // 1. BN folding (NN-level operator fusion).
  auto Folded = foldBatchNorm(Model.MainGraph);
  if (!Folded.ok())
    return Folded.status();
  const Graph &G = *Folded;

  if (G.Inputs.size() != 1 || G.Outputs.size() != 1)
    return Status::error("expected exactly one graph input and output");

  // 2. Shape inference.
  auto Shapes = nn::inferShapes(G);
  if (!Shapes.ok())
    return Shapes.status();
  State.Shapes = Shapes.take();

  // 3. Calibration: max |activation| per value over sample inputs.
  for (const nn::Tensor &Sample : Calibration) {
    auto Bounds = nn::activationBounds(G, Sample);
    if (!Bounds.ok())
      return Bounds.status();
    for (const auto &[Name, B] : *Bounds) {
      auto [It, Inserted] = State.Bounds.emplace(Name, B);
      if (!Inserted)
        It->second = std::fmax(It->second, B);
    }
  }
  // Calibration headroom: activations on unseen inputs exceed the
  // calibrated maximum slightly; 25% slack keeps values inside the
  // approximation ranges.
  for (auto &[Name, B] : State.Bounds)
    B *= 1.25;
  auto Resolved = resolveScales(G, State.Bounds);
  State.Bounds = Resolved;

  // 4. Build NN IR mirroring the graph (paper Listing 1 style).
  std::map<std::string, IrNode *> Values;
  IrNode *Input = F.addInput(G.Inputs[0].Name, TypeKind::TK_Cipher);
  Values[G.Inputs[0].Name] = Input;

  auto Weight = [&](const std::string &Name) -> IrNode * {
    const onnx::TensorData &T = G.Initializers.at(Name);
    IrNode *C = F.create(NodeKind::NK_ConstVec, TypeKind::TK_Vector);
    C->Name = Name;
    C->Data.assign(T.Values.begin(), T.Values.end());
    C->Ints = T.Shape;
    return C;
  };

  for (const Node &N : G.Nodes) {
    IrNode *Out = nullptr;
    auto In = [&](size_t I) { return Values.at(N.Inputs[I]); };
    switch (N.Kind) {
    case OpKind::OK_Conv: {
      auto Strides = N.intsAttr("strides");
      auto Pads = N.intsAttr("pads");
      Out = F.create(NodeKind::NK_NnConv, TypeKind::TK_Tensor,
                     {In(0), Weight(N.Inputs[1]),
                      N.Inputs.size() > 2 ? Weight(N.Inputs[2]) : nullptr},
                     OriginKind::OR_Conv);
      if (!Out->Operands[2])
        Out->Operands.pop_back();
      Out->Ints = {Strides.size() > 0 ? Strides[0] : 1,
                   Strides.size() > 1 ? Strides[1] : 1,
                   Pads.size() > 0 ? Pads[0] : 0,
                   Pads.size() > 1 ? Pads[1] : 0};
      break;
    }
    case OpKind::OK_Gemm:
      Out = F.create(NodeKind::NK_NnGemm, TypeKind::TK_Tensor,
                     {In(0), Weight(N.Inputs[1]),
                      N.Inputs.size() > 2 ? Weight(N.Inputs[2]) : nullptr},
                     OriginKind::OR_Gemm);
      if (!Out->Operands[2])
        Out->Operands.pop_back();
      break;
    case OpKind::OK_Relu:
      Out = F.create(NodeKind::NK_NnRelu, TypeKind::TK_Tensor, {In(0)},
                     OriginKind::OR_Relu);
      break;
    case OpKind::OK_Add:
      Out = F.create(NodeKind::NK_NnAdd, TypeKind::TK_Tensor,
                     {In(0), In(1)}, OriginKind::OR_Add);
      break;
    case OpKind::OK_AveragePool: {
      auto Kernel = N.intsAttr("kernel_shape");
      auto Strides = N.intsAttr("strides");
      Out = F.create(NodeKind::NK_NnAvgPool, TypeKind::TK_Tensor, {In(0)},
                     OriginKind::OR_Pool);
      Out->Ints = {Kernel[0], Kernel[1],
                   Strides.size() > 0 ? Strides[0] : Kernel[0],
                   Strides.size() > 1 ? Strides[1] : Kernel[1]};
      break;
    }
    case OpKind::OK_GlobalAveragePool:
      Out = F.create(NodeKind::NK_NnGlobalAvgPool, TypeKind::TK_Tensor,
                     {In(0)}, OriginKind::OR_Pool);
      break;
    case OpKind::OK_Flatten:
      Out = F.create(NodeKind::NK_NnFlatten, TypeKind::TK_Tensor, {In(0)});
      break;
    case OpKind::OK_Reshape:
      Out = F.create(NodeKind::NK_NnReshape, TypeKind::TK_Tensor, {In(0)});
      break;
    case OpKind::OK_StridedSlice:
      Out = F.create(NodeKind::NK_NnStridedSlice, TypeKind::TK_Tensor,
                     {In(0)});
      Out->Ints = {N.intAttr("start", 0),
                   N.intAttr("size", 1),
                   N.intAttr("stride", 1)};
      break;
    case OpKind::OK_BatchNormalization:
      return Status::error("batch_norm survived folding");
    }
    // Record the conv geometry the VECTOR lowering needs.
    if (N.Kind == OpKind::OK_Conv || N.Kind == OpKind::OK_Gemm) {
      const auto &InShape = State.Shapes.at(N.Inputs[0]);
      for (int64_t D : InShape)
        Out->Ints.push_back(D);
    }
    Out->Name = N.Outputs[0];
    Values[N.Outputs[0]] = Out;
  }

  auto It = Values.find(G.Outputs[0].Name);
  if (It == Values.end())
    return Status::error("graph output '" + G.Outputs[0].Name +
                         "' never produced");
  F.setReturn(It->second);
  return Status::success();
}
