//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VECTOR -> SIHE lowering (paper Sec. 4.3): ciphertext operations are
/// recognized by type inference from the encrypted inputs, cleartext
/// operands gain SIHE.encode wrappers (paper Listing 3), and ReLU is
/// approximated by the composite odd-polynomial sign method of paper
/// reference [36]: relu(x) = 0.5 x (1 + sign(x)) with
/// sign ~ f o f o ... o f, f(t) = (35t - 35t^3 + 21t^5 - 5t^7)/16.
/// Activation normalization guarantees |x| <= 1 entering every ReLU, so
/// the approximation needs no per-site range management.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_PASSES_VECTORTOSIHE_H
#define ACE_PASSES_VECTORTOSIHE_H

#include "air/Pass.h"

namespace ace {
namespace passes {

class VectorToSihePass : public air::Pass {
public:
  const char *name() const override { return "vector-to-sihe"; }
  const char *phase() const override { return "SIHE"; }
  Status run(air::IrFunction &F, air::CompileState &State) override;
};

/// Multiplicative depth of one composite-sign ReLU with \p Iterations
/// f-compositions (used by parameter selection).
int reluDepth(int Iterations);

} // namespace passes
} // namespace ace

#endif // ACE_PASSES_VECTORTOSIHE_H
