//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "passes/VectorToSihe.h"

#include <cassert>

using namespace ace;
using namespace ace::passes;
using namespace ace::air;

int ace::passes::reluDepth(int Iterations) {
  // Each f-composition: t2 (1), t3 (2), t5 (3), t7 (4), plus the scalar
  // multiplications on each power (one more level under the waterline
  // policy): 5 levels. Input amplification: 1. Final 0.5*x*(1+p): 2.
  return 5 * Iterations + 3;
}

namespace {

struct SiheBuilder {
  IrFunction &Out;

  IrNode *mul(IrNode *A, IrNode *B, OriginKind O) {
    return Out.create(NodeKind::NK_SiheMul, TypeKind::TK_Cipher, {A, B}, O);
  }
  IrNode *add(IrNode *A, IrNode *B, OriginKind O) {
    return Out.create(NodeKind::NK_SiheAdd, TypeKind::TK_Cipher, {A, B}, O);
  }
  IrNode *sub(IrNode *A, IrNode *B, OriginKind O) {
    return Out.create(NodeKind::NK_SiheSub, TypeKind::TK_Cipher, {A, B}, O);
  }
  IrNode *mulConst(IrNode *A, double C, OriginKind O) {
    IrNode *N = Out.create(NodeKind::NK_SiheMulConst, TypeKind::TK_Cipher,
                           {A}, O);
    N->Scalar = C;
    return N;
  }
  IrNode *addConst(IrNode *A, double C, OriginKind O) {
    IrNode *N = Out.create(NodeKind::NK_SiheAddConst, TypeKind::TK_Cipher,
                           {A}, O);
    N->Scalar = C;
    return N;
  }
};

/// Expands relu(x) = 0.5 x (1 + p(x)) with p the composite sign
/// approximation. The first multiplication is tagged RefreshBefore so the
/// CKKS lowering bootstraps x right before the ReLU (paper Sec. 4.4).
IrNode *expandRelu(SiheBuilder &B, IrNode *X, int Iterations) {
  const OriginKind O = OriginKind::OR_Relu;
  // Amplify the sign input: typical activations sit well below the
  // calibrated layer maximum, where the composite converges slowly
  // (f multiplies small arguments by only ~2.19 per iteration). A 1.4x
  // pre-scale stays inside f's stability region |t| <= ~1.6 (the
  // calibration headroom bounds |x| <= 1) while pulling small values
  // toward the converged plateau one iteration sooner.
  IrNode *T = B.mulConst(X, 1.4, O);
  T->RefreshBefore = true;
  bool First = false;
  for (int Iter = 0; Iter < Iterations; ++Iter) {
    // f(t) = (35 t - 35 t^3 + 21 t^5 - 5 t^7) / 16, evaluated on odd
    // powers: t2, t3, t5, t7.
    IrNode *T2 = B.mul(T, T, O);
    if (First) {
      T2->RefreshBefore = true;
      First = false;
    }
    IrNode *T3 = B.mul(T2, T, O);
    IrNode *T5 = B.mul(T2, T3, O);
    IrNode *T7 = B.mul(T2, T5, O);
    IrNode *Acc = B.mulConst(T, 35.0 / 16.0, O);
    Acc = B.sub(Acc, B.mulConst(T3, 35.0 / 16.0, O), O);
    Acc = B.add(Acc, B.mulConst(T5, 21.0 / 16.0, O), O);
    Acc = B.sub(Acc, B.mulConst(T7, 5.0 / 16.0, O), O);
    T = Acc;
  }
  // 0.5 * x * (1 + p).
  IrNode *OnePlus = B.addConst(T, 1.0, O);
  IrNode *Prod = B.mul(X, OnePlus, O);
  return B.mulConst(Prod, 0.5, O);
}

} // namespace

Status VectorToSihePass::run(IrFunction &F, CompileState &State) {
  IrFunction NewF(F.name());
  SiheBuilder B{NewF};
  std::map<const IrNode *, IrNode *> Map;
  std::map<int, CipherLayout> NewLayouts;
  std::map<int, double> NewScales;

  IrNode *Result = nullptr;
  for (const auto &NPtr : F.nodes()) {
    const IrNode *N = NPtr.get();
    IrNode *Lowered = nullptr;
    switch (N->Kind) {
    case NodeKind::NK_Input:
      Lowered = NewF.addInput(N->Name, TypeKind::TK_Cipher);
      break;
    case NodeKind::NK_ConstVec: {
      // Cleartext data feeding a homomorphic op: wrap in SIHE.encode
      // (paper Listing 3); the constant itself stays a VECTOR value.
      IrNode *C = NewF.create(NodeKind::NK_ConstVec, TypeKind::TK_Vector,
                              {}, N->Origin);
      C->Data = N->Data;
      C->Name = N->Name;
      Lowered = NewF.create(NodeKind::NK_SiheEncode, TypeKind::TK_Plain,
                            {C}, N->Origin);
      break;
    }
    case NodeKind::NK_VecRoll: {
      Lowered = NewF.create(NodeKind::NK_SiheRotate, TypeKind::TK_Cipher,
                            {Map.at(N->Operands[0])}, N->Origin);
      Lowered->Ints = N->Ints;
      break;
    }
    case NodeKind::NK_VecMul: {
      IrNode *A = Map.at(N->Operands[0]);
      IrNode *C = Map.at(N->Operands[1]);
      assert(A->Type == TypeKind::TK_Cipher &&
             "type inference: first mul operand must be encrypted");
      Lowered = B.mul(A, C, N->Origin);
      break;
    }
    case NodeKind::NK_VecAdd: {
      IrNode *A = Map.at(N->Operands[0]);
      IrNode *C = Map.at(N->Operands[1]);
      Lowered = B.add(A, C, N->Origin);
      break;
    }
    case NodeKind::NK_VecMatDiag: {
      // Baby-step/giant-step expansion of the diagonal matvec
      // (Halevi-Shoup with the BSGS split): diagonal d = I*BS + J becomes
      //   rot(x, d*S) = rot(rot(x, J*S), I*BS*S)
      // so each giant group I accumulates mask-weighted baby rotations and
      // pays one giant rotation. The masks are pre-rotated by the giant
      // amount at compile time: mask o rot(z, g) == rot(prerot(mask) o z, g)
      // with prerot(m)[t] = m[(t - g) mod Slots]. All baby rotations share
      // the operand ciphertext, so the executor serves them from a single
      // hoisted digit decomposition, and the rotation-key working set is
      // (BS - 1) babies + one key per giant group: O(sqrt(Capacity))
      // instead of one key per diagonal.
      IrNode *X = Map.at(N->Operands[0]);
      const IrNode *MasksNode = N->Operands[1];
      const OriginKind O = N->Origin;
      int64_t Stride = N->Ints[0];
      int64_t Capacity = N->Ints[1];
      size_t NumDiags = static_cast<size_t>(N->Ints[2]);
      assert(NumDiags > 0 && MasksNode->Data.size() % NumDiags == 0 &&
             "malformed mat_diag masks");
      size_t Slots = MasksNode->Data.size() / NumDiags;
      int64_t SlotsI = static_cast<int64_t>(Slots);

      int64_t BS = 1;
      while (BS * BS < Capacity)
        BS <<= 1;

      // Giant index -> (diagonal, mask row) members.
      std::map<int64_t, std::vector<std::pair<int64_t, size_t>>> Giants;
      for (size_t Row = 0; Row < NumDiags; ++Row) {
        int64_t D = N->Ints[3 + Row];
        Giants[D / BS].emplace_back(D, Row);
      }

      // Emit each distinct baby rotation of X once, up front.
      std::map<int64_t, IrNode *> Babies;
      Babies[0] = X;
      for (const auto &G : Giants)
        for (const auto &Member : G.second) {
          int64_t Steps = ((Member.first % BS) * Stride) % SlotsI;
          if (Babies.count(Steps))
            continue;
          IrNode *R = NewF.create(NodeKind::NK_SiheRotate,
                                  TypeKind::TK_Cipher, {X}, O);
          R->Ints = {Steps};
          Babies[Steps] = R;
        }

      IrNode *Acc = nullptr;
      for (const auto &G : Giants) {
        size_t GSteps =
            static_cast<size_t>(((G.first * BS) * Stride) % SlotsI);
        IrNode *Inner = nullptr;
        for (const auto &Member : G.second) {
          std::vector<double> PreRot(Slots);
          const double *Row = MasksNode->Data.data() + Member.second * Slots;
          for (size_t T = 0; T < Slots; ++T)
            PreRot[T] = Row[(T + Slots - GSteps) % Slots];
          IrNode *C = NewF.create(NodeKind::NK_ConstVec, TypeKind::TK_Vector,
                                  {}, O);
          C->Data = std::move(PreRot);
          IrNode *P = NewF.create(NodeKind::NK_SiheEncode,
                                  TypeKind::TK_Plain, {C}, O);
          int64_t BabySteps = ((Member.first % BS) * Stride) % SlotsI;
          IrNode *Term = B.mul(Babies.at(BabySteps), P, O);
          Inner = Inner ? B.add(Inner, Term, O) : Term;
        }
        if (GSteps != 0) {
          IrNode *R = NewF.create(NodeKind::NK_SiheRotate,
                                  TypeKind::TK_Cipher, {Inner}, O);
          R->Ints = {static_cast<int64_t>(GSteps)};
          Inner = R;
        }
        Acc = Acc ? B.add(Acc, Inner, O) : Inner;
      }
      Lowered = Acc;
      break;
    }
    case NodeKind::NK_VecRelu:
      Lowered = expandRelu(B, Map.at(N->Operands[0]),
                           State.Options.ReluSignIterations);
      break;
    case NodeKind::NK_Return:
      Result = Map.at(N->Operands[0]);
      continue;
    default:
      return Status::error(
          std::string("unexpected node in VECTOR lowering: ") +
          nodeKindName(N->Kind));
    }
    Map[N] = Lowered;
    // Propagate layout/scale bookkeeping to the new ids.
    auto LayIt = State.Layouts.find(N->Id);
    if (LayIt != State.Layouts.end())
      NewLayouts[Lowered->Id] = LayIt->second;
    auto ScIt = State.DataScales.find(N->Id);
    if (ScIt != State.DataScales.end())
      NewScales[Lowered->Id] = ScIt->second;
  }
  if (!Result)
    return Status::error("VECTOR function has no return value");
  NewF.setReturn(Result);
  NewF.renumber();

  State.Layouts = std::move(NewLayouts);
  State.DataScales = std::move(NewScales);
  F = std::move(NewF);
  return Status::success();
}
