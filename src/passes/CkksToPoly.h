//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CKKS -> POLY lowering (paper Sec. 4.5): every CKKS operation expands
/// into RNS loops over hw_* polynomial primitives (paper Table 7), with
/// two POLY-level optimizations:
///
///  - operator fusion: multiply-then-accumulate pairs become
///    hw_modmuladd, and decomp+mod_up become one fused traversal
///    (the ACEfhe decomp_modup API of Sec. 4.5);
///  - RNS-loop fusion: adjacent loops with identical compile-time trip
///    counts merge, eliminating intermediate polynomial buffers (the
///    paper's 10 MB -> 512 KB example).
///
/// The POLY program drives code-generation statistics and the fusion
/// ablation; execution happens at the CKKS level against the runtime
/// (whose kernels implement exactly these hw_* loops).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_PASSES_CKKSTOPOLY_H
#define ACE_PASSES_CKKSTOPOLY_H

#include "air/Pass.h"

namespace ace {
namespace passes {

/// Operation counts of a POLY program.
struct PolyStats {
  size_t RnsLoops = 0;
  size_t HwModMul = 0;
  size_t HwModAdd = 0;
  size_t HwModMulAdd = 0;
  size_t HwNtt = 0;
  size_t HwIntt = 0;
  size_t Decomp = 0;
  size_t ModUp = 0;
  size_t ModDown = 0;
  size_t FusedDecompModUp = 0;

  size_t totalHwOps() const {
    return HwModMul + HwModAdd + HwModMulAdd + HwNtt + HwIntt;
  }
};

/// Lowers a CKKS-dialect function into the POLY-dialect function \p Out.
/// With \p EnableFusion the two fusion optimizations apply. \p Stats
/// (optional) receives the op counts.
Status lowerToPoly(const air::IrFunction &F, const air::CompileState &State,
                   bool EnableFusion, air::IrFunction &Out,
                   PolyStats *Stats = nullptr);

} // namespace passes
} // namespace ace

#endif // ACE_PASSES_CKKSTOPOLY_H
