//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontend (paper Sec. 3.1): imports an ONNX-equivalent model into the
/// NN IR. Performs shape inference, BatchNormalization folding into the
/// preceding convolution (an NN-level operator fusion, paper Table 2),
/// activation-bound calibration on synthetic samples, and the global
/// scale resolution that lets residual additions meet at equal
/// normalization scales.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_PASSES_FRONTEND_H
#define ACE_PASSES_FRONTEND_H

#include "air/Pass.h"
#include "nn/Executor.h"
#include "onnx/Model.h"

namespace ace {
namespace passes {

/// Folds every BatchNormalization into the preceding Conv's weights and
/// bias (requires the conv to feed the BN directly). Returns the folded
/// graph.
StatusOr<onnx::Graph> foldBatchNorm(const onnx::Graph &G);

/// Imports \p Model into \p F as NN IR and fills shapes, calibrated
/// bounds, and resolved normalization scales in \p State.
Status importModel(const onnx::Model &Model,
                   const std::vector<nn::Tensor> &CalibrationInputs,
                   air::IrFunction &F, air::CompileState &State);

} // namespace passes
} // namespace ace

#endif // ACE_PASSES_FRONTEND_H
