//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "passes/NnToVector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

using namespace ace;
using namespace ace::passes;
using namespace ace::air;

namespace {

size_t nextPow2(size_t X) {
  size_t P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

/// Builder state for the rewritten function.
struct Lowering {
  IrFunction &Out;
  CompileState &State;
  /// Old NN node -> new VECTOR node.
  std::map<const IrNode *, IrNode *> Map;
  /// Layout and normalization scale per new node.
  std::map<const IrNode *, CipherLayout> Layouts;
  std::map<const IrNode *, double> Scales;

  IrNode *constVec(std::vector<double> Mask, OriginKind Origin) {
    IrNode *C = Out.create(NodeKind::NK_ConstVec, TypeKind::TK_Vector, {},
                           Origin);
    C->Data = std::move(Mask);
    return C;
  }

  IrNode *roll(IrNode *X, int64_t Steps, OriginKind Origin) {
    if (Steps == 0)
      return X;
    IrNode *R = Out.create(NodeKind::NK_VecRoll, TypeKind::TK_Cipher, {X},
                           Origin);
    R->Ints = {Steps};
    return R;
  }

  IrNode *mulMask(IrNode *X, std::vector<double> Mask, OriginKind Origin) {
    return Out.create(NodeKind::NK_VecMul, TypeKind::TK_Cipher,
                      {X, constVec(std::move(Mask), Origin)}, Origin);
  }

  IrNode *addMask(IrNode *X, std::vector<double> Mask, OriginKind Origin) {
    return Out.create(NodeKind::NK_VecAdd, TypeKind::TK_Cipher,
                      {X, constVec(std::move(Mask), Origin)}, Origin);
  }

  IrNode *add(IrNode *A, IrNode *B, OriginKind Origin) {
    return Out.create(NodeKind::NK_VecAdd, TypeKind::TK_Cipher, {A, B},
                      Origin);
  }
};

/// True when any mask entry is nonzero.
bool anyNonZero(const std::vector<double> &Mask) {
  for (double V : Mask)
    if (V != 0.0)
      return true;
  return false;
}

/// Lowers a convolution: for every channel shift d and kernel tap
/// (ky, kx), one rotation of the input times a weight mask, accumulated.
IrNode *lowerConv(Lowering &L, const IrNode *N) {
  IrNode *X = L.Map.at(N->Operands[0]);
  const IrNode *W = N->Operands[1];
  const IrNode *B = N->Operands.size() > 2 ? N->Operands[2] : nullptr;
  const CipherLayout In = L.Layouts.at(X);

  int64_t SH = N->Ints[0], SW = N->Ints[1], PT = N->Ints[2], PL = N->Ints[3];
  int64_t CI = N->Ints[5], H = N->Ints[6], WW = N->Ints[7];
  int64_t CO = W->Ints[0], KH = W->Ints[2], KW = W->Ints[3];
  assert(W->Ints[1] == CI && "conv weight channel mismatch");
  assert(In.C == static_cast<size_t>(CI) && In.H == static_cast<size_t>(H) &&
         In.W == static_cast<size_t>(WW) && "layout does not match conv");

  CipherLayout OutL = In.afterStride(SH);
  OutL.C = CO;
  OutL.H = (H + 2 * PT - KH) / SH + 1;
  OutL.W = (WW + 2 * PL - KW) / SW + 1;

  double SIn = L.Scales.at(X);
  double SOut = std::fmax(L.State.Bounds.count(N->Name)
                              ? L.State.Bounds.at(N->Name)
                              : SIn,
                          1e-6);
  double Ratio = SIn / SOut;
  size_t Slots = In.slotCount();
  int64_t CS = static_cast<int64_t>(In.channelStride());

  IrNode *Acc = nullptr;
  for (int64_t D = 0; D < static_cast<int64_t>(In.C0); ++D) {
    for (int64_t Ky = 0; Ky < KH; ++Ky) {
      for (int64_t Kx = 0; Kx < KW; ++Kx) {
        std::vector<double> Mask(Slots, 0.0);
        for (int64_t Co = 0; Co < CO; ++Co) {
          int64_t Ci = (Co + D) % static_cast<int64_t>(In.C0);
          if (Ci >= CI)
            continue;
          double WVal =
              W->Data[((Co * CI + Ci) * KH + Ky) * KW + Kx] * Ratio;
          if (WVal == 0.0)
            continue;
          for (size_t Oh = 0; Oh < OutL.H; ++Oh) {
            int64_t Ih = static_cast<int64_t>(Oh) * SH + Ky - PT;
            if (Ih < 0 || Ih >= H)
              continue;
            for (size_t Ow = 0; Ow < OutL.W; ++Ow) {
              int64_t Iw = static_cast<int64_t>(Ow) * SW + Kx - PL;
              if (Iw < 0 || Iw >= WW)
                continue;
              Mask[OutL.slotOf(Co, Oh, Ow)] = WVal;
            }
          }
        }
        if (!anyNonZero(Mask))
          continue;
        // Rotation bringing input slot (ci, ih, iw) onto output slot
        // (co, oh, ow); constant across positions (see Layout docs).
        int64_t Steps =
            D * CS +
            (Ky - PT) * static_cast<int64_t>(In.StrideH * In.W0) +
            (Kx - PL) * static_cast<int64_t>(In.StrideW);
        Steps = ((Steps % static_cast<int64_t>(Slots)) +
                 static_cast<int64_t>(Slots)) %
                static_cast<int64_t>(Slots);
        IrNode *Term = L.mulMask(L.roll(X, Steps, OriginKind::OR_Conv),
                                 std::move(Mask), OriginKind::OR_Conv);
        Acc = Acc ? L.add(Acc, Term, OriginKind::OR_Conv) : Term;
      }
    }
  }
  assert(Acc && "convolution lowered to nothing");

  if (B) {
    std::vector<double> Bias(Slots, 0.0);
    for (int64_t Co = 0; Co < CO; ++Co) {
      double BVal = B->Data[Co] / SOut;
      for (size_t Oh = 0; Oh < OutL.H; ++Oh)
        for (size_t Ow = 0; Ow < OutL.W; ++Ow)
          Bias[OutL.slotOf(Co, Oh, Ow)] = BVal;
    }
    Acc = L.addMask(Acc, std::move(Bias), OriginKind::OR_Conv);
  }

  L.Layouts[Acc] = OutL;
  L.Scales[Acc] = SOut;
  return Acc;
}

/// Everything the gemm cost model and the three lowerings consume.
struct GemmShape {
  int64_t K = 0, C = 0;
  int64_t Stride = 1;   ///< slot distance between consecutive elements
  int64_t Capacity = 1; ///< elements a full rotation cycles through
  size_t Slots = 0;
  bool ChannelMode = false;
  std::vector<int64_t> DiagIndices; ///< nonzero weight diagonals
};

/// Modeled op footprint of one packing candidate (docs/compiler.md).
struct PackingCost {
  bool Eligible = true;
  double Cost = 0.0;
  size_t Rotations = 0, CtPtMuls = 0, RotationKeys = 0, RescaleDepth = 1;
};

/// Relative runtime weights: a hoisted rotation shares one decompose /
/// ModUp with its group, a plaintext multiply is cheap next to any key
/// switch, an extra rescale level costs modulus-chain headroom, and each
/// distinct rotation step costs rotation-key cache footprint.
constexpr double WHoistedRot = 0.6;
constexpr double WSeqRot = 1.0;
constexpr double WCtPtMul = 0.25;
constexpr double WDepthLevel = 2.0;
constexpr double WRotKey = 0.15;

size_t log2Of(size_t X) {
  size_t L = 0;
  while ((size_t(1) << L) < X)
    ++L;
  return L;
}

/// Explicit Halevi-Shoup chain: one hoistable rotation + one mask
/// multiply per nonzero diagonal, one key per distinct nonzero step.
PackingCost costOfDiag(const GemmShape &S) {
  PackingCost P;
  size_t ND = S.DiagIndices.size();
  size_t ND0 = ND - (std::count(S.DiagIndices.begin(), S.DiagIndices.end(),
                                int64_t(0))
                         ? 1
                         : 0);
  P.Rotations = ND0;
  P.CtPtMuls = ND;
  P.RotationKeys = ND0;
  P.RescaleDepth = 1;
  P.Cost = WHoistedRot * ND0 + WCtPtMul * ND + WRotKey * ND0;
  return P;
}

/// Baby-step/giant-step mat_diag: hoisted babies, sequential giants,
/// O(sqrt n) keys.
PackingCost costOfBsgs(const GemmShape &S) {
  size_t BS = 1;
  while (BS * BS < static_cast<size_t>(S.Capacity))
    BS <<= 1;
  std::set<int64_t> Babies, Giants;
  for (int64_t D : S.DiagIndices) {
    if (D % static_cast<int64_t>(BS))
      Babies.insert(D % static_cast<int64_t>(BS));
    if (D / static_cast<int64_t>(BS))
      Giants.insert(D / static_cast<int64_t>(BS));
  }
  PackingCost P;
  P.Rotations = Babies.size() + Giants.size();
  P.CtPtMuls = S.DiagIndices.size();
  P.RotationKeys = Babies.size() + Giants.size();
  P.RescaleDepth = 1;
  P.Cost = WHoistedRot * Babies.size() + WSeqRot * Giants.size() +
           WCtPtMul * P.CtPtMuls + WRotKey * P.RotationKeys;
  return P;
}

/// Column packing: replicate the input across nextPow2(K) blocks of
/// nextPow2(C) elements, one wide weight multiply, rotate-and-add block
/// reduction, then a mandatory base-slot select. The doubling rotations
/// are sequentially dependent, and the extra multiply costs a level.
PackingCost costOfColumn(const GemmShape &S) {
  PackingCost P;
  size_t Kp = nextPow2(S.K), Cp = nextPow2(S.C);
  size_t BlockB = Cp * static_cast<size_t>(S.Stride);
  P.Eligible = !S.ChannelMode && Kp * BlockB <= S.Slots;
  size_t R = log2Of(Kp) + log2Of(Cp);
  P.Rotations = R;
  P.CtPtMuls = 2;
  P.RotationKeys = R;
  P.RescaleDepth = 2;
  P.Cost = WSeqRot * R + WCtPtMul * P.CtPtMuls +
           WDepthLevel * (P.RescaleDepth - 1) + WRotKey * R;
  return P;
}

/// Fills one weight diagonal at the layout stride.
std::vector<double> diagMask(const GemmShape &S, const IrNode *W,
                             double Ratio, int64_t D) {
  std::vector<double> Diag(S.Slots, 0.0);
  for (int64_t Ko = 0; Ko < S.K; ++Ko) {
    int64_t Ci = (Ko + D) % S.Capacity;
    if (Ci >= S.C)
      continue;
    double V = W->Data[Ko * S.C + Ci] * Ratio;
    if (V != 0.0)
      Diag[Ko * S.Stride] = V;
  }
  return Diag;
}

/// Single mat_diag node; the SIHE lowering expands it into the BSGS
/// rotation plan whose baby rotations are hoisted at runtime.
IrNode *lowerGemmBsgs(Lowering &L, IrNode *X, const IrNode *W,
                      const GemmShape &S, double Ratio) {
  std::vector<double> StackedMasks;
  for (int64_t D : S.DiagIndices) {
    std::vector<double> Diag = diagMask(S, W, Ratio, D);
    StackedMasks.insert(StackedMasks.end(), Diag.begin(), Diag.end());
  }
  IrNode *Masks = L.constVec(std::move(StackedMasks), OriginKind::OR_Gemm);
  IrNode *Acc = L.Out.create(NodeKind::NK_VecMatDiag, TypeKind::TK_Cipher,
                             {X, Masks}, OriginKind::OR_Gemm);
  Acc->Ints = {S.Stride, S.Capacity,
               static_cast<int64_t>(S.DiagIndices.size())};
  Acc->Ints.insert(Acc->Ints.end(), S.DiagIndices.begin(),
                   S.DiagIndices.end());
  return Acc;
}

/// Explicit roll/mask/add chain, one term per nonzero diagonal. All
/// rotations read the same operand, so the runtime hoists them into one
/// shared-ModUp group.
IrNode *lowerGemmDiag(Lowering &L, IrNode *X, const IrNode *W,
                      const GemmShape &S, double Ratio) {
  IrNode *Acc = nullptr;
  int64_t Slots = static_cast<int64_t>(S.Slots);
  for (int64_t D : S.DiagIndices) {
    IrNode *R = L.roll(X, (D * S.Stride) % Slots, OriginKind::OR_Gemm);
    IrNode *Term =
        L.mulMask(R, diagMask(S, W, Ratio, D), OriginKind::OR_Gemm);
    Acc = Acc ? L.add(Acc, Term, OriginKind::OR_Gemm) : Term;
  }
  return Acc;
}

/// Column packing. The final select multiply is mandatory: the doubling
/// reduction leaves wrapped partial sums in every non-base slot, and
/// unmasked garbage would blow past the calibrated activation bounds
/// that keep the ReLU approximation and bootstrap stable.
IrNode *lowerGemmColumn(Lowering &L, IrNode *X, const IrNode *W,
                        const GemmShape &S, double Ratio,
                        int64_t &OutStride) {
  size_t Kp = nextPow2(S.K), Cp = nextPow2(S.C);
  int64_t BlockB = static_cast<int64_t>(Cp) * S.Stride;
  int64_t Slots = static_cast<int64_t>(S.Slots);
  OutStride = BlockB;

  IrNode *Rep = X;
  for (size_t T = 1; T < Kp; T <<= 1)
    Rep = L.add(Rep,
                L.roll(Rep, Slots - BlockB * static_cast<int64_t>(T),
                       OriginKind::OR_Gemm),
                OriginKind::OR_Gemm);

  std::vector<double> WMask(S.Slots, 0.0);
  for (int64_t Ko = 0; Ko < S.K; ++Ko)
    for (int64_t Ci = 0; Ci < S.C; ++Ci)
      WMask[Ko * BlockB + Ci * S.Stride] = W->Data[Ko * S.C + Ci] * Ratio;
  IrNode *Prod = L.mulMask(Rep, std::move(WMask), OriginKind::OR_Gemm);

  for (size_t T = 1; T < Cp; T <<= 1)
    Prod = L.add(Prod,
                 L.roll(Prod, S.Stride * static_cast<int64_t>(T),
                        OriginKind::OR_Gemm),
                 OriginKind::OR_Gemm);

  std::vector<double> Sel(S.Slots, 0.0);
  for (int64_t Ko = 0; Ko < S.K; ++Ko)
    Sel[Ko * BlockB] = 1.0;
  return L.mulMask(Prod, std::move(Sel), OriginKind::OR_Gemm);
}

/// Lowers GEMM over the element stride of the current layout (paper
/// Listing 2), choosing diagonal vs BSGS mat_diag vs column packing per
/// layer via the cost model above (or the forced ACE_PACKING strategy).
IrNode *lowerGemm(Lowering &L, const IrNode *N) {
  IrNode *X = L.Map.at(N->Operands[0]);
  const IrNode *W = N->Operands[1];
  const IrNode *B = N->Operands.size() > 2 ? N->Operands[2] : nullptr;
  const CipherLayout In = L.Layouts.at(X);

  GemmShape S;
  S.K = W->Ints[0];
  S.C = W->Ints[1];
  // Elements live either at channel bases (after pooling) or strided
  // along W (pure vector models; column packing widens the stride).
  S.ChannelMode = In.C0 > 1;
  S.Stride = S.ChannelMode ? static_cast<int64_t>(In.channelStride())
                           : static_cast<int64_t>(In.StrideW);
  S.Capacity = S.ChannelMode
                   ? static_cast<int64_t>(In.C0)
                   : static_cast<int64_t>(In.W0 / In.StrideW);
  S.Slots = In.slotCount();
  assert(S.C <= S.Capacity && S.K <= S.Capacity &&
         "gemm exceeds layout capacity");

  double SIn = L.Scales.at(X);
  double SOut = std::fmax(L.State.Bounds.count(N->Name)
                              ? L.State.Bounds.at(N->Name)
                              : SIn,
                          1e-6);
  double Ratio = SIn / SOut;

  for (int64_t D = 0; D < S.Capacity; ++D) {
    bool Any = false;
    for (int64_t Ko = 0; Ko < S.K && !Any; ++Ko) {
      int64_t Ci = (Ko + D) % S.Capacity;
      Any = Ci < S.C && W->Data[Ko * S.C + Ci] * Ratio != 0.0;
    }
    if (Any)
      S.DiagIndices.push_back(D);
  }
  assert(!S.DiagIndices.empty() && "gemm lowered to nothing");

  // Cost-model decision (or the forced strategy, with recorded fallback
  // when column is ineligible for this layer's layout).
  PackingCost CDiag = costOfDiag(S);
  PackingCost CBsgs = costOfBsgs(S);
  PackingCost CColumn = costOfColumn(S);
  PackingDecision Dec;
  Dec.Layer = N->Name.empty() ? "gemm" : N->Name;
  Dec.CostDiag = CDiag.Cost;
  Dec.CostBsgs = CBsgs.Cost;
  Dec.CostColumn = CColumn.Eligible ? CColumn.Cost : -1.0;
  PackingStrategy Choice = L.State.ResolvedPacking;
  if (Choice == PackingStrategy::PS_Auto) {
    Choice = PackingStrategy::PS_Bsgs;
    double Best = CBsgs.Cost;
    if (CDiag.Cost < Best) {
      Choice = PackingStrategy::PS_Diag;
      Best = CDiag.Cost;
    }
    if (CColumn.Eligible && CColumn.Cost < Best)
      Choice = PackingStrategy::PS_Column;
  } else {
    Dec.Forced = true;
    if (Choice == PackingStrategy::PS_Column && !CColumn.Eligible) {
      Choice = PackingStrategy::PS_Bsgs;
      Dec.Fallback = true;
    }
  }
  Dec.Strategy = Choice;
  const PackingCost &Chosen = Choice == PackingStrategy::PS_Diag ? CDiag
                              : Choice == PackingStrategy::PS_Column
                                  ? CColumn
                                  : CBsgs;
  Dec.Rotations = Chosen.Rotations;
  Dec.CtPtMuls = Chosen.CtPtMuls;
  Dec.RotationKeys = Chosen.RotationKeys;
  Dec.RescaleDepth = Chosen.RescaleDepth;
  L.State.PackingDecisions.push_back(Dec);

  int64_t OutStride = S.Stride;
  IrNode *Acc = nullptr;
  switch (Choice) {
  case PackingStrategy::PS_Diag:
    Acc = lowerGemmDiag(L, X, W, S, Ratio);
    break;
  case PackingStrategy::PS_Column:
    Acc = lowerGemmColumn(L, X, W, S, Ratio, OutStride);
    break;
  default:
    Acc = lowerGemmBsgs(L, X, W, S, Ratio);
    break;
  }

  if (B) {
    std::vector<double> Bias(S.Slots, 0.0);
    for (int64_t Ko = 0; Ko < S.K; ++Ko)
      Bias[Ko * OutStride] = B->Data[Ko] / SOut;
    Acc = L.addMask(Acc, std::move(Bias), OriginKind::OR_Gemm);
  }

  CipherLayout OutL = In;
  OutL.C = S.ChannelMode ? S.K : 1;
  if (!S.ChannelMode) {
    OutL.W = S.K;
    OutL.StrideW = static_cast<size_t>(OutStride);
  }
  L.Layouts[Acc] = OutL;
  L.Scales[Acc] = SOut;
  return Acc;
}

/// Sum over the spatial extent by rotation doubling; result lands at
/// (h, w) = (0, 0) of every channel.
IrNode *lowerGlobalAvgPool(Lowering &L, const IrNode *N) {
  IrNode *X = L.Map.at(N->Operands[0]);
  CipherLayout In = L.Layouts.at(X);
  assert((In.H & (In.H - 1)) == 0 && (In.W & (In.W - 1)) == 0 &&
         "global pooling requires power-of-two spatial dims");

  IrNode *Acc = X;
  for (size_t Step = 1; Step < In.H; Step <<= 1)
    Acc = L.add(Acc,
                L.roll(Acc, static_cast<int64_t>(Step * In.StrideH * In.W0),
                       OriginKind::OR_Pool),
                OriginKind::OR_Pool);
  for (size_t Step = 1; Step < In.W; Step <<= 1)
    Acc = L.add(Acc,
                L.roll(Acc, static_cast<int64_t>(Step * In.StrideW),
                       OriginKind::OR_Pool),
                OriginKind::OR_Pool);

  // Mask channel bases with the 1/(H*W) average factor.
  double SIn = L.Scales.at(X);
  std::vector<double> Mask(In.slotCount(), 0.0);
  for (size_t Cc = 0; Cc < In.C; ++Cc)
    Mask[Cc * In.channelStride()] = 1.0 / static_cast<double>(In.H * In.W);
  Acc = L.mulMask(Acc, std::move(Mask), OriginKind::OR_Pool);

  CipherLayout OutL = In;
  OutL.H = OutL.W = 1;
  L.Layouts[Acc] = OutL;
  L.Scales[Acc] = SIn;
  return Acc;
}

/// 2x2 stride-2 average pool: neighbor sum + mask; the layout dilates.
IrNode *lowerAvgPool(Lowering &L, const IrNode *N) {
  IrNode *X = L.Map.at(N->Operands[0]);
  CipherLayout In = L.Layouts.at(X);
  int64_t KH = N->Ints[0], KW = N->Ints[1], SH = N->Ints[2], SW = N->Ints[3];
  assert(KH == 2 && KW == 2 && SH == 2 && SW == 2 &&
         "only 2x2 stride-2 average pooling is lowered");

  IrNode *Acc = X;
  Acc = L.add(Acc, L.roll(X, static_cast<int64_t>(In.StrideW),
                          OriginKind::OR_Pool),
              OriginKind::OR_Pool);
  IrNode *RowBelow = L.roll(X, static_cast<int64_t>(In.StrideH * In.W0),
                            OriginKind::OR_Pool);
  IrNode *RowBelowRight =
      L.roll(X, static_cast<int64_t>(In.StrideH * In.W0 + In.StrideW),
             OriginKind::OR_Pool);
  Acc = L.add(Acc, L.add(RowBelow, RowBelowRight, OriginKind::OR_Pool),
              OriginKind::OR_Pool);

  CipherLayout OutL = In.afterStride(2);
  std::vector<double> Mask(In.slotCount(), 0.0);
  for (size_t Cc = 0; Cc < OutL.C; ++Cc)
    for (size_t Oh = 0; Oh < OutL.H; ++Oh)
      for (size_t Ow = 0; Ow < OutL.W; ++Ow)
        Mask[OutL.slotOf(Cc, Oh, Ow)] = 0.25;
  Acc = L.mulMask(Acc, std::move(Mask), OriginKind::OR_Pool);

  L.Layouts[Acc] = OutL;
  L.Scales[Acc] = L.Scales.at(X);
  return Acc;
}

} // namespace

Status NnToVectorPass::run(IrFunction &F, CompileState &State) {
  // Resolve the packing knob here (not in the driver) so the pass behaves
  // identically when driven standalone by tests. PS_Auto survives
  // resolution and means the per-layer cost model chooses.
  State.ResolvedPacking = resolvePackingStrategy(State.Options.Packing);
  State.PackingDecisions.clear();

  // Layout selection: one padded grid covering every tensor in the model.
  size_t MaxC = 1, MaxH = 1, MaxW = 1, MaxFlat = 1;
  bool Spatial = false;
  for (const auto &[Name, Shape] : State.Shapes) {
    if (Shape.size() == 4) {
      Spatial = true;
      MaxC = std::max<size_t>(MaxC, Shape[1]);
      MaxH = std::max<size_t>(MaxH, Shape[2]);
      MaxW = std::max<size_t>(MaxW, Shape[3]);
    } else if (Shape.size() == 2) {
      MaxFlat = std::max<size_t>(MaxFlat, Shape[1]);
    }
  }
  CipherLayout Grid;
  if (Spatial) {
    // Flat values (pooled features, logits) live at channel bases, so the
    // channel capacity must cover them too.
    Grid.C0 = nextPow2(std::max(MaxC, MaxFlat));
    Grid.H0 = nextPow2(MaxH);
    Grid.W0 = nextPow2(MaxW);
  } else {
    Grid.C0 = Grid.H0 = 1;
    Grid.W0 = nextPow2(std::max(MaxW, MaxFlat));
    if (State.ResolvedPacking == PackingStrategy::PS_Column) {
      // Forced column packing replicates the input across nextPow2(K)
      // blocks of nextPow2(C) slots; grow the grid to fit the widest
      // gemm, capped so the ring stays reasonable. Layers the grown grid
      // still cannot hold fall back to BSGS (recorded per decision); the
      // auto cost model never grows the grid.
      constexpr size_t MaxColumnSlots = 4096;
      size_t NeedW = Grid.W0;
      for (const auto &NPtr : F.nodes())
        if (NPtr->Kind == NodeKind::NK_NnGemm) {
          const IrNode *W = NPtr->Operands[1];
          NeedW = std::max(NeedW,
                           nextPow2(static_cast<size_t>(W->Ints[0])) *
                               nextPow2(static_cast<size_t>(W->Ints[1])));
        }
      Grid.W0 = std::max(Grid.W0, std::min(NeedW, MaxColumnSlots));
    }
  }

  // Rebuild the function in the VECTOR dialect.
  IrFunction NewF(F.name());
  Lowering L{NewF, State, {}, {}, {}};

  const IrNode *OldReturn = F.returnValue();
  IrNode *Result = nullptr;
  for (const auto &NPtr : F.nodes()) {
    const IrNode *N = NPtr.get();
    switch (N->Kind) {
    case NodeKind::NK_Input: {
      IrNode *In = NewF.addInput(N->Name, TypeKind::TK_Cipher);
      const auto &Shape = State.Shapes.at(N->Name);
      CipherLayout Lay = Grid;
      if (Shape.size() == 4) {
        Lay.C = Shape[1];
        Lay.H = Shape[2];
        Lay.W = Shape[3];
      } else {
        Lay.C = Lay.H = 1;
        Lay.W = Shape.back();
      }
      L.Map[N] = In;
      L.Layouts[In] = Lay;
      L.Scales[In] = std::fmax(
          State.Bounds.count(N->Name) ? State.Bounds.at(N->Name) : 1.0,
          1e-6);
      State.InputLayout = Lay;
      State.InputDataScale = L.Scales[In];
      break;
    }
    case NodeKind::NK_ConstVec:
      break; // weights are consumed eagerly by their users
    case NodeKind::NK_NnConv:
      L.Map[N] = lowerConv(L, N);
      break;
    case NodeKind::NK_NnGemm:
      L.Map[N] = lowerGemm(L, N);
      break;
    case NodeKind::NK_NnRelu: {
      IrNode *X = L.Map.at(N->Operands[0]);
      IrNode *R = NewF.create(NodeKind::NK_VecRelu, TypeKind::TK_Cipher,
                              {X}, OriginKind::OR_Relu);
      R->RefreshBefore = true;
      L.Map[N] = R;
      L.Layouts[R] = L.Layouts.at(X);
      L.Scales[R] = L.Scales.at(X);
      break;
    }
    case NodeKind::NK_NnAdd: {
      IrNode *A = L.Map.at(N->Operands[0]);
      IrNode *B = L.Map.at(N->Operands[1]);
      assert(L.Layouts.at(A).sameGrid(L.Layouts.at(B)) &&
             "residual operands with mismatched layouts");
      assert(std::fabs(L.Scales.at(A) - L.Scales.at(B)) <
                 1e-9 * L.Scales.at(A) &&
             "scale resolution failed to equalize residual operands");
      IrNode *S = L.add(A, B, OriginKind::OR_Add);
      L.Map[N] = S;
      L.Layouts[S] = L.Layouts.at(A);
      // The resolved output scale equals the operand scale by
      // construction, but the sum can exceed it transiently; the
      // calibration headroom covers this.
      L.Scales[S] = std::fmax(
          State.Bounds.count(N->Name) ? State.Bounds.at(N->Name)
                                      : L.Scales.at(A),
          L.Scales.at(A));
      break;
    }
    case NodeKind::NK_NnAvgPool:
      L.Map[N] = lowerAvgPool(L, N);
      break;
    case NodeKind::NK_NnGlobalAvgPool:
      L.Map[N] = lowerGlobalAvgPool(L, N);
      break;
    case NodeKind::NK_NnFlatten:
    case NodeKind::NK_NnReshape: {
      // Pure bookkeeping on the packed layout.
      IrNode *X = L.Map.at(N->Operands[0]);
      L.Map[N] = X;
      break;
    }
    case NodeKind::NK_NnStridedSlice: {
      // Slots are already strided; a masked select suffices.
      IrNode *X = L.Map.at(N->Operands[0]);
      const CipherLayout In = L.Layouts.at(X);
      int64_t Start = N->Ints[0], Size = N->Ints[1], Stride = N->Ints[2];
      std::vector<double> Mask(In.slotCount(), 0.0);
      for (int64_t I = 0; I < Size; ++I)
        Mask[Start + I * Stride] = 1.0;
      IrNode *M = L.mulMask(X, std::move(Mask), OriginKind::OR_Other);
      L.Map[N] = M;
      L.Layouts[M] = In;
      L.Scales[M] = L.Scales.at(X);
      break;
    }
    case NodeKind::NK_Return:
      Result = L.Map.at(N->Operands[0]);
      break;
    default:
      return Status::error(std::string("unexpected node in NN lowering: ") +
                           nodeKindName(N->Kind));
    }
  }
  (void)OldReturn;
  if (!Result)
    return Status::error("NN function has no return value");
  NewF.setReturn(Result);

  // Record output metadata for the generated decryptor.
  State.OutputLayout = L.Layouts.at(Result);
  State.OutputDataScale = L.Scales.at(Result);
  const auto &OutShape =
      State.Shapes.at(State.Model->MainGraph.Outputs[0].Name);
  State.OutputCount = OutShape.back();

  // Persist per-node layouts for later passes (keyed by node id).
  NewF.renumber();
  for (const auto &[Node, Lay] : L.Layouts)
    State.Layouts[Node->Id] = Lay;
  for (const auto &[Node, Sc] : L.Scales)
    State.DataScales[Node->Id] = Sc;

  F = std::move(NewF);
  return Status::success();
}
