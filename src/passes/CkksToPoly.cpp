//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "passes/CkksToPoly.h"

#include <cassert>

using namespace ace;
using namespace ace::passes;
using namespace ace::air;

namespace {

/// Emission helper tracking the open RNS loop for loop fusion.
struct PolyBuilder {
  IrFunction &Out;
  bool EnableFusion;
  PolyStats &Stats;
  IrNode *OpenLoop = nullptr;
  int64_t OpenTrip = -1;

  /// Returns an RNS loop with trip count \p Trip, fusing into the open
  /// loop when the trip counts match (compile-time constants, paper
  /// Sec. 4.5).
  IrNode *loop(int64_t Trip, OriginKind Origin) {
    if (EnableFusion && OpenLoop && OpenTrip == Trip)
      return OpenLoop;
    IrNode *L = Out.create(NodeKind::NK_PolyRnsLoop, TypeKind::TK_Poly, {},
                           Origin);
    L->Ints = {Trip};
    OpenLoop = L;
    OpenTrip = Trip;
    ++Stats.RnsLoops;
    return L;
  }

  /// Ends the fusable region (key switches and domain changes act as
  /// barriers).
  void barrier() {
    OpenLoop = nullptr;
    OpenTrip = -1;
  }

  IrNode *hw(NodeKind Kind, IrNode *Loop, int64_t Count,
             OriginKind Origin) {
    IrNode *N = Out.create(Kind, TypeKind::TK_Poly, {Loop}, Origin);
    N->Ints = {Count};
    switch (Kind) {
    case NodeKind::NK_HwModMul:
      Stats.HwModMul += Count;
      break;
    case NodeKind::NK_HwModAdd:
    case NodeKind::NK_HwModSub:
      Stats.HwModAdd += Count;
      break;
    case NodeKind::NK_HwModMulAdd:
      Stats.HwModMulAdd += Count;
      break;
    case NodeKind::NK_HwNtt:
      Stats.HwNtt += Count;
      break;
    case NodeKind::NK_HwIntt:
      Stats.HwIntt += Count;
      break;
    default:
      break;
    }
    return N;
  }

  /// Key switching at \p L active primes: decomp, mod_up, inner products
  /// against the key, mod_down (paper Table 7's coarse-grained ops).
  void keySwitch(int64_t L, OriginKind Origin) {
    barrier();
    if (EnableFusion) {
      IrNode *N = Out.create(NodeKind::NK_PolyDecomp, TypeKind::TK_Poly,
                             {}, Origin);
      N->Name = "decomp_modup"; // fused ACEfhe API (paper Sec. 4.5)
      N->Ints = {L};
      ++Stats.FusedDecompModUp;
    } else {
      Out.create(NodeKind::NK_PolyDecomp, TypeKind::TK_Poly, {}, Origin)
          ->Ints = {L};
      Out.create(NodeKind::NK_PolyModUp, TypeKind::TK_Poly, {}, Origin)
          ->Ints = {L};
      ++Stats.Decomp;
      ++Stats.ModUp;
    }
    // NTT each decomposed digit over L+1 moduli, multiply-accumulate
    // against both key polynomials, INTT + mod-down the two results.
    IrNode *Lp = loop(L, Origin);
    hw(NodeKind::NK_HwNtt, Lp, L * (L + 1), Origin);
    if (EnableFusion)
      hw(NodeKind::NK_HwModMulAdd, Lp, 2 * L * (L + 1), Origin);
    else {
      hw(NodeKind::NK_HwModMul, Lp, 2 * L * (L + 1), Origin);
      hw(NodeKind::NK_HwModAdd, Lp, 2 * L * (L + 1), Origin);
    }
    Out.create(NodeKind::NK_PolyModDown, TypeKind::TK_Poly, {}, Origin)
        ->Ints = {L};
    ++Stats.ModDown;
    hw(NodeKind::NK_HwIntt, loop(L, Origin), 2, Origin);
    hw(NodeKind::NK_HwNtt, OpenLoop, 2 * L, Origin);
    barrier();
  }
};

} // namespace

Status ace::passes::lowerToPoly(const IrFunction &F,
                                const CompileState &State,
                                bool EnableFusion, IrFunction &Poly,
                                PolyStats *StatsOut) {
  Poly.clear();
  PolyStats Stats;
  PolyBuilder B{Poly, EnableFusion, Stats};

  auto NumQOf = [](const IrNode *N) -> int64_t {
    return N->CkksLevel >= 0 ? N->CkksLevel + 1 : 1;
  };

  for (const auto &NPtr : F.nodes()) {
    const IrNode *N = NPtr.get();
    OriginKind O = N->Origin;
    switch (N->Kind) {
    case NodeKind::NK_Input:
      Poly.addInput(N->Name, TypeKind::TK_Poly);
      break;
    case NodeKind::NK_ConstVec:
    case NodeKind::NK_CkksEncode:
    case NodeKind::NK_Return:
      break;
    case NodeKind::NK_CkksAdd:
    case NodeKind::NK_CkksSub: {
      int64_t L = NumQOf(N);
      // Two ciphertext polynomials, element-wise (the paper's
      // ciphertext-addition example of Sec. 4.5).
      B.hw(NodeKind::NK_HwModAdd, B.loop(L, O), 2 * L, O);
      break;
    }
    case NodeKind::NK_CkksAddConst:
      B.hw(NodeKind::NK_HwModAdd, B.loop(NumQOf(N), O), NumQOf(N), O);
      break;
    case NodeKind::NK_CkksMulConst:
      B.hw(NodeKind::NK_HwModMul, B.loop(NumQOf(N), O), 2 * NumQOf(N), O);
      break;
    case NodeKind::NK_CkksRotate: {
      int64_t L = NumQOf(N);
      B.barrier();
      B.hw(NodeKind::NK_HwIntt, B.loop(L, O), 2 * L, O);
      Poly.create(NodeKind::NK_PolyAutomorphism, TypeKind::TK_Poly, {}, O)
          ->Ints = {L};
      B.keySwitch(L, O);
      break;
    }
    case NodeKind::NK_CkksMul: {
      int64_t L = NumQOf(N);
      if (N->Operands[1]->Type == TypeKind::TK_Plain) {
        // ct * pt feeding an accumulation fuses into hw_modmuladd.
        if (EnableFusion)
          B.hw(NodeKind::NK_HwModMulAdd, B.loop(L, O), 2 * L, O);
        else {
          B.hw(NodeKind::NK_HwModMul, B.loop(L, O), 2 * L, O);
        }
      } else {
        B.hw(NodeKind::NK_HwModMul, B.loop(L, O), 4 * L, O);
        B.hw(NodeKind::NK_HwModAdd, B.OpenLoop ? B.OpenLoop
                                               : B.loop(L, O),
             L, O);
      }
      break;
    }
    case NodeKind::NK_CkksRelin:
      B.keySwitch(NumQOf(N), O);
      break;
    case NodeKind::NK_CkksRescale: {
      int64_t L = NumQOf(N->Operands[0]);
      B.barrier();
      Poly.create(NodeKind::NK_PolyRescale, TypeKind::TK_Poly, {}, O)
          ->Ints = {L};
      B.hw(NodeKind::NK_HwIntt, B.loop(L, O), 2, O);
      B.hw(NodeKind::NK_HwNtt, B.OpenLoop, 2 * (L - 1), O);
      B.hw(NodeKind::NK_HwModMul, B.OpenLoop, 2 * (L - 1), O);
      B.barrier();
      break;
    }
    case NodeKind::NK_CkksModSwitch:
      break; // drops components; no polynomial arithmetic
    case NodeKind::NK_CkksBootstrap: {
      // Coarse node: the bootstrap pipeline is itself a CKKS program
      // (matvecs + EvalMod) executed by the runtime.
      Poly.create(NodeKind::NK_PolyModUp, TypeKind::TK_Poly, {}, O)->Name =
          "bootstrap";
      B.barrier();
      break;
    }
    default:
      return Status::error(std::string("unexpected CKKS node: ") +
                           nodeKindName(N->Kind));
    }
  }
  if (StatsOut)
    *StatsOut = Stats;
  return Status::success();
}
