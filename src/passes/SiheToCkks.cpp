//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "passes/SiheToCkks.h"

#include "fhe/Bootstrapper.h"
#include "fhe/Security.h"
#include "passes/VectorToSihe.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::passes;
using namespace ace::air;

namespace {

size_t nextPow2(size_t X) {
  size_t P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

/// Rescale cost of a node in the backward depth analysis.
int levelCost(const IrNode *N) {
  return (N->Kind == NodeKind::NK_SiheMul ||
          N->Kind == NodeKind::NK_SiheMulConst)
             ? 1
             : 0;
}

/// Forward rebuild state. The rescale-mode legality rules this builder
/// implements are documented in docs/compiler.md; the three policies are:
///
///  - RM_Eager: settle the pending rescale (and relinearize) immediately
///    after every producer. Every mapped value is canonical.
///  - RM_Waterline: the historical default. One rescale per value is
///    postponed (scale Delta^2 "waterline") and settled, unmemoized, at
///    every consumer that cannot take a pending operand: a value read by
///    several such consumers is re-settled per consumer.
///  - RM_Lazy: last-responsible-moment placement. Settles, level drops,
///    and relinearizations are memoized (CSE over scale management),
///    degree-3 products flow through additions / scalar ops / ct-pt
///    multiplies, and canonical form (scale Delta, degree 2) is demanded
///    only at rotations, ct-ct multiply operands, bootstrap inputs, and
///    the return value.
struct CkksBuilder {
  IrFunction &Out;
  CompileState &State;
  RescaleMode Mode;
  std::map<const IrNode *, IrNode *> Map;
  std::map<IrNode *, size_t> NumQ;
  std::map<IrNode *, bool> Pending; ///< scale Delta*q, rescale postponed
  std::map<IrNode *, int> Degree;   ///< ciphertext components (2 or 3)
  /// Lazy-mode memoization: each value settles / drops to a given level /
  /// relinearizes at most once, no matter how many consumers demand it.
  std::map<IrNode *, IrNode *> SettleCache;
  std::map<std::pair<IrNode *, size_t>, IrNode *> DropCache;
  std::map<IrNode *, IrNode *> RelinCache;

  int degreeOf(IrNode *V) {
    auto It = Degree.find(V);
    return It == Degree.end() ? 2 : It->second;
  }

  IrNode *makeRescale(IrNode *V) {
    assert(NumQ[V] >= 2 && "rescale would drop the base modulus");
    IrNode *R = Out.create(NodeKind::NK_CkksRescale, V->Type, {V},
                           V->Origin);
    NumQ[R] = NumQ[V] - 1;
    Pending[R] = false;
    Degree[R] = degreeOf(V);
    R->CkksLevel = static_cast<int>(NumQ[R]) - 1;
    return R;
  }

  /// Emits the postponed rescale. Memoized under RM_Lazy; the waterline
  /// policy re-settles per consumer (its historical behavior).
  IrNode *settle(IrNode *V) {
    if (Mode != RescaleMode::RM_Lazy)
      return Pending[V] ? makeRescale(V) : V;
    IrNode *S = V;
    if (Pending[V]) {
      auto [It, Inserted] = SettleCache.try_emplace(V, nullptr);
      if (Inserted)
        It->second = makeRescale(V);
      S = It->second;
    }
    // Canonical forwarding: once some consumer has relinearized this
    // settled value, every later consumer takes the degree-2 form —
    // same scale, lower degree, and downstream sums stop re-carrying
    // (and re-relinearizing) the third component.
    auto RIt = RelinCache.find(S);
    return RIt != RelinCache.end() ? RIt->second : S;
  }

  /// Mod-switches \p V down to \p Target active primes.
  IrNode *dropTo(IrNode *V, size_t Target) {
    if (NumQ[V] == Target)
      return V;
    assert(NumQ[V] > Target && "cannot raise a level without bootstrapping");
    if (Mode == RescaleMode::RM_Lazy) {
      auto [It, Inserted] = DropCache.try_emplace({V, Target}, nullptr);
      if (!Inserted)
        return It->second;
      It->second = makeDrop(V, Target);
      return It->second;
    }
    return makeDrop(V, Target);
  }

  IrNode *makeDrop(IrNode *V, size_t Target) {
    IrNode *M = Out.create(NodeKind::NK_CkksModSwitch, V->Type, {V},
                           V->Origin);
    M->Ints = {static_cast<int64_t>(Target)};
    NumQ[M] = Target;
    Pending[M] = Pending[V];
    Degree[M] = degreeOf(V);
    M->CkksLevel = static_cast<int>(Target) - 1;
    return M;
  }

  /// Reduces a degree-3 product back to two components. Memoized; only
  /// RM_Lazy ever sees a degree-3 value here (the other modes
  /// relinearize at the producing multiply).
  IrNode *relin(IrNode *V) {
    if (degreeOf(V) == 2)
      return V;
    auto [It, Inserted] = RelinCache.try_emplace(V, nullptr);
    if (!Inserted)
      return It->second;
    IrNode *R = Out.create(NodeKind::NK_CkksRelin, TypeKind::TK_Cipher, {V},
                           V->Origin);
    NumQ[R] = NumQ[V];
    Pending[R] = Pending[V];
    Degree[R] = 2;
    R->CkksLevel = static_cast<int>(NumQ[R]) - 1;
    It->second = R;
    return R;
  }

  /// Canonical form: scale Delta, degree 2. Settling first relinearizes
  /// at the lower level, which shortens the key-switch.
  IrNode *canonical(IrNode *V) { return relin(settle(V)); }

  /// Settles mismatched pending states and aligns levels for a binary
  /// ciphertext operation.
  void alignPair(IrNode *&A, IrNode *&B, bool RequireSettled) {
    if (RequireSettled || Pending[A] != Pending[B]) {
      A = settle(A);
      B = settle(B);
    }
    size_t Target = std::min(NumQ[A], NumQ[B]);
    A = dropTo(A, Target);
    B = dropTo(B, Target);
  }

  IrNode *finish(IrNode *N, size_t Q, bool IsPending, int Deg = 2) {
    NumQ[N] = Q;
    Pending[N] = IsPending;
    Degree[N] = Deg;
    N->CkksLevel = static_cast<int>(Q) - 1;
    N->CkksScale = IsPending ? 2.0 : 1.0; // symbolic: Delta^2 vs Delta
    return N;
  }
};

} // namespace

Status SiheToCkksPass::run(IrFunction &F, CompileState &State) {
  const std::vector<std::unique_ptr<IrNode>> &Nodes = F.nodes();

  // --- Backward need analysis -------------------------------------------
  // refreshId(X): earliest node that forces a bootstrap of X before use.
  std::map<const IrNode *, int> RefreshId;
  for (const auto &N : Nodes)
    if (N->RefreshBefore) {
      const IrNode *X = N->Operands[0];
      auto [It, Inserted] = RefreshId.emplace(X, N->Id);
      if (!Inserted)
        It->second = std::min(It->second, N->Id);
    }

  std::map<const IrNode *, int> Need;
  auto NeedOf = [&](const IrNode *N) {
    auto It = Need.find(N);
    return It == Need.end() ? 0 : It->second;
  };
  if (F.returnValue())
    Need[F.returnValue()] = 1; // settling the final pending rescale
  for (auto It = Nodes.rbegin(); It != Nodes.rend(); ++It) {
    const IrNode *N = It->get();
    int Out = NeedOf(N) + levelCost(N);
    for (const IrNode *X : N->Operands) {
      auto R = RefreshId.find(X);
      bool Cut = R != RefreshId.end() && R->second <= N->Id;
      if (Cut)
        continue; // this use reads the refreshed value
      auto [NIt, Inserted] = Need.emplace(X, Out);
      if (!Inserted)
        NIt->second = std::max(NIt->second, Out);
    }
  }
  // Bootstrap output requirements: max over post-refresh uses.
  std::map<const IrNode *, int> RefreshNeed;
  for (const auto &N : Nodes) {
    for (const IrNode *X : N->Operands) {
      auto R = RefreshId.find(X);
      if (R == RefreshId.end() || R->second > N->Id)
        continue;
      int Out = NeedOf(N.get()) + levelCost(N.get());
      auto [NIt, Inserted] = RefreshNeed.emplace(X, Out);
      if (!Inserted)
        NIt->second = std::max(NIt->second, Out);
    }
  }

  // --- Forward rebuild ----------------------------------------------------
  // Resolve the placement policy here (not in the driver) so the pass
  // behaves identically when driven standalone by tests. The legacy
  // ablation switch maps to the eager policy.
  RescaleMode Mode = State.Options.EnableRescalePlacement
                         ? resolveRescaleMode(State.Options.Rescale)
                         : RescaleMode::RM_Eager;
  State.ResolvedRescale = Mode;

  IrFunction NewF(F.name());
  CkksBuilder B{NewF, State, Mode, {}, {}, {}, {}, {}, {}, {}};
  std::map<const IrNode *, IrNode *> Refreshed;

  int MaxBootTarget = 0;
  size_t InputNumQ = 0;
  IrNode *Result = nullptr;

  for (const auto &NPtr : Nodes) {
    const IrNode *N = NPtr.get();

    // Minimal-level bootstrap insertion (paper Sec. 4.4).
    if (N->RefreshBefore) {
      const IrNode *XOld = N->Operands[0];
      if (!Refreshed.count(XOld)) {
        // Bootstrapping demands canonical form (degree 2, scale Delta).
        IrNode *X = Mode == RescaleMode::RM_Lazy
                        ? B.canonical(B.Map.at(XOld))
                        : B.settle(B.Map.at(XOld));
        int Target = RefreshNeed.at(XOld) + 1;
        if (!State.Options.EnableMinimalBootstrapLevel) {
          // Expert-style: refresh to the deepest level any ReLU needs,
          // plus the hand-budgeted margin (paper Sec. 4.4 contrasts this
          // with minimal-level placement).
          int MaxTarget = 2;
          for (const auto &[Key, Value] : RefreshNeed)
            MaxTarget = std::max(MaxTarget, Value + 1);
          Target = MaxTarget + State.Options.ExpertMarginLevels;
        }
        IrNode *Boot = NewF.create(NodeKind::NK_CkksBootstrap, X->Type, {X},
                                   OriginKind::OR_Bootstrap);
        Boot->BootstrapTarget = Target;
        B.finish(Boot, static_cast<size_t>(Target), /*IsPending=*/false);
        Refreshed[XOld] = Boot;
        B.Map[XOld] = Boot;
        MaxBootTarget = std::max(MaxBootTarget, Target);
        ++State.BootstrapCount;
      }
    }

    IrNode *Lowered = nullptr;
    switch (N->Kind) {
    case NodeKind::NK_Input: {
      Lowered = NewF.addInput(N->Name, TypeKind::TK_Cipher);
      InputNumQ = static_cast<size_t>(NeedOf(N)) + 1;
      if (!State.Options.EnableMinimalBootstrapLevel)
        InputNumQ += State.Options.ExpertMarginLevels;
      B.finish(Lowered, InputNumQ, false);
      break;
    }
    case NodeKind::NK_ConstVec: {
      Lowered = NewF.create(NodeKind::NK_ConstVec, TypeKind::TK_Vector, {},
                            N->Origin);
      Lowered->Data = N->Data;
      Lowered->Name = N->Name;
      break;
    }
    case NodeKind::NK_SiheEncode: {
      Lowered = NewF.create(NodeKind::NK_CkksEncode, TypeKind::TK_Plain,
                            {B.Map.at(N->Operands[0])}, N->Origin);
      break;
    }
    case NodeKind::NK_SiheRotate: {
      IrNode *X = B.Map.at(N->Operands[0]);
      // Rotation key-switches a degree-2 ciphertext; under the lazy
      // policy this is the canonical-form demand point. The memoized
      // settle hoists one rescale above a rotation fan-out (e.g. the
      // BSGS baby steps) instead of re-settling per rotation, and
      // rotating at the settled (lower) level truncates the key.
      if (Mode == RescaleMode::RM_Lazy)
        X = B.canonical(X);
      Lowered = NewF.create(NodeKind::NK_CkksRotate, TypeKind::TK_Cipher,
                            {X}, N->Origin);
      Lowered->Ints = N->Ints;
      B.finish(Lowered, B.NumQ[X], B.Pending[X]);
      int64_t Slots =
          static_cast<int64_t>(State.InputLayout.slotCount());
      int64_t Step = ((N->rotationSteps() % Slots) + Slots) % Slots;
      if (Step != 0) {
        State.RotationSteps.insert(Step);
        auto [It, Inserted] =
            State.RotationStepMaxNumQ.emplace(Step, B.NumQ[X]);
        if (!Inserted)
          It->second = std::max(It->second, B.NumQ[X]);
      }
      break;
    }
    case NodeKind::NK_SiheMul: {
      IrNode *A = B.Map.at(N->Operands[0]);
      IrNode *C = B.Map.at(N->Operands[1]);
      if (C->Type == TypeKind::TK_Plain) {
        // A pending Delta*q scale would make the product doubly pending;
        // settle first. The lazy policy lets a degree-3 operand through
        // (plaintext products touch every component independently).
        A = B.settle(A);
        Lowered = NewF.create(NodeKind::NK_CkksMul, A->Type, {A, C},
                              N->Origin);
        B.finish(Lowered, B.NumQ[A], /*IsPending=*/true, B.degreeOf(A));
        if (Mode == RescaleMode::RM_Eager)
          Lowered = B.settle(Lowered);
      } else if (Mode == RescaleMode::RM_Lazy) {
        // Ciphertext products need canonical degree-2 operands at the
        // plain scale; the relinearization of the product itself is
        // deferred until a consumer demands canonical form, so a sum of
        // products relinearizes once.
        A = B.canonical(A);
        C = B.canonical(C);
        size_t Target = std::min(B.NumQ[A], B.NumQ[C]);
        A = B.dropTo(A, Target);
        C = B.dropTo(C, Target);
        Lowered = NewF.create(NodeKind::NK_CkksMul, TypeKind::TK_Cipher3,
                              {A, C}, N->Origin);
        B.finish(Lowered, Target, true, /*Deg=*/3);
        State.NeedsRelin = true;
      } else {
        B.alignPair(A, C, /*RequireSettled=*/true);
        IrNode *M = NewF.create(NodeKind::NK_CkksMul, TypeKind::TK_Cipher3,
                                {A, C}, N->Origin);
        B.finish(M, B.NumQ[A], true, /*Deg=*/3);
        Lowered = NewF.create(NodeKind::NK_CkksRelin, TypeKind::TK_Cipher,
                              {M}, N->Origin);
        B.finish(Lowered, B.NumQ[A], true);
        State.NeedsRelin = true;
        if (Mode == RescaleMode::RM_Eager)
          Lowered = B.settle(Lowered);
      }
      break;
    }
    case NodeKind::NK_SiheMulConst: {
      IrNode *A = B.settle(B.Map.at(N->Operands[0]));
      Lowered = NewF.create(NodeKind::NK_CkksMulConst, A->Type, {A},
                            N->Origin);
      Lowered->Scalar = N->Scalar;
      B.finish(Lowered, B.NumQ[A], true, B.degreeOf(A));
      if (Mode == RescaleMode::RM_Eager)
        Lowered = B.settle(Lowered);
      break;
    }
    case NodeKind::NK_SiheAddConst: {
      // Constants are added at the ciphertext scale; settle a pending
      // Delta^2 scale first so the integer constant stays within range
      // (the runtime encodes |value * Scale| < 2^62).
      IrNode *A = B.settle(B.Map.at(N->Operands[0]));
      Lowered = NewF.create(NodeKind::NK_CkksAddConst, A->Type, {A},
                            N->Origin);
      Lowered->Scalar = N->Scalar;
      B.finish(Lowered, B.NumQ[A], B.Pending[A], B.degreeOf(A));
      break;
    }
    case NodeKind::NK_SiheAdd:
    case NodeKind::NK_SiheSub: {
      IrNode *A = B.Map.at(N->Operands[0]);
      IrNode *C = B.Map.at(N->Operands[1]);
      NodeKind Kind = N->Kind == NodeKind::NK_SiheAdd
                          ? NodeKind::NK_CkksAdd
                          : NodeKind::NK_CkksSub;
      if (C->Type == TypeKind::TK_Plain) {
        // Plaintexts are encoded at the ciphertext scale; a pending
        // Delta^2 scale would overflow the encoder, so settle first.
        A = B.settle(A);
        Lowered = NewF.create(Kind, A->Type, {A, C}, N->Origin);
        B.finish(Lowered, B.NumQ[A], B.Pending[A], B.degreeOf(A));
      } else if (Mode == RescaleMode::RM_Lazy) {
        // Pending operands add directly: the rescale primes are balanced
        // around 2^LogScale, so two pending values agree on scale within
        // the runtime tolerance even at different levels. A settled and
        // a pending operand differ by a factor ~Delta and must not mix.
        if (B.Pending[A] != B.Pending[C]) {
          A = B.settle(A);
          C = B.settle(C);
        }
        size_t Target = std::min(B.NumQ[A], B.NumQ[C]);
        A = B.dropTo(A, Target);
        C = B.dropTo(C, Target);
        int Deg = std::max(B.degreeOf(A), B.degreeOf(C));
        Lowered = NewF.create(Kind,
                              Deg == 3 ? TypeKind::TK_Cipher3
                                       : TypeKind::TK_Cipher,
                              {A, C}, N->Origin);
        B.finish(Lowered, Target, B.Pending[A], Deg);
      } else {
        // Eager mode keeps every value settled, so RequireSettled only
        // normalizes level alignment there.
        B.alignPair(A, C,
                    /*RequireSettled=*/Mode == RescaleMode::RM_Eager);
        Lowered =
            NewF.create(Kind, TypeKind::TK_Cipher, {A, C}, N->Origin);
        B.finish(Lowered, B.NumQ[A], B.Pending[A]);
      }
      break;
    }
    case NodeKind::NK_Return: {
      // The decryptor expects canonical form.
      Result = Mode == RescaleMode::RM_Lazy
                   ? B.canonical(B.Map.at(N->Operands[0]))
                   : B.settle(B.Map.at(N->Operands[0]));
      continue;
    }
    default:
      return Status::error(std::string("unexpected node in SIHE lowering: ") +
                           nodeKindName(N->Kind));
    }
    B.Map[N] = Lowered;
  }
  if (!Result)
    return Status::error("SIHE function has no return value");
  NewF.setReturn(Result);
  NewF.renumber();

  // --- Static op budget (tests/passes/OpBudgetTest.cpp) ------------------
  State.Budget = CkksOpBudget{};
  for (const auto &NPtr : NewF.nodes()) {
    switch (NPtr->Kind) {
    case NodeKind::NK_CkksRescale:
      ++State.Budget.Rescale;
      break;
    case NodeKind::NK_CkksRelin:
      ++State.Budget.Relinearize;
      break;
    case NodeKind::NK_CkksRotate:
      ++State.Budget.Rotate;
      break;
    case NodeKind::NK_CkksModSwitch:
      ++State.Budget.ModSwitch;
      break;
    case NodeKind::NK_CkksBootstrap:
      ++State.Budget.Bootstrap;
      break;
    case NodeKind::NK_CkksMulConst:
      ++State.Budget.CtPtMul; // scalar products execute as ct-pt muls
      break;
    case NodeKind::NK_CkksMul:
      if (NPtr->Operands[1]->Type == TypeKind::TK_Plain)
        ++State.Budget.CtPtMul;
      else
        ++State.Budget.CtCtMul;
      break;
    default:
      break;
    }
  }

  // --- Automatic parameter selection (paper Table 10) --------------------
  const CompileOptions &Opt = State.Options;
  size_t Slots = State.InputLayout.slotCount();
  bool HasBootstrap = State.BootstrapCount > 0;

  int MaxNeed = 0;
  for (const auto &[Node, Value] : Need)
    MaxNeed = std::max(MaxNeed, Value);
  State.MaxComputeDepth = MaxNeed;

  fhe::BootstrapConfig BootCfg;
  BootCfg.RangeK = Opt.BootstrapRangeK;
  BootCfg.DoubleAngleCount = Opt.BootstrapDoubleAngle;
  BootCfg.ChebyshevDegree = Opt.BootstrapChebDegree;

  fhe::CkksParams P;
  P.Slots = Slots;
  P.LogScale = Opt.LogScale;
  P.LogFirstModulus = Opt.LogFirstModulus;
  P.LogSpecialModulus = 60;
  P.SparseSecret = HasBootstrap;
  P.Seed = Opt.Seed;

  size_t ChainNumQ = std::max<size_t>(InputNumQ, MaxBootTarget);
  if (Opt.ToyParameters) {
    P.RingDegree = std::max<size_t>(2 * nextPow2(Slots), 128);
    if (HasBootstrap) {
      State.BootstrapDepth = fhe::estimateBootstrapDepth(
          P.RingDegree, Slots, BootCfg, P.LogScale, P.LogFirstModulus);
      ChainNumQ = static_cast<size_t>(MaxBootTarget) +
                  static_cast<size_t>(State.BootstrapDepth);
      ChainNumQ = std::max(ChainNumQ, InputNumQ);
    }
  } else {
    // Iterate N <-> chain length until stable: bigger rings increase the
    // bootstrap span and hence its depth.
    P.RingDegree = std::max<size_t>(2 * nextPow2(Slots), 1024);
    for (int Iter = 0; Iter < 8; ++Iter) {
      if (HasBootstrap) {
        State.BootstrapDepth = fhe::estimateBootstrapDepth(
            P.RingDegree, Slots, BootCfg, P.LogScale, P.LogFirstModulus);
        ChainNumQ = std::max<size_t>(
            static_cast<size_t>(MaxBootTarget + State.BootstrapDepth),
            InputNumQ);
      }
      int LogQP = P.LogFirstModulus +
                  static_cast<int>(ChainNumQ - 1) * P.LogScale + 60;
      size_t NSec = fhe::minRingDegreeFor(
          LogQP, fhe::SecurityLevelKind::SL_128);
      if (NSec == 0)
        return Status::error("no standardized ring supports this depth");
      size_t NewN = std::max(NSec, 2 * nextPow2(Slots));
      if (NewN == P.RingDegree)
        break;
      P.RingDegree = NewN;
    }
  }
  P.NumRescaleModuli = static_cast<int>(ChainNumQ) - 1;
  State.SelectedParams = P;

  // Production-security report (Table 10), independent of execution mode.
  // A production bootstrapper (hand-tuned EvalMod as in Lee et al. [35])
  // consumes ~15 levels; the toy pipeline's extra double-angle/arcsine
  // margin would otherwise overstate the production chain.
  {
    constexpr int ProductionBootstrapDepth = 14;
    constexpr int ProductionReluDepth = 12;
    int ReluExcess = std::max(
        0, reluDepth(Opt.ReluSignIterations) - ProductionReluDepth);
    size_t ProdChain =
        HasBootstrap
            ? std::max<size_t>(InputNumQ,
                               MaxBootTarget - ReluExcess +
                                   ProductionBootstrapDepth)
            : InputNumQ;
    int LogQP = 60 + static_cast<int>(ProdChain - 1) * 56 + 60;
    size_t NSec =
        fhe::minRingDegreeFor(LogQP, fhe::SecurityLevelKind::SL_128);
    State.SecureRingDegree = std::max(NSec, 2 * nextPow2(Slots));
    State.SecureLogQ = LogQP;
  }

  State.NeedsConjugation = HasBootstrap;
  State.InputNumQ = InputNumQ;
  F = std::move(NewF);
  return Status::success();
}
