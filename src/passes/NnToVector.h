//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NN -> VECTOR lowering (paper Sec. 4.2): selects the packed data layout,
/// turns convolutions into rotate/multiply-mask accumulations across
/// channel shifts and kernel taps, GEMM into the Halevi-Shoup diagonal
/// method (paper Listing 2's roll/mul/add loop), pooling into rotation
/// trees with layout dilation, and absorbs activation-normalization scale
/// ratios into the weight masks. Weight processing is evaluated eagerly at
/// compile time - masks become VECTOR constants, matching how ANT-ACE
/// stores preprocessed weights externally (paper Sec. 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_PASSES_NNTOVECTOR_H
#define ACE_PASSES_NNTOVECTOR_H

#include "air/Pass.h"

namespace ace {
namespace passes {

class NnToVectorPass : public air::Pass {
public:
  const char *name() const override { return "nn-to-vector"; }
  const char *phase() const override { return "VECTOR"; }
  Status run(air::IrFunction &F, air::CompileState &State) override;
};

} // namespace passes
} // namespace ace

#endif // ACE_PASSES_NNTOVECTOR_H
