//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "service/ServiceCApi.h"

#include "driver/AceCompiler.h"
#include "fhe/CApiInternal.h"
#include "nn/ModelZoo.h"
#include "service/InferenceService.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace ace;

namespace {

/// Handle magic tag (same best-effort freed/corrupt-handle detection as
/// fhe/CApi.cpp): cleared on destroy so a use-after-free is reported
/// instead of dereferenced.
constexpr uint32_t kServiceMagic = 0x41435356u; // "ACSV"

} // namespace

struct AceService {
  uint32_t Magic = kServiceMagic;
  std::unique_ptr<driver::CompileResult> Compiled;
  std::unique_ptr<service::InferenceService> Service;
  size_t InputWidth = 0;
  size_t OutputCount = 0;
};

namespace {

bool validHandle(const AceService *Svc, const char *What) {
  if (Svc && Svc->Magic == kServiceMagic)
    return true;
  capi::setLastErrorCode(ACE_ERR_INVALID_ARGUMENT,
                         std::string(What) +
                             ": NULL, freed, or corrupted service handle");
  return false;
}

} // namespace

AceService *ace_service_create_mlp(const int64_t *dims, size_t ndims,
                                   uint64_t seed, size_t queue_capacity,
                                   double default_deadline_seconds) {
  if (!dims || ndims < 2) {
    capi::setLastErrorCode(ACE_ERR_INVALID_ARGUMENT,
                           "ace_service_create_mlp: need at least an input "
                           "and an output layer width");
    return nullptr;
  }
  std::vector<int64_t> Dims(dims, dims + ndims);
  for (int64_t D : Dims)
    if (D <= 0) {
      capi::setLastErrorCode(ACE_ERR_INVALID_ARGUMENT,
                             "ace_service_create_mlp: layer widths must be "
                             "positive");
      return nullptr;
    }
  onnx::Model Model = nn::buildMlp(Dims, seed);

  // Calibration inputs for activation-range analysis.
  Rng R(seed + 1);
  std::vector<nn::Tensor> Calibration;
  for (int I = 0; I < 4; ++I) {
    nn::Tensor T;
    T.Shape = {1, Dims.front()};
    T.Values.resize(static_cast<size_t>(Dims.front()));
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Calibration.push_back(std::move(T));
  }

  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = static_cast<int>(Calibration.size());
  Opt.Seed = seed;
  driver::AceCompiler Compiler(Opt);
  auto Result = Compiler.compile(Model, Calibration);
  if (!Result.ok()) {
    capi::setLastStatus(Result.status());
    return nullptr;
  }

  auto *Svc = new AceService();
  Svc->Compiled = Result.take();
  Svc->InputWidth = static_cast<size_t>(Dims.front());
  Svc->OutputCount = static_cast<size_t>(Dims.back());
  service::ServiceConfig Config;
  if (queue_capacity > 0)
    Config.QueueCapacity = queue_capacity;
  Config.DefaultDeadlineSeconds = default_deadline_seconds;
  Svc->Service = std::make_unique<service::InferenceService>(
      Svc->Compiled->Program, Svc->Compiled->State, Config);
  return Svc;
}

void ace_service_destroy(AceService *svc) {
  if (!svc)
    return;
  svc->Magic = 0;
  delete svc;
}

uint64_t ace_service_open_session(AceService *svc) {
  if (!validHandle(svc, "ace_service_open_session"))
    return 0;
  auto Id = svc->Service->openSession();
  if (!Id.ok()) {
    capi::setLastStatus(Id.status());
    return 0;
  }
  return *Id;
}

int ace_service_close_session(AceService *svc, uint64_t session) {
  if (!validHandle(svc, "ace_service_close_session"))
    return ace_last_error();
  Status S = svc->Service->closeSession(session);
  if (!S.ok()) {
    capi::setLastStatus(S);
    return ace_last_error();
  }
  return ACE_OK;
}

int ace_service_infer(AceService *svc, uint64_t session,
                      const double *input, size_t n, double deadline_seconds,
                      double *out, size_t out_n, size_t *out_count) {
  if (!validHandle(svc, "ace_service_infer"))
    return ace_last_error();
  if (!input || !out) {
    capi::setLastErrorCode(ACE_ERR_INVALID_ARGUMENT,
                           "ace_service_infer: NULL input or output buffer");
    return ace_last_error();
  }
  if (n != svc->InputWidth) {
    capi::setLastErrorCode(ACE_ERR_INVALID_ARGUMENT,
                           "ace_service_infer: input length " +
                               std::to_string(n) + " does not match the "
                               "model's input width " +
                               std::to_string(svc->InputWidth));
    return ace_last_error();
  }
  if (out_n < svc->OutputCount) {
    capi::setLastErrorCode(ACE_ERR_INVALID_ARGUMENT,
                           "ace_service_infer: output buffer holds " +
                               std::to_string(out_n) + " doubles, model "
                               "produces " +
                               std::to_string(svc->OutputCount));
    return ace_last_error();
  }

  nn::Tensor T;
  T.Shape = {1, static_cast<int64_t>(n)};
  T.Values.resize(n);
  for (size_t I = 0; I < n; ++I)
    T.Values[I] = static_cast<float>(input[I]);

  auto Frame = svc->Service->encryptRequest(
      session, T, /*ClientTag=*/0,
      deadline_seconds > 0.0 ? deadline_seconds : -1.0);
  if (!Frame.ok()) {
    capi::setLastStatus(Frame.status());
    return ace_last_error();
  }
  auto Ticket = svc->Service->submit(Frame.take());
  if (!Ticket.ok()) {
    capi::setLastStatus(Ticket.status());
    return ace_last_error();
  }
  service::InferenceResponse Resp = Ticket->Result.get();
  if (!Resp.Outcome.ok()) {
    capi::setLastStatus(Resp.Outcome);
    return ace_last_error();
  }
  auto Logits = svc->Service->decryptResponse(session, Resp.Bytes);
  if (!Logits.ok()) {
    capi::setLastStatus(Logits.status());
    return ace_last_error();
  }
  size_t Count = std::min(out_n, Logits->size());
  for (size_t I = 0; I < Count; ++I)
    out[I] = (*Logits)[I];
  if (out_count)
    *out_count = Logits->size();
  return ACE_OK;
}

char *ace_service_stats_json(AceService *svc) {
  if (!validHandle(svc, "ace_service_stats_json"))
    return nullptr;
  std::string Json = svc->Service->stats().json();
  char *Out = static_cast<char *>(std::malloc(Json.size() + 1));
  if (!Out) {
    capi::setLastErrorCode(ACE_ERR_RESOURCE_EXHAUSTED,
                           "ace_service_stats_json: allocation failed");
    return nullptr;
  }
  std::memcpy(Out, Json.c_str(), Json.size() + 1);
  return Out;
}
