//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat C surface over the inference service (docs/serving.md) - the
/// shape an embedding application links against: create a service around
/// a compiled model, open per-client sessions, run synchronous inferences
/// with a deadline, and read the service stats. Shares the thread-local
/// error channel of fhe/CApi.h: failing calls return 0/NULL or a nonzero
/// AceErrorCode, with ace_last_error() / ace_last_error_message()
/// describing the failure (including ACE_ERR_CANCELLED and
/// ACE_ERR_DEADLINE_EXCEEDED for request-lifecycle failures).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SERVICE_SERVICECAPI_H
#define ACE_SERVICE_SERVICECAPI_H

#include "fhe/CApi.h"

#ifdef __cplusplus
extern "C" {
#endif

typedef struct AceService AceService;

/// Compiles an MLP with the given layer widths (dims[0] = input width,
/// dims[ndims-1] = logit count; weights drawn from `seed`) under fast toy
/// parameters, and starts a service over it with a request queue of
/// queue_capacity (0 = default) and the given default per-request
/// deadline (0 = none). Returns NULL with the error channel set on
/// failure. Destroy with ace_service_destroy.
AceService *ace_service_create_mlp(const int64_t *dims, size_t ndims,
                                   uint64_t seed, size_t queue_capacity,
                                   double default_deadline_seconds);
void ace_service_destroy(AceService *svc);

/// Opens a session with fresh keys; returns its nonzero id, or 0 with
/// the error channel set.
uint64_t ace_service_open_session(AceService *svc);
/// Closes a session. Returns ACE_OK or an error code.
int ace_service_close_session(AceService *svc, uint64_t session);

/// Synchronous encrypted inference: encrypts `input` (length n = the
/// model's input width) under the session's keys, submits it with
/// `deadline_seconds` (0 = service default), waits, and decrypts the
/// logits into `out` (length out_n >= the class count; the logit count
/// is written to *out_count when non-NULL). Returns ACE_OK or the
/// request's failure code (e.g. ACE_ERR_DEADLINE_EXCEEDED,
/// ACE_ERR_RESOURCE_EXHAUSTED on queue overflow).
int ace_service_infer(AceService *svc, uint64_t session,
                      const double *input, size_t n, double deadline_seconds,
                      double *out, size_t out_n, size_t *out_count);

/// Service stats (accepted/rejected/completed/failed counters, queue
/// depth, latency percentiles) as a malloc'd JSON string the caller
/// frees. NULL with the error channel set on invalid handles.
char *ace_service_stats_json(AceService *svc);

#ifdef __cplusplus
} // extern "C"
#endif

#endif // ACE_SERVICE_SERVICECAPI_H
