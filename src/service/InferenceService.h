//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-client encrypted-inference service (see docs/serving.md) - the
/// deployment shape the paper's Fig. 2 implies but its benches never
/// build: compile a model ONCE, then serve many independent encrypted
/// requests against it. The robustness contract is the point:
///
///  - Admission control: a bounded request queue. When it is full,
///    submit() sheds load immediately with Status(ResourceExhausted) -
///    backpressure, never unbounded memory growth.
///  - Sessions: each client opens a session with its OWN key material (a
///    private CkksExecutor over the shared compiled program). Request
///    frames carry a fingerprint of the session's public key, so a
///    ciphertext routed to the wrong session fails that request with
///    Status(KeyMissing) instead of silently decrypting garbage.
///  - Deadlines + cancellation: every request carries an optional
///    deadline; cancel() abandons a queued or running request. Both
///    unwind cooperatively between CKKS ops (support/Cancellation.h)
///    with Status(DeadlineExceeded/Cancelled).
///  - Isolation: requests are framed over the hardened wire format
///    (PR 4), so malformed, truncated, or fault-injected bytes fail only
///    their own request; concurrent requests on other sessions are
///    unaffected and their results stay bit-identical to a single-client
///    run.
///
/// Concurrency model: submit() enqueues; a dispatcher thread pops bounded
/// batches and executes them via ace::ThreadPool::parallelFor - requests
/// run in parallel ACROSS pool workers, and the FHE kernels' own nested
/// parallelFor calls serialize inline on those workers (the pool's
/// documented nesting rule), which keeps results bit-identical at every
/// thread count. Requests on the SAME session additionally serialize
/// (an executor's plaintext cache and timing registries are per-session
/// state): each wave takes at most one request per session and the
/// dispatcher holds every batched session's mutex across the fork.
/// Lock-order discipline: a session mutex is always acquired before the
/// pool's fork lock, and a thread holding a session mutex never forks -
/// client-side encrypt/decrypt run inline (ThreadPool::InlineRegion) -
/// so the service cannot deadlock against the pool.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_SERVICE_INFERENCESERVICE_H
#define ACE_SERVICE_INFERENCESERVICE_H

#include "codegen/CkksExecutor.h"
#include "support/Cancellation.h"
#include "support/Histogram.h"
#include "support/Status.h"
#include "support/Telemetry.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ace {
namespace service {

/// Request/response byte-frame layout (little-endian, see
/// docs/serving.md). A request is
///
///   magic "ACRQ" | version u16 | session id u64 | client tag u64 |
///   trace id u64 (0 = let the server assign one) | deadline budget in
///   micros u64 (0 = none carried, server default applies; 2^64-1 =
///   explicitly unbounded) | key fingerprint u32 |
///   header CRC-32C u32 | framed ciphertext ("ACEW"...)
///
/// and a response is
///
///   magic "ACRS" | version u16 | session id u64 | client tag u64 |
///   request id u64 | trace id u64 (echo, or the server-assigned id) |
///   status code u8 | message length u32 | message |
///   key fingerprint u32 | framed ciphertext (present only on success)
///
/// The header CRC covers every request-header byte before it, so a
/// bit-flipped session id or fingerprint is detected as DataCorrupt
/// before any routing decision is made; the ciphertext payload carries
/// its own frame CRC (PR 4).
///
/// Version history: v1 had no trace id; v2 (this build) inserts it
/// after the client tag in both frames. Versions are checked exactly -
/// a v1 frame fails with DataCorrupt, never a silent field shift.
namespace frame {
constexpr uint32_t kRequestMagic = 0x51524341u;  // "ACRQ"
constexpr uint32_t kResponseMagic = 0x53524341u; // "ACRS"
constexpr uint16_t kVersion = 2;
/// Deadline-budget wire value for "the client explicitly requested NO
/// deadline". Distinct from 0 ("frame carries no deadline"), which lets
/// the server apply ServiceConfig::DefaultDeadlineSeconds.
constexpr uint64_t kUnboundedDeadlineMicros = ~0ull;
/// Offset of the key fingerprint in a request frame (tests forge
/// mismatches by patching it and re-sealing the header CRC).
constexpr size_t kFingerprintOffset = 4 + 2 + 8 + 8 + 8 + 8;
/// Offset of the header CRC-32C (covers bytes [0, kFingerprintOffset+4)).
constexpr size_t kHeaderCrcOffset = kFingerprintOffset + 4;
/// Total request-header bytes before the ciphertext payload.
constexpr size_t kRequestHeaderBytes = kHeaderCrcOffset + 4;
} // namespace frame

/// Service tuning knobs.
struct ServiceConfig {
  /// Maximum requests waiting for a worker. Admissions beyond this are
  /// rejected with ResourceExhausted.
  size_t QueueCapacity = 16;
  /// Upper bound on requests executed concurrently per dispatcher wave;
  /// 0 = the pool's thread count.
  size_t MaxBatch = 0;
  /// Deadline applied to requests that carry none (0 = no default). A
  /// client opts out explicitly with encryptRequest(DeadlineSeconds=0).
  double DefaultDeadlineSeconds = 0.0;
  /// Hard process memory budget installed on the ResourceGovernor at
  /// construction (0 = leave the governor's current budget untouched,
  /// e.g. one set via ACE_MEMORY_BUDGET). Requests whose working set
  /// would exceed it are shed in-band with ResourceExhausted after cold
  /// keys have been reclaimed; in-flight work is never crashed. See
  /// docs/memory.md.
  size_t MemoryBudgetBytes = 0;
  /// Generate each session's rotation keys lazily through an LRU
  /// RotationKeyCache (on-demand keygen, governor-charged, evictable
  /// under pressure) instead of eagerly at openSession(). Defaults on:
  /// a resident server must not hold every session's full key set
  /// forever. Off restores the PR 6 eager behavior.
  bool LazySessionKeys = true;
  /// Per-session LRU bound on cached rotation-key bytes (0 = only the
  /// process budget limits them). Meaningful only with LazySessionKeys.
  size_t KeyCacheBytesPerSession = 0;
  /// When > 0, the dispatcher evicts the cached rotation keys of
  /// sessions idle longer than this many seconds (the keys regenerate
  /// transparently on the session's next request). 0 disables the
  /// sweep.
  double SessionIdleSeconds = 0.0;
};

/// Point-in-time service health, the serving analogue of the bench
/// metadata block. Counter semantics: every submit() either Accepted or
/// Rejected; every accepted request ends in exactly one of Completed,
/// Failed, DeadlineExpired, or Cancelled.
struct ServiceStats {
  uint64_t Accepted = 0;
  uint64_t Rejected = 0;
  uint64_t Completed = 0;
  uint64_t Failed = 0;
  uint64_t DeadlineExpired = 0;
  uint64_t Cancelled = 0;
  size_t QueueDepth = 0;
  size_t InFlight = 0;
  size_t OpenSessions = 0;
  /// Requests shed by the memory-budget preflight (each also counts as
  /// Failed — it resolved with a failure Status).
  uint64_t BudgetShed = 0;
  /// Idle-TTL sweeps that evicted a session's cached rotation keys.
  uint64_t IdleKeyEvictions = 0;
  /// Rotation-key bytes currently cached across all open sessions.
  size_t KeyCacheBytes = 0;
  /// Submit-to-completion latency percentiles over completed requests.
  double P50LatencySeconds = 0.0;
  double P99LatencySeconds = 0.0;

  /// One-line JSON object with every field above.
  std::string json() const;
};

/// What a request resolves to. The service never throws and the future
/// never breaks: every accepted request eventually carries either a
/// response frame (ok Outcome) or the Status that failed it.
struct InferenceResponse {
  uint64_t RequestId = 0;
  /// Echo of the client-chosen tag from the request frame.
  uint64_t ClientTag = 0;
  /// The request's trace id: the client's if nonzero, otherwise the
  /// server-assigned one. Also echoed in the response frame and stamped
  /// on every trace event and event-log line the request produced.
  uint64_t TraceId = 0;
  /// Success, or why the request failed (the same code travels in-band
  /// in Bytes so a remote client decodes it without this struct).
  Status Outcome;
  /// Response frame ("ACRS"...); present for failures too, with an empty
  /// ciphertext payload.
  std::vector<uint8_t> Bytes;
  /// Submit-to-completion wall time.
  double LatencySeconds = 0.0;
  /// Stage breakdown: admission-to-dispatch wait and execution wall
  /// time. Negative when the stage never ran (e.g. shed at shutdown).
  double QueueSeconds = -1.0;
  double ExecSeconds = -1.0;
  /// Per-request FHE op-count delta (ct-ct muls, rotations, bootstraps,
  /// wire bytes, ...), populated when telemetry is enabled; all-zero
  /// otherwise. Exact when the request executed on one thread (the
  /// service's per-request fan-out; see docs/serving.md).
  telemetry::CounterSnapshot OpDelta;
  /// Minimum noise budget any FHE op in this request observed.
  double MinNoiseBudgetBits = 0.0;
  bool HasMinNoiseBudget = false;
};

/// Compile once, serve many: one instance owns the worker machinery for
/// one compiled program. Thread-safe: every public method may be called
/// from any thread.
class InferenceService {
public:
  /// \p F / \p State must outlive the service (they are the compiler's
  /// output; sessions share them read-only).
  InferenceService(const air::IrFunction &F, const air::CompileState &State,
                   ServiceConfig Config = ServiceConfig());
  /// Shuts down (failing queued requests) and joins the dispatcher.
  ~InferenceService();

  InferenceService(const InferenceService &) = delete;
  InferenceService &operator=(const InferenceService &) = delete;

  /// Creates a session with fresh key material (runs key generation -
  /// seconds at realistic parameters) and returns its id.
  StatusOr<uint64_t> openSession();

  /// Forgets a session. A request the dispatcher is already executing
  /// completes normally (the worker holds a reference to the key
  /// material); requests still queued fail with KeyMissing when they
  /// reach a worker, as do later submits.
  Status closeSession(uint64_t SessionId);

  /// Client-side: encrypts \p Input under the session's keys into a
  /// request frame. \p DeadlineSeconds < 0 defers to the server's
  /// DefaultDeadlineSeconds; 0 means explicitly unbounded (overriding
  /// that default); positive values bound queue wait + execution,
  /// clamped to at least one microsecond so a tiny budget expires
  /// instead of silently degrading to the default.
  /// \p TraceId propagates end-to-end: it is carried in the request
  /// frame, stamped on every trace event the request produces, echoed
  /// in the response frame, and surfaced in InferenceResponse. 0 lets
  /// the server assign one.
  StatusOr<std::vector<uint8_t>> encryptRequest(uint64_t SessionId,
                                                const nn::Tensor &Input,
                                                uint64_t ClientTag = 0,
                                                double DeadlineSeconds = -1.0,
                                                uint64_t TraceId = 0);

  /// Client-side: decrypts a response frame produced for \p SessionId.
  /// A failure response reconstructs and returns the server's Status.
  StatusOr<std::vector<double>>
  decryptResponse(uint64_t SessionId, const std::vector<uint8_t> &Bytes);

  /// An admitted request: the id cancels it; the future resolves when it
  /// completes (in any state).
  struct Ticket {
    uint64_t Id = 0;
    std::future<InferenceResponse> Result;
  };

  /// Validates the request header synchronously (magic, version, header
  /// CRC, session existence, key fingerprint) and admits the request.
  /// Synchronous failures: DataCorrupt (malformed header), KeyMissing
  /// (unknown session or fingerprint mismatch), ResourceExhausted (queue
  /// full), InvalidArgument (service shut down). Payload problems -
  /// truncated or corrupted ciphertext bytes - surface asynchronously in
  /// the ticket's response.
  StatusOr<Ticket> submit(std::vector<uint8_t> RequestBytes);

  /// Requests cooperative cancellation of a queued or running request.
  /// InvalidArgument when the id is unknown or already resolved.
  Status cancel(uint64_t RequestId);

  /// Snapshot of counters, queue depth, and latency percentiles.
  ServiceStats stats() const;

  /// The per-stage latency histograms (lock-free, unbounded count; see
  /// support/Histogram.h). Queue = admission to dispatch, Exec =
  /// execution wall time, EndToEnd = submit to completion (completed
  /// requests only, matching ServiceStats percentiles), Decrypt =
  /// client-side decryptResponse calls.
  enum class Stage { Queue = 0, Exec, EndToEnd, Decrypt, StageCount };
  static constexpr size_t kStageCount = static_cast<size_t>(Stage::StageCount);
  /// Stable exposition/JSON name ("queue", "exec", "e2e", "decrypt").
  static const char *stageName(Stage S);
  Histogram::Snapshot latencySnapshot(Stage S) const;

  /// Stops admission, fails every queued request with Cancelled, waits
  /// for running requests to finish, and joins the dispatcher.
  /// Idempotent.
  void shutdown();

  /// The CRC-32C fingerprint of a session's public key (what request
  /// frames must carry). 0 for unknown sessions.
  uint32_t sessionKeyFingerprint(uint64_t SessionId) const;

private:
  struct Session;
  struct Request;

  std::shared_ptr<Session> findSession(uint64_t SessionId) const;
  /// Evicts the cached rotation keys of sessions idle past
  /// Config.SessionIdleSeconds. Runs on the dispatcher between waves;
  /// busy sessions (RunMutex held) are skipped, never blocked on.
  void sweepIdleSessions();
  void dispatchLoop();
  void execute(const std::shared_ptr<Request> &R);
  void finish(const std::shared_ptr<Request> &R, Status Outcome,
              std::vector<uint8_t> ResponseBytes);

  const air::IrFunction &F;
  const air::CompileState &State;
  const ServiceConfig Config;

  mutable std::mutex SessionsMutex;
  std::map<uint64_t, std::shared_ptr<Session>> Sessions;
  uint64_t NextSessionId = 1;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<Request>> Queue;
  std::map<uint64_t, std::shared_ptr<Request>> Active; // queued or running
  uint64_t NextRequestId = 1;
  size_t InFlight = 0;
  bool Stopping = false;

  mutable std::mutex StatsMutex;
  ServiceStats Counters;                 // queue/latency fields unused here

  /// Per-stage latency histograms (replaces the PR 6 sample ring:
  /// lock-free recording, unbounded request counts, mergeable).
  std::array<Histogram, kStageCount> StageHist;

  /// Metric registrations (ace_service_*) released in shutdown().
  std::vector<uint64_t> MetricIds;

  std::mutex ShutdownMutex; // serializes the dispatcher join
  std::thread Dispatcher;
};

} // namespace service
} // namespace ace

#endif // ACE_SERVICE_INFERENCESERVICE_H
