//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "service/InferenceService.h"

#include "fhe/Serializer.h"
#include "support/ByteReader.h"
#include "support/ByteWriter.h"
#include "support/Crc32c.h"
#include "support/EventLog.h"
#include "support/MetricsRegistry.h"
#include "support/ResourceGovernor.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>

using namespace ace;
using namespace ace::service;

namespace {

inline void countSvc(telemetry::Counter C) {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(C, 1);
}

/// Largest ErrorCode value a response frame may carry; anything above is
/// a corrupt frame, not a future compatibility case.
constexpr uint8_t kMaxWireErrorCode =
    static_cast<uint8_t>(ErrorCode::DeadlineExceeded);

/// SplitMix64 finisher (the same mix Rng uses to expand seeds). Bijective
/// over u64: for a fixed params seed, distinct session ids can never
/// produce the same key seed.
uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

std::string ServiceStats::json() const {
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"accepted\":%llu,\"rejected\":%llu,\"completed\":%llu,"
      "\"failed\":%llu,\"deadline_expired\":%llu,\"cancelled\":%llu,"
      "\"queue_depth\":%zu,\"in_flight\":%zu,\"open_sessions\":%zu,"
      "\"budget_shed\":%llu,\"idle_key_evictions\":%llu,"
      "\"key_cache_bytes\":%zu,"
      "\"p50_latency_seconds\":%.6f,\"p99_latency_seconds\":%.6f}",
      static_cast<unsigned long long>(Accepted),
      static_cast<unsigned long long>(Rejected),
      static_cast<unsigned long long>(Completed),
      static_cast<unsigned long long>(Failed),
      static_cast<unsigned long long>(DeadlineExpired),
      static_cast<unsigned long long>(Cancelled), QueueDepth, InFlight,
      OpenSessions, static_cast<unsigned long long>(BudgetShed),
      static_cast<unsigned long long>(IdleKeyEvictions), KeyCacheBytes,
      P50LatencySeconds, P99LatencySeconds);
  return Buf;
}

/// One client: private key material over the shared compiled program.
/// RunMutex serializes everything that touches the executor's mutable
/// state (RNG in the encryptor, plaintext cache and timing registries in
/// run()); requests on different sessions never contend on it.
struct InferenceService::Session {
  uint64_t Id = 0;
  std::unique_ptr<codegen::CkksExecutor> Exec;
  uint32_t Fingerprint = 0;
  std::mutex RunMutex;
  /// steady_clock micros of the last request activity; the dispatcher's
  /// idle sweep evicts cached keys of sessions cold past the TTL.
  std::atomic<int64_t> LastUsedUs{0};
};

namespace {
int64_t steadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

struct InferenceService::Request {
  uint64_t Id = 0;
  uint64_t SessionId = 0;
  uint64_t ClientTag = 0;
  /// Client-chosen (nonzero) or server-assigned trace id.
  uint64_t TraceId = 0;
  uint32_t Fingerprint = 0;
  Deadline Limit;
  CancellationSource Source;
  std::vector<uint8_t> Bytes; // full request frame; payload after header
  std::promise<InferenceResponse> Promise;
  std::chrono::steady_clock::time_point EnqueuedAt;
  /// Stage seconds, filled in as the request moves; negative = the
  /// stage never ran.
  double QueueSeconds = -1.0;
  double ExecSeconds = -1.0;
  /// Per-request telemetry attribution (op deltas, min noise budget,
  /// span breakdown), populated while execute() holds a RequestScope.
  telemetry::RequestContext Ctx;
};

const char *InferenceService::stageName(Stage S) {
  switch (S) {
  case Stage::Queue:
    return "queue";
  case Stage::Exec:
    return "exec";
  case Stage::EndToEnd:
    return "e2e";
  case Stage::Decrypt:
    return "decrypt";
  case Stage::StageCount:
    break;
  }
  return "unknown";
}

Histogram::Snapshot InferenceService::latencySnapshot(Stage S) const {
  return StageHist[static_cast<size_t>(S)].snapshot();
}

InferenceService::InferenceService(const air::IrFunction &F,
                                   const air::CompileState &State,
                                   ServiceConfig Config)
    : F(F), State(State), Config(Config) {
  // Install the configured hard budget before any session can charge
  // against it. 0 leaves an externally configured budget
  // (ACE_MEMORY_BUDGET / ace_set_memory_budget) in place.
  if (Config.MemoryBudgetBytes > 0)
    ResourceGovernor::instance().setBudgetBytes(Config.MemoryBudgetBytes);
  // Export the service's health through the process metrics registry
  // (docs/observability.md). Callbacks run at export time only and take
  // the same locks stats() does; registrations are released in
  // shutdown() before the dispatcher joins.
  auto &Reg = metrics::MetricsRegistry::instance();
  for (size_t I = 0; I < kStageCount; ++I)
    MetricIds.push_back(Reg.addHistogram(
        "ace_service_stage_seconds",
        "Per-stage request latency (queue wait, execution, end-to-end, "
        "client decrypt).",
        std::string("stage=\"") + stageName(static_cast<Stage>(I)) + "\"",
        &StageHist[I]));
  MetricIds.push_back(Reg.addGauge(
      "ace_service_queue_depth", "Requests waiting for a dispatcher wave.",
      "", [this] {
        std::lock_guard<std::mutex> Lock(QueueMutex);
        return static_cast<double>(Queue.size());
      }));
  MetricIds.push_back(Reg.addGauge(
      "ace_service_in_flight", "Requests currently executing.", "",
      [this] {
        std::lock_guard<std::mutex> Lock(QueueMutex);
        return static_cast<double>(InFlight);
      }));
  MetricIds.push_back(Reg.addGauge(
      "ace_service_open_sessions", "Sessions currently open.", "",
      [this] {
        std::lock_guard<std::mutex> Lock(SessionsMutex);
        return static_cast<double>(Sessions.size());
      }));
  MetricIds.push_back(Reg.addGauge(
      "ace_service_key_cache_bytes",
      "Rotation-key bytes cached across all open sessions.", "", [this] {
        std::lock_guard<std::mutex> Lock(SessionsMutex);
        size_t Bytes = 0;
        for (const auto &[Id, S] : Sessions)
          if (auto *Cache = S->Exec->keyCache())
            Bytes += Cache->stats().ResidentBytes;
        return static_cast<double>(Bytes);
      }));
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

InferenceService::~InferenceService() { shutdown(); }

StatusOr<uint64_t> InferenceService::openSession() {
  auto S = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    S->Id = NextSessionId++;
  }
  S->Exec = std::make_unique<codegen::CkksExecutor>(F, State);
  // Resident-server key discipline: rotation keys materialize on first
  // use and stay evictable instead of being generated eagerly and held
  // forever (docs/memory.md). Relin/conjugation keys stay eager.
  if (Config.LazySessionKeys)
    S->Exec->enableLazyRotationKeys(Config.KeyCacheBytesPerSession);
  S->LastUsedUs.store(steadyNowUs(), std::memory_order_relaxed);
  // Reseed key generation per session: the compiled parameters carry one
  // deterministic seed, and two sessions sharing it would generate
  // IDENTICAL keys - indistinguishable fingerprints, no client isolation.
  // The SplitMix64 mix is bijective in the session id for a fixed params
  // seed, so no two sessions of one service can alias, and it stays
  // deterministic for a given (params, id) pair.
  uint64_t KeySeed =
      splitmix64(State.SelectedParams.Seed * 0x9E3779B97F4A7C15ull + S->Id);
  if (KeySeed == 0) // setup(0) means "keep the compiled params seed"
    KeySeed = 0x9E3779B97F4A7C15ull;
  ACE_RETURN_IF_ERROR(S->Exec->setup(KeySeed));
  std::vector<uint8_t> PubBytes;
  ACE_RETURN_IF_ERROR(fhe::wire::save(S->Exec->publicKey(), PubBytes));
  S->Fingerprint = crc32c(PubBytes.data(), PubBytes.size());
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  Sessions[S->Id] = S;
  return S->Id;
}

Status InferenceService::closeSession(uint64_t SessionId) {
  std::shared_ptr<Session> S;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    auto It = Sessions.find(SessionId);
    if (It == Sessions.end())
      return Status::invalidArgument("closeSession: unknown session id " +
                                     std::to_string(SessionId));
    S = std::move(It->second);
    Sessions.erase(It);
  }
  // Release cached keys through the governor NOW rather than waiting for
  // the last shared_ptr to drop: the dispatcher can briefly hold a
  // reference past finish(), and a close that leaves governor charges
  // behind reads as a leak in ace_memory_charged_bytes until teardown.
  // The session is already out of the map, so only an in-flight wave can
  // hold RunMutex; blocking here orders the release after that request.
  if (auto *Cache = S->Exec->keyCache()) {
    std::lock_guard<std::mutex> Run(S->RunMutex);
    Cache->releaseAll();
  }
  return Status::success();
}

std::shared_ptr<InferenceService::Session>
InferenceService::findSession(uint64_t SessionId) const {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  auto It = Sessions.find(SessionId);
  return It == Sessions.end() ? nullptr : It->second;
}

uint32_t InferenceService::sessionKeyFingerprint(uint64_t SessionId) const {
  auto S = findSession(SessionId);
  return S ? S->Fingerprint : 0;
}

StatusOr<std::vector<uint8_t>>
InferenceService::encryptRequest(uint64_t SessionId, const nn::Tensor &Input,
                                 uint64_t ClientTag, double DeadlineSeconds,
                                 uint64_t TraceId) {
  auto S = findSession(SessionId);
  if (!S)
    return Status::keyMissing("encryptRequest: unknown session id " +
                              std::to_string(SessionId));
  std::vector<uint8_t> CtBytes;
  {
    // Lock-order discipline (see dispatchLoop): a session mutex is
    // always acquired BEFORE the pool's fork lock, so while holding it
    // we must not fork - InlineRegion keeps the encode/encrypt kernels
    // on this thread.
    std::lock_guard<std::mutex> Run(S->RunMutex);
    ThreadPool::InlineRegion Inline;
    ACE_ASSIGN_OR_RETURN(fhe::Ciphertext Ct, S->Exec->encryptInput(Input));
    ACE_RETURN_IF_ERROR(fhe::wire::save(Ct, CtBytes));
  }
  // Deadline wire encoding: negative defers to the server default (0 on
  // the wire); 0 is explicitly unbounded; positive budgets are clamped
  // to >= 1 micro so a tiny-but-positive budget still expires instead of
  // truncating to 0 and silently picking up the server default.
  uint64_t Micros = 0;
  if (DeadlineSeconds == 0.0)
    Micros = frame::kUnboundedDeadlineMicros;
  else if (DeadlineSeconds > 0.0)
    Micros = std::max<uint64_t>(
        1, static_cast<uint64_t>(DeadlineSeconds * 1e6 + 0.5));

  std::vector<uint8_t> Out;
  ByteWriter W(Out);
  W.u32(frame::kRequestMagic);
  W.u16(frame::kVersion);
  W.u64(SessionId);
  W.u64(ClientTag);
  W.u64(TraceId);
  W.u64(Micros);
  W.u32(S->Fingerprint);
  W.u32(crc32c(Out.data(), Out.size())); // header CRC seals the routing
  W.bytes(CtBytes.data(), CtBytes.size());
  return Out;
}

StatusOr<InferenceService::Ticket>
InferenceService::submit(std::vector<uint8_t> RequestBytes) {
  // Synchronous header validation: cheap, and it keeps garbage out of
  // the queue so a flood of malformed frames cannot displace real work.
  if (RequestBytes.size() < frame::kRequestHeaderBytes)
    return Status::dataCorrupt(
        "request frame truncated: " + std::to_string(RequestBytes.size()) +
        " bytes, header alone is " +
        std::to_string(frame::kRequestHeaderBytes));
  ByteReader Rd(RequestBytes.data(), RequestBytes.size());
  uint32_t Magic = 0, Fp = 0, Crc = 0;
  uint16_t Version = 0;
  uint64_t SessionId = 0, Tag = 0, TraceId = 0, Micros = 0;
  Rd.u32(Magic);
  Rd.u16(Version);
  Rd.u64(SessionId);
  Rd.u64(Tag);
  Rd.u64(TraceId);
  Rd.u64(Micros);
  Rd.u32(Fp);
  Rd.u32(Crc);
  if (Magic != frame::kRequestMagic)
    return Status::dataCorrupt("request frame: bad magic");
  if (Version != frame::kVersion)
    return Status::dataCorrupt("request frame: version " +
                               std::to_string(Version) +
                               " unsupported (this build reads " +
                               std::to_string(frame::kVersion) + ")");
  if (crc32c(RequestBytes.data(), frame::kHeaderCrcOffset) != Crc)
    return Status::dataCorrupt(
        "request frame: header checksum mismatch (bytes corrupted in "
        "transit)");
  if (Rd.atEnd())
    return Status::dataCorrupt("request frame carries no ciphertext payload");
  auto S = findSession(SessionId);
  if (!S)
    return Status::keyMissing("request names unknown session id " +
                              std::to_string(SessionId));
  if (Fp != S->Fingerprint) {
    char Msg[160];
    std::snprintf(Msg, sizeof(Msg),
                  "request key fingerprint %08x does not match session "
                  "%llu's key %08x; the ciphertext was encrypted under "
                  "different keys",
                  Fp, static_cast<unsigned long long>(SessionId),
                  S->Fingerprint);
    return Status::keyMissing(Msg);
  }

  auto R = std::make_shared<Request>();
  R->SessionId = SessionId;
  R->ClientTag = Tag;
  R->TraceId = TraceId;
  R->Fingerprint = Fp;
  R->Bytes = std::move(RequestBytes);
  // kUnboundedDeadlineMicros leaves Limit at never(): the client
  // explicitly opted out of the server default.
  if (Micros > 0 && Micros != frame::kUnboundedDeadlineMicros)
    R->Limit = Deadline::afterMicros(Micros);
  else if (Micros == 0 && Config.DefaultDeadlineSeconds > 0.0)
    R->Limit = Deadline::afterSeconds(Config.DefaultDeadlineSeconds);
  R->EnqueuedAt = std::chrono::steady_clock::now();

  Ticket T;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping)
      return Status::invalidArgument("submit: service is shut down");
    if (Queue.size() >= Config.QueueCapacity) {
      {
        std::lock_guard<std::mutex> SLock(StatsMutex);
        ++Counters.Rejected;
      }
      countSvc(telemetry::Counter::SvcRejected);
      return Status::resourceExhausted(
          "request queue full (" + std::to_string(Queue.size()) +
          " queued, capacity " + std::to_string(Config.QueueCapacity) +
          "); retry after backpressure clears");
    }
    R->Id = NextRequestId++;
    // Server-assigned trace id when the client passed 0: the SplitMix64
    // mix keeps ids well-spread even for consecutive request ids (the
    // raw id is the astronomically-unlikely fallback for a zero mix).
    if (R->TraceId == 0) {
      R->TraceId = splitmix64(R->Id);
      if (R->TraceId == 0)
        R->TraceId = R->Id;
    }
    T.Id = R->Id;
    T.Result = R->Promise.get_future();
    Queue.push_back(R);
    Active[R->Id] = R;
  }
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Counters.Accepted;
  }
  countSvc(telemetry::Counter::SvcAccepted);
  QueueCv.notify_one();
  return StatusOr<Ticket>(std::move(T));
}

Status InferenceService::cancel(uint64_t RequestId) {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  auto It = Active.find(RequestId);
  if (It == Active.end())
    return Status::invalidArgument("cancel: unknown or already-completed "
                                   "request id " +
                                   std::to_string(RequestId));
  It->second->Source.cancel();
  return Status::success();
}

void InferenceService::sweepIdleSessions() {
  const int64_t TtlUs =
      static_cast<int64_t>(Config.SessionIdleSeconds * 1e6);
  const int64_t Now = steadyNowUs();
  std::vector<std::shared_ptr<Session>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    for (const auto &[Id, S] : Sessions)
      Snapshot.push_back(S);
  }
  for (const auto &S : Snapshot) {
    auto *Cache = S->Exec->keyCache();
    if (!Cache)
      continue;
    if (Now - S->LastUsedUs.load(std::memory_order_relaxed) < TtlUs)
      continue;
    // Never block on a busy session: try_lock skips one mid-request (it
    // is not idle anyway) and a session a client is encrypting under.
    std::unique_lock<std::mutex> Run(S->RunMutex, std::try_to_lock);
    if (!Run.owns_lock())
      continue;
    if (Cache->releaseAll() > 0) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.IdleKeyEvictions;
    }
  }
}

void InferenceService::dispatchLoop() {
  telemetry::Telemetry::instance().nameThread("ace-svc-dispatcher");
  // Idle-session sweeps run on a fixed cadence (TTL/2, capped at 1 s)
  // checked at the top of every iteration, not only when the queue wait
  // times out: under sustained load the queue never goes quiet, and cold
  // sessions' keys must still age out on schedule rather than waiting
  // for budget pressure.
  const double SweepPeriod =
      Config.SessionIdleSeconds > 0.0
          ? std::min(Config.SessionIdleSeconds / 2.0, 1.0)
          : 0.0;
  auto LastSweep = std::chrono::steady_clock::now();
  while (true) {
    if (SweepPeriod > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      LastSweep)
                .count() >= SweepPeriod) {
      sweepIdleSessions();
      LastSweep = std::chrono::steady_clock::now();
    }
    std::vector<std::shared_ptr<Request>> Batch;
    bool Draining = false;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      if (SweepPeriod > 0.0) {
        // Bounded wait so the sweep cadence holds over an empty queue; a
        // timeout loops back to the sweep check above.
        bool HasWork = QueueCv.wait_for(
            Lock, std::chrono::duration<double>(SweepPeriod),
            [&] { return Stopping || !Queue.empty(); });
        if (!HasWork)
          continue;
      } else {
        QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      }
      if (Stopping) {
        Batch.assign(Queue.begin(), Queue.end());
        Queue.clear();
        Draining = true;
      } else {
        size_t MaxBatch =
            Config.MaxBatch ? Config.MaxBatch
                            : ThreadPool::instance().numThreads();
        if (MaxBatch == 0)
          MaxBatch = 1;
        // At most one request per session per wave: the wave holds
        // every batched session's mutex across the fork (below), and a
        // second same-session request would self-deadlock. Skipped
        // requests keep their queue position for the next wave.
        std::set<uint64_t> WaveSessions;
        for (auto It = Queue.begin();
             It != Queue.end() && Batch.size() < MaxBatch;) {
          if (!WaveSessions.insert((*It)->SessionId).second) {
            ++It;
            continue;
          }
          Batch.push_back(*It);
          It = Queue.erase(It);
        }
        InFlight += Batch.size();
      }
    }
    if (Draining) {
      for (const auto &R : Batch)
        finish(R,
               Status::cancelled(
                   "service shut down with the request still queued"),
               {});
      return;
    }
    // Lock-order discipline: session mutexes are ALWAYS acquired
    // before the pool's fork lock, and only this thread ever holds
    // both. The wave pre-locks every batched session here; client
    // threads holding a session mutex (encrypt/decrypt) run inline and
    // never touch the fork lock. Workers below therefore take no locks
    // at all - the inversion cycle (fork lock -> session in a worker
    // vs session -> fork lock in a client) cannot form.
    std::vector<std::shared_ptr<Session>> WaveSessions;
    for (const auto &R : Batch)
      if (auto S = findSession(R->SessionId))
        WaveSessions.push_back(S);
    // Canonical acquisition order (session id) so two waves can never
    // hold-and-wait against each other in opposite orders.
    std::sort(WaveSessions.begin(), WaveSessions.end(),
              [](const auto &A, const auto &B) { return A->Id < B->Id; });
    std::vector<std::unique_lock<std::mutex>> WaveLocks;
    WaveLocks.reserve(WaveSessions.size());
    for (const auto &S : WaveSessions)
      WaveLocks.emplace_back(S->RunMutex);
    // Cross-request parallelism: the batch fans out over the pool's
    // workers; each request's own FHE kernels then run inline on that
    // worker (nested parallelFor serializes), so results stay
    // bit-identical at every thread count. A singleton batch runs on
    // this thread and keeps full within-op parallelism.
    if (Batch.size() == 1)
      execute(Batch[0]);
    else
      ThreadPool::instance().parallelFor(
          0, Batch.size(), [&](size_t I) { execute(Batch[I]); });
    WaveLocks.clear();
    WaveSessions.clear();
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      InFlight -= Batch.size();
    }
  }
}

void InferenceService::execute(const std::shared_ptr<Request> &R) {
  // The queue stage ends the moment a worker picks the request up.
  auto DequeuedAt = std::chrono::steady_clock::now();
  R->QueueSeconds =
      std::chrono::duration<double>(DequeuedAt - R->EnqueuedAt).count();
  StageHist[static_cast<size_t>(Stage::Queue)].recordSeconds(
      R->QueueSeconds);

  CancellationToken Token = R->Source.token(R->Limit);
  // Pre-flight poll covers time spent queued: an expired or cancelled
  // request unwinds before its ciphertext is even parsed.
  Status Gate = Token.check("request");
  if (!Gate.ok()) {
    finish(R, std::move(Gate), {});
    return;
  }
  auto S = findSession(R->SessionId);
  if (!S) {
    finish(R,
           Status::keyMissing("session " + std::to_string(R->SessionId) +
                              " was closed while the request was queued"),
           {});
    return;
  }
  S->LastUsedUs.store(steadyNowUs(), std::memory_order_relaxed);
  // Memory-budget preflight (graceful degradation): when the process is
  // over budget even after the governor reclaims cold keys and trims the
  // limb pool, shed THIS incoming request in-band with ResourceExhausted
  // rather than letting an allocation fail deep inside an op. The
  // working-set estimate is a small multiple of the ciphertext payload
  // (input + output + temporaries at the same level).
  {
    size_t PayloadBytes = R->Bytes.size() > frame::kRequestHeaderBytes
                              ? R->Bytes.size() - frame::kRequestHeaderBytes
                              : 0;
    Status Admit = ResourceGovernor::instance().admit(
        4 * PayloadBytes,
        "request " + std::to_string(R->Id) + " admission");
    if (!Admit.ok()) {
      {
        std::lock_guard<std::mutex> SLock(StatsMutex);
        ++Counters.BudgetShed;
      }
      finish(R, std::move(Admit), {});
      return;
    }
  }
  std::vector<uint8_t> CtBytes;
  Status Outcome;
  {
    // Request-scoped attribution: every telemetry counter bumped, span
    // closed, and noise budget observed from here to the end of the
    // block lands on this request's context (payload parse included,
    // so wire bytes attribute too). Nested FHE kernels run inline on
    // this thread (the pool's nesting rule), so the thread-local scope
    // covers the whole execution.
    R->Ctx.TraceId = R->TraceId;
    telemetry::RequestScope Scope(R->Ctx);
    auto Ct = fhe::wire::loadCiphertext(
        S->Exec->context(), R->Bytes.data() + frame::kRequestHeaderBytes,
        R->Bytes.size() - frame::kRequestHeaderBytes);
    if (!Ct.ok()) {
      Outcome = Ct.status();
    } else {
      // No lock here: the dispatcher holds this session's RunMutex for
      // the whole wave (one request per session per wave), so the
      // executor is exclusively ours.
      auto Result = S->Exec->run(*Ct, Token);
      if (Result.ok())
        Outcome =
            fhe::wire::save(*Result, CtBytes); // injected faults land here
      else
        Outcome = Result.status();
    }
  }
  R->ExecSeconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - DequeuedAt)
                       .count();
  StageHist[static_cast<size_t>(Stage::Exec)].recordSeconds(R->ExecSeconds);
  // Re-stamp at completion: a request running longer than the idle TTL
  // must not leave its session looking idle (and its freshly built keys
  // sweepable) the instant it finishes.
  S->LastUsedUs.store(steadyNowUs(), std::memory_order_relaxed);
  if (!Outcome.ok())
    CtBytes.clear();
  finish(R, std::move(Outcome), std::move(CtBytes));
}

void InferenceService::finish(const std::shared_ptr<Request> &R,
                              Status Outcome,
                              std::vector<uint8_t> CtBytes) {
  InferenceResponse Resp;
  Resp.RequestId = R->Id;
  Resp.ClientTag = R->ClientTag;
  Resp.TraceId = R->TraceId;
  Resp.LatencySeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    R->EnqueuedAt)
          .count();
  Resp.QueueSeconds = R->QueueSeconds;
  Resp.ExecSeconds = R->ExecSeconds;
  Resp.OpDelta = R->Ctx.opSnapshot();
  if (R->Ctx.SawHealth) {
    Resp.MinNoiseBudgetBits = R->Ctx.MinNoiseBudgetBits;
    Resp.HasMinNoiseBudget = true;
  }

  ByteWriter W(Resp.Bytes);
  W.u32(frame::kResponseMagic);
  W.u16(frame::kVersion);
  W.u64(R->SessionId);
  W.u64(R->ClientTag);
  W.u64(R->Id);
  W.u64(R->TraceId);
  W.u8(static_cast<uint8_t>(Outcome.code()));
  const std::string &Msg = Outcome.message();
  W.u32(static_cast<uint32_t>(Msg.size()));
  W.bytes(Msg.data(), Msg.size());
  W.u32(R->Fingerprint);
  if (Outcome.ok())
    W.bytes(CtBytes.data(), CtBytes.size());

  if (Outcome.ok())
    StageHist[static_cast<size_t>(Stage::EndToEnd)].recordSeconds(
        Resp.LatencySeconds);

  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Active.erase(R->Id);
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    switch (Outcome.code()) {
    case ErrorCode::Ok:
      ++Counters.Completed;
      break;
    case ErrorCode::DeadlineExceeded:
      ++Counters.DeadlineExpired;
      break;
    case ErrorCode::Cancelled:
      ++Counters.Cancelled;
      break;
    default:
      ++Counters.Failed;
      break;
    }
  }

  if (telemetry::enabled()) {
    // One async span per request in the Chrome trace, back-dated to
    // admission so queue wait and execution render as one bar,
    // correlated across threads by the trace id.
    auto &T = telemetry::Telemetry::instance();
    double EndUs = T.nowUs();
    telemetry::TraceEvent B;
    B.Name = "request";
    B.Category = "service";
    B.Phase = 'b';
    B.Id = R->TraceId;
    B.TsUs = EndUs - Resp.LatencySeconds * 1e6;
    T.addEvent(std::move(B));
    telemetry::TraceEvent E;
    E.Name = "request";
    E.Category = "service";
    E.Phase = 'e';
    E.Id = R->TraceId;
    E.TsUs = EndUs;
    T.addEvent(std::move(E));
  }

  if (obs::EventLog::instance().enabled()) {
    obs::RequestLogEntry LE;
    LE.SessionId = R->SessionId;
    LE.TraceId = R->TraceId;
    LE.RequestId = R->Id;
    LE.ClientTag = R->ClientTag;
    LE.StatusName = errorCodeName(Outcome.code());
    LE.QueueSeconds = R->QueueSeconds;
    LE.ExecSeconds = R->ExecSeconds;
    LE.TotalSeconds = Resp.LatencySeconds;
    LE.OpDelta = Resp.OpDelta;
    LE.MinNoiseBudgetBits = Resp.MinNoiseBudgetBits;
    LE.HasMinNoiseBudget = Resp.HasMinNoiseBudget;
    LE.Spans = R->Ctx.Spans;
    obs::EventLog::instance().record(LE);
  }
  switch (Outcome.code()) {
  case ErrorCode::Ok:
    countSvc(telemetry::Counter::SvcCompleted);
    break;
  case ErrorCode::DeadlineExceeded:
    countSvc(telemetry::Counter::SvcDeadlineExpired);
    break;
  case ErrorCode::Cancelled:
    countSvc(telemetry::Counter::SvcCancelled);
    break;
  default:
    countSvc(telemetry::Counter::SvcFailed);
    break;
  }
  Resp.Outcome = std::move(Outcome);
  R->Promise.set_value(std::move(Resp));
}

StatusOr<std::vector<double>>
InferenceService::decryptResponse(uint64_t SessionId,
                                  const std::vector<uint8_t> &Bytes) {
  auto S = findSession(SessionId);
  if (!S)
    return Status::keyMissing("decryptResponse: unknown session id " +
                              std::to_string(SessionId));
  auto DecryptStart = std::chrono::steady_clock::now();
  ByteReader Rd(Bytes.data(), Bytes.size());
  uint32_t Magic = 0, Fp = 0, MsgLen = 0;
  uint16_t Version = 0;
  uint64_t Sid = 0, Tag = 0, Rid = 0, TraceId = 0;
  uint8_t Code = 0;
  if (!Rd.u32(Magic) || Magic != frame::kResponseMagic)
    return Status::dataCorrupt("response frame: bad magic");
  if (!Rd.u16(Version) || Version != frame::kVersion)
    return Status::dataCorrupt("response frame: unsupported version");
  if (!Rd.u64(Sid) || !Rd.u64(Tag) || !Rd.u64(Rid) || !Rd.u64(TraceId) ||
      !Rd.u8(Code) || !Rd.u32(MsgLen))
    return Status::dataCorrupt("response frame: truncated header");
  (void)TraceId; // parsed for layout; InferenceResponse carries it
  if (Code > kMaxWireErrorCode)
    return Status::dataCorrupt("response frame: unknown status code " +
                               std::to_string(Code));
  if (MsgLen > Rd.remaining())
    return Status::dataCorrupt("response frame: message length overruns "
                               "the frame");
  std::string Msg(MsgLen, '\0');
  if (MsgLen > 0)
    Rd.bytes(&Msg[0], MsgLen);
  if (!Rd.u32(Fp))
    return Status::dataCorrupt("response frame: truncated fingerprint");
  if (Sid != SessionId || Fp != S->Fingerprint)
    return Status::keyMissing(
        "response belongs to session " + std::to_string(Sid) +
        ", not session " + std::to_string(SessionId));
  if (Code != static_cast<uint8_t>(ErrorCode::Ok))
    return Status::error(static_cast<ErrorCode>(Code), std::move(Msg));
  ACE_ASSIGN_OR_RETURN(fhe::Ciphertext Ct,
                       fhe::wire::loadCiphertext(S->Exec->context(),
                                                 Rd.cursor(),
                                                 Rd.remaining()));
  // Same lock-order discipline as encryptRequest: never fork while
  // holding a session mutex.
  StatusOr<std::vector<double>> Logits = [&] {
    std::lock_guard<std::mutex> Run(S->RunMutex);
    ThreadPool::InlineRegion Inline;
    return S->Exec->decryptLogits(Ct);
  }();
  StageHist[static_cast<size_t>(Stage::Decrypt)].recordSeconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    DecryptStart)
          .count());
  return Logits;
}

ServiceStats InferenceService::stats() const {
  ServiceStats Out;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Out = Counters;
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Out.QueueDepth = Queue.size();
    Out.InFlight = InFlight;
  }
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Out.OpenSessions = Sessions.size();
    for (const auto &[Id, S] : Sessions)
      if (auto *Cache = S->Exec->keyCache())
        Out.KeyCacheBytes += Cache->stats().ResidentBytes;
  }
  // Percentiles come from the end-to-end histogram (completed requests
  // only, matching the counter semantics): within one log-linear bucket
  // - at most ~12.5% relative error - of the exact order statistic,
  // over EVERY completed request, not a sliding sample window.
  Histogram::Snapshot E2e = latencySnapshot(Stage::EndToEnd);
  Out.P50LatencySeconds = E2e.quantileSeconds(0.50);
  Out.P99LatencySeconds = E2e.quantileSeconds(0.99);
  return Out;
}

void InferenceService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  std::lock_guard<std::mutex> Lock(ShutdownMutex);
  if (Dispatcher.joinable())
    Dispatcher.join();
  // Release metric registrations: the gauge callbacks capture `this`
  // and must not outlive the service (an at-exit exposition dump may
  // run long after this object is gone).
  auto &Reg = metrics::MetricsRegistry::instance();
  for (uint64_t Id : MetricIds)
    Reg.remove(Id);
  MetricIds.clear();
}
