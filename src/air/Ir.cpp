//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "air/Ir.h"

#include <cassert>
#include <map>
#include <set>
#include <sstream>

using namespace ace;
using namespace ace::air;

DialectKind ace::air::dialectOf(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::NK_Input:
  case NodeKind::NK_ConstVec:
  case NodeKind::NK_Return:
    return DialectKind::DK_Common;
  case NodeKind::NK_NnConv:
  case NodeKind::NK_NnGemm:
  case NodeKind::NK_NnRelu:
  case NodeKind::NK_NnAvgPool:
  case NodeKind::NK_NnGlobalAvgPool:
  case NodeKind::NK_NnFlatten:
  case NodeKind::NK_NnReshape:
  case NodeKind::NK_NnAdd:
  case NodeKind::NK_NnBatchNorm:
  case NodeKind::NK_NnStridedSlice:
    return DialectKind::DK_Nn;
  case NodeKind::NK_VecAdd:
  case NodeKind::NK_VecMul:
  case NodeKind::NK_VecRoll:
  case NodeKind::NK_VecSlice:
  case NodeKind::NK_VecBroadcast:
  case NodeKind::NK_VecPad:
  case NodeKind::NK_VecTile:
  case NodeKind::NK_VecReshape:
  case NodeKind::NK_VecRelu:
  case NodeKind::NK_VecMatDiag:
    return DialectKind::DK_Vector;
  case NodeKind::NK_SiheRotate:
  case NodeKind::NK_SiheAdd:
  case NodeKind::NK_SiheSub:
  case NodeKind::NK_SiheMul:
  case NodeKind::NK_SiheNeg:
  case NodeKind::NK_SiheEncode:
  case NodeKind::NK_SiheDecode:
  case NodeKind::NK_SiheAddConst:
  case NodeKind::NK_SiheMulConst:
    return DialectKind::DK_Sihe;
  case NodeKind::NK_CkksRotate:
  case NodeKind::NK_CkksAdd:
  case NodeKind::NK_CkksSub:
  case NodeKind::NK_CkksMul:
  case NodeKind::NK_CkksNeg:
  case NodeKind::NK_CkksEncode:
  case NodeKind::NK_CkksAddConst:
  case NodeKind::NK_CkksMulConst:
  case NodeKind::NK_CkksRelin:
  case NodeKind::NK_CkksRescale:
  case NodeKind::NK_CkksModSwitch:
  case NodeKind::NK_CkksUpscale:
  case NodeKind::NK_CkksDownscale:
  case NodeKind::NK_CkksBootstrap:
    return DialectKind::DK_Ckks;
  case NodeKind::NK_PolyDecomp:
  case NodeKind::NK_PolyModUp:
  case NodeKind::NK_PolyModDown:
  case NodeKind::NK_PolyRescale:
  case NodeKind::NK_PolyAutomorphism:
  case NodeKind::NK_HwNtt:
  case NodeKind::NK_HwIntt:
  case NodeKind::NK_HwModAdd:
  case NodeKind::NK_HwModSub:
  case NodeKind::NK_HwModMul:
  case NodeKind::NK_HwModMulAdd:
  case NodeKind::NK_PolyRnsLoop:
    return DialectKind::DK_Poly;
  }
  return DialectKind::DK_Common;
}

const char *ace::air::nodeKindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::NK_Input:
    return "input";
  case NodeKind::NK_ConstVec:
    return "const";
  case NodeKind::NK_Return:
    return "retv";
  case NodeKind::NK_NnConv:
    return "NN.conv";
  case NodeKind::NK_NnGemm:
    return "NN.gemm";
  case NodeKind::NK_NnRelu:
    return "NN.relu";
  case NodeKind::NK_NnAvgPool:
    return "NN.average_pool";
  case NodeKind::NK_NnGlobalAvgPool:
    return "NN.global_average_pool";
  case NodeKind::NK_NnFlatten:
    return "NN.flatten";
  case NodeKind::NK_NnReshape:
    return "NN.reshape";
  case NodeKind::NK_NnAdd:
    return "NN.add";
  case NodeKind::NK_NnBatchNorm:
    return "NN.batch_norm";
  case NodeKind::NK_NnStridedSlice:
    return "NN.strided_slice";
  case NodeKind::NK_VecAdd:
    return "VECTOR.add";
  case NodeKind::NK_VecMul:
    return "VECTOR.mul";
  case NodeKind::NK_VecRoll:
    return "VECTOR.roll";
  case NodeKind::NK_VecSlice:
    return "VECTOR.slice";
  case NodeKind::NK_VecBroadcast:
    return "VECTOR.broadcast";
  case NodeKind::NK_VecPad:
    return "VECTOR.pad";
  case NodeKind::NK_VecTile:
    return "VECTOR.tile";
  case NodeKind::NK_VecReshape:
    return "VECTOR.reshape";
  case NodeKind::NK_VecRelu:
    return "VECTOR.relu";
  case NodeKind::NK_VecMatDiag:
    return "VECTOR.mat_diag";
  case NodeKind::NK_SiheRotate:
    return "SIHE.rotate";
  case NodeKind::NK_SiheAdd:
    return "SIHE.add";
  case NodeKind::NK_SiheSub:
    return "SIHE.sub";
  case NodeKind::NK_SiheMul:
    return "SIHE.mul";
  case NodeKind::NK_SiheNeg:
    return "SIHE.neg";
  case NodeKind::NK_SiheEncode:
    return "SIHE.encode";
  case NodeKind::NK_SiheDecode:
    return "SIHE.decode";
  case NodeKind::NK_SiheAddConst:
    return "SIHE.add_const";
  case NodeKind::NK_SiheMulConst:
    return "SIHE.mul_const";
  case NodeKind::NK_CkksRotate:
    return "CKKS.rotate";
  case NodeKind::NK_CkksAdd:
    return "CKKS.add";
  case NodeKind::NK_CkksSub:
    return "CKKS.sub";
  case NodeKind::NK_CkksMul:
    return "CKKS.mul";
  case NodeKind::NK_CkksNeg:
    return "CKKS.neg";
  case NodeKind::NK_CkksEncode:
    return "CKKS.encode";
  case NodeKind::NK_CkksAddConst:
    return "CKKS.add_const";
  case NodeKind::NK_CkksMulConst:
    return "CKKS.mul_const";
  case NodeKind::NK_CkksRelin:
    return "CKKS.relin";
  case NodeKind::NK_CkksRescale:
    return "CKKS.rescale";
  case NodeKind::NK_CkksModSwitch:
    return "CKKS.modswitch";
  case NodeKind::NK_CkksUpscale:
    return "CKKS.upscale";
  case NodeKind::NK_CkksDownscale:
    return "CKKS.downscale";
  case NodeKind::NK_CkksBootstrap:
    return "CKKS.bootstrap";
  case NodeKind::NK_PolyDecomp:
    return "POLY.decomp";
  case NodeKind::NK_PolyModUp:
    return "POLY.mod_up";
  case NodeKind::NK_PolyModDown:
    return "POLY.mod_down";
  case NodeKind::NK_PolyRescale:
    return "POLY.rescale";
  case NodeKind::NK_PolyAutomorphism:
    return "POLY.automorphism";
  case NodeKind::NK_HwNtt:
    return "POLY.hw_ntt";
  case NodeKind::NK_HwIntt:
    return "POLY.hw_intt";
  case NodeKind::NK_HwModAdd:
    return "POLY.hw_modadd";
  case NodeKind::NK_HwModSub:
    return "POLY.hw_modsub";
  case NodeKind::NK_HwModMul:
    return "POLY.hw_modmul";
  case NodeKind::NK_HwModMulAdd:
    return "POLY.hw_modmuladd";
  case NodeKind::NK_PolyRnsLoop:
    return "POLY.rns_loop";
  }
  return "unknown";
}

const char *ace::air::typeKindName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::TK_Tensor:
    return "Tensor";
  case TypeKind::TK_Vector:
    return "Vector";
  case TypeKind::TK_Plain:
    return "Plain";
  case TypeKind::TK_Cipher:
    return "Cipher";
  case TypeKind::TK_Cipher3:
    return "Cipher3";
  case TypeKind::TK_Poly:
    return "Poly";
  case TypeKind::TK_None:
    return "None";
  }
  return "?";
}

const char *ace::air::originKindName(OriginKind Kind) {
  switch (Kind) {
  case OriginKind::OR_Input:
    return "input";
  case OriginKind::OR_Conv:
    return "conv";
  case OriginKind::OR_Relu:
    return "relu";
  case OriginKind::OR_Bootstrap:
    return "bootstrap";
  case OriginKind::OR_Pool:
    return "pool";
  case OriginKind::OR_Gemm:
    return "gemm";
  case OriginKind::OR_Add:
    return "add";
  case OriginKind::OR_Other:
    return "other";
  }
  return "?";
}

IrNode *IrFunction::create(NodeKind Kind, TypeKind Type,
                           std::vector<IrNode *> Operands,
                           OriginKind Origin) {
  auto Node = std::make_unique<IrNode>(Kind, Type);
  Node->Operands = std::move(Operands);
  Node->Origin = Origin;
  Node->Id = NextId++;
  IrNode *Raw = Node.get();
  Nodes.push_back(std::move(Node));
  return Raw;
}

IrNode *IrFunction::addInput(const std::string &InputName, TypeKind Type) {
  IrNode *Node = create(NodeKind::NK_Input, Type, {}, OriginKind::OR_Input);
  Node->Name = InputName;
  Inputs.push_back(Node);
  return Node;
}

void IrFunction::setReturn(IrNode *Value) {
  assert(Value && "null return value");
  if (!ReturnNode)
    ReturnNode = create(NodeKind::NK_Return, TypeKind::TK_None, {Value});
  else
    ReturnNode->Operands = {Value};
}

void IrFunction::clear() {
  Nodes.clear();
  Inputs.clear();
  ReturnNode = nullptr;
  NextId = 0;
}

size_t IrFunction::countDialect(DialectKind Dialect) const {
  size_t Count = 0;
  for (const auto &N : Nodes)
    Count += dialectOf(N->Kind) == Dialect;
  return Count;
}

void IrFunction::renumber() {
  int Id = 0;
  for (auto &N : Nodes)
    N->Id = Id++;
  NextId = Id;
}

std::string ace::air::printFunction(const IrFunction &F) {
  std::ostringstream Out;
  Out << "func " << F.name() << "(";
  for (size_t I = 0; I < F.inputs().size(); ++I) {
    if (I)
      Out << ", ";
    Out << typeKindName(F.inputs()[I]->Type) << " %" << F.inputs()[I]->Id
        << " \"" << F.inputs()[I]->Name << "\"";
  }
  Out << ") {\n";
  for (const auto &N : F.nodes()) {
    if (N->Kind == NodeKind::NK_Input)
      continue;
    Out << "  %" << N->Id << " : " << typeKindName(N->Type) << " = "
        << nodeKindName(N->Kind);
    for (const IrNode *Op : N->Operands)
      Out << " %" << Op->Id;
    if (!N->Ints.empty()) {
      Out << " [";
      for (size_t I = 0; I < N->Ints.size(); ++I)
        Out << (I ? " " : "") << N->Ints[I];
      Out << "]";
    }
    if (N->Scalar != 0.0)
      Out << " scalar=" << N->Scalar;
    if (!N->Data.empty())
      Out << " data<" << N->Data.size() << ">";
    if (N->CkksLevel >= 0)
      Out << " level=" << N->CkksLevel << " scale=" << N->CkksScale;
    if (!N->Name.empty())
      Out << " \"" << N->Name << "\"";
    Out << "\n";
  }
  Out << "}\n";
  return Out.str();
}

Status
ace::air::verifyFunction(const IrFunction &F,
                         const std::vector<DialectKind> &AllowedDialects) {
  std::set<const IrNode *> Seen;
  bool SawReturn = false;
  for (const auto &N : F.nodes()) {
    // SSA: operands precede their users.
    for (const IrNode *Op : N->Operands)
      if (!Seen.count(Op))
        return Status::error("node %" + std::to_string(N->Id) + " (" +
                             nodeKindName(N->Kind) +
                             ") uses a value defined later");
    Seen.insert(N.get());

    if (!AllowedDialects.empty()) {
      DialectKind D = dialectOf(N->Kind);
      bool Allowed = D == DialectKind::DK_Common;
      for (DialectKind A : AllowedDialects)
        Allowed |= A == D;
      if (!Allowed)
        return Status::error("node %" + std::to_string(N->Id) + " (" +
                             nodeKindName(N->Kind) +
                             ") outside the allowed dialects");
    }

    // Kind-specific signature checks (paper Tables 3-7).
    auto Expect = [&](bool Cond, const char *Message) {
      return Cond ? Status::success()
                  : Status::error("node %" + std::to_string(N->Id) + " (" +
                                  nodeKindName(N->Kind) + "): " + Message);
    };
    Status S = Status::success();
    switch (N->Kind) {
    case NodeKind::NK_SiheRotate:
    case NodeKind::NK_CkksRotate:
      S = Expect(N->Operands.size() == 1 &&
                     N->Operands[0]->Type == TypeKind::TK_Cipher &&
                     N->Type == TypeKind::TK_Cipher,
                 "rotate requires Cipher -> Cipher");
      break;
    case NodeKind::NK_SiheMul:
      S = Expect(N->Operands.size() == 2 &&
                     N->Operands[0]->Type == TypeKind::TK_Cipher &&
                     (N->Operands[1]->Type == TypeKind::TK_Cipher ||
                      N->Operands[1]->Type == TypeKind::TK_Plain),
                 "mul requires Cipher x (Cipher|Plain)");
      break;
    case NodeKind::NK_CkksMul:
      // ct*ct yields Cipher3 (paper Table 6); ct*pt keeps the operand's
      // degree (the lazy pipeline multiplies plaintexts into deferred
      // Cipher3 values, see docs/compiler.md).
      if (N->Operands.size() == 2 &&
          N->Operands[1]->Type == TypeKind::TK_Cipher)
        S = Expect(N->Operands[0]->Type == TypeKind::TK_Cipher &&
                       N->Type == TypeKind::TK_Cipher3,
                   "ciphertext product must be Cipher x Cipher -> Cipher3");
      else
        S = Expect(N->Operands.size() == 2 &&
                       N->Operands[1]->Type == TypeKind::TK_Plain &&
                       N->Type == N->Operands[0]->Type &&
                       (N->Type == TypeKind::TK_Cipher ||
                        N->Type == TypeKind::TK_Cipher3),
                   "plaintext product must keep the ciphertext operand's "
                   "degree");
      break;
    case NodeKind::NK_CkksAdd:
    case NodeKind::NK_CkksSub:
      // Additions carry the widest operand degree so a deferred (fused)
      // relinearization downstream sees a Cipher3-typed value.
      if (N->Operands.size() == 2 &&
          N->Operands[1]->Type != TypeKind::TK_Plain) {
        bool AnyC3 = N->Operands[0]->Type == TypeKind::TK_Cipher3 ||
                     N->Operands[1]->Type == TypeKind::TK_Cipher3;
        S = Expect(N->Type == (AnyC3 ? TypeKind::TK_Cipher3
                                     : TypeKind::TK_Cipher),
                   "add/sub must carry the widest operand degree");
      } else {
        S = Expect(N->Operands.size() == 2 &&
                       N->Type == N->Operands[0]->Type,
                   "plaintext add/sub must keep the ciphertext operand's "
                   "degree");
      }
      break;
    case NodeKind::NK_CkksMulConst:
    case NodeKind::NK_CkksAddConst:
      S = Expect(N->Operands.size() == 1 &&
                     N->Type == N->Operands[0]->Type &&
                     (N->Type == TypeKind::TK_Cipher ||
                      N->Type == TypeKind::TK_Cipher3),
                 "scalar ops must keep the ciphertext operand's degree");
      break;
    case NodeKind::NK_CkksRelin:
      S = Expect(N->Operands.size() == 1 &&
                     N->Operands[0]->Type == TypeKind::TK_Cipher3 &&
                     N->Type == TypeKind::TK_Cipher,
                 "relin requires Cipher3 -> Cipher");
      break;
    case NodeKind::NK_SiheEncode:
    case NodeKind::NK_CkksEncode:
      S = Expect(N->Type == TypeKind::TK_Plain,
                 "encode must produce Plain");
      break;
    case NodeKind::NK_CkksRescale:
    case NodeKind::NK_CkksModSwitch:
    case NodeKind::NK_CkksBootstrap:
      S = Expect(N->Operands.size() == 1 &&
                     (N->Operands[0]->Type == TypeKind::TK_Cipher ||
                      N->Operands[0]->Type == TypeKind::TK_Cipher3) &&
                     N->Type == N->Operands[0]->Type,
                 "scale management preserves the operand type");
      break;
    case NodeKind::NK_VecMatDiag:
      // Ints = {Stride, Capacity, NumDiags, d_0..d_{NumDiags-1}}; the
      // mask operand stacks one Slots-length row per listed diagonal.
      S = Expect(N->Operands.size() == 2 &&
                     N->Operands[0]->Type == TypeKind::TK_Cipher &&
                     N->Operands[1]->Type == TypeKind::TK_Vector &&
                     N->Type == TypeKind::TK_Cipher &&
                     N->Ints.size() >= 3 &&
                     N->Ints.size() ==
                         3 + static_cast<size_t>(N->Ints[2]) &&
                     N->Ints[2] > 0 &&
                     !N->Operands[1]->Data.empty() &&
                     N->Operands[1]->Data.size() %
                             static_cast<size_t>(N->Ints[2]) ==
                         0,
                 "mat_diag requires Cipher x Vector -> Cipher with "
                 "{stride, capacity, count, diagonals...} attributes");
      break;
    case NodeKind::NK_Return:
      SawReturn = true;
      break;
    default:
      break;
    }
    if (S)
      return S;
  }
  if (F.returnValue() && !SawReturn)
    return Status::error("function has a return value but no return node");
  return Status::success();
}
