//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-level IR at the heart of the compiler (paper Secs. 3.2, 4).
/// One node class carries all five dialects - NN, VECTOR, SIHE, CKKS, POLY
/// (paper Tables 3-7) - discriminated by NodeKind, LLVM-style. A function
/// is a topologically ordered list of SSA nodes; lowering passes rewrite
/// functions from one dialect into the next while several dialects may
/// coexist mid-pipeline (e.g. SIHE.encode wrapping a VECTOR constant, as
/// in paper Listing 3). Every node keeps an OriginKind tag naming the NN
/// operator it descends from, which powers the Figure 6 per-operator time
/// breakdown.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_AIR_IR_H
#define ACE_AIR_IR_H

#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ace {
namespace air {

/// Dialect (abstraction level) of a node (paper Table 2).
enum class DialectKind {
  DK_Common, ///< inputs, constants, returns
  DK_Nn,
  DK_Vector,
  DK_Sihe,
  DK_Ckks,
  DK_Poly,
};

/// All node kinds across the five dialects.
enum class NodeKind {
  // Common.
  NK_Input,      ///< encrypted function argument (Cipher)
  NK_ConstVec,   ///< cleartext constant vector (compile-time data)
  NK_Return,     ///< function result marker

  // NN dialect (paper Table 3); operands are tensors.
  NK_NnConv,
  NK_NnGemm,
  NK_NnRelu,
  NK_NnAvgPool,
  NK_NnGlobalAvgPool,
  NK_NnFlatten,
  NK_NnReshape,
  NK_NnAdd,
  NK_NnBatchNorm,
  NK_NnStridedSlice,

  // VECTOR dialect (paper Table 4).
  NK_VecAdd,
  NK_VecMul,
  NK_VecRoll,
  NK_VecSlice,
  NK_VecBroadcast,
  NK_VecPad,
  NK_VecTile,
  NK_VecReshape,
  NK_VecRelu, ///< nonlinearity kept abstract until the SIHE level
  /// Diagonal-form matrix-vector product: operand 0 is the input vector
  /// (Cipher), operand 1 a ConstVec holding the stacked diagonal masks
  /// (NumDiags x Slots doubles). Ints = {Stride, Capacity, NumDiags,
  /// d_0..d_{NumDiags-1}} where each d_k indexes a nonzero diagonal and
  /// diagonal d contributes mask[t] * x[(t + d*Stride) mod Slots]. Kept
  /// whole through the VECTOR level so the SIHE lowering can expand it
  /// into a baby-step/giant-step rotation plan (O(sqrt n) rotation keys,
  /// hoisted baby rotations) instead of one rotation per diagonal.
  NK_VecMatDiag,

  // SIHE dialect (paper Table 5) - scheme-independent homomorphic ops.
  NK_SiheRotate,
  NK_SiheAdd,
  NK_SiheSub,
  NK_SiheMul,
  NK_SiheNeg,
  NK_SiheEncode,
  NK_SiheDecode,
  NK_SiheAddConst, ///< fold-in of scalar constants
  NK_SiheMulConst,

  // CKKS dialect (paper Table 6).
  NK_CkksRotate,
  NK_CkksAdd,
  NK_CkksSub,
  NK_CkksMul, ///< ct*ct -> Cipher3, ct*pt -> Cipher
  NK_CkksNeg,
  NK_CkksEncode,
  NK_CkksAddConst,
  NK_CkksMulConst,
  NK_CkksRelin,
  NK_CkksRescale,
  NK_CkksModSwitch,
  NK_CkksUpscale,
  NK_CkksDownscale,
  NK_CkksBootstrap,

  // POLY dialect (paper Table 7).
  NK_PolyDecomp,
  NK_PolyModUp,
  NK_PolyModDown,
  NK_PolyRescale,
  NK_PolyAutomorphism,
  NK_HwNtt,
  NK_HwIntt,
  NK_HwModAdd,
  NK_HwModSub,
  NK_HwModMul,
  NK_HwModMulAdd, ///< fused (paper Sec. 4.5)
  NK_PolyRnsLoop, ///< loop over RNS components wrapping hw_* body nodes
};

/// The dialect a kind belongs to.
DialectKind dialectOf(NodeKind Kind);

/// Printable mnemonic ("CKKS.mul", "VECTOR.roll", ...).
const char *nodeKindName(NodeKind Kind);

/// Value types (paper Tables 3-7: Tensor, Vector, Plain, Cipher, Cipher3,
/// Poly).
enum class TypeKind {
  TK_Tensor,
  TK_Vector,
  TK_Plain,
  TK_Cipher,
  TK_Cipher3,
  TK_Poly,
  TK_None,
};

const char *typeKindName(TypeKind Kind);

/// NN operator a node descends from; drives the Figure 6 breakdown.
enum class OriginKind {
  OR_Input,
  OR_Conv,
  OR_Relu,
  OR_Bootstrap,
  OR_Pool,
  OR_Gemm,
  OR_Add,
  OR_Other,
};

const char *originKindName(OriginKind Kind);

class IrFunction;

/// One SSA node: kind, type, operands, and kind-specific attributes.
class IrNode {
public:
  NodeKind Kind;
  TypeKind Type = TypeKind::TK_None;
  std::vector<IrNode *> Operands;
  OriginKind Origin = OriginKind::OR_Other;
  /// Sequential id, also the printed name (%id).
  int Id = 0;
  /// Optional symbolic name (e.g. "image", "fc.weight").
  std::string Name;

  /// \name Kind-specific attributes.
  /// @{
  /// Integer payload: rotation steps, slice params, kernel geometry, ...
  std::vector<int64_t> Ints;
  /// Constant data for NK_ConstVec / NK_SiheEncode'd weights.
  std::vector<double> Data;
  /// Scalar payload for *Const nodes; also the target scale of
  /// downscale/upscale.
  double Scalar = 0.0;
  /// CKKS bookkeeping (filled by the SIHE->CKKS lowering): the scale this
  /// value carries and its level (active primes - 1).
  double CkksScale = 0.0;
  int CkksLevel = -1;
  /// Bootstrap target level (NK_CkksBootstrap).
  int BootstrapTarget = -1;
  /// Bootstrap-placement marker: the CKKS lowering refreshes operand 0
  /// before evaluating this node (set on the head of each ReLU
  /// approximation region; paper Sec. 4.4 positions bootstrapping before
  /// ReLU).
  bool RefreshBefore = false;
  /// @}

  /// Rotation step helper (NK_VecRoll / NK_SiheRotate / NK_CkksRotate).
  int64_t rotationSteps() const { return Ints.empty() ? 0 : Ints[0]; }

  IrNode(NodeKind Kind, TypeKind Type) : Kind(Kind), Type(Type) {}
};

/// A compiled function: SSA nodes in topological program order.
class IrFunction {
public:
  explicit IrFunction(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Creates a node appended to the program order.
  IrNode *create(NodeKind Kind, TypeKind Type,
                 std::vector<IrNode *> Operands = {},
                 OriginKind Origin = OriginKind::OR_Other);

  /// All nodes in program order.
  const std::vector<std::unique_ptr<IrNode>> &nodes() const { return Nodes; }

  /// The function result (operand of the NK_Return node).
  IrNode *returnValue() const { return ReturnNode; }
  void setReturn(IrNode *Value);

  /// Function inputs in declaration order.
  const std::vector<IrNode *> &inputs() const { return Inputs; }
  IrNode *addInput(const std::string &Name, TypeKind Type);

  /// Replaces the node list with \p NewNodes (used by lowering passes
  /// that rebuild the function); inputs/return must be re-established.
  void clear();

  /// Counts nodes of each dialect (drives the Table 8-style statistics
  /// and phase assertions).
  size_t countDialect(DialectKind Dialect) const;

  /// Renumbers node ids to program order.
  void renumber();

private:
  std::string Name;
  std::vector<std::unique_ptr<IrNode>> Nodes;
  std::vector<IrNode *> Inputs;
  IrNode *ReturnNode = nullptr;
  int NextId = 0;
};

/// Renders a function in the paper's textual style.
std::string printFunction(const IrFunction &F);

/// Structural verification: operand types versus each kind's signature,
/// SSA dominance (operands appear earlier), and - when \p AllowedDialects
/// is non-empty - dialect confinement. Returns a diagnostic on failure.
Status verifyFunction(const IrFunction &F,
                      const std::vector<DialectKind> &AllowedDialects = {});

} // namespace air
} // namespace ace

#endif // ACE_AIR_IR_H
