//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Packed tensor layouts (paper Sec. 4.2: data layout selection in the
/// VECTOR IR). A tensor (C, H, W) is flattened channel-major into the
/// ciphertext slots; strided convolutions and pools do not compact the
/// data but instead dilate the layout (StrideH/StrideW grow), so
/// subsequent operators read with dilated rotation offsets. This is the
/// "multiplexed" packing strategy of Lee et al. [35] that the paper's
/// Expert baseline also uses.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_AIR_LAYOUT_H
#define ACE_AIR_LAYOUT_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace ace {
namespace air {

/// Where each logical tensor element lives inside the slot vector.
struct CipherLayout {
  /// Padded capacities fixed for the whole program; C0*H0*W0 slots used.
  size_t C0 = 1, H0 = 1, W0 = 1;
  /// Logical dimensions of the value.
  size_t C = 1, H = 1, W = 1;
  /// Dilation of the packed grid (grows across strided ops).
  size_t StrideH = 1, StrideW = 1;

  size_t slotCount() const { return C0 * H0 * W0; }
  size_t channelStride() const { return H0 * W0; }

  /// Slot index of logical element (c, h, w).
  size_t slotOf(size_t Ch, size_t Row, size_t Col) const {
    assert(Ch < C0 && Row * StrideH < H0 && Col * StrideW < W0 &&
           "layout coordinate out of range");
    return Ch * channelStride() + Row * StrideH * W0 + Col * StrideW;
  }

  /// Layout after a stride-S spatial downsampling (no data movement).
  CipherLayout afterStride(size_t S) const {
    CipherLayout L = *this;
    L.H = (H + S - 1) / S;
    L.W = (W + S - 1) / S;
    L.StrideH *= S;
    L.StrideW *= S;
    return L;
  }

  bool sameGrid(const CipherLayout &O) const {
    return C0 == O.C0 && H0 == O.H0 && W0 == O.W0 && C == O.C && H == O.H &&
           W == O.W && StrideH == O.StrideH && StrideW == O.StrideW;
  }
};

} // namespace air
} // namespace ace

#endif // ACE_AIR_LAYOUT_H
