//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass infrastructure. Passes transform one IrFunction plus the shared
/// CompileState; the PassManager times each pass under its phase label,
/// which is exactly the per-IR compile-time breakdown of paper Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_AIR_PASS_H
#define ACE_AIR_PASS_H

#include "air/Ir.h"
#include "air/Layout.h"
#include "fhe/Context.h"
#include "onnx/Model.h"
#include "support/PipelineConfig.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ace {
namespace air {

/// Options steering compilation (a subset of an ace-cmplr command line).
struct CompileOptions {
  /// Execution parameter preset. Toy presets run fast on one core;
  /// SL_128 presets report production parameters (paper Table 10).
  bool ToyParameters = true;
  /// log2 input scale Delta (paper uses 2^56 at production).
  int LogScale = 45;
  /// log2 output modulus Q0 (paper Table 10: 60).
  int LogFirstModulus = 55;
  /// Bootstrap tuning.
  int BootstrapRangeK = 12;
  int BootstrapDoubleAngle = 2;
  int BootstrapChebDegree = 39;
  /// Composite sign-approximation iterations for ReLU (paper [36]).
  int ReluSignIterations = 3;
  /// Disable optimizations for ablation studies and the Expert baseline.
  bool EnableRotationKeyAnalysis = true;
  bool EnableMinimalBootstrapLevel = true;
  /// Legacy ablation switch: false forces RescaleMode::RM_Eager (the
  /// Expert baseline settles and relinearizes at every producer).
  bool EnableRescalePlacement = true;
  /// Rescale/relinearize placement policy of the SIHE->CKKS lowering
  /// (docs/compiler.md). RM_Auto resolves through the process default,
  /// then ACE_LAZY_RESCALE, then the builtin waterline policy.
  RescaleMode Rescale = RescaleMode::RM_Auto;
  /// Matrix-vector packing strategy of the NN->VECTOR lowering. PS_Auto
  /// resolves through the process default, then ACE_PACKING; an Auto
  /// result means the per-layer cost model chooses.
  PackingStrategy Packing = PackingStrategy::PS_Auto;
  /// Extra chain levels a hand implementation budgets conservatively
  /// (0 under compiler-driven parameter selection).
  int ExpertMarginLevels = 0;
  /// Calibration images for activation-bound estimation.
  int CalibrationSamples = 4;
  uint64_t Seed = 1;
  /// Runtime worker threads for the FHE hot loops (see
  /// docs/performance.md). 0 = keep the process default (the ACE_THREADS
  /// environment variable, or serial when unset); CkksExecutor::setup
  /// applies any positive value to the process-wide pool. Results are
  /// bit-identical at every thread count.
  int NumThreads = 0;
};

/// Per-layer packing choice made by the NN->VECTOR cost model
/// (docs/compiler.md). One record per lowered gemm, in program order.
struct PackingDecision {
  /// NN-level layer name (the gemm's output value).
  std::string Layer;
  /// The strategy actually lowered.
  PackingStrategy Strategy = PackingStrategy::PS_Bsgs;
  /// True when the knob forced the strategy (no cost comparison ran).
  bool Forced = false;
  /// True when a forced strategy was ineligible (e.g. column on a
  /// spatial layout) and the lowering fell back to Strategy.
  bool Fallback = false;
  /// Modeled cost per candidate (arbitrary units; lower is better).
  /// A negative value marks the candidate ineligible for this layer.
  double CostDiag = -1.0, CostBsgs = -1.0, CostColumn = -1.0;
  /// Modeled op footprint of the chosen strategy.
  size_t Rotations = 0, CtPtMuls = 0, RotationKeys = 0, RescaleDepth = 0;
};

/// Static op budget of the lowered CKKS program: node counts by kind,
/// recorded by the SIHE->CKKS lowering. Executed telemetry adds the
/// bootstrap internals on top of these (tests/passes/OpBudgetTest.cpp
/// pins both).
struct CkksOpBudget {
  size_t Rescale = 0;
  size_t Relinearize = 0;
  size_t Rotate = 0;
  size_t ModSwitch = 0;
  size_t CtCtMul = 0;
  size_t CtPtMul = 0;
  size_t Bootstrap = 0;
};

/// State threaded through the whole pipeline.
struct CompileState {
  CompileOptions Options;
  const onnx::Model *Model = nullptr;

  /// Concrete pipeline knobs after resolution (driver/AceCompiler fills
  /// these before the passes run; ResolvedRescale is never RM_Auto).
  RescaleMode ResolvedRescale = RescaleMode::RM_Waterline;
  PackingStrategy ResolvedPacking = PackingStrategy::PS_Auto;
  /// Per-gemm packing decisions (NN->VECTOR cost model).
  std::vector<PackingDecision> PackingDecisions;
  /// Static CKKS op budget of the compiled program.
  CkksOpBudget Budget;

  /// Shapes for every ONNX value (filled by the frontend).
  std::map<std::string, std::vector<int64_t>> Shapes;
  /// Calibrated per-value activation bounds (ReLU scaling).
  std::map<std::string, double> Bounds;

  /// The packing grid chosen by layout selection.
  CipherLayout InputLayout;
  /// Normalization divisor applied by the generated encryptor.
  double InputDataScale = 1.0;
  /// Layout + normalization scale of each IR value (by node id).
  std::map<int, CipherLayout> Layouts;
  /// Scale factor by which the *encrypted* value was divided relative to
  /// the logical NN value (activation normalization).
  std::map<int, double> DataScales;
  /// Output denormalization: logical = encrypted * OutputDataScale.
  double OutputDataScale = 1.0;
  /// Where the logits live after the final layer.
  CipherLayout OutputLayout;
  int64_t OutputCount = 0;

  /// Rotation steps the program uses (rotation-key analysis result).
  std::set<int64_t> RotationSteps;
  /// Deepest level (active primes) each step is used at: keys truncate to
  /// this depth (level-aware key generation).
  std::map<int64_t, size_t> RotationStepMaxNumQ;
  /// Whether relinearization / conjugation keys are needed.
  bool NeedsRelin = false;
  bool NeedsConjugation = false;

  /// Number of active primes fresh inputs are encrypted with.
  size_t InputNumQ = 0;
  /// Multiplicative-depth summary (filled by the CKKS lowering).
  int MaxComputeDepth = 0;
  int BootstrapDepth = 0;
  size_t BootstrapCount = 0;

  /// Selected scheme parameters (paper Table 10).
  fhe::CkksParams SelectedParams;
  /// Production-security parameter report (always computed, even when
  /// executing with toy parameters).
  size_t SecureRingDegree = 0;
  int SecureLogQ = 0;

  /// Per-phase compile times (paper Figure 5).
  TimingRegistry Timing;
};

/// A compiler pass.
class Pass {
public:
  virtual ~Pass() = default;
  /// Pass name for diagnostics.
  virtual const char *name() const = 0;
  /// Phase label used in the Figure 5 breakdown ("NN", "VECTOR", ...).
  virtual const char *phase() const = 0;
  virtual Status run(IrFunction &F, CompileState &State) = 0;
};

/// Runs passes in order, tracing each one. Every pass gets a telemetry
/// span named after the pass, nested (by start/duration containment)
/// inside a span for its phase label; phase wall time still accumulates
/// into State.Timing for the Figure 5 breakdown.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  Status run(IrFunction &F, CompileState &State) {
    for (auto &P : Passes) {
      telemetry::TraceSpan PhaseSpan("phase", P->phase(), &State.Timing);
      telemetry::TraceSpan PassSpan("pass", P->name());
      if (Status S = P->run(F, State))
        return Status::error(std::string(P->name()) + ": " + S.message());
    }
    return Status::success();
  }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

} // namespace air
} // namespace ace

#endif // ACE_AIR_PASS_H
