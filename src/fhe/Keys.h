//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CKKS key material. Evaluation keys (relinearization and rotation) are
/// the dominant memory consumer at production parameters (paper RQ2: over
/// 1 GB each, tens of GB per model); KeyGenerator therefore generates
/// rotation keys on demand from the exact step set the compiler's key
/// analysis derives, and every key reports its byte size for the Figure 7
/// memory study.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_KEYS_H
#define ACE_FHE_KEYS_H

#include "fhe/Cipher.h"
#include "fhe/RnsPoly.h"
#include "support/Rng.h"
#include "support/Status.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace ace {
namespace fhe {

/// The ternary secret key s, stored in NTT form over the full basis
/// (all chain primes + the special prime).
struct SecretKey {
  RnsPoly S;
  size_t byteSize() const { return S.byteSize(); }
};

/// Encryption key (b, a) with b = -(a s + e) over the full q-chain.
struct PublicKey {
  RnsPoly B;
  RnsPoly A;
  size_t byteSize() const { return B.byteSize() + A.byteSize(); }
};

/// A key-switching key from some source key s' to s: one (b_i, a_i) pair
/// per RNS decomposition digit, over the full basis extended by the special
/// prime, in NTT form. b_i = -(a_i s + e_i) + P * g_i * s', where g_i is
/// the RNS gadget (g_i = delta_ij mod q_j).
struct SwitchKey {
  std::vector<std::pair<RnsPoly, RnsPoly>> Parts;

  size_t byteSize() const {
    size_t Sum = 0;
    for (const auto &Part : Parts)
      Sum += Part.first.byteSize() + Part.second.byteSize();
    return Sum;
  }
};

/// The evaluation-key set a compiled program needs: relinearization key,
/// conjugation key, and rotation keys for exactly the slot steps the
/// compiler's rotation-key analysis found (paper Sec. 4.4).
struct EvalKeys {
  SwitchKey Relin;
  bool HasRelin = false;
  SwitchKey Conjugate;
  bool HasConjugate = false;
  /// Keyed by Galois element.
  std::map<uint64_t, SwitchKey> Rotations;

  size_t relinByteSize() const { return HasRelin ? Relin.byteSize() : 0; }
  size_t rotationByteSize() const {
    size_t Sum = HasConjugate ? Conjugate.byteSize() : 0;
    for (const auto &[Galois, Key] : Rotations)
      Sum += Key.byteSize();
    return Sum;
  }
  size_t byteSize() const { return relinByteSize() + rotationByteSize(); }
  size_t rotationKeyCount() const {
    return Rotations.size() + (HasConjugate ? 1 : 0);
  }
};

/// Galois element realizing a left rotation by \p Steps slots in a ring of
/// degree \p N with \p Slots slots (5^k mod 2N; steps are canonicalized to
/// [0, Slots)).
uint64_t galoisForRotation(size_t N, size_t Slots, int64_t Steps);

/// Galois element realizing complex conjugation (2N - 1).
uint64_t galoisForConjugation(size_t N);

/// Generates all key material from a seeded RNG.
class KeyGenerator {
public:
  /// Samples the secret key at construction. With
  /// CkksParams::SparseSecret the secret has Hamming weight 64 (the
  /// standard choice for bootstrappable CKKS, bounding the ModRaise
  /// overflow count).
  explicit KeyGenerator(const Context &Ctx);

  const SecretKey &secretKey() const { return Secret; }

  /// Generates the public (encryption) key.
  PublicKey makePublicKey();

  /// Generates the relinearization key (s^2 -> s).
  SwitchKey makeRelinKey();

  /// Generates the rotation key for a left rotation by \p Steps slots.
  /// \p MaxNumQ truncates the key to the deepest level the compiler's
  /// dataflow analysis saw the step used at (0 = full chain): a key used
  /// only below level l needs only l decomposition digits over l+1
  /// moduli, which is where most of the paper's Figure 7 key-memory
  /// saving comes from.
  SwitchKey makeRotationKey(int64_t Steps, size_t MaxNumQ = 0);

  /// Restricts \p Key to \p MaxNumQ chain digits/moduli (plus special).
  static SwitchKey truncateKey(const SwitchKey &Key, size_t MaxNumQ);

  /// Generates the conjugation key.
  SwitchKey makeConjugationKey();

  /// Generates a switch key from an arbitrary source key polynomial
  /// \p Source (NTT form, full basis + special).
  SwitchKey makeSwitchKey(const RnsPoly &Source);

  /// Generates the key for a raw Galois automorphism X -> X^Galois. Used
  /// by the bootstrapper's SubSum, whose automorphisms fix the packing
  /// subring and therefore are not slot rotations.
  SwitchKey makeGaloisKey(uint64_t Galois);

  /// Populates \p Keys with switch keys for raw Galois elements.
  void fillGaloisKeys(EvalKeys &Keys, const std::vector<uint64_t> &Elements);

  /// Populates \p Keys with relin + conjugation + the given rotation
  /// steps. This is the entry point the compiled program's key-generation
  /// preamble calls with the analyzed step set.
  void fillEvalKeys(EvalKeys &Keys, const std::vector<int64_t> &Steps,
                    bool NeedRelin, bool NeedConjugate);

private:
  const Context &Ctx;
  Rng Rand;
  SecretKey Secret;

  /// Samples a fresh noise polynomial (coeff domain) over the given shape.
  RnsPoly sampleNoise(size_t NumQ, bool HasSpecial);
  /// Samples a uniform polynomial in NTT form over the given shape.
  RnsPoly sampleUniform(size_t NumQ, bool HasSpecial);
};

/// An LRU cache of rotation/Galois switch keys with on-demand generation,
/// replacing the keep-everything-forever EvalKeys::Rotations map for
/// long-running servers (ROADMAP item 4; see docs/memory.md).
///
/// The compiler's key analysis *declares* the Galois elements a program
/// may use (with their truncation levels); keys are generated only when an
/// op first asks for them, their bytes charged to the ResourceGovernor
/// under MemCategory::EvalKeys, and cold keys are evicted — by the LRU
/// capacity bound, or by the governor's reclaim pass under budget
/// pressure. An evicted key regenerates transparently on next use (new
/// randomness, equally valid key material; ciphertext results are
/// unaffected because key switching is correct under any valid key).
///
/// get() hands out shared_ptr handles so an eviction can never free a key
/// another thread is mid-way through using. Thread-safe; generation is
/// serialized on the cache mutex (KeyGenerator's RNG is not thread-safe).
class RotationKeyCache {
public:
  /// Binds the cache to a generator and registers it as a governor
  /// reclaimer (priority 0: cold keys are reclaimed before pool trim).
  RotationKeyCache(const Context &Ctx, KeyGenerator &Gen);
  /// Releases all cached keys (and their governor charges) and
  /// unregisters the reclaimer.
  ~RotationKeyCache();

  RotationKeyCache(const RotationKeyCache &) = delete;
  RotationKeyCache &operator=(const RotationKeyCache &) = delete;

  /// Declares the rotation by \p Steps as usable, truncated to
  /// \p MaxNumQ moduli (0 = full chain). No key is generated yet.
  /// Returns the Galois element it will be looked up under.
  uint64_t declareRotation(int64_t Steps, size_t MaxNumQ = 0);

  /// Declares a raw Galois automorphism (bootstrap SubSum, conjugation).
  void declareGalois(uint64_t Galois, size_t MaxNumQ = 0);

  /// True when \p Galois has been declared (cached or not).
  bool declared(uint64_t Galois) const;

  /// Returns the switch key for \p Galois, generating it on first use.
  /// Errors: KeyMissing when \p Galois was never declared,
  /// ResourceExhausted when the governor refuses the generation charge.
  StatusOr<std::shared_ptr<const SwitchKey>> get(uint64_t Galois);

  /// LRU capacity for cached key bytes; 0 = unbounded (the governor's
  /// budget is then the only limit). Evicts immediately if over.
  void setCapacityBytes(size_t Bytes);

  /// Evicts least-recently-used keys until at least \p WantBytes are
  /// released or nothing cold remains. Returns bytes released. This is
  /// the governor reclaim callback.
  size_t evictColdest(size_t WantBytes);

  /// Drops every cached key (declarations survive). Returns bytes
  /// released.
  size_t releaseAll();

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;     ///< on-demand generations
    uint64_t Evictions = 0;
    size_t ResidentBytes = 0;
    size_t ResidentCount = 0;
    size_t DeclaredCount = 0;
  };
  Stats stats() const;

private:
  struct Entry {
    bool IsRotation = false;
    int64_t Steps = 0;   ///< valid when IsRotation
    size_t MaxNumQ = 0;  ///< truncation level (0 = full chain)
    std::shared_ptr<const SwitchKey> Key; ///< null until generated
    size_t Bytes = 0;
    uint64_t LastUse = 0;
  };

  /// Worst-case byte estimate for a key at truncation \p MaxNumQ, used
  /// for governor admission before generating.
  size_t estimateBytes(size_t MaxNumQ) const;
  /// Widens \p E to cover \p MaxNumQ moduli if that is wider than its
  /// current truncation (0 = full chain is widest; never narrows),
  /// dropping a key cached at the narrower depth so the next get()
  /// regenerates it at the right one. Caller holds Mutex.
  void widenLocked(Entry &E, size_t MaxNumQ);
  SwitchKey generate(const Entry &E, uint64_t Galois);
  size_t evictColdestLocked(size_t WantBytes);

  const Context &Ctx;
  KeyGenerator &Gen;

  mutable std::mutex Mutex;
  std::map<uint64_t, Entry> Entries; ///< keyed by Galois element
  uint64_t UseClock = 0;
  size_t CapacityBytes = 0;
  size_t ResidentBytes = 0;
  uint64_t ReclaimerId = 0;

  std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0};
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_KEYS_H
