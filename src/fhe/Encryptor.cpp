//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Encryptor.h"

#include "support/FaultInjector.h"

#include <cassert>

using namespace ace;
using namespace ace::fhe;

void ace::fhe::applyCiphertextFaults(Ciphertext &Ct) {
  FaultInjector &Faults = FaultInjector::instance();
  if (!Faults.enabled())
    return;
  // Each corruption models a realistic bug class: scale bookkeeping gone
  // wrong (the CHET/nGraph-HE2 failure mode), a mispacked tensor, and a
  // rescale that dropped a prime from only part of the ciphertext.
  if (Faults.shouldFire(FaultKind::ScaleDrift))
    Ct.Scale *= 1.05;
  if (Faults.shouldFire(FaultKind::SlotCorrupt))
    Ct.Slots = Ct.Slots * 2 + 1;
  if (Faults.shouldFire(FaultKind::TruncateChain) && !Ct.Polys.empty() &&
      Ct.Polys.back().numQ() > 1)
    Ct.Polys.back().dropLastQ();
}

Encryptor::Encryptor(const Context &Ctx, const PublicKey &Key)
    : Ctx(Ctx), Key(Key), Rand(Ctx.params().Seed ^ 0x9e3779b9ULL) {}

/// Samples a small signed polynomial (ternary or CBD noise) directly into
/// RNS coefficient form.
static RnsPoly sampleSmall(const Context &Ctx, Rng &Rand, size_t NumQ,
                           bool Ternary) {
  RnsPoly Poly(Ctx, NumQ, /*HasSpecial=*/false, /*NttForm=*/false);
  size_t N = Ctx.degree();
  std::vector<int32_t> Coeffs(N);
  for (auto &C : Coeffs)
    C = Ternary ? Rand.ternary() : Rand.noiseCbd();
  for (size_t I = 0; I < NumQ; ++I) {
    uint64_t P = Ctx.qModulus(I);
    uint64_t *Comp = Poly.component(I);
    for (size_t J = 0; J < N; ++J) {
      int32_t V = Coeffs[J];
      Comp[J] = V >= 0 ? static_cast<uint64_t>(V)
                       : P - static_cast<uint64_t>(-V);
    }
  }
  return Poly;
}

Ciphertext Encryptor::encrypt(const Plaintext &Plain) {
  assert(Plain.Poly.isNtt() && "plaintext must be in NTT form");
  size_t NumQ = Plain.numQ();

  RnsPoly U = sampleSmall(Ctx, Rand, NumQ, /*Ternary=*/true);
  U.toNtt();
  RnsPoly E0 = sampleSmall(Ctx, Rand, NumQ, /*Ternary=*/false);
  E0.toNtt();
  RnsPoly E1 = sampleSmall(Ctx, Rand, NumQ, /*Ternary=*/false);
  E1.toNtt();

  RnsPoly B = Key.B.restrictedCopy(NumQ, /*KeepSpecial=*/false);
  RnsPoly A = Key.A.restrictedCopy(NumQ, /*KeepSpecial=*/false);

  Ciphertext Ct;
  Ct.Scale = Plain.Scale;
  Ct.Slots = Plain.Slots;
  // c0 = b*u + e0 + m; c1 = a*u + e1.
  RnsPoly C0 = B.mul(U);
  C0.addInPlace(E0);
  C0.addInPlace(Plain.Poly);
  RnsPoly C1 = A.mul(U);
  C1.addInPlace(E1);
  Ct.Polys.push_back(std::move(C0));
  Ct.Polys.push_back(std::move(C1));
  return Ct;
}

Ciphertext Encryptor::encryptValues(const Encoder &Enc,
                                    const std::vector<double> &Values,
                                    size_t NumQ) {
  return encrypt(Enc.encodeReal(Values, Ctx.scale(), NumQ));
}

StatusOr<Ciphertext>
Encryptor::checkedEncryptValues(const Encoder &Enc,
                                const std::vector<double> &Values,
                                size_t NumQ) {
  if (NumQ < 1 || NumQ > Ctx.chainLength())
    return Status::levelMismatch(
        "encrypt: requested " + std::to_string(NumQ) +
        " active primes but the modulus chain holds " +
        std::to_string(Ctx.chainLength()));
  if (Values.size() > Ctx.slots())
    return Status::invalidArgument(
        "encrypt: " + std::to_string(Values.size()) +
        " values exceed the context's " + std::to_string(Ctx.slots()) +
        " slots");
  Ciphertext Ct = encryptValues(Enc, Values, NumQ);
  applyCiphertextFaults(Ct);
  return Ct;
}

Decryptor::Decryptor(const Context &Ctx, const SecretKey &Key)
    : Ctx(Ctx), Key(Key) {}

Plaintext Decryptor::decrypt(const Ciphertext &Ct) {
  assert(Ct.size() >= 2 && Ct.size() <= 3 && "malformed ciphertext");
  size_t NumQ = Ct.numQ();
  RnsPoly S = Key.S.restrictedCopy(NumQ, /*KeepSpecial=*/false);

  // m = c0 + c1*s (+ c2*s^2).
  RnsPoly M = Ct.Polys[0];
  assert(M.isNtt() && "ciphertext must be in NTT form");
  M.mulAddInPlace(Ct.Polys[1], S);
  if (Ct.size() == 3) {
    RnsPoly S2 = S.mul(S);
    M.mulAddInPlace(Ct.Polys[2], S2);
  }

  Plaintext Plain;
  Plain.Poly = std::move(M);
  Plain.Scale = Ct.Scale;
  Plain.Slots = Ct.Slots;
  return Plain;
}

std::vector<std::complex<double>>
Decryptor::decryptValues(const Encoder &Enc, const Ciphertext &Ct) {
  return Enc.decode(decrypt(Ct));
}

std::vector<double> Decryptor::decryptRealValues(const Encoder &Enc,
                                                 const Ciphertext &Ct) {
  auto Complexes = decryptValues(Enc, Ct);
  std::vector<double> Reals(Complexes.size());
  for (size_t I = 0; I < Complexes.size(); ++I)
    Reals[I] = Complexes[I].real();
  return Reals;
}

StatusOr<std::vector<double>>
Decryptor::checkedDecryptRealValues(const Encoder &Enc,
                                    const Ciphertext &Ct) {
  ACE_RETURN_IF_ERROR(validateCiphertext(Ctx, Ct, "decrypt"));
  return decryptRealValues(Enc, Ct);
}
