//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat C API over the ACEfhe runtime - the surface the generated C
/// programs call (paper Sec. 3.4: ANT-ACE converts ONNX models into C
/// for CPU execution against its library). Handles are opaque; every
/// ciphertext returned must be released with ace_ct_free.
///
/// Error channel: no call crashes on a caller mistake. Fallible calls
/// return NULL (handle-producing) or a nonzero AceErrorCode
/// (int-returning); the thread-local ace_last_error() /
/// ace_last_error_message() pair then describes the failure, naming the
/// offending levels, scales, or rotation steps. Passing a freed or
/// corrupted handle is detected best-effort via handle magic tags.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_CAPI_H
#define ACE_FHE_CAPI_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct AceFheContext AceFheContext;
typedef struct AceFheCiphertext AceFheCiphertext;

/// Failure categories, mirroring the C++ ace::ErrorCode enum.
typedef enum AceErrorCode {
  ACE_OK = 0,
  ACE_ERR_INVALID_ARGUMENT = 1,
  ACE_ERR_LEVEL_MISMATCH = 2,
  ACE_ERR_SCALE_MISMATCH = 3,
  ACE_ERR_KEY_MISSING = 4,
  ACE_ERR_DEPTH_EXHAUSTED = 5,
  ACE_ERR_RESOURCE_EXHAUSTED = 6,
  ACE_ERR_INTERNAL = 7,
  ACE_ERR_DATA_CORRUPT = 8,
  ACE_ERR_IO = 9,
  ACE_ERR_CANCELLED = 10,
  ACE_ERR_DEADLINE_EXCEEDED = 11,
} AceErrorCode;

/// The code of the last failed call on this thread (ACE_OK when no call
/// failed since ace_clear_error). Sticky: successful calls do not reset
/// it.
AceErrorCode ace_last_error(void);

/// Human-readable description of the last failure on this thread; the
/// empty string when none. The pointer stays valid until the next failing
/// call on the same thread.
const char *ace_last_error_message(void);

/// Resets the thread's error state to ACE_OK.
void ace_clear_error(void);

/// Creates a runtime context (parameters as selected by the compiler).
/// Returns NULL with the error channel set on invalid parameters.
AceFheContext *ace_create(size_t ring_degree, size_t slots, int log_scale,
                          int log_q0, int num_rescale, int log_special,
                          int sparse_secret, uint64_t seed);
void ace_destroy(AceFheContext *ctx);

/// Generates keys: rotation steps (with optional per-step level caps via
/// step_maxq, may be NULL), relinearization/conjugation, and - when
/// bootstrap is nonzero - the bootstrapping key material with the given
/// configuration. Returns ACE_OK or an error code.
int ace_keygen(AceFheContext *ctx, const int64_t *steps,
               const size_t *step_maxq, size_t nsteps, int need_relin,
               int need_conj, int bootstrap, int boot_k, int boot_da,
               int boot_deg);

/// Encrypts slot values (length = slot count) at numq active primes.
AceFheCiphertext *ace_encrypt(AceFheContext *ctx, const double *slots,
                              size_t n, size_t numq);
/// Decrypts into out (length = slot count). Returns ACE_OK or an error
/// code.
int ace_decrypt(AceFheContext *ctx, const AceFheCiphertext *ct,
                double *out, size_t n);
void ace_ct_free(AceFheCiphertext *ct);

/// Homomorphic operations (paper Table 6). Results are fresh handles;
/// NULL with the error channel set on failure.
AceFheCiphertext *ace_rotate(AceFheContext *ctx, const AceFheCiphertext *a,
                             int64_t steps);
AceFheCiphertext *ace_add(AceFheContext *ctx, const AceFheCiphertext *a,
                          const AceFheCiphertext *b);
AceFheCiphertext *ace_sub(AceFheContext *ctx, const AceFheCiphertext *a,
                          const AceFheCiphertext *b);
AceFheCiphertext *ace_mul(AceFheContext *ctx, const AceFheCiphertext *a,
                          const AceFheCiphertext *b); /* includes relin */
AceFheCiphertext *ace_mul_plain(AceFheContext *ctx,
                                const AceFheCiphertext *a,
                                const double *vec, size_t n);
AceFheCiphertext *ace_add_plain(AceFheContext *ctx,
                                const AceFheCiphertext *a,
                                const double *vec, size_t n);
AceFheCiphertext *ace_mul_const(AceFheContext *ctx,
                                const AceFheCiphertext *a, double c);
AceFheCiphertext *ace_add_const(AceFheContext *ctx,
                                const AceFheCiphertext *a, double c);
AceFheCiphertext *ace_rescale(AceFheContext *ctx, const AceFheCiphertext *a);
AceFheCiphertext *ace_modswitch_to(AceFheContext *ctx,
                                   const AceFheCiphertext *a, size_t numq);
AceFheCiphertext *ace_bootstrap(AceFheContext *ctx,
                                const AceFheCiphertext *a, size_t target);

/// \name Serialization (see docs/serialization.md)
/// File-based save/load over the hardened wire format. Loads never crash
/// on malformed or tampered files: they fail with ACE_ERR_DATA_CORRUPT
/// (bad bytes, bad checksum, out-of-range fields) or ACE_ERR_IO (file
/// cannot be opened/read/written) and a descriptive message on the error
/// channel.
/// @{

/// Writes the context's parameters to path. Returns ACE_OK or an error
/// code.
int ace_params_save(AceFheContext *ctx, const char *path);
/// Rebuilds a context from parameters written by ace_params_save. The
/// fresh context has its own newly generated keys (key material is
/// deliberately NOT part of the params object); call ace_keygen or
/// ace_key_load afterwards. Returns NULL with the error channel set on
/// failure.
AceFheContext *ace_params_load(const char *path);
/// Writes one ciphertext to path. The ciphertext must belong to ctx.
int ace_ct_save(AceFheContext *ctx, const AceFheCiphertext *ct,
                const char *path);
/// Reads one ciphertext written by ace_ct_save. The file must have been
/// produced under the same parameters as ctx; every structural field is
/// validated against ctx before the handle is returned.
AceFheCiphertext *ace_ct_load(AceFheContext *ctx, const char *path);
/// Writes the context's public key followed by its evaluation-key set
/// (two concatenated framed objects) to path.
int ace_key_save(AceFheContext *ctx, const char *path);
/// Replaces the context's public key and evaluation-key set with the
/// contents of a file written by ace_key_save.
int ace_key_load(AceFheContext *ctx, const char *path);

/// @}

/// Loads the external weight blob written next to the generated program
/// (paper Sec. 3.4 stores weights externally). Returns a malloc'd array
/// the caller frees; count receives the number of doubles. NULL with the
/// error channel set when the file cannot be read.
double *ace_load_weights(const char *path, size_t *count);

/// \name Telemetry (see docs/observability.md)
/// The generated C programs call these so traces and op counts from the
/// generated-C path match the in-process executor. Also driven by the
/// environment: ACE_TRACE=<file> enables collection at load time and
/// writes a chrome://tracing JSON at exit; ACE_TELEMETRY=1 enables
/// collection only.
/// @{

/// Enables (nonzero) or disables (zero) telemetry collection.
void ace_telemetry_enable(int on);
/// Nonzero when telemetry collection is enabled.
int ace_telemetry_enabled(void);
/// Drops all recorded telemetry (counters, events, health, snapshots).
void ace_telemetry_reset(void);
/// Value of the named counter ("ct-ct-mul", "rotate", "bootstrap", ...).
/// Returns 0 and sets the error channel for unknown names.
uint64_t ace_telemetry_counter(const char *name);
/// Records a named snapshot of all counters (per-phase reporting).
void ace_telemetry_snapshot(const char *label);
/// Telemetry summary as a malloc'd string the caller frees; text, or
/// JSON when as_json is nonzero.
char *ace_telemetry_report(int as_json);
/// Writes the Chrome trace-event JSON to path. Returns ACE_OK or an
/// error code.
int ace_telemetry_write_trace(const char *path);

/// Full Prometheus text exposition (every counter, gauge, and histogram
/// the process knows about; see docs/observability.md) as a malloc'd
/// string the caller frees. NULL on allocation failure.
char *ace_metrics_prometheus(void);
/// Writes the Prometheus exposition to path. Returns ACE_OK or an
/// error code.
int ace_metrics_write(const char *path);

/// @}

/// \name Threading (see docs/performance.md)
/// The runtime parallelizes its FHE hot loops (per-limb NTT batches,
/// pointwise limb ops, key-switch digits, bootstrap stages) over a
/// process-wide worker pool. Results are bit-identical at every thread
/// count. The default comes from the ACE_THREADS environment variable
/// (unset = 1 = serial).
/// @{

/// Sets the worker-thread count. n = 0 re-reads the ACE_THREADS default;
/// values above 256 clamp. Returns ACE_OK, or ACE_ERR_INVALID_ARGUMENT
/// for negative n. Safe to call between (not during) runtime calls.
int ace_set_num_threads(int n);
/// The configured worker-thread count (>= 1; 1 = serial).
int ace_num_threads(void);

/// @}

/// \name Poly-ops kernel backend (see docs/kernels.md)
/// Every FHE hot loop (NTT butterflies, pointwise limb arithmetic, the
/// key-switch inner product) runs through a pluggable kernel backend:
/// "scalar" (the portable reference) or "simd" (AVX2/NEON, selected by
/// CPUID). Backends are bit-identical, so the choice only affects
/// speed. It is per-process - the default resolves the
/// ACE_POLY_BACKEND environment variable on first use.
/// @{

/// Selects the backend by name: "scalar", "simd", or "auto" (simd when
/// supported). Returns ACE_OK, or ACE_ERR_INVALID_ARGUMENT for an
/// unknown name or for "simd" on a host without vector support (the
/// previous selection stays active). Safe to call between (not during)
/// runtime calls.
int ace_set_poly_backend(const char *name);
/// The active backend name ("scalar" or "simd"); never NULL.
const char *ace_poly_backend(void);

/// @}

/// \name Memory governance (see docs/memory.md)
/// A process-wide resource governor meters the big FHE allocations
/// (pooled RNS limb storage, cached rotation keys, service sessions)
/// against a hard byte budget. Over-budget charges first reclaim cold
/// key-cache entries and trim the limb pool; what still does not fit is
/// refused with ACE_ERR_RESOURCE_EXHAUSTED instead of aborting the
/// process. The default budget comes from the ACE_MEMORY_BUDGET
/// environment variable ("512m", "8g", plain bytes; unset = unlimited);
/// the limb pool itself can be bypassed with ACE_LIMB_POOL=off for
/// differential testing.
/// @{

/// Sets the process memory budget in bytes (0 = unlimited). Takes
/// effect at the next admission check; already-resident allocations are
/// never forcibly freed, only reclaimed lazily. Returns ACE_OK.
int ace_set_memory_budget(uint64_t bytes);
/// The configured budget in bytes (0 = unlimited).
uint64_t ace_memory_budget(void);
/// Enables (nonzero) or disables (zero) the RNS limb pool. Disabling
/// routes new acquisitions to plain heap allocation; blocks already
/// drawn from the pool return to it safely. Returns ACE_OK.
int ace_set_limb_pool(int enabled);
/// 1 when the limb pool is active, 0 when bypassed.
int ace_limb_pool(void);

/// @}

/// \name Compiler pipeline policies (see docs/compiler.md)
/// Process-wide defaults for the two compile-time strategy knobs: the
/// rescale/relinearize placement of the SIHE->CKKS lowering and the
/// matrix-vector packing strategy of the NN->VECTOR lowering. An
/// explicit CompileOptions value still wins; these defaults in turn win
/// over the ACE_LAZY_RESCALE / ACE_PACKING environment variables. The
/// knobs only affect programs compiled afterwards, never an already
/// compiled program.
/// @{

/// Sets the process-default rescale mode: "eager", "waterline", "lazy",
/// or "auto" (clear the override back to the environment). Returns
/// ACE_OK, or ACE_ERR_INVALID_ARGUMENT for an unknown name.
int ace_set_rescale_mode(const char *name);
/// The process-default rescale mode name; never NULL.
const char *ace_rescale_mode(void);
/// Sets the process-default packing strategy: "diag", "bsgs", "column",
/// or "auto" (per-layer cost model / environment). Returns ACE_OK, or
/// ACE_ERR_INVALID_ARGUMENT for an unknown name.
int ace_set_packing_strategy(const char *name);
/// The process-default packing strategy name; never NULL.
const char *ace_packing_strategy(void);

/// @}

#ifdef __cplusplus
} // extern "C"
#endif

#endif // ACE_FHE_CAPI_H
