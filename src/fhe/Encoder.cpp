//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Encoder.h"

#include "fhe/ModArith.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::fhe;

/// In-place bit-reversal permutation of \p Values.
static void bitReversePermute(std::vector<std::complex<double>> &Values) {
  size_t N = Values.size();
  for (size_t I = 1, J = 0; I < N; ++I) {
    size_t Bit = N >> 1;
    for (; J & Bit; Bit >>= 1)
      J ^= Bit;
    J ^= Bit;
    if (I < J)
      std::swap(Values[I], Values[J]);
  }
}

Encoder::Encoder(const Context &Ctx) : Ctx(Ctx), Slots(Ctx.slots()) {
  size_t M = 4 * Slots;
  RotGroup.resize(Slots);
  uint64_t FivePow = 1;
  for (size_t J = 0; J < Slots; ++J) {
    RotGroup[J] = FivePow;
    FivePow = (FivePow * 5) % M;
  }
  KsiPows.resize(M + 1);
  for (size_t K = 0; K <= M; ++K) {
    double Angle = 2.0 * M_PI * static_cast<double>(K) /
                   static_cast<double>(M);
    KsiPows[K] = {std::cos(Angle), std::sin(Angle)};
  }
  GarnerTables.resize(Ctx.chainLength() + 1);
}

void Encoder::fftSpecial(std::vector<std::complex<double>> &Values) const {
  size_t N = Values.size();
  assert(N == Slots && "fftSpecial expects exactly the slot count");
  size_t M = 4 * Slots;
  bitReversePermute(Values);
  for (size_t Len = 2; Len <= N; Len <<= 1) {
    for (size_t I = 0; I < N; I += Len) {
      size_t LenH = Len >> 1;
      size_t LenQ = Len << 2;
      for (size_t J = 0; J < LenH; ++J) {
        size_t Idx = (RotGroup[J] % LenQ) * (M / LenQ);
        auto U = Values[I + J];
        auto V = Values[I + J + LenH] * KsiPows[Idx];
        Values[I + J] = U + V;
        Values[I + J + LenH] = U - V;
      }
    }
  }
}

void Encoder::fftSpecialInv(std::vector<std::complex<double>> &Values) const {
  size_t N = Values.size();
  assert(N == Slots && "fftSpecialInv expects exactly the slot count");
  size_t M = 4 * Slots;
  for (size_t Len = N; Len >= 2; Len >>= 1) {
    for (size_t I = 0; I < N; I += Len) {
      size_t LenH = Len >> 1;
      size_t LenQ = Len << 2;
      for (size_t J = 0; J < LenH; ++J) {
        size_t Idx = (LenQ - (RotGroup[J] % LenQ)) * (M / LenQ);
        auto U = Values[I + J] + Values[I + J + LenH];
        auto V = (Values[I + J] - Values[I + J + LenH]) * KsiPows[Idx];
        Values[I + J] = U;
        Values[I + J + LenH] = V;
      }
    }
  }
  bitReversePermute(Values);
  double Inv = 1.0 / static_cast<double>(N);
  for (auto &V : Values)
    V *= Inv;
}

std::complex<double> Encoder::slotRoot(size_t J) const {
  assert(J < Slots && "slot index out of range");
  return KsiPows[RotGroup[J]];
}

RnsPoly Encoder::coeffsToPoly(const std::vector<long double> &Coeffs,
                              size_t NumQ) const {
  size_t N = Ctx.degree();
  assert(Coeffs.size() == N && "coefficient vector must have length N");
  RnsPoly Poly(Ctx, NumQ, /*HasSpecial=*/false, /*NttForm=*/false);
  for (size_t I = 0; I < NumQ; ++I) {
    uint64_t Q = Ctx.qModulus(I);
    uint64_t *Comp = Poly.component(I);
    for (size_t J = 0; J < N; ++J) {
      long double C = Coeffs[J];
      assert(fabsl(C) < 0x1.0p62L &&
             "encoded coefficient exceeds 62 bits; lower the scale");
      int64_t V = static_cast<int64_t>(llroundl(C));
      Comp[J] = V >= 0 ? static_cast<uint64_t>(V) % Q
                       : Q - (static_cast<uint64_t>(-V) % Q);
      if (Comp[J] == Q)
        Comp[J] = 0;
    }
  }
  return Poly;
}

Plaintext Encoder::encode(const std::vector<std::complex<double>> &Values,
                          double Scale, size_t NumQ) const {
  assert(Values.size() <= Slots && "too many values for the slot count");
  assert(Scale > 0 && "scale must be positive");
  size_t N = Ctx.degree();
  size_t Gap = (N / 2) / Slots;

  std::vector<std::complex<double>> Work(Slots, {0.0, 0.0});
  for (size_t J = 0; J < Values.size(); ++J)
    Work[J] = Values[J];
  fftSpecialInv(Work);

  std::vector<long double> Coeffs(N, 0.0L);
  for (size_t J = 0; J < Slots; ++J) {
    Coeffs[J * Gap] = static_cast<long double>(Work[J].real()) *
                      static_cast<long double>(Scale);
    Coeffs[J * Gap + N / 2] = static_cast<long double>(Work[J].imag()) *
                              static_cast<long double>(Scale);
  }

  Plaintext Plain;
  Plain.Poly = coeffsToPoly(Coeffs, NumQ);
  Plain.Poly.toNtt();
  Plain.Scale = Scale;
  Plain.Slots = Slots;
  return Plain;
}

Plaintext Encoder::encodeReal(const std::vector<double> &Values, double Scale,
                              size_t NumQ) const {
  std::vector<std::complex<double>> Complexes(Values.size());
  for (size_t J = 0; J < Values.size(); ++J)
    Complexes[J] = {Values[J], 0.0};
  return encode(Complexes, Scale, NumQ);
}

Plaintext Encoder::encodeConstant(double Value, double Scale,
                                  size_t NumQ) const {
  // A constant across all slots encodes as a constant polynomial: no FFT
  // needed, and no interpolation error.
  size_t N = Ctx.degree();
  std::vector<long double> Coeffs(N, 0.0L);
  Coeffs[0] = static_cast<long double>(Value) *
              static_cast<long double>(Scale);
  Plaintext Plain;
  Plain.Poly = coeffsToPoly(Coeffs, NumQ);
  Plain.Poly.toNtt();
  Plain.Scale = Scale;
  Plain.Slots = Slots;
  return Plain;
}

const Encoder::GarnerTable &Encoder::garnerTable(size_t NumQ) const {
  assert(NumQ >= 1 && NumQ <= Ctx.chainLength() && "bad prime count");
  GarnerTable &Table = GarnerTables[NumQ];
  if (!Table.InvPartialProd.empty())
    return Table;
  Table.InvPartialProd.resize(NumQ);
  Table.PartialProdLd.resize(NumQ);
  Table.InvPartialProd[0] = 1;
  Table.PartialProdLd[0] = 1.0L;
  for (size_t I = 1; I < NumQ; ++I) {
    uint64_t QI = Ctx.qModulus(I);
    uint64_t Prod = 1;
    for (size_t J = 0; J < I; ++J)
      Prod = mulMod(Prod, Ctx.qModulus(J) % QI, QI);
    Table.InvPartialProd[I] = invMod(Prod, QI);
    Table.PartialProdLd[I] =
        Table.PartialProdLd[I - 1] *
        static_cast<long double>(Ctx.qModulus(I - 1));
  }
  Table.TotalLd = Table.PartialProdLd[NumQ - 1] *
                  static_cast<long double>(Ctx.qModulus(NumQ - 1));
  return Table;
}

/// Garner mixed-radix reconstruction of the value with residues produced
/// by \p ResidueAt. Returns the exact value as long double (exact while the
/// value fits the 64-bit mantissa; larger values are only used for sign
/// estimation).
template <typename ResidueFn>
static long double garnerValue(size_t NumQ, const Context &Ctx,
                               const std::vector<long double> &PartialProdLd,
                               const std::vector<uint64_t> &InvPartialProd,
                               ResidueFn ResidueAt) {
  // Mixed-radix digits: x = v_0 + v_1 q_0 + v_2 q_0 q_1 + ...
  uint64_t Digits[64];
  assert(NumQ <= 64 && "chain too long for Garner buffer");
  long double Value = 0.0L;
  for (size_t I = 0; I < NumQ; ++I) {
    uint64_t QI = Ctx.qModulus(I);
    // Partial value (v_0 + v_1 q_0 + ...) reduced mod q_i.
    uint64_t Acc = 0;
    uint64_t Base = 1;
    for (size_t J = 0; J < I; ++J) {
      Acc = addMod(Acc, mulMod(Digits[J] % QI, Base, QI), QI);
      Base = mulMod(Base, Ctx.qModulus(J) % QI, QI);
    }
    uint64_t R = ResidueAt(I);
    uint64_t V = mulMod(subMod(R, Acc, QI), InvPartialProd[I], QI);
    Digits[I] = V;
    Value += static_cast<long double>(V) * PartialProdLd[I];
  }
  return Value;
}

long double Encoder::reconstructSigned(const RnsPoly &Poly, size_t K,
                                       const GarnerTable &Table) const {
  size_t NumQ = Poly.numQ();
  long double Value = garnerValue(
      NumQ, Ctx, Table.PartialProdLd, Table.InvPartialProd,
      [&](size_t I) { return Poly.component(I)[K]; });
  if (Value <= Table.TotalLd / 2)
    return Value;
  // Negative value: reconstruct -x (which is small) exactly and negate, to
  // avoid the catastrophic cancellation of computing Value - Q in floats.
  long double Negated = garnerValue(
      NumQ, Ctx, Table.PartialProdLd, Table.InvPartialProd, [&](size_t I) {
        uint64_t QI = Ctx.qModulus(I);
        return negMod(Poly.component(I)[K] % QI, QI);
      });
  return -Negated;
}

std::vector<long double> Encoder::polyToCoeffs(const RnsPoly &Poly) const {
  assert(!Poly.isNtt() && "reconstruction requires coefficient domain");
  assert(!Poly.hasSpecial() && "unexpected special component");
  const GarnerTable &Table = garnerTable(Poly.numQ());
  size_t N = Ctx.degree();
  std::vector<long double> Coeffs(N);
  for (size_t K = 0; K < N; ++K)
    Coeffs[K] = reconstructSigned(Poly, K, Table);
  return Coeffs;
}

std::vector<std::complex<double>> Encoder::decode(const RnsPoly &Poly,
                                                  double Scale) const {
  std::vector<long double> Coeffs = polyToCoeffs(Poly);
  size_t N = Ctx.degree();
  size_t Gap = (N / 2) / Slots;
  std::vector<std::complex<double>> Values(Slots);
  long double S = static_cast<long double>(Scale);
  for (size_t J = 0; J < Slots; ++J) {
    Values[J] = {static_cast<double>(Coeffs[J * Gap] / S),
                 static_cast<double>(Coeffs[J * Gap + N / 2] / S)};
  }
  fftSpecial(Values);
  return Values;
}

std::vector<std::complex<double>> Encoder::decode(const Plaintext &Plain) const {
  RnsPoly Poly = Plain.Poly;
  Poly.toCoeff();
  return decode(Poly, Plain.Scale);
}
