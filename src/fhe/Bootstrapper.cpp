//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"

#include "fhe/ModArith.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::fhe;

int ace::fhe::estimateBootstrapDepth(size_t RingDegree, size_t Slots,
                                     const BootstrapConfig &Config,
                                     int LogScale, int LogFirstModulus) {
  size_t Span = (RingDegree / 2) / Slots;
  int LogSpan = 0;
  while ((size_t(1) << LogSpan) < Span)
    ++LogSpan;
  int Doubles = Config.DoubleAngleCount + LogSpan;
  int K2 = Config.RangeK * static_cast<int>(Span);
  int EvalModDepth =
      ChebyshevEvaluator::depthForDegree(Config.ChebyshevDegree) + Doubles +
      (Config.ArcsineCorrection ? 3 : 0);
  double LogP = 2.0 * LogScale - LogFirstModulus -
                std::log2(static_cast<double>(K2 + 1));
  int DownscaleLevels = LogP < 25.0 ? 2 : 1;
  return 1 + DownscaleLevels + EvalModDepth + 1 + 1;
}

Bootstrapper::Bootstrapper(const Evaluator &Eval, BootstrapConfig Config)
    : Eval(Eval), Config(Config), Cheb(Eval) {
  assert(Config.RangeK >= 1 && Config.DoubleAngleCount >= 0 &&
         Config.ChebyshevDegree >= 3 && "invalid bootstrap configuration");
  // The SubSum trace (which must run AFTER ModRaise so the overflow
  // polynomial is projected onto the packing subring - off-grid overflow
  // coefficients would otherwise fold back onto the grid inside EvalMod's
  // squarings) multiplies the overflow bound by span. The extra factor is
  // absorbed by log2(span) additional double-angle iterations, keeping
  // the Chebyshev degree constant.
  //
  // Approximate h(u) = cos((2 pi (K2+1) u - pi/2) / 2^r) on [-1, 1]. After
  // r double-angle steps, h becomes cos(2 pi t - pi/2) = sin(2 pi t) with
  // t = (K2+1) u.
  double K2Plus1 = static_cast<double>(rangeBound() + 1);
  double Divisor = std::ldexp(1.0, doubleAngles());
  SineCoeffs = chebyshevInterpolate(
      [&](double U) {
        return std::cos((2.0 * M_PI * K2Plus1 * U - M_PI / 2.0) / Divisor);
      },
      Config.ChebyshevDegree);
}

size_t Bootstrapper::span() const {
  const Context &Ctx = Eval.context();
  return (Ctx.degree() / 2) / Ctx.slots();
}

int Bootstrapper::rangeBound() const {
  return Config.RangeK * static_cast<int>(span());
}

int Bootstrapper::doubleAngles() const {
  int LogSpan = 0;
  while ((size_t(1) << LogSpan) < span())
    ++LogSpan;
  return Config.DoubleAngleCount + LogSpan;
}

int Bootstrapper::depthCost() const {
  int EvalModDepth = ChebyshevEvaluator::depthForDegree(Config.ChebyshevDegree) +
                     doubleAngles() + (Config.ArcsineCorrection ? 3 : 0);
  // The post-CoeffToSlot downscale consumes an extra level when its
  // plaintext scale would otherwise be too coarse (see downscaleInPlace).
  const CkksParams &P = Eval.context().params();
  double LogP = 2.0 * P.LogScale - P.LogFirstModulus -
                std::log2(static_cast<double>(rangeBound() + 1));
  int DownscaleLevels = LogP < 25.0 ? 2 : 1;
  return 1 + DownscaleLevels + EvalModDepth + 1 /*SlotToCoeff*/ +
         1 /*final scale fix*/;
}

size_t Bootstrapper::babySteps() const {
  size_t N = Eval.context().slots();
  size_t BS = 1;
  while (BS * BS < N)
    BS <<= 1;
  return BS;
}

std::vector<int64_t> Bootstrapper::requiredRotations() const {
  size_t N = Eval.context().slots();
  size_t BS = babySteps();
  std::vector<int64_t> Steps;
  for (size_t J = 1; J < BS; ++J)
    Steps.push_back(static_cast<int64_t>(J));
  for (size_t I = BS; I < N; I += BS)
    Steps.push_back(static_cast<int64_t>(I));
  return Steps;
}

std::vector<uint64_t> Bootstrapper::requiredGaloisElements() const {
  const Context &Ctx = Eval.context();
  size_t N = Ctx.degree();
  size_t Slots = Ctx.slots();
  size_t Span = (N / 2) / Slots;
  std::vector<uint64_t> Elements;
  uint64_t TwoN = 2 * N;
  for (size_t Step = Slots; Step * 2 <= Slots * Span; Step *= 2) {
    // Galois element 5^Step mod 2N: rotation by a multiple of the slot
    // count, which fixes the subring.
    uint64_t G = 1;
    for (size_t I = 0; I < Step; ++I)
      G = (G * 5) % TwoN;
    Elements.push_back(G);
  }
  return Elements;
}

std::complex<double> Bootstrapper::matrixEntry(int MatrixId, size_t Row,
                                               size_t Col) const {
  const Encoder &Enc = Eval.encoder();
  size_t N = Eval.context().slots();

  // The large constants (q_0, K2, Delta) are applied as exact scale-
  // metadata changes after each matvec, keeping the matrix entries O(1)
  // so their plaintext quantization error stays negligible.
  if (MatrixId == 0) {
    // CoeffToSlot: (1/2) * (1/n) * U^H with U[j][k] = zeta_j^k;
    // (U^H)[row][col] = conj(zeta_col^row). The 1/2 pre-halves the
    // real/imag separation sums.
    std::complex<double> Zeta = Enc.slotRoot(Col);
    std::complex<double> Entry =
        std::conj(std::pow(Zeta, static_cast<double>(Row)));
    return Entry * (0.5 / static_cast<double>(N));
  }
  // SlotToCoeff: U * q0 / (2 pi * span * Delta).
  std::complex<double> Zeta = Enc.slotRoot(Row);
  std::complex<double> Entry = std::pow(Zeta, static_cast<double>(Col));
  double Factor = Eval.context().firstModulus() /
                  (2.0 * M_PI * static_cast<double>(span()) *
                   Eval.context().scale());
  return Entry * Factor;
}

const std::vector<Plaintext> &Bootstrapper::diagonals(int MatrixId,
                                                      size_t NumQ) const {
  auto Key = std::make_pair(MatrixId, NumQ);
  auto It = DiagCache.find(Key);
  if (It != DiagCache.end())
    return It->second;

  const Context &Ctx = Eval.context();
  const Encoder &Enc = Eval.encoder();
  size_t N = Ctx.slots();
  size_t BS = babySteps();
  // The plaintext scale is the prime the post-matvec rescale drops, so the
  // ciphertext scale is preserved exactly.
  double Scale = static_cast<double>(Ctx.qModulus(NumQ - 1));

  // Each diagonal's entries and encoding depend only on its own index
  // (slotRoot/matrixEntry read precomputed tables, Encoder::encode is
  // pure on the encode path), so the N diagonals build in parallel into
  // a pre-sized vector - a large one-time cost per (matrix, level) pair.
  std::vector<Plaintext> Diags(N);
  parallelFor(0, N, [&](size_t D) {
    std::vector<std::complex<double>> DiagValues(N);
    size_t GiantBase = (D / BS) * BS;
    for (size_t T = 0; T < N; ++T) {
      // diag_d[t] = M[t][(t+d) mod n], pre-rotated right by the giant
      // base (rot_{-giant}) so the BSGS inner sums can be rotated as a
      // block afterwards.
      size_t Src = (T + N - GiantBase % N) % N;
      DiagValues[T] = matrixEntry(MatrixId, Src, (Src + D) % N);
    }
    Diags[D] = Enc.encode(DiagValues, Scale, NumQ);
  });
  auto [Inserted, Ok] = DiagCache.emplace(Key, std::move(Diags));
  (void)Ok;
  return Inserted->second;
}

Ciphertext Bootstrapper::matvec(const Ciphertext &Ct, int MatrixId) const {
  size_t N = Ct.Slots;
  size_t BS = babySteps();
  size_t GS = (N + BS - 1) / BS;
  const std::vector<Plaintext> &Diags = diagonals(MatrixId, Ct.numQ());

  // Baby rotations of the input, hoisted: all BS-1 rotations share one
  // digit decomposition of Ct's c1 (the giant rotations below each act
  // on a distinct Inner ciphertext, so they cannot share one).
  std::vector<int64_t> BabySteps;
  BabySteps.reserve(BS - 1);
  for (size_t J = 1; J < BS; ++J)
    BabySteps.push_back(static_cast<int64_t>(J));
  std::vector<Ciphertext> Rotated;
  Rotated.reserve(BS);
  Rotated.push_back(Ct);
  for (Ciphertext &R : Eval.rotateHoisted(Ct, BabySteps))
    Rotated.push_back(std::move(R));

  bool HaveAcc = false;
  Ciphertext Acc;
  for (size_t I = 0; I < GS; ++I) {
    bool HaveInner = false;
    Ciphertext Inner;
    for (size_t J = 0; J < BS; ++J) {
      size_t D = I * BS + J;
      if (D >= N)
        break;
      // First term materializes the accumulator; the rest ride the
      // fused backend multiply-accumulate (bit-identical to the old
      // mulPlain + addInPlace pair, without the Term temporary).
      if (!HaveInner) {
        Inner = Eval.mulPlain(Rotated[J], Diags[D]);
        HaveInner = true;
      } else {
        Eval.mulPlainAddInPlace(Inner, Rotated[J], Diags[D]);
      }
    }
    if (!HaveInner)
      continue;
    Ciphertext Shifted =
        Eval.rotate(Inner, static_cast<int64_t>(I * BS));
    if (!HaveAcc) {
      Acc = std::move(Shifted);
      HaveAcc = true;
    } else {
      Eval.addInPlace(Acc, Shifted);
    }
  }
  assert(HaveAcc && "matrix-vector product over zero diagonals");
  Eval.rescaleInPlace(Acc);
  return Acc;
}

Ciphertext Bootstrapper::evalMod(const Ciphertext &U) const {
  // Chebyshev series of the scaled cosine.
  Ciphertext C = Cheb.evaluate(U, SineCoeffs);
  // Double-angle reconstruction: cos(2x) = 2 cos^2 x - 1.
  for (int R = 0; R < doubleAngles(); ++R) {
    Ciphertext Sq = Eval.mul(C, C);
    Eval.rescaleInPlace(Sq);
    Eval.mulIntegerInPlace(Sq, 2);
    Eval.addConstInPlace(Sq, -1.0);
    C = std::move(Sq);
  }
  if (!Config.ArcsineCorrection)
    return C;
  // s + s^3/6 ~ arcsin(s): recovers 2 pi frac(t) from s = sin(2 pi t).
  Ciphertext S2 = Eval.mul(C, C);
  Eval.rescaleInPlace(S2);
  Ciphertext T = Eval.mulScalar(S2, 1.0 / 6.0, C.Scale);
  Eval.rescaleInPlace(T);
  Eval.addConstInPlace(T, 1.0);
  Eval.matchForAdd(C, T);
  Ciphertext Y = Eval.mul(C, T);
  Eval.rescaleInPlace(Y);
  return Y;
}

Ciphertext Bootstrapper::modRaise(const Ciphertext &Ct, size_t NumQ) const {
  const Context &Ctx = Eval.context();
  assert(Ct.numQ() == 1 && "mod-raise expects a level-0 ciphertext");
  size_t N = Ctx.degree();
  uint64_t Q0 = Ctx.qModulus(0);

  Ciphertext Out;
  Out.Scale = Ct.Scale;
  Out.Slots = Ct.Slots;
  for (const RnsPoly &Poly : Ct.Polys) {
    RnsPoly Coeff = Poly;
    Coeff.toCoeff();
    const uint64_t *Src = Coeff.component(0);
    RnsPoly Raised(Ctx, NumQ, /*HasSpecial=*/false, /*NttForm=*/false);
    parallelFor(0, NumQ, [&](size_t C) {
      uint64_t Q = Ctx.qModulus(C);
      uint64_t *Dst = Raised.component(C);
      for (size_t K = 0; K < N; ++K) {
        uint64_t V = Src[K];
        // Centered lift: values above q0/2 represent negatives.
        if (V <= Q0 / 2)
          Dst[K] = V % Q;
        else
          Dst[K] = negMod((Q0 - V) % Q, Q);
      }
    });
    Raised.toNtt();
    Out.Polys.push_back(std::move(Raised));
  }
  return Out;
}

StatusOr<Ciphertext> Bootstrapper::checkedBootstrap(const Ciphertext &Ct,
                                                    size_t TargetNumQ) const {
  const Context &Ctx = Eval.context();
  ACE_RETURN_IF_ERROR(validateCiphertext(Ctx, Ct, "bootstrap"));
  if (Ct.size() != 2)
    return Status::invalidArgument(
        "bootstrap: relinearize before bootstrapping (ciphertext has " +
        std::to_string(Ct.size()) + " components)");
  if (!Ctx.params().SparseSecret)
    return Status::invalidArgument(
        "bootstrap: parameters use a dense secret; bootstrapping "
        "requires the sparse secret that bounds the ModRaise overflow");
  if (!scalesClose(Ct.Scale, Ctx.scale()))
    return Status::scaleMismatch(
        scaleMismatchMessage("bootstrap", Ct.Scale, Ctx.scale()) +
        "; the input must be at the context scale");
  if (TargetNumQ < 1)
    return Status::invalidArgument("bootstrap: target of 0 active primes");
  size_t Raised = TargetNumQ + static_cast<size_t>(depthCost());
  if (Raised > Ctx.chainLength())
    return Status::depthExhausted(
        "bootstrap: target of " + std::to_string(TargetNumQ) +
        " active primes needs a raised chain of " + std::to_string(Raised) +
        " primes but the modulus chain holds " +
        std::to_string(Ctx.chainLength()));
  const EvalKeys &Keys = Eval.keys();
  if (!Keys.HasRelin)
    return Status::keyMissing(
        "bootstrap: relinearization key not generated");
  if (!Keys.HasConjugate)
    return Status::keyMissing("bootstrap: conjugation key not generated");
  // Materialize and pin every rotation/Galois key the refresh will use
  // BEFORE entering the unchecked hot tier. Lazy (cache-backed) keygen
  // goes through the governor here, so under budget pressure the refusal
  // comes back in-band as ResourceExhausted instead of hitting
  // reportFatalError mid-bootstrap; the pins keep cache-served keys
  // resident for the whole refresh (eviction skips held keys), so every
  // hot-tier lookup below is a guaranteed hit. SubSum and CoeffToSlot
  // run at the raised level, so each key must cover Raised digits.
  std::vector<std::shared_ptr<const SwitchKey>> Pins;
  for (uint64_t Galois : requiredGaloisElements()) {
    Status S = Eval.materializeGaloisKey(Galois, Raised, Pins);
    if (!S.ok())
      return Status::error(S.code(), "bootstrap: SubSum Galois key for "
                                     "element " +
                                         std::to_string(Galois) + ": " +
                                         S.message());
  }
  for (int64_t Step : requiredRotations()) {
    uint64_t Galois = galoisForRotation(Ctx.degree(), Ctx.slots(), Step);
    if (Galois == 1)
      continue;
    Status S = Eval.materializeGaloisKey(Galois, Raised, Pins);
    if (!S.ok())
      return Status::error(S.code(), "bootstrap: BSGS rotation key for "
                                     "step " +
                                         std::to_string(Step) + ": " +
                                         S.message());
  }
  return bootstrap(Ct, TargetNumQ);
}

Ciphertext Bootstrapper::bootstrap(const Ciphertext &Ct,
                                   size_t TargetNumQ) const {
  const Context &Ctx = Eval.context();
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Bootstrap, Ct.numQ(), Ct.Scale,
               Eval.noiseBudgetBits(Ct));
  assert(Ctx.params().SparseSecret &&
         "bootstrapping requires the sparse secret (bounds RangeK)");
  assert(scalesCloseOrReport("bootstrap", Ct.Scale, Ctx.scale()) &&
         "bootstrap input must be at the context scale");
  size_t Raised = TargetNumQ + static_cast<size_t>(depthCost());
  assert(Raised <= Ctx.chainLength() &&
         "modulus chain too short for this bootstrap target");

  double InputScale = Ct.Scale;

  // 1. Down to q_0 and back up onto the working chain. The plaintext
  //    becomes p + q_0 * I with |I| <= K.
  Ciphertext Work = Ct;
  {
    telemetry::TraceSpan Stage("bootstrap", "ModRaise");
    Eval.modSwitchTo(Work, 1);
    Work = modRaise(Work, Raised);
  }

  // 2. SubSum trace: projects the (general) overflow polynomial onto the
  //    packing subring, multiplying message and overflow by span. The
  //    overflow bound becomes K2 = span * K; EvalMod's extra double-angle
  //    iterations absorb it.
  {
    telemetry::TraceSpan Stage("bootstrap", "SubSum");
    for (uint64_t Galois : requiredGaloisElements()) {
      Ciphertext Rotated = Eval.rotateGalois(Work, Galois);
      Eval.addInPlace(Work, Rotated);
    }
  }

  // 3. CoeffToSlot, then normalize into [-1, 1]: first a pure metadata
  //    scale change (exact; see matrixEntry), then an exact downscale
  //    back to Delta so EvalMod's multiplications stay on the rescale
  //    waterline.
  Ciphertext Z = [&] {
    telemetry::TraceSpan Stage("bootstrap", "CoeffToSlot");
    Ciphertext R = matvec(Work, /*MatrixId=*/0);
    R.Scale = Eval.context().firstModulus() * (rangeBound() + 1);
    Eval.downscaleInPlace(R, Eval.context().scale());
    return R;
  }();

  // 4. Separate real and imaginary coefficient vectors.
  Ciphertext ZConj = Eval.conjugate(Z);
  Ciphertext CtA = Eval.add(Z, ZConj);
  Ciphertext CtB = Eval.negate(Eval.mulByI(Eval.sub(Z, ZConj)));

  // 5. EvalMod on both.
  Ciphertext YA, YB;
  {
    telemetry::TraceSpan Stage("bootstrap", "EvalMod");
    YA = evalMod(CtA);
    YB = evalMod(CtB);
  }

  // 6. Recombine and SlotToCoeff (whose constants restore the original
  //    message normalization).
  Ciphertext YBi = Eval.mulByI(YB);
  Eval.matchForAdd(YA, YBi);
  Ciphertext Combined = Eval.add(YA, YBi);
  Ciphertext Out = [&] {
    telemetry::TraceSpan Stage("bootstrap", "SlotToCoeff");
    return matvec(Combined, /*MatrixId=*/1);
  }();

  // 7. The doubling chain's multiplicative scale drift lands the result
  //    slightly off the input scale; one exact downscale restores it.
  Eval.downscaleInPlace(Out, InputScale);

  assert(Out.numQ() >= TargetNumQ && "bootstrap consumed more than planned");
  Eval.modSwitchTo(Out, TargetNumQ);
  return Out;
}

size_t Bootstrapper::cachedPlaintextBytes() const {
  size_t Sum = 0;
  for (const auto &[Key, Diags] : DiagCache)
    for (const Plaintext &P : Diags)
      Sum += P.byteSize();
  return Sum;
}
