//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Homomorphic Encryption Standard security tables (Albrecht et al.,
/// "Homomorphic Encryption Standard", 2019 - paper reference [7]): the
/// maximum total modulus size log2(Q*P) per ring degree N for a ternary
/// secret at classical 128-bit security. The compiler's automatic
/// parameter selection (paper Sec. 4.4, Table 10) consults this table to
/// pick the smallest N whose budget covers the modulus chain the program
/// needs: N = max(N_security, N_simd).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_SECURITY_H
#define ACE_FHE_SECURITY_H

#include <cstddef>

namespace ace {
namespace fhe {

/// Security levels supported by the parameter selector.
enum class SecurityLevelKind {
  SL_None, ///< Toy parameters for fast functional runs; NOT secure.
  SL_128,  ///< Classical 128-bit security.
  SL_192,  ///< Classical 192-bit security.
  SL_256,  ///< Classical 256-bit security.
};

/// Maximum log2(Q*P) for ring degree \p N at \p Level with a ternary
/// secret, per the HE standard table. Returns 0 when N is below 1024 or
/// not a power of two (no standardized entry); returns a huge budget for
/// SL_None.
inline int maxLogQ(size_t N, SecurityLevelKind Level) {
  if (Level == SecurityLevelKind::SL_None)
    return 1 << 20;
  if (N < 1024 || (N & (N - 1)) != 0)
    return 0;
  // HE standard, ternary secret, classical security. Entries above 2^15
  // follow the standard's doubling extrapolation used by SEAL and OpenFHE.
  struct Row {
    size_t N;
    int Bits128, Bits192, Bits256;
  };
  static const Row Table[] = {
      {1024, 27, 19, 14},      {2048, 54, 37, 29},
      {4096, 109, 75, 58},     {8192, 218, 152, 118},
      {16384, 438, 305, 237},  {32768, 881, 611, 476},
      {65536, 1772, 1228, 956}, {131072, 3544, 2456, 1912},
  };
  for (const Row &R : Table) {
    if (R.N != N)
      continue;
    switch (Level) {
    case SecurityLevelKind::SL_128:
      return R.Bits128;
    case SecurityLevelKind::SL_192:
      return R.Bits192;
    case SecurityLevelKind::SL_256:
      return R.Bits256;
    case SecurityLevelKind::SL_None:
      break;
    }
  }
  return 0;
}

/// Smallest standardized ring degree whose budget at \p Level covers
/// \p LogQ bits of total modulus. Returns 0 when even the largest table
/// entry is insufficient.
inline size_t minRingDegreeFor(int LogQ, SecurityLevelKind Level) {
  if (Level == SecurityLevelKind::SL_None)
    return 8; // anything goes functionally; caller raises for SIMD width
  for (size_t N = 1024; N <= 131072; N *= 2)
    if (maxLogQ(N, Level) >= LogQ)
      return N;
  return 0;
}

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_SECURITY_H
