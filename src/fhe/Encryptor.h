//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Public-key encryption and secret-key decryption (paper Fig. 1 and the
/// threat model of Fig. 2: the client encrypts with the public key, the
/// server computes, the client decrypts with its secret key). The
/// ANT-ACE-generated encryptor/decryptor pair in the compiled program is a
/// thin wrapper over these classes plus the Encoder.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_ENCRYPTOR_H
#define ACE_FHE_ENCRYPTOR_H

#include "fhe/Encoder.h"
#include "fhe/Keys.h"
#include "support/Rng.h"

namespace ace {
namespace fhe {

/// Encrypts plaintexts under a public key.
class Encryptor {
public:
  Encryptor(const Context &Ctx, const PublicKey &Key);

  /// Encrypts \p Plain at its level; the result carries the plaintext's
  /// scale and slot count.
  Ciphertext encrypt(const Plaintext &Plain);

  /// Convenience: encode \p Values at the context scale with \p NumQ
  /// active primes and encrypt.
  Ciphertext encryptValues(const Encoder &Enc,
                           const std::vector<double> &Values, size_t NumQ);

  /// Release-mode validated variant of encryptValues: verifies \p NumQ
  /// lies within the modulus chain and \p Values fits the slot count,
  /// and routes the fresh ciphertext through the fault-injection hook
  /// (applyCiphertextFaults) so armed metadata corruptions take effect.
  StatusOr<Ciphertext> checkedEncryptValues(const Encoder &Enc,
                                            const std::vector<double> &Values,
                                            size_t NumQ);

private:
  const Context &Ctx;
  const PublicKey &Key;
  Rng Rand;
};

/// Fault-injection hook for freshly produced ciphertexts: applies any
/// armed metadata corruption (scale drift, slot-count corruption,
/// inconsistent prime-chain truncation) to \p Ct. No-op when the
/// injector has nothing armed.
void applyCiphertextFaults(Ciphertext &Ct);

/// Decrypts ciphertexts with the secret key.
class Decryptor {
public:
  Decryptor(const Context &Ctx, const SecretKey &Key);

  /// Decrypts to a plaintext (handles both 2- and 3-polynomial
  /// ciphertexts; the latter uses s^2 directly, as a debugging aid).
  Plaintext decrypt(const Ciphertext &Ct);

  /// Decrypts and decodes to complex slot values.
  std::vector<std::complex<double>> decryptValues(const Encoder &Enc,
                                                  const Ciphertext &Ct);

  /// Decrypts and decodes, returning real parts only.
  std::vector<double> decryptRealValues(const Encoder &Enc,
                                        const Ciphertext &Ct);

  /// Release-mode validated variant of decryptRealValues: rejects
  /// malformed or metadata-corrupted ciphertexts with a diagnostic
  /// instead of decoding garbage.
  StatusOr<std::vector<double>>
  checkedDecryptRealValues(const Encoder &Enc, const Ciphertext &Ct);

private:
  const Context &Ctx;
  const SecretKey &Key;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_ENCRYPTOR_H
