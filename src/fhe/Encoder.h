//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CKKS canonical-embedding encoder/decoder (paper Fig. 1: message <->
/// plaintext). A message of n complex slots (n a power of two, n <= N/2) is
/// mapped through the inverse special FFT to a real polynomial, scaled by
/// Delta, rounded, and carried into RNS form. For n < N/2 the coefficients
/// are placed with stride N/(2n) ("sparse packing"), which embeds the
/// message in the subring Z[X^gap] - the layout the bootstrapper's linear
/// transforms assume. Decoding inverts the pipeline using exact
/// mixed-radix (Garner) CRT reconstruction of the signed coefficients.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_ENCODER_H
#define ACE_FHE_ENCODER_H

#include "fhe/Cipher.h"
#include "fhe/Context.h"

#include <complex>
#include <vector>

namespace ace {
namespace fhe {

/// Encoder bound to a Context; precomputes root tables per slot count.
class Encoder {
public:
  explicit Encoder(const Context &Ctx);

  const Context &context() const { return Ctx; }

  /// Encodes \p Values (size <= Slots; zero-padded) into a plaintext with
  /// \p NumQ active primes at scale \p Scale. The result is in NTT form,
  /// ready for ciphertext-plaintext products.
  Plaintext encode(const std::vector<std::complex<double>> &Values,
                   double Scale, size_t NumQ) const;

  /// Real-vector convenience overload.
  Plaintext encodeReal(const std::vector<double> &Values, double Scale,
                       size_t NumQ) const;

  /// Encodes the constant \p Value replicated across all slots.
  Plaintext encodeConstant(double Value, double Scale, size_t NumQ) const;

  /// Decodes a coefficient-domain polynomial at \p Scale into slot values.
  std::vector<std::complex<double>> decode(const RnsPoly &Poly,
                                           double Scale) const;

  /// Decodes a plaintext (any domain) into slot values.
  std::vector<std::complex<double>> decode(const Plaintext &Plain) const;

  /// The number of slots this encoder packs (Context::slots()).
  size_t slots() const { return Slots; }

  /// Forward special FFT (coefficient pairs -> slot values), exposed for
  /// the bootstrapper, which needs the same root ordering to build its
  /// CoeffToSlot / SlotToCoeff matrices.
  void fftSpecial(std::vector<std::complex<double>> &Values) const;

  /// Inverse special FFT (slot values -> coefficient pairs), including the
  /// 1/n normalization.
  void fftSpecialInv(std::vector<std::complex<double>> &Values) const;

  /// The primitive 4n-th root zeta_j = omega^{5^j} at which slot j
  /// evaluates the subring polynomial; used to build bootstrap matrices.
  std::complex<double> slotRoot(size_t J) const;

  /// Converts signed coefficient values into an RNS polynomial (NTT form
  /// off) with \p NumQ primes. Values must satisfy |v| < 2^62.
  RnsPoly coeffsToPoly(const std::vector<long double> &Coeffs,
                       size_t NumQ) const;

  /// Exact signed CRT reconstruction of every coefficient of \p Poly
  /// (coefficient domain) as long double.
  std::vector<long double> polyToCoeffs(const RnsPoly &Poly) const;

private:
  const Context &Ctx;
  size_t Slots;
  /// 5^j mod 4n for j < n (slot evaluation-point ordering).
  std::vector<uint64_t> RotGroup;
  /// omega^k for k <= 4n, omega = exp(2*pi*i / 4n).
  std::vector<std::complex<double>> KsiPows;

  /// Garner-reconstruction tables per active-prime count, built lazily.
  struct GarnerTable {
    std::vector<uint64_t> InvPartialProd; // inv(q_0..q_{i-1}) mod q_i
    std::vector<long double> PartialProdLd; // q_0..q_{i-1} as long double
    long double TotalLd = 0;
  };
  mutable std::vector<GarnerTable> GarnerTables;
  const GarnerTable &garnerTable(size_t NumQ) const;

  /// Reconstructs one coefficient given its residues (strided access into
  /// component arrays).
  long double reconstructSigned(const RnsPoly &Poly, size_t CoeffIndex,
                                const GarnerTable &Table) const;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_ENCODER_H
