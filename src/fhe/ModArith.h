//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit prime-field arithmetic for RNS-CKKS. All moduli are NTT-friendly
/// primes p < 2^60 with p = 1 (mod 2N), so products fit in 128 bits and a
/// 2N-th root of unity exists. Hot paths (NTT butterflies, pointwise
/// products) use Shoup's precomputed-quotient multiplication; everything
/// else uses straightforward 128-bit reduction.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_MODARITH_H
#define ACE_FHE_MODARITH_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ace {
namespace fhe {

/// Adds two residues modulo \p P. Inputs must already be reduced.
inline uint64_t addMod(uint64_t A, uint64_t B, uint64_t P) {
  assert(A < P && B < P && "addMod operands must be reduced");
  uint64_t Sum = A + B;
  return Sum >= P ? Sum - P : Sum;
}

/// Subtracts \p B from \p A modulo \p P. Inputs must already be reduced.
inline uint64_t subMod(uint64_t A, uint64_t B, uint64_t P) {
  assert(A < P && B < P && "subMod operands must be reduced");
  return A >= B ? A - B : A + P - B;
}

/// Negates \p A modulo \p P.
inline uint64_t negMod(uint64_t A, uint64_t P) {
  assert(A < P && "negMod operand must be reduced");
  return A == 0 ? 0 : P - A;
}

/// Multiplies two residues modulo \p P via 128-bit reduction.
inline uint64_t mulMod(uint64_t A, uint64_t B, uint64_t P) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(A) * B) % P);
}

/// Shoup multiplication: computes A*B mod P where \p BShoup is
/// floor(B * 2^64 / P). Roughly 2x faster than mulMod when B is reused
/// (twiddle factors, plaintext constants).
inline uint64_t mulModShoup(uint64_t A, uint64_t B, uint64_t BShoup,
                            uint64_t P) {
  uint64_t Q = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(A) * BShoup) >> 64);
  uint64_t R = A * B - Q * P;
  return R >= P ? R - P : R;
}

/// Precomputes the Shoup companion floor(B * 2^64 / P) for mulModShoup.
inline uint64_t shoupPrecompute(uint64_t B, uint64_t P) {
  assert(B < P && "shoup operand must be reduced");
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(B) << 64) / P);
}

/// Computes Base^Exp mod P by square-and-multiply.
uint64_t powMod(uint64_t Base, uint64_t Exp, uint64_t P);

/// Computes the inverse of \p A modulo prime \p P (Fermat). \p A must be
/// nonzero mod P.
uint64_t invMod(uint64_t A, uint64_t P);

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
bool isPrime(uint64_t X);

/// Finds a generator of the multiplicative group mod prime \p P.
uint64_t findGenerator(uint64_t P);

/// Finds a primitive \p Order-th root of unity modulo prime \p P.
/// \p Order must divide P-1.
uint64_t findPrimitiveRoot(uint64_t Order, uint64_t P);

/// Generates \p Count distinct NTT-friendly primes of roughly \p Bits bits
/// with p = 1 (mod \p Factor), largest first, skipping any prime already in
/// \p Exclude. Asserts on failure (the prime density makes failure
/// practically impossible for Bits in [20, 60]).
std::vector<uint64_t> generateNttPrimes(int Bits, uint64_t Factor,
                                        size_t Count,
                                        const std::vector<uint64_t> &Exclude);

/// Like generateNttPrimes, but picks the primes nearest to 2^Bits (from
/// both sides) and orders them so every partial product stays as close to
/// 2^(Bits*i) as possible. Rescale primes chosen this way keep ciphertext
/// scales near the nominal Delta along the whole chain, bounding the
/// scale drift of additions between differently-rescaled branches.
std::vector<uint64_t>
generateBalancedNttPrimes(int Bits, uint64_t Factor, size_t Count,
                          const std::vector<uint64_t> &Exclude);

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_MODARITH_H
