//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/CApi.h"

#include "fhe/Bootstrapper.h"
#include "fhe/CApiInternal.h"
#include "fhe/Encryptor.h"
#include "fhe/Evaluator.h"
#include "fhe/PolyBackend.h"
#include "fhe/Serializer.h"
#include "support/LimbPool.h"
#include "support/MetricsRegistry.h"
#include "support/PipelineConfig.h"
#include "support/ResourceGovernor.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace ace;
using namespace ace::fhe;

//===----------------------------------------------------------------------===//
// Thread-local error channel
//===----------------------------------------------------------------------===//

namespace {
thread_local AceErrorCode LastErrorCode = ACE_OK;
thread_local std::string LastErrorMessage;

AceErrorCode toCCode(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return ACE_OK;
  case ErrorCode::InvalidArgument:
    return ACE_ERR_INVALID_ARGUMENT;
  case ErrorCode::LevelMismatch:
    return ACE_ERR_LEVEL_MISMATCH;
  case ErrorCode::ScaleMismatch:
    return ACE_ERR_SCALE_MISMATCH;
  case ErrorCode::KeyMissing:
    return ACE_ERR_KEY_MISSING;
  case ErrorCode::DepthExhausted:
    return ACE_ERR_DEPTH_EXHAUSTED;
  case ErrorCode::ResourceExhausted:
    return ACE_ERR_RESOURCE_EXHAUSTED;
  case ErrorCode::Internal:
    return ACE_ERR_INTERNAL;
  case ErrorCode::DataCorrupt:
    return ACE_ERR_DATA_CORRUPT;
  case ErrorCode::IoError:
    return ACE_ERR_IO;
  case ErrorCode::Cancelled:
    return ACE_ERR_CANCELLED;
  case ErrorCode::DeadlineExceeded:
    return ACE_ERR_DEADLINE_EXCEEDED;
  }
  return ACE_ERR_INTERNAL;
}

void setLastError(const Status &S) {
  LastErrorCode = toCCode(S.code());
  LastErrorMessage = S.message();
}

void setLastError(AceErrorCode Code, std::string Message) {
  LastErrorCode = Code;
  LastErrorMessage = std::move(Message);
}
} // namespace

AceErrorCode ace::capi::toCErrorCode(ErrorCode Code) {
  return toCCode(Code);
}

void ace::capi::setLastStatus(const Status &S) { setLastError(S); }

void ace::capi::setLastErrorCode(AceErrorCode Code, std::string Message) {
  setLastError(Code, std::move(Message));
}

AceErrorCode ace_last_error(void) { return LastErrorCode; }

const char *ace_last_error_message(void) {
  return LastErrorMessage.c_str();
}

void ace_clear_error(void) {
  LastErrorCode = ACE_OK;
  LastErrorMessage.clear();
}

//===----------------------------------------------------------------------===//
// Handles
//===----------------------------------------------------------------------===//

// Handle structs carry a magic tag so use-after-free and garbage pointers
// are detected best-effort instead of corrupting memory.
namespace {
constexpr uint32_t kContextMagic = 0xACEC0DE1u;
constexpr uint32_t kCipherMagic = 0xACEC0DE2u;
constexpr uint32_t kDeadMagic = 0xDEADC0DEu;
} // namespace

/// The C context bundles the whole runtime.
struct AceFheContext {
  uint32_t Magic = kContextMagic;
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Bootstrapper> Boot;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

struct AceFheCiphertext {
  uint32_t Magic = kCipherMagic;
  Ciphertext Ct;
};

namespace {
bool validContext(const AceFheContext *Ctx, const char *What) {
  if (Ctx && Ctx->Magic == kContextMagic)
    return true;
  setLastError(ACE_ERR_INVALID_ARGUMENT,
               std::string(What) +
                   ": null, freed, or corrupted context handle");
  return false;
}

bool validCipher(const AceFheCiphertext *Ct, const char *What) {
  if (Ct && Ct->Magic == kCipherMagic)
    return true;
  setLastError(ACE_ERR_INVALID_ARGUMENT,
               std::string(What) +
                   ": null, freed, or corrupted ciphertext handle");
  return false;
}

/// Wraps a checked-evaluator result into a fresh handle, or records the
/// error and returns NULL.
AceFheCiphertext *wrapResult(StatusOr<Ciphertext> Result) {
  if (!Result.ok()) {
    setLastError(Result.status());
    return nullptr;
  }
  return new AceFheCiphertext{kCipherMagic, Result.take()};
}
} // namespace

//===----------------------------------------------------------------------===//
// Context lifecycle
//===----------------------------------------------------------------------===//

AceFheContext *ace_create(size_t RingDegree, size_t Slots, int LogScale,
                          int LogQ0, int NumRescale, int LogSpecial,
                          int SparseSecret, uint64_t Seed) {
  CkksParams P;
  P.RingDegree = RingDegree;
  P.Slots = Slots;
  P.LogScale = LogScale;
  P.LogFirstModulus = LogQ0;
  P.NumRescaleModuli = NumRescale;
  P.LogSpecialModulus = LogSpecial;
  P.SparseSecret = SparseSecret != 0;
  P.Seed = Seed;
  if (!P.valid()) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "create: invalid parameters: ring degree " +
                     std::to_string(RingDegree) + ", " +
                     std::to_string(Slots) + " slots, log scale " +
                     std::to_string(LogScale) + ", log q0 " +
                     std::to_string(LogQ0) + ", " +
                     std::to_string(NumRescale) +
                     " rescale primes, log special " +
                     std::to_string(LogSpecial));
    return nullptr;
  }
  auto *C = new AceFheContext();
  C->Ctx = std::make_unique<Context>(P);
  C->Enc = std::make_unique<Encoder>(*C->Ctx);
  C->Gen = std::make_unique<KeyGenerator>(*C->Ctx);
  C->Pub = C->Gen->makePublicKey();
  C->Eval = std::make_unique<Evaluator>(*C->Ctx, *C->Enc, C->Keys);
  C->Encrypt = std::make_unique<Encryptor>(*C->Ctx, C->Pub);
  C->Decrypt = std::make_unique<Decryptor>(*C->Ctx, C->Gen->secretKey());
  return C;
}

void ace_destroy(AceFheContext *Ctx) {
  if (!Ctx)
    return;
  Ctx->Magic = kDeadMagic;
  delete Ctx;
}

int ace_keygen(AceFheContext *C, const int64_t *Steps,
               const size_t *StepMaxQ, size_t NSteps, int NeedRelin,
               int NeedConj, int Bootstrap, int BootK, int BootDa,
               int BootDeg) {
  if (!validContext(C, "keygen"))
    return ACE_ERR_INVALID_ARGUMENT;
  if (NSteps > 0 && !Steps) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "keygen: " + std::to_string(NSteps) +
                     " rotation steps requested but the step array is "
                     "NULL");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  if (Bootstrap) {
    if (BootK < 1 || BootDa < 0 || BootDeg < 3) {
      setLastError(ACE_ERR_INVALID_ARGUMENT,
                   "keygen: invalid bootstrap configuration: range K " +
                       std::to_string(BootK) + ", double angles " +
                       std::to_string(BootDa) + ", chebyshev degree " +
                       std::to_string(BootDeg));
      return ACE_ERR_INVALID_ARGUMENT;
    }
    BootstrapConfig Cfg;
    Cfg.RangeK = BootK;
    Cfg.DoubleAngleCount = BootDa;
    Cfg.ChebyshevDegree = BootDeg;
    C->Boot = std::make_unique<Bootstrapper>(*C->Eval, Cfg);
    C->Gen->fillEvalKeys(C->Keys, C->Boot->requiredRotations(),
                         NeedRelin != 0, /*NeedConjugate=*/true);
    C->Gen->fillGaloisKeys(C->Keys, C->Boot->requiredGaloisElements());
  }
  for (size_t I = 0; I < NSteps; ++I) {
    uint64_t Galois =
        galoisForRotation(C->Ctx->degree(), C->Ctx->slots(), Steps[I]);
    if (Galois == 1 || C->Keys.Rotations.count(Galois))
      continue;
    size_t MaxQ = StepMaxQ ? StepMaxQ[I] : 0;
    C->Keys.Rotations.emplace(Galois,
                              C->Gen->makeRotationKey(Steps[I], MaxQ));
  }
  if (NeedRelin && !C->Keys.HasRelin) {
    C->Keys.Relin = C->Gen->makeRelinKey();
    C->Keys.HasRelin = true;
  }
  if (NeedConj && !C->Keys.HasConjugate) {
    C->Keys.Conjugate = C->Gen->makeConjugationKey();
    C->Keys.HasConjugate = true;
  }
  return ACE_OK;
}

//===----------------------------------------------------------------------===//
// Encrypt / decrypt
//===----------------------------------------------------------------------===//

AceFheCiphertext *ace_encrypt(AceFheContext *C, const double *Slots,
                              size_t N, size_t NumQ) {
  if (!validContext(C, "encrypt"))
    return nullptr;
  if (N > 0 && !Slots) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "encrypt: NULL slot array with " + std::to_string(N) +
                     " values");
    return nullptr;
  }
  std::vector<double> V(Slots, Slots + N);
  auto R = C->Encrypt->checkedEncryptValues(*C->Enc, V, NumQ);
  // Postcondition: a fresh encryption is always at the context scale. In a
  // generated program every ciphertext derives from the inputs encrypted
  // here, and downstream plaintext encodes adapt to the operand's recorded
  // scale — so a corrupted input scale would flow through a purely linear
  // pipeline undetected. This boundary is the only place it can be caught.
  if (R.ok() && !scalesClose(R->Scale, C->Ctx->scale())) {
    setLastError(ACE_ERR_SCALE_MISMATCH,
                 scaleMismatchMessage("encrypt", R->Scale, C->Ctx->scale()) +
                     "; a fresh ciphertext must be at the context scale "
                     "(corrupted metadata?)");
    return nullptr;
  }
  return wrapResult(std::move(R));
}

int ace_decrypt(AceFheContext *C, const AceFheCiphertext *Ct, double *Out,
                size_t N) {
  if (!validContext(C, "decrypt") || !validCipher(Ct, "decrypt"))
    return ACE_ERR_INVALID_ARGUMENT;
  if (N > 0 && !Out) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "decrypt: NULL output array with " + std::to_string(N) +
                     " slots requested");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  auto V = C->Decrypt->checkedDecryptRealValues(*C->Enc, Ct->Ct);
  if (!V.ok()) {
    setLastError(V.status());
    return toCCode(V.status().code());
  }
  for (size_t I = 0; I < N && I < V->size(); ++I)
    Out[I] = (*V)[I];
  return ACE_OK;
}

void ace_ct_free(AceFheCiphertext *Ct) {
  if (!Ct)
    return;
  Ct->Magic = kDeadMagic;
  delete Ct;
}

//===----------------------------------------------------------------------===//
// Homomorphic operations
//===----------------------------------------------------------------------===//

AceFheCiphertext *ace_rotate(AceFheContext *C, const AceFheCiphertext *A,
                             int64_t Steps) {
  if (!validContext(C, "rotate") || !validCipher(A, "rotate"))
    return nullptr;
  return wrapResult(C->Eval->checkedRotate(A->Ct, Steps));
}

AceFheCiphertext *ace_add(AceFheContext *C, const AceFheCiphertext *A,
                          const AceFheCiphertext *B) {
  if (!validContext(C, "add") || !validCipher(A, "add") ||
      !validCipher(B, "add"))
    return nullptr;
  return wrapResult(C->Eval->checkedAdd(A->Ct, B->Ct));
}

AceFheCiphertext *ace_sub(AceFheContext *C, const AceFheCiphertext *A,
                          const AceFheCiphertext *B) {
  if (!validContext(C, "sub") || !validCipher(A, "sub") ||
      !validCipher(B, "sub"))
    return nullptr;
  return wrapResult(C->Eval->checkedSub(A->Ct, B->Ct));
}

AceFheCiphertext *ace_mul(AceFheContext *C, const AceFheCiphertext *A,
                          const AceFheCiphertext *B) {
  if (!validContext(C, "mul") || !validCipher(A, "mul") ||
      !validCipher(B, "mul"))
    return nullptr;
  return wrapResult(C->Eval->checkedMul(A->Ct, B->Ct));
}

AceFheCiphertext *ace_mul_plain(AceFheContext *C, const AceFheCiphertext *A,
                                const double *Vec, size_t N) {
  if (!validContext(C, "mul_plain") || !validCipher(A, "mul_plain"))
    return nullptr;
  if (N > 0 && !Vec) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "mul_plain: NULL plaintext vector with " +
                     std::to_string(N) + " values");
    return nullptr;
  }
  std::vector<double> V(Vec, Vec + N);
  return wrapResult(C->Eval->checkedMulPlain(A->Ct, V));
}

AceFheCiphertext *ace_add_plain(AceFheContext *C, const AceFheCiphertext *A,
                                const double *Vec, size_t N) {
  if (!validContext(C, "add_plain") || !validCipher(A, "add_plain"))
    return nullptr;
  if (N > 0 && !Vec) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "add_plain: NULL plaintext vector with " +
                     std::to_string(N) + " values");
    return nullptr;
  }
  std::vector<double> V(Vec, Vec + N);
  return wrapResult(C->Eval->checkedAddPlain(A->Ct, V));
}

AceFheCiphertext *ace_mul_const(AceFheContext *C, const AceFheCiphertext *A,
                                double Value) {
  if (!validContext(C, "mul_const") || !validCipher(A, "mul_const"))
    return nullptr;
  return wrapResult(
      C->Eval->checkedMulScalar(A->Ct, Value, A->Ct.Scale));
}

AceFheCiphertext *ace_add_const(AceFheContext *C, const AceFheCiphertext *A,
                                double Value) {
  if (!validContext(C, "add_const") || !validCipher(A, "add_const"))
    return nullptr;
  return wrapResult(C->Eval->checkedAddConst(A->Ct, Value));
}

AceFheCiphertext *ace_rescale(AceFheContext *C, const AceFheCiphertext *A) {
  if (!validContext(C, "rescale") || !validCipher(A, "rescale"))
    return nullptr;
  return wrapResult(C->Eval->checkedRescale(A->Ct));
}

AceFheCiphertext *ace_modswitch_to(AceFheContext *C,
                                   const AceFheCiphertext *A, size_t NumQ) {
  if (!validContext(C, "modswitch") || !validCipher(A, "modswitch"))
    return nullptr;
  return wrapResult(C->Eval->checkedModSwitchTo(A->Ct, NumQ));
}

AceFheCiphertext *ace_bootstrap(AceFheContext *C, const AceFheCiphertext *A,
                                size_t Target) {
  if (!validContext(C, "bootstrap") || !validCipher(A, "bootstrap"))
    return nullptr;
  if (!C->Boot) {
    setLastError(ACE_ERR_KEY_MISSING,
                 "bootstrap: bootstrapping keys not generated (keygen "
                 "was called without the bootstrap flag)");
    return nullptr;
  }
  return wrapResult(C->Boot->checkedBootstrap(A->Ct, Target));
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {
/// Opens \p Path for binary writing, reporting IoError through the error
/// channel on failure.
bool openForWrite(const char *Path, const char *What, std::ofstream &OS) {
  if (!Path) {
    setLastError(ACE_ERR_INVALID_ARGUMENT, std::string(What) + ": NULL path");
    return false;
  }
  OS.open(Path, std::ios::binary | std::ios::trunc);
  if (!OS) {
    setLastError(ACE_ERR_IO, std::string(What) + ": cannot open '" + Path +
                                 "' for writing");
    return false;
  }
  return true;
}

bool openForRead(const char *Path, const char *What, std::ifstream &IS) {
  if (!Path) {
    setLastError(ACE_ERR_INVALID_ARGUMENT, std::string(What) + ": NULL path");
    return false;
  }
  IS.open(Path, std::ios::binary);
  if (!IS) {
    setLastError(ACE_ERR_IO, std::string(What) + ": cannot open '" + Path +
                                 "' for reading");
    return false;
  }
  return true;
}

/// A ciphertext handle passed to save must actually belong to the context
/// it is saved under, otherwise the validation baked into the wire format
/// would certify it against the wrong parameters.
bool cipherBelongsTo(const AceFheContext *C, const AceFheCiphertext *Ct,
                     const char *What) {
  if (Ct->Ct.Polys.empty() || !Ct->Ct.Polys[0].bound() ||
      &Ct->Ct.Polys[0].context() != C->Ctx.get()) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 std::string(What) +
                     ": ciphertext does not belong to this context");
    return false;
  }
  return true;
}
} // namespace

int ace_params_save(AceFheContext *C, const char *Path) {
  if (!validContext(C, "params_save"))
    return ACE_ERR_INVALID_ARGUMENT;
  std::ofstream OS;
  if (!openForWrite(Path, "params_save", OS))
    return ace_last_error();
  Status S = wire::save(C->Ctx->params(), OS);
  if (!S.ok()) {
    setLastError(S);
    return toCCode(S.code());
  }
  return ACE_OK;
}

AceFheContext *ace_params_load(const char *Path) {
  std::ifstream IS;
  if (!openForRead(Path, "params_load", IS))
    return nullptr;
  StatusOr<CkksParams> P = wire::loadParams(IS);
  if (!P.ok()) {
    setLastError(P.status());
    return nullptr;
  }
  return ace_create(P->RingDegree, P->Slots, P->LogScale,
                    P->LogFirstModulus, P->NumRescaleModuli,
                    P->LogSpecialModulus, P->SparseSecret ? 1 : 0, P->Seed);
}

int ace_ct_save(AceFheContext *C, const AceFheCiphertext *Ct,
                const char *Path) {
  if (!validContext(C, "ct_save") || !validCipher(Ct, "ct_save"))
    return ACE_ERR_INVALID_ARGUMENT;
  if (!cipherBelongsTo(C, Ct, "ct_save"))
    return ACE_ERR_INVALID_ARGUMENT;
  std::ofstream OS;
  if (!openForWrite(Path, "ct_save", OS))
    return ace_last_error();
  Status S = wire::save(Ct->Ct, OS);
  if (!S.ok()) {
    setLastError(S);
    return toCCode(S.code());
  }
  return ACE_OK;
}

AceFheCiphertext *ace_ct_load(AceFheContext *C, const char *Path) {
  if (!validContext(C, "ct_load"))
    return nullptr;
  std::ifstream IS;
  if (!openForRead(Path, "ct_load", IS))
    return nullptr;
  StatusOr<Ciphertext> Ct = wire::loadCiphertext(*C->Ctx, IS);
  if (!Ct.ok()) {
    setLastError(Ct.status());
    return nullptr;
  }
  return new AceFheCiphertext{kCipherMagic, Ct.take()};
}

int ace_key_save(AceFheContext *C, const char *Path) {
  if (!validContext(C, "key_save"))
    return ACE_ERR_INVALID_ARGUMENT;
  std::ofstream OS;
  if (!openForWrite(Path, "key_save", OS))
    return ace_last_error();
  Status S = wire::save(C->Pub, OS);
  if (S.ok())
    S = wire::save(C->Keys, OS);
  if (!S.ok()) {
    setLastError(S);
    return toCCode(S.code());
  }
  return ACE_OK;
}

int ace_key_load(AceFheContext *C, const char *Path) {
  if (!validContext(C, "key_load"))
    return ACE_ERR_INVALID_ARGUMENT;
  std::ifstream IS;
  if (!openForRead(Path, "key_load", IS))
    return ace_last_error();
  StatusOr<PublicKey> Pub = wire::loadPublicKey(*C->Ctx, IS);
  if (!Pub.ok()) {
    setLastError(Pub.status());
    return toCCode(Pub.status().code());
  }
  StatusOr<EvalKeys> Keys = wire::loadEvalKeys(*C->Ctx, IS);
  if (!Keys.ok()) {
    setLastError(Keys.status());
    return toCCode(Keys.status().code());
  }
  // Both objects parsed: only now mutate the context. Encryptor holds a
  // reference to Pub and Evaluator to Keys, so in-place assignment
  // retargets them.
  C->Pub = Pub.take();
  C->Keys = Keys.take();
  return ACE_OK;
}

//===----------------------------------------------------------------------===//
// Weights
//===----------------------------------------------------------------------===//

double *ace_load_weights(const char *Path, size_t *Count) {
  if (!Path) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "load_weights: NULL path");
    return nullptr;
  }
  FILE *F = std::fopen(Path, "rb");
  if (!F) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 std::string("load_weights: cannot open '") + Path + "'");
    return nullptr;
  }
  std::fseek(F, 0, SEEK_END);
  long Bytes = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  size_t N = static_cast<size_t>(Bytes) / sizeof(double);
  double *Data = static_cast<double *>(std::malloc(N * sizeof(double)));
  if (!Data) {
    std::fclose(F);
    setLastError(ACE_ERR_RESOURCE_EXHAUSTED,
                 "load_weights: cannot allocate " +
                     std::to_string(N * sizeof(double)) + " bytes");
    return nullptr;
  }
  size_t Read = std::fread(Data, sizeof(double), N, F);
  std::fclose(F);
  if (Count)
    *Count = Read;
  return Data;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void ace_telemetry_enable(int On) {
  telemetry::Telemetry::instance().setEnabled(On != 0);
}

int ace_telemetry_enabled(void) { return telemetry::enabled() ? 1 : 0; }

void ace_telemetry_reset(void) { telemetry::Telemetry::instance().clear(); }

uint64_t ace_telemetry_counter(const char *Name) {
  if (!Name) {
    setLastError(ACE_ERR_INVALID_ARGUMENT, "telemetry_counter: NULL name");
    return 0;
  }
  telemetry::Counter C;
  if (!telemetry::counterFromName(Name, C)) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 std::string("telemetry_counter: unknown counter '") +
                     Name + "'");
    return 0;
  }
  return telemetry::Telemetry::instance().counterValue(C);
}

void ace_telemetry_snapshot(const char *Label) {
  telemetry::Telemetry::instance().recordSnapshot(Label ? Label : "");
}

char *ace_telemetry_report(int AsJson) {
  std::string R =
      telemetry::Telemetry::instance().reportString(AsJson != 0);
  char *Out = static_cast<char *>(std::malloc(R.size() + 1));
  if (!Out) {
    setLastError(ACE_ERR_RESOURCE_EXHAUSTED,
                 "telemetry_report: cannot allocate report buffer");
    return nullptr;
  }
  std::memcpy(Out, R.c_str(), R.size() + 1);
  return Out;
}

int ace_telemetry_write_trace(const char *Path) {
  if (!Path) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "telemetry_write_trace: NULL path");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  Status S = telemetry::Telemetry::instance().writeChromeTraceFile(Path);
  if (!S.ok()) {
    setLastError(S);
    return toCCode(S.code());
  }
  return ACE_OK;
}

char *ace_metrics_prometheus(void) {
  std::string R = metrics::MetricsRegistry::instance().prometheusString();
  char *Out = static_cast<char *>(std::malloc(R.size() + 1));
  if (!Out) {
    setLastError(ACE_ERR_RESOURCE_EXHAUSTED,
                 "metrics_prometheus: cannot allocate exposition buffer");
    return nullptr;
  }
  std::memcpy(Out, R.c_str(), R.size() + 1);
  return Out;
}

int ace_metrics_write(const char *Path) {
  if (!Path) {
    setLastError(ACE_ERR_INVALID_ARGUMENT, "metrics_write: NULL path");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  Status S = metrics::MetricsRegistry::instance().writePrometheusFile(Path);
  if (!S.ok()) {
    setLastError(S);
    return toCCode(S.code());
  }
  return ACE_OK;
}

//===----------------------------------------------------------------------===//
// Threading
//===----------------------------------------------------------------------===//

int ace_set_num_threads(int N) {
  if (N < 0) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "set_num_threads: negative thread count " +
                     std::to_string(N));
    return ACE_ERR_INVALID_ARGUMENT;
  }
  if (Status S = ThreadPool::instance().setNumThreads(
          static_cast<size_t>(N))) {
    setLastError(S);
    return ace_last_error();
  }
  return ACE_OK;
}

int ace_num_threads(void) {
  return static_cast<int>(ThreadPool::instance().numThreads());
}

//===----------------------------------------------------------------------===//
// Poly-ops kernel backend
//===----------------------------------------------------------------------===//

int ace_set_poly_backend(const char *Name) {
  if (!Name) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 "set_poly_backend: null backend name");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  if (Status S = selectPolyBackend(Name)) {
    setLastError(S);
    return ace_last_error();
  }
  return ACE_OK;
}

const char *ace_poly_backend(void) { return activePolyBackendName(); }

//===----------------------------------------------------------------------===//
// Memory governance
//===----------------------------------------------------------------------===//

int ace_set_memory_budget(uint64_t Bytes) {
  ResourceGovernor::instance().setBudgetBytes(
      static_cast<size_t>(Bytes));
  return ACE_OK;
}

uint64_t ace_memory_budget(void) {
  return static_cast<uint64_t>(ResourceGovernor::instance().budgetBytes());
}

int ace_set_limb_pool(int Enabled) {
  LimbPool::instance().setEnabled(Enabled != 0);
  return ACE_OK;
}

int ace_limb_pool(void) {
  return LimbPool::instance().enabled() ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Compiler pipeline policies
//===----------------------------------------------------------------------===//

int ace_set_rescale_mode(const char *Name) {
  RescaleMode Mode;
  if (!Name || !parseRescaleMode(Name, Mode)) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 std::string("set_rescale_mode: unknown mode '") +
                     (Name ? Name : "(null)") +
                     "' (want auto|eager|waterline|lazy)");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  setProcessRescaleMode(Mode);
  return ACE_OK;
}

const char *ace_rescale_mode(void) {
  return rescaleModeName(processRescaleMode());
}

int ace_set_packing_strategy(const char *Name) {
  PackingStrategy Strategy;
  if (!Name || !parsePackingStrategy(Name, Strategy)) {
    setLastError(ACE_ERR_INVALID_ARGUMENT,
                 std::string("set_packing_strategy: unknown strategy '") +
                     (Name ? Name : "(null)") +
                     "' (want auto|diag|bsgs|column)");
    return ACE_ERR_INVALID_ARGUMENT;
  }
  setProcessPackingStrategy(Strategy);
  return ACE_OK;
}

const char *ace_packing_strategy(void) {
  return packingStrategyName(processPackingStrategy());
}
