//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/CApi.h"

#include "fhe/Bootstrapper.h"
#include "fhe/Encryptor.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

using namespace ace;
using namespace ace::fhe;

/// The C context bundles the whole runtime.
struct AceFheContext {
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Bootstrapper> Boot;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

struct AceFheCiphertext {
  Ciphertext Ct;
};

AceFheContext *ace_create(size_t RingDegree, size_t Slots, int LogScale,
                          int LogQ0, int NumRescale, int LogSpecial,
                          int SparseSecret, uint64_t Seed) {
  CkksParams P;
  P.RingDegree = RingDegree;
  P.Slots = Slots;
  P.LogScale = LogScale;
  P.LogFirstModulus = LogQ0;
  P.NumRescaleModuli = NumRescale;
  P.LogSpecialModulus = LogSpecial;
  P.SparseSecret = SparseSecret != 0;
  P.Seed = Seed;
  if (!P.valid())
    return nullptr;
  auto *C = new AceFheContext();
  C->Ctx = std::make_unique<Context>(P);
  C->Enc = std::make_unique<Encoder>(*C->Ctx);
  C->Gen = std::make_unique<KeyGenerator>(*C->Ctx);
  C->Pub = C->Gen->makePublicKey();
  C->Eval = std::make_unique<Evaluator>(*C->Ctx, *C->Enc, C->Keys);
  C->Encrypt = std::make_unique<Encryptor>(*C->Ctx, C->Pub);
  C->Decrypt = std::make_unique<Decryptor>(*C->Ctx, C->Gen->secretKey());
  return C;
}

void ace_destroy(AceFheContext *Ctx) { delete Ctx; }

void ace_keygen(AceFheContext *C, const int64_t *Steps,
                const size_t *StepMaxQ, size_t NSteps, int NeedRelin,
                int NeedConj, int Bootstrap, int BootK, int BootDa,
                int BootDeg) {
  if (Bootstrap) {
    BootstrapConfig Cfg;
    Cfg.RangeK = BootK;
    Cfg.DoubleAngleCount = BootDa;
    Cfg.ChebyshevDegree = BootDeg;
    C->Boot = std::make_unique<Bootstrapper>(*C->Eval, Cfg);
    C->Gen->fillEvalKeys(C->Keys, C->Boot->requiredRotations(),
                         NeedRelin != 0, /*NeedConjugate=*/true);
    C->Gen->fillGaloisKeys(C->Keys, C->Boot->requiredGaloisElements());
  }
  for (size_t I = 0; I < NSteps; ++I) {
    uint64_t Galois =
        galoisForRotation(C->Ctx->degree(), C->Ctx->slots(), Steps[I]);
    if (Galois == 1 || C->Keys.Rotations.count(Galois))
      continue;
    size_t MaxQ = StepMaxQ ? StepMaxQ[I] : 0;
    C->Keys.Rotations.emplace(Galois,
                              C->Gen->makeRotationKey(Steps[I], MaxQ));
  }
  if (NeedRelin && !C->Keys.HasRelin) {
    C->Keys.Relin = C->Gen->makeRelinKey();
    C->Keys.HasRelin = true;
  }
  if (NeedConj && !C->Keys.HasConjugate) {
    C->Keys.Conjugate = C->Gen->makeConjugationKey();
    C->Keys.HasConjugate = true;
  }
}

AceFheCiphertext *ace_encrypt(AceFheContext *C, const double *Slots,
                              size_t N, size_t NumQ) {
  std::vector<double> V(Slots, Slots + N);
  V.resize(C->Ctx->slots(), 0.0);
  return new AceFheCiphertext{C->Encrypt->encryptValues(*C->Enc, V, NumQ)};
}

void ace_decrypt(AceFheContext *C, const AceFheCiphertext *Ct, double *Out,
                 size_t N) {
  auto V = C->Decrypt->decryptRealValues(*C->Enc, Ct->Ct);
  for (size_t I = 0; I < N && I < V.size(); ++I)
    Out[I] = V[I];
}

void ace_ct_free(AceFheCiphertext *Ct) { delete Ct; }

AceFheCiphertext *ace_rotate(AceFheContext *C, const AceFheCiphertext *A,
                             int64_t Steps) {
  return new AceFheCiphertext{C->Eval->rotate(A->Ct, Steps)};
}

AceFheCiphertext *ace_add(AceFheContext *C, const AceFheCiphertext *A,
                          const AceFheCiphertext *B) {
  Ciphertext X = A->Ct, Y = B->Ct;
  C->Eval->matchForAdd(X, Y);
  C->Eval->addInPlace(X, Y);
  return new AceFheCiphertext{std::move(X)};
}

AceFheCiphertext *ace_sub(AceFheContext *C, const AceFheCiphertext *A,
                          const AceFheCiphertext *B) {
  Ciphertext X = A->Ct, Y = B->Ct;
  C->Eval->matchForAdd(X, Y);
  C->Eval->subInPlace(X, Y);
  return new AceFheCiphertext{std::move(X)};
}

AceFheCiphertext *ace_mul(AceFheContext *C, const AceFheCiphertext *A,
                          const AceFheCiphertext *B) {
  Ciphertext X = A->Ct, Y = B->Ct;
  C->Eval->matchForAdd(X, Y);
  return new AceFheCiphertext{C->Eval->mul(X, Y)};
}

AceFheCiphertext *ace_mul_plain(AceFheContext *C, const AceFheCiphertext *A,
                                const double *Vec, size_t N) {
  std::vector<double> V(Vec, Vec + N);
  V.resize(C->Ctx->slots(), 0.0);
  Plaintext P = C->Eval->encodeForMul(A->Ct, V);
  return new AceFheCiphertext{C->Eval->mulPlain(A->Ct, P)};
}

AceFheCiphertext *ace_add_plain(AceFheContext *C, const AceFheCiphertext *A,
                                const double *Vec, size_t N) {
  std::vector<double> V(Vec, Vec + N);
  V.resize(C->Ctx->slots(), 0.0);
  Plaintext P = C->Eval->encodeForAdd(A->Ct, V);
  return new AceFheCiphertext{C->Eval->addPlain(A->Ct, P)};
}

AceFheCiphertext *ace_mul_const(AceFheContext *C, const AceFheCiphertext *A,
                                double Value) {
  return new AceFheCiphertext{
      C->Eval->mulScalar(A->Ct, Value, A->Ct.Scale)};
}

AceFheCiphertext *ace_add_const(AceFheContext *C, const AceFheCiphertext *A,
                                double Value) {
  Ciphertext X = A->Ct;
  C->Eval->addConstInPlace(X, Value);
  return new AceFheCiphertext{std::move(X)};
}

AceFheCiphertext *ace_rescale(AceFheContext *C, const AceFheCiphertext *A) {
  Ciphertext X = A->Ct;
  C->Eval->rescaleInPlace(X);
  return new AceFheCiphertext{std::move(X)};
}

AceFheCiphertext *ace_modswitch_to(AceFheContext *C,
                                   const AceFheCiphertext *A, size_t NumQ) {
  Ciphertext X = A->Ct;
  C->Eval->modSwitchTo(X, NumQ);
  return new AceFheCiphertext{std::move(X)};
}

AceFheCiphertext *ace_bootstrap(AceFheContext *C, const AceFheCiphertext *A,
                                size_t Target) {
  return new AceFheCiphertext{C->Boot->bootstrap(A->Ct, Target)};
}

double *ace_load_weights(const char *Path, size_t *Count) {
  FILE *F = std::fopen(Path, "rb");
  if (!F)
    return nullptr;
  std::fseek(F, 0, SEEK_END);
  long Bytes = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  size_t N = static_cast<size_t>(Bytes) / sizeof(double);
  double *Data = static_cast<double *>(std::malloc(N * sizeof(double)));
  size_t Read = std::fread(Data, sizeof(double), N, F);
  std::fclose(F);
  if (Count)
    *Count = Read;
  return Data;
}
