//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// The scalar reference backend plus the process-wide backend selection.
// The scalar loops here ARE the contract: they were lifted verbatim from
// the pre-backend Ntt.cpp / RnsPoly.cpp hot loops, and every other
// backend must reproduce their results bit-for-bit
// (tests/fhe/PolyBackendTest.cpp).
//
//===----------------------------------------------------------------------===//

#include "fhe/PolyBackend.h"

#include "fhe/ModArith.h"
#include "fhe/Ntt.h"
#include "support/Telemetry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace ace;
using namespace ace::fhe;

//===----------------------------------------------------------------------===//
// Scalar reference backend
//===----------------------------------------------------------------------===//

namespace {

class ScalarPolyBackend final : public PolyBackend {
public:
  const char *name() const override { return "scalar"; }

  void forwardNtt(const NttTable &Table, uint64_t *Data) const override {
    // Cooley-Tukey decimation-in-time; merges the psi twist into the
    // butterflies so no separate pre-multiplication pass is needed.
    size_t N = Table.degree();
    uint64_t P = Table.modulus();
    const uint64_t *RP = Table.rootPowers().data();
    const uint64_t *RPS = Table.rootPowersShoup().data();
    size_t T = N;
    for (size_t M = 1; M < N; M <<= 1) {
      T >>= 1;
      for (size_t I = 0; I < M; ++I) {
        size_t J1 = 2 * I * T;
        size_t J2 = J1 + T;
        uint64_t W = RP[M + I];
        uint64_t WShoup = RPS[M + I];
        for (size_t J = J1; J < J2; ++J) {
          uint64_t U = Data[J];
          uint64_t V = mulModShoup(Data[J + T], W, WShoup, P);
          Data[J] = addMod(U, V, P);
          Data[J + T] = subMod(U, V, P);
        }
      }
    }
  }

  void inverseNtt(const NttTable &Table, uint64_t *Data) const override {
    // Gentleman-Sande decimation-in-frequency with inverse twiddles.
    size_t N = Table.degree();
    uint64_t P = Table.modulus();
    const uint64_t *IRP = Table.invRootPowers().data();
    const uint64_t *IRPS = Table.invRootPowersShoup().data();
    size_t T = 1;
    for (size_t M = N; M > 1; M >>= 1) {
      size_t J1 = 0;
      size_t H = M >> 1;
      for (size_t I = 0; I < H; ++I) {
        size_t J2 = J1 + T;
        uint64_t W = IRP[H + I];
        uint64_t WShoup = IRPS[H + I];
        for (size_t J = J1; J < J2; ++J) {
          uint64_t U = Data[J];
          uint64_t V = Data[J + T];
          Data[J] = addMod(U, V, P);
          Data[J + T] = mulModShoup(subMod(U, V, P), W, WShoup, P);
        }
        J1 += 2 * T;
      }
      T <<= 1;
    }
    uint64_t InvN = Table.invDegree();
    uint64_t InvNShoup = Table.invDegreeShoup();
    for (size_t J = 0; J < N; ++J)
      Data[J] = mulModShoup(Data[J], InvN, InvNShoup, P);
  }

  void mul(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    for (size_t J = 0; J < N; ++J)
      A[J] = mulMod(A[J], B[J], P);
  }

  void add(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    for (size_t J = 0; J < N; ++J)
      A[J] = addMod(A[J], B[J], P);
  }

  void sub(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    for (size_t J = 0; J < N; ++J)
      A[J] = subMod(A[J], B[J], P);
  }

  void negate(uint64_t *A, size_t N, uint64_t P) const override {
    for (size_t J = 0; J < N; ++J)
      A[J] = negMod(A[J], P);
  }

  void scalarMul(uint64_t *A, uint64_t S, uint64_t SShoup, size_t N,
                 uint64_t P) const override {
    for (size_t J = 0; J < N; ++J)
      A[J] = mulModShoup(A[J], S, SShoup, P);
  }

  void mulAcc(uint64_t *Acc, const uint64_t *X, const uint64_t *Y,
              size_t N, uint64_t P) const override {
    for (size_t J = 0; J < N; ++J)
      Acc[J] = addMod(Acc[J], mulMod(X[J], Y[J], P), P);
  }
};

} // namespace

const PolyBackend &ace::fhe::scalarPolyBackend() {
  static ScalarPolyBackend Backend;
  return Backend;
}

bool ace::fhe::simdPolyBackendSupported() {
  return simdPolyBackend() != nullptr;
}

//===----------------------------------------------------------------------===//
// Selection
//===----------------------------------------------------------------------===//

namespace {

// The active backend, published once resolution has run. Reads on the
// hot path are one relaxed atomic load; writes (env resolution, the
// knob, the C API) serialize on SelectionMutex.
std::atomic<const PolyBackend *> Active{nullptr};
std::mutex SelectionMutex;

// Records the choice where perf artifacts can see it: the Chrome-trace
// "otherData" block and the ace_build_info Prometheus gauge
// (docs/observability.md). Metadata is recorded even with telemetry
// disabled - it is one string move per (re)selection, not a hot path.
void publish(const PolyBackend &B) {
  telemetry::Telemetry::instance().setMetadata("poly_backend", B.name());
  Active.store(&B, std::memory_order_release);
}

const PolyBackend &autoBackend() {
  if (const PolyBackend *Simd = simdPolyBackend())
    return *Simd;
  return scalarPolyBackend();
}

// Resolves ACE_POLY_BACKEND once. Environment misconfiguration must
// never abort a process that would otherwise run fine, so unknown
// values (and "simd" without hardware support) warn and degrade to
// auto; the strict error path is selectPolyBackend / the C API.
const PolyBackend &resolveFromEnv() {
  std::lock_guard<std::mutex> Lock(SelectionMutex);
  if (const PolyBackend *B = Active.load(std::memory_order_acquire))
    return *B;
  const PolyBackend *Chosen = &autoBackend();
  if (const char *Env = std::getenv("ACE_POLY_BACKEND")) {
    std::string Spec(Env);
    if (Spec == "scalar") {
      Chosen = &scalarPolyBackend();
    } else if (Spec == "simd") {
      if (const PolyBackend *Simd = simdPolyBackend()) {
        Chosen = Simd;
      } else {
        std::fprintf(stderr,
                     "ace: ACE_POLY_BACKEND=simd but this host/build "
                     "has no vectorized backend; using scalar\n");
        Chosen = &scalarPolyBackend();
      }
    } else if (!Spec.empty() && Spec != "auto") {
      std::fprintf(stderr,
                   "ace: ignoring unknown ACE_POLY_BACKEND='%s' "
                   "(want scalar|simd|auto)\n",
                   Env);
    }
  }
  publish(*Chosen);
  return *Chosen;
}

} // namespace

const PolyBackend &ace::fhe::activePolyBackend() {
  if (const PolyBackend *B = Active.load(std::memory_order_acquire))
    return *B;
  return resolveFromEnv();
}

const char *ace::fhe::activePolyBackendName() {
  return activePolyBackend().name();
}

Status ace::fhe::selectPolyBackend(const std::string &Spec) {
  std::lock_guard<std::mutex> Lock(SelectionMutex);
  if (Spec == "scalar") {
    publish(scalarPolyBackend());
    return Status::success();
  }
  if (Spec == "simd") {
    if (const PolyBackend *Simd = simdPolyBackend()) {
      publish(*Simd);
      return Status::success();
    }
    return Status::invalidArgument(
        "poly backend 'simd' is not supported on this host/build");
  }
  if (Spec == "auto") {
    publish(autoBackend());
    return Status::success();
  }
  return Status::invalidArgument("unknown poly backend '" + Spec +
                                 "' (want scalar|simd|auto)");
}
