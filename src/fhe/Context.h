//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RNS-CKKS scheme parameters and the shared Context object. A Context owns
/// the modulus chain (q_0 .. q_{L-1} plus one key-switching special prime),
/// the NTT tables for every modulus, and the per-level precomputations used
/// by rescale and mod-down. Every other runtime object (polynomials, keys,
/// evaluator, bootstrapper) references one Context.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_CONTEXT_H
#define ACE_FHE_CONTEXT_H

#include "fhe/Ntt.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace ace {
namespace fhe {

/// User-facing RNS-CKKS parameter set.
///
/// The modulus chain is q_0 (LogFirstModulus bits), then NumRescaleModuli
/// primes of LogScale bits each, then one special prime of LogSpecialModulus
/// bits used only during key switching. The multiplicative depth budget is
/// NumRescaleModuli. The compiler's automatic parameter selection (paper
/// Sec. 4.4) produces values for this struct.
struct CkksParams {
  /// Ring degree N; a power of two.
  size_t RingDegree = 1ULL << 12;
  /// Number of plaintext slots; a power of two, at most RingDegree / 2.
  /// Fewer slots than N/2 selects sparse packing (required by the
  /// bootstrapper's linear transforms).
  size_t Slots = 1ULL << 11;
  /// log2 of the encoding scale Delta.
  int LogScale = 40;
  /// log2 of the base modulus q_0 (bounds output precision, paper Q_0).
  int LogFirstModulus = 50;
  /// Number of rescale primes = multiplicative depth budget.
  int NumRescaleModuli = 8;
  /// log2 of the key-switching special prime.
  int LogSpecialModulus = 59;
  /// Use a sparse ternary secret of Hamming weight 64 (standard practice
  /// for bootstrappable CKKS; bounds the ModRaise overflow count K).
  bool SparseSecret = false;
  /// Seed for all randomness derived from this context.
  uint64_t Seed = 1;

  /// True when the derived modulus chain is plausible (degree a power of
  /// two, slots in range, prime sizes in [20, 60]).
  bool valid() const;
};

/// Shared immutable state for one CKKS instantiation.
class Context {
public:
  /// Builds the modulus chain and all NTT tables. Asserts on invalid
  /// parameters (use CkksParams::valid() for recoverable checking).
  explicit Context(const CkksParams &Params);

  const CkksParams &params() const { return Params; }
  size_t degree() const { return Params.RingDegree; }
  size_t slots() const { return Params.Slots; }

  /// Number of q-chain primes (excluding the special prime).
  size_t chainLength() const { return QModuli.size(); }

  /// The i-th q-chain prime.
  uint64_t qModulus(size_t I) const { return QModuli[I]; }

  /// The key-switching special prime P.
  uint64_t specialModulus() const { return SpecialPrime; }

  /// NTT tables; index 0..chainLength()-1 are the q primes, index
  /// chainLength() is the special prime.
  const NttTable &nttTable(size_t ModIndex) const {
    return *NttTables[ModIndex];
  }

  /// Index of the special prime in the nttTable() numbering.
  size_t specialIndex() const { return QModuli.size(); }

  /// inv(q_l) mod q_j, for rescaling from l+1 to l active primes (j < l).
  uint64_t invQLastModQ(size_t L, size_t J) const {
    return InvQLastModQ[L][J];
  }

  /// inv(P) mod q_j, for mod-down after key switching.
  uint64_t invSpecialModQ(size_t J) const { return InvSpecialModQ[J]; }

  /// The default encoding scale Delta = 2^LogScale.
  double scale() const { return Scale; }

  /// q_0 as a double (used by the bootstrapper's EvalMod normalization).
  double firstModulus() const { return static_cast<double>(QModuli[0]); }

  /// Bytes occupied by one polynomial component (one modulus): N * 8.
  size_t bytesPerComponent() const { return Params.RingDegree * 8; }

  /// NTT-domain index permutation of the Galois automorphism
  /// X -> X^Galois. In the Harvey layout slot i of an NTT-form component
  /// holds the evaluation at psi^(2*bitrev(i)+1), so the automorphism is
  /// the modulus-independent gather result[i] = src[perm[i]] with
  /// perm[i] = bitrev(((Galois * (2*bitrev(i)+1)) mod 2N - 1) / 2) -- no
  /// coefficient negation, unlike the coefficient-domain automorphism
  /// (see docs/architecture.md). Built lazily per Galois element and
  /// cached; thread-safe, but callers inside parallelFor regions should
  /// warm the cache first so workers only hit the fast path.
  const std::vector<uint32_t> &galoisNttPermutation(uint64_t Galois) const;

private:
  CkksParams Params;
  std::vector<uint64_t> QModuli;
  uint64_t SpecialPrime = 0;
  std::vector<std::unique_ptr<NttTable>> NttTables;
  std::vector<std::vector<uint64_t>> InvQLastModQ;
  std::vector<uint64_t> InvSpecialModQ;
  double Scale = 0.0;
  /// Lazily built Galois NTT permutations, keyed by Galois element.
  mutable std::mutex GaloisPermMutex;
  mutable std::map<uint64_t, std::vector<uint32_t>> GaloisNttPerms;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_CONTEXT_H
