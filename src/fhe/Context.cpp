//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Context.h"

#include "fhe/ModArith.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::fhe;

bool CkksParams::valid() const {
  if (RingDegree < 8 || (RingDegree & (RingDegree - 1)) != 0)
    return false;
  if (Slots < 1 || Slots > RingDegree / 2 || (Slots & (Slots - 1)) != 0)
    return false;
  if (LogScale < 20 || LogScale > 60)
    return false;
  if (LogFirstModulus < LogScale || LogFirstModulus > 60)
    return false;
  if (NumRescaleModuli < 0 || NumRescaleModuli > 60)
    return false;
  if (LogSpecialModulus < LogFirstModulus || LogSpecialModulus > 60)
    return false;
  return true;
}

Context::Context(const CkksParams &P) : Params(P) {
  assert(P.valid() && "invalid CKKS parameters");
  uint64_t TwoN = 2 * P.RingDegree;

  // Build the chain: one q_0 prime, NumRescaleModuli rescale primes, one
  // special prime. Primes of equal bit width must be distinct, so each
  // generation round excludes everything chosen so far.
  std::vector<uint64_t> Exclude;
  auto Take = [&](int Bits, size_t Count) {
    std::vector<uint64_t> Got = generateNttPrimes(Bits, TwoN, Count, Exclude);
    Exclude.insert(Exclude.end(), Got.begin(), Got.end());
    return Got;
  };

  QModuli = Take(P.LogFirstModulus, 1);
  if (P.NumRescaleModuli > 0) {
    // Rescale primes balanced around 2^LogScale keep the scale close to
    // Delta along the whole chain (bounding add-time scale drift).
    std::vector<uint64_t> Rescale = generateBalancedNttPrimes(
        P.LogScale, TwoN, static_cast<size_t>(P.NumRescaleModuli), Exclude);
    Exclude.insert(Exclude.end(), Rescale.begin(), Rescale.end());
    QModuli.insert(QModuli.end(), Rescale.begin(), Rescale.end());
  }
  SpecialPrime = Take(P.LogSpecialModulus, 1)[0];

  for (uint64_t Q : QModuli)
    NttTables.push_back(std::make_unique<NttTable>(P.RingDegree, Q));
  NttTables.push_back(std::make_unique<NttTable>(P.RingDegree, SpecialPrime));

  // Rescale precomputation: inv(q_l) mod q_j for every (l, j < l).
  size_t L = QModuli.size();
  InvQLastModQ.resize(L);
  for (size_t Last = 0; Last < L; ++Last) {
    InvQLastModQ[Last].resize(Last);
    for (size_t J = 0; J < Last; ++J)
      InvQLastModQ[Last][J] =
          invMod(QModuli[Last] % QModuli[J], QModuli[J]);
  }

  InvSpecialModQ.resize(L);
  for (size_t J = 0; J < L; ++J)
    InvSpecialModQ[J] = invMod(SpecialPrime % QModuli[J], QModuli[J]);

  Scale = std::ldexp(1.0, P.LogScale);
}
