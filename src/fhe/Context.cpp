//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Context.h"

#include "fhe/ModArith.h"
#include "fhe/PolyBackend.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::fhe;

bool CkksParams::valid() const {
  if (RingDegree < 8 || (RingDegree & (RingDegree - 1)) != 0)
    return false;
  if (Slots < 1 || Slots > RingDegree / 2 || (Slots & (Slots - 1)) != 0)
    return false;
  if (LogScale < 20 || LogScale > 60)
    return false;
  if (LogFirstModulus < LogScale || LogFirstModulus > 60)
    return false;
  if (NumRescaleModuli < 0 || NumRescaleModuli > 60)
    return false;
  if (LogSpecialModulus < LogFirstModulus || LogSpecialModulus > 60)
    return false;
  return true;
}

Context::Context(const CkksParams &P) : Params(P) {
  assert(P.valid() && "invalid CKKS parameters");
  // Pin the poly-ops backend now (CPUID probe + ACE_POLY_BACKEND
  // resolution, docs/kernels.md): the choice is per-process and must be
  // settled before any FHE work, not lazily inside a hot loop.
  (void)activePolyBackend();
  uint64_t TwoN = 2 * P.RingDegree;

  // Build the chain: one q_0 prime, NumRescaleModuli rescale primes, one
  // special prime. Primes of equal bit width must be distinct, so each
  // generation round excludes everything chosen so far.
  std::vector<uint64_t> Exclude;
  auto Take = [&](int Bits, size_t Count) {
    std::vector<uint64_t> Got = generateNttPrimes(Bits, TwoN, Count, Exclude);
    Exclude.insert(Exclude.end(), Got.begin(), Got.end());
    return Got;
  };

  QModuli = Take(P.LogFirstModulus, 1);
  if (P.NumRescaleModuli > 0) {
    // Rescale primes balanced around 2^LogScale keep the scale close to
    // Delta along the whole chain (bounding add-time scale drift).
    std::vector<uint64_t> Rescale = generateBalancedNttPrimes(
        P.LogScale, TwoN, static_cast<size_t>(P.NumRescaleModuli), Exclude);
    Exclude.insert(Exclude.end(), Rescale.begin(), Rescale.end());
    QModuli.insert(QModuli.end(), Rescale.begin(), Rescale.end());
  }
  SpecialPrime = Take(P.LogSpecialModulus, 1)[0];

  for (uint64_t Q : QModuli)
    NttTables.push_back(std::make_unique<NttTable>(P.RingDegree, Q));
  NttTables.push_back(std::make_unique<NttTable>(P.RingDegree, SpecialPrime));

  // Rescale precomputation: inv(q_l) mod q_j for every (l, j < l).
  size_t L = QModuli.size();
  InvQLastModQ.resize(L);
  for (size_t Last = 0; Last < L; ++Last) {
    InvQLastModQ[Last].resize(Last);
    for (size_t J = 0; J < Last; ++J)
      InvQLastModQ[Last][J] =
          invMod(QModuli[Last] % QModuli[J], QModuli[J]);
  }

  InvSpecialModQ.resize(L);
  for (size_t J = 0; J < L; ++J)
    InvSpecialModQ[J] = invMod(SpecialPrime % QModuli[J], QModuli[J]);

  Scale = std::ldexp(1.0, P.LogScale);
}

/// Reverses the low \p Bits bits of \p X.
static uint64_t reverseBits(uint64_t X, int Bits) {
  uint64_t Result = 0;
  for (int I = 0; I < Bits; ++I) {
    Result = (Result << 1) | (X & 1);
    X >>= 1;
  }
  return Result;
}

const std::vector<uint32_t> &
Context::galoisNttPermutation(uint64_t Galois) const {
  std::lock_guard<std::mutex> Lock(GaloisPermMutex);
  auto It = GaloisNttPerms.find(Galois);
  if (It != GaloisNttPerms.end())
    return It->second;

  size_t N = Params.RingDegree;
  uint64_t TwoN = 2 * N;
  assert(Galois % 2 == 1 && Galois < TwoN &&
         "Galois element must be an odd residue mod 2N");
  int LogN = 0;
  while ((size_t(1) << LogN) < N)
    ++LogN;

  // NTT slot i holds the evaluation at psi^(2*bitrev(i)+1); the
  // automorphism X -> X^Galois sends that evaluation point to
  // psi^(Galois*(2*bitrev(i)+1) mod 2N), whose slot index inverts the
  // same odd-exponent encoding. Galois is odd, so the product exponent
  // stays odd and the division below is exact.
  std::vector<uint32_t> Perm(N);
  for (size_t I = 0; I < N; ++I) {
    uint64_t Exp = (Galois * (2 * reverseBits(I, LogN) + 1)) % TwoN;
    Perm[I] = static_cast<uint32_t>(reverseBits((Exp - 1) / 2, LogN));
  }
  return GaloisNttPerms.emplace(Galois, std::move(Perm)).first->second;
}
