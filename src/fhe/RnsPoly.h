//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A polynomial of Z[X]/(X^N + 1) stored in residue-number-system form:
/// one length-N residue vector per active modulus. Components 0..NumQ-1
/// correspond to the chain primes q_0..q_{NumQ-1}; an optional trailing
/// component holds the key-switching special prime. Polynomials track
/// whether they are in coefficient or NTT (evaluation) domain; arithmetic
/// asserts domain compatibility. These are the values the POLY IR operates
/// on (paper Table 7).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_RNSPOLY_H
#define ACE_FHE_RNSPOLY_H

#include "fhe/Context.h"
#include "support/LimbPool.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ace {
namespace fhe {

/// An RNS polynomial bound to a Context.
class RnsPoly {
public:
  RnsPoly() = default;

  /// Creates a zero polynomial with \p NumQ chain components, optionally
  /// extended by the special prime.
  RnsPoly(const Context &Ctx, size_t NumQ, bool HasSpecial, bool NttForm);

  const Context &context() const {
    assert(Ctx && "polynomial not bound to a context");
    return *Ctx;
  }

  /// True when bound to a context (a default-constructed polynomial is
  /// not). Release-mode guard for boundary code (serialization) that must
  /// not trust its input's invariants.
  bool bound() const { return Ctx != nullptr; }

  /// Number of active chain primes.
  size_t numQ() const { return NumQ; }

  /// True when the trailing component is the special prime.
  bool hasSpecial() const { return HasSpecial; }

  /// Total number of RNS components (numQ + special).
  size_t numComponents() const { return NumQ + (HasSpecial ? 1 : 0); }

  /// True when stored in the NTT (evaluation) domain.
  bool isNtt() const { return NttForm; }

  /// Modulus index (into Context::nttTable numbering) of component \p I.
  size_t modIndex(size_t I) const {
    assert(I < numComponents() && "component out of range");
    return (HasSpecial && I == NumQ) ? Ctx->specialIndex() : I;
  }

  /// The modulus of component \p I.
  uint64_t modulus(size_t I) const {
    return (HasSpecial && I == NumQ) ? Ctx->specialModulus()
                                     : Ctx->qModulus(I);
  }

  /// Mutable residues of component \p I (length N).
  uint64_t *component(size_t I) {
    assert(I < numComponents() && "component out of range");
    return Data.data() + I * Ctx->degree();
  }
  const uint64_t *component(size_t I) const {
    assert(I < numComponents() && "component out of range");
    return Data.data() + I * Ctx->degree();
  }

  /// Converts to the NTT domain in place (no-op when already there).
  void toNtt();

  /// Converts to the coefficient domain in place (no-op when already
  /// there).
  void toCoeff();

  /// this += Other (same shape and domain).
  void addInPlace(const RnsPoly &Other);

  /// this -= Other (same shape and domain).
  void subInPlace(const RnsPoly &Other);

  /// this = -this.
  void negateInPlace();

  /// this *= Other pointwise; both must be in the NTT domain.
  void mulInPlace(const RnsPoly &Other);

  /// Returns this * Other pointwise (NTT domain).
  RnsPoly mul(const RnsPoly &Other) const;

  /// Fused this += A * B (all NTT domain, same shape).
  void mulAddInPlace(const RnsPoly &A, const RnsPoly &B);

  /// Multiplies every component by a per-component scalar table
  /// \p ScalarPerComp (size numComponents()).
  void mulScalarPerComponent(const std::vector<uint64_t> &ScalarPerComp);

  /// Multiplies every component by the residues of the integer \p Scalar.
  void mulScalarInt(uint64_t Scalar);

  /// Applies the Galois automorphism X -> X^Galois. Coefficient domain
  /// only; \p Galois must be odd and in [1, 2N).
  RnsPoly automorphism(uint64_t Galois) const;

  /// Applies the Galois automorphism X -> X^Galois in the NTT domain,
  /// where it is a pure index permutation of every component (no
  /// coefficient negation: the automorphism permutes the odd-power
  /// evaluation points). Exactly equal to
  /// toCoeff -> automorphism -> toNtt, component for component, which is
  /// what makes hoisted key switching bit-identical to the sequential
  /// path (see docs/architecture.md). NTT domain only.
  RnsPoly automorphismNtt(uint64_t Galois) const;

  /// Returns a copy restricted to the first \p NumQ chain components,
  /// optionally keeping the special component. Valid in either domain
  /// (components are independent).
  RnsPoly restrictedCopy(size_t NumQ, bool KeepSpecial) const;

  /// Drops the last chain component (rescale/modswitch bookkeeping is
  /// handled by the Evaluator; this only shrinks storage).
  void dropLastQ();

  /// Drops the special-prime component.
  void dropSpecial();

  /// Bytes of residue storage held by this polynomial.
  size_t byteSize() const { return Data.size() * sizeof(uint64_t); }

  /// Asserts shape/domain compatibility with \p Other.
  void checkCompatible(const RnsPoly &Other) const {
    assert(Ctx == Other.Ctx && "polynomials from different contexts");
    assert(NumQ == Other.NumQ && HasSpecial == Other.HasSpecial &&
           "polynomial shape mismatch");
    assert(NttForm == Other.NttForm && "polynomial domain mismatch");
  }

private:
  const Context *Ctx = nullptr;
  size_t NumQ = 0;
  bool HasSpecial = false;
  bool NttForm = false;
  /// Residue storage recycled through the process LimbPool so
  /// steady-state evaluator ops stop hitting the heap allocator (see
  /// docs/memory.md).
  LimbStorage Data;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_RNSPOLY_H
