//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardened wire format for everything that crosses the client/server
/// trust boundary of the paper's deployment model (Fig. 2): parameters,
/// plaintexts, ciphertexts, and every key class. Each serialized object is
/// framed as
///
///   magic "ACEW" | format version | object tag | flags |
///   payload length | CRC-32C(payload) | payload
///
/// (field tables in docs/serialization.md). The serializer writes through
/// ByteWriter to byte buffers or std::ostream; the deserializer is a
/// strict, bounds-checked state machine over ByteReader that returns
/// StatusOr and never crashes, over-allocates, or invokes UB on malformed
/// input: every length field is range-validated against the declared
/// CkksParams before any allocation, every residue is checked against its
/// modulus, and both truncation and trailing bytes are errors. Wire-format
/// failures use ErrorCode::DataCorrupt (malformed bytes),
/// ErrorCode::ResourceExhausted (length fields exceeding the
/// context-derived allocation cap), and ErrorCode::IoError (stream
/// failures).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_SERIALIZER_H
#define ACE_FHE_SERIALIZER_H

#include "fhe/Cipher.h"
#include "fhe/Keys.h"
#include "support/Status.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ace {
namespace fhe {
namespace wire {

/// First four bytes of every serialized object: "ACEW" on disk.
constexpr uint32_t kMagic = 0x57454341u;

/// Format version this build writes and the newest it reads. Version
/// policy (docs/serialization.md): readers reject newer versions; older
/// versions stay readable until explicitly retired.
constexpr uint16_t kFormatVersion = 1;

/// Framed header size in bytes: magic(4) + version(2) + tag(1) +
/// flags(1) + payload length(8) + CRC-32C(4).
constexpr size_t kHeaderBytes = 20;

/// Object discriminator in the frame header.
enum class ObjectTag : uint8_t {
  Params = 1,
  Plaintext = 2,
  Ciphertext = 3,
  PublicKey = 4,
  SecretKey = 5,
  SwitchKey = 6,
  EvalKeys = 7,
};

/// Stable diagnostic name of \p Tag ("params", "ciphertext", ...).
const char *objectTagName(ObjectTag Tag);

/// Largest payload a well-formed object of kind \p Tag can declare under
/// \p Ctx (null only for Params, which needs no context). Deserializers
/// reject larger length fields before allocating, so a forged header
/// cannot drive an over-allocation.
uint64_t maxPayloadBytes(ObjectTag Tag, const Context *Ctx);

/// \name Save
/// Buffer overloads append one framed object to \p Out and cannot fail on
/// I/O (they return non-OK only for invalid in-memory objects or injected
/// faults). Stream overloads additionally flush and report short writes
/// as ErrorCode::IoError.
/// @{
Status save(const CkksParams &P, std::vector<uint8_t> &Out);
Status save(const CkksParams &P, std::ostream &OS);
Status save(const Plaintext &P, std::vector<uint8_t> &Out);
Status save(const Plaintext &P, std::ostream &OS);
Status save(const Ciphertext &Ct, std::vector<uint8_t> &Out);
Status save(const Ciphertext &Ct, std::ostream &OS);
Status save(const PublicKey &K, std::vector<uint8_t> &Out);
Status save(const PublicKey &K, std::ostream &OS);
Status save(const SecretKey &K, std::vector<uint8_t> &Out);
Status save(const SecretKey &K, std::ostream &OS);
Status save(const SwitchKey &K, std::vector<uint8_t> &Out);
Status save(const SwitchKey &K, std::ostream &OS);
Status save(const EvalKeys &K, std::vector<uint8_t> &Out);
Status save(const EvalKeys &K, std::ostream &OS);
/// @}

/// \name Load
/// Buffer overloads parse exactly one object from [Data, Data+Size);
/// bytes beyond the framed object are an error (trailing-byte
/// detection). Stream overloads consume exactly one framed object and
/// leave the stream positioned after it, so objects can be concatenated
/// in one file. Every loader validates the payload against \p Ctx
/// (shapes, prime counts, residue ranges, slot counts) before returning.
/// @{
StatusOr<CkksParams> loadParams(const uint8_t *Data, size_t Size);
StatusOr<CkksParams> loadParams(std::istream &IS);
StatusOr<Plaintext> loadPlaintext(const Context &Ctx, const uint8_t *Data,
                                  size_t Size);
StatusOr<Plaintext> loadPlaintext(const Context &Ctx, std::istream &IS);
StatusOr<Ciphertext> loadCiphertext(const Context &Ctx, const uint8_t *Data,
                                    size_t Size);
StatusOr<Ciphertext> loadCiphertext(const Context &Ctx, std::istream &IS);
StatusOr<PublicKey> loadPublicKey(const Context &Ctx, const uint8_t *Data,
                                  size_t Size);
StatusOr<PublicKey> loadPublicKey(const Context &Ctx, std::istream &IS);
StatusOr<SecretKey> loadSecretKey(const Context &Ctx, const uint8_t *Data,
                                  size_t Size);
StatusOr<SecretKey> loadSecretKey(const Context &Ctx, std::istream &IS);
StatusOr<SwitchKey> loadSwitchKey(const Context &Ctx, const uint8_t *Data,
                                  size_t Size);
StatusOr<SwitchKey> loadSwitchKey(const Context &Ctx, std::istream &IS);
StatusOr<EvalKeys> loadEvalKeys(const Context &Ctx, const uint8_t *Data,
                                size_t Size);
StatusOr<EvalKeys> loadEvalKeys(const Context &Ctx, std::istream &IS);
/// @}

} // namespace wire
} // namespace fhe
} // namespace ace

#endif // ACE_FHE_SERIALIZER_H
