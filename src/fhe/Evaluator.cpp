//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Evaluator.h"

#include "fhe/ModArith.h"
#include "fhe/PolyBackend.h"
#include "support/Cancellation.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cmath>
#include <limits>

using namespace ace;
using namespace ace::fhe;

namespace {

/// Disabled-path cost of a counter-only telemetry site: one relaxed load.
inline void countOp(telemetry::Counter C, uint64_t N = 1) {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(C, N);
}

} // namespace

bool ace::fhe::scalesClose(double A, double B) {
  return std::fabs(A - B) <= 1e-3 * std::fmax(A, B);
}

std::string ace::fhe::scaleMismatchMessage(const char *What, double A,
                                           double B) {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "%s: scale mismatch: lhs scale %.6g vs rhs scale %.6g "
                "(ratio %.9g)",
                What, A, B, B != 0.0 ? A / B : std::nan(""));
  return Buf;
}

bool ace::fhe::scalesCloseOrReport(const char *What, double A, double B) {
  if (scalesClose(A, B))
    return true;
  std::fprintf(stderr, "ace: %s\n", scaleMismatchMessage(What, A, B).c_str());
  return false;
}

Status ace::fhe::validateCiphertext(const Context &Ctx, const Ciphertext &A,
                                    const char *What) {
  std::string Op(What);
  if (A.Polys.empty() || A.size() > 3)
    return Status::invalidArgument(
        Op + ": malformed ciphertext with " + std::to_string(A.size()) +
        " polynomial components (expected 2 or 3)");
  size_t NumQ = A.Polys[0].numQ();
  if (NumQ < 1 || NumQ > Ctx.chainLength())
    return Status::levelMismatch(
        Op + ": ciphertext has " + std::to_string(NumQ) +
        " active primes but the modulus chain holds " +
        std::to_string(Ctx.chainLength()));
  for (const RnsPoly &Poly : A.Polys) {
    if (Poly.numQ() != NumQ)
      return Status::internal(
          Op + ": corrupted ciphertext: component prime counts differ (" +
          std::to_string(Poly.numQ()) + " vs " + std::to_string(NumQ) +
          "); the prime chain was truncated inconsistently");
    if (Poly.hasSpecial() || !Poly.isNtt())
      return Status::internal(
          Op + ": corrupted ciphertext: polynomial not in plain NTT form");
  }
  if (A.Slots != Ctx.slots())
    return Status::invalidArgument(
        Op + ": ciphertext slot count " + std::to_string(A.Slots) +
        " does not match the context's " + std::to_string(Ctx.slots()) +
        " slots");
  if (!std::isfinite(A.Scale) || A.Scale <= 0.0)
    return Status::invalidArgument(
        Op + ": ciphertext scale " + std::to_string(A.Scale) +
        " is not a finite positive number");
  return Status::success();
}

/// Shared preamble of every checked entry point: polls the cooperative
/// cancellation token installed on this thread (a cancelled or
/// deadline-expired request unwinds here, between ops, never mid-op),
/// honors the simulated allocation-failure fault, then validates operand
/// integrity.
static Status checkedEntry(const Context &Ctx, const char *What,
                           const Ciphertext *A, const Ciphertext *B) {
  ACE_RETURN_IF_ERROR(checkCancellation(What));
  FaultInjector &Faults = FaultInjector::instance();
  if (Faults.enabled() && Faults.shouldFire(FaultKind::AllocFail))
    return Status::resourceExhausted(
        std::string(What) +
        ": cannot allocate ciphertext storage (injected fault)");
  if (A)
    ACE_RETURN_IF_ERROR(validateCiphertext(Ctx, *A, What));
  if (B)
    ACE_RETURN_IF_ERROR(validateCiphertext(Ctx, *B, What));
  return Status::success();
}

Evaluator::Evaluator(const Context &Ctx, const Encoder &Enc,
                     const EvalKeys &Keys, RotationKeyCache *KeyCache)
    : Ctx(Ctx), Enc(Enc), Keys(Keys), KeyCache(KeyCache) {
  MonomialNtt.resize(Ctx.chainLength() + 1);
}

bool Evaluator::hasGaloisKey(uint64_t Galois) const {
  if (Keys.Rotations.count(Galois))
    return true;
  return KeyCache && KeyCache->declared(Galois);
}

const SwitchKey *
Evaluator::galoisKeyFor(uint64_t Galois,
                        std::shared_ptr<const SwitchKey> &Hold,
                        Status *WhyNot) const {
  auto It = Keys.Rotations.find(Galois);
  if (It != Keys.Rotations.end())
    return &It->second;
  if (KeyCache) {
    auto KeyOr = KeyCache->get(Galois);
    if (KeyOr.ok()) {
      Hold = KeyOr.take();
      return Hold.get();
    }
    if (WhyNot)
      *WhyNot = KeyOr.status();
    return nullptr;
  }
  if (WhyNot)
    *WhyNot = Status::keyMissing(
        "no switch key for Galois element " + std::to_string(Galois) +
        "; the key analysis did not request it");
  return nullptr;
}

Status Evaluator::materializeGaloisKey(
    uint64_t Galois, size_t MinNumQ,
    std::vector<std::shared_ptr<const SwitchKey>> &Pins) const {
  std::shared_ptr<const SwitchKey> Hold;
  Status WhyNot;
  const SwitchKey *Key = galoisKeyFor(Galois, Hold, &WhyNot);
  if (!Key)
    return WhyNot; // KeyMissing, or ResourceExhausted from lazy keygen
  if (Key->Parts.size() < MinNumQ)
    return Status::keyMissing(
        "switch key for Galois element " + std::to_string(Galois) +
        " truncated to " + std::to_string(Key->Parts.size()) +
        " digits but " + std::to_string(MinNumQ) + " are required");
  if (Hold)
    Pins.push_back(std::move(Hold));
  return Status::success();
}

double Evaluator::noiseBudgetBits(const Ciphertext &A) const {
  if (LogQPrefix.empty()) {
    LogQPrefix.resize(Ctx.chainLength() + 1, 0.0);
    for (size_t I = 0; I < Ctx.chainLength(); ++I)
      LogQPrefix[I + 1] =
          LogQPrefix[I] + std::log2(static_cast<double>(Ctx.qModulus(I)));
  }
  size_t NumQ = std::min(A.numQ(), Ctx.chainLength());
  double LogScale = A.Scale > 0.0 ? std::log2(A.Scale) : 0.0;
  return LogQPrefix[NumQ] - LogScale;
}

void Evaluator::checkAddCompatible(const Ciphertext &A,
                                   const Ciphertext &B) const {
  assert(A.numQ() == B.numQ() && "additive operands at different levels");
  assert(A.Slots == B.Slots && "additive operands with different slots");
  assert(scalesCloseOrReport("add", A.Scale, B.Scale) &&
         "additive operands with mismatched scales");
}

//===----------------------------------------------------------------------===//
// Additive operations
//===----------------------------------------------------------------------===//

void Evaluator::addInPlace(Ciphertext &A, const Ciphertext &B) const {
  checkAddCompatible(A, B);
  ++Counters.Add;
  countOp(telemetry::Counter::Add);
  // Adding a Cipher and a Cipher3 is permitted: missing components are
  // implicitly zero.
  if (B.size() > A.size())
    A.Polys.resize(B.size(),
                   RnsPoly(Ctx, A.numQ(), /*HasSpecial=*/false,
                           /*NttForm=*/true));
  for (size_t I = 0; I < B.size(); ++I)
    A.Polys[I].addInPlace(B.Polys[I]);
}

Ciphertext Evaluator::add(const Ciphertext &A, const Ciphertext &B) const {
  Ciphertext R = A;
  addInPlace(R, B);
  return R;
}

void Evaluator::subInPlace(Ciphertext &A, const Ciphertext &B) const {
  checkAddCompatible(A, B);
  ++Counters.Add;
  countOp(telemetry::Counter::Add);
  if (B.size() > A.size())
    A.Polys.resize(B.size(),
                   RnsPoly(Ctx, A.numQ(), /*HasSpecial=*/false,
                           /*NttForm=*/true));
  for (size_t I = 0; I < B.size(); ++I)
    A.Polys[I].subInPlace(B.Polys[I]);
}

Ciphertext Evaluator::sub(const Ciphertext &A, const Ciphertext &B) const {
  Ciphertext R = A;
  subInPlace(R, B);
  return R;
}

Ciphertext Evaluator::negate(const Ciphertext &A) const {
  Ciphertext R = A;
  for (auto &Poly : R.Polys)
    Poly.negateInPlace();
  return R;
}

void Evaluator::addPlainInPlace(Ciphertext &A, const Plaintext &P) const {
  assert(P.numQ() >= A.numQ() && "plaintext level below ciphertext level");
  assert(scalesCloseOrReport("addPlain", A.Scale, P.Scale) &&
         "addPlain scale mismatch");
  ++Counters.Add;
  countOp(telemetry::Counter::Add);
  if (P.numQ() == A.numQ()) {
    A.Polys[0].addInPlace(P.Poly);
    return;
  }
  A.Polys[0].addInPlace(
      P.Poly.restrictedCopy(A.numQ(), /*KeepSpecial=*/false));
}

Ciphertext Evaluator::addPlain(const Ciphertext &A, const Plaintext &P) const {
  Ciphertext R = A;
  addPlainInPlace(R, P);
  return R;
}

void Evaluator::addConstInPlace(Ciphertext &A, double Value) const {
  // A constant polynomial has the same value at every NTT evaluation
  // point, so adding round(Value * Scale) to every residue of c0 adds the
  // constant to every slot.
  long double Raw = static_cast<long double>(Value) *
                    static_cast<long double>(A.Scale);
  assert(fabsl(Raw) < 0x1.0p62L && "constant too large for the scale");
  int64_t V = static_cast<int64_t>(llroundl(Raw));
  RnsPoly &C0 = A.Polys[0];
  size_t N = Ctx.degree();
  parallelFor(0, C0.numQ(), [&](size_t I) {
    uint64_t Q = C0.modulus(I);
    uint64_t R = V >= 0 ? static_cast<uint64_t>(V) % Q
                        : Q - (static_cast<uint64_t>(-V) % Q);
    if (R == Q)
      R = 0;
    uint64_t *Comp = C0.component(I);
    for (size_t J = 0; J < N; ++J)
      Comp[J] = addMod(Comp[J], R, Q);
  });
}

//===----------------------------------------------------------------------===//
// Multiplicative operations
//===----------------------------------------------------------------------===//

Ciphertext Evaluator::mulNoRelin(const Ciphertext &A,
                                 const Ciphertext &B) const {
  assert(A.size() == 2 && B.size() == 2 &&
         "ciphertext product requires two-polynomial operands");
  assert(A.numQ() == B.numQ() && "product operands at different levels");
  assert(A.Slots == B.Slots && "product operands with different slots");
  ++Counters.MulCipher;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::CtCtMul, A.numQ(), A.Scale,
               noiseBudgetBits(A));

  Ciphertext R;
  R.Scale = A.Scale * B.Scale;
  R.Slots = A.Slots;
  // (a0 + a1 s)(b0 + b1 s) = a0b0 + (a0b1 + a1b0) s + a1b1 s^2.
  RnsPoly P0 = A.Polys[0].mul(B.Polys[0]);
  RnsPoly P1 = A.Polys[0].mul(B.Polys[1]);
  P1.mulAddInPlace(A.Polys[1], B.Polys[0]);
  RnsPoly P2 = A.Polys[1].mul(B.Polys[1]);
  R.Polys.push_back(std::move(P0));
  R.Polys.push_back(std::move(P1));
  R.Polys.push_back(std::move(P2));
  return R;
}

Ciphertext Evaluator::mul(const Ciphertext &A, const Ciphertext &B) const {
  return relinearize(mulNoRelin(A, B));
}

void Evaluator::mulPlainInPlace(Ciphertext &A, const Plaintext &P) const {
  assert(P.numQ() >= A.numQ() && "plaintext level below ciphertext level");
  ++Counters.MulPlain;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::CtPtMul, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  if (P.numQ() == A.numQ()) {
    for (auto &Poly : A.Polys)
      Poly.mulInPlace(P.Poly);
  } else {
    RnsPoly Restricted =
        P.Poly.restrictedCopy(A.numQ(), /*KeepSpecial=*/false);
    for (auto &Poly : A.Polys)
      Poly.mulInPlace(Restricted);
  }
  A.Scale *= P.Scale;
}

Ciphertext Evaluator::mulPlain(const Ciphertext &A, const Plaintext &P) const {
  Ciphertext R = A;
  mulPlainInPlace(R, P);
  return R;
}

void Evaluator::mulPlainAddInPlace(Ciphertext &Acc, const Ciphertext &A,
                                   const Plaintext &P) const {
  assert(P.numQ() >= A.numQ() && "plaintext level below ciphertext level");
  assert(Acc.size() == A.size() && Acc.numQ() == A.numQ() &&
         Acc.Slots == A.Slots && "mulPlainAdd operand shape mismatch");
  assert(scalesCloseOrReport("mulPlainAdd", Acc.Scale, A.Scale * P.Scale) &&
         "mulPlainAdd scale mismatch");
  ++Counters.MulPlain;
  ++Counters.Add;
  countOp(telemetry::Counter::Add);
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::CtPtMul, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  // Acc[i] += A[i] * P elementwise - one fused backend mulAcc per limb
  // instead of a product temporary plus an add pass. Residues match the
  // unfused mulPlain-then-addInPlace sequence bit-for-bit.
  if (P.numQ() == A.numQ()) {
    for (size_t I = 0; I < A.size(); ++I)
      Acc.Polys[I].mulAddInPlace(A.Polys[I], P.Poly);
  } else {
    RnsPoly Restricted =
        P.Poly.restrictedCopy(A.numQ(), /*KeepSpecial=*/false);
    for (size_t I = 0; I < A.size(); ++I)
      Acc.Polys[I].mulAddInPlace(A.Polys[I], Restricted);
  }
}

Ciphertext Evaluator::mulScalar(const Ciphertext &A, double Value,
                                double TargetScale) const {
  ++Counters.MulPlain;
  countOp(telemetry::Counter::CtPtMul);
  Ciphertext R = A;
  if (TargetScale <= 0.0)
    TargetScale = A.Scale;
  // Plaintext scale P such that Scale * P / q_last == TargetScale exactly;
  // rounding the integer scalar to V only perturbs the VALUE (by at most
  // 0.5/V relative), never the scale bookkeeping.
  double P = TargetScale * mulPlainScale(A) / A.Scale;
  long double Raw = static_cast<long double>(std::fabs(Value)) *
                    static_cast<long double>(P);
  assert(Raw < 0x1.0p62L && "scalar too large for the scale");
  uint64_t V = static_cast<uint64_t>(llroundl(Raw));
  for (auto &Poly : R.Polys)
    Poly.mulScalarInt(V);
  if (Value < 0)
    for (auto &Poly : R.Polys)
      Poly.negateInPlace();
  R.Scale *= P;
  return R;
}

void Evaluator::mulIntegerInPlace(Ciphertext &A, int64_t Value) const {
  uint64_t Magnitude = static_cast<uint64_t>(Value < 0 ? -Value : Value);
  for (auto &Poly : A.Polys)
    Poly.mulScalarInt(Magnitude);
  if (Value < 0)
    for (auto &Poly : A.Polys)
      Poly.negateInPlace();
}

const std::vector<uint64_t> &Evaluator::monomialNtt(size_t ModIndex) const {
  auto &Cached = MonomialNtt[ModIndex];
  if (!Cached.empty())
    return Cached;
  size_t N = Ctx.degree();
  Cached.assign(N, 0);
  Cached[N / 2] = 1;
  Ctx.nttTable(ModIndex).forward(Cached.data());
  return Cached;
}

Ciphertext Evaluator::mulByI(const Ciphertext &A) const {
  // X^{N/2} evaluates to i at every slot root (zeta^{N/2} = i for all
  // canonical roots), so monomial multiplication rotates the complex
  // phase of every slot by 90 degrees exactly, without noise growth.
  Ciphertext R = A;
  size_t N = Ctx.degree();
  for (auto &Poly : R.Polys) {
    assert(Poly.isNtt() && "mulByI expects NTT form");
    // Warm the lazy monomial cache serially: the parallel loop below must
    // only read it (the cache is per-mod-index mutable state).
    for (size_t I = 0, E = Poly.numComponents(); I < E; ++I)
      monomialNtt(Poly.modIndex(I));
    const PolyBackend &B = activePolyBackend();
    parallelFor(0, Poly.numComponents(), [&](size_t I) {
      const auto &Mono = monomialNtt(Poly.modIndex(I));
      B.mul(Poly.component(I), Mono.data(), N, Poly.modulus(I));
    });
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Key switching
//===----------------------------------------------------------------------===//

HoistedDecomposition Evaluator::decomposeNtt(const RnsPoly &D) const {
  assert(!D.isNtt() && !D.hasSpecial() &&
         "decomposeNtt input must be coeff-domain without special component");
  size_t L = D.numQ();
  size_t N = Ctx.degree();
  // One ModUp = the full digit decomposition; this is the unit of work
  // hoisted rotation batches share (one per batch instead of one per
  // rotation), so the counter pair below is what the differential tests
  // and EXPERIMENTS.md use to prove the amortization.
  countOp(telemetry::Counter::ModUp);
  countOp(telemetry::Counter::KeySwitchDigit, L);

  HoistedDecomposition Dec;
  Dec.NumQ = L;
  Dec.Digits.assign(L, RnsPoly(Ctx, L, /*HasSpecial=*/true,
                               /*NttForm=*/true));
  size_t NumComp = L + 1; // L chain primes + special
  // Fully parallel over (digit, component) pairs: each pair lifts the
  // digit residues (integers in [0, q_digit)) into the component's
  // modulus and transforms that component in place. Every pair writes a
  // disjoint slice, so the result is bit-identical at any thread count.
  parallelFor(0, L * NumComp, [&](size_t Idx) {
    size_t Digit = Idx / NumComp;
    size_t C = Idx % NumComp;
    RnsPoly &E = Dec.Digits[Digit];
    const uint64_t *Src = D.component(Digit);
    uint64_t M = E.modulus(C);
    uint64_t *Dst = E.component(C);
    if (M == Ctx.qModulus(Digit)) {
      std::copy(Src, Src + N, Dst);
    } else {
      for (size_t J = 0; J < N; ++J)
        Dst[J] = Src[J] % M;
    }
    Ctx.nttTable(E.modIndex(C)).forward(Dst);
  });
  return Dec;
}

void Evaluator::hoistedInnerProduct(const HoistedDecomposition &Dec,
                                    const SwitchKey &Key, uint64_t Galois,
                                    RnsPoly &Acc0, RnsPoly &Acc1) const {
  size_t L = Dec.NumQ;
  size_t N = Ctx.degree();
  assert(Key.Parts.size() >= L &&
         "switch key truncated below this ciphertext's level");
  // Keys may be truncated to fewer digits than the full chain; their
  // special component sits right after their chain components.
  size_t KeySpecial = Key.Parts[0].first.numQ();
  // The automorphism acts on every lifted digit as the same NTT-domain
  // index permutation, so instead of materializing rotated digits the
  // accumulation gathers through the permutation table (identity when
  // Galois == 1, which is the plain key-switch path).
  const uint32_t *Perm =
      Galois == 1 ? nullptr : Ctx.galoisNttPermutation(Galois).data();

  Acc0 = RnsPoly(Ctx, L, /*HasSpecial=*/true, /*NttForm=*/true);
  Acc1 = RnsPoly(Ctx, L, /*HasSpecial=*/true, /*NttForm=*/true);
  const PolyBackend &B = activePolyBackend();
  parallelFor(0, L + 1, [&](size_t C) {
    // Chain prime c maps to key component c, the special prime to the
    // key's own special slot. Digits accumulate in ascending order so
    // each residue sees exactly the serial code's value; within a digit
    // the two backend mulAcc calls touch disjoint accumulators, so the
    // values also match the old interleaved loop element-for-element.
    size_t KeyComp = (C == L) ? KeySpecial : C;
    uint64_t Q = Acc0.modulus(C);
    uint64_t *A0 = Acc0.component(C);
    uint64_t *A1 = Acc1.component(C);
    std::vector<uint64_t> Gather(Perm ? N : 0);
    for (size_t Digit = 0; Digit < L; ++Digit) {
      const uint64_t *X = Dec.Digits[Digit].component(C);
      const uint64_t *K0 = Key.Parts[Digit].first.component(KeyComp);
      const uint64_t *K1 = Key.Parts[Digit].second.component(KeyComp);
      if (Perm) {
        // Materialize the permuted digit once per (component, digit)
        // so the accumulation itself is a contiguous backend kernel.
        for (size_t J = 0; J < N; ++J)
          Gather[J] = X[Perm[J]];
        X = Gather.data();
      }
      B.mulAcc(A0, X, K0, N, Q);
      B.mulAcc(A1, X, K1, N, Q);
    }
  });
}

RnsPoly Evaluator::modDown(const RnsPoly &Acc) const {
  // Divide by the special prime P: out = round(acc / P), computed as
  // (acc - [acc]_P) * P^{-1} per chain prime, in parallel over chain
  // primes (each writes only its own output limb).
  size_t L = Acc.numQ();
  size_t N = Ctx.degree();
  std::vector<uint64_t> SpecialCoeffs(Acc.component(L),
                                      Acc.component(L) + N);
  Ctx.nttTable(Ctx.specialIndex()).inverse(SpecialCoeffs.data());

  RnsPoly Out(Ctx, L, /*HasSpecial=*/false, /*NttForm=*/true);
  parallelFor(0, L, [&](size_t C) {
    uint64_t Q = Ctx.qModulus(C);
    std::vector<uint64_t> Tmp(N);
    for (size_t J = 0; J < N; ++J)
      Tmp[J] = SpecialCoeffs[J] % Q;
    Ctx.nttTable(C).forward(Tmp.data());
    uint64_t InvP = Ctx.invSpecialModQ(C);
    uint64_t InvPShoup = shoupPrecompute(InvP, Q);
    const uint64_t *A = Acc.component(C);
    uint64_t *O = Out.component(C);
    for (size_t J = 0; J < N; ++J)
      O[J] = mulModShoup(subMod(A[J], Tmp[J], Q), InvP, InvPShoup, Q);
  });
  return Out;
}

std::pair<RnsPoly, RnsPoly> Evaluator::switchKey(const RnsPoly &D,
                                                 const SwitchKey &Key) const {
  assert(!D.isNtt() && !D.hasSpecial() &&
         "switchKey input must be coeff-domain without special component");
  assert(Key.Parts.size() >= D.numQ() &&
         "switch key truncated below this ciphertext's level");
  ++Counters.KeySwitch;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::KeySwitch, D.numQ(), /*Scale=*/0.0,
               std::numeric_limits<double>::quiet_NaN());

  HoistedDecomposition Dec = decomposeNtt(D);
  RnsPoly Acc0, Acc1;
  hoistedInnerProduct(Dec, Key, /*Galois=*/1, Acc0, Acc1);
  return {modDown(Acc0), modDown(Acc1)};
}

Ciphertext Evaluator::relinearize(const Ciphertext &A) const {
  assert(A.size() == 3 && "relinearize expects a Cipher3");
  assert(Keys.HasRelin && "relinearization key not generated");
  ++Counters.Relinearize;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Relinearize, A.numQ(), A.Scale,
               noiseBudgetBits(A));

  RnsPoly D = A.Polys[2];
  D.toCoeff();
  auto [D0, D1] = switchKey(D, Keys.Relin);

  Ciphertext R;
  R.Scale = A.Scale;
  R.Slots = A.Slots;
  R.Polys.push_back(A.Polys[0]);
  R.Polys.push_back(A.Polys[1]);
  R.Polys[0].addInPlace(D0);
  R.Polys[1].addInPlace(D1);
  return R;
}

Ciphertext Evaluator::applyGaloisHoisted(
    const Ciphertext &A, uint64_t Galois, const SwitchKey &Key,
    const HoistedDecomposition &Dec) const {
  RnsPoly Acc0, Acc1;
  hoistedInnerProduct(Dec, Key, Galois, Acc0, Acc1);
  RnsPoly D0 = modDown(Acc0);
  RnsPoly D1 = modDown(Acc1);
  // c0 needs no key switch: apply the automorphism directly in the NTT
  // domain (exactly equal to coeff-domain automorphism + forward NTT).
  D0.addInPlace(A.Polys[0].automorphismNtt(Galois));

  Ciphertext R;
  R.Scale = A.Scale;
  R.Slots = A.Slots;
  R.Polys.push_back(std::move(D0));
  R.Polys.push_back(std::move(D1));
  return R;
}

Ciphertext Evaluator::applyGalois(const Ciphertext &A, uint64_t Galois,
                                  const SwitchKey &Key) const {
  assert(A.size() == 2 && "relinearize before applying automorphisms");
  assert(Key.Parts.size() >= A.numQ() &&
         "switch key truncated below this ciphertext's level");
  ++Counters.KeySwitch;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::KeySwitch, A.numQ(), /*Scale=*/0.0,
               std::numeric_limits<double>::quiet_NaN());

  // Decompose-first order: ModUp the un-rotated c1, then apply the
  // automorphism inside the decomposed digit domain. A hoisted batch of
  // one -- which is what makes rotate() bit-identical to rotateHoisted()
  // (both run exactly this arithmetic on the same decomposition).
  RnsPoly C1 = A.Polys[1];
  C1.toCoeff();
  HoistedDecomposition Dec = decomposeNtt(C1);
  return applyGaloisHoisted(A, Galois, Key, Dec);
}

Ciphertext Evaluator::rotate(const Ciphertext &A, int64_t Steps) const {
  size_t Slots = A.Slots;
  int64_t K = ((Steps % static_cast<int64_t>(Slots)) +
               static_cast<int64_t>(Slots)) %
              static_cast<int64_t>(Slots);
  if (K == 0)
    return A;
  ++Counters.Rotate;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Rotate, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  uint64_t Galois = galoisForRotation(Ctx.degree(), Slots, K);
  std::shared_ptr<const SwitchKey> Hold;
  Status WhyNot;
  const SwitchKey *Key = galoisKeyFor(Galois, Hold, &WhyNot);
  // The hot tier has no error channel; a lazy-keygen failure here is a
  // caller bug (use checkedRotate under budget pressure), surfaced as a
  // clean abort rather than UB.
  if (!Key)
    reportFatalError("rotate: " + WhyNot.message());
  return applyGalois(A, Galois, *Key);
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext &A,
                         const std::vector<int64_t> &Steps) const {
  assert(A.size() == 2 && "relinearize before rotating");
  int64_t Slots = static_cast<int64_t>(A.Slots);
  std::vector<Ciphertext> Out(Steps.size());

  // Resolve keys up front; zero steps are plain copies and join neither
  // the counters nor the batch. Cache-served keys are pinned for the
  // whole batch so a concurrent eviction cannot free one mid-rotation.
  struct Job {
    size_t Index;
    uint64_t Galois;
    const SwitchKey *Key;
  };
  std::vector<Job> Jobs;
  std::vector<std::shared_ptr<const SwitchKey>> Holds;
  Jobs.reserve(Steps.size());
  Holds.reserve(Steps.size());
  for (size_t I = 0; I < Steps.size(); ++I) {
    int64_t K = ((Steps[I] % Slots) + Slots) % Slots;
    if (K == 0) {
      Out[I] = A;
      continue;
    }
    uint64_t Galois = galoisForRotation(Ctx.degree(), A.Slots, K);
    std::shared_ptr<const SwitchKey> Hold;
    Status WhyNot;
    const SwitchKey *Key = galoisKeyFor(Galois, Hold, &WhyNot);
    if (!Key)
      reportFatalError("rotateHoisted: " + WhyNot.message());
    if (Hold)
      Holds.push_back(std::move(Hold));
    assert(Key->Parts.size() >= A.numQ() &&
           "rotation key truncated below this ciphertext's level");
    Jobs.push_back({I, Galois, Key});
  }
  if (Jobs.empty())
    return Out;

  Counters.Rotate += Jobs.size();
  Counters.KeySwitch += Jobs.size();
  telemetry::FheOpSpan Span;
  if (telemetry::enabled()) {
    auto &T = telemetry::Telemetry::instance();
    // The batch gets one trace span; the counters still tally every
    // rotation so hoisted and sequential runs report identical op counts
    // (the span's begin() contributes the final Rotate increment).
    T.count(telemetry::Counter::Rotate, Jobs.size() - 1);
    T.count(telemetry::Counter::KeySwitch, Jobs.size());
    T.count(telemetry::Counter::HoistedKeySwitch, Jobs.size());
    Span.begin(telemetry::Counter::Rotate, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  }

  // ModUp once for the whole batch (N decompositions -> 1).
  RnsPoly C1 = A.Polys[1];
  C1.toCoeff();
  HoistedDecomposition Dec = decomposeNtt(C1);

  // Warm the lazy Galois permutation cache serially: the parallel loop
  // below should only read it.
  for (const Job &J : Jobs)
    Ctx.galoisNttPermutation(J.Galois);

  // One inner product + ModDown per rotation, spread across the pool.
  // Each iteration writes only its own output slot, and the per-rotation
  // arithmetic is identical to the sequential path's, so the batch is
  // bit-identical to N rotate() calls at every thread count.
  parallelFor(0, Jobs.size(), [&](size_t J) {
    Out[Jobs[J].Index] =
        applyGaloisHoisted(A, Jobs[J].Galois, *Jobs[J].Key, Dec);
  });
  return Out;
}

Ciphertext Evaluator::rotateGalois(const Ciphertext &A,
                                   uint64_t Galois) const {
  if (Galois == 1)
    return A;
  ++Counters.Rotate;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Rotate, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  std::shared_ptr<const SwitchKey> Hold;
  Status WhyNot;
  const SwitchKey *Key = galoisKeyFor(Galois, Hold, &WhyNot);
  if (!Key)
    reportFatalError("rotateGalois: " + WhyNot.message());
  return applyGalois(A, Galois, *Key);
}

Ciphertext Evaluator::conjugate(const Ciphertext &A) const {
  assert(Keys.HasConjugate && "conjugation key not generated");
  ++Counters.Conjugate;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Conjugate, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  return applyGalois(A, galoisForConjugation(Ctx.degree()), Keys.Conjugate);
}

//===----------------------------------------------------------------------===//
// Scale and level management
//===----------------------------------------------------------------------===//

void Evaluator::rescaleInPlace(Ciphertext &A) const {
  size_t L = A.numQ();
  assert(L >= 2 && "cannot rescale past the base modulus");
  ++Counters.Rescale;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Rescale, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  size_t N = Ctx.degree();
  size_t Last = L - 1;
  uint64_t QLast = Ctx.qModulus(Last);

  for (auto &Poly : A.Polys) {
    assert(Poly.isNtt() && "rescale expects NTT form");
    std::vector<uint64_t> LastCoeffs(Poly.component(Last),
                                     Poly.component(Last) + N);
    Ctx.nttTable(Last).inverse(LastCoeffs.data());

    // Parallel over the surviving limbs; each index owns its limb and a
    // local reduction buffer.
    parallelFor(0, Last, [&](size_t C) {
      uint64_t Q = Ctx.qModulus(C);
      std::vector<uint64_t> Tmp(N);
      for (size_t J = 0; J < N; ++J)
        Tmp[J] = LastCoeffs[J] % Q;
      Ctx.nttTable(C).forward(Tmp.data());
      uint64_t Inv = Ctx.invQLastModQ(Last, C);
      uint64_t InvShoup = shoupPrecompute(Inv, Q);
      uint64_t *Comp = Poly.component(C);
      for (size_t J = 0; J < N; ++J)
        Comp[J] = mulModShoup(subMod(Comp[J], Tmp[J], Q), Inv, InvShoup, Q);
    });
    Poly.dropLastQ();
  }
  A.Scale /= static_cast<double>(QLast);
}

void Evaluator::modSwitchInPlace(Ciphertext &A) const {
  assert(A.numQ() >= 2 && "cannot mod-switch past the base modulus");
  ++Counters.ModSwitch;
  countOp(telemetry::Counter::ModSwitch);
  for (auto &Poly : A.Polys)
    Poly.dropLastQ();
}

void Evaluator::modSwitchTo(Ciphertext &A, size_t NumQ) const {
  assert(NumQ >= 1 && NumQ <= A.numQ() && "bad mod-switch target");
  while (A.numQ() > NumQ)
    modSwitchInPlace(A);
}

void Evaluator::upscaleInPlace(Ciphertext &A, int LogFactor) const {
  assert(LogFactor >= 0 && LogFactor < 62 && "bad upscale factor");
  uint64_t Factor = 1ULL << LogFactor;
  for (auto &Poly : A.Polys)
    Poly.mulScalarInt(Factor);
  A.Scale *= static_cast<double>(Factor);
}

void Evaluator::downscaleInPlace(Ciphertext &A, double TargetScale) const {
  assert(A.numQ() >= 2 && "downscale needs a level to consume");
  // Multiply by 1 encoded at scale P = Target * (consumed primes) / Scale,
  // then rescale once per consumed prime: the final scale is exactly
  // TargetScale, and the value error is 0.5/round(P). Consuming extra
  // levels keeps P large enough (>= 2^40) that the error is negligible;
  // deep squaring chains would amplify anything coarser exponentially.
  double P = TargetScale * static_cast<double>(Ctx.qModulus(A.numQ() - 1)) /
             A.Scale;
  assert(P >= 1.0 && "downscale target too small for the available levels");
  int Levels = 1;
  while (P < 0x1.0p25 && A.numQ() > static_cast<size_t>(Levels) + 1 &&
         Levels < 3) {
    double Q = static_cast<double>(Ctx.qModulus(A.numQ() - 1 - Levels));
    if (P * Q >= 0x1.0p62)
      break;
    P *= Q;
    ++Levels;
  }
  assert(P < 0x1.0p62 && "downscale plaintext scale out of range");
  uint64_t V = static_cast<uint64_t>(llround(P));
  for (auto &Poly : A.Polys)
    Poly.mulScalarInt(V);
  A.Scale *= P;
  for (int I = 0; I < Levels; ++I)
    rescaleInPlace(A);
}

Plaintext Evaluator::encodeForMul(const Ciphertext &Ct,
                                  const std::vector<double> &Values) const {
  return Enc.encodeReal(Values, mulPlainScale(Ct), Ct.numQ());
}

Plaintext Evaluator::encodeForMulComplex(
    const Ciphertext &Ct,
    const std::vector<std::complex<double>> &Values) const {
  return Enc.encode(Values, mulPlainScale(Ct), Ct.numQ());
}

Plaintext Evaluator::encodeForAdd(const Ciphertext &Ct,
                                  const std::vector<double> &Values) const {
  return Enc.encodeReal(Values, Ct.Scale, Ct.numQ());
}

double Evaluator::mulPlainScale(const Ciphertext &Ct) const {
  // Encoding at the prime the next rescale drops makes mul + rescale
  // preserve the ciphertext scale exactly.
  assert(Ct.numQ() >= 2 && "no rescale prime available at the base level");
  return static_cast<double>(Ctx.qModulus(Ct.numQ() - 1));
}

void Evaluator::matchForAdd(Ciphertext &A, Ciphertext &B) const {
  if (A.numQ() > B.numQ())
    modSwitchTo(A, B.numQ());
  else if (B.numQ() > A.numQ())
    modSwitchTo(B, A.numQ());
  assert(scalesCloseOrReport("matchForAdd", A.Scale, B.Scale) &&
         "operands cannot be aligned: scales differ");
}

//===----------------------------------------------------------------------===//
// Checked entry points
//===----------------------------------------------------------------------===//

Status Evaluator::checkedMatchForAdd(Ciphertext &A, Ciphertext &B) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "matchForAdd", &A, &B));
  if (A.numQ() > B.numQ())
    modSwitchTo(A, B.numQ());
  else if (B.numQ() > A.numQ())
    modSwitchTo(B, A.numQ());
  if (!scalesClose(A.Scale, B.Scale))
    return Status::scaleMismatch(
        scaleMismatchMessage("matchForAdd", A.Scale, B.Scale) +
        " at " + std::to_string(A.numQ()) + " active primes");
  return Status::success();
}

StatusOr<Ciphertext> Evaluator::checkedAdd(const Ciphertext &A,
                                           const Ciphertext &B) const {
  Ciphertext X = A, Y = B;
  ACE_RETURN_IF_ERROR(checkedMatchForAdd(X, Y));
  if (X.Slots != Y.Slots)
    return Status::invalidArgument(
        "add: operands pack different slot counts (" +
        std::to_string(X.Slots) + " vs " + std::to_string(Y.Slots) + ")");
  addInPlace(X, Y);
  return X;
}

StatusOr<Ciphertext> Evaluator::checkedSub(const Ciphertext &A,
                                           const Ciphertext &B) const {
  Ciphertext X = A, Y = B;
  ACE_RETURN_IF_ERROR(checkedMatchForAdd(X, Y));
  if (X.Slots != Y.Slots)
    return Status::invalidArgument(
        "sub: operands pack different slot counts (" +
        std::to_string(X.Slots) + " vs " + std::to_string(Y.Slots) + ")");
  subInPlace(X, Y);
  return X;
}

/// True when the armed fault harness says this key lookup must fail.
static bool keyDropped(FaultKind Kind) {
  FaultInjector &Faults = FaultInjector::instance();
  return Faults.enabled() && Faults.shouldFire(Kind);
}

Status Evaluator::checkedRelinSupport(const char *What,
                                      size_t NumQ) const {
  if (!Keys.HasRelin || keyDropped(FaultKind::DropRelinKey))
    return Status::keyMissing(
        std::string(What) +
        ": relinearization key not generated (call keygen with relin "
        "enabled)");
  if (Keys.Relin.Parts.size() < NumQ)
    return Status::keyMissing(
        std::string(What) + ": relinearization key truncated to " +
        std::to_string(Keys.Relin.Parts.size()) +
        " digits but the ciphertext has " + std::to_string(NumQ) +
        " active primes");
  return Status::success();
}

Status Evaluator::checkedNoiseBudget(const char *What, const Ciphertext &A,
                                     double ExtraLogScale) const {
  // The product's scale is A.Scale * 2^ExtraLogScale; once log2 of that
  // exceeds log2 of the active modulus product the plaintext wraps around
  // the modulus and decrypts to unrelated values with no error indication.
  // Require one bit of headroom so near-misses (scale within rounding of
  // the modulus) are also rejected.
  double Budget = noiseBudgetBits(A) - ExtraLogScale;
  if (Budget < 1.0) {
    char Msg[256];
    std::snprintf(Msg, sizeof(Msg),
                  "%s: noise budget exhausted: product scale 2^%.1f would "
                  "overrun the active modulus (2^%.1f at %zu active "
                  "primes); rescale or bootstrap before multiplying",
                  What, std::log2(A.Scale) + ExtraLogScale,
                  noiseBudgetBits(A) + std::log2(A.Scale), A.numQ());
    return Status::depthExhausted(Msg);
  }
  return Status::success();
}

StatusOr<Ciphertext> Evaluator::checkedMul(const Ciphertext &A,
                                           const Ciphertext &B) const {
  Ciphertext X = A, Y = B;
  ACE_RETURN_IF_ERROR(checkedMatchForAdd(X, Y));
  if (X.size() != 2 || Y.size() != 2)
    return Status::invalidArgument(
        "mul: operands must be relinearized two-polynomial ciphertexts "
        "(got " + std::to_string(X.size()) + " and " +
        std::to_string(Y.size()) + " components)");
  ACE_RETURN_IF_ERROR(checkedRelinSupport("mul", X.numQ()));
  ACE_RETURN_IF_ERROR(checkedNoiseBudget("mul", X, std::log2(Y.Scale)));
  return mul(X, Y);
}

StatusOr<Ciphertext>
Evaluator::checkedMulPlain(const Ciphertext &A,
                           const std::vector<double> &Values) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "mulPlain", &A, nullptr));
  if (Values.size() > Ctx.slots())
    return Status::invalidArgument(
        "mulPlain: " + std::to_string(Values.size()) +
        " plaintext values exceed the context's " +
        std::to_string(Ctx.slots()) + " slots");
  if (A.numQ() < 2)
    return Status::depthExhausted(
        "mulPlain: ciphertext at the base modulus (1 active prime); no "
        "rescale prime is available to multiply against");
  ACE_RETURN_IF_ERROR(
      checkedNoiseBudget("mulPlain", A, std::log2(mulPlainScale(A))));
  std::vector<double> Padded = Values;
  Padded.resize(Ctx.slots(), 0.0);
  return mulPlain(A, encodeForMul(A, Padded));
}

StatusOr<Ciphertext>
Evaluator::checkedAddPlain(const Ciphertext &A,
                           const std::vector<double> &Values) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "addPlain", &A, nullptr));
  if (Values.size() > Ctx.slots())
    return Status::invalidArgument(
        "addPlain: " + std::to_string(Values.size()) +
        " plaintext values exceed the context's " +
        std::to_string(Ctx.slots()) + " slots");
  std::vector<double> Padded = Values;
  Padded.resize(Ctx.slots(), 0.0);
  return addPlain(A, encodeForAdd(A, Padded));
}

StatusOr<Ciphertext> Evaluator::checkedMulScalar(const Ciphertext &A,
                                                 double Value,
                                                 double TargetScale) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "mulScalar", &A, nullptr));
  if (A.numQ() < 2)
    return Status::depthExhausted(
        "mulScalar: ciphertext at the base modulus (1 active prime); no "
        "rescale prime is available to scale against");
  ACE_RETURN_IF_ERROR(
      checkedNoiseBudget("mulScalar", A, std::log2(mulPlainScale(A))));
  if (!std::isfinite(Value))
    return Status::invalidArgument("mulScalar: non-finite scalar operand");
  double Target = TargetScale <= 0.0 ? A.Scale : TargetScale;
  long double Raw = static_cast<long double>(std::fabs(Value)) *
                    static_cast<long double>(Target * mulPlainScale(A) /
                                             A.Scale);
  if (!(Raw < 0x1.0p62L))
    return Status::invalidArgument(
        "mulScalar: scalar " + std::to_string(Value) +
        " overflows the 62-bit encoding at target scale " +
        std::to_string(Target));
  return mulScalar(A, Value, TargetScale);
}

StatusOr<Ciphertext> Evaluator::checkedAddConst(const Ciphertext &A,
                                                double Value) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "addConst", &A, nullptr));
  long double Raw = static_cast<long double>(Value) *
                    static_cast<long double>(A.Scale);
  if (!std::isfinite(Value) || !(fabsl(Raw) < 0x1.0p62L))
    return Status::invalidArgument(
        "addConst: constant " + std::to_string(Value) +
        " overflows the 62-bit encoding at scale " +
        std::to_string(A.Scale));
  Ciphertext R = A;
  addConstInPlace(R, Value);
  return R;
}

StatusOr<Ciphertext> Evaluator::checkedRotate(const Ciphertext &A,
                                              int64_t Steps) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "rotate", &A, nullptr));
  if (A.size() != 2)
    return Status::invalidArgument(
        "rotate: relinearize before rotating (ciphertext has " +
        std::to_string(A.size()) + " components)");
  int64_t Slots = static_cast<int64_t>(A.Slots);
  int64_t K = ((Steps % Slots) + Slots) % Slots;
  if (K == 0)
    return A;
  uint64_t Galois = galoisForRotation(Ctx.degree(), A.Slots, K);
  std::shared_ptr<const SwitchKey> Hold;
  Status WhyNot;
  const SwitchKey *Key = galoisKeyFor(Galois, Hold, &WhyNot);
  if (Key && keyDropped(FaultKind::DropGaloisKey))
    Key = nullptr;
  if (!Key) {
    if (!WhyNot.ok() && WhyNot.code() != ErrorCode::KeyMissing)
      return WhyNot; // budget refusal from lazy keygen: ResourceExhausted
    return Status::keyMissing(
        "rotate: no rotation key for step " + std::to_string(Steps) +
        " (galois element " + std::to_string(Galois) +
        "); the key analysis did not request this step");
  }
  if (Key->Parts.size() < A.numQ())
    return Status::keyMissing(
        "rotate: rotation key for step " + std::to_string(Steps) +
        " truncated to " + std::to_string(Key->Parts.size()) +
        " digits but the ciphertext has " + std::to_string(A.numQ()) +
        " active primes");
  ++Counters.Rotate;
  telemetry::FheOpSpan Span;
  if (telemetry::enabled())
    Span.begin(telemetry::Counter::Rotate, A.numQ(), A.Scale,
               noiseBudgetBits(A));
  return applyGalois(A, Galois, *Key);
}

StatusOr<std::vector<Ciphertext>>
Evaluator::checkedRotateHoisted(const Ciphertext &A,
                                const std::vector<int64_t> &Steps) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "rotate", &A, nullptr));
  if (A.size() != 2)
    return Status::invalidArgument(
        "rotate: relinearize before rotating (ciphertext has " +
        std::to_string(A.size()) + " components)");
  int64_t Slots = static_cast<int64_t>(A.Slots);
  // Pin every cache-served key across the validation AND the rotation:
  // the Holds vector outlives the rotateHoisted call below, so a
  // concurrent eviction between check and use cannot free a key (the
  // batch re-resolves each key from the still-live cache entry).
  std::vector<std::shared_ptr<const SwitchKey>> Holds;
  for (int64_t Step : Steps) {
    int64_t K = ((Step % Slots) + Slots) % Slots;
    if (K == 0)
      continue;
    uint64_t Galois = galoisForRotation(Ctx.degree(), A.Slots, K);
    std::shared_ptr<const SwitchKey> Hold;
    Status WhyNot;
    const SwitchKey *Key = galoisKeyFor(Galois, Hold, &WhyNot);
    if (Key && keyDropped(FaultKind::DropGaloisKey))
      Key = nullptr;
    if (!Key) {
      if (!WhyNot.ok() && WhyNot.code() != ErrorCode::KeyMissing)
        return WhyNot; // budget refusal from lazy keygen
      return Status::keyMissing(
          "rotate: no rotation key for step " + std::to_string(Step) +
          " (galois element " + std::to_string(Galois) +
          "); the key analysis did not request this step");
    }
    if (Hold)
      Holds.push_back(std::move(Hold));
    if (Key->Parts.size() < A.numQ())
      return Status::keyMissing(
          "rotate: rotation key for step " + std::to_string(Step) +
          " truncated to " + std::to_string(Key->Parts.size()) +
          " digits but the ciphertext has " + std::to_string(A.numQ()) +
          " active primes");
  }
  return rotateHoisted(A, Steps);
}

StatusOr<Ciphertext> Evaluator::checkedConjugate(const Ciphertext &A) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "conjugate", &A, nullptr));
  if (A.size() != 2)
    return Status::invalidArgument(
        "conjugate: relinearize before conjugating (ciphertext has " +
        std::to_string(A.size()) + " components)");
  if (!Keys.HasConjugate || keyDropped(FaultKind::DropGaloisKey))
    return Status::keyMissing("conjugate: conjugation key not generated");
  if (Keys.Conjugate.Parts.size() < A.numQ())
    return Status::keyMissing(
        "conjugate: conjugation key truncated to " +
        std::to_string(Keys.Conjugate.Parts.size()) +
        " digits but the ciphertext has " + std::to_string(A.numQ()) +
        " active primes");
  return conjugate(A);
}

StatusOr<Ciphertext> Evaluator::checkedRelinearize(const Ciphertext &A) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "relinearize", &A, nullptr));
  if (A.size() != 3)
    return Status::invalidArgument(
        "relinearize: expected a three-polynomial Cipher3, got " +
        std::to_string(A.size()) + " components");
  ACE_RETURN_IF_ERROR(checkedRelinSupport("relinearize", A.numQ()));
  return relinearize(A);
}

StatusOr<Ciphertext> Evaluator::checkedRescale(const Ciphertext &A) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "rescale", &A, nullptr));
  if (A.numQ() < 2)
    return Status::depthExhausted(
        "rescale: depth exhausted: ciphertext already at the base modulus "
        "(1 active prime)");
  Ciphertext R = A;
  rescaleInPlace(R);
  return R;
}

StatusOr<Ciphertext> Evaluator::checkedModSwitchTo(const Ciphertext &A,
                                                   size_t NumQ) const {
  ACE_RETURN_IF_ERROR(checkedEntry(Ctx, "modSwitch", &A, nullptr));
  if (NumQ < 1 || NumQ > A.numQ())
    return Status::levelMismatch(
        "modSwitch: target of " + std::to_string(NumQ) +
        " active primes is outside [1, " + std::to_string(A.numQ()) +
        "] for this ciphertext");
  Ciphertext R = A;
  modSwitchTo(R, NumQ);
  return R;
}
