//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Chebyshev.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::fhe;

/// Coefficients below this threshold contribute less than the scheme noise
/// and are skipped.
static constexpr double CoeffEpsilon = 1e-9;

std::vector<double>
ace::fhe::chebyshevInterpolate(const std::function<double(double)> &F,
                               int Degree) {
  assert(Degree >= 0 && "negative interpolation degree");
  int N = Degree + 1;
  // Sample at the Chebyshev nodes and project onto each basis polynomial
  // (discrete orthogonality).
  std::vector<double> Samples(N);
  for (int J = 0; J < N; ++J) {
    double Theta = M_PI * (J + 0.5) / N;
    Samples[J] = F(std::cos(Theta));
  }
  std::vector<double> Coeffs(N);
  for (int K = 0; K < N; ++K) {
    double Acc = 0;
    for (int J = 0; J < N; ++J)
      Acc += Samples[J] * std::cos(K * M_PI * (J + 0.5) / N);
    Coeffs[K] = Acc * (K == 0 ? 1.0 : 2.0) / N;
  }
  return Coeffs;
}

double ace::fhe::chebyshevEvalPlain(const std::vector<double> &Coeffs,
                                    double X) {
  // Clenshaw recurrence.
  double B1 = 0, B2 = 0;
  for (size_t I = Coeffs.size(); I-- > 1;) {
    double B0 = 2 * X * B1 - B2 + Coeffs[I];
    B2 = B1;
    B1 = B0;
  }
  return Coeffs.empty() ? 0.0 : X * B1 - B2 + Coeffs[0];
}

/// Drops trailing coefficients below the noise floor.
static std::vector<double> trimCoeffs(std::vector<double> Coeffs) {
  while (Coeffs.size() > 1 && std::fabs(Coeffs.back()) < CoeffEpsilon)
    Coeffs.pop_back();
  return Coeffs;
}

/// Splits p = Remainder + T_G * Quotient in the Chebyshev basis, using
/// T_i = 2 T_G T_{i-G} - T_{|i-2G|} for i > G and T_G T_0 = T_G.
static void chebyshevDivide(const std::vector<double> &P, size_t G,
                            std::vector<double> &Quotient,
                            std::vector<double> &Remainder) {
  assert(P.size() > G && "division degree exceeds polynomial degree");
  std::vector<double> C = P;
  size_t D = C.size() - 1;
  Quotient.assign(D - G + 1, 0.0);
  for (size_t I = D; I >= G; --I) {
    if (std::fabs(C[I]) >= CoeffEpsilon * 1e-3) {
      if (I == G) {
        Quotient[0] += C[I];
      } else {
        Quotient[I - G] += 2 * C[I];
        size_t Mirror = I >= 2 * G ? I - 2 * G : 2 * G - I;
        C[Mirror] -= C[I];
      }
    }
    C[I] = 0;
    if (I == 0)
      break;
  }
  Remainder.assign(C.begin(), C.begin() + G);
}

int ChebyshevEvaluator::babyLogForDegree(int Degree) {
  int L = static_cast<int>(std::lround(std::log2(std::sqrt(Degree + 1.0))));
  if (L < 2)
    L = 2;
  if (L > 6)
    L = 6;
  return L;
}

int ChebyshevEvaluator::depthForDegree(int Degree) {
  if (Degree <= 1)
    return 1;
  int L = babyLogForDegree(Degree);
  int M = 1 << L;
  // Babies reach depth L; giant j adds j more; the recursion performs one
  // multiplication per division level plus one scalar multiplication in
  // the base case. This bound is validated by the unit tests.
  int Giants = 0;
  while ((M << Giants) <= Degree)
    ++Giants;
  return L + Giants + 1;
}

Ciphertext
ChebyshevEvaluator::evalBase(const std::vector<double> &Coeffs,
                             const std::vector<Ciphertext> &Babies,
                             double TargetScale) const {
  assert(!Coeffs.empty() && Coeffs.size() <= Babies.size() &&
         "base polynomial exceeds the baby-step table");
  // result = sum_{i>=1} c_i T_i + c_0. Every term is steered onto
  // TargetScale exactly, so the accumulation never mixes scales.
  bool HaveAcc = false;
  Ciphertext Acc;
  for (size_t I = 1; I < Coeffs.size(); ++I) {
    if (std::fabs(Coeffs[I]) < CoeffEpsilon)
      continue;
    Ciphertext Term = Eval.mulScalar(Babies[I], Coeffs[I], TargetScale);
    Eval.rescaleInPlace(Term);
    if (!HaveAcc) {
      Acc = std::move(Term);
      HaveAcc = true;
      continue;
    }
    Eval.matchForAdd(Acc, Term);
    Eval.addInPlace(Acc, Term);
  }
  if (!HaveAcc) {
    // Degenerate constant polynomial: synthesize a zero ciphertext at one
    // level below the input.
    Acc = Eval.mulScalar(Babies[1], 0.0, TargetScale);
    Eval.rescaleInPlace(Acc);
  }
  Eval.addConstInPlace(Acc, Coeffs[0]);
  return Acc;
}

Ciphertext
ChebyshevEvaluator::evalRecursive(const std::vector<double> &Coeffs,
                                  const std::vector<Ciphertext> &Babies,
                                  const std::vector<Ciphertext> &Giants,
                                  size_t BabyCount,
                                  double TargetScale) const {
  std::vector<double> C = trimCoeffs(Coeffs);
  if (C.size() <= BabyCount)
    return evalBase(C, Babies, TargetScale);

  size_t D = C.size() - 1;
  size_t J = 0;
  while ((BabyCount << (J + 1)) <= D)
    ++J;
  size_t G = BabyCount << J;
  assert(J < Giants.size() && "giant-step table too small");

  std::vector<double> Quotient, Remainder;
  chebyshevDivide(C, G, Quotient, Remainder);

  Ciphertext QuotCt =
      evalRecursive(Quotient, Babies, Giants, BabyCount, TargetScale);
  Ciphertext Prod = [&] {
    Ciphertext GiantCopy = Giants[J];
    Eval.matchForAdd(GiantCopy, QuotCt);
    Ciphertext P = Eval.mul(QuotCt, GiantCopy);
    Eval.rescaleInPlace(P);
    return P;
  }();

  std::vector<double> RemTrimmed = trimCoeffs(Remainder);
  if (RemTrimmed.size() == 1 && std::fabs(RemTrimmed[0]) < CoeffEpsilon) {
    Eval.addConstInPlace(Prod, RemTrimmed[0]);
    return Prod;
  }
  // The remainder branch targets the product's actual scale so the final
  // addition is scale-exact.
  Ciphertext RemCt =
      evalRecursive(RemTrimmed, Babies, Giants, BabyCount, Prod.Scale);
  Eval.matchForAdd(Prod, RemCt);
  Eval.addInPlace(Prod, RemCt);
  return Prod;
}

Ciphertext ChebyshevEvaluator::evaluate(const Ciphertext &X,
                                        const std::vector<double> &Coeffs) const {
  std::vector<double> C = trimCoeffs(Coeffs);
  int Degree = static_cast<int>(C.size()) - 1;
  assert(Degree >= 0 && "empty coefficient vector");

  if (Degree <= 1) {
    Ciphertext R = Eval.mulScalar(X, Degree == 1 ? C[1] : 0.0);
    Eval.rescaleInPlace(R);
    Eval.addConstInPlace(R, C[0]);
    return R;
  }

  int L = babyLogForDegree(Degree);
  size_t M = size_t(1) << L;

  // Baby steps T_1 .. T_M via T_{a+b} = 2 T_a T_b - T_{|a-b|}.
  std::vector<Ciphertext> Babies(M + 1);
  Babies[1] = X;
  for (size_t K = 2; K <= M; ++K) {
    size_t A = (K + 1) / 2, B = K / 2;
    Ciphertext Lhs = Babies[A];
    Ciphertext Rhs = Babies[B];
    Eval.matchForAdd(Lhs, Rhs);
    Ciphertext T = Eval.mul(Lhs, Rhs);
    Eval.rescaleInPlace(T);
    Eval.mulIntegerInPlace(T, 2);
    if (A == B) {
      Eval.addConstInPlace(T, -1.0);
    } else {
      // Steer a copy of T_1 onto T's exact scale before subtracting, so
      // the odd-index babies stay scale-exact.
      Ciphertext One = Eval.mulScalar(Babies[1], 1.0, T.Scale);
      Eval.rescaleInPlace(One);
      Eval.matchForAdd(T, One);
      Eval.subInPlace(T, One);
    }
    Babies[K] = std::move(T);
  }

  // Giant steps T_{M * 2^j} via T_{2k} = 2 T_k^2 - 1.
  size_t GiantCount = 0;
  while ((M << (GiantCount + 1)) <= static_cast<size_t>(Degree))
    ++GiantCount;
  std::vector<Ciphertext> Giants(GiantCount + 1);
  Giants[0] = Babies[M];
  for (size_t J = 1; J <= GiantCount; ++J) {
    Ciphertext T = Eval.mul(Giants[J - 1], Giants[J - 1]);
    Eval.rescaleInPlace(T);
    Eval.mulIntegerInPlace(T, 2);
    Eval.addConstInPlace(T, -1.0);
    Giants[J] = std::move(T);
  }

  return evalRecursive(C, Babies, Giants, M, X.Scale);
}
