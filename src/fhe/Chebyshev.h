//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Homomorphic polynomial evaluation in the Chebyshev basis with
/// baby-step/giant-step Paterson-Stockmeyer recombination. This is the
/// workhorse behind both the bootstrapper's EvalMod (paper Sec. 4.4) and
/// the SIHE IR's nonlinear-function approximation (paper Sec. 4.3):
/// staying in the Chebyshev basis keeps coefficients O(1) where a monomial
/// basis of degree ~100 would need 2^100-sized coefficients.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_CHEBYSHEV_H
#define ACE_FHE_CHEBYSHEV_H

#include "fhe/Evaluator.h"

#include <functional>
#include <vector>

namespace ace {
namespace fhe {

/// Chebyshev interpolation coefficients of \p F on [-1, 1]: returns c such
/// that sum_i c[i] T_i(x) interpolates F at the Degree+1 Chebyshev nodes.
std::vector<double> chebyshevInterpolate(const std::function<double(double)> &F,
                                         int Degree);

/// Evaluates sum_i Coeffs[i] T_i(X) in plain doubles (Clenshaw).
double chebyshevEvalPlain(const std::vector<double> &Coeffs, double X);

/// Homomorphic Chebyshev-series evaluator.
class ChebyshevEvaluator {
public:
  explicit ChebyshevEvaluator(const Evaluator &Eval) : Eval(Eval) {}

  /// Evaluates sum_i Coeffs[i] T_i(X) homomorphically. The encrypted
  /// values of \p X must lie in [-1, 1] (Chebyshev polynomials blow up
  /// outside). Consumes at most depthForDegree(deg) levels.
  Ciphertext evaluate(const Ciphertext &X,
                      const std::vector<double> &Coeffs) const;

  /// Upper bound on the number of levels evaluate() consumes for a series
  /// of the given degree.
  static int depthForDegree(int Degree);

private:
  const Evaluator &Eval;

  /// The baby-step count log2 used for \p Degree.
  static int babyLogForDegree(int Degree);

  Ciphertext evalRecursive(const std::vector<double> &Coeffs,
                           const std::vector<Ciphertext> &Babies,
                           const std::vector<Ciphertext> &Giants,
                           size_t BabyCount, double TargetScale) const;
  Ciphertext evalBase(const std::vector<double> &Coeffs,
                      const std::vector<Ciphertext> &Babies,
                      double TargetScale) const;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_CHEBYSHEV_H
