//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/ModArith.h"

#include "support/Status.h"

#include <algorithm>
#include <cmath>
#include <string>

using namespace ace;
using namespace ace::fhe;

uint64_t ace::fhe::powMod(uint64_t Base, uint64_t Exp, uint64_t P) {
  uint64_t Result = 1;
  uint64_t Acc = Base % P;
  while (Exp > 0) {
    if (Exp & 1)
      Result = mulMod(Result, Acc, P);
    Acc = mulMod(Acc, Acc, P);
    Exp >>= 1;
  }
  return Result;
}

uint64_t ace::fhe::invMod(uint64_t A, uint64_t P) {
  assert(A % P != 0 && "cannot invert zero");
  return powMod(A, P - 2, P);
}

bool ace::fhe::isPrime(uint64_t X) {
  if (X < 2)
    return false;
  for (uint64_t Small : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                         23ULL, 29ULL, 31ULL, 37ULL}) {
    if (X == Small)
      return true;
    if (X % Small == 0)
      return false;
  }
  // Miller-Rabin with the deterministic witness set for 64-bit integers.
  uint64_t D = X - 1;
  int R = 0;
  while ((D & 1) == 0) {
    D >>= 1;
    ++R;
  }
  for (uint64_t Witness : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                           23ULL, 29ULL, 31ULL, 37ULL}) {
    uint64_t Y = powMod(Witness, D, X);
    if (Y == 1 || Y == X - 1)
      continue;
    bool Composite = true;
    for (int I = 0; I < R - 1; ++I) {
      Y = mulMod(Y, Y, X);
      if (Y == X - 1) {
        Composite = false;
        break;
      }
    }
    if (Composite)
      return false;
  }
  return true;
}

uint64_t ace::fhe::findGenerator(uint64_t P) {
  // Factor P-1 by trial division (our primes have smooth-enough cofactors
  // for this to be fast: P-1 = 2N * odd cofactor).
  uint64_t Phi = P - 1;
  std::vector<uint64_t> Factors;
  uint64_t M = Phi;
  for (uint64_t F = 2; F * F <= M; ++F) {
    if (M % F != 0)
      continue;
    Factors.push_back(F);
    while (M % F == 0)
      M /= F;
  }
  if (M > 1)
    Factors.push_back(M);

  for (uint64_t Candidate = 2; Candidate < P; ++Candidate) {
    bool IsGenerator = true;
    for (uint64_t F : Factors) {
      if (powMod(Candidate, Phi / F, P) == 1) {
        IsGenerator = false;
        break;
      }
    }
    if (IsGenerator)
      return Candidate;
  }
  reportFatalError("no generator found for modulus " + std::to_string(P) +
                   " (modulus not prime?)");
}

uint64_t ace::fhe::findPrimitiveRoot(uint64_t Order, uint64_t P) {
  assert((P - 1) % Order == 0 && "order must divide P-1");
  uint64_t Generator = findGenerator(P);
  uint64_t Root = powMod(Generator, (P - 1) / Order, P);
  assert(powMod(Root, Order, P) == 1 && "root order check failed");
  assert(powMod(Root, Order / 2, P) != 1 && "root is not primitive");
  return Root;
}

std::vector<uint64_t>
ace::fhe::generateNttPrimes(int Bits, uint64_t Factor, size_t Count,
                            const std::vector<uint64_t> &Exclude) {
  assert(Bits >= 20 && Bits <= 60 && "prime size out of supported range");
  std::vector<uint64_t> Primes;
  // Scan candidates p = k*Factor + 1 downward from 2^Bits.
  uint64_t Top = (1ULL << Bits);
  uint64_t K = (Top - 1) / Factor;
  while (Primes.size() < Count && K > 1) {
    uint64_t Candidate = K * Factor + 1;
    --K;
    if (Candidate >= Top || (Top >> 1) >= Candidate)
      continue;
    if (!isPrime(Candidate))
      continue;
    if (std::find(Exclude.begin(), Exclude.end(), Candidate) != Exclude.end())
      continue;
    Primes.push_back(Candidate);
  }
  if (Primes.size() < Count)
    reportFatalError("not enough NTT-friendly " + std::to_string(Bits) +
                     "-bit primes with factor " + std::to_string(Factor) +
                     ": needed " + std::to_string(Count) + ", found " +
                     std::to_string(Primes.size()) + " (with " +
                     std::to_string(Exclude.size()) + " excluded)");
  return Primes;
}

std::vector<uint64_t>
ace::fhe::generateBalancedNttPrimes(int Bits, uint64_t Factor, size_t Count,
                                    const std::vector<uint64_t> &Exclude) {
  assert(Bits >= 20 && Bits <= 60 && "prime size out of supported range");
  double Target = std::ldexp(1.0, Bits);
  uint64_t Center = (1ULL << Bits) / Factor;

  // Collect the nearest candidates on both sides of 2^Bits.
  auto IsUsable = [&](uint64_t Candidate) {
    return isPrime(Candidate) &&
           std::find(Exclude.begin(), Exclude.end(), Candidate) ==
               Exclude.end();
  };
  std::vector<uint64_t> Pool;
  uint64_t Lo = Center, Hi = Center + 1;
  while (Pool.size() < 2 * Count + 4 && Lo > 1) {
    uint64_t CandLo = Lo * Factor + 1;
    if (IsUsable(CandLo))
      Pool.push_back(CandLo);
    uint64_t CandHi = Hi * Factor + 1;
    if (CandHi < (3ULL << (Bits - 1)) && IsUsable(CandHi))
      Pool.push_back(CandHi);
    --Lo;
    ++Hi;
  }
  if (Pool.size() < Count)
    reportFatalError("not enough NTT-friendly primes near 2^" +
                     std::to_string(Bits) + " with factor " +
                     std::to_string(Factor) + ": needed " +
                     std::to_string(Count) + ", found " +
                     std::to_string(Pool.size()) + " (with " +
                     std::to_string(Exclude.size()) + " excluded)");
  std::sort(Pool.begin(), Pool.end(), [&](uint64_t A, uint64_t B) {
    return std::fabs(A - Target) < std::fabs(B - Target);
  });
  Pool.resize(2 * Count > Pool.size() ? Pool.size() : 2 * Count);

  // Greedy ordering: keep the cumulative log-deviation from Bits*i minimal
  // so the scale after any number of rescales stays near 2^Bits.
  std::vector<uint64_t> Result;
  std::vector<bool> Used(Pool.size(), false);
  double Deviation = 0.0;
  for (size_t Picked = 0; Picked < Count; ++Picked) {
    size_t Best = SIZE_MAX;
    double BestDev = 0.0;
    for (size_t I = 0; I < Pool.size(); ++I) {
      if (Used[I])
        continue;
      double Dev =
          Deviation + std::log2(static_cast<double>(Pool[I])) - Bits;
      if (Best == SIZE_MAX || std::fabs(Dev) < std::fabs(BestDev)) {
        Best = I;
        BestDev = Dev;
      }
    }
    assert(Best != SIZE_MAX && "prime pool exhausted");
    Used[Best] = true;
    Deviation = BestDev;
    Result.push_back(Pool[Best]);
  }
  return Result;
}
