//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/RnsPoly.h"

#include "fhe/ModArith.h"
#include "fhe/PolyBackend.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace ace;
using namespace ace::fhe;

RnsPoly::RnsPoly(const Context &Ctx, size_t NumQ, bool HasSpecial,
                 bool NttForm)
    : Ctx(&Ctx), NumQ(NumQ), HasSpecial(HasSpecial), NttForm(NttForm) {
  assert(NumQ >= 1 && NumQ <= Ctx.chainLength() &&
         "active prime count out of range");
  Data.assignZero(numComponents() * Ctx.degree());
}

// Every loop below is parallel over RNS components (limbs): each index
// touches only its own limb's residues, the arithmetic is exact modular
// integer math, and the chunk partition is fixed - results are
// bit-identical at any thread count (see support/ThreadPool.h). Within
// one limb the element loop is a poly-ops backend kernel (scalar or
// vectorized; bit-identical by contract, see docs/kernels.md) - so
// threading partitions ABOVE the backend and the two compose.

void RnsPoly::toNtt() {
  if (NttForm)
    return;
  parallelFor(0, numComponents(), [&](size_t I) {
    Ctx->nttTable(modIndex(I)).forward(component(I));
  });
  NttForm = true;
}

void RnsPoly::toCoeff() {
  if (!NttForm)
    return;
  parallelFor(0, numComponents(), [&](size_t I) {
    Ctx->nttTable(modIndex(I)).inverse(component(I));
  });
  NttForm = false;
}

void RnsPoly::addInPlace(const RnsPoly &Other) {
  checkCompatible(Other);
  size_t N = Ctx->degree();
  const PolyBackend &B = activePolyBackend();
  parallelFor(0, numComponents(), [&](size_t I) {
    B.add(component(I), Other.component(I), N, modulus(I));
  });
}

void RnsPoly::subInPlace(const RnsPoly &Other) {
  checkCompatible(Other);
  size_t N = Ctx->degree();
  const PolyBackend &B = activePolyBackend();
  parallelFor(0, numComponents(), [&](size_t I) {
    B.sub(component(I), Other.component(I), N, modulus(I));
  });
}

void RnsPoly::negateInPlace() {
  size_t N = Ctx->degree();
  const PolyBackend &B = activePolyBackend();
  parallelFor(0, numComponents(), [&](size_t I) {
    B.negate(component(I), N, modulus(I));
  });
}

void RnsPoly::mulInPlace(const RnsPoly &Other) {
  checkCompatible(Other);
  assert(NttForm && "pointwise product requires NTT domain");
  size_t N = Ctx->degree();
  const PolyBackend &B = activePolyBackend();
  parallelFor(0, numComponents(), [&](size_t I) {
    B.mul(component(I), Other.component(I), N, modulus(I));
  });
}

RnsPoly RnsPoly::mul(const RnsPoly &Other) const {
  RnsPoly Result = *this;
  Result.mulInPlace(Other);
  return Result;
}

void RnsPoly::mulAddInPlace(const RnsPoly &A, const RnsPoly &B) {
  A.checkCompatible(B);
  checkCompatible(A);
  assert(NttForm && "fused multiply-add requires NTT domain");
  size_t N = Ctx->degree();
  const PolyBackend &Backend = activePolyBackend();
  parallelFor(0, numComponents(), [&](size_t I) {
    Backend.mulAcc(component(I), A.component(I), B.component(I), N,
                   modulus(I));
  });
}

void RnsPoly::mulScalarPerComponent(
    const std::vector<uint64_t> &ScalarPerComp) {
  assert(ScalarPerComp.size() == numComponents() &&
         "scalar table size mismatch");
  size_t N = Ctx->degree();
  const PolyBackend &B = activePolyBackend();
  parallelFor(0, numComponents(), [&](size_t I) {
    uint64_t P = modulus(I);
    uint64_t S = ScalarPerComp[I] % P;
    B.scalarMul(component(I), S, shoupPrecompute(S, P), N, P);
  });
}

void RnsPoly::mulScalarInt(uint64_t Scalar) {
  std::vector<uint64_t> Table(numComponents());
  for (size_t I = 0, E = numComponents(); I < E; ++I)
    Table[I] = Scalar % modulus(I);
  mulScalarPerComponent(Table);
}

RnsPoly RnsPoly::automorphism(uint64_t Galois) const {
  assert(!NttForm && "automorphism implemented in coefficient domain");
  size_t N = Ctx->degree();
  uint64_t TwoN = 2 * N;
  assert(Galois % 2 == 1 && Galois < TwoN && "invalid Galois element");
  RnsPoly Result(*Ctx, NumQ, HasSpecial, /*NttForm=*/false);
  parallelFor(0, numComponents(), [&](size_t I) {
    uint64_t P = modulus(I);
    const uint64_t *Src = component(I);
    uint64_t *Dst = Result.component(I);
    for (size_t J = 0; J < N; ++J) {
      uint64_t T = (static_cast<uint64_t>(J) * Galois) % TwoN;
      if (T < N)
        Dst[T] = Src[J];
      else
        Dst[T - N] = negMod(Src[J], P);
    }
  });
  return Result;
}

RnsPoly RnsPoly::automorphismNtt(uint64_t Galois) const {
  assert(NttForm && "automorphismNtt requires the NTT domain");
  const std::vector<uint32_t> &Perm = Ctx->galoisNttPermutation(Galois);
  size_t N = Ctx->degree();
  RnsPoly Result(*Ctx, NumQ, HasSpecial, /*NttForm=*/true);
  parallelFor(0, numComponents(), [&](size_t I) {
    const uint64_t *Src = component(I);
    uint64_t *Dst = Result.component(I);
    for (size_t J = 0; J < N; ++J)
      Dst[J] = Src[Perm[J]];
  });
  return Result;
}

RnsPoly RnsPoly::restrictedCopy(size_t NewNumQ, bool KeepSpecial) const {
  assert(NewNumQ >= 1 && NewNumQ <= NumQ && "restriction out of range");
  assert((!KeepSpecial || HasSpecial) && "no special component to keep");
  RnsPoly Result(*Ctx, NewNumQ, KeepSpecial, NttForm);
  size_t N = Ctx->degree();
  for (size_t I = 0; I < NewNumQ; ++I)
    std::copy(component(I), component(I) + N, Result.component(I));
  if (KeepSpecial)
    std::copy(component(NumQ), component(NumQ) + N,
              Result.component(NewNumQ));
  return Result;
}

void RnsPoly::dropLastQ() {
  assert(NumQ > 1 && "cannot drop the base modulus");
  assert(!HasSpecial && "drop the special prime first");
  --NumQ;
  Data.shrinkTo(numComponents() * Ctx->degree());
}

void RnsPoly::dropSpecial() {
  assert(HasSpecial && "no special component to drop");
  HasSpecial = false;
  Data.shrinkTo(numComponents() * Ctx->degree());
}
