//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CKKS bootstrapping for sparse packing (paper Secs. 2.1, 4.4). Pipeline:
///
///   ModRaise: reinterpret the level-0 ciphertext over the full chain;
///     the plaintext becomes m + q_0 * I with small integer overflow I.
///   SubSum: trace onto the packing subring (sparse packing only).
///   CoeffToSlot: homomorphic inverse-embedding via a BSGS matrix-vector
///     product, yielding the polynomial coefficients in the slots.
///   EvalMod: remove q_0 * I by approximating t mod q_0 with
///     (q_0/2pi) sin(2pi t / q_0): Chebyshev series of a scaled cosine,
///     double-angle reconstruction, and an arcsine correction term.
///   SlotToCoeff: forward embedding back to coefficients.
///
/// The refresh target level is a parameter: the compiler's minimal-level
/// bootstrap placement (paper Sec. 4.4) passes exactly the depth the
/// remaining program needs, which shrinks every EvalMod multiplication.
/// The Expert baseline always refreshes to the chain top.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_BOOTSTRAPPER_H
#define ACE_FHE_BOOTSTRAPPER_H

#include "fhe/Chebyshev.h"
#include "fhe/Evaluator.h"

#include <map>
#include <vector>

namespace ace {
namespace fhe {

/// Tunables for the bootstrapping pipeline.
struct BootstrapConfig {
  /// Bound on |I| after ModRaise. 12 is the standard choice for a sparse
  /// Hamming-weight-64 secret.
  int RangeK = 12;
  /// Double-angle iterations: the cosine is evaluated at angle/2^r and
  /// squared back up r times, cutting the Chebyshev degree ~2^r-fold.
  int DoubleAngleCount = 2;
  /// Degree of the Chebyshev approximation of the scaled cosine.
  int ChebyshevDegree = 31;
  /// Apply the cubic arcsine correction (2 extra levels, ~8 extra bits).
  bool ArcsineCorrection = true;
};

/// Depth a bootstrap will consume at the given geometry, computable
/// without instantiating a Context (the compiler's parameter selection
/// needs this before the chain length is fixed).
int estimateBootstrapDepth(size_t RingDegree, size_t Slots,
                           const BootstrapConfig &Config, int LogScale,
                           int LogFirstModulus);

/// Bootstrapping engine bound to an evaluator.
class Bootstrapper {
public:
  Bootstrapper(const Evaluator &Eval, BootstrapConfig Config = {});

  const BootstrapConfig &config() const { return Config; }

  /// Levels consumed between the raised chain top and the output:
  /// CoeffToSlot (1) + EvalMod + SlotToCoeff (1).
  int depthCost() const;

  /// Slot-rotation steps the BSGS linear transforms use; feed these to the
  /// rotation-key analysis.
  std::vector<int64_t> requiredRotations() const;

  /// Raw Galois elements the SubSum trace uses (they fix the subring, so
  /// they are not expressible as slot rotations).
  std::vector<uint64_t> requiredGaloisElements() const;

  /// Bootstrapping needs the conjugation key (real/imag separation).
  bool needsConjugation() const { return true; }

  /// Refreshes \p Ct so the result has exactly \p TargetNumQ active
  /// primes. The input may be at any level (it is switched to q_0 first)
  /// and must be at the context scale with |values| <= 1.
  Ciphertext bootstrap(const Ciphertext &Ct, size_t TargetNumQ) const;

  /// Release-mode validated variant of bootstrap(): verifies the sparse
  /// secret, the input scale (naming both scales and their ratio on
  /// mismatch), the chain depth the target needs, and that every
  /// required key (relin, conjugation, SubSum Galois, BSGS rotation) is
  /// present, returning a diagnostic Status instead of asserting.
  StatusOr<Ciphertext> checkedBootstrap(const Ciphertext &Ct,
                                        size_t TargetNumQ) const;

  /// Bytes held by the cached CoeffToSlot/SlotToCoeff plaintexts.
  size_t cachedPlaintextBytes() const;

private:
  const Evaluator &Eval;
  BootstrapConfig Config;
  ChebyshevEvaluator Cheb;
  /// Chebyshev coefficients of cos((2 pi (K2+1) u - pi/2) / 2^r) on [-1,1].
  std::vector<double> SineCoeffs;

  /// Subring replication factor N / (2 * slots).
  size_t span() const;
  /// Overflow bound after the SubSum trace: K2 = span * RangeK.
  int rangeBound() const;
  /// Total double-angle iterations: configured count + log2(span).
  int doubleAngles() const;
  /// Baby-step count for the BSGS matvec.
  size_t babySteps() const;

  /// Cached encoded diagonals, keyed by (matrix id, active prime count).
  mutable std::map<std::pair<int, size_t>, std::vector<Plaintext>> DiagCache;

  /// Returns the encoded diagonals of matrix \p MatrixId at \p NumQ
  /// primes (0 = CoeffToSlot, 1 = SlotToCoeff).
  const std::vector<Plaintext> &diagonals(int MatrixId, size_t NumQ) const;

  /// Builds the complex matrix entry M[row][col] for \p MatrixId.
  std::complex<double> matrixEntry(int MatrixId, size_t Row,
                                   size_t Col) const;

  /// BSGS homomorphic matrix-vector product (consumes one level).
  Ciphertext matvec(const Ciphertext &Ct, int MatrixId) const;

  /// EvalMod core: input u in [-1,1], output ~ 2 pi frac((K+1) u).
  Ciphertext evalMod(const Ciphertext &U) const;

  /// Raises a one-prime ciphertext onto \p NumQ primes.
  Ciphertext modRaise(const Ciphertext &Ct, size_t NumQ) const;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_BOOTSTRAPPER_H
