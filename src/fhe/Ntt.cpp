//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Ntt.h"

#include "fhe/ModArith.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace ace;
using namespace ace::fhe;

/// Reverses the low \p Bits bits of \p X.
static size_t reverseBits(size_t X, int Bits) {
  size_t Result = 0;
  for (int I = 0; I < Bits; ++I) {
    Result = (Result << 1) | (X & 1);
    X >>= 1;
  }
  return Result;
}

NttTable::NttTable(size_t N, uint64_t Modulus) : N(N), Modulus(Modulus) {
  assert((N & (N - 1)) == 0 && "ring degree must be a power of two");
  assert((Modulus - 1) % (2 * N) == 0 && "modulus must be 1 mod 2N");

  int LogN = 0;
  while ((size_t(1) << LogN) < N)
    ++LogN;

  uint64_t Psi = findPrimitiveRoot(2 * N, Modulus);
  uint64_t PsiInv = invMod(Psi, Modulus);

  RootPowers.resize(N);
  RootPowersShoup.resize(N);
  InvRootPowers.resize(N);
  InvRootPowersShoup.resize(N);
  // Tables hold psi^{bitrev(k)} so that each butterfly stage reads its
  // twiddles contiguously (Harvey layout, as in SEAL/OpenFHE).
  std::vector<uint64_t> PsiPows(N), PsiInvPows(N);
  PsiPows[0] = 1;
  PsiInvPows[0] = 1;
  for (size_t K = 1; K < N; ++K) {
    PsiPows[K] = mulMod(PsiPows[K - 1], Psi, Modulus);
    PsiInvPows[K] = mulMod(PsiInvPows[K - 1], PsiInv, Modulus);
  }
  for (size_t K = 0; K < N; ++K) {
    size_t Rev = reverseBits(K, LogN);
    RootPowers[K] = PsiPows[Rev];
    InvRootPowers[K] = PsiInvPows[Rev];
    RootPowersShoup[K] = shoupPrecompute(RootPowers[K], Modulus);
    InvRootPowersShoup[K] = shoupPrecompute(InvRootPowers[K], Modulus);
  }

  InvDegree = invMod(N % Modulus, Modulus);
  InvDegreeShoup = shoupPrecompute(InvDegree, Modulus);
}

void NttTable::forward(uint64_t *Data) const {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(telemetry::Counter::NttForward);
  // Cooley-Tukey decimation-in-time; merges the psi twist into the
  // butterflies so no separate pre-multiplication pass is needed.
  size_t T = N;
  for (size_t M = 1; M < N; M <<= 1) {
    T >>= 1;
    for (size_t I = 0; I < M; ++I) {
      size_t J1 = 2 * I * T;
      size_t J2 = J1 + T;
      uint64_t W = RootPowers[M + I];
      uint64_t WShoup = RootPowersShoup[M + I];
      for (size_t J = J1; J < J2; ++J) {
        uint64_t U = Data[J];
        uint64_t V = mulModShoup(Data[J + T], W, WShoup, Modulus);
        Data[J] = addMod(U, V, Modulus);
        Data[J + T] = subMod(U, V, Modulus);
      }
    }
  }
}

void NttTable::inverse(uint64_t *Data) const {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(telemetry::Counter::NttInverse);
  // Gentleman-Sande decimation-in-frequency with inverse twiddles.
  size_t T = 1;
  for (size_t M = N; M > 1; M >>= 1) {
    size_t J1 = 0;
    size_t H = M >> 1;
    for (size_t I = 0; I < H; ++I) {
      size_t J2 = J1 + T;
      uint64_t W = InvRootPowers[H + I];
      uint64_t WShoup = InvRootPowersShoup[H + I];
      for (size_t J = J1; J < J2; ++J) {
        uint64_t U = Data[J];
        uint64_t V = Data[J + T];
        Data[J] = addMod(U, V, Modulus);
        Data[J + T] =
            mulModShoup(subMod(U, V, Modulus), W, WShoup, Modulus);
      }
      J1 += 2 * T;
    }
    T <<= 1;
  }
  for (size_t J = 0; J < N; ++J)
    Data[J] = mulModShoup(Data[J], InvDegree, InvDegreeShoup, Modulus);
}
