//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Ntt.h"

#include "fhe/ModArith.h"
#include "fhe/PolyBackend.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace ace;
using namespace ace::fhe;

/// Reverses the low \p Bits bits of \p X.
static size_t reverseBits(size_t X, int Bits) {
  size_t Result = 0;
  for (int I = 0; I < Bits; ++I) {
    Result = (Result << 1) | (X & 1);
    X >>= 1;
  }
  return Result;
}

NttTable::NttTable(size_t N, uint64_t Modulus) : N(N), Modulus(Modulus) {
  assert((N & (N - 1)) == 0 && "ring degree must be a power of two");
  assert((Modulus - 1) % (2 * N) == 0 && "modulus must be 1 mod 2N");

  int LogN = 0;
  while ((size_t(1) << LogN) < N)
    ++LogN;

  uint64_t Psi = findPrimitiveRoot(2 * N, Modulus);
  uint64_t PsiInv = invMod(Psi, Modulus);

  RootPowers.resize(N);
  RootPowersShoup.resize(N);
  InvRootPowers.resize(N);
  InvRootPowersShoup.resize(N);
  // Tables hold psi^{bitrev(k)} so that each butterfly stage reads its
  // twiddles contiguously (Harvey layout, as in SEAL/OpenFHE).
  std::vector<uint64_t> PsiPows(N), PsiInvPows(N);
  PsiPows[0] = 1;
  PsiInvPows[0] = 1;
  for (size_t K = 1; K < N; ++K) {
    PsiPows[K] = mulMod(PsiPows[K - 1], Psi, Modulus);
    PsiInvPows[K] = mulMod(PsiInvPows[K - 1], PsiInv, Modulus);
  }
  for (size_t K = 0; K < N; ++K) {
    size_t Rev = reverseBits(K, LogN);
    RootPowers[K] = PsiPows[Rev];
    InvRootPowers[K] = PsiInvPows[Rev];
    RootPowersShoup[K] = shoupPrecompute(RootPowers[K], Modulus);
    InvRootPowersShoup[K] = shoupPrecompute(InvRootPowers[K], Modulus);
  }

  InvDegree = invMod(N % Modulus, Modulus);
  InvDegreeShoup = shoupPrecompute(InvDegree, Modulus);
}

// The butterfly loops live in the poly-ops backend (PolyBackend.cpp for
// the scalar reference, PolyBackendSimd.cpp for the vectorized one);
// these entry points keep the telemetry counters and dispatch.

void NttTable::forward(uint64_t *Data) const {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(telemetry::Counter::NttForward);
  activePolyBackend().forwardNtt(*this, Data);
}

void NttTable::inverse(uint64_t *Data) const {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(telemetry::Counter::NttInverse);
  activePolyBackend().inverseNtt(*this, Data);
}
