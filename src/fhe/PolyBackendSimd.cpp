//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// The vectorized poly-ops backend: AVX2 on x86-64 (4 lanes), NEON on
// AArch64 (2 lanes). Compiled with vector codegen for this file only
// (see src/fhe/CMakeLists.txt); selection is runtime-gated on CPUID, so
// the rest of the library stays baseline-portable and a build that
// includes these kernels still runs on hosts without them.
//
// Lane arithmetic (docs/kernels.md "Vector kernels"):
//
//  * addMod/subMod/negMod: exact 64-bit lane add/sub plus a masked
//    conditional +-P. Comparisons use the SIGNED 64-bit lane compare
//    (there is no unsigned one before AVX-512): safe because every
//    value involved is < 2^62 (primes are < 2^61, intermediates < 2P).
//
//  * mulModShoup: the same three-multiply sequence as the scalar
//    reference (hi64(A*BShoup) -> A*B - Q*P -> cond-subtract), built
//    from 32x32->64 partial products (mul_epu32 / vmull_u32) since
//    64x64 lane multiplies don't exist at this ISA level. All steps are
//    exact mod 2^64, so the result is bit-identical to the scalar path.
//
//  * general mulMod: scalar code reduces the 128-bit product with a
//    division; per-lane division does not vectorize, so the vector
//    kernels use a single-pass Barrett reduction instead. With
//    n = bits(P) we precompute v = floor(2^(n+62) / P) once per kernel
//    call (one scalar __int128 division; v < 2^63). For a product
//    d = a*b < P^2 the lanes extract c = floor(d / 2^(n-2)) (< 2^(n+2),
//    fits 64 bits) from the 128-bit product halves, form the quotient
//    estimate q = hi64(c * v), and take r = lo64(d) - q*P. The estimate
//    satisfies q <= floor(d/P) <= q+1 (the 2^(n-2)/2^64 split leaves
//    error < 1/2 + 2^(n-62) + 1 < 2 for n <= 61), so r < 2P and ONE
//    conditional subtract lands on the canonical representative in
//    [0, P) - the SAME value the scalar '%' produces, keeping
//    bit-identity.
//
//===----------------------------------------------------------------------===//

#include "fhe/PolyBackend.h"

#include "fhe/ModArith.h"
#include "fhe/Ntt.h"

#include <cstdint>

#if defined(__AVX2__) && defined(__x86_64__)
#define ACE_POLY_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define ACE_POLY_SIMD_NEON 1
#include <arm_neon.h>
#endif

using namespace ace;
using namespace ace::fhe;

#if defined(ACE_POLY_SIMD_AVX2) || defined(ACE_POLY_SIMD_NEON)

namespace {

/// Per-modulus Barrett constants for the general lane mulMod (see the
/// file header): V = floor(2^(n+62) / P) with n = bits(P), and the
/// product shift n-2 used to extract the quotient-estimate input.
struct BarrettConst {
  uint64_t V;
  int Shift; // n - 2
};

inline BarrettConst barrettConst(uint64_t P) {
  int N = 64 - __builtin_clzll(P);
  uint64_t V = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(1) << (N + 62)) / P);
  return {V, N - 2};
}

} // namespace

#endif

//===----------------------------------------------------------------------===//
// AVX2 lane helpers (4 x u64)
//===----------------------------------------------------------------------===//

#if defined(ACE_POLY_SIMD_AVX2)

namespace {

inline __m256i loadu(const uint64_t *Ptr) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ptr));
}

inline void storeu(uint64_t *Ptr, __m256i V) {
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Ptr), V);
}

/// Low 64 bits of the 64x64 lane product, from 32-bit partials:
/// lo(x*y) = xl*yl + ((xh*yl + xl*yh) << 32)  (mod 2^64).
inline __m256i mulLo64(__m256i X, __m256i Y) {
  __m256i XH = _mm256_srli_epi64(X, 32);
  __m256i YH = _mm256_srli_epi64(Y, 32);
  __m256i Cross = _mm256_add_epi64(_mm256_mul_epu32(XH, Y),
                                   _mm256_mul_epu32(X, YH));
  return _mm256_add_epi64(_mm256_mul_epu32(X, Y),
                          _mm256_slli_epi64(Cross, 32));
}

/// High 64 bits of the 64x64 lane product (schoolbook with carry from
/// the low half).
inline __m256i mulHi64(__m256i X, __m256i Y) {
  const __m256i Mask = _mm256_set1_epi64x(0xffffffff);
  __m256i XH = _mm256_srli_epi64(X, 32);
  __m256i YH = _mm256_srli_epi64(Y, 32);
  __m256i LL = _mm256_mul_epu32(X, Y);
  __m256i LH = _mm256_mul_epu32(X, YH);
  __m256i HL = _mm256_mul_epu32(XH, Y);
  __m256i HH = _mm256_mul_epu32(XH, YH);
  // Carry out of the low 64 bits: (LL>>32) + lo32(LH) + lo32(HL),
  // then >> 32. Fits: 3 * (2^32 - 1) < 2^34.
  __m256i Mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(LL, 32),
                       _mm256_and_si256(LH, Mask)),
      _mm256_and_si256(HL, Mask));
  return _mm256_add_epi64(
      _mm256_add_epi64(HH, _mm256_srli_epi64(LH, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(HL, 32),
                       _mm256_srli_epi64(Mid, 32)));
}

/// R in [0, 2P) -> R mod P. Signed compare is safe: 2P < 2^62.
inline __m256i condSubP(__m256i R, __m256i P) {
  __m256i Lt = _mm256_cmpgt_epi64(P, R); // lane all-ones where R < P
  return _mm256_blendv_epi8(_mm256_sub_epi64(R, P), R, Lt);
}

inline __m256i addModV(__m256i A, __m256i B, __m256i P) {
  return condSubP(_mm256_add_epi64(A, B), P);
}

inline __m256i subModV(__m256i A, __m256i B, __m256i P) {
  __m256i Lt = _mm256_cmpgt_epi64(B, A); // borrow where A < B
  return _mm256_add_epi64(_mm256_sub_epi64(A, B),
                          _mm256_and_si256(Lt, P));
}

inline __m256i negModV(__m256i A, __m256i P) {
  __m256i Zero = _mm256_cmpeq_epi64(A, _mm256_setzero_si256());
  return _mm256_andnot_si256(Zero, _mm256_sub_epi64(P, A));
}

/// Shoup lane multiply; W/WShoup pre-broadcast. Exactly the scalar
/// sequence: Q = hi64(A*WShoup); R = A*W - Q*P; R -= P if R >= P.
inline __m256i mulModShoupV(__m256i A, __m256i W, __m256i WShoup,
                            __m256i P) {
  __m256i Q = mulHi64(A, WShoup);
  __m256i R = _mm256_sub_epi64(mulLo64(A, W), mulLo64(Q, P));
  return condSubP(R, P);
}

/// General lane mulMod by single-pass Barrett (file header); BarrV is
/// the broadcast Barrett factor, ShiftLo = n-2 and ShiftHi = 66-n as
/// scalar shift counts (srl/sll zero the lanes for a count of 64, which
/// is exactly right for the degenerate n = 2 case where Hi is zero).
/// Canonical result in [0, P), bit-identical to the scalar 128-bit '%'.
inline __m256i mulModV(__m256i A, __m256i B, __m256i P, __m256i BarrV,
                       __m128i ShiftLo, __m128i ShiftHi) {
  __m256i Lo = mulLo64(A, B);
  __m256i Hi = mulHi64(A, B);
  __m256i C = _mm256_or_si256(_mm256_srl_epi64(Lo, ShiftLo),
                              _mm256_sll_epi64(Hi, ShiftHi));
  __m256i Q = mulHi64(C, BarrV);
  __m256i R = _mm256_sub_epi64(Lo, mulLo64(Q, P));
  return condSubP(R, P);
}

} // namespace

//===----------------------------------------------------------------------===//
// AVX2 backend
//===----------------------------------------------------------------------===//

namespace {

class Avx2PolyBackend final : public PolyBackend {
public:
  const char *name() const override { return "simd"; }

  void forwardNtt(const NttTable &Table, uint64_t *Data) const override {
    size_t N = Table.degree();
    uint64_t P = Table.modulus();
    const uint64_t *RP = Table.rootPowers().data();
    const uint64_t *RPS = Table.rootPowersShoup().data();
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    size_t T = N;
    for (size_t M = 1; M < N; M <<= 1) {
      T >>= 1;
      for (size_t I = 0; I < M; ++I) {
        size_t J1 = 2 * I * T;
        uint64_t W = RP[M + I];
        uint64_t WShoup = RPS[M + I];
        if (T >= 4) {
          // T is a power of two, so the 4-lane loop has no tail.
          const __m256i VW = _mm256_set1_epi64x(static_cast<int64_t>(W));
          const __m256i VWS =
              _mm256_set1_epi64x(static_cast<int64_t>(WShoup));
          for (size_t J = J1; J < J1 + T; J += 4) {
            __m256i U = loadu(Data + J);
            __m256i V = mulModShoupV(loadu(Data + J + T), VW, VWS, VP);
            storeu(Data + J, addModV(U, V, VP));
            storeu(Data + J + T, subModV(U, V, VP));
          }
        } else {
          // Last one or two stages: butterflies too narrow for lanes.
          for (size_t J = J1; J < J1 + T; ++J) {
            uint64_t U = Data[J];
            uint64_t V = mulModShoup(Data[J + T], W, WShoup, P);
            Data[J] = addMod(U, V, P);
            Data[J + T] = subMod(U, V, P);
          }
        }
      }
    }
  }

  void inverseNtt(const NttTable &Table, uint64_t *Data) const override {
    size_t N = Table.degree();
    uint64_t P = Table.modulus();
    const uint64_t *IRP = Table.invRootPowers().data();
    const uint64_t *IRPS = Table.invRootPowersShoup().data();
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    size_t T = 1;
    for (size_t M = N; M > 1; M >>= 1) {
      size_t J1 = 0;
      size_t H = M >> 1;
      for (size_t I = 0; I < H; ++I) {
        uint64_t W = IRP[H + I];
        uint64_t WShoup = IRPS[H + I];
        if (T >= 4) {
          const __m256i VW = _mm256_set1_epi64x(static_cast<int64_t>(W));
          const __m256i VWS =
              _mm256_set1_epi64x(static_cast<int64_t>(WShoup));
          for (size_t J = J1; J < J1 + T; J += 4) {
            __m256i U = loadu(Data + J);
            __m256i V = loadu(Data + J + T);
            storeu(Data + J, addModV(U, V, VP));
            storeu(Data + J + T,
                   mulModShoupV(subModV(U, V, VP), VW, VWS, VP));
          }
        } else {
          for (size_t J = J1; J < J1 + T; ++J) {
            uint64_t U = Data[J];
            uint64_t V = Data[J + T];
            Data[J] = addMod(U, V, P);
            Data[J + T] = mulModShoup(subMod(U, V, P), W, WShoup, P);
          }
        }
        J1 += 2 * T;
      }
      T <<= 1;
    }
    scalarMul(Data, Table.invDegree(), Table.invDegreeShoup(), N, P);
  }

  void mul(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    const BarrettConst BC = barrettConst(P);
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    const __m256i VV = _mm256_set1_epi64x(static_cast<int64_t>(BC.V));
    const __m128i SLo = _mm_cvtsi32_si128(BC.Shift);
    const __m128i SHi = _mm_cvtsi32_si128(64 - BC.Shift);
    size_t J = 0;
    for (; J + 4 <= N; J += 4)
      storeu(A + J, mulModV(loadu(A + J), loadu(B + J), VP, VV, SLo, SHi));
    for (; J < N; ++J)
      A[J] = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(A[J]) * B[J]) % P);
  }

  void add(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    size_t J = 0;
    for (; J + 4 <= N; J += 4)
      storeu(A + J, addModV(loadu(A + J), loadu(B + J), VP));
    for (; J < N; ++J) {
      uint64_t Sum = A[J] + B[J];
      A[J] = Sum >= P ? Sum - P : Sum;
    }
  }

  void sub(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    size_t J = 0;
    for (; J + 4 <= N; J += 4)
      storeu(A + J, subModV(loadu(A + J), loadu(B + J), VP));
    for (; J < N; ++J)
      A[J] = A[J] >= B[J] ? A[J] - B[J] : A[J] + P - B[J];
  }

  void negate(uint64_t *A, size_t N, uint64_t P) const override {
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    size_t J = 0;
    for (; J + 4 <= N; J += 4)
      storeu(A + J, negModV(loadu(A + J), VP));
    for (; J < N; ++J)
      A[J] = A[J] == 0 ? 0 : P - A[J];
  }

  void scalarMul(uint64_t *A, uint64_t S, uint64_t SShoup, size_t N,
                 uint64_t P) const override {
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    const __m256i VS = _mm256_set1_epi64x(static_cast<int64_t>(S));
    const __m256i VSS =
        _mm256_set1_epi64x(static_cast<int64_t>(SShoup));
    size_t J = 0;
    for (; J + 4 <= N; J += 4)
      storeu(A + J, mulModShoupV(loadu(A + J), VS, VSS, VP));
    for (; J < N; ++J) {
      uint64_t Q = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(A[J]) * SShoup) >> 64);
      uint64_t R = A[J] * S - Q * P;
      A[J] = R >= P ? R - P : R;
    }
  }

  void mulAcc(uint64_t *Acc, const uint64_t *X, const uint64_t *Y,
              size_t N, uint64_t P) const override {
    const BarrettConst BC = barrettConst(P);
    const __m256i VP = _mm256_set1_epi64x(static_cast<int64_t>(P));
    const __m256i VV = _mm256_set1_epi64x(static_cast<int64_t>(BC.V));
    const __m128i SLo = _mm_cvtsi32_si128(BC.Shift);
    const __m128i SHi = _mm_cvtsi32_si128(64 - BC.Shift);
    size_t J = 0;
    for (; J + 4 <= N; J += 4) {
      __m256i Prod =
          mulModV(loadu(X + J), loadu(Y + J), VP, VV, SLo, SHi);
      storeu(Acc + J, addModV(loadu(Acc + J), Prod, VP));
    }
    for (; J < N; ++J) {
      uint64_t Prod = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(X[J]) * Y[J]) % P);
      uint64_t Sum = Acc[J] + Prod;
      Acc[J] = Sum >= P ? Sum - P : Sum;
    }
  }
};

} // namespace

const PolyBackend *ace::fhe::simdPolyBackend() {
  // CPUID check once; AVX2 presence implies every instruction used
  // above. A build with -mavx2 on this file still runs on pre-AVX2
  // hardware as long as this returns nullptr there.
  static const bool Supported = __builtin_cpu_supports("avx2");
  if (!Supported)
    return nullptr;
  static Avx2PolyBackend Backend;
  return &Backend;
}

//===----------------------------------------------------------------------===//
// NEON lane helpers (2 x u64) and backend
//===----------------------------------------------------------------------===//

#elif defined(ACE_POLY_SIMD_NEON)

namespace {

inline uint64x2_t loadu(const uint64_t *Ptr) { return vld1q_u64(Ptr); }

inline void storeu(uint64_t *Ptr, uint64x2_t V) { vst1q_u64(Ptr, V); }

inline uint64x2_t mulLo64(uint64x2_t X, uint64x2_t Y) {
  uint32x2_t XL = vmovn_u64(X);
  uint32x2_t YL = vmovn_u64(Y);
  uint32x2_t XH = vmovn_u64(vshrq_n_u64(X, 32));
  uint32x2_t YH = vmovn_u64(vshrq_n_u64(Y, 32));
  uint64x2_t Cross = vaddq_u64(vmull_u32(XH, YL), vmull_u32(XL, YH));
  return vaddq_u64(vmull_u32(XL, YL), vshlq_n_u64(Cross, 32));
}

inline uint64x2_t mulHi64(uint64x2_t X, uint64x2_t Y) {
  const uint64x2_t Mask = vdupq_n_u64(0xffffffff);
  uint32x2_t XL = vmovn_u64(X);
  uint32x2_t YL = vmovn_u64(Y);
  uint32x2_t XH = vmovn_u64(vshrq_n_u64(X, 32));
  uint32x2_t YH = vmovn_u64(vshrq_n_u64(Y, 32));
  uint64x2_t LL = vmull_u32(XL, YL);
  uint64x2_t LH = vmull_u32(XL, YH);
  uint64x2_t HL = vmull_u32(XH, YL);
  uint64x2_t HH = vmull_u32(XH, YH);
  uint64x2_t Mid = vaddq_u64(
      vaddq_u64(vshrq_n_u64(LL, 32), vandq_u64(LH, Mask)),
      vandq_u64(HL, Mask));
  return vaddq_u64(vaddq_u64(HH, vshrq_n_u64(LH, 32)),
                   vaddq_u64(vshrq_n_u64(HL, 32), vshrq_n_u64(Mid, 32)));
}

inline uint64x2_t condSubP(uint64x2_t R, uint64x2_t P) {
  uint64x2_t Ge = vcgeq_u64(R, P);
  return vsubq_u64(R, vandq_u64(Ge, P));
}

inline uint64x2_t addModV(uint64x2_t A, uint64x2_t B, uint64x2_t P) {
  return condSubP(vaddq_u64(A, B), P);
}

inline uint64x2_t subModV(uint64x2_t A, uint64x2_t B, uint64x2_t P) {
  uint64x2_t Lt = vcltq_u64(A, B);
  return vaddq_u64(vsubq_u64(A, B), vandq_u64(Lt, P));
}

inline uint64x2_t negModV(uint64x2_t A, uint64x2_t P) {
  uint64x2_t NonZero = vtstq_u64(A, A); // all-ones where A != 0
  return vandq_u64(NonZero, vsubq_u64(P, A));
}

inline uint64x2_t mulModShoupV(uint64x2_t A, uint64x2_t W,
                               uint64x2_t WShoup, uint64x2_t P) {
  uint64x2_t Q = mulHi64(A, WShoup);
  uint64x2_t R = vsubq_u64(mulLo64(A, W), mulLo64(Q, P));
  return condSubP(R, P);
}

/// General lane mulMod by single-pass Barrett (file header). vshlq with
/// a negative count shifts right; counts of +-64 zero the lane, which is
/// exactly right for the degenerate n = 2 case where Hi is zero.
inline uint64x2_t mulModV(uint64x2_t A, uint64x2_t B, uint64x2_t P,
                          uint64x2_t BarrV, int64x2_t ShiftLoNeg,
                          int64x2_t ShiftHi) {
  uint64x2_t Lo = mulLo64(A, B);
  uint64x2_t Hi = mulHi64(A, B);
  uint64x2_t C =
      vorrq_u64(vshlq_u64(Lo, ShiftLoNeg), vshlq_u64(Hi, ShiftHi));
  uint64x2_t Q = mulHi64(C, BarrV);
  uint64x2_t R = vsubq_u64(Lo, mulLo64(Q, P));
  return condSubP(R, P);
}

class NeonPolyBackend final : public PolyBackend {
public:
  const char *name() const override { return "simd"; }

  void forwardNtt(const NttTable &Table, uint64_t *Data) const override {
    size_t N = Table.degree();
    uint64_t P = Table.modulus();
    const uint64_t *RP = Table.rootPowers().data();
    const uint64_t *RPS = Table.rootPowersShoup().data();
    const uint64x2_t VP = vdupq_n_u64(P);
    size_t T = N;
    for (size_t M = 1; M < N; M <<= 1) {
      T >>= 1;
      for (size_t I = 0; I < M; ++I) {
        size_t J1 = 2 * I * T;
        uint64_t W = RP[M + I];
        uint64_t WShoup = RPS[M + I];
        if (T >= 2) {
          const uint64x2_t VW = vdupq_n_u64(W);
          const uint64x2_t VWS = vdupq_n_u64(WShoup);
          for (size_t J = J1; J < J1 + T; J += 2) {
            uint64x2_t U = loadu(Data + J);
            uint64x2_t V = mulModShoupV(loadu(Data + J + T), VW, VWS, VP);
            storeu(Data + J, addModV(U, V, VP));
            storeu(Data + J + T, subModV(U, V, VP));
          }
        } else {
          uint64_t U = Data[J1];
          uint64_t Q = static_cast<uint64_t>(
              (static_cast<unsigned __int128>(Data[J1 + T]) * WShoup) >>
              64);
          uint64_t V = Data[J1 + T] * W - Q * P;
          V = V >= P ? V - P : V;
          uint64_t Sum = U + V;
          Data[J1] = Sum >= P ? Sum - P : Sum;
          Data[J1 + T] = U >= V ? U - V : U + P - V;
        }
      }
    }
  }

  void inverseNtt(const NttTable &Table, uint64_t *Data) const override {
    size_t N = Table.degree();
    uint64_t P = Table.modulus();
    const uint64_t *IRP = Table.invRootPowers().data();
    const uint64_t *IRPS = Table.invRootPowersShoup().data();
    const uint64x2_t VP = vdupq_n_u64(P);
    size_t T = 1;
    for (size_t M = N; M > 1; M >>= 1) {
      size_t J1 = 0;
      size_t H = M >> 1;
      for (size_t I = 0; I < H; ++I) {
        uint64_t W = IRP[H + I];
        uint64_t WShoup = IRPS[H + I];
        if (T >= 2) {
          const uint64x2_t VW = vdupq_n_u64(W);
          const uint64x2_t VWS = vdupq_n_u64(WShoup);
          for (size_t J = J1; J < J1 + T; J += 2) {
            uint64x2_t U = loadu(Data + J);
            uint64x2_t V = loadu(Data + J + T);
            storeu(Data + J, addModV(U, V, VP));
            storeu(Data + J + T,
                   mulModShoupV(subModV(U, V, VP), VW, VWS, VP));
          }
        } else {
          uint64_t U = Data[J1];
          uint64_t V = Data[J1 + T];
          uint64_t Sum = U + V;
          Data[J1] = Sum >= P ? Sum - P : Sum;
          uint64_t D = U >= V ? U - V : U + P - V;
          uint64_t Q = static_cast<uint64_t>(
              (static_cast<unsigned __int128>(D) * WShoup) >> 64);
          uint64_t R = D * W - Q * P;
          Data[J1 + T] = R >= P ? R - P : R;
        }
        J1 += 2 * T;
      }
      T <<= 1;
    }
    scalarMul(Data, Table.invDegree(), Table.invDegreeShoup(), N, P);
  }

  void mul(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    const BarrettConst BC = barrettConst(P);
    const uint64x2_t VP = vdupq_n_u64(P);
    const uint64x2_t VV = vdupq_n_u64(BC.V);
    const int64x2_t SLo = vdupq_n_s64(-BC.Shift);
    const int64x2_t SHi = vdupq_n_s64(64 - BC.Shift);
    size_t J = 0;
    for (; J + 2 <= N; J += 2)
      storeu(A + J, mulModV(loadu(A + J), loadu(B + J), VP, VV, SLo, SHi));
    for (; J < N; ++J)
      A[J] = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(A[J]) * B[J]) % P);
  }

  void add(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    const uint64x2_t VP = vdupq_n_u64(P);
    size_t J = 0;
    for (; J + 2 <= N; J += 2)
      storeu(A + J, addModV(loadu(A + J), loadu(B + J), VP));
    for (; J < N; ++J) {
      uint64_t Sum = A[J] + B[J];
      A[J] = Sum >= P ? Sum - P : Sum;
    }
  }

  void sub(uint64_t *A, const uint64_t *B, size_t N,
           uint64_t P) const override {
    const uint64x2_t VP = vdupq_n_u64(P);
    size_t J = 0;
    for (; J + 2 <= N; J += 2)
      storeu(A + J, subModV(loadu(A + J), loadu(B + J), VP));
    for (; J < N; ++J)
      A[J] = A[J] >= B[J] ? A[J] - B[J] : A[J] + P - B[J];
  }

  void negate(uint64_t *A, size_t N, uint64_t P) const override {
    const uint64x2_t VP = vdupq_n_u64(P);
    size_t J = 0;
    for (; J + 2 <= N; J += 2)
      storeu(A + J, negModV(loadu(A + J), VP));
    for (; J < N; ++J)
      A[J] = A[J] == 0 ? 0 : P - A[J];
  }

  void scalarMul(uint64_t *A, uint64_t S, uint64_t SShoup, size_t N,
                 uint64_t P) const override {
    const uint64x2_t VP = vdupq_n_u64(P);
    const uint64x2_t VS = vdupq_n_u64(S);
    const uint64x2_t VSS = vdupq_n_u64(SShoup);
    size_t J = 0;
    for (; J + 2 <= N; J += 2)
      storeu(A + J, mulModShoupV(loadu(A + J), VS, VSS, VP));
    for (; J < N; ++J) {
      uint64_t Q = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(A[J]) * SShoup) >> 64);
      uint64_t R = A[J] * S - Q * P;
      A[J] = R >= P ? R - P : R;
    }
  }

  void mulAcc(uint64_t *Acc, const uint64_t *X, const uint64_t *Y,
              size_t N, uint64_t P) const override {
    const BarrettConst BC = barrettConst(P);
    const uint64x2_t VP = vdupq_n_u64(P);
    const uint64x2_t VV = vdupq_n_u64(BC.V);
    const int64x2_t SLo = vdupq_n_s64(-BC.Shift);
    const int64x2_t SHi = vdupq_n_s64(64 - BC.Shift);
    size_t J = 0;
    for (; J + 2 <= N; J += 2) {
      uint64x2_t Prod =
          mulModV(loadu(X + J), loadu(Y + J), VP, VV, SLo, SHi);
      storeu(Acc + J, addModV(loadu(Acc + J), Prod, VP));
    }
    for (; J < N; ++J) {
      uint64_t Prod = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(X[J]) * Y[J]) % P);
      uint64_t Sum = Acc[J] + Prod;
      Acc[J] = Sum >= P ? Sum - P : Sum;
    }
  }
};

} // namespace

const PolyBackend *ace::fhe::simdPolyBackend() {
  // NEON is architecturally guaranteed on AArch64; no runtime probe.
  static NeonPolyBackend Backend;
  return &Backend;
}

#else

const PolyBackend *ace::fhe::simdPolyBackend() {
  // This build carries no vectorized kernels for the target
  // architecture; the scalar reference serves everything.
  return nullptr;
}

#endif
