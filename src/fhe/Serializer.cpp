//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Wire format implementation. Layout notes live in docs/serialization.md;
// the invariants enforced here are:
//
//  * no payload field is interpreted before the CRC over the whole
//    payload has been verified;
//  * no allocation is sized from a wire length field before that field
//    has been checked against the context-derived cap (maxPayloadBytes)
//    or range (prime counts, part counts, rotation counts);
//  * every residue is validated against its modulus, so a loaded
//    polynomial always satisfies the arithmetic layer's preconditions;
//  * a failed parse returns a Status naming the offending field and
//    offset - it never asserts, throws, or leaves partially initialized
//    objects behind.
//
//===----------------------------------------------------------------------===//

#include "fhe/Serializer.h"

#include "support/ByteReader.h"
#include "support/ByteWriter.h"
#include "support/Crc32c.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

using namespace ace;
using namespace ace::fhe;
using namespace ace::fhe::wire;

const char *ace::fhe::wire::objectTagName(ObjectTag Tag) {
  switch (Tag) {
  case ObjectTag::Params:
    return "params";
  case ObjectTag::Plaintext:
    return "plaintext";
  case ObjectTag::Ciphertext:
    return "ciphertext";
  case ObjectTag::PublicKey:
    return "public-key";
  case ObjectTag::SecretKey:
    return "secret-key";
  case ObjectTag::SwitchKey:
    return "switch-key";
  case ObjectTag::EvalKeys:
    return "eval-keys";
  }
  return "unknown";
}

namespace {

//===----------------------------------------------------------------------===//
// Size bounds
//===----------------------------------------------------------------------===//

/// Serialized size bound of one polynomial: prime count (2) + flags (2) +
/// residues over the whole chain plus the special prime.
uint64_t polyMaxBytes(const Context &Ctx) {
  return 4 + static_cast<uint64_t>(Ctx.chainLength() + 1) * Ctx.degree() * 8;
}

/// Serialized size bound of one switch key: part count (4) + one
/// polynomial pair per decomposition digit.
uint64_t switchKeyMaxBytes(const Context &Ctx) {
  return 4 + static_cast<uint64_t>(Ctx.chainLength()) * 2 * polyMaxBytes(Ctx);
}

} // namespace

uint64_t ace::fhe::wire::maxPayloadBytes(ObjectTag Tag, const Context *Ctx) {
  switch (Tag) {
  case ObjectTag::Params:
    return 64;
  case ObjectTag::Plaintext:
    return polyMaxBytes(*Ctx) + 16;
  case ObjectTag::Ciphertext:
    return 1 + 3 * polyMaxBytes(*Ctx) + 16;
  case ObjectTag::PublicKey:
    return 2 * polyMaxBytes(*Ctx);
  case ObjectTag::SecretKey:
    return polyMaxBytes(*Ctx);
  case ObjectTag::SwitchKey:
    return switchKeyMaxBytes(*Ctx);
  case ObjectTag::EvalKeys:
    // Relin + conjugation + at most degree() distinct odd Galois elements
    // below 2N, each with an 8-byte element and a switch key.
    return 2 + 2 * switchKeyMaxBytes(*Ctx) + 4 +
           static_cast<uint64_t>(Ctx->degree()) *
               (8 + switchKeyMaxBytes(*Ctx));
  }
  return 0;
}

namespace {

//===----------------------------------------------------------------------===//
// Payload writers
//===----------------------------------------------------------------------===//

void writePoly(ByteWriter &W, const RnsPoly &P) {
  const Context &Ctx = P.context();
  W.u16(static_cast<uint16_t>(P.numQ()));
  W.u8(P.hasSpecial() ? 1 : 0);
  W.u8(P.isNtt() ? 1 : 0);
  size_t N = Ctx.degree();
  for (size_t I = 0, E = P.numComponents(); I < E; ++I) {
    const uint64_t *Comp = P.component(I);
    if constexpr (std::endian::native == std::endian::little) {
      W.bytes(Comp, N * sizeof(uint64_t));
    } else {
      for (size_t J = 0; J < N; ++J)
        W.u64(Comp[J]);
    }
  }
}

void writeParamsPayload(ByteWriter &W, const CkksParams &P) {
  W.u64(P.RingDegree);
  W.u64(P.Slots);
  W.i32(P.LogScale);
  W.i32(P.LogFirstModulus);
  W.i32(P.NumRescaleModuli);
  W.i32(P.LogSpecialModulus);
  W.u8(P.SparseSecret ? 1 : 0);
  W.u64(P.Seed);
}

void writeSwitchKeyBody(ByteWriter &W, const SwitchKey &K) {
  W.u32(static_cast<uint32_t>(K.Parts.size()));
  for (const auto &Part : K.Parts) {
    writePoly(W, Part.first);
    writePoly(W, Part.second);
  }
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

Status countSerialized(size_t Bytes) {
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(
        telemetry::Counter::BytesSerialized, Bytes);
  return Status::success();
}

/// Appends header + payload for \p Tag to \p Out. The ChecksumCorrupt
/// fault flips the CRC as it is written, so a subsequent load of these
/// bytes must fail verification cleanly.
Status writeFramed(ObjectTag Tag, const std::vector<uint8_t> &Payload,
                   std::vector<uint8_t> &Out) {
  ByteWriter W(Out);
  W.u32(kMagic);
  W.u16(kFormatVersion);
  W.u8(static_cast<uint8_t>(Tag));
  W.u8(0); // flags, reserved: must be zero in version 1
  W.u64(Payload.size());
  uint32_t Crc = crc32c(Payload.data(), Payload.size());
  FaultInjector &FI = FaultInjector::instance();
  if (FI.enabled() && FI.shouldFire(FaultKind::ChecksumCorrupt))
    Crc ^= 0x5A5A5A5Au;
  W.u32(Crc);
  W.bytes(Payload.data(), Payload.size());
  return countSerialized(kHeaderBytes + Payload.size());
}

/// Writes one framed object to \p OS, honoring the ShortWrite fault by
/// stopping mid-frame (the stream then holds a truncated object and the
/// caller gets an IoError, exactly as with a real interrupted write).
Status writeFramedStream(ObjectTag Tag, const std::vector<uint8_t> &Payload,
                         std::ostream &OS) {
  std::vector<uint8_t> Frame;
  Frame.reserve(kHeaderBytes + Payload.size());
  ACE_RETURN_IF_ERROR(writeFramed(Tag, Payload, Frame));
  size_t WriteBytes = Frame.size();
  FaultInjector &FI = FaultInjector::instance();
  if (FI.enabled() && FI.shouldFire(FaultKind::ShortWrite))
    WriteBytes /= 2;
  OS.write(reinterpret_cast<const char *>(Frame.data()),
           static_cast<std::streamsize>(WriteBytes));
  OS.flush();
  if (!OS || WriteBytes != Frame.size())
    return Status::ioError(std::string("short write: stored ") +
                           std::to_string(WriteBytes) + " of " +
                           std::to_string(Frame.size()) + " bytes of " +
                           objectTagName(Tag) + " object");
  return Status::success();
}

template <typename BuildFn>
Status saveObject(ObjectTag Tag, std::vector<uint8_t> &Out, BuildFn &&Build) {
  telemetry::TraceSpan Span("wire",
                            std::string("save:") + objectTagName(Tag));
  std::vector<uint8_t> Payload;
  ByteWriter W(Payload);
  ACE_RETURN_IF_ERROR(Build(W));
  return writeFramed(Tag, Payload, Out);
}

template <typename BuildFn>
Status saveObject(ObjectTag Tag, std::ostream &OS, BuildFn &&Build) {
  telemetry::TraceSpan Span("wire",
                            std::string("save:") + objectTagName(Tag));
  std::vector<uint8_t> Payload;
  ByteWriter W(Payload);
  ACE_RETURN_IF_ERROR(Build(W));
  return writeFramedStream(Tag, Payload, OS);
}

//===----------------------------------------------------------------------===//
// Header parsing
//===----------------------------------------------------------------------===//

struct Header {
  uint16_t Version = 0;
  ObjectTag Tag = ObjectTag::Params;
  uint64_t PayloadLen = 0;
  uint32_t Crc = 0;
};

Status truncatedAt(const ByteReader &R, const char *Field) {
  return Status::dataCorrupt(std::string("truncated payload: ran out of "
                                         "bytes at offset ") +
                             std::to_string(R.offset()) + " while reading " +
                             Field);
}

/// Parses and fully validates the 20-byte frame header. \p Ctx is null
/// only for Params objects, whose cap needs no context.
Status parseHeader(ByteReader &R, ObjectTag Expected, const Context *Ctx,
                   Header &H) {
  if (R.remaining() < kHeaderBytes)
    return Status::dataCorrupt(
        "truncated header: " + std::to_string(R.remaining()) +
        " bytes, a serialized object starts with a " +
        std::to_string(kHeaderBytes) + "-byte header");
  uint32_t Magic = 0;
  R.u32(Magic);
  if (Magic != kMagic) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "bad magic 0x%08X", Magic);
    return Status::dataCorrupt(std::string(Buf) +
                               ": not an ACE wire-format object");
  }
  R.u16(H.Version);
  if (H.Version == 0 || H.Version > kFormatVersion)
    return Status::dataCorrupt(
        "unsupported format version " + std::to_string(H.Version) +
        " (this build reads versions 1.." +
        std::to_string(kFormatVersion) + ")");
  uint8_t TagByte = 0, Flags = 0;
  R.u8(TagByte);
  R.u8(Flags);
  if (TagByte < static_cast<uint8_t>(ObjectTag::Params) ||
      TagByte > static_cast<uint8_t>(ObjectTag::EvalKeys))
    return Status::dataCorrupt("unknown object tag " +
                               std::to_string(TagByte));
  H.Tag = static_cast<ObjectTag>(TagByte);
  if (H.Tag != Expected)
    return Status::dataCorrupt(std::string("object tag mismatch: found a ") +
                               objectTagName(H.Tag) + " object, expected " +
                               objectTagName(Expected));
  if (Flags != 0)
    return Status::dataCorrupt("unsupported header flags " +
                               std::to_string(Flags) +
                               " (must be zero in version 1)");
  R.u64(H.PayloadLen);
  R.u32(H.Crc);
  uint64_t Cap = maxPayloadBytes(Expected, Ctx);
  if (H.PayloadLen > Cap)
    return Status::resourceExhausted(
        "payload length " + std::to_string(H.PayloadLen) +
        " exceeds the maximum " + std::to_string(Cap) + " for a " +
        objectTagName(Expected) +
        " object under these parameters; refusing to allocate");
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Payload parsers
//===----------------------------------------------------------------------===//

StatusOr<RnsPoly> parsePoly(const Context &Ctx, ByteReader &R,
                            const char *What) {
  uint16_t NumQ = 0;
  uint8_t HasSpecial = 0, NttForm = 0;
  if (!R.u16(NumQ))
    return truncatedAt(R, "polynomial prime count");
  if (!R.u8(HasSpecial) || !R.u8(NttForm))
    return truncatedAt(R, "polynomial flags");
  if (NumQ < 1 || NumQ > Ctx.chainLength())
    return Status::dataCorrupt(
        std::string(What) + ": polynomial declares " +
        std::to_string(NumQ) + " chain primes, context holds 1.." +
        std::to_string(Ctx.chainLength()));
  if (HasSpecial > 1 || NttForm > 1)
    return Status::dataCorrupt(std::string(What) +
                               ": polynomial flag byte is not 0 or 1");
  RnsPoly P(Ctx, NumQ, HasSpecial != 0, NttForm != 0);
  size_t N = Ctx.degree();
  for (size_t I = 0, E = P.numComponents(); I < E; ++I) {
    uint64_t *Comp = P.component(I);
    if (!R.bytes(Comp, N * sizeof(uint64_t)))
      return truncatedAt(R, "polynomial residues");
    if constexpr (std::endian::native != std::endian::little) {
      for (size_t J = 0; J < N; ++J) {
        uint64_t V = Comp[J];
        uint64_t S = 0;
        for (int B = 0; B < 8; ++B)
          S |= ((V >> (8 * B)) & 0xFF) << (8 * (7 - B));
        Comp[J] = S;
      }
    }
    uint64_t Mod = P.modulus(I);
    for (size_t J = 0; J < N; ++J)
      if (Comp[J] >= Mod)
        return Status::dataCorrupt(
            std::string(What) + ": residue " + std::to_string(Comp[J]) +
            " at coefficient " + std::to_string(J) + " of component " +
            std::to_string(I) + " is not below its modulus " +
            std::to_string(Mod));
  }
  return P;
}

Status parseParamsPayload(ByteReader &R, CkksParams &P) {
  uint64_t RingDegree = 0, Slots = 0;
  if (!R.u64(RingDegree) || !R.u64(Slots) || !R.i32(P.LogScale) ||
      !R.i32(P.LogFirstModulus) || !R.i32(P.NumRescaleModuli) ||
      !R.i32(P.LogSpecialModulus))
    return truncatedAt(R, "parameter fields");
  if (RingDegree > (1ULL << 48) || Slots > (1ULL << 48))
    return Status::dataCorrupt("implausible ring degree " +
                               std::to_string(RingDegree) + " or slot count " +
                               std::to_string(Slots));
  P.RingDegree = static_cast<size_t>(RingDegree);
  P.Slots = static_cast<size_t>(Slots);
  uint8_t Sparse = 0;
  if (!R.u8(Sparse) || !R.u64(P.Seed))
    return truncatedAt(R, "parameter fields");
  if (Sparse > 1)
    return Status::dataCorrupt("sparse-secret flag byte is not 0 or 1");
  P.SparseSecret = Sparse != 0;
  if (!P.valid())
    return Status::dataCorrupt(
        "deserialized parameters fail validation: ring degree " +
        std::to_string(P.RingDegree) + ", " + std::to_string(P.Slots) +
        " slots, log scale " + std::to_string(P.LogScale) + ", log q0 " +
        std::to_string(P.LogFirstModulus) + ", " +
        std::to_string(P.NumRescaleModuli) + " rescale primes, log special " +
        std::to_string(P.LogSpecialModulus));
  return Status::success();
}

/// Shared scale/slot validation for plaintexts and ciphertexts.
Status checkScaleAndSlots(const Context &Ctx, double Scale, uint64_t Slots,
                          const char *What) {
  if (!std::isfinite(Scale) || Scale <= 0.0)
    return Status::dataCorrupt(std::string(What) + ": scale " +
                               std::to_string(Scale) +
                               " is not a finite positive number");
  if (Slots != Ctx.slots())
    return Status::dataCorrupt(
        std::string(What) + ": slot count " + std::to_string(Slots) +
        " does not match the context's " + std::to_string(Ctx.slots()));
  return Status::success();
}

Status parsePlaintextPayload(const Context &Ctx, ByteReader &R,
                             Plaintext &Out) {
  ACE_ASSIGN_OR_RETURN(Out.Poly, parsePoly(Ctx, R, "plaintext"));
  if (Out.Poly.hasSpecial())
    return Status::dataCorrupt(
        "plaintext polynomial carries the key-switching special prime");
  uint64_t Slots = 0;
  if (!R.f64(Out.Scale) || !R.u64(Slots))
    return truncatedAt(R, "plaintext scale/slots");
  ACE_RETURN_IF_ERROR(checkScaleAndSlots(Ctx, Out.Scale, Slots, "plaintext"));
  Out.Slots = Slots;
  return Status::success();
}

Status parseCiphertextPayload(const Context &Ctx, ByteReader &R,
                              Ciphertext &Out) {
  uint8_t PolyCount = 0;
  if (!R.u8(PolyCount))
    return truncatedAt(R, "ciphertext polynomial count");
  if (PolyCount < 2 || PolyCount > 3)
    return Status::dataCorrupt(
        "ciphertext declares " + std::to_string(PolyCount) +
        " polynomial components (expected 2 or 3)");
  Out.Polys.clear();
  Out.Polys.reserve(PolyCount);
  for (uint8_t I = 0; I < PolyCount; ++I) {
    ACE_ASSIGN_OR_RETURN(RnsPoly P, parsePoly(Ctx, R, "ciphertext"));
    if (P.hasSpecial() || !P.isNtt())
      return Status::dataCorrupt(
          "ciphertext polynomial " + std::to_string(I) +
          " is not in plain NTT form (special prime or coefficient "
          "domain)");
    if (I > 0 && P.numQ() != Out.Polys[0].numQ())
      return Status::dataCorrupt(
          "ciphertext component prime counts differ (" +
          std::to_string(P.numQ()) + " vs " +
          std::to_string(Out.Polys[0].numQ()) + ")");
    Out.Polys.push_back(std::move(P));
  }
  uint64_t Slots = 0;
  if (!R.f64(Out.Scale) || !R.u64(Slots))
    return truncatedAt(R, "ciphertext scale/slots");
  ACE_RETURN_IF_ERROR(
      checkScaleAndSlots(Ctx, Out.Scale, Slots, "ciphertext"));
  Out.Slots = Slots;
  // Belt and braces: the runtime's own integrity gate must agree before a
  // wire object is allowed anywhere near the evaluator.
  if (Status S = validateCiphertext(Ctx, Out, "deserialize"))
    return Status::dataCorrupt("deserialized ciphertext fails validation: " +
                               S.message());
  return Status::success();
}

/// Parses one key polynomial and enforces the shared key-material shape:
/// NTT form, full chain when \p FullChain, special prime when
/// \p NeedSpecial.
StatusOr<RnsPoly> parseKeyPoly(const Context &Ctx, ByteReader &R,
                               const char *What, bool NeedSpecial,
                               bool FullChain) {
  ACE_ASSIGN_OR_RETURN(RnsPoly P, parsePoly(Ctx, R, What));
  if (!P.isNtt())
    return Status::dataCorrupt(std::string(What) +
                               ": key polynomial is not in NTT form");
  if (P.hasSpecial() != NeedSpecial)
    return Status::dataCorrupt(std::string(What) +
                               (NeedSpecial
                                    ? ": key polynomial lacks the special "
                                      "prime component"
                                    : ": key polynomial must not carry the "
                                      "special prime"));
  if (FullChain && P.numQ() != Ctx.chainLength())
    return Status::dataCorrupt(
        std::string(What) + ": key polynomial spans " +
        std::to_string(P.numQ()) + " chain primes, expected the full " +
        std::to_string(Ctx.chainLength()));
  return P;
}

Status parseSwitchKeyBody(const Context &Ctx, ByteReader &R,
                          SwitchKey &Out) {
  uint32_t NumParts = 0;
  if (!R.u32(NumParts))
    return truncatedAt(R, "switch-key part count");
  if (NumParts < 1 || NumParts > Ctx.chainLength())
    return Status::dataCorrupt(
        "switch key declares " + std::to_string(NumParts) +
        " decomposition digits, context allows 1.." +
        std::to_string(Ctx.chainLength()));
  Out.Parts.clear();
  Out.Parts.reserve(NumParts);
  for (uint32_t I = 0; I < NumParts; ++I) {
    ACE_ASSIGN_OR_RETURN(RnsPoly B, parseKeyPoly(Ctx, R, "switch-key",
                                                 /*NeedSpecial=*/true,
                                                 /*FullChain=*/false));
    ACE_ASSIGN_OR_RETURN(RnsPoly A, parseKeyPoly(Ctx, R, "switch-key",
                                                 /*NeedSpecial=*/true,
                                                 /*FullChain=*/false));
    if (B.numQ() != A.numQ() ||
        (I > 0 && B.numQ() != Out.Parts[0].first.numQ()))
      return Status::dataCorrupt(
          "switch-key digit " + std::to_string(I) +
          " spans a different prime count than its siblings");
    Out.Parts.emplace_back(std::move(B), std::move(A));
  }
  return Status::success();
}

Status parseEvalKeysPayload(const Context &Ctx, ByteReader &R,
                            EvalKeys &Out) {
  uint8_t HasRelin = 0;
  if (!R.u8(HasRelin))
    return truncatedAt(R, "relin-key flag");
  if (HasRelin > 1)
    return Status::dataCorrupt("relin-key flag byte is not 0 or 1");
  Out.HasRelin = HasRelin != 0;
  if (Out.HasRelin)
    ACE_RETURN_IF_ERROR(parseSwitchKeyBody(Ctx, R, Out.Relin));
  uint8_t HasConj = 0;
  if (!R.u8(HasConj))
    return truncatedAt(R, "conjugation-key flag");
  if (HasConj > 1)
    return Status::dataCorrupt("conjugation-key flag byte is not 0 or 1");
  Out.HasConjugate = HasConj != 0;
  if (Out.HasConjugate)
    ACE_RETURN_IF_ERROR(parseSwitchKeyBody(Ctx, R, Out.Conjugate));
  uint32_t NumRot = 0;
  if (!R.u32(NumRot))
    return truncatedAt(R, "rotation-key count");
  // Galois elements are odd and below 2N, so a valid set holds at most N
  // distinct elements; larger counts are forged.
  if (NumRot > Ctx.degree())
    return Status::dataCorrupt(
        "rotation-key set declares " + std::to_string(NumRot) +
        " keys, at most " + std::to_string(Ctx.degree()) +
        " distinct Galois elements exist");
  Out.Rotations.clear();
  uint64_t PrevGalois = 0;
  for (uint32_t I = 0; I < NumRot; ++I) {
    uint64_t Galois = 0;
    if (!R.u64(Galois))
      return truncatedAt(R, "rotation-key Galois element");
    if ((Galois & 1) == 0 || Galois <= 1 || Galois >= 2 * Ctx.degree())
      return Status::dataCorrupt(
          "rotation-key Galois element " + std::to_string(Galois) +
          " is not an odd value in (1, " +
          std::to_string(2 * Ctx.degree()) + ")");
    if (Galois <= PrevGalois)
      return Status::dataCorrupt(
          "rotation-key Galois elements are not strictly increasing (" +
          std::to_string(Galois) + " after " + std::to_string(PrevGalois) +
          "); duplicates or non-canonical order");
    PrevGalois = Galois;
    SwitchKey Key;
    ACE_RETURN_IF_ERROR(parseSwitchKeyBody(Ctx, R, Key));
    Out.Rotations.emplace(Galois, std::move(Key));
  }
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Load plumbing
//===----------------------------------------------------------------------===//

/// Verifies framing + CRC of a complete in-memory object and hands the
/// payload to \p Parse. Enforces exact consumption on both frame and
/// payload level.
template <typename ParseFn>
Status loadBuffer(ObjectTag Tag, const Context *Ctx, const uint8_t *Data,
                  size_t Size, ParseFn &&Parse) {
  telemetry::TraceSpan Span("wire",
                            std::string("load:") + objectTagName(Tag));
  if (!Data && Size > 0)
    return Status::invalidArgument("load: null buffer with nonzero size");
  ByteReader R(Data, Size);
  Header H;
  ACE_RETURN_IF_ERROR(parseHeader(R, Tag, Ctx, H));
  if (R.remaining() < H.PayloadLen)
    return Status::dataCorrupt(
        "truncated object: header declares a " +
        std::to_string(H.PayloadLen) + "-byte payload, " +
        std::to_string(R.remaining()) + " bytes follow");
  if (R.remaining() > H.PayloadLen)
    return Status::dataCorrupt(
        "trailing bytes: " +
        std::to_string(R.remaining() - H.PayloadLen) +
        " bytes after the declared payload");
  uint32_t Actual = crc32c(R.cursor(), static_cast<size_t>(H.PayloadLen));
  if (Actual != H.Crc) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "checksum mismatch: header says 0x%08X, payload hashes "
                  "to 0x%08X",
                  H.Crc, Actual);
    return Status::dataCorrupt(Buf);
  }
  ByteReader Payload(R.cursor(), static_cast<size_t>(H.PayloadLen));
  ACE_RETURN_IF_ERROR(Parse(Payload));
  if (!Payload.atEnd())
    return Status::dataCorrupt(
        "trailing bytes inside payload: " +
        std::to_string(Payload.remaining()) +
        " bytes after the last field");
  if (telemetry::enabled())
    telemetry::Telemetry::instance().count(
        telemetry::Counter::BytesDeserialized,
        kHeaderBytes + static_cast<size_t>(H.PayloadLen));
  return Status::success();
}

/// Reads one framed object from \p IS into \p Frame (header + payload),
/// honoring the ShortRead fault. The caller re-parses the assembled
/// buffer through loadBuffer, so stream and buffer loads share one
/// validation path.
Status readFrame(ObjectTag Tag, const Context *Ctx, std::istream &IS,
                 std::vector<uint8_t> &Frame) {
  Frame.resize(kHeaderBytes);
  IS.read(reinterpret_cast<char *>(Frame.data()), kHeaderBytes);
  size_t Got = static_cast<size_t>(IS.gcount());
  if (IS.bad())
    return Status::ioError("stream read failed while reading the object "
                           "header");
  if (Got < kHeaderBytes) {
    Frame.resize(Got);
    ByteReader R(Frame.data(), Got);
    Header H;
    return parseHeader(R, Tag, Ctx, H); // yields the truncated-header error
  }
  ByteReader R(Frame.data(), kHeaderBytes);
  Header H;
  ACE_RETURN_IF_ERROR(parseHeader(R, Tag, Ctx, H));
  Frame.resize(kHeaderBytes + static_cast<size_t>(H.PayloadLen));
  IS.read(reinterpret_cast<char *>(Frame.data() + kHeaderBytes),
          static_cast<std::streamsize>(H.PayloadLen));
  Got = static_cast<size_t>(IS.gcount());
  if (IS.bad())
    return Status::ioError("stream read failed while reading the object "
                           "payload");
  FaultInjector &FI = FaultInjector::instance();
  if (FI.enabled() && FI.shouldFire(FaultKind::ShortRead))
    Got /= 2;
  if (Got < H.PayloadLen) {
    Frame.resize(kHeaderBytes + Got);
    return Status::dataCorrupt(
        "truncated object: header declares a " +
        std::to_string(H.PayloadLen) + "-byte payload, the stream held " +
        std::to_string(Got) + " bytes");
  }
  return Status::success();
}

template <typename ParseFn>
Status loadStream(ObjectTag Tag, const Context *Ctx, std::istream &IS,
                  ParseFn &&Parse) {
  std::vector<uint8_t> Frame;
  ACE_RETURN_IF_ERROR(readFrame(Tag, Ctx, IS, Frame));
  return loadBuffer(Tag, Ctx, Frame.data(), Frame.size(),
                    std::forward<ParseFn>(Parse));
}

//===----------------------------------------------------------------------===//
// Save-side input validation
//===----------------------------------------------------------------------===//

Status checkBoundPoly(const RnsPoly &P, const char *What) {
  if (!P.bound())
    return Status::invalidArgument(
        std::string(What) +
        ": polynomial is not bound to a context (default-constructed or "
        "moved-from object)");
  return Status::success();
}

Status checkSaveableCiphertext(const Ciphertext &Ct) {
  if (Ct.Polys.empty() || Ct.Polys.size() > 3)
    return Status::invalidArgument(
        "save: malformed ciphertext with " + std::to_string(Ct.size()) +
        " polynomial components (expected 2 or 3)");
  for (const RnsPoly &P : Ct.Polys)
    ACE_RETURN_IF_ERROR(checkBoundPoly(P, "save ciphertext"));
  if (Status S = validateCiphertext(Ct.Polys[0].context(), Ct, "save"))
    return S;
  return Status::success();
}

Status checkSaveableSwitchKey(const SwitchKey &K, const char *What) {
  if (K.Parts.empty())
    return Status::invalidArgument(std::string(What) +
                                   ": switch key has no parts");
  for (const auto &Part : K.Parts) {
    ACE_RETURN_IF_ERROR(checkBoundPoly(Part.first, What));
    ACE_RETURN_IF_ERROR(checkBoundPoly(Part.second, What));
  }
  return Status::success();
}

} // namespace

//===----------------------------------------------------------------------===//
// Public save API
//===----------------------------------------------------------------------===//

Status ace::fhe::wire::save(const CkksParams &P, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::Params, Out, [&](ByteWriter &W) {
    if (!P.valid())
      return Status::invalidArgument(
          "save: parameters fail CkksParams::valid()");
    writeParamsPayload(W, P);
    return Status::success();
  });
}

Status ace::fhe::wire::save(const CkksParams &P, std::ostream &OS) {
  return saveObject(ObjectTag::Params, OS, [&](ByteWriter &W) {
    if (!P.valid())
      return Status::invalidArgument(
          "save: parameters fail CkksParams::valid()");
    writeParamsPayload(W, P);
    return Status::success();
  });
}

namespace {
Status buildPlaintextPayload(const Plaintext &P, ByteWriter &W) {
  ACE_RETURN_IF_ERROR(checkBoundPoly(P.Poly, "save plaintext"));
  if (P.Poly.hasSpecial())
    return Status::invalidArgument(
        "save: plaintext polynomial carries the special prime");
  if (!std::isfinite(P.Scale) || P.Scale <= 0.0)
    return Status::invalidArgument(
        "save: plaintext scale " + std::to_string(P.Scale) +
        " is not a finite positive number");
  writePoly(W, P.Poly);
  W.f64(P.Scale);
  W.u64(P.Slots);
  return Status::success();
}

Status buildCiphertextPayload(const Ciphertext &Ct, ByteWriter &W) {
  ACE_RETURN_IF_ERROR(checkSaveableCiphertext(Ct));
  W.u8(static_cast<uint8_t>(Ct.Polys.size()));
  for (const RnsPoly &P : Ct.Polys)
    writePoly(W, P);
  W.f64(Ct.Scale);
  W.u64(Ct.Slots);
  return Status::success();
}

Status buildPublicKeyPayload(const PublicKey &K, ByteWriter &W) {
  ACE_RETURN_IF_ERROR(checkBoundPoly(K.B, "save public key"));
  ACE_RETURN_IF_ERROR(checkBoundPoly(K.A, "save public key"));
  writePoly(W, K.B);
  writePoly(W, K.A);
  return Status::success();
}

Status buildSecretKeyPayload(const SecretKey &K, ByteWriter &W) {
  ACE_RETURN_IF_ERROR(checkBoundPoly(K.S, "save secret key"));
  writePoly(W, K.S);
  return Status::success();
}

Status buildSwitchKeyPayload(const SwitchKey &K, ByteWriter &W) {
  ACE_RETURN_IF_ERROR(checkSaveableSwitchKey(K, "save switch key"));
  writeSwitchKeyBody(W, K);
  return Status::success();
}

Status buildEvalKeysPayload(const EvalKeys &K, ByteWriter &W) {
  if (K.HasRelin)
    ACE_RETURN_IF_ERROR(checkSaveableSwitchKey(K.Relin, "save relin key"));
  if (K.HasConjugate)
    ACE_RETURN_IF_ERROR(
        checkSaveableSwitchKey(K.Conjugate, "save conjugation key"));
  for (const auto &[Galois, Key] : K.Rotations)
    ACE_RETURN_IF_ERROR(checkSaveableSwitchKey(Key, "save rotation key"));
  W.u8(K.HasRelin ? 1 : 0);
  if (K.HasRelin)
    writeSwitchKeyBody(W, K.Relin);
  W.u8(K.HasConjugate ? 1 : 0);
  if (K.HasConjugate)
    writeSwitchKeyBody(W, K.Conjugate);
  W.u32(static_cast<uint32_t>(K.Rotations.size()));
  for (const auto &[Galois, Key] : K.Rotations) {
    W.u64(Galois);
    writeSwitchKeyBody(W, Key);
  }
  return Status::success();
}
} // namespace

Status ace::fhe::wire::save(const Plaintext &P, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::Plaintext, Out, [&](ByteWriter &W) {
    return buildPlaintextPayload(P, W);
  });
}

Status ace::fhe::wire::save(const Plaintext &P, std::ostream &OS) {
  return saveObject(ObjectTag::Plaintext, OS, [&](ByteWriter &W) {
    return buildPlaintextPayload(P, W);
  });
}

Status ace::fhe::wire::save(const Ciphertext &Ct, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::Ciphertext, Out, [&](ByteWriter &W) {
    return buildCiphertextPayload(Ct, W);
  });
}

Status ace::fhe::wire::save(const Ciphertext &Ct, std::ostream &OS) {
  return saveObject(ObjectTag::Ciphertext, OS, [&](ByteWriter &W) {
    return buildCiphertextPayload(Ct, W);
  });
}

Status ace::fhe::wire::save(const PublicKey &K, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::PublicKey, Out, [&](ByteWriter &W) {
    return buildPublicKeyPayload(K, W);
  });
}

Status ace::fhe::wire::save(const PublicKey &K, std::ostream &OS) {
  return saveObject(ObjectTag::PublicKey, OS, [&](ByteWriter &W) {
    return buildPublicKeyPayload(K, W);
  });
}

Status ace::fhe::wire::save(const SecretKey &K, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::SecretKey, Out, [&](ByteWriter &W) {
    return buildSecretKeyPayload(K, W);
  });
}

Status ace::fhe::wire::save(const SecretKey &K, std::ostream &OS) {
  return saveObject(ObjectTag::SecretKey, OS, [&](ByteWriter &W) {
    return buildSecretKeyPayload(K, W);
  });
}

Status ace::fhe::wire::save(const SwitchKey &K, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::SwitchKey, Out, [&](ByteWriter &W) {
    return buildSwitchKeyPayload(K, W);
  });
}

Status ace::fhe::wire::save(const SwitchKey &K, std::ostream &OS) {
  return saveObject(ObjectTag::SwitchKey, OS, [&](ByteWriter &W) {
    return buildSwitchKeyPayload(K, W);
  });
}

Status ace::fhe::wire::save(const EvalKeys &K, std::vector<uint8_t> &Out) {
  return saveObject(ObjectTag::EvalKeys, Out, [&](ByteWriter &W) {
    return buildEvalKeysPayload(K, W);
  });
}

Status ace::fhe::wire::save(const EvalKeys &K, std::ostream &OS) {
  return saveObject(ObjectTag::EvalKeys, OS, [&](ByteWriter &W) {
    return buildEvalKeysPayload(K, W);
  });
}

//===----------------------------------------------------------------------===//
// Public load API
//===----------------------------------------------------------------------===//

StatusOr<CkksParams> ace::fhe::wire::loadParams(const uint8_t *Data,
                                                size_t Size) {
  CkksParams P;
  ACE_RETURN_IF_ERROR(loadBuffer(ObjectTag::Params, nullptr, Data, Size,
                                 [&](ByteReader &R) {
                                   return parseParamsPayload(R, P);
                                 }));
  return P;
}

StatusOr<CkksParams> ace::fhe::wire::loadParams(std::istream &IS) {
  CkksParams P;
  ACE_RETURN_IF_ERROR(loadStream(ObjectTag::Params, nullptr, IS,
                                 [&](ByteReader &R) {
                                   return parseParamsPayload(R, P);
                                 }));
  return P;
}

StatusOr<Plaintext> ace::fhe::wire::loadPlaintext(const Context &Ctx,
                                                  const uint8_t *Data,
                                                  size_t Size) {
  Plaintext P;
  ACE_RETURN_IF_ERROR(loadBuffer(ObjectTag::Plaintext, &Ctx, Data, Size,
                                 [&](ByteReader &R) {
                                   return parsePlaintextPayload(Ctx, R, P);
                                 }));
  return P;
}

StatusOr<Plaintext> ace::fhe::wire::loadPlaintext(const Context &Ctx,
                                                  std::istream &IS) {
  Plaintext P;
  ACE_RETURN_IF_ERROR(loadStream(ObjectTag::Plaintext, &Ctx, IS,
                                 [&](ByteReader &R) {
                                   return parsePlaintextPayload(Ctx, R, P);
                                 }));
  return P;
}

StatusOr<Ciphertext> ace::fhe::wire::loadCiphertext(const Context &Ctx,
                                                    const uint8_t *Data,
                                                    size_t Size) {
  Ciphertext Ct;
  ACE_RETURN_IF_ERROR(loadBuffer(ObjectTag::Ciphertext, &Ctx, Data, Size,
                                 [&](ByteReader &R) {
                                   return parseCiphertextPayload(Ctx, R, Ct);
                                 }));
  return Ct;
}

StatusOr<Ciphertext> ace::fhe::wire::loadCiphertext(const Context &Ctx,
                                                    std::istream &IS) {
  Ciphertext Ct;
  ACE_RETURN_IF_ERROR(loadStream(ObjectTag::Ciphertext, &Ctx, IS,
                                 [&](ByteReader &R) {
                                   return parseCiphertextPayload(Ctx, R, Ct);
                                 }));
  return Ct;
}

StatusOr<PublicKey> ace::fhe::wire::loadPublicKey(const Context &Ctx,
                                                  const uint8_t *Data,
                                                  size_t Size) {
  PublicKey K;
  ACE_RETURN_IF_ERROR(loadBuffer(
      ObjectTag::PublicKey, &Ctx, Data, Size, [&](ByteReader &R) {
        ACE_ASSIGN_OR_RETURN(K.B, parseKeyPoly(Ctx, R, "public-key",
                                               /*NeedSpecial=*/false,
                                               /*FullChain=*/true));
        ACE_ASSIGN_OR_RETURN(K.A, parseKeyPoly(Ctx, R, "public-key",
                                               /*NeedSpecial=*/false,
                                               /*FullChain=*/true));
        return Status::success();
      }));
  return K;
}

StatusOr<PublicKey> ace::fhe::wire::loadPublicKey(const Context &Ctx,
                                                  std::istream &IS) {
  PublicKey K;
  ACE_RETURN_IF_ERROR(loadStream(
      ObjectTag::PublicKey, &Ctx, IS, [&](ByteReader &R) {
        ACE_ASSIGN_OR_RETURN(K.B, parseKeyPoly(Ctx, R, "public-key",
                                               /*NeedSpecial=*/false,
                                               /*FullChain=*/true));
        ACE_ASSIGN_OR_RETURN(K.A, parseKeyPoly(Ctx, R, "public-key",
                                               /*NeedSpecial=*/false,
                                               /*FullChain=*/true));
        return Status::success();
      }));
  return K;
}

StatusOr<SecretKey> ace::fhe::wire::loadSecretKey(const Context &Ctx,
                                                  const uint8_t *Data,
                                                  size_t Size) {
  SecretKey K;
  ACE_RETURN_IF_ERROR(loadBuffer(
      ObjectTag::SecretKey, &Ctx, Data, Size, [&](ByteReader &R) {
        ACE_ASSIGN_OR_RETURN(K.S, parseKeyPoly(Ctx, R, "secret-key",
                                               /*NeedSpecial=*/true,
                                               /*FullChain=*/true));
        return Status::success();
      }));
  return K;
}

StatusOr<SecretKey> ace::fhe::wire::loadSecretKey(const Context &Ctx,
                                                  std::istream &IS) {
  SecretKey K;
  ACE_RETURN_IF_ERROR(loadStream(
      ObjectTag::SecretKey, &Ctx, IS, [&](ByteReader &R) {
        ACE_ASSIGN_OR_RETURN(K.S, parseKeyPoly(Ctx, R, "secret-key",
                                               /*NeedSpecial=*/true,
                                               /*FullChain=*/true));
        return Status::success();
      }));
  return K;
}

StatusOr<SwitchKey> ace::fhe::wire::loadSwitchKey(const Context &Ctx,
                                                  const uint8_t *Data,
                                                  size_t Size) {
  SwitchKey K;
  ACE_RETURN_IF_ERROR(loadBuffer(ObjectTag::SwitchKey, &Ctx, Data, Size,
                                 [&](ByteReader &R) {
                                   return parseSwitchKeyBody(Ctx, R, K);
                                 }));
  return K;
}

StatusOr<SwitchKey> ace::fhe::wire::loadSwitchKey(const Context &Ctx,
                                                  std::istream &IS) {
  SwitchKey K;
  ACE_RETURN_IF_ERROR(loadStream(ObjectTag::SwitchKey, &Ctx, IS,
                                 [&](ByteReader &R) {
                                   return parseSwitchKeyBody(Ctx, R, K);
                                 }));
  return K;
}

StatusOr<EvalKeys> ace::fhe::wire::loadEvalKeys(const Context &Ctx,
                                                const uint8_t *Data,
                                                size_t Size) {
  EvalKeys K;
  ACE_RETURN_IF_ERROR(loadBuffer(ObjectTag::EvalKeys, &Ctx, Data, Size,
                                 [&](ByteReader &R) {
                                   return parseEvalKeysPayload(Ctx, R, K);
                                 }));
  return K;
}

StatusOr<EvalKeys> ace::fhe::wire::loadEvalKeys(const Context &Ctx,
                                                std::istream &IS) {
  EvalKeys K;
  ACE_RETURN_IF_ERROR(loadStream(ObjectTag::EvalKeys, &Ctx, IS,
                                 [&](ByteReader &R) {
                                   return parseEvalKeysPayload(Ctx, R, K);
                                 }));
  return K;
}
