//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Negacyclic number-theoretic transform over Z_p[X]/(X^N + 1). The forward
/// transform maps coefficients to evaluations at odd powers of a primitive
/// 2N-th root of unity; pointwise products in that domain realize
/// polynomial multiplication modulo X^N + 1 with no zero padding. This is
/// the computational core of every RNS-CKKS homomorphic operation (paper
/// Sec. 2.2-2.3: O(N log N r^2) multiplications and rotations).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_NTT_H
#define ACE_FHE_NTT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ace {
namespace fhe {

/// Precomputed tables and transforms for one (prime, ring degree) pair.
///
/// Uses the standard Harvey layout: forward = Cooley-Tukey
/// decimation-in-time with bit-reversed twiddles (output in standard order
/// of the "negacyclic evaluation" ordering), inverse = Gentleman-Sande with
/// inverse twiddles and a final N^{-1} scaling. All butterflies use Shoup
/// multiplication against precomputed companions.
class NttTable {
public:
  /// Builds tables for ring degree \p N (a power of two) and prime
  /// \p Modulus with Modulus = 1 (mod 2N).
  NttTable(size_t N, uint64_t Modulus);

  /// In-place forward negacyclic NTT of \p Data (length N).
  void forward(uint64_t *Data) const;

  /// In-place inverse negacyclic NTT of \p Data (length N).
  void inverse(uint64_t *Data) const;

  /// The prime modulus.
  uint64_t modulus() const { return Modulus; }

  /// The ring degree.
  size_t degree() const { return N; }

  /// \name Twiddle-table access for PolyBackend implementations
  /// Bit-reversed psi powers (and Shoup companions) in the Harvey
  /// layout the butterfly loops consume; see docs/kernels.md.
  /// @{
  const std::vector<uint64_t> &rootPowers() const { return RootPowers; }
  const std::vector<uint64_t> &rootPowersShoup() const {
    return RootPowersShoup;
  }
  const std::vector<uint64_t> &invRootPowers() const {
    return InvRootPowers;
  }
  const std::vector<uint64_t> &invRootPowersShoup() const {
    return InvRootPowersShoup;
  }
  uint64_t invDegree() const { return InvDegree; }
  uint64_t invDegreeShoup() const { return InvDegreeShoup; }
  /// @}

private:
  size_t N;
  uint64_t Modulus;
  /// Powers of psi (primitive 2N-th root) in bit-reversed order.
  std::vector<uint64_t> RootPowers;
  std::vector<uint64_t> RootPowersShoup;
  /// Powers of psi^{-1} in bit-reversed order.
  std::vector<uint64_t> InvRootPowers;
  std::vector<uint64_t> InvRootPowersShoup;
  uint64_t InvDegree;
  uint64_t InvDegreeShoup;
};

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_NTT_H
