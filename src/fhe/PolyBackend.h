//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable poly-ops backend seam (docs/kernels.md). Every hot loop
/// of the RNS-CKKS runtime — NTT butterflies, pointwise limb arithmetic,
/// the key-switch inner product — funnels through this interface, so a
/// vectorized (or, later, accelerator) implementation can replace the
/// scalar kernels without touching RnsPoly, the evaluator, or the
/// bootstrapper. Threading stays ABOVE the backend: ace::ThreadPool
/// partitions work at RNS-limb / key-switch-digit granularity and each
/// backend call processes one limb serially, so threading and
/// vectorization compose.
///
/// The contract is bit-identity: every backend must produce exactly the
/// residues the scalar reference produces, for every op, every modulus
/// width, and every input (tests/fhe/PolyBackendTest.cpp enforces this
/// differentially). That makes backend choice invisible to everything
/// downstream — including the cross-thread-count determinism guarantee
/// of docs/performance.md.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_POLYBACKEND_H
#define ACE_FHE_POLYBACKEND_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace ace {
namespace fhe {

class NttTable;

/// One set of poly-op kernels over a single RNS limb. All element
/// pointers reference arrays of residues already reduced modulo the
/// prime \p P (primes are NTT-friendly, P < 2^61, so sums of two
/// residues and Shoup intermediates fit comfortably in 64/128 bits).
///
/// Aliasing rules: the destination may be identical to a source operand
/// (all call sites are in-place on the first argument), but otherwise
/// operands must not overlap. Implementations may process elements in
/// any order but must write each element exactly once with exactly the
/// value the scalar reference computes.
///
/// Backends are stateless and immutable after construction; one
/// instance serves all threads concurrently.
class PolyBackend {
public:
  virtual ~PolyBackend() = default;

  /// Stable short name ("scalar", "simd") used by the knob, the bench
  /// metadata stamp, and the ace_build_info metric.
  virtual const char *name() const = 0;

  /// In-place forward negacyclic NTT of one limb \p Data (length
  /// Table.degree()) using \p Table's twiddles. Must match the
  /// Harvey-layout Cooley-Tukey reference butterfly-for-butterfly.
  virtual void forwardNtt(const NttTable &Table, uint64_t *Data) const = 0;

  /// In-place inverse negacyclic NTT of one limb, including the final
  /// N^{-1} scaling.
  virtual void inverseNtt(const NttTable &Table, uint64_t *Data) const = 0;

  /// Pointwise product: A[i] = A[i] * B[i] mod P.
  virtual void mul(uint64_t *A, const uint64_t *B, size_t N,
                   uint64_t P) const = 0;

  /// Pointwise sum: A[i] = A[i] + B[i] mod P.
  virtual void add(uint64_t *A, const uint64_t *B, size_t N,
                   uint64_t P) const = 0;

  /// Pointwise difference: A[i] = A[i] - B[i] mod P.
  virtual void sub(uint64_t *A, const uint64_t *B, size_t N,
                   uint64_t P) const = 0;

  /// Pointwise negation: A[i] = -A[i] mod P.
  virtual void negate(uint64_t *A, size_t N, uint64_t P) const = 0;

  /// Scalar product A[i] = A[i] * S mod P via Shoup multiplication;
  /// \p SShoup is shoupPrecompute(S, P) and S must be reduced mod P.
  virtual void scalarMul(uint64_t *A, uint64_t S, uint64_t SShoup,
                         size_t N, uint64_t P) const = 0;

  /// Fused multiply-accumulate: Acc[i] = Acc[i] + X[i] * Y[i] mod P.
  /// This is the key-switch inner-product kernel.
  virtual void mulAcc(uint64_t *Acc, const uint64_t *X, const uint64_t *Y,
                      size_t N, uint64_t P) const = 0;
};

/// The scalar reference backend (always available; the semantics every
/// other backend must reproduce bit-for-bit).
const PolyBackend &scalarPolyBackend();

/// The vectorized backend (AVX2 on x86-64, NEON on AArch64), or nullptr
/// when this build/host cannot run it. The instance is usable from any
/// thread.
const PolyBackend *simdPolyBackend();

/// True when simdPolyBackend() returns a usable backend: the kernels
/// were compiled in AND the CPU supports them (checked via CPUID once).
bool simdPolyBackendSupported();

/// The process-wide active backend. First use resolves the
/// ACE_POLY_BACKEND environment knob ("scalar" | "simd" | "auto";
/// unset/auto picks simd when supported, scalar otherwise; an
/// unrecognized value or "simd" on an unsupported host warns on stderr
/// and degrades to auto — it never aborts). Context creation forces
/// this resolution, so the choice is fixed per process before any FHE
/// work runs.
const PolyBackend &activePolyBackend();

/// Name of the active backend ("scalar" or "simd"); resolves the
/// selection like activePolyBackend().
const char *activePolyBackendName();

/// Programmatic override of the active backend: \p Spec is "scalar",
/// "simd", or "auto". Returns InvalidArgument for an unknown spec and
/// for "simd" when unsupported, leaving the selection unchanged. Safe
/// to call between (not during) runtime calls; the choice is
/// per-process, never per-session. The selected name is stamped into
/// telemetry run metadata (trace "otherData" and ace_build_info).
Status selectPolyBackend(const std::string &Spec);

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_POLYBACKEND_H
