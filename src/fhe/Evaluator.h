//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The homomorphic evaluator: every CKKS-IR operation of paper Table 6
/// (add, sub, neg, mul, rotate, rescale, modswitch, upscale, downscale,
/// relin) has a runtime counterpart here. Key switching uses the RNS
/// digit-decomposition ("hybrid with one special prime") method: the input
/// polynomial is decomposed per chain prime, multiplied against the
/// matching switch-key parts over the extended basis, and divided by the
/// special prime. Operation counters feed the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_EVALUATOR_H
#define ACE_FHE_EVALUATOR_H

#include "fhe/Encoder.h"
#include "fhe/Keys.h"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ace {
namespace fhe {

/// The shared ModUp product of a (possibly hoisted) key switch: the RNS
/// digit decomposition of one polynomial, each digit lifted to the
/// extended basis (all active chain primes plus the special prime) and
/// transformed to NTT form. Hoisted rotations compute this once per batch
/// and reuse it for every Galois automorphism, because the automorphism
/// acts on each lifted digit as a pure NTT-domain permutation
/// (RnsPoly::automorphismNtt).
struct HoistedDecomposition {
  /// One lifted digit per active chain prime; each has NumQ chain
  /// components plus the special component, in NTT form.
  std::vector<RnsPoly> Digits;
  /// Number of active chain primes of the decomposed polynomial.
  size_t NumQ = 0;
};

/// Counts of executed homomorphic operations, for benches and ablations.
struct OpCounters {
  size_t Add = 0;
  size_t MulCipher = 0;
  size_t MulPlain = 0;
  size_t Rotate = 0;
  size_t Conjugate = 0;
  size_t Relinearize = 0;
  size_t Rescale = 0;
  size_t ModSwitch = 0;
  size_t KeySwitch = 0;

  void clear() { *this = OpCounters(); }
};

/// Stateless-per-operation evaluator bound to a context and key set.
///
/// Two tiers of entry points: the plain operations below document their
/// preconditions with asserts only (hot paths, trusted compiled programs),
/// while the checked* family validates every precondition in release
/// builds too and returns Status/StatusOr with diagnostics naming the
/// actual operand levels, scales, and rotation steps. The C API and the
/// executor route through the checked tier; see docs/error-handling.md.
class Evaluator {
public:
  /// \p KeyCache optionally backs rotation/Galois key lookups with LRU
  /// on-demand generation: eager keys in \p Keys win, the cache serves
  /// the rest (see docs/memory.md). Must outlive the evaluator.
  Evaluator(const Context &Ctx, const Encoder &Enc, const EvalKeys &Keys,
            RotationKeyCache *KeyCache = nullptr);

  const Context &context() const { return Ctx; }
  const Encoder &encoder() const { return Enc; }
  const EvalKeys &keys() const { return Keys; }

  /// True when a switch key for \p Galois is available — eagerly in
  /// keys(), or declared in the key cache (where it materializes on
  /// first use).
  bool hasGaloisKey(uint64_t Galois) const;

  /// Materializes the switch key for \p Galois through the Status path
  /// (lazy keygen runs the governor's admit here, so budget refusals
  /// come back in-band as ResourceExhausted instead of aborting in the
  /// hot tier) and verifies it covers \p MinNumQ decomposition digits.
  /// A cache-served key is appended to \p Pins; holding the pins keeps
  /// it resident (eviction skips held keys), so a caller about to run a
  /// long unchecked sequence — the bootstrapper — can guarantee every
  /// hot-tier lookup hits. Eager keys pin nothing (they never move).
  Status materializeGaloisKey(
      uint64_t Galois, size_t MinNumQ,
      std::vector<std::shared_ptr<const SwitchKey>> &Pins) const;

  /// \name Checked entry points (release-mode validated, recoverable).
  /// Each validates operand integrity (validateCiphertext), the
  /// operation's level/scale/key preconditions, and honors the
  /// fault-injection harness; failures come back as Status with the
  /// concrete offending values in the message.
  /// @{
  /// Mod-switches the higher operand down and verifies the scales agree.
  Status checkedMatchForAdd(Ciphertext &A, Ciphertext &B) const;
  StatusOr<Ciphertext> checkedAdd(const Ciphertext &A,
                                  const Ciphertext &B) const;
  StatusOr<Ciphertext> checkedSub(const Ciphertext &A,
                                  const Ciphertext &B) const;
  /// Product including relinearization (level-matches the operands
  /// first, like the C API's ace_mul).
  StatusOr<Ciphertext> checkedMul(const Ciphertext &A,
                                  const Ciphertext &B) const;
  /// Encodes \p Values at the rescale-exact scale and multiplies.
  StatusOr<Ciphertext> checkedMulPlain(const Ciphertext &A,
                                       const std::vector<double> &Values)
      const;
  /// Encodes \p Values at the ciphertext's scale and adds.
  StatusOr<Ciphertext> checkedAddPlain(const Ciphertext &A,
                                       const std::vector<double> &Values)
      const;
  StatusOr<Ciphertext> checkedMulScalar(const Ciphertext &A, double Value,
                                        double TargetScale = 0.0) const;
  StatusOr<Ciphertext> checkedAddConst(const Ciphertext &A,
                                       double Value) const;
  StatusOr<Ciphertext> checkedRotate(const Ciphertext &A,
                                     int64_t Steps) const;
  /// Validated hoisted rotation batch: checks the ciphertext and every
  /// step's rotation key (presence and truncation) before rotating.
  StatusOr<std::vector<Ciphertext>>
  checkedRotateHoisted(const Ciphertext &A,
                       const std::vector<int64_t> &Steps) const;
  StatusOr<Ciphertext> checkedConjugate(const Ciphertext &A) const;
  StatusOr<Ciphertext> checkedRelinearize(const Ciphertext &A) const;
  StatusOr<Ciphertext> checkedRescale(const Ciphertext &A) const;
  StatusOr<Ciphertext> checkedModSwitchTo(const Ciphertext &A,
                                          size_t NumQ) const;
  /// @}

  /// \name Additive operations (operands need matching level and scale).
  /// @{
  Ciphertext add(const Ciphertext &A, const Ciphertext &B) const;
  void addInPlace(Ciphertext &A, const Ciphertext &B) const;
  Ciphertext sub(const Ciphertext &A, const Ciphertext &B) const;
  void subInPlace(Ciphertext &A, const Ciphertext &B) const;
  Ciphertext negate(const Ciphertext &A) const;
  void addPlainInPlace(Ciphertext &A, const Plaintext &P) const;
  Ciphertext addPlain(const Ciphertext &A, const Plaintext &P) const;
  /// Adds the constant \p Value (replicated across slots) at the
  /// ciphertext's scale; exact and essentially free (touches only c0).
  void addConstInPlace(Ciphertext &A, double Value) const;
  /// @}

  /// \name Multiplicative operations.
  /// @{
  /// Ciphertext-ciphertext product without relinearization; the result has
  /// three polynomials (the paper's Cipher3) and scale = sA * sB.
  Ciphertext mulNoRelin(const Ciphertext &A, const Ciphertext &B) const;
  /// Ciphertext-ciphertext product followed by relinearization.
  Ciphertext mul(const Ciphertext &A, const Ciphertext &B) const;
  /// Ciphertext-plaintext product (plaintext level must cover the
  /// ciphertext level); scale = sA * sP.
  Ciphertext mulPlain(const Ciphertext &A, const Plaintext &P) const;
  void mulPlainInPlace(Ciphertext &A, const Plaintext &P) const;
  /// Fused Acc += A * P (one backend multiply-accumulate per limb, no
  /// product temporary). Requires Acc.Scale ~= A.Scale * P.Scale and
  /// matching shapes; residues are bit-identical to mulPlain followed
  /// by addInPlace, and the op counters record one ct-pt mul plus one
  /// add, exactly like the unfused pair. The bootstrapper's BSGS
  /// matrix-vector accumulation is the intended caller.
  void mulPlainAddInPlace(Ciphertext &Acc, const Ciphertext &A,
                          const Plaintext &P) const;
  /// Multiplies by the scalar \p Value. The plaintext scale is chosen so
  /// that a following rescale lands the ciphertext scale EXACTLY on
  /// \p TargetScale (default: the input scale). Exact target scales keep
  /// deep squaring chains (Chebyshev, bootstrapping) free of the
  /// exponential scale drift that mismatched additions would amplify.
  Ciphertext mulScalar(const Ciphertext &A, double Value,
                       double TargetScale = 0.0) const;
  /// Multiplies values by a small signed integer exactly, scale unchanged.
  void mulIntegerInPlace(Ciphertext &A, int64_t Value) const;
  /// Multiplies every slot by the imaginary unit i, exactly and for free
  /// (monomial multiplication by X^{N/2}).
  Ciphertext mulByI(const Ciphertext &A) const;
  /// Converts a Cipher3 back to a Cipher (paper Table 6 relin).
  Ciphertext relinearize(const Ciphertext &A) const;
  /// @}

  /// \name Scale and level management (paper Sec. 4.4).
  /// @{
  /// Drops the last prime and divides the scale by it.
  void rescaleInPlace(Ciphertext &A) const;
  /// Drops the last prime without changing the scale.
  void modSwitchInPlace(Ciphertext &A) const;
  /// Mod-switches down until the ciphertext has \p NumQ active primes.
  void modSwitchTo(Ciphertext &A, size_t NumQ) const;
  /// Multiplies coefficients by 2^LogFactor: scale *= 2^LogFactor, values
  /// unchanged. Exact (paper Table 6 upscale).
  void upscaleInPlace(Ciphertext &A, int LogFactor) const;
  /// Brings the ciphertext to exactly \p TargetScale by multiplying with
  /// an encoded constant 1 and rescaling (paper Table 6 downscale).
  /// Consumes one level.
  void downscaleInPlace(Ciphertext &A, double TargetScale) const;
  /// Aligns two ciphertexts for addition: mod-switches the higher-level
  /// operand down and asserts the scales agree.
  void matchForAdd(Ciphertext &A, Ciphertext &B) const;
  /// @}

  /// \name Rotations.
  /// @{
  /// Left-rotates slots by \p Steps (negative = right). Requires the
  /// matching rotation key.
  Ciphertext rotate(const Ciphertext &A, int64_t Steps) const;
  /// Hoisted rotation batch: rotates \p A by every step in \p Steps with
  /// a single digit decomposition (ModUp) shared across the batch -- one
  /// inner product + ModDown per rotation instead of one full key switch
  /// each. Bit-identical to calling rotate() per step (both paths run the
  /// same decompose-first arithmetic) at every thread count; the
  /// per-rotation work is spread across the thread pool. Requires the
  /// rotation key for every nonzero step.
  std::vector<Ciphertext> rotateHoisted(const Ciphertext &A,
                                        const std::vector<int64_t> &Steps)
      const;
  /// Complex-conjugates every slot. Requires the conjugation key.
  Ciphertext conjugate(const Ciphertext &A) const;
  /// @}

  /// \name Encoding helpers.
  /// @{
  /// Encodes \p Values for multiplication against \p Ct: the plaintext
  /// scale is chosen as the prime the subsequent rescale drops, so
  /// mul + rescale preserves the ciphertext scale exactly.
  Plaintext encodeForMul(const Ciphertext &Ct,
                         const std::vector<double> &Values) const;
  Plaintext encodeForMulComplex(
      const Ciphertext &Ct,
      const std::vector<std::complex<double>> &Values) const;
  /// Encodes \p Values to match \p Ct's scale and level, for addPlain.
  Plaintext encodeForAdd(const Ciphertext &Ct,
                         const std::vector<double> &Values) const;
  /// The scale encodeForMul would use at the ciphertext's level.
  double mulPlainScale(const Ciphertext &Ct) const;
  /// @}

  /// Key switching primitive: switches \p D (coefficient domain, no
  /// special component) from the key \p Key encodes to the canonical
  /// secret. Returns the two result polynomials in NTT form. Exposed for
  /// hoisted-rotation style optimizations and white-box tests.
  std::pair<RnsPoly, RnsPoly> switchKey(const RnsPoly &D,
                                        const SwitchKey &Key) const;

  /// ModUp: decomposes \p D (coefficient domain, no special component)
  /// into one digit per active chain prime, lifts each digit to the
  /// extended basis and transforms it to NTT form. This is the work a
  /// hoisted rotation batch shares; exposed for white-box tests of the
  /// digit-domain automorphism invariant.
  HoistedDecomposition decomposeNtt(const RnsPoly &D) const;

  /// Applies a raw Galois automorphism with key switching.
  Ciphertext applyGalois(const Ciphertext &A, uint64_t Galois,
                         const SwitchKey &Key) const;

  /// Applies the automorphism for a raw Galois element using the key set
  /// (the bootstrapper's SubSum path). Asserts the key is present.
  Ciphertext rotateGalois(const Ciphertext &A, uint64_t Galois) const;

  /// Mutable operation counters.
  OpCounters &counters() const { return Counters; }

  /// Estimated remaining noise budget of \p A in bits: log2 of the active
  /// modulus product minus log2 of the scale. The telemetry layer records
  /// it per operation so traces show budget draining toward bootstrap.
  double noiseBudgetBits(const Ciphertext &A) const;

private:
  const Context &Ctx;
  const Encoder &Enc;
  const EvalKeys &Keys;
  /// Optional lazy key source consulted when Keys.Rotations lacks an
  /// element; not owned.
  RotationKeyCache *KeyCache = nullptr;
  mutable OpCounters Counters;
  /// NTT form of the monomial X^{N/2} per modulus, built lazily.
  mutable std::vector<std::vector<uint64_t>> MonomialNtt;
  /// LogQPrefix[I] = sum of log2(q_j) for j < I, built lazily for
  /// noiseBudgetBits.
  mutable std::vector<double> LogQPrefix;

  const std::vector<uint64_t> &monomialNtt(size_t ModIndex) const;
  /// Resolves the switch key for \p Galois: eager Keys.Rotations first,
  /// then the key cache (generating on demand). A cache-served key is
  /// pinned in \p Hold so eviction cannot free it mid-operation. Returns
  /// nullptr on failure with the reason in \p WhyNot (KeyMissing, or
  /// ResourceExhausted when the governor refused the generation).
  const SwitchKey *galoisKeyFor(uint64_t Galois,
                                std::shared_ptr<const SwitchKey> &Hold,
                                Status *WhyNot = nullptr) const;
  /// Inner product of the lifted digits against the switch-key parts,
  /// with the Galois automorphism applied to each digit on the fly as an
  /// NTT-domain gather (\p Galois == 1 reads the digits directly). Free
  /// of counters and spans so it can run inside parallelFor workers.
  void hoistedInnerProduct(const HoistedDecomposition &Dec,
                           const SwitchKey &Key, uint64_t Galois,
                           RnsPoly &Acc0, RnsPoly &Acc1) const;
  /// Divides the extended-basis accumulator by the special prime P:
  /// out = (acc - [acc]_P) * P^{-1} per chain prime. Counter-free.
  RnsPoly modDown(const RnsPoly &Acc) const;
  /// One rotation of a hoisted batch: inner product + ModDown for
  /// \p Galois against the shared decomposition of A's c1, then the
  /// NTT-domain automorphism of c0. Counter-free (the batch entry points
  /// account for their rotations up front).
  Ciphertext applyGaloisHoisted(const Ciphertext &A, uint64_t Galois,
                                const SwitchKey &Key,
                                const HoistedDecomposition &Dec) const;
  void checkAddCompatible(const Ciphertext &A, const Ciphertext &B) const;
  /// Verifies the relinearization key exists and covers \p NumQ digits.
  Status checkedRelinSupport(const char *What, size_t NumQ) const;
  /// Verifies \p A retains enough noise budget to absorb a multiply that
  /// adds \p ExtraLogScale bits of scale; Status(DepthExhausted) when the
  /// product's scale would overrun the active modulus (the decryption
  /// would be garbage, not merely noisy).
  Status checkedNoiseBudget(const char *What, const Ciphertext &A,
                            double ExtraLogScale) const;
};

/// True when two scales differ by less than a relative 1e-3 (rescale
/// primes are near but not exactly 2^LogScale, so scales drift slightly;
/// the induced value error is of the same order as the scheme noise).
bool scalesClose(double A, double B);

/// Formats a scale-mismatch diagnostic that names both scales and their
/// ratio, e.g. "add: scale mismatch: lhs scale 3.51844e+13 vs rhs scale
/// 3.69435e+13 (ratio 0.952389)".
std::string scaleMismatchMessage(const char *What, double A, double B);

/// Returns scalesClose(A, B); on mismatch prints the full diagnostic
/// (both scales and their ratio) to stderr first. Intended for assert
/// conditions so a failing assert shows the actual values:
///   assert(scalesCloseOrReport("add", A.Scale, B.Scale));
bool scalesCloseOrReport(const char *What, double A, double B);

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_EVALUATOR_H
