//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "fhe/Keys.h"

#include "fhe/ModArith.h"
#include "support/ResourceGovernor.h"

#include <algorithm>
#include <cassert>

using namespace ace;
using namespace ace::fhe;

uint64_t ace::fhe::galoisForRotation(size_t N, size_t Slots, int64_t Steps) {
  int64_t S = static_cast<int64_t>(Slots);
  int64_t K = ((Steps % S) + S) % S;
  uint64_t TwoN = 2 * N;
  uint64_t G = 1;
  for (int64_t I = 0; I < K; ++I)
    G = (G * 5) % TwoN;
  return G;
}

uint64_t ace::fhe::galoisForConjugation(size_t N) { return 2 * N - 1; }

/// Converts a small signed coefficient vector to an RNS polynomial over
/// the requested shape (coefficient domain).
static RnsPoly smallPolyToRns(const Context &Ctx,
                              const std::vector<int32_t> &Coeffs, size_t NumQ,
                              bool HasSpecial) {
  RnsPoly Poly(Ctx, NumQ, HasSpecial, /*NttForm=*/false);
  size_t N = Ctx.degree();
  for (size_t I = 0, E = Poly.numComponents(); I < E; ++I) {
    uint64_t P = Poly.modulus(I);
    uint64_t *Comp = Poly.component(I);
    for (size_t J = 0; J < N; ++J) {
      int32_t V = Coeffs[J];
      Comp[J] = V >= 0 ? static_cast<uint64_t>(V)
                       : P - static_cast<uint64_t>(-V);
    }
  }
  return Poly;
}

KeyGenerator::KeyGenerator(const Context &Ctx)
    : Ctx(Ctx), Rand(Ctx.params().Seed) {
  size_t N = Ctx.degree();
  std::vector<int32_t> Coeffs(N, 0);
  if (Ctx.params().SparseSecret) {
    // Hamming-weight-64 ternary secret: the standard bootstrappable-CKKS
    // choice; it bounds |c0 + c1*s| / q_0 and hence the EvalMod range K.
    size_t Weight = std::min<size_t>(64, N / 2);
    size_t Placed = 0;
    while (Placed < Weight) {
      size_t Pos = Rand.uniform(N);
      if (Coeffs[Pos] != 0)
        continue;
      Coeffs[Pos] = (Rand.next64() & 1) ? 1 : -1;
      ++Placed;
    }
  } else {
    for (auto &C : Coeffs)
      C = Rand.ternary();
  }
  Secret.S = smallPolyToRns(Ctx, Coeffs, Ctx.chainLength(),
                            /*HasSpecial=*/true);
  Secret.S.toNtt();
}

RnsPoly KeyGenerator::sampleNoise(size_t NumQ, bool HasSpecial) {
  size_t N = Ctx.degree();
  std::vector<int32_t> Coeffs(N);
  for (auto &C : Coeffs)
    C = Rand.noiseCbd();
  return smallPolyToRns(Ctx, Coeffs, NumQ, HasSpecial);
}

RnsPoly KeyGenerator::sampleUniform(size_t NumQ, bool HasSpecial) {
  RnsPoly Poly(Ctx, NumQ, HasSpecial, /*NttForm=*/true);
  size_t N = Ctx.degree();
  for (size_t I = 0, E = Poly.numComponents(); I < E; ++I) {
    uint64_t P = Poly.modulus(I);
    uint64_t *Comp = Poly.component(I);
    for (size_t J = 0; J < N; ++J)
      Comp[J] = Rand.uniform(P);
  }
  return Poly;
}

PublicKey KeyGenerator::makePublicKey() {
  size_t L = Ctx.chainLength();
  PublicKey Key;
  Key.A = sampleUniform(L, /*HasSpecial=*/false);
  RnsPoly E = sampleNoise(L, /*HasSpecial=*/false);
  E.toNtt();
  RnsPoly S = Secret.S.restrictedCopy(L, /*KeepSpecial=*/false);
  // b = -(a*s + e).
  Key.B = Key.A.mul(S);
  Key.B.addInPlace(E);
  Key.B.negateInPlace();
  return Key;
}

SwitchKey KeyGenerator::makeSwitchKey(const RnsPoly &Source) {
  assert(Source.isNtt() && Source.hasSpecial() &&
         Source.numQ() == Ctx.chainLength() &&
         "switch-key source must be NTT over the full basis");
  size_t L = Ctx.chainLength();
  size_t N = Ctx.degree();
  uint64_t P = Ctx.specialModulus();

  SwitchKey Key;
  Key.Parts.reserve(L);
  for (size_t Digit = 0; Digit < L; ++Digit) {
    RnsPoly A = sampleUniform(L, /*HasSpecial=*/true);
    RnsPoly E = sampleNoise(L, /*HasSpecial=*/true);
    E.toNtt();
    // b = -(a*s + e) + P * g_digit * source; the gadget g_digit is 1 mod
    // q_digit and 0 mod every other modulus, so only one component of the
    // source term is nonzero.
    RnsPoly B = A.mul(Secret.S);
    B.addInPlace(E);
    B.negateInPlace();
    uint64_t QD = Ctx.qModulus(Digit);
    uint64_t PModQ = P % QD;
    uint64_t PModQShoup = shoupPrecompute(PModQ, QD);
    uint64_t *BComp = B.component(Digit);
    const uint64_t *SrcComp = Source.component(Digit);
    for (size_t J = 0; J < N; ++J)
      BComp[J] = addMod(
          BComp[J], mulModShoup(SrcComp[J], PModQ, PModQShoup, QD), QD);
    Key.Parts.emplace_back(std::move(B), std::move(A));
  }
  return Key;
}

SwitchKey KeyGenerator::makeRelinKey() {
  RnsPoly S2 = Secret.S.mul(Secret.S);
  return makeSwitchKey(S2);
}

SwitchKey KeyGenerator::makeGaloisKey(uint64_t Galois) {
  RnsPoly S = Secret.S;
  S.toCoeff();
  RnsPoly SG = S.automorphism(Galois);
  SG.toNtt();
  return makeSwitchKey(SG);
}

SwitchKey KeyGenerator::truncateKey(const SwitchKey &Key, size_t MaxNumQ) {
  if (MaxNumQ == 0 || MaxNumQ >= Key.Parts.size())
    return Key;
  SwitchKey Out;
  Out.Parts.reserve(MaxNumQ);
  for (size_t I = 0; I < MaxNumQ; ++I)
    Out.Parts.emplace_back(
        Key.Parts[I].first.restrictedCopy(MaxNumQ, /*KeepSpecial=*/true),
        Key.Parts[I].second.restrictedCopy(MaxNumQ, /*KeepSpecial=*/true));
  return Out;
}

SwitchKey KeyGenerator::makeRotationKey(int64_t Steps, size_t MaxNumQ) {
  return truncateKey(
      makeGaloisKey(galoisForRotation(Ctx.degree(), Ctx.slots(), Steps)),
      MaxNumQ);
}

void KeyGenerator::fillGaloisKeys(EvalKeys &Keys,
                                  const std::vector<uint64_t> &Elements) {
  for (uint64_t Galois : Elements) {
    if (Galois == 1 || Keys.Rotations.count(Galois))
      continue;
    Keys.Rotations.emplace(Galois, makeGaloisKey(Galois));
  }
}

SwitchKey KeyGenerator::makeConjugationKey() {
  return makeGaloisKey(galoisForConjugation(Ctx.degree()));
}

void KeyGenerator::fillEvalKeys(EvalKeys &Keys,
                                const std::vector<int64_t> &Steps,
                                bool NeedRelin, bool NeedConjugate) {
  if (NeedRelin && !Keys.HasRelin) {
    Keys.Relin = makeRelinKey();
    Keys.HasRelin = true;
  }
  if (NeedConjugate && !Keys.HasConjugate) {
    Keys.Conjugate = makeConjugationKey();
    Keys.HasConjugate = true;
  }
  for (int64_t Step : Steps) {
    uint64_t Galois = galoisForRotation(Ctx.degree(), Ctx.slots(), Step);
    if (Galois == 1 || Keys.Rotations.count(Galois))
      continue;
    Keys.Rotations.emplace(Galois, makeRotationKey(Step));
  }
}

//===----------------------------------------------------------------------===//
// RotationKeyCache
//===----------------------------------------------------------------------===//

RotationKeyCache::RotationKeyCache(const Context &Ctx, KeyGenerator &Gen)
    : Ctx(Ctx), Gen(Gen) {
  // Cold keys are the cheapest memory to give back under pressure: they
  // regenerate transparently on next use.
  ReclaimerId = ResourceGovernor::instance().addReclaimer(
      /*Priority=*/0, "rotation-key-cache",
      [this](size_t WantBytes) { return evictColdest(WantBytes); });
}

RotationKeyCache::~RotationKeyCache() {
  ResourceGovernor::instance().removeReclaimer(ReclaimerId);
  releaseAll();
}

uint64_t RotationKeyCache::declareRotation(int64_t Steps, size_t MaxNumQ) {
  uint64_t Galois = galoisForRotation(Ctx.degree(), Ctx.slots(), Steps);
  if (Galois == 1)
    return Galois; // rotation by 0 slots needs no key
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Galois);
  if (It == Entries.end()) {
    Entry E;
    E.IsRotation = true;
    E.Steps = Steps;
    E.MaxNumQ = MaxNumQ;
    Entries.emplace(Galois, std::move(E));
    return Galois;
  }
  // Re-declaration: keep the widest truncation ever asked for.
  Entry &E = It->second;
  widenLocked(E, MaxNumQ);
  E.IsRotation = true;
  E.Steps = Steps;
  return Galois;
}

void RotationKeyCache::declareGalois(uint64_t Galois, size_t MaxNumQ) {
  if (Galois == 1)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Galois);
  if (It == Entries.end()) {
    Entry E;
    E.IsRotation = false;
    E.MaxNumQ = MaxNumQ;
    Entries.emplace(Galois, std::move(E));
    return;
  }
  // Re-declaration widens exactly like declareRotation: a key already
  // cached (or declared) at a narrower depth must not keep serving once
  // a deeper use is announced — the release-build hot tier has no depth
  // check, so a too-shallow key would corrupt results silently.
  widenLocked(It->second, MaxNumQ);
}

void RotationKeyCache::widenLocked(Entry &E, size_t MaxNumQ) {
  // 0 = full chain is widest.
  size_t Widened =
      (MaxNumQ == 0 || E.MaxNumQ == 0) ? 0 : std::max(E.MaxNumQ, MaxNumQ);
  if (Widened == E.MaxNumQ)
    return;
  if (E.Key) {
    ResidentBytes -= E.Bytes;
    ResourceGovernor::instance().release(MemCategory::EvalKeys, E.Bytes);
    E.Key.reset();
    E.Bytes = 0;
  }
  E.MaxNumQ = Widened;
}

bool RotationKeyCache::declared(uint64_t Galois) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.count(Galois) != 0;
}

size_t RotationKeyCache::estimateBytes(size_t MaxNumQ) const {
  size_t NumQ = MaxNumQ == 0 ? Ctx.chainLength() : MaxNumQ;
  // NumQ digit pairs, each polynomial over NumQ chain moduli + special.
  return NumQ * 2 * (NumQ + 1) * Ctx.degree() * sizeof(uint64_t);
}

SwitchKey RotationKeyCache::generate(const Entry &E, uint64_t Galois) {
  if (E.IsRotation)
    return Gen.makeRotationKey(E.Steps, E.MaxNumQ);
  SwitchKey Key = Gen.makeGaloisKey(Galois);
  if (E.MaxNumQ != 0)
    Key = KeyGenerator::truncateKey(Key, E.MaxNumQ);
  return Key;
}

StatusOr<std::shared_ptr<const SwitchKey>>
RotationKeyCache::get(uint64_t Galois) {
  size_t Estimate = 0;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Galois);
    if (It == Entries.end())
      return Status::keyMissing("rotation key cache: Galois element " +
                                std::to_string(Galois) + " was never declared");
    if (It->second.Key) {
      It->second.LastUse = ++UseClock;
      Hits.fetch_add(1, std::memory_order_relaxed);
      ResourceGovernor::instance().noteKeyCacheHit();
      return It->second.Key;
    }
    Estimate = estimateBytes(It->second.MaxNumQ);
  }

  // Miss: ask the governor before generating. Outside the cache mutex -
  // the governor's reclaim pass re-enters evictColdest().
  Misses.fetch_add(1, std::memory_order_relaxed);
  ResourceGovernor::instance().noteKeyCacheMiss();
  ACE_RETURN_IF_ERROR(ResourceGovernor::instance().admit(
      Estimate, "rotation key generation (Galois " + std::to_string(Galois) +
                    ")"));

  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Galois);
  if (It == Entries.end())
    return Status::keyMissing("rotation key cache: Galois element " +
                              std::to_string(Galois) + " was never declared");
  Entry &E = It->second;
  if (E.Key) // another thread generated it while we were admitting
    return E.Key;
  // Generation holds the mutex: the KeyGenerator RNG is shared state.
  auto Key = std::make_shared<const SwitchKey>(generate(E, Galois));
  E.Bytes = Key->byteSize();
  E.Key = Key;
  E.LastUse = ++UseClock;
  ResidentBytes += E.Bytes;
  ResourceGovernor::instance().charge(MemCategory::EvalKeys, E.Bytes);
  if (CapacityBytes != 0 && ResidentBytes > CapacityBytes)
    evictColdestLocked(ResidentBytes - CapacityBytes);
  return std::shared_ptr<const SwitchKey>(Key);
}

void RotationKeyCache::setCapacityBytes(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  CapacityBytes = Bytes;
  if (CapacityBytes != 0 && ResidentBytes > CapacityBytes)
    evictColdestLocked(ResidentBytes - CapacityBytes);
}

size_t RotationKeyCache::evictColdest(size_t WantBytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return evictColdestLocked(WantBytes);
}

size_t RotationKeyCache::evictColdestLocked(size_t WantBytes) {
  size_t Released = 0;
  while (Released < WantBytes) {
    Entry *Coldest = nullptr;
    for (auto &[Galois, E] : Entries) {
      (void)Galois;
      if (!E.Key)
        continue;
      // A key another thread still holds a handle to cannot actually be
      // freed by evicting it; skip so the accounting stays honest.
      if (E.Key.use_count() > 1)
        continue;
      if (!Coldest || E.LastUse < Coldest->LastUse)
        Coldest = &E;
    }
    if (!Coldest)
      break;
    Released += Coldest->Bytes;
    ResidentBytes -= Coldest->Bytes;
    ResourceGovernor::instance().release(MemCategory::EvalKeys,
                                         Coldest->Bytes);
    ResourceGovernor::instance().noteKeyCacheEviction();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    Coldest->Key.reset();
    Coldest->Bytes = 0;
  }
  return Released;
}

size_t RotationKeyCache::releaseAll() {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Released = 0;
  for (auto &[Galois, E] : Entries) {
    (void)Galois;
    if (!E.Key)
      continue;
    Released += E.Bytes;
    ResidentBytes -= E.Bytes;
    ResourceGovernor::instance().release(MemCategory::EvalKeys, E.Bytes);
    E.Key.reset();
    E.Bytes = 0;
  }
  return Released;
}

RotationKeyCache::Stats RotationKeyCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.ResidentBytes = ResidentBytes;
  S.DeclaredCount = Entries.size();
  for (const auto &[Galois, E] : Entries) {
    (void)Galois;
    if (E.Key)
      ++S.ResidentCount;
  }
  return S;
}
