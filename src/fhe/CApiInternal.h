//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C++-side plumbing shared by the C API translation units. Every flat C
/// surface of the project (fhe/CApi.cpp, service/ServiceCApi.cpp) reports
/// failures through ONE thread-local error channel - ace_last_error() /
/// ace_last_error_message() - so a generated program or service client
/// checks errors the same way regardless of which library the failing
/// call lived in. These helpers are not part of the public C API.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_CAPIINTERNAL_H
#define ACE_FHE_CAPIINTERNAL_H

#include "fhe/CApi.h"
#include "support/Status.h"

#include <string>

namespace ace {
namespace capi {

/// Maps the C++ error code onto the C enum.
AceErrorCode toCErrorCode(ErrorCode Code);

/// Records \p S as the calling thread's last error (ace_last_error).
void setLastStatus(const Status &S);

/// Records an explicit code/message pair as the thread's last error.
void setLastErrorCode(AceErrorCode Code, std::string Message);

} // namespace capi
} // namespace ace

#endif // ACE_FHE_CAPIINTERNAL_H
