//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plaintext and ciphertext value types. A Plaintext holds one RNS
/// polynomial; a Ciphertext holds two (or, transiently after a
/// ciphertext-ciphertext product, three) polynomials. Both carry the CKKS
/// scale and the logical slot count. These types correspond one-to-one to
/// the Plain / Cipher / Cipher3 types of the SIHE and CKKS IRs (paper
/// Tables 5 and 6).
///
//===----------------------------------------------------------------------===//

#ifndef ACE_FHE_CIPHER_H
#define ACE_FHE_CIPHER_H

#include "fhe/RnsPoly.h"
#include "support/Status.h"

#include <cassert>
#include <vector>

namespace ace {
namespace fhe {

/// An encoded (but not encrypted) message: one polynomial plus metadata.
struct Plaintext {
  RnsPoly Poly;
  double Scale = 0.0;
  size_t Slots = 0;

  size_t numQ() const { return Poly.numQ(); }
  size_t byteSize() const { return Poly.byteSize(); }
};

/// An RLWE ciphertext: k polynomials (k = 2 normally, 3 after an
/// unrelinearized multiplication - the paper's Cipher3), a scale, and the
/// logical slot count.
struct Ciphertext {
  std::vector<RnsPoly> Polys;
  double Scale = 0.0;
  size_t Slots = 0;

  /// Number of polynomial components (2 = Cipher, 3 = Cipher3).
  size_t size() const { return Polys.size(); }

  /// Active chain-prime count; the compiler's "level" is numQ() - 1.
  size_t numQ() const {
    assert(!Polys.empty() && "empty ciphertext");
    return Polys[0].numQ();
  }

  /// Remaining multiplicative depth (rescales) before q_0 is reached.
  size_t level() const { return numQ() - 1; }

  size_t byteSize() const {
    size_t Sum = 0;
    for (const auto &P : Polys)
      Sum += P.byteSize();
    return Sum;
  }
};

/// Release-mode integrity check of a ciphertext against its context:
/// polynomial count in {2, 3}, consistent per-polynomial prime counts
/// within the chain, NTT form without special component, the context's
/// slot count, and a finite positive scale. Returns a Status naming the
/// offending value so corrupted metadata surfaces as a recoverable error
/// instead of undefined behavior. \p What names the operation for the
/// diagnostic. (Defined in Evaluator.cpp.)
Status validateCiphertext(const Context &Ctx, const Ciphertext &A,
                          const char *What);

} // namespace fhe
} // namespace ace

#endif // ACE_FHE_CIPHER_H
