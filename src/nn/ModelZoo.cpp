//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "nn/ModelZoo.h"

#include "support/Rng.h"
#include "support/Status.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::nn;
using onnx::Attribute;
using onnx::Graph;
using onnx::Model;
using onnx::Node;
using onnx::OpKind;

Dataset ace::nn::makeSyntheticDataset(const std::vector<int64_t> &Shape,
                                      int Classes, int Count,
                                      double NoiseSigma, uint64_t Seed) {
  Rng R(Seed);
  Dataset D;
  int64_t Elements = 1;
  for (int64_t S : Shape)
    Elements *= S;

  for (int K = 0; K < Classes; ++K) {
    Tensor P;
    P.Shape = Shape;
    P.Values.resize(Elements);
    for (auto &V : P.Values)
      V = static_cast<float>(R.uniformReal(-0.8, 0.8));
    D.Prototypes.push_back(std::move(P));
  }
  for (int I = 0; I < Count; ++I) {
    int K = static_cast<int>(R.uniform(Classes));
    Tensor X = D.Prototypes[K];
    for (auto &V : X.Values) {
      V += static_cast<float>(R.gaussian() * NoiseSigma);
      V = std::fmax(-1.0f, std::fmin(1.0f, V));
    }
    D.Images.push_back(std::move(X));
    D.Labels.push_back(K);
  }
  return D;
}

namespace {

/// Incrementally builds a graph with named values and random weights.
struct GraphBuilder {
  Graph &G;
  Rng R;
  int Counter = 0;

  std::string fresh(const std::string &Stem) {
    return Stem + "_" + std::to_string(Counter++);
  }

  std::string weights(const std::string &Name, std::vector<int64_t> Shape,
                      double Sigma) {
    onnx::TensorData T;
    T.Shape = std::move(Shape);
    T.Values.resize(T.elementCount());
    for (auto &V : T.Values)
      V = static_cast<float>(R.gaussian() * Sigma);
    G.Initializers.emplace(Name, std::move(T));
    return Name;
  }

  std::string conv(const std::string &In, int64_t CI, int64_t CO,
                   int64_t K, int64_t Stride, int64_t Pad) {
    std::string Out = fresh("conv");
    double Sigma = std::sqrt(2.0 / (CI * K * K)) * 0.7;
    Node N;
    N.Kind = OpKind::OK_Conv;
    N.Name = Out;
    N.Inputs = {In, weights(Out + ".w", {CO, CI, K, K}, Sigma),
                weights(Out + ".b", {CO}, 0.05)};
    N.Outputs = {Out};
    N.Attributes["strides"] = Attribute{{Stride, Stride}, {}};
    N.Attributes["pads"] = Attribute{{Pad, Pad, Pad, Pad}, {}};
    N.Attributes["kernel_shape"] = Attribute{{K, K}, {}};
    G.Nodes.push_back(std::move(N));
    return Out;
  }

  std::string batchNorm(const std::string &In, int64_t C) {
    std::string Out = fresh("bn");
    // Near-identity statistics: exercises folding without a training run.
    onnx::TensorData Scale, Bias, Mean, Var;
    Scale.Shape = Bias.Shape = Mean.Shape = Var.Shape = {C};
    for (int64_t I = 0; I < C; ++I) {
      Scale.Values.push_back(static_cast<float>(R.uniformReal(0.8, 1.2)));
      Bias.Values.push_back(static_cast<float>(R.uniformReal(-0.05, 0.05)));
      Mean.Values.push_back(0.0f);
      Var.Values.push_back(1.0f);
    }
    G.Initializers.emplace(Out + ".scale", std::move(Scale));
    G.Initializers.emplace(Out + ".bias", std::move(Bias));
    G.Initializers.emplace(Out + ".mean", std::move(Mean));
    G.Initializers.emplace(Out + ".var", std::move(Var));
    Node N;
    N.Kind = OpKind::OK_BatchNormalization;
    N.Name = Out;
    N.Inputs = {In, Out + ".scale", Out + ".bias", Out + ".mean",
                Out + ".var"};
    N.Outputs = {Out};
    N.Attributes["epsilon"] = Attribute{{}, {1e-5f}};
    G.Nodes.push_back(std::move(N));
    return Out;
  }

  std::string unary(OpKind Kind, const std::string &In,
                    const std::string &Stem) {
    std::string Out = fresh(Stem);
    Node N;
    N.Kind = Kind;
    N.Name = Out;
    N.Inputs = {In};
    N.Outputs = {Out};
    G.Nodes.push_back(std::move(N));
    return Out;
  }

  std::string add(const std::string &A, const std::string &B) {
    std::string Out = fresh("res");
    Node N;
    N.Kind = OpKind::OK_Add;
    N.Name = Out;
    N.Inputs = {A, B};
    N.Outputs = {Out};
    G.Nodes.push_back(std::move(N));
    return Out;
  }

  std::string avgPool(const std::string &In, int64_t K) {
    std::string Out = fresh("pool");
    Node N;
    N.Kind = OpKind::OK_AveragePool;
    N.Name = Out;
    N.Inputs = {In};
    N.Outputs = {Out};
    N.Attributes["kernel_shape"] = Attribute{{K, K}, {}};
    N.Attributes["strides"] = Attribute{{K, K}, {}};
    G.Nodes.push_back(std::move(N));
    return Out;
  }

  std::string gemm(const std::string &In, int64_t C, int64_t K,
                   const std::string &Name) {
    std::string Out = Name;
    double Sigma = std::sqrt(1.0 / C);
    Node N;
    N.Kind = OpKind::OK_Gemm;
    N.Name = Out;
    N.Inputs = {In, weights(Out + ".w", {K, C}, Sigma),
                weights(Out + ".b", {K}, 0.02)};
    N.Outputs = {Out};
    N.Attributes["transB"] = Attribute{{1}, {}};
    G.Nodes.push_back(std::move(N));
    return Out;
  }
};

} // namespace

Model ace::nn::buildLinearInfer(uint64_t Seed) {
  Model M;
  M.ProducerName = "linear_infer";
  Graph &G = M.MainGraph;
  G.Name = "linear_infer";
  G.Inputs.push_back({"image", {1, 84}});
  GraphBuilder B{G, Rng(Seed)};
  std::string Out = B.gemm("image", 84, 10, "output");
  G.Outputs.push_back({Out, {1, 10}});
  return M;
}

Model ace::nn::buildMlp(const std::vector<int64_t> &Dims, uint64_t Seed) {
  assert(Dims.size() >= 2 && "MLP needs at least input and output widths");
  Model M;
  M.ProducerName = "mlp";
  Graph &G = M.MainGraph;
  G.Name = "mlp";
  G.Inputs.push_back({"x", {1, Dims[0]}});
  GraphBuilder B{G, Rng(Seed)};
  std::string Cur = "x";
  for (size_t I = 1; I < Dims.size(); ++I) {
    Cur = B.gemm(Cur, Dims[I - 1], Dims[I],
                 "fc" + std::to_string(I));
    if (I + 1 < Dims.size())
      Cur = B.unary(OpKind::OK_Relu, Cur, "act");
  }
  G.Outputs.push_back({Cur, {1, Dims.back()}});
  return M;
}

Model ace::nn::buildLeNet(int64_t Classes, uint64_t Seed) {
  Model M;
  M.ProducerName = "lenet";
  Graph &G = M.MainGraph;
  G.Name = "lenet";
  G.Inputs.push_back({"image", {1, 1, 8, 8}});
  GraphBuilder B{G, Rng(Seed)};
  // Feature stack: the packed layout stays spatial, so the classifier
  // head reduces each channel to its base slot (global average) before
  // the flatten - the slot-packing analogue of LeNet's flatten.
  std::string Cur = B.conv("image", 1, 4, 3, 1, 1);
  Cur = B.unary(OpKind::OK_Relu, Cur, "act");
  Cur = B.avgPool(Cur, 2);
  Cur = B.conv(Cur, 4, 8, 3, 1, 1);
  Cur = B.unary(OpKind::OK_Relu, Cur, "act");
  Cur = B.avgPool(Cur, 2);
  Cur = B.unary(OpKind::OK_GlobalAveragePool, Cur, "gap");
  Cur = B.unary(OpKind::OK_Flatten, Cur, "flat");
  // Head widths stay within the conv stack's channel count (8): a wider
  // flat layer would pad the channel grid past the logical channels, and
  // the garbage the conv fan leaves there exceeds the bootstrap range of
  // the following ReLU (bootstrapping is not slot-local; see
  // docs/compiler.md "Layout legality").
  assert(Classes <= 8 && "lenet head is capped by the channel capacity");
  Cur = B.gemm(Cur, 8, 8, "fc1");
  Cur = B.unary(OpKind::OK_Relu, Cur, "act");
  Cur = B.gemm(Cur, 8, Classes, "fc2");
  G.Outputs.push_back({Cur, {1, Classes}});
  return M;
}

std::vector<NanoResNetSpec> ace::nn::paperModelSpecs() {
  std::vector<NanoResNetSpec> Specs;
  auto Make = [&](const char *Name, int Blocks, int64_t Classes) {
    NanoResNetSpec S;
    S.Name = Name;
    S.BlocksPerStage = Blocks;
    S.Classes = Classes;
    return S;
  };
  Specs.push_back(Make("nano-resnet-20", 1, 8));
  Specs.push_back(Make("nano-resnet-32", 2, 8));
  // The * variant stands in for CIFAR-100: same depth, more classes.
  NanoResNetSpec Star = Make("nano-resnet-32s", 2, 16);
  Specs.push_back(Star);
  Specs.push_back(Make("nano-resnet-44", 3, 8));
  Specs.push_back(Make("nano-resnet-56", 4, 8));
  Specs.push_back(Make("nano-resnet-110", 6, 8));
  return Specs;
}

StatusOr<Model> ace::nn::buildNanoResNet(const NanoResNetSpec &Spec,
                                         const Dataset &Data,
                                         uint64_t Seed) {
  Model M;
  M.ProducerName = Spec.Name;
  Graph &G = M.MainGraph;
  G.Name = Spec.Name;
  G.Inputs.push_back(
      {"image", {1, Spec.InputChannels, Spec.InputHW, Spec.InputHW}});
  GraphBuilder B{G, Rng(Seed)};

  auto ConvBnRelu = [&](const std::string &In, int64_t CI, int64_t CO,
                        int64_t Stride, bool Relu) {
    std::string Out = B.conv(In, CI, CO, 3, Stride, 1);
    if (Spec.WithBatchNorm)
      Out = B.batchNorm(Out, CO);
    if (Relu)
      Out = B.unary(OpKind::OK_Relu, Out, "act");
    return Out;
  };

  int64_t C = Spec.Channels[0];
  std::string Cur =
      ConvBnRelu("image", Spec.InputChannels, C, 1, /*Relu=*/true);

  for (size_t Stage = 0; Stage < Spec.Channels.size(); ++Stage) {
    int64_t CO = Spec.Channels[Stage];
    for (int Block = 0; Block < Spec.BlocksPerStage; ++Block) {
      int64_t Stride = (Stage > 0 && Block == 0) ? 2 : 1;
      std::string Skip = Cur;
      if (Stride != 1 || C != CO)
        Skip = B.conv(Cur, C, CO, 1, Stride, 0); // projection shortcut
      std::string Body = ConvBnRelu(Cur, C, CO, Stride, /*Relu=*/true);
      Body = ConvBnRelu(Body, CO, CO, 1, /*Relu=*/false);
      Cur = B.unary(OpKind::OK_Relu, B.add(Body, Skip), "act");
      C = CO;
    }
  }

  Cur = B.unary(OpKind::OK_GlobalAveragePool, Cur, "gap");
  Cur = B.unary(OpKind::OK_Flatten, Cur, "flat");
  std::string Logits = B.gemm(Cur, C, Spec.Classes, "logits");
  G.Outputs.push_back({Logits, {1, Spec.Classes}});

  // Prototype readout: run the feature extractor on each prototype and
  // point the FC rows at the (normalized) prototype features.
  Graph Features = G;
  Features.Outputs = {{Cur, {1, C}}};
  onnx::TensorData &W = G.Initializers.at("logits.w");
  onnx::TensorData &Bias = G.Initializers.at("logits.b");
  std::vector<std::vector<float>> Feats;
  double MeanSq = 1e-9;
  int64_t Usable = std::min<int64_t>(
      Spec.Classes, static_cast<int64_t>(Data.Prototypes.size()));
  for (int64_t K = 0; K < Usable; ++K) {
    auto Feat = executeSingle(Features, Data.Prototypes[K]);
    if (!Feat.ok())
      return Status::error("building '" + Spec.Name +
                           "': prototype feature extraction for class " +
                           std::to_string(K) + " failed: " +
                           Feat.status().message());
    double Sq = 0;
    for (float V : Feat->Values)
      Sq += static_cast<double>(V) * V;
    MeanSq += Sq / Usable;
    Feats.push_back(Feat->Values);
  }
  // Nearest-prototype readout: argmax_k (2<f, f_k> - ||f_k||^2) picks the
  // closest prototype in feature space; one global scale keeps the
  // logits O(1) for the encrypted pipeline's normalization.
  double Scale = 1.0 / MeanSq;
  for (int64_t K = 0; K < Usable; ++K) {
    double Sq = 0;
    for (int64_t I = 0; I < C; ++I) {
      W.Values[K * C + I] =
          static_cast<float>(2.0 * Feats[K][I] * Scale);
      Sq += static_cast<double>(Feats[K][I]) * Feats[K][I];
    }
    Bias.Values[K] = static_cast<float>(-Sq * Scale);
  }
  return M;
}

double ace::nn::cleartextAccuracy(const Graph &Graph, const Dataset &Data,
                                  int MaxSamples) {
  size_t Count = Data.Images.size();
  if (MaxSamples >= 0)
    Count = std::min<size_t>(Count, MaxSamples);
  if (Count == 0)
    return 0.0;
  size_t Correct = 0;
  for (size_t I = 0; I < Count; ++I) {
    auto Out = executeSingle(Graph, Data.Images[I]);
    if (!Out.ok())
      return 0.0;
    Correct += argmax(*Out) == static_cast<size_t>(Data.Labels[I]);
  }
  return static_cast<double>(Correct) / Count;
}
