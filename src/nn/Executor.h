//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cleartext reference executor for the ONNX-equivalent operator set. This
/// is the ground truth the compiler pipeline is validated against, the
/// "unencrypted" side of the paper's Table 11 accuracy study, and the
/// engine behind ANT-ACE's unencrypted-mode instrumentation (paper
/// Sec. 5). Tensors are NCHW with batch size 1.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_NN_EXECUTOR_H
#define ACE_NN_EXECUTOR_H

#include "onnx/Model.h"

#include <map>
#include <string>
#include <vector>

namespace ace {
namespace nn {

/// A runtime tensor value (shares the model's TensorData layout).
using Tensor = onnx::TensorData;

/// Infers the shape of every value in \p G from its inputs and weights.
/// Fails on rank/attribute mismatches with a diagnostic naming the node.
StatusOr<std::map<std::string, std::vector<int64_t>>>
inferShapes(const onnx::Graph &G);

/// Evaluates \p G on the given named inputs; returns all graph outputs.
StatusOr<std::map<std::string, Tensor>>
execute(const onnx::Graph &G, const std::map<std::string, Tensor> &Inputs);

/// Convenience: single-input single-output evaluation.
StatusOr<Tensor> executeSingle(const onnx::Graph &G, const Tensor &Input);

/// Index of the maximum logit (classification decision).
size_t argmax(const Tensor &Logits);

/// Per-value maximum absolute activation reached while evaluating \p G on
/// \p Input; the compiler's ReLU calibration uses this to pick the sign
/// approximation range (paper Sec. 4.3).
StatusOr<std::map<std::string, double>>
activationBounds(const onnx::Graph &G, const Tensor &Input);

} // namespace nn
} // namespace ace

#endif // ACE_NN_EXECUTOR_H
