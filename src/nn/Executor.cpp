//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "nn/Executor.h"

#include <cassert>
#include <cmath>

using namespace ace;
using namespace ace::nn;
using onnx::Graph;
using onnx::Node;
using onnx::OpKind;

namespace {

/// Shared evaluation state: value name -> tensor.
using ValueMap = std::map<std::string, Tensor>;

int64_t dim(const std::vector<int64_t> &Shape, size_t I) {
  return I < Shape.size() ? Shape[I] : 1;
}

Status evalConv(const Node &N, ValueMap &Values) {
  const Tensor &X = Values.at(N.Inputs[0]);
  const Tensor &W = Values.at(N.Inputs[1]);
  const Tensor *B = N.Inputs.size() > 2 ? &Values.at(N.Inputs[2]) : nullptr;
  auto Strides = N.intsAttr("strides");
  auto Pads = N.intsAttr("pads");
  int64_t SH = Strides.size() > 0 ? Strides[0] : 1;
  int64_t SW = Strides.size() > 1 ? Strides[1] : 1;
  int64_t PT = Pads.size() > 0 ? Pads[0] : 0;
  int64_t PL = Pads.size() > 1 ? Pads[1] : 0;

  int64_t CI = dim(X.Shape, 1), H = dim(X.Shape, 2), WW = dim(X.Shape, 3);
  int64_t CO = W.Shape[0], KH = W.Shape[2], KW = W.Shape[3];
  if (W.Shape[1] != CI)
    return Status::error("conv '" + N.Name + "': channel mismatch");
  int64_t OH = (H + 2 * PT - KH) / SH + 1;
  int64_t OW = (WW + 2 * PL - KW) / SW + 1;

  Tensor Y;
  Y.Shape = {1, CO, OH, OW};
  Y.Values.assign(CO * OH * OW, 0.0f);
  for (int64_t Co = 0; Co < CO; ++Co) {
    float Bias = B ? B->Values[Co] : 0.0f;
    for (int64_t Oh = 0; Oh < OH; ++Oh) {
      for (int64_t Ow = 0; Ow < OW; ++Ow) {
        double Acc = Bias;
        for (int64_t Ci = 0; Ci < CI; ++Ci) {
          for (int64_t Kh = 0; Kh < KH; ++Kh) {
            int64_t Ih = Oh * SH + Kh - PT;
            if (Ih < 0 || Ih >= H)
              continue;
            for (int64_t Kw = 0; Kw < KW; ++Kw) {
              int64_t Iw = Ow * SW + Kw - PL;
              if (Iw < 0 || Iw >= WW)
                continue;
              Acc += static_cast<double>(
                         X.Values[(Ci * H + Ih) * WW + Iw]) *
                     W.Values[((Co * CI + Ci) * KH + Kh) * KW + Kw];
            }
          }
        }
        Y.Values[(Co * OH + Oh) * OW + Ow] = static_cast<float>(Acc);
      }
    }
  }
  Values[N.Outputs[0]] = std::move(Y);
  return Status::success();
}

Status evalGemm(const Node &N, ValueMap &Values) {
  const Tensor &X = Values.at(N.Inputs[0]);
  const Tensor &W = Values.at(N.Inputs[1]);
  const Tensor *B = N.Inputs.size() > 2 ? &Values.at(N.Inputs[2]) : nullptr;
  bool TransB = N.intAttr("transB", 1) != 0;
  if (!TransB)
    return Status::error("gemm '" + N.Name + "': only transB=1 supported");
  int64_t C = X.elementCount();
  int64_t K = W.Shape[0];
  if (W.Shape.size() != 2 || W.Shape[1] != C)
    return Status::error("gemm '" + N.Name + "': weight shape mismatch");

  Tensor Y;
  Y.Shape = {1, K};
  Y.Values.assign(K, 0.0f);
  for (int64_t Ko = 0; Ko < K; ++Ko) {
    double Acc = B ? B->Values[Ko] : 0.0f;
    for (int64_t Ci = 0; Ci < C; ++Ci)
      Acc += static_cast<double>(X.Values[Ci]) * W.Values[Ko * C + Ci];
    Y.Values[Ko] = static_cast<float>(Acc);
  }
  Values[N.Outputs[0]] = std::move(Y);
  return Status::success();
}

Status evalPool(const Node &N, ValueMap &Values, bool Global) {
  const Tensor &X = Values.at(N.Inputs[0]);
  int64_t C = dim(X.Shape, 1), H = dim(X.Shape, 2), W = dim(X.Shape, 3);
  int64_t KH = H, KW = W, SH = 1, SW = 1;
  if (!Global) {
    auto Kernel = N.intsAttr("kernel_shape");
    auto Strides = N.intsAttr("strides");
    if (Kernel.size() < 2)
      return Status::error("pool '" + N.Name + "': missing kernel_shape");
    KH = Kernel[0];
    KW = Kernel[1];
    SH = Strides.size() > 0 ? Strides[0] : KH;
    SW = Strides.size() > 1 ? Strides[1] : KW;
  }
  int64_t OH = Global ? 1 : (H - KH) / SH + 1;
  int64_t OW = Global ? 1 : (W - KW) / SW + 1;

  Tensor Y;
  Y.Shape = {1, C, OH, OW};
  Y.Values.assign(C * OH * OW, 0.0f);
  for (int64_t Ci = 0; Ci < C; ++Ci) {
    for (int64_t Oh = 0; Oh < OH; ++Oh) {
      for (int64_t Ow = 0; Ow < OW; ++Ow) {
        double Acc = 0;
        for (int64_t Kh = 0; Kh < KH; ++Kh)
          for (int64_t Kw = 0; Kw < KW; ++Kw)
            Acc += X.Values[(Ci * H + Oh * SH + Kh) * W + Ow * SW + Kw];
        Y.Values[(Ci * OH + Oh) * OW + Ow] =
            static_cast<float>(Acc / (KH * KW));
      }
    }
  }
  Values[N.Outputs[0]] = std::move(Y);
  return Status::success();
}

Status evalBatchNorm(const Node &N, ValueMap &Values) {
  const Tensor &X = Values.at(N.Inputs[0]);
  const Tensor &Scale = Values.at(N.Inputs[1]);
  const Tensor &Bias = Values.at(N.Inputs[2]);
  const Tensor &Mean = Values.at(N.Inputs[3]);
  const Tensor &Var = Values.at(N.Inputs[4]);
  float Eps = N.floatAttr("epsilon", 1e-5f);
  int64_t C = dim(X.Shape, 1), H = dim(X.Shape, 2), W = dim(X.Shape, 3);

  Tensor Y;
  Y.Shape = X.Shape;
  Y.Values.resize(X.Values.size());
  for (int64_t Ci = 0; Ci < C; ++Ci) {
    float Inv = 1.0f / std::sqrt(Var.Values[Ci] + Eps);
    float A = Scale.Values[Ci] * Inv;
    float B = Bias.Values[Ci] - Mean.Values[Ci] * A;
    for (int64_t I = 0; I < H * W; ++I)
      Y.Values[Ci * H * W + I] = A * X.Values[Ci * H * W + I] + B;
  }
  Values[N.Outputs[0]] = std::move(Y);
  return Status::success();
}

Status evalStridedSlice(const Node &N, ValueMap &Values) {
  // Paper Table 3 semantics: d = data, i = start index, l = slice size,
  // t = stride, over the flattened value vector.
  const Tensor &X = Values.at(N.Inputs[0]);
  int64_t Start = N.intAttr("start", 0);
  int64_t Size = N.intAttr("size", X.elementCount());
  int64_t Stride = N.intAttr("stride", 1);
  if (Start < 0 || Stride < 1 ||
      Start + (Size - 1) * Stride >= X.elementCount())
    return Status::error("strided_slice '" + N.Name + "': out of range");
  Tensor Y;
  Y.Shape = {1, Size};
  Y.Values.resize(Size);
  for (int64_t I = 0; I < Size; ++I)
    Y.Values[I] = X.Values[Start + I * Stride];
  Values[N.Outputs[0]] = std::move(Y);
  return Status::success();
}

Status evalNode(const Node &N, ValueMap &Values) {
  for (const auto &In : N.Inputs)
    if (!Values.count(In))
      return Status::error("node '" + N.Name + "': undefined input '" + In +
                           "'");
  switch (N.Kind) {
  case OpKind::OK_Conv:
    return evalConv(N, Values);
  case OpKind::OK_Gemm:
    return evalGemm(N, Values);
  case OpKind::OK_Relu: {
    Tensor Y = Values.at(N.Inputs[0]);
    for (auto &V : Y.Values)
      V = V > 0 ? V : 0;
    Values[N.Outputs[0]] = std::move(Y);
    return Status::success();
  }
  case OpKind::OK_Add: {
    const Tensor &A = Values.at(N.Inputs[0]);
    const Tensor &B = Values.at(N.Inputs[1]);
    if (A.Values.size() != B.Values.size())
      return Status::error("add '" + N.Name + "': operand size mismatch");
    Tensor Y = A;
    for (size_t I = 0; I < Y.Values.size(); ++I)
      Y.Values[I] += B.Values[I];
    Values[N.Outputs[0]] = std::move(Y);
    return Status::success();
  }
  case OpKind::OK_AveragePool:
    return evalPool(N, Values, /*Global=*/false);
  case OpKind::OK_GlobalAveragePool:
    return evalPool(N, Values, /*Global=*/true);
  case OpKind::OK_Flatten: {
    Tensor Y = Values.at(N.Inputs[0]);
    Y.Shape = {1, static_cast<int64_t>(Y.Values.size())};
    Values[N.Outputs[0]] = std::move(Y);
    return Status::success();
  }
  case OpKind::OK_Reshape: {
    Tensor Y = Values.at(N.Inputs[0]);
    const Tensor &ShapeT = Values.at(N.Inputs[1]);
    std::vector<int64_t> NewShape;
    for (float V : ShapeT.Values)
      NewShape.push_back(static_cast<int64_t>(V));
    Y.Shape = NewShape;
    Values[N.Outputs[0]] = std::move(Y);
    return Status::success();
  }
  case OpKind::OK_BatchNormalization:
    return evalBatchNorm(N, Values);
  case OpKind::OK_StridedSlice:
    return evalStridedSlice(N, Values);
  }
  return Status::error("node '" + N.Name + "': unsupported operator");
}

} // namespace

StatusOr<std::map<std::string, Tensor>>
ace::nn::execute(const Graph &G, const std::map<std::string, Tensor> &Inputs) {
  ValueMap Values;
  for (const auto &[Name, T] : G.Initializers)
    Values[Name] = T;
  for (const auto &[Name, T] : Inputs)
    Values[Name] = T;
  for (const Node &N : G.Nodes)
    if (Status S = evalNode(N, Values))
      return S;
  std::map<std::string, Tensor> Outputs;
  for (const auto &V : G.Outputs) {
    auto It = Values.find(V.Name);
    if (It == Values.end())
      return Status::error("graph output '" + V.Name + "' never produced");
    Outputs[V.Name] = It->second;
  }
  return Outputs;
}

StatusOr<Tensor> ace::nn::executeSingle(const Graph &G, const Tensor &Input) {
  if (G.Inputs.size() != 1 || G.Outputs.size() != 1)
    return Status::error("executeSingle requires one input and one output");
  auto Result = execute(G, {{G.Inputs[0].Name, Input}});
  if (!Result.ok())
    return Result.status();
  return Result->at(G.Outputs[0].Name);
}

size_t ace::nn::argmax(const Tensor &Logits) {
  size_t Best = 0;
  for (size_t I = 1; I < Logits.Values.size(); ++I)
    if (Logits.Values[I] > Logits.Values[Best])
      Best = I;
  return Best;
}

StatusOr<std::map<std::string, std::vector<int64_t>>>
ace::nn::inferShapes(const Graph &G) {
  // Run the executor on a zero input; shapes fall out of the values. This
  // trades a little compile time for one authoritative shape definition.
  std::map<std::string, Tensor> Inputs;
  for (const auto &V : G.Inputs) {
    Tensor T;
    T.Shape = V.Shape;
    T.Values.assign(T.elementCount(), 0.0f);
    Inputs[V.Name] = std::move(T);
  }
  ValueMap Values;
  for (const auto &[Name, T] : G.Initializers)
    Values[Name] = T;
  for (const auto &[Name, T] : Inputs)
    Values[Name] = T;
  for (const Node &N : G.Nodes)
    if (Status S = evalNode(N, Values))
      return S;
  std::map<std::string, std::vector<int64_t>> Shapes;
  for (const auto &[Name, T] : Values)
    Shapes[Name] = T.Shape;
  return Shapes;
}

StatusOr<std::map<std::string, double>>
ace::nn::activationBounds(const Graph &G, const Tensor &Input) {
  ValueMap Values;
  for (const auto &[Name, T] : G.Initializers)
    Values[Name] = T;
  if (G.Inputs.size() != 1)
    return Status::error("activationBounds requires one graph input");
  Values[G.Inputs[0].Name] = Input;
  std::map<std::string, double> Bounds;
  for (const Node &N : G.Nodes) {
    if (Status S = evalNode(N, Values))
      return S;
    for (const auto &Out : N.Outputs) {
      double Max = 0;
      for (float V : Values.at(Out).Values)
        Max = std::fmax(Max, std::fabs(V));
      auto [It, Inserted] = Bounds.emplace(Out, Max);
      if (!Inserted)
        It->second = std::fmax(It->second, Max);
    }
  }
  for (const auto &V : G.Inputs) {
    double Max = 0;
    for (float X : Values.at(V.Name).Values)
      Max = std::fmax(Max, std::fabs(X));
    Bounds[V.Name] = Max;
  }
  return Bounds;
}
