//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model builders and synthetic datasets. The paper evaluates pre-trained
/// ResNet-20/32/44/56/110 on CIFAR-10/100; offline we build the same
/// topology family at reduced scale ("nano-ResNets") with constructed
/// weights: random He-initialized convolutions (optionally with
/// BatchNormalization, which the frontend folds) and a final
/// nearest-prototype readout computed from the features of class
/// prototypes, so cleartext accuracy is high and non-trivial. The
/// synthetic dataset draws noisy samples around the same prototypes.
/// Encrypted-vs-cleartext accuracy (paper Table 11) then measures exactly
/// what the paper measures: CKKS precision plus ReLU-approximation error.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_NN_MODELZOO_H
#define ACE_NN_MODELZOO_H

#include "nn/Executor.h"
#include "onnx/Model.h"

#include <string>
#include <vector>

namespace ace {
namespace nn {

/// A labeled synthetic classification dataset.
struct Dataset {
  std::vector<Tensor> Images;
  std::vector<int> Labels;
  /// The class prototypes the samples were drawn around.
  std::vector<Tensor> Prototypes;
};

/// Draws \p Count samples of \p Classes prototype-centered clusters with
/// the given image shape (values within [-1, 1]).
Dataset makeSyntheticDataset(const std::vector<int64_t> &Shape, int Classes,
                             int Count, double NoiseSigma, uint64_t Seed);

/// The paper's Figure 4 motivating model: a single 10x84 gemv
/// ("linear_infer").
onnx::Model buildLinearInfer(uint64_t Seed);

/// A gemm/relu MLP with the given layer widths (first = input dim).
onnx::Model buildMlp(const std::vector<int64_t> &Dims, uint64_t Seed);

/// A LeNet-shaped convnet at toy scale: two conv/relu/avgpool stages, a
/// global spatial average, then two fully connected layers. Mixes the
/// channel-mode gemm path (conv feature stack) with the nonlinear path,
/// so op-budget contracts pin both. Classifies 8x8 single-channel
/// images into \p Classes classes.
onnx::Model buildLeNet(int64_t Classes, uint64_t Seed);

/// Nano-ResNet configuration (CIFAR-style topology at reduced scale).
struct NanoResNetSpec {
  std::string Name = "nano-resnet-20";
  /// Residual blocks per stage; {1,2,3,4,6} model the paper's
  /// ResNet-{20,32,44,56,110} depth progression.
  int BlocksPerStage = 1;
  /// Channel widths of the three stages.
  std::vector<int64_t> Channels = {2, 4, 8};
  int64_t InputHW = 8;
  int64_t InputChannels = 3;
  int64_t Classes = 8;
  bool WithBatchNorm = true;
};

/// The six evaluation models mirroring paper Figs. 5-7 / Table 11:
/// nano-resnet-{20,32,32*,44,56,110} (the * variant has more classes,
/// standing in for CIFAR-100).
std::vector<NanoResNetSpec> paperModelSpecs();

/// Builds a nano-ResNet and its matching dataset; the final FC layer is
/// the prototype readout over \p Dataset.Prototypes. Returns an error
/// Status (instead of aborting) when the prototype feature extraction
/// fails - e.g. a malformed spec or dataset.
StatusOr<onnx::Model> buildNanoResNet(const NanoResNetSpec &Spec,
                                      const Dataset &Data, uint64_t Seed);

/// Classification accuracy of \p Graph on \p Data using the cleartext
/// executor.
double cleartextAccuracy(const onnx::Graph &Graph, const Dataset &Data,
                         int MaxSamples = -1);

} // namespace nn
} // namespace ace

#endif // ACE_NN_MODELZOO_H
