//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Expert" baseline of the paper's evaluation (Sec. 6, Figs. 6-7):
/// a hand-tuned-style encrypted ResNet in the manner of Lee et al. [35].
/// The baseline shares the runtime and the packing strategy (multiplexed
/// convolutions), but lacks the compiler's automation:
///
///  - full power-of-two rotation-key set; arbitrary rotations decompose
///    into multiple key switches (more work, far more key memory),
///  - bootstrapping always refreshes to the chain top plus a
///    conservatively hand-budgeted level margin,
///  - eager rescaling after every multiplication (no delayed placement),
///
/// which is exactly the gap the paper attributes its Conv/Bootstrap/ReLU
/// speedups and its 84.8% key-memory saving to.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_EXPERT_EXPERTBASELINE_H
#define ACE_EXPERT_EXPERTBASELINE_H

#include "air/Pass.h"

namespace ace {
namespace expert {

/// Derives the Expert baseline's options from \p Base: same scheme and
/// scale configuration, all compiler automations disabled.
air::CompileOptions expertOptions(air::CompileOptions Base);

} // namespace expert
} // namespace ace

#endif // ACE_EXPERT_EXPERTBASELINE_H
