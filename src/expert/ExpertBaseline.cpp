//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "expert/ExpertBaseline.h"

using namespace ace;

air::CompileOptions expert::expertOptions(air::CompileOptions Base) {
  Base.EnableRotationKeyAnalysis = false;
  Base.EnableMinimalBootstrapLevel = false;
  Base.EnableRescalePlacement = false;
  Base.ExpertMarginLevels = 3;
  return Base;
}
