//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ONNX-equivalent in-memory model format (paper Sec. 3.1). The real
/// ANT-ACE consumes protobuf ONNX files; this reproduction mirrors the
/// ONNX graph model - nodes with named inputs/outputs, initializer
/// tensors, attributes - for exactly the operator subset of paper Table 3
/// (plus BatchNormalization, which the frontend folds). A simple text
/// serialization stands in for the protobuf wire format so that models
/// can round-trip through files.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_ONNX_MODEL_H
#define ACE_ONNX_MODEL_H

#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ace {
namespace onnx {

/// A dense float tensor (weights, biases, BN statistics).
struct TensorData {
  std::vector<int64_t> Shape;
  std::vector<float> Values;

  int64_t elementCount() const {
    int64_t N = 1;
    for (int64_t D : Shape)
      N *= D;
    return N;
  }
};

/// Operator set mirroring the ONNX operators of paper Table 3.
enum class OpKind {
  OK_Conv,
  OK_Gemm,
  OK_Relu,
  OK_AveragePool,
  OK_GlobalAveragePool,
  OK_Flatten,
  OK_Reshape,
  OK_Add,
  OK_BatchNormalization,
  OK_StridedSlice,
};

/// Operator name as it appears in serialized models ("Conv", "Gemm", ...).
const char *opKindName(OpKind Kind);

/// Parses an operator name; returns false for unknown operators.
bool parseOpKind(const std::string &Name, OpKind &Kind);

/// ONNX-style node attribute: a list of integers or floats.
struct Attribute {
  std::vector<int64_t> Ints;
  std::vector<float> Floats;
};

/// One operator application.
struct Node {
  OpKind Kind = OpKind::OK_Relu;
  std::string Name;
  std::vector<std::string> Inputs;
  std::vector<std::string> Outputs;
  std::map<std::string, Attribute> Attributes;

  /// Attribute accessors with defaults.
  int64_t intAttr(const std::string &Key, int64_t Default) const;
  std::vector<int64_t> intsAttr(const std::string &Key) const;
  float floatAttr(const std::string &Key, float Default) const;
};

/// Typed graph input/output.
struct ValueInfo {
  std::string Name;
  std::vector<int64_t> Shape;
};

/// An inference graph: a topologically ordered node list plus weights.
struct Graph {
  std::string Name;
  std::vector<Node> Nodes;
  std::map<std::string, TensorData> Initializers;
  std::vector<ValueInfo> Inputs;
  std::vector<ValueInfo> Outputs;

  /// True when \p Name refers to a weight (initializer) rather than a
  /// runtime value.
  bool isInitializer(const std::string &Name) const {
    return Initializers.count(Name) != 0;
  }
};

/// A model: one graph plus format metadata.
struct Model {
  int64_t IrVersion = 8;
  std::string ProducerName = "ace-model-builder";
  Graph MainGraph;

  /// Total weight parameters across all initializers.
  int64_t parameterCount() const {
    int64_t N = 0;
    for (const auto &[Name, T] : MainGraph.Initializers)
      N += T.elementCount();
    return N;
  }
};

/// Serializes \p M into the textual model format.
std::string serializeModel(const Model &M);

/// Parses a textual model; reports malformed input via Status.
StatusOr<Model> parseModel(const std::string &Text);

/// Writes \p M to \p Path.
Status saveModel(const Model &M, const std::string &Path);

/// Reads a model from \p Path.
StatusOr<Model> loadModel(const std::string &Path);

} // namespace onnx
} // namespace ace

#endif // ACE_ONNX_MODEL_H
