//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "onnx/Model.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

using namespace ace;
using namespace ace::onnx;

const char *ace::onnx::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::OK_Conv:
    return "Conv";
  case OpKind::OK_Gemm:
    return "Gemm";
  case OpKind::OK_Relu:
    return "Relu";
  case OpKind::OK_AveragePool:
    return "AveragePool";
  case OpKind::OK_GlobalAveragePool:
    return "GlobalAveragePool";
  case OpKind::OK_Flatten:
    return "Flatten";
  case OpKind::OK_Reshape:
    return "Reshape";
  case OpKind::OK_Add:
    return "Add";
  case OpKind::OK_BatchNormalization:
    return "BatchNormalization";
  case OpKind::OK_StridedSlice:
    return "StridedSlice";
  }
  return "Unknown";
}

bool ace::onnx::parseOpKind(const std::string &Name, OpKind &Kind) {
  for (OpKind K :
       {OpKind::OK_Conv, OpKind::OK_Gemm, OpKind::OK_Relu,
        OpKind::OK_AveragePool, OpKind::OK_GlobalAveragePool,
        OpKind::OK_Flatten, OpKind::OK_Reshape, OpKind::OK_Add,
        OpKind::OK_BatchNormalization, OpKind::OK_StridedSlice}) {
    if (Name == opKindName(K)) {
      Kind = K;
      return true;
    }
  }
  return false;
}

int64_t Node::intAttr(const std::string &Key, int64_t Default) const {
  auto It = Attributes.find(Key);
  if (It == Attributes.end() || It->second.Ints.empty())
    return Default;
  return It->second.Ints[0];
}

std::vector<int64_t> Node::intsAttr(const std::string &Key) const {
  auto It = Attributes.find(Key);
  if (It == Attributes.end())
    return {};
  return It->second.Ints;
}

float Node::floatAttr(const std::string &Key, float Default) const {
  auto It = Attributes.find(Key);
  if (It == Attributes.end() || It->second.Floats.empty())
    return Default;
  return It->second.Floats[0];
}

//===----------------------------------------------------------------------===//
// Text serialization
//===----------------------------------------------------------------------===//

static void writeNameList(std::ostringstream &Out,
                          const std::vector<std::string> &Names) {
  Out << Names.size();
  for (const auto &N : Names)
    Out << ' ' << N;
}

std::string ace::onnx::serializeModel(const Model &M) {
  std::ostringstream Out;
  Out.precision(9);
  const Graph &G = M.MainGraph;
  Out << "acemodel 1\n";
  Out << "ir_version " << M.IrVersion << "\n";
  Out << "producer " << M.ProducerName << "\n";
  Out << "graph " << (G.Name.empty() ? "main" : G.Name) << "\n";

  for (const auto &IO : {std::make_pair("input", &G.Inputs),
                         std::make_pair("output", &G.Outputs)}) {
    for (const auto &V : *IO.second) {
      Out << IO.first << ' ' << V.Name << ' ' << V.Shape.size();
      for (int64_t D : V.Shape)
        Out << ' ' << D;
      Out << "\n";
    }
  }

  for (const auto &[Name, T] : G.Initializers) {
    Out << "initializer " << Name << ' ' << T.Shape.size();
    for (int64_t D : T.Shape)
      Out << ' ' << D;
    Out << ' ' << T.Values.size();
    for (float V : T.Values)
      Out << ' ' << V;
    Out << "\n";
  }

  for (const Node &N : G.Nodes) {
    Out << "node " << opKindName(N.Kind) << ' '
        << (N.Name.empty() ? "_" : N.Name) << ' ';
    writeNameList(Out, N.Inputs);
    Out << ' ';
    writeNameList(Out, N.Outputs);
    Out << ' ' << N.Attributes.size();
    for (const auto &[Key, A] : N.Attributes) {
      Out << ' ' << Key << ' ' << A.Ints.size();
      for (int64_t I : A.Ints)
        Out << ' ' << I;
      Out << ' ' << A.Floats.size();
      for (float F : A.Floats)
        Out << ' ' << F;
    }
    Out << "\n";
  }
  Out << "end\n";
  return Out.str();
}

namespace {

// Hard caps on every count field the parser allocates from. A model file
// is attacker-controllable input (it arrives with the workload), so no
// declared size may drive an allocation before it is checked against
// these; see docs/serialization.md for the trust-boundary discipline.
constexpr size_t kMaxRank = 16;
constexpr size_t kMaxNames = 1024;        // node inputs/outputs
constexpr size_t kMaxAttrs = 256;         // attributes per node
constexpr size_t kMaxAttrValues = 1 << 16; // ints/floats per attribute
constexpr size_t kMaxTensorElements = 1 << 28;

/// Reads a count field and validates it against \p Cap before the caller
/// resizes anything with it.
Status readCount(std::istringstream &In, const char *What, size_t Cap,
                 size_t &Out) {
  // Read as signed so "-1" is rejected instead of wrapping to SIZE_MAX.
  int64_t V = 0;
  if (!(In >> V))
    return Status::dataCorrupt(std::string("truncated record: missing ") +
                               What);
  if (V < 0 || static_cast<uint64_t>(V) > Cap)
    return Status::dataCorrupt(std::string(What) + " " + std::to_string(V) +
                               " out of range [0, " + std::to_string(Cap) +
                               "]");
  Out = static_cast<size_t>(V);
  return Status::success();
}

/// Overflow-checked product of \p Shape; rejects negative dims.
Status checkedShapeElements(const std::vector<int64_t> &Shape,
                            const std::string &Name, size_t &Out) {
  uint64_t Product = 1;
  for (int64_t D : Shape) {
    if (D < 0)
      return Status::dataCorrupt("initializer '" + Name +
                                 "' has negative dimension " +
                                 std::to_string(D));
    if (D != 0 && Product > kMaxTensorElements / static_cast<uint64_t>(D))
      return Status::dataCorrupt("initializer '" + Name +
                                 "' shape product overflows the " +
                                 std::to_string(kMaxTensorElements) +
                                 "-element cap");
    Product *= static_cast<uint64_t>(D);
  }
  Out = static_cast<size_t>(Product);
  return Status::success();
}

} // namespace

StatusOr<Model> ace::onnx::parseModel(const std::string &Text) {
  std::istringstream In(Text);
  std::string Tag;
  int Version = 0;
  if (!(In >> Tag >> Version) || Tag != "acemodel" || Version != 1)
    return Status::dataCorrupt("not an acemodel file (missing header)");

  Model M;
  Graph &G = M.MainGraph;
  while (In >> Tag) {
    if (Tag == "end") {
      // Cross-reference pass: node inputs must resolve to something the
      // graph defines, and no value may be produced twice. A dangling
      // reference or duplicate definition is caught here instead of as a
      // downstream map miss deep inside the compiler.
      std::set<std::string> Defined;
      for (const auto &V : G.Inputs)
        Defined.insert(V.Name);
      for (const auto &[Name, T] : G.Initializers)
        Defined.insert(Name);
      for (const Node &N : G.Nodes)
        for (const std::string &Out : N.Outputs)
          if (!Defined.insert(Out).second)
            return Status::dataCorrupt("value '" + Out +
                                       "' is produced more than once");
      for (const Node &N : G.Nodes)
        for (const std::string &InName : N.Inputs)
          if (!Defined.count(InName))
            return Status::dataCorrupt(
                "node input '" + InName +
                "' does not resolve to a graph input, initializer, or "
                "node output");
      return M;
    }
    if (Tag == "ir_version") {
      if (!(In >> M.IrVersion))
        return Status::dataCorrupt("truncated ir_version record");
    } else if (Tag == "producer") {
      if (!(In >> M.ProducerName))
        return Status::dataCorrupt("truncated producer record");
    } else if (Tag == "graph") {
      if (!(In >> G.Name))
        return Status::dataCorrupt("truncated graph record");
    } else if (Tag == "input" || Tag == "output") {
      ValueInfo V;
      size_t Rank = 0;
      if (!(In >> V.Name))
        return Status::dataCorrupt("truncated " + Tag + " record");
      ACE_RETURN_IF_ERROR(readCount(In, "shape rank", kMaxRank, Rank));
      V.Shape.resize(Rank);
      for (auto &D : V.Shape)
        In >> D;
      if (!In)
        return Status::dataCorrupt("truncated " + Tag + " '" + V.Name +
                                   "'");
      (Tag == "input" ? G.Inputs : G.Outputs).push_back(std::move(V));
    } else if (Tag == "initializer") {
      std::string Name;
      size_t Rank = 0, Count = 0;
      if (!(In >> Name))
        return Status::dataCorrupt("truncated initializer record");
      ACE_RETURN_IF_ERROR(readCount(In, "shape rank", kMaxRank, Rank));
      TensorData T;
      T.Shape.resize(Rank);
      for (auto &D : T.Shape)
        In >> D;
      if (!In)
        return Status::dataCorrupt("truncated initializer '" + Name + "'");
      size_t Expected = 0;
      ACE_RETURN_IF_ERROR(checkedShapeElements(T.Shape, Name, Expected));
      ACE_RETURN_IF_ERROR(
          readCount(In, "value count", kMaxTensorElements, Count));
      if (Count != Expected)
        return Status::dataCorrupt(
            "initializer '" + Name + "' declares " + std::to_string(Count) +
            " values but its shape holds " + std::to_string(Expected));
      T.Values.resize(Count);
      for (auto &V : T.Values)
        In >> V;
      if (!In)
        return Status::dataCorrupt("truncated initializer '" + Name + "'");
      if (!G.Initializers.emplace(Name, std::move(T)).second)
        return Status::dataCorrupt("duplicate initializer '" + Name + "'");
    } else if (Tag == "node") {
      std::string OpName;
      Node N;
      if (!(In >> OpName >> N.Name))
        return Status::dataCorrupt("truncated node record");
      if (N.Name == "_")
        N.Name.clear();
      if (!parseOpKind(OpName, N.Kind))
        return Status::dataCorrupt("unknown operator '" + OpName + "'");
      size_t NumIn = 0, NumOut = 0, NumAttr = 0;
      ACE_RETURN_IF_ERROR(readCount(In, "input count", kMaxNames, NumIn));
      N.Inputs.resize(NumIn);
      for (auto &S : N.Inputs)
        In >> S;
      ACE_RETURN_IF_ERROR(readCount(In, "output count", kMaxNames, NumOut));
      N.Outputs.resize(NumOut);
      for (auto &S : N.Outputs)
        In >> S;
      ACE_RETURN_IF_ERROR(
          readCount(In, "attribute count", kMaxAttrs, NumAttr));
      for (size_t I = 0; I < NumAttr; ++I) {
        std::string Key;
        size_t NI = 0, NF = 0;
        if (!(In >> Key))
          return Status::dataCorrupt("truncated attribute in node '" +
                                     N.Name + "'");
        ACE_RETURN_IF_ERROR(
            readCount(In, "attribute int count", kMaxAttrValues, NI));
        Attribute A;
        A.Ints.resize(NI);
        for (auto &V : A.Ints)
          In >> V;
        ACE_RETURN_IF_ERROR(
            readCount(In, "attribute float count", kMaxAttrValues, NF));
        A.Floats.resize(NF);
        for (auto &V : A.Floats)
          In >> V;
        N.Attributes.emplace(std::move(Key), std::move(A));
      }
      if (!In)
        return Status::dataCorrupt("truncated node record");
      G.Nodes.push_back(std::move(N));
    } else {
      return Status::dataCorrupt("unknown record '" + Tag + "'");
    }
  }
  return Status::dataCorrupt("model file ended without 'end' marker");
}

Status ace::onnx::saveModel(const Model &M, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::ioError("cannot open '" + Path + "' for writing");
  Out << serializeModel(M);
  Out.flush();
  if (!Out)
    return Status::ioError("write to '" + Path + "' failed");
  return Status::success();
}

StatusOr<Model> ace::onnx::loadModel(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Status::ioError("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return Status::ioError("read from '" + Path + "' failed");
  return parseModel(Buffer.str());
}
