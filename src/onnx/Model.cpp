//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "onnx/Model.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ace;
using namespace ace::onnx;

const char *ace::onnx::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::OK_Conv:
    return "Conv";
  case OpKind::OK_Gemm:
    return "Gemm";
  case OpKind::OK_Relu:
    return "Relu";
  case OpKind::OK_AveragePool:
    return "AveragePool";
  case OpKind::OK_GlobalAveragePool:
    return "GlobalAveragePool";
  case OpKind::OK_Flatten:
    return "Flatten";
  case OpKind::OK_Reshape:
    return "Reshape";
  case OpKind::OK_Add:
    return "Add";
  case OpKind::OK_BatchNormalization:
    return "BatchNormalization";
  case OpKind::OK_StridedSlice:
    return "StridedSlice";
  }
  return "Unknown";
}

bool ace::onnx::parseOpKind(const std::string &Name, OpKind &Kind) {
  for (OpKind K :
       {OpKind::OK_Conv, OpKind::OK_Gemm, OpKind::OK_Relu,
        OpKind::OK_AveragePool, OpKind::OK_GlobalAveragePool,
        OpKind::OK_Flatten, OpKind::OK_Reshape, OpKind::OK_Add,
        OpKind::OK_BatchNormalization, OpKind::OK_StridedSlice}) {
    if (Name == opKindName(K)) {
      Kind = K;
      return true;
    }
  }
  return false;
}

int64_t Node::intAttr(const std::string &Key, int64_t Default) const {
  auto It = Attributes.find(Key);
  if (It == Attributes.end() || It->second.Ints.empty())
    return Default;
  return It->second.Ints[0];
}

std::vector<int64_t> Node::intsAttr(const std::string &Key) const {
  auto It = Attributes.find(Key);
  if (It == Attributes.end())
    return {};
  return It->second.Ints;
}

float Node::floatAttr(const std::string &Key, float Default) const {
  auto It = Attributes.find(Key);
  if (It == Attributes.end() || It->second.Floats.empty())
    return Default;
  return It->second.Floats[0];
}

//===----------------------------------------------------------------------===//
// Text serialization
//===----------------------------------------------------------------------===//

static void writeNameList(std::ostringstream &Out,
                          const std::vector<std::string> &Names) {
  Out << Names.size();
  for (const auto &N : Names)
    Out << ' ' << N;
}

std::string ace::onnx::serializeModel(const Model &M) {
  std::ostringstream Out;
  Out.precision(9);
  const Graph &G = M.MainGraph;
  Out << "acemodel 1\n";
  Out << "ir_version " << M.IrVersion << "\n";
  Out << "producer " << M.ProducerName << "\n";
  Out << "graph " << (G.Name.empty() ? "main" : G.Name) << "\n";

  for (const auto &IO : {std::make_pair("input", &G.Inputs),
                         std::make_pair("output", &G.Outputs)}) {
    for (const auto &V : *IO.second) {
      Out << IO.first << ' ' << V.Name << ' ' << V.Shape.size();
      for (int64_t D : V.Shape)
        Out << ' ' << D;
      Out << "\n";
    }
  }

  for (const auto &[Name, T] : G.Initializers) {
    Out << "initializer " << Name << ' ' << T.Shape.size();
    for (int64_t D : T.Shape)
      Out << ' ' << D;
    Out << ' ' << T.Values.size();
    for (float V : T.Values)
      Out << ' ' << V;
    Out << "\n";
  }

  for (const Node &N : G.Nodes) {
    Out << "node " << opKindName(N.Kind) << ' '
        << (N.Name.empty() ? "_" : N.Name) << ' ';
    writeNameList(Out, N.Inputs);
    Out << ' ';
    writeNameList(Out, N.Outputs);
    Out << ' ' << N.Attributes.size();
    for (const auto &[Key, A] : N.Attributes) {
      Out << ' ' << Key << ' ' << A.Ints.size();
      for (int64_t I : A.Ints)
        Out << ' ' << I;
      Out << ' ' << A.Floats.size();
      for (float F : A.Floats)
        Out << ' ' << F;
    }
    Out << "\n";
  }
  Out << "end\n";
  return Out.str();
}

StatusOr<Model> ace::onnx::parseModel(const std::string &Text) {
  std::istringstream In(Text);
  std::string Tag;
  int Version = 0;
  if (!(In >> Tag >> Version) || Tag != "acemodel" || Version != 1)
    return Status::error("not an acemodel file (missing header)");

  Model M;
  Graph &G = M.MainGraph;
  while (In >> Tag) {
    if (Tag == "end")
      return M;
    if (Tag == "ir_version") {
      In >> M.IrVersion;
    } else if (Tag == "producer") {
      In >> M.ProducerName;
    } else if (Tag == "graph") {
      In >> G.Name;
    } else if (Tag == "input" || Tag == "output") {
      ValueInfo V;
      size_t Rank = 0;
      In >> V.Name >> Rank;
      V.Shape.resize(Rank);
      for (auto &D : V.Shape)
        In >> D;
      (Tag == "input" ? G.Inputs : G.Outputs).push_back(std::move(V));
    } else if (Tag == "initializer") {
      std::string Name;
      size_t Rank = 0, Count = 0;
      In >> Name >> Rank;
      TensorData T;
      T.Shape.resize(Rank);
      for (auto &D : T.Shape)
        In >> D;
      In >> Count;
      T.Values.resize(Count);
      for (auto &V : T.Values)
        In >> V;
      if (!In)
        return Status::error("truncated initializer '" + Name + "'");
      G.Initializers.emplace(Name, std::move(T));
    } else if (Tag == "node") {
      std::string OpName;
      Node N;
      In >> OpName >> N.Name;
      if (N.Name == "_")
        N.Name.clear();
      if (!parseOpKind(OpName, N.Kind))
        return Status::error("unknown operator '" + OpName + "'");
      size_t NumIn = 0, NumOut = 0, NumAttr = 0;
      In >> NumIn;
      N.Inputs.resize(NumIn);
      for (auto &S : N.Inputs)
        In >> S;
      In >> NumOut;
      N.Outputs.resize(NumOut);
      for (auto &S : N.Outputs)
        In >> S;
      In >> NumAttr;
      for (size_t I = 0; I < NumAttr; ++I) {
        std::string Key;
        size_t NI = 0, NF = 0;
        In >> Key >> NI;
        Attribute A;
        A.Ints.resize(NI);
        for (auto &V : A.Ints)
          In >> V;
        In >> NF;
        A.Floats.resize(NF);
        for (auto &V : A.Floats)
          In >> V;
        N.Attributes.emplace(std::move(Key), std::move(A));
      }
      if (!In)
        return Status::error("truncated node record");
      G.Nodes.push_back(std::move(N));
    } else {
      return Status::error("unknown record '" + Tag + "'");
    }
  }
  return Status::error("model file ended without 'end' marker");
}

Status ace::onnx::saveModel(const Model &M, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::error("cannot open '" + Path + "' for writing");
  Out << serializeModel(M);
  return Status::success();
}

StatusOr<Model> ace::onnx::loadModel(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Status::error("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseModel(Buffer.str());
}
