//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler facade (paper Fig. 3): ONNX-equivalent model in, CKKS
/// program out, through the NN -> VECTOR -> SIHE -> CKKS pipeline with
/// per-phase timing (Figure 5). The result bundles the final IR, the
/// selected parameters (Table 10), the key-analysis summary (Figure 7),
/// and node statistics per abstraction level.
///
//===----------------------------------------------------------------------===//

#ifndef ACE_DRIVER_ACECOMPILER_H
#define ACE_DRIVER_ACECOMPILER_H

#include "air/Pass.h"
#include "nn/Executor.h"
#include "onnx/Model.h"

#include <iosfwd>
#include <memory>

namespace ace {
namespace driver {

/// Everything compilation produces.
struct CompileResult {
  air::IrFunction Program{"main"};
  air::CompileState State;
  /// Node counts after each phase (NN, VECTOR, SIHE, CKKS).
  std::map<std::string, size_t> PhaseNodeCounts;
  /// Pretty-printed IR snapshots per phase (debug/instrumentation).
  std::map<std::string, std::string> PhaseDumps;
};

/// Writes the process-wide telemetry summary (counters, ciphertext
/// health, span times, snapshots, peak RSS) to \p OS — the body behind
/// every example's --telemetry-report flag. Text by default, JSON when
/// \p Json.
void printTelemetryReport(std::ostream &OS, bool Json = false);

/// Compiles models under fixed options.
class AceCompiler {
public:
  explicit AceCompiler(air::CompileOptions Options) : Options(Options) {}

  /// Compiles \p Model; \p Calibration provides activation-bound samples
  /// (pass the dataset's images). When \p KeepDumps is set, textual IR of
  /// every phase is retained in the result.
  StatusOr<std::unique_ptr<CompileResult>>
  compile(const onnx::Model &Model,
          const std::vector<nn::Tensor> &Calibration,
          bool KeepDumps = false);

private:
  air::CompileOptions Options;
};

} // namespace driver
} // namespace ace

#endif // ACE_DRIVER_ACECOMPILER_H
