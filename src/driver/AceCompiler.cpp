//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "driver/AceCompiler.h"

#include "passes/Frontend.h"
#include "passes/NnToVector.h"
#include "passes/SiheToCkks.h"
#include "passes/VectorToSihe.h"

#include <iostream>

using namespace ace;
using namespace ace::driver;
using namespace ace::air;

StatusOr<std::unique_ptr<CompileResult>>
AceCompiler::compile(const onnx::Model &Model,
                     const std::vector<nn::Tensor> &Calibration,
                     bool KeepDumps) {
  telemetry::TraceSpan CompileSpan("compiler", "compile");
  auto Result = std::make_unique<CompileResult>();
  CompileState &State = Result->State;
  State.Options = Options;
  State.Model = &Model;
  IrFunction &F = Result->Program;

  telemetry::Telemetry &Tel = telemetry::Telemetry::instance();

  auto Snapshot = [&](const char *Phase, DialectKind Dialect) -> Status {
    Result->PhaseNodeCounts[Phase] = F.countDialect(Dialect);
    if (KeepDumps)
      Result->PhaseDumps[Phase] = printFunction(F);
    if (telemetry::enabled()) {
      Tel.recordSnapshot(std::string("compile:") + Phase);
      Tel.sampleRss("rss");
    }
    return verifyFunction(F);
  };

  // Frontend (timed as the NN phase of Figure 5).
  {
    telemetry::TraceSpan Span("phase", "NN", &State.Timing);
    if (Status S = passes::importModel(Model, Calibration, F, State))
      return S;
    if (Status S = Snapshot("NN", DialectKind::DK_Nn))
      return S;
  }

  PassManager PM;
  PM.add(std::make_unique<passes::NnToVectorPass>());
  if (Status S = PM.run(F, State))
    return S;
  if (Status S = Snapshot("VECTOR", DialectKind::DK_Vector))
    return S;

  PassManager PM2;
  PM2.add(std::make_unique<passes::VectorToSihePass>());
  if (Status S = PM2.run(F, State))
    return S;
  if (Status S = Snapshot("SIHE", DialectKind::DK_Sihe))
    return S;

  PassManager PM3;
  PM3.add(std::make_unique<passes::SiheToCkksPass>());
  if (Status S = PM3.run(F, State))
    return S;
  if (Status S = Snapshot("CKKS", DialectKind::DK_Ckks))
    return S;

  return Result;
}

void ace::driver::printTelemetryReport(std::ostream &OS, bool Json) {
  telemetry::Telemetry::instance().writeReport(OS, Json);
}
