//===----------------------------------------------------------------------===//
// Model-format tests: serialization round trips, attribute handling,
// malformed-input diagnostics.
//===----------------------------------------------------------------------===//

#include "onnx/Model.h"

#include "nn/ModelZoo.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::onnx;

namespace {

TEST(ModelTest, OpKindNamesRoundTrip) {
  for (OpKind K :
       {OpKind::OK_Conv, OpKind::OK_Gemm, OpKind::OK_Relu,
        OpKind::OK_AveragePool, OpKind::OK_GlobalAveragePool,
        OpKind::OK_Flatten, OpKind::OK_Reshape, OpKind::OK_Add,
        OpKind::OK_BatchNormalization, OpKind::OK_StridedSlice}) {
    OpKind Parsed;
    ASSERT_TRUE(parseOpKind(opKindName(K), Parsed));
    EXPECT_EQ(Parsed, K);
  }
  OpKind Dummy;
  EXPECT_FALSE(parseOpKind("Gelu", Dummy));
}

TEST(ModelTest, AttributeAccessors) {
  Node N;
  N.Attributes["strides"] = Attribute{{2, 3}, {}};
  N.Attributes["epsilon"] = Attribute{{}, {0.5f}};
  EXPECT_EQ(N.intAttr("strides", 1), 2);
  EXPECT_EQ(N.intsAttr("strides").size(), 2u);
  EXPECT_EQ(N.intAttr("missing", 7), 7);
  EXPECT_FLOAT_EQ(N.floatAttr("epsilon", 0), 0.5f);
  EXPECT_FLOAT_EQ(N.floatAttr("missing", 1.5f), 1.5f);
}

TEST(ModelTest, SerializationRoundTrip) {
  Model M = nn::buildLinearInfer(11);
  std::string Text = serializeModel(M);
  auto Back = parseModel(Text);
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  EXPECT_EQ(Back->MainGraph.Nodes.size(), M.MainGraph.Nodes.size());
  EXPECT_EQ(Back->MainGraph.Initializers.size(),
            M.MainGraph.Initializers.size());
  EXPECT_EQ(Back->parameterCount(), M.parameterCount());
  // Weight values survive to reasonable precision.
  const auto &W1 = M.MainGraph.Initializers.at("output.w");
  const auto &W2 = Back->MainGraph.Initializers.at("output.w");
  ASSERT_EQ(W1.Values.size(), W2.Values.size());
  for (size_t I = 0; I < W1.Values.size(); ++I)
    EXPECT_NEAR(W1.Values[I], W2.Values[I], 1e-6);
}

TEST(ModelTest, ResNetSerializationRoundTrip) {
  nn::NanoResNetSpec Spec;
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  nn::Dataset Data =
      nn::makeSyntheticDataset({1, 2, 4, 4}, 4, 4, 0.1, 5);
  auto MOr = nn::buildNanoResNet(Spec, Data, 7);
  ASSERT_TRUE(MOr.ok()) << MOr.status().message();
  Model M = MOr.take();
  auto Back = parseModel(serializeModel(M));
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  // Same graph must produce identical outputs.
  auto A = nn::executeSingle(M.MainGraph, Data.Images[0]);
  auto B = nn::executeSingle(Back->MainGraph, Data.Images[0]);
  ASSERT_TRUE(A.ok() && B.ok());
  for (size_t I = 0; I < A->Values.size(); ++I)
    EXPECT_NEAR(A->Values[I], B->Values[I], 1e-5);
}

TEST(ModelTest, ParserRejectsGarbage) {
  EXPECT_FALSE(parseModel("not a model").ok());
  EXPECT_FALSE(parseModel("acemodel 2\nend\n").ok());
  EXPECT_FALSE(parseModel("acemodel 1\nnode Gelu x 0 0 0\nend\n").ok());
  // Missing end marker.
  EXPECT_FALSE(parseModel("acemodel 1\ngraph g\n").ok());
}

TEST(ModelTest, SaveLoadFile) {
  Model M = nn::buildMlp({8, 4}, 3);
  ASSERT_TRUE(saveModel(M, "/tmp/ace_model_test.acemodel").ok());
  auto Back = loadModel("/tmp/ace_model_test.acemodel");
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->MainGraph.Nodes.size(), 1u);
  EXPECT_FALSE(loadModel("/tmp/ace_missing_file.acemodel").ok());
}

} // namespace
