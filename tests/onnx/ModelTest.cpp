//===----------------------------------------------------------------------===//
// Model-format tests: serialization round trips, attribute handling,
// malformed-input diagnostics.
//===----------------------------------------------------------------------===//

#include "onnx/Model.h"

#include "nn/ModelZoo.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::onnx;

namespace {

TEST(ModelTest, OpKindNamesRoundTrip) {
  for (OpKind K :
       {OpKind::OK_Conv, OpKind::OK_Gemm, OpKind::OK_Relu,
        OpKind::OK_AveragePool, OpKind::OK_GlobalAveragePool,
        OpKind::OK_Flatten, OpKind::OK_Reshape, OpKind::OK_Add,
        OpKind::OK_BatchNormalization, OpKind::OK_StridedSlice}) {
    OpKind Parsed;
    ASSERT_TRUE(parseOpKind(opKindName(K), Parsed));
    EXPECT_EQ(Parsed, K);
  }
  OpKind Dummy;
  EXPECT_FALSE(parseOpKind("Gelu", Dummy));
}

TEST(ModelTest, AttributeAccessors) {
  Node N;
  N.Attributes["strides"] = Attribute{{2, 3}, {}};
  N.Attributes["epsilon"] = Attribute{{}, {0.5f}};
  EXPECT_EQ(N.intAttr("strides", 1), 2);
  EXPECT_EQ(N.intsAttr("strides").size(), 2u);
  EXPECT_EQ(N.intAttr("missing", 7), 7);
  EXPECT_FLOAT_EQ(N.floatAttr("epsilon", 0), 0.5f);
  EXPECT_FLOAT_EQ(N.floatAttr("missing", 1.5f), 1.5f);
}

TEST(ModelTest, SerializationRoundTrip) {
  Model M = nn::buildLinearInfer(11);
  std::string Text = serializeModel(M);
  auto Back = parseModel(Text);
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  EXPECT_EQ(Back->MainGraph.Nodes.size(), M.MainGraph.Nodes.size());
  EXPECT_EQ(Back->MainGraph.Initializers.size(),
            M.MainGraph.Initializers.size());
  EXPECT_EQ(Back->parameterCount(), M.parameterCount());
  // Weight values survive to reasonable precision.
  const auto &W1 = M.MainGraph.Initializers.at("output.w");
  const auto &W2 = Back->MainGraph.Initializers.at("output.w");
  ASSERT_EQ(W1.Values.size(), W2.Values.size());
  for (size_t I = 0; I < W1.Values.size(); ++I)
    EXPECT_NEAR(W1.Values[I], W2.Values[I], 1e-6);
}

TEST(ModelTest, ResNetSerializationRoundTrip) {
  nn::NanoResNetSpec Spec;
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  nn::Dataset Data =
      nn::makeSyntheticDataset({1, 2, 4, 4}, 4, 4, 0.1, 5);
  auto MOr = nn::buildNanoResNet(Spec, Data, 7);
  ASSERT_TRUE(MOr.ok()) << MOr.status().message();
  Model M = MOr.take();
  auto Back = parseModel(serializeModel(M));
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  // Same graph must produce identical outputs.
  auto A = nn::executeSingle(M.MainGraph, Data.Images[0]);
  auto B = nn::executeSingle(Back->MainGraph, Data.Images[0]);
  ASSERT_TRUE(A.ok() && B.ok());
  for (size_t I = 0; I < A->Values.size(); ++I)
    EXPECT_NEAR(A->Values[I], B->Values[I], 1e-5);
}

TEST(ModelTest, ParserRejectsGarbage) {
  EXPECT_FALSE(parseModel("not a model").ok());
  EXPECT_FALSE(parseModel("acemodel 2\nend\n").ok());
  EXPECT_FALSE(parseModel("acemodel 1\nnode Gelu x 0 0 0\nend\n").ok());
  // Missing end marker.
  EXPECT_FALSE(parseModel("acemodel 1\ngraph g\n").ok());
}

// A minimal well-formed model the hostile-input tests below corrupt one
// record at a time.
const char *kValidModel = "acemodel 1\n"
                          "graph g\n"
                          "input x 2 1 4\n"
                          "output y 2 1 2\n"
                          "initializer w 2 2 4 8 1 1 1 1 1 1 1 1\n"
                          "node Gemm _ 2 x w 1 y 0\n"
                          "end\n";

TEST(ModelTest, ParserCrossReferencesValues) {
  ASSERT_TRUE(parseModel(kValidModel).ok());

  // A node input that nothing defines is caught at parse time, not as a
  // map miss deep inside the compiler.
  auto Dangling = parseModel("acemodel 1\n"
                             "graph g\n"
                             "input x 2 1 4\n"
                             "node Relu _ 1 bogus 1 y 0\n"
                             "end\n");
  ASSERT_FALSE(Dangling.ok());
  EXPECT_EQ(Dangling.status().code(), ErrorCode::DataCorrupt);
  EXPECT_NE(Dangling.status().message().find("does not resolve"),
            std::string::npos)
      << Dangling.status().message();

  // Two producers for one value.
  auto Dup = parseModel("acemodel 1\n"
                        "graph g\n"
                        "input x 2 1 4\n"
                        "node Relu _ 1 x 1 y 0\n"
                        "node Relu _ 1 x 1 y 0\n"
                        "end\n");
  ASSERT_FALSE(Dup.ok());
  EXPECT_NE(Dup.status().message().find("produced more than once"),
            std::string::npos);

  // Duplicate initializer name.
  auto DupInit = parseModel("acemodel 1\n"
                            "graph g\n"
                            "initializer w 1 2 2 1 1\n"
                            "initializer w 1 2 2 1 1\n"
                            "end\n");
  ASSERT_FALSE(DupInit.ok());
  EXPECT_NE(DupInit.status().message().find("duplicate initializer"),
            std::string::npos);
}

TEST(ModelTest, ParserRejectsHostileCounts) {
  // Negative rank must not wrap to SIZE_MAX and drive an allocation.
  auto NegRank = parseModel("acemodel 1\ngraph g\ninput x -1\nend\n");
  ASSERT_FALSE(NegRank.ok());
  EXPECT_EQ(NegRank.status().code(), ErrorCode::DataCorrupt);
  EXPECT_NE(NegRank.status().message().find("out of range"),
            std::string::npos);

  // Declared value count disagreeing with the shape product.
  auto Mismatch = parseModel("acemodel 1\ngraph g\n"
                             "initializer w 2 2 4 5 1 1 1 1 1\nend\n");
  ASSERT_FALSE(Mismatch.ok());
  EXPECT_NE(Mismatch.status().message().find("its shape holds"),
            std::string::npos);

  // Shape whose element product overflows the tensor cap.
  auto Overflow = parseModel("acemodel 1\ngraph g\n"
                             "initializer w 2 100000000 100000000 1 0\n"
                             "end\n");
  ASSERT_FALSE(Overflow.ok());
  EXPECT_NE(Overflow.status().message().find("overflows"),
            std::string::npos);

  // Attribute count past the per-node cap.
  auto Attrs =
      parseModel("acemodel 1\ngraph g\ninput x 1 4\n"
                 "node Relu _ 1 x 1 y 99999\nend\n");
  ASSERT_FALSE(Attrs.ok());
  EXPECT_NE(Attrs.status().message().find("attribute count"),
            std::string::npos);
}

TEST(ModelTest, ParseErrorsCarryDataCorruptCode) {
  for (const char *Text :
       {"not a model", "acemodel 2\nend\n", "acemodel 1\ngraph g\n",
        "acemodel 1\nbogusrecord 3\nend\n"}) {
    auto R = parseModel(Text);
    ASSERT_FALSE(R.ok()) << Text;
    EXPECT_EQ(R.status().code(), ErrorCode::DataCorrupt) << Text;
  }
}

TEST(ModelTest, SaveLoadFile) {
  Model M = nn::buildMlp({8, 4}, 3);
  ASSERT_TRUE(saveModel(M, "/tmp/ace_model_test.acemodel").ok());
  auto Back = loadModel("/tmp/ace_model_test.acemodel");
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->MainGraph.Nodes.size(), 1u);
  EXPECT_FALSE(loadModel("/tmp/ace_missing_file.acemodel").ok());
}

} // namespace
