//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Regenerates the checked-in malformed-blob corpus under
// tests/corpus/wire/ (read by SerializerCorpusTest). Each blob is a valid
// serialized object with one targeted corruption; the MANIFEST records,
// per blob, the loader to feed it to, the expected error code, and a
// substring the diagnostic must contain.
//
// Blobs whose corruption sits inside the payload get their CRC re-fixed,
// so they exercise the field validators rather than dying at the
// checksum gate.
//
// The corpus is deterministic: it derives from the fuzz-context
// parameters (fuzz/fuzz_deserialize.cpp) whose keygen is seeded. Run
//
//   ./make_wire_corpus <repo>/tests/corpus/wire
//
// after changing the wire format, and commit the result.
//
//===----------------------------------------------------------------------===//

#include "fhe/Encoder.h"
#include "fhe/Encryptor.h"
#include "fhe/Serializer.h"
#include "support/Crc32c.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace ace;
using namespace ace::fhe;

namespace {

// Frame byte offsets (see docs/serialization.md).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffTag = 6;
constexpr size_t kOffFlags = 7;
constexpr size_t kOffLen = 8;
constexpr size_t kOffCrc = 16;
constexpr size_t kOffPayload = 20;

/// Recomputes the CRC over the (possibly corrupted) payload so the blob
/// passes the checksum gate and reaches the field validators.
void refixCrc(std::vector<uint8_t> &Blob) {
  uint32_t Crc = crc32c(Blob.data() + kOffPayload, Blob.size() - kOffPayload);
  for (int I = 0; I < 4; ++I)
    Blob[kOffCrc + I] = static_cast<uint8_t>(Crc >> (8 * I));
}

void pokeU64(std::vector<uint8_t> &Blob, size_t At, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Blob[At + I] = static_cast<uint8_t>(V >> (8 * I));
}

struct Entry {
  std::string File;
  std::string Loader;
  std::string Code;
  std::string Substring;
  std::vector<uint8_t> Blob;
};

void writeHex(const std::string &Path, const std::vector<uint8_t> &Blob) {
  std::ofstream OS(Path);
  static const char *Digits = "0123456789abcdef";
  std::string Line;
  for (size_t I = 0; I < Blob.size(); ++I) {
    Line += Digits[Blob[I] >> 4];
    Line += Digits[Blob[I] & 0xF];
    if (Line.size() >= 64) {
      OS << Line << "\n";
      Line.clear();
    }
  }
  if (!Line.empty())
    OS << Line << "\n";
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  std::string Dir = argv[1];

  // Must match fuzz/fuzz_deserialize.cpp.
  CkksParams P;
  P.RingDegree = 32;
  P.Slots = 8;
  P.LogScale = 30;
  P.LogFirstModulus = 40;
  P.NumRescaleModuli = 2;
  P.LogSpecialModulus = 45;
  P.Seed = 7;
  Context Ctx(P);
  Encoder Enc(Ctx);
  KeyGenerator Gen(Ctx);
  PublicKey Pub = Gen.makePublicKey();
  Encryptor Encrypt(Ctx, Pub);
  Plaintext Pt = Enc.encodeReal({0.5, -1.25, 3.0}, Ctx.scale(), 2);
  Ciphertext Ct = Encrypt.encrypt(Pt);

  std::vector<uint8_t> ParamsBlob, CtBlob, SwBlob, EkBlob;
  SwitchKey Relin = Gen.makeRelinKey();
  EvalKeys RotOnly;
  RotOnly.Rotations.emplace(galoisForRotation(Ctx.degree(), Ctx.slots(), 1),
                            Gen.makeRotationKey(1));
  RotOnly.Rotations.emplace(galoisForRotation(Ctx.degree(), Ctx.slots(), 2),
                            Gen.makeRotationKey(2));
  Status S = wire::save(Ctx.params(), ParamsBlob);
  if (S.ok())
    S = wire::save(Ct, CtBlob);
  if (S.ok())
    S = wire::save(Relin, SwBlob);
  if (S.ok())
    S = wire::save(RotOnly, EkBlob);
  if (!S.ok()) {
    std::fprintf(stderr, "seed save failed: %s\n", S.message().c_str());
    return 1;
  }

  std::vector<Entry> Entries;
  auto Add = [&](std::string File, std::string Loader, std::string Code,
                 std::string Substring, std::vector<uint8_t> Blob) {
    Entries.push_back({std::move(File), std::move(Loader), std::move(Code),
                       std::move(Substring), std::move(Blob)});
  };

  // --- Frame-level corruptions (context-independent).
  {
    auto B = ParamsBlob;
    B[kOffMagic] ^= 0xFF;
    Add("bad-magic", "params", "data-corrupt", "bad magic", B);
  }
  {
    auto B = ParamsBlob;
    B[kOffVersion] = 99;
    Add("bad-version", "params", "data-corrupt",
        "unsupported format version", B);
  }
  {
    auto B = ParamsBlob;
    B[kOffTag] = 200;
    Add("bad-tag", "params", "data-corrupt", "unknown object tag", B);
  }
  Add("wrong-tag", "ciphertext", "data-corrupt", "object tag mismatch",
      ParamsBlob);
  {
    auto B = ParamsBlob;
    B[kOffFlags] = 3;
    Add("bad-flags", "params", "data-corrupt", "unsupported header flags",
        B);
  }
  {
    auto B = CtBlob;
    B[kOffCrc + 1] ^= 0x40;
    Add("bad-crc", "ciphertext", "data-corrupt", "checksum mismatch", B);
  }
  {
    auto B = ParamsBlob;
    B.resize(kOffPayload - 7);
    Add("truncated-header", "params", "data-corrupt", "truncated header", B);
  }
  {
    auto B = CtBlob;
    B.resize(B.size() - 5);
    Add("truncated-payload", "ciphertext", "data-corrupt",
        "truncated object", B);
  }
  {
    auto B = CtBlob;
    pokeU64(B, kOffLen, 1ULL << 40);
    Add("oversized-length", "ciphertext", "resource-exhausted",
        "exceeds the maximum", B);
  }
  {
    auto B = CtBlob;
    B.push_back(0xAB);
    B.push_back(0xCD);
    Add("trailing-bytes", "ciphertext", "data-corrupt", "trailing bytes",
        B);
  }
  Add("empty", "params", "data-corrupt", "truncated header", {});

  // --- Payload-level corruptions (CRC re-fixed so validators fire).
  // Ciphertext payload layout: u8 polyCount | u16 numQ | u8 hasSpecial |
  // u8 ntt | residues... | f64 scale | u64 slots.
  {
    auto B = CtBlob;
    std::memset(B.data() + kOffPayload + 5, 0xFF, 8);
    refixCrc(B);
    Add("ct-residue-ge-q", "ciphertext", "data-corrupt",
        "not below its modulus", B);
  }
  {
    auto B = CtBlob;
    B[kOffPayload] = 7;
    refixCrc(B);
    Add("ct-poly-count", "ciphertext", "data-corrupt",
        "polynomial components", B);
  }
  {
    auto B = CtBlob;
    B[kOffPayload + 1] = 0xFF;
    B[kOffPayload + 2] = 0xFF;
    refixCrc(B);
    Add("ct-bad-numq", "ciphertext", "data-corrupt", "chain primes", B);
  }
  {
    auto B = CtBlob;
    pokeU64(B, B.size() - 16, 0x7FF8000000000000ull); // quiet NaN
    refixCrc(B);
    Add("ct-nan-scale", "ciphertext", "data-corrupt",
        "not a finite positive number", B);
  }
  {
    auto B = CtBlob;
    pokeU64(B, B.size() - 8, 9999);
    refixCrc(B);
    Add("ct-bad-slots", "ciphertext", "data-corrupt", "slot count", B);
  }
  {
    auto B = ParamsBlob;
    pokeU64(B, kOffPayload, 33); // not a power of two
    refixCrc(B);
    Add("params-invalid", "params", "data-corrupt", "fail validation", B);
  }
  {
    auto B = SwBlob;
    B[kOffPayload] = 0xFF; // part count 255 > chain length
    refixCrc(B);
    Add("swk-bad-parts", "switchkey", "data-corrupt",
        "decomposition digits", B);
  }
  // EvalKeys payload (rotations only): u8 0 | u8 0 | u32 numRot |
  // (u64 galois | body)*. The two bodies have identical shape, so
  // swapping the two whole entries yields decreasing Galois elements.
  {
    auto B = EkBlob;
    size_t RotAt = kOffPayload + 1 + 1 + 4;
    size_t EntryLen = (B.size() - RotAt) / 2;
    std::vector<uint8_t> First(B.begin() + RotAt,
                               B.begin() + RotAt + EntryLen);
    std::memmove(B.data() + RotAt, B.data() + RotAt + EntryLen, EntryLen);
    std::memcpy(B.data() + RotAt + EntryLen, First.data(), EntryLen);
    refixCrc(B);
    Add("ek-galois-order", "evalkeys", "data-corrupt",
        "strictly increasing", B);
  }
  {
    auto B = EkBlob;
    size_t RotAt = kOffPayload + 1 + 1 + 4;
    pokeU64(B, RotAt, 4); // even Galois element
    refixCrc(B);
    Add("ek-galois-even", "evalkeys", "data-corrupt", "not an odd value",
        B);
  }

  std::ofstream Manifest(Dir + "/MANIFEST");
  if (!Manifest) {
    std::fprintf(stderr, "cannot write %s/MANIFEST\n", Dir.c_str());
    return 1;
  }
  Manifest << "# blob\tloader\texpected-code\tmessage-substring\n";
  for (const Entry &E : Entries) {
    writeHex(Dir + "/" + E.File + ".hex", E.Blob);
    Manifest << E.File << "\t" << E.Loader << "\t" << E.Code << "\t"
             << E.Substring << "\n";
  }
  std::printf("wrote %zu corpus blobs to %s\n", Entries.size(), Dir.c_str());
  return 0;
}
