//===----------------------------------------------------------------------===//
// ReLU approximation tests (paper Sec. 4.3 / [36]): the composite
// odd-polynomial sign expansion must approximate relu on [-1, 1], in
// plain math and homomorphically through the compiled pipeline.
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "passes/VectorToSihe.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ace;

namespace {

/// Plain evaluation of the compiler's composite: f(t) iterated, then
/// relu = 0.5 x (1 + p).
double compositeRelu(double X, int Iterations) {
  double T = X;
  for (int I = 0; I < Iterations; ++I) {
    double T2 = T * T, T3 = T2 * T, T5 = T2 * T3, T7 = T2 * T5;
    T = (35 * T - 35 * T3 + 21 * T5 - 5 * T7) / 16;
  }
  return 0.5 * X * (1 + T);
}

TEST(ReluApproxTest, CompositeConvergesToSign) {
  // Away from zero, more iterations mean a better relu.
  for (double X : {-0.9, -0.5, -0.2, 0.2, 0.5, 0.9}) {
    double True = X > 0 ? X : 0.0;
    double E1 = std::fabs(compositeRelu(X, 1) - True);
    double E3 = std::fabs(compositeRelu(X, 3) - True);
    EXPECT_LE(E3, E1 + 1e-12) << "x=" << X;
    EXPECT_LT(E3, 0.01) << "x=" << X;
  }
}

TEST(ReluApproxTest, ErrorConcentratesNearZero) {
  double MaxFar = 0, MaxNear = 0;
  for (double X = -1.0; X <= 1.0; X += 0.001) {
    double Err = std::fabs(compositeRelu(X, 2) - (X > 0 ? X : 0.0));
    if (std::fabs(X) > 0.15)
      MaxFar = std::fmax(MaxFar, Err);
    else
      MaxNear = std::fmax(MaxNear, Err);
  }
  EXPECT_LT(MaxFar, 0.03);
  EXPECT_GT(MaxNear, MaxFar); // the hard region is around the kink
}

TEST(ReluApproxTest, DepthModelMatchesOptions) {
  EXPECT_EQ(passes::reluDepth(1), 8);
  EXPECT_EQ(passes::reluDepth(2), 13);
  EXPECT_EQ(passes::reluDepth(3), 18);
}

TEST(ReluApproxTest, HomomorphicReluThroughPipeline) {
  // A 1-layer "network" that is effectively identity + relu: gemm with
  // the identity matrix, then relu, then identity gemm. Compare the
  // encrypted pipeline against true relu slot by slot.
  const int64_t D = 8;
  onnx::Model M;
  onnx::Graph &G = M.MainGraph;
  G.Inputs.push_back({"x", {1, D}});
  onnx::TensorData Id;
  Id.Shape = {D, D};
  Id.Values.assign(D * D, 0.0f);
  for (int64_t I = 0; I < D; ++I)
    Id.Values[I * D + I] = 1.0f;
  G.Initializers.emplace("w1", Id);
  G.Initializers.emplace("w2", Id);
  for (int Layer = 0; Layer < 2; ++Layer) {
    onnx::Node N;
    N.Kind = onnx::OpKind::OK_Gemm;
    N.Name = "g" + std::to_string(Layer);
    N.Inputs = {Layer == 0 ? "x" : "r", Layer == 0 ? "w1" : "w2"};
    N.Outputs = {Layer == 0 ? "y" : "out"};
    N.Attributes["transB"] = onnx::Attribute{{1}, {}};
    G.Nodes.push_back(std::move(N));
    if (Layer == 0) {
      onnx::Node Relu;
      Relu.Kind = onnx::OpKind::OK_Relu;
      Relu.Name = "r";
      Relu.Inputs = {"y"};
      Relu.Outputs = {"r"};
      G.Nodes.push_back(std::move(Relu));
    }
  }
  G.Outputs.push_back({"out", {1, D}});

  Rng R(9);
  std::vector<nn::Tensor> Calib(2);
  for (auto &T : Calib) {
    T.Shape = {1, D};
    T.Values.resize(D);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-0.9, 0.9));
  }

  driver::AceCompiler Compiler(air::CompileOptions{});
  auto Result = Compiler.compile(M, Calib);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  codegen::CkksExecutor Exec((*Result)->Program, (*Result)->State);
  ASSERT_FALSE(Exec.setup());

  auto Logits = Exec.infer(Calib[0]);
  ASSERT_TRUE(Logits.ok());
  for (int64_t I = 0; I < D; ++I) {
    double X = Calib[0].Values[I];
    double True = X > 0 ? X : 0.0;
    // Approximation error dominated by the kink region; generous bound.
    EXPECT_NEAR((*Logits)[I], True, 0.12) << "x=" << X;
  }
}

} // namespace
