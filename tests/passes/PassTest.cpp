//===----------------------------------------------------------------------===//
// Pass-level tests: BN folding, per-phase lowering invariants, parameter
// selection, rotation-key analysis, POLY lowering and its fusions.
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "expert/ExpertBaseline.h"
#include "nn/ModelZoo.h"
#include "passes/CkksToPoly.h"
#include "passes/Frontend.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace ace;

namespace {

std::vector<nn::Tensor> randomInputs(int64_t Dim, int Count,
                                     uint64_t Seed) {
  Rng R(Seed);
  std::vector<nn::Tensor> Out;
  for (int I = 0; I < Count; ++I) {
    nn::Tensor T;
    T.Shape = {1, Dim};
    T.Values.resize(Dim);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1, 1));
    Out.push_back(std::move(T));
  }
  return Out;
}

TEST(FrontendTest, BatchNormFoldsIntoConv) {
  nn::NanoResNetSpec Spec;
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  Spec.WithBatchNorm = true;
  nn::Dataset Data = nn::makeSyntheticDataset({1, 2, 4, 4}, 4, 4, 0.1, 5);
  auto MOr = nn::buildNanoResNet(Spec, Data, 7);
  ASSERT_TRUE(MOr.ok()) << MOr.status().message();
  onnx::Model M = MOr.take();

  auto Folded = passes::foldBatchNorm(M.MainGraph);
  ASSERT_TRUE(Folded.ok()) << Folded.status().message();
  for (const auto &N : Folded->Nodes)
    EXPECT_NE(N.Kind, onnx::OpKind::OK_BatchNormalization);
  // Semantics preserved.
  auto A = nn::executeSingle(M.MainGraph, Data.Images[0]);
  auto B = nn::executeSingle(*Folded, Data.Images[0]);
  ASSERT_TRUE(A.ok() && B.ok());
  for (size_t I = 0; I < A->Values.size(); ++I)
    EXPECT_NEAR(A->Values[I], B->Values[I], 1e-4);
}

TEST(PipelineTest, PhaseCountsGrowDownTheStack) {
  onnx::Model M = nn::buildMlp({16, 12, 8}, 5);
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto R = Compiler.compile(M, randomInputs(16, 2, 3));
  ASSERT_TRUE(R.ok()) << R.status().message();
  auto &RC = **R;
  // Lowering expands the program at every level (paper Sec. 4.5: a small
  // model grows from a handful of NN nodes to hundreds of POLY lines).
  EXPECT_LT(RC.PhaseNodeCounts["NN"], RC.PhaseNodeCounts["VECTOR"]);
  EXPECT_LE(RC.PhaseNodeCounts["VECTOR"], RC.PhaseNodeCounts["SIHE"]);
  EXPECT_LT(RC.PhaseNodeCounts["SIHE"], RC.PhaseNodeCounts["CKKS"]);
}

TEST(PipelineTest, RotationAnalysisFindsGemvDiagonals) {
  onnx::Model M = nn::buildLinearInfer(3);
  // The step bounds below are BSGS facts; pin the strategy so the
  // ACE_PACKING CI matrix cannot redirect this contract.
  air::CompileOptions Opt;
  Opt.Packing = PackingStrategy::PS_Bsgs;
  driver::AceCompiler Compiler(Opt);
  auto R = Compiler.compile(M, randomInputs(84, 2, 3));
  ASSERT_TRUE(R.ok());
  // Halevi-Shoup over a 128-wide layout: steps are multiples of the
  // element stride, bounded by the padded capacity.
  EXPECT_FALSE((*R)->State.RotationSteps.empty());
  EXPECT_LE((*R)->State.RotationSteps.size(), 128u);
  for (int64_t S : (*R)->State.RotationSteps) {
    EXPECT_GT(S, 0);
    EXPECT_LT(S, 128);
  }
  // No ReLU: no relin, no conjugation, no bootstrapping.
  EXPECT_FALSE((*R)->State.NeedsRelin);
  EXPECT_FALSE((*R)->State.NeedsConjugation);
  EXPECT_EQ((*R)->State.BootstrapCount, 0u);
}

TEST(PipelineTest, ParameterSelectionScalesWithDepth) {
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto Shallow = Compiler.compile(nn::buildLinearInfer(3),
                                  randomInputs(84, 2, 3));
  auto Deep = Compiler.compile(nn::buildMlp({16, 12, 12, 8}, 5),
                               randomInputs(16, 2, 3));
  ASSERT_TRUE(Shallow.ok() && Deep.ok());
  EXPECT_LT((*Shallow)->State.SelectedParams.NumRescaleModuli,
            (*Deep)->State.SelectedParams.NumRescaleModuli);
  // Production selection reports a standardized ring (paper Table 10).
  EXPECT_GE((*Shallow)->State.SecureRingDegree, 1024u);
  EXPECT_GE((*Deep)->State.SecureRingDegree,
            (*Shallow)->State.SecureRingDegree);
}

TEST(PipelineTest, ExpertOptionsDisableAutomation) {
  air::CompileOptions Opt = expert::expertOptions(air::CompileOptions{});
  EXPECT_FALSE(Opt.EnableRotationKeyAnalysis);
  EXPECT_FALSE(Opt.EnableMinimalBootstrapLevel);
  EXPECT_FALSE(Opt.EnableRescalePlacement);
  EXPECT_GT(Opt.ExpertMarginLevels, 0);

  // Expert compilation selects a longer chain for the same model.
  onnx::Model M = nn::buildMlp({16, 12, 8}, 5);
  driver::AceCompiler Ace{air::CompileOptions{}};
  driver::AceCompiler Exp{Opt};
  auto A = Ace.compile(M, randomInputs(16, 2, 3));
  auto E = Exp.compile(M, randomInputs(16, 2, 3));
  ASSERT_TRUE(A.ok() && E.ok());
  EXPECT_LT((*A)->State.SelectedParams.NumRescaleModuli,
            (*E)->State.SelectedParams.NumRescaleModuli);
}

TEST(PolyLoweringTest, FusionReducesLoopAndOpCounts) {
  onnx::Model M = nn::buildLinearInfer(3);
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto R = Compiler.compile(M, randomInputs(84, 2, 3));
  ASSERT_TRUE(R.ok());

  passes::PolyStats Plain, Fused;
  air::IrFunction P1("p1"), P2("p2");
  ASSERT_TRUE(passes::lowerToPoly((*R)->Program, (*R)->State, false, P1,
                                  &Plain)
                  .ok());
  ASSERT_TRUE(
      passes::lowerToPoly((*R)->Program, (*R)->State, true, P2, &Fused)
          .ok());
  EXPECT_LT(Fused.RnsLoops, Plain.RnsLoops);
  EXPECT_GT(Fused.HwModMulAdd, 0u);
  EXPECT_GT(Fused.FusedDecompModUp, 0u);
  EXPECT_EQ(Fused.Decomp, 0u);
  EXPECT_LT(Fused.totalHwOps(), Plain.totalHwOps());
  // Both are valid POLY-dialect programs.
  EXPECT_TRUE(air::verifyFunction(P2, {air::DialectKind::DK_Poly}).ok());
}

// A single-gemm model with explicit control over the weight matrix, for
// exercising the cost model's degenerate branches (docs/compiler.md).
onnx::Model singleGemm(int64_t C, int64_t K, bool WithBias, uint64_t Seed,
                       double BandWidth = -1.0) {
  onnx::Model M;
  M.ProducerName = "gemm_edge";
  onnx::Graph &G = M.MainGraph;
  G.Name = "gemm_edge";
  G.Inputs.push_back({"x", {1, C}});
  Rng R(Seed);
  onnx::TensorData W;
  W.Shape = {K, C};
  W.Values.resize(K * C);
  for (int64_t Ko = 0; Ko < K; ++Ko)
    for (int64_t Ci = 0; Ci < C; ++Ci) {
      // BandWidth >= 0 zeroes everything off the band: few distinct
      // diagonals survive, which is the regime where explicit diagonal
      // lowering beats BSGS.
      bool OnBand = BandWidth < 0 || std::llabs(Ko - Ci) <= BandWidth;
      W.Values[Ko * C + Ci] =
          OnBand ? static_cast<float>(R.uniformReal(-1, 1)) : 0.0f;
    }
  G.Initializers.emplace("w", std::move(W));
  onnx::Node N;
  N.Kind = onnx::OpKind::OK_Gemm;
  N.Name = "out";
  N.Inputs = {"x", "w"};
  if (WithBias) {
    onnx::TensorData B;
    B.Shape = {K};
    for (int64_t Ko = 0; Ko < K; ++Ko)
      B.Values.push_back(static_cast<float>(R.uniformReal(-0.1, 0.1)));
    G.Initializers.emplace("b", std::move(B));
    N.Inputs.push_back("b");
  }
  N.Outputs = {"out"};
  N.Attributes["transB"] = onnx::Attribute{{1}, {}};
  G.Nodes.push_back(std::move(N));
  G.Outputs.push_back({"out", {1, K}});
  return M;
}

// Compiles under the per-layer cost model and checks encrypted inference
// against the cleartext executor.
void checkGemmEdgeCase(const onnx::Model &M, int64_t C,
                       PackingStrategy Expect) {
  // These tests assert what the *cost model* chooses; a forced
  // ACE_PACKING from the CI matrix must not redirect them.
  unsetenv("ACE_PACKING");
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 2;
  Opt.Seed = 11;
  Opt.Packing = PackingStrategy::PS_Auto;
  driver::AceCompiler Compiler(Opt);
  auto Inputs = randomInputs(C, 2, 23);
  auto R = Compiler.compile(M, Inputs);
  ASSERT_TRUE(R.ok()) << R.status().message();
  ASSERT_EQ((*R)->State.PackingDecisions.size(), 1u);
  const air::PackingDecision &D = (*R)->State.PackingDecisions[0];
  EXPECT_EQ(D.Strategy, Expect)
      << "costs diag=" << D.CostDiag << " bsgs=" << D.CostBsgs
      << " column=" << D.CostColumn;
  EXPECT_FALSE(D.Forced);

  codegen::CkksExecutor Exec((*R)->Program, (*R)->State);
  ASSERT_FALSE(Exec.setup());
  auto Clear = nn::executeSingle(M.MainGraph, Inputs[0]);
  ASSERT_TRUE(Clear.ok());
  auto Logits = Exec.infer(Inputs[0]);
  ASSERT_TRUE(Logits.ok()) << Logits.status().message();
  ASSERT_EQ(Logits->size(), Clear->Values.size());
  for (size_t I = 0; I < Logits->size(); ++I)
    EXPECT_NEAR((*Logits)[I], Clear->Values[I], 0.02) << "logit " << I;
}

TEST(PackingCostModelTest, OneRowGemmPrefersColumnPacking) {
  // K=1: a single output replicated from every input element. Column
  // packing does the whole reduction in log2(C) rotations with one wide
  // ct-pt mul; the diagonal forms need a rotation per diagonal.
  checkGemmEdgeCase(singleGemm(/*C=*/16, /*K=*/1, /*WithBias=*/true, 41),
                    16, PackingStrategy::PS_Column);
}

TEST(PackingCostModelTest, OneColumnGemmCompilesAndMatches) {
  // C=1: every output is a scalar multiple of the one input element.
  // The shape degenerates to a single diagonal; any strategy is one
  // mask-multiply, the contract is just correctness.
  onnx::Model M = singleGemm(/*C=*/1, /*K=*/6, /*WithBias=*/true, 43);
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 2;
  Opt.Seed = 11;
  driver::AceCompiler Compiler(Opt);
  auto Inputs = randomInputs(1, 2, 29);
  auto R = Compiler.compile(M, Inputs);
  ASSERT_TRUE(R.ok()) << R.status().message();
  codegen::CkksExecutor Exec((*R)->Program, (*R)->State);
  ASSERT_FALSE(Exec.setup());
  auto Clear = nn::executeSingle(M.MainGraph, Inputs[0]);
  auto Logits = Exec.infer(Inputs[0]);
  ASSERT_TRUE(Clear.ok() && Logits.ok());
  for (size_t I = 0; I < Logits->size(); ++I)
    EXPECT_NEAR((*Logits)[I], Clear->Values[I], 0.02) << "logit " << I;
}

TEST(PackingCostModelTest, BandedGemmPrefersExplicitDiagonals) {
  // A tridiagonal 24x24 weight matrix populates 3 of 32 diagonals; the
  // explicit diagonal form pays 3 rotations against BSGS's baby/giant
  // fixed cost, so the cost model must pick it.
  checkGemmEdgeCase(singleGemm(/*C=*/24, /*K=*/24, /*WithBias=*/true, 47,
                               /*BandWidth=*/1.0),
                    24, PackingStrategy::PS_Diag);
}

TEST(PackingCostModelTest, RaggedAndZeroBiasGemmsMatchCleartext) {
  // Ragged (non-power-of-two, K != C) and bias-less shapes walk the
  // padding and optional-operand branches of every lowering.
  for (PackingStrategy S :
       {PackingStrategy::PS_Diag, PackingStrategy::PS_Bsgs,
        PackingStrategy::PS_Column}) {
    onnx::Model M = singleGemm(/*C=*/13, /*K=*/7, /*WithBias=*/false, 53);
    air::CompileOptions Opt;
    Opt.ToyParameters = true;
    Opt.LogScale = 45;
    Opt.LogFirstModulus = 55;
    Opt.CalibrationSamples = 2;
    Opt.Seed = 11;
    Opt.Packing = S;
    driver::AceCompiler Compiler(Opt);
    auto Inputs = randomInputs(13, 2, 31);
    auto R = Compiler.compile(M, Inputs);
    ASSERT_TRUE(R.ok()) << R.status().message();
    ASSERT_EQ((*R)->State.PackingDecisions.size(), 1u);
    EXPECT_TRUE((*R)->State.PackingDecisions[0].Forced);
    codegen::CkksExecutor Exec((*R)->Program, (*R)->State);
    ASSERT_FALSE(Exec.setup());
    auto Clear = nn::executeSingle(M.MainGraph, Inputs[0]);
    auto Logits = Exec.infer(Inputs[0]);
    ASSERT_TRUE(Clear.ok() && Logits.ok());
    for (size_t I = 0; I < Logits->size(); ++I)
      EXPECT_NEAR((*Logits)[I], Clear->Values[I], 0.02)
          << "strategy " << packingStrategyName(S) << " logit " << I;
  }
}

} // namespace
