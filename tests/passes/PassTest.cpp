//===----------------------------------------------------------------------===//
// Pass-level tests: BN folding, per-phase lowering invariants, parameter
// selection, rotation-key analysis, POLY lowering and its fusions.
//===----------------------------------------------------------------------===//

#include "driver/AceCompiler.h"
#include "expert/ExpertBaseline.h"
#include "nn/ModelZoo.h"
#include "passes/CkksToPoly.h"
#include "passes/Frontend.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;

namespace {

std::vector<nn::Tensor> randomInputs(int64_t Dim, int Count,
                                     uint64_t Seed) {
  Rng R(Seed);
  std::vector<nn::Tensor> Out;
  for (int I = 0; I < Count; ++I) {
    nn::Tensor T;
    T.Shape = {1, Dim};
    T.Values.resize(Dim);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1, 1));
    Out.push_back(std::move(T));
  }
  return Out;
}

TEST(FrontendTest, BatchNormFoldsIntoConv) {
  nn::NanoResNetSpec Spec;
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  Spec.WithBatchNorm = true;
  nn::Dataset Data = nn::makeSyntheticDataset({1, 2, 4, 4}, 4, 4, 0.1, 5);
  auto MOr = nn::buildNanoResNet(Spec, Data, 7);
  ASSERT_TRUE(MOr.ok()) << MOr.status().message();
  onnx::Model M = MOr.take();

  auto Folded = passes::foldBatchNorm(M.MainGraph);
  ASSERT_TRUE(Folded.ok()) << Folded.status().message();
  for (const auto &N : Folded->Nodes)
    EXPECT_NE(N.Kind, onnx::OpKind::OK_BatchNormalization);
  // Semantics preserved.
  auto A = nn::executeSingle(M.MainGraph, Data.Images[0]);
  auto B = nn::executeSingle(*Folded, Data.Images[0]);
  ASSERT_TRUE(A.ok() && B.ok());
  for (size_t I = 0; I < A->Values.size(); ++I)
    EXPECT_NEAR(A->Values[I], B->Values[I], 1e-4);
}

TEST(PipelineTest, PhaseCountsGrowDownTheStack) {
  onnx::Model M = nn::buildMlp({16, 12, 8}, 5);
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto R = Compiler.compile(M, randomInputs(16, 2, 3));
  ASSERT_TRUE(R.ok()) << R.status().message();
  auto &RC = **R;
  // Lowering expands the program at every level (paper Sec. 4.5: a small
  // model grows from a handful of NN nodes to hundreds of POLY lines).
  EXPECT_LT(RC.PhaseNodeCounts["NN"], RC.PhaseNodeCounts["VECTOR"]);
  EXPECT_LE(RC.PhaseNodeCounts["VECTOR"], RC.PhaseNodeCounts["SIHE"]);
  EXPECT_LT(RC.PhaseNodeCounts["SIHE"], RC.PhaseNodeCounts["CKKS"]);
}

TEST(PipelineTest, RotationAnalysisFindsGemvDiagonals) {
  onnx::Model M = nn::buildLinearInfer(3);
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto R = Compiler.compile(M, randomInputs(84, 2, 3));
  ASSERT_TRUE(R.ok());
  // Halevi-Shoup over a 128-wide layout: steps are multiples of the
  // element stride, bounded by the padded capacity.
  EXPECT_FALSE((*R)->State.RotationSteps.empty());
  EXPECT_LE((*R)->State.RotationSteps.size(), 128u);
  for (int64_t S : (*R)->State.RotationSteps) {
    EXPECT_GT(S, 0);
    EXPECT_LT(S, 128);
  }
  // No ReLU: no relin, no conjugation, no bootstrapping.
  EXPECT_FALSE((*R)->State.NeedsRelin);
  EXPECT_FALSE((*R)->State.NeedsConjugation);
  EXPECT_EQ((*R)->State.BootstrapCount, 0u);
}

TEST(PipelineTest, ParameterSelectionScalesWithDepth) {
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto Shallow = Compiler.compile(nn::buildLinearInfer(3),
                                  randomInputs(84, 2, 3));
  auto Deep = Compiler.compile(nn::buildMlp({16, 12, 12, 8}, 5),
                               randomInputs(16, 2, 3));
  ASSERT_TRUE(Shallow.ok() && Deep.ok());
  EXPECT_LT((*Shallow)->State.SelectedParams.NumRescaleModuli,
            (*Deep)->State.SelectedParams.NumRescaleModuli);
  // Production selection reports a standardized ring (paper Table 10).
  EXPECT_GE((*Shallow)->State.SecureRingDegree, 1024u);
  EXPECT_GE((*Deep)->State.SecureRingDegree,
            (*Shallow)->State.SecureRingDegree);
}

TEST(PipelineTest, ExpertOptionsDisableAutomation) {
  air::CompileOptions Opt = expert::expertOptions(air::CompileOptions{});
  EXPECT_FALSE(Opt.EnableRotationKeyAnalysis);
  EXPECT_FALSE(Opt.EnableMinimalBootstrapLevel);
  EXPECT_FALSE(Opt.EnableRescalePlacement);
  EXPECT_GT(Opt.ExpertMarginLevels, 0);

  // Expert compilation selects a longer chain for the same model.
  onnx::Model M = nn::buildMlp({16, 12, 8}, 5);
  driver::AceCompiler Ace{air::CompileOptions{}};
  driver::AceCompiler Exp{Opt};
  auto A = Ace.compile(M, randomInputs(16, 2, 3));
  auto E = Exp.compile(M, randomInputs(16, 2, 3));
  ASSERT_TRUE(A.ok() && E.ok());
  EXPECT_LT((*A)->State.SelectedParams.NumRescaleModuli,
            (*E)->State.SelectedParams.NumRescaleModuli);
}

TEST(PolyLoweringTest, FusionReducesLoopAndOpCounts) {
  onnx::Model M = nn::buildLinearInfer(3);
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto R = Compiler.compile(M, randomInputs(84, 2, 3));
  ASSERT_TRUE(R.ok());

  passes::PolyStats Plain, Fused;
  air::IrFunction P1("p1"), P2("p2");
  ASSERT_TRUE(passes::lowerToPoly((*R)->Program, (*R)->State, false, P1,
                                  &Plain)
                  .ok());
  ASSERT_TRUE(
      passes::lowerToPoly((*R)->Program, (*R)->State, true, P2, &Fused)
          .ok());
  EXPECT_LT(Fused.RnsLoops, Plain.RnsLoops);
  EXPECT_GT(Fused.HwModMulAdd, 0u);
  EXPECT_GT(Fused.FusedDecompModUp, 0u);
  EXPECT_EQ(Fused.Decomp, 0u);
  EXPECT_LT(Fused.totalHwOps(), Plain.totalHwOps());
  // Both are valid POLY-dialect programs.
  EXPECT_TRUE(air::verifyFunction(P2, {air::DialectKind::DK_Poly}).ok());
}

} // namespace
