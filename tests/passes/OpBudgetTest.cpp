//===----------------------------------------------------------------------===//
// Op-count contract tests for the rescale/relinearize placement policies
// and the packing cost model (docs/compiler.md). The budgets below are
// exact: any change to lowering, placement legality, or the cost model
// that moves an op count must update these numbers deliberately, with
// the reasoning in the commit. The eager-vs-lazy deltas are the PR's
// headline claim (>=20% fewer rescale+relin ops on the MLP zoo model).
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "passes/SiheToCkks.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace ace;

namespace {

std::vector<nn::Tensor> randomInputs(const std::vector<int64_t> &Shape,
                                     int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<nn::Tensor> Out;
  for (int I = 0; I < Count; ++I) {
    nn::Tensor T;
    T.Shape = Shape;
    T.Values.resize(T.elementCount());
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Out.push_back(std::move(T));
  }
  return Out;
}

/// Compiles \p M under an explicit rescale mode with the packing pinned
/// to BSGS, so the budgets are functions of the placement policy alone
/// (immune to the ACE_PACKING / ACE_LAZY_RESCALE CI matrix).
std::unique_ptr<driver::CompileResult>
compileWithMode(const onnx::Model &M, const std::vector<nn::Tensor> &Inputs,
                RescaleMode Mode) {
  air::CompileOptions Opt;
  Opt.Rescale = Mode;
  Opt.Packing = PackingStrategy::PS_Bsgs;
  driver::AceCompiler Compiler(Opt);
  auto R = Compiler.compile(M, Inputs);
  EXPECT_TRUE(R.ok()) << R.status().message();
  return R.ok() ? R.take() : nullptr;
}

struct Budgets {
  air::CkksOpBudget Eager, Waterline, Lazy;
};

Budgets budgetsOf(const onnx::Model &M,
                  const std::vector<nn::Tensor> &Inputs) {
  Budgets B;
  auto E = compileWithMode(M, Inputs, RescaleMode::RM_Eager);
  auto W = compileWithMode(M, Inputs, RescaleMode::RM_Waterline);
  auto L = compileWithMode(M, Inputs, RescaleMode::RM_Lazy);
  if (E)
    B.Eager = E->State.Budget;
  if (W)
    B.Waterline = W->State.Budget;
  if (L)
    B.Lazy = L->State.Budget;
  return B;
}

// The MLP zoo model of the acceptance criterion: {64,48,32,10}, seed 7.
TEST(OpBudgetTest, MlpBudgetsAreExactPerMode) {
  onnx::Model M = nn::buildMlp({64, 48, 32, 10}, 7);
  Budgets B = budgetsOf(M, randomInputs({1, 64}, 2, 7));

  // Rescale counts are the policy's whole story; everything else is
  // invariant across modes (same graph, same Need analysis).
  EXPECT_EQ(B.Eager.Rescale, 223u);
  EXPECT_EQ(B.Waterline.Rescale, 184u);
  EXPECT_EQ(B.Lazy.Rescale, 58u);

  // Canonical forwarding makes lazy relinearize exactly as often as
  // eager: once per ct-ct product, never per consumer.
  EXPECT_EQ(B.Eager.Relinearize, 26u);
  EXPECT_EQ(B.Waterline.Relinearize, 26u);
  EXPECT_EQ(B.Lazy.Relinearize, 26u);

  // Mode-invariant counters pin the rest of the lowering.
  for (const air::CkksOpBudget *Budget :
       {&B.Eager, &B.Waterline, &B.Lazy}) {
    EXPECT_EQ(Budget->Rotate, 40u);
    EXPECT_EQ(Budget->CtCtMul, 26u);
    EXPECT_EQ(Budget->CtPtMul, 197u);
    EXPECT_EQ(Budget->Bootstrap, 2u);
  }

  // The acceptance criterion: lazy placement removes >=20% of the
  // rescale+relin work relative to eager (measured: 84 vs 249, 66%).
  size_t EagerTotal = B.Eager.Rescale + B.Eager.Relinearize;
  size_t LazyTotal = B.Lazy.Rescale + B.Lazy.Relinearize;
  EXPECT_LE(LazyTotal * 5, EagerTotal * 4)
      << "lazy " << LazyTotal << " vs eager " << EagerTotal;
}

// The LeNet-shaped model exercises the channel-mode (conv) path where
// pools and convolutions generate wide mask-multiply fans.
TEST(OpBudgetTest, LeNetBudgetsAreExactPerMode) {
  onnx::Model M = nn::buildLeNet(/*Classes=*/8, 11);
  Budgets B = budgetsOf(M, randomInputs({1, 1, 8, 8}, 2, 13));

  // On the conv fan the waterline's per-consumer re-settling costs one
  // more rescale than plain eager placement; only the memoized lazy
  // policy collapses the fan-out.
  EXPECT_EQ(B.Eager.Rescale, 208u);
  EXPECT_EQ(B.Waterline.Rescale, 209u);
  EXPECT_EQ(B.Lazy.Rescale, 63u);

  EXPECT_EQ(B.Eager.Relinearize, 39u);
  EXPECT_EQ(B.Waterline.Relinearize, 39u);
  EXPECT_EQ(B.Lazy.Relinearize, 39u);

  for (const air::CkksOpBudget *Budget :
       {&B.Eager, &B.Waterline, &B.Lazy}) {
    EXPECT_EQ(Budget->Rotate, 122u);
    EXPECT_EQ(Budget->CtCtMul, 39u);
    EXPECT_EQ(Budget->CtPtMul, 169u);
    EXPECT_EQ(Budget->Bootstrap, 3u);
  }

  size_t EagerTotal = B.Eager.Rescale + B.Eager.Relinearize;
  size_t LazyTotal = B.Lazy.Rescale + B.Lazy.Relinearize;
  EXPECT_LE(LazyTotal * 5, EagerTotal * 4)
      << "lazy " << LazyTotal << " vs eager " << EagerTotal;
}

// The static budget is not just an estimate: executing the compiled
// program performs exactly the budgeted number of rescales/relins plus
// the (mode-invariant) bootstrap internals. Comparing executed telemetry
// deltas across modes therefore reproduces the budget deltas exactly.
TEST(OpBudgetTest, ExecutedTelemetryMatchesBudgetDelta) {
  using telemetry::Counter;
  using telemetry::CounterSnapshot;
  using telemetry::Telemetry;

  onnx::Model M = nn::buildMlp({24, 16, 12, 6}, 31);
  auto Inputs = randomInputs({1, 24}, 2, 3);

  auto RunOnce = [&](RescaleMode Mode, air::CkksOpBudget &Budget)
      -> CounterSnapshot {
    air::CompileOptions Opt;
    Opt.ToyParameters = true;
    Opt.LogScale = 45;
    Opt.LogFirstModulus = 55;
    Opt.CalibrationSamples = 2;
    Opt.Seed = 11;
    Opt.Rescale = Mode;
    Opt.Packing = PackingStrategy::PS_Bsgs;
    driver::AceCompiler Compiler(Opt);
    auto R = Compiler.compile(M, Inputs);
    EXPECT_TRUE(R.ok()) << R.status().message();
    Budget = (*R)->State.Budget;
    codegen::CkksExecutor Exec((*R)->Program, (*R)->State);
    EXPECT_FALSE(Exec.setup());
    Telemetry::instance().setEnabled(true);
    CounterSnapshot Before = Telemetry::instance().counters();
    auto Logits = Exec.infer(Inputs[0]);
    EXPECT_TRUE(Logits.ok());
    CounterSnapshot After = Telemetry::instance().counters();
    Telemetry::instance().setEnabled(false);
    return After.deltaSince(Before);
  };

  air::CkksOpBudget EagerBudget, LazyBudget;
  CounterSnapshot Eager = RunOnce(RescaleMode::RM_Eager, EagerBudget);
  CounterSnapshot Lazy = RunOnce(RescaleMode::RM_Lazy, LazyBudget);

  // Same params, same bootstrap targets: the executed difference is the
  // compiled difference, to the op.
  EXPECT_EQ(Eager.get(Counter::Rescale) - Lazy.get(Counter::Rescale),
            EagerBudget.Rescale - LazyBudget.Rescale);
  EXPECT_EQ(Eager.get(Counter::Relinearize) - Lazy.get(Counter::Relinearize),
            EagerBudget.Relinearize - LazyBudget.Relinearize);
  EXPECT_EQ(Eager.get(Counter::Rotate), Lazy.get(Counter::Rotate));
  EXPECT_GT(EagerBudget.Rescale, LazyBudget.Rescale);
}

// The relin-fusion contract at its smallest: a sum of two squares. Lazy
// placement keeps both Cipher3 products unrelinearized through the
// addition and relinearizes the sum once; eager placement pays one
// relin per product.
TEST(OpBudgetTest, SumOfProductsRelinearizesOnce) {
  auto CountOps = [](RescaleMode Mode, size_t &Relins, size_t &Rescales) {
    air::IrFunction F("sihe");
    air::IrNode *X = F.addInput("x", air::TypeKind::TK_Cipher);
    air::IrNode *P1 = F.create(air::NodeKind::NK_SiheMul,
                               air::TypeKind::TK_Cipher, {X, X},
                               air::OriginKind::OR_Other);
    air::IrNode *Y = F.create(air::NodeKind::NK_SiheRotate,
                              air::TypeKind::TK_Cipher, {X},
                              air::OriginKind::OR_Other);
    Y->Ints = {1};
    air::IrNode *P2 = F.create(air::NodeKind::NK_SiheMul,
                               air::TypeKind::TK_Cipher, {Y, Y},
                               air::OriginKind::OR_Other);
    air::IrNode *S = F.create(air::NodeKind::NK_SiheAdd,
                              air::TypeKind::TK_Cipher, {P1, P2},
                              air::OriginKind::OR_Other);
    F.setReturn(S);
    F.renumber();

    air::CompileState State;
    State.Options.Rescale = Mode;
    State.InputLayout.W0 = State.InputLayout.W = 8;

    passes::SiheToCkksPass Pass;
    ASSERT_TRUE(Pass.run(F, State).ok());
    Relins = State.Budget.Relinearize;
    Rescales = State.Budget.Rescale;
  };

  size_t LazyRelins = 0, LazyRescales = 0;
  size_t EagerRelins = 0, EagerRescales = 0;
  CountOps(RescaleMode::RM_Lazy, LazyRelins, LazyRescales);
  CountOps(RescaleMode::RM_Eager, EagerRelins, EagerRescales);

  EXPECT_EQ(EagerRelins, 2u); // one per product
  EXPECT_EQ(LazyRelins, 1u);  // the fused sum
  EXPECT_LT(LazyRescales, EagerRescales);
}

} // namespace
