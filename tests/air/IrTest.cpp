//===----------------------------------------------------------------------===//
// IR infrastructure tests: node construction, dialect classification,
// verifier acceptance/rejection, printing, layouts.
//===----------------------------------------------------------------------===//

#include "air/Ir.h"
#include "air/Layout.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::air;

namespace {

TEST(IrTest, DialectClassification) {
  EXPECT_EQ(dialectOf(NodeKind::NK_NnConv), DialectKind::DK_Nn);
  EXPECT_EQ(dialectOf(NodeKind::NK_VecRoll), DialectKind::DK_Vector);
  EXPECT_EQ(dialectOf(NodeKind::NK_SiheMul), DialectKind::DK_Sihe);
  EXPECT_EQ(dialectOf(NodeKind::NK_CkksBootstrap), DialectKind::DK_Ckks);
  EXPECT_EQ(dialectOf(NodeKind::NK_HwModMulAdd), DialectKind::DK_Poly);
  EXPECT_EQ(dialectOf(NodeKind::NK_Input), DialectKind::DK_Common);
}

TEST(IrTest, KindNamesFollowPaperConvention) {
  EXPECT_STREQ(nodeKindName(NodeKind::NK_CkksMul), "CKKS.mul");
  EXPECT_STREQ(nodeKindName(NodeKind::NK_VecRoll), "VECTOR.roll");
  EXPECT_STREQ(nodeKindName(NodeKind::NK_SiheEncode), "SIHE.encode");
  EXPECT_STREQ(nodeKindName(NodeKind::NK_HwNtt), "POLY.hw_ntt");
}

IrFunction makeGemvLike() {
  // The paper's Listing 3 shape: rotate -> mul(encode) -> add.
  IrFunction F("linear_infer");
  IrNode *X = F.addInput("image", TypeKind::TK_Cipher);
  IrNode *R = F.create(NodeKind::NK_SiheRotate, TypeKind::TK_Cipher, {X});
  R->Ints = {1};
  IrNode *C = F.create(NodeKind::NK_ConstVec, TypeKind::TK_Vector);
  C->Data = {1.0, 2.0};
  IrNode *E = F.create(NodeKind::NK_SiheEncode, TypeKind::TK_Plain, {C});
  IrNode *M = F.create(NodeKind::NK_SiheMul, TypeKind::TK_Cipher, {R, E});
  IrNode *A = F.create(NodeKind::NK_SiheAdd, TypeKind::TK_Cipher, {M, M});
  F.setReturn(A);
  return F;
}

TEST(IrTest, VerifierAcceptsWellFormed) {
  IrFunction F = makeGemvLike();
  EXPECT_TRUE(verifyFunction(F).ok());
  EXPECT_TRUE(verifyFunction(F, {DialectKind::DK_Sihe}).ok());
}

TEST(IrTest, VerifierRejectsWrongDialect) {
  IrFunction F = makeGemvLike();
  Status S = verifyFunction(F, {DialectKind::DK_Ckks});
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("dialect"), std::string::npos);
}

TEST(IrTest, VerifierRejectsUseBeforeDef) {
  IrFunction F("bad");
  IrNode *X = F.addInput("x", TypeKind::TK_Cipher);
  // Manually create a forward reference by reordering operands.
  IrNode *A = F.create(NodeKind::NK_SiheAdd, TypeKind::TK_Cipher, {X, X});
  IrNode *R = F.create(NodeKind::NK_SiheRotate, TypeKind::TK_Cipher, {X});
  R->Ints = {1};
  A->Operands[1] = R; // now %A uses %R defined later
  F.setReturn(A);
  EXPECT_FALSE(verifyFunction(F).ok());
}

TEST(IrTest, VerifierChecksCkksTypes) {
  IrFunction F("ckks");
  IrNode *X = F.addInput("x", TypeKind::TK_Cipher);
  // ct*ct must produce Cipher3.
  IrNode *M = F.create(NodeKind::NK_CkksMul, TypeKind::TK_Cipher, {X, X});
  F.setReturn(M);
  EXPECT_FALSE(verifyFunction(F).ok());

  IrFunction G("ckks2");
  IrNode *Y = G.addInput("x", TypeKind::TK_Cipher);
  IrNode *M2 =
      G.create(NodeKind::NK_CkksMul, TypeKind::TK_Cipher3, {Y, Y});
  IrNode *Rl = G.create(NodeKind::NK_CkksRelin, TypeKind::TK_Cipher, {M2});
  G.setReturn(Rl);
  EXPECT_TRUE(verifyFunction(G).ok());
}

TEST(IrTest, PrinterEmitsPaperStyleMnemonics) {
  IrFunction F = makeGemvLike();
  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("SIHE.rotate"), std::string::npos);
  EXPECT_NE(Text.find("SIHE.encode"), std::string::npos);
  EXPECT_NE(Text.find("\"image\""), std::string::npos);
  EXPECT_NE(Text.find("retv"), std::string::npos);
}

TEST(IrTest, CountDialectAndRenumber) {
  IrFunction F = makeGemvLike();
  EXPECT_EQ(F.countDialect(DialectKind::DK_Sihe), 4u);
  EXPECT_EQ(F.countDialect(DialectKind::DK_Ckks), 0u);
  F.renumber();
  int Expected = 0;
  for (const auto &N : F.nodes())
    EXPECT_EQ(N->Id, Expected++);
}

TEST(LayoutTest, SlotMapping) {
  CipherLayout L;
  L.C0 = 4;
  L.H0 = 4;
  L.W0 = 4;
  L.C = 3;
  L.H = 4;
  L.W = 4;
  EXPECT_EQ(L.slotCount(), 64u);
  EXPECT_EQ(L.channelStride(), 16u);
  EXPECT_EQ(L.slotOf(0, 0, 0), 0u);
  EXPECT_EQ(L.slotOf(2, 1, 3), 2 * 16 + 4 + 3u);
}

TEST(LayoutTest, StrideDilation) {
  CipherLayout L;
  L.C0 = 2;
  L.H0 = 4;
  L.W0 = 4;
  L.C = 2;
  L.H = 4;
  L.W = 4;
  CipherLayout D = L.afterStride(2);
  EXPECT_EQ(D.H, 2u);
  EXPECT_EQ(D.W, 2u);
  EXPECT_EQ(D.StrideH, 2u);
  // Logical (0,1,1) now sits at the dilated position.
  EXPECT_EQ(D.slotOf(0, 1, 1), 2u * 4 + 2);
  EXPECT_FALSE(D.sameGrid(L));
}

} // namespace
