//===----------------------------------------------------------------------===//
// Differential tests for the pipeline policy knobs (docs/compiler.md):
// lazy and eager rescale placement compile different CKKS programs from
// the same model, but decrypt to the same answer. Tier-1 checks every
// zoo model shape at 1 and 4 threads; the ACE_EXHAUSTIVE tier (see
// README "Testing") additionally sweeps every packing strategy under
// every rescale mode.
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

using namespace ace;

namespace {

/// Lazy placement changes where rescales land, so the two programs round
/// differently; the schedules agree to CKKS noise, not bit-for-bit. The
/// bound covers the precision loss of one extra pending level at
/// LogScale=45 across the zoo models (measured headroom ~10x).
constexpr double kModeTolerance = 0.05;

air::CompileOptions toyOptions() {
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 2;
  Opt.Seed = 11;
  return Opt;
}

std::vector<nn::Tensor> randomInputs(const std::vector<int64_t> &Shape,
                                     int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<nn::Tensor> Out;
  for (int I = 0; I < Count; ++I) {
    nn::Tensor T;
    T.Shape = Shape;
    T.Values.resize(T.elementCount());
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Out.push_back(std::move(T));
  }
  return Out;
}

struct ZooModel {
  const char *Name;
  onnx::Model Model;
  std::vector<nn::Tensor> Inputs;
};

std::vector<ZooModel> zooModels() {
  std::vector<ZooModel> Z;
  Z.push_back({"linear_infer", nn::buildLinearInfer(3),
               randomInputs({1, 84}, 2, 17)});
  Z.push_back({"mlp", nn::buildMlp({24, 16, 12, 6}, 31),
               randomInputs({1, 24}, 2, 3)});
  Z.push_back({"lenet", nn::buildLeNet(/*Classes=*/8, 11),
               randomInputs({1, 1, 8, 8}, 2, 13)});
  return Z;
}

/// Compiles and runs one sample, returning the decrypted logits.
std::vector<double> runModel(const ZooModel &Z, RescaleMode Rescale,
                             PackingStrategy Packing, size_t Threads) {
  air::CompileOptions Opt = toyOptions();
  Opt.Rescale = Rescale;
  Opt.Packing = Packing;
  driver::AceCompiler Compiler(Opt);
  auto R = Compiler.compile(Z.Model, Z.Inputs);
  EXPECT_TRUE(R.ok()) << Z.Name << ": " << R.status().message();
  if (!R.ok())
    return {};
  EXPECT_EQ((*R)->State.ResolvedRescale, Rescale);
  codegen::CkksExecutor Exec((*R)->Program, (*R)->State);
  EXPECT_FALSE(Exec.setup());
  ThreadPool::instance().setNumThreads(Threads);
  auto Logits = Exec.infer(Z.Inputs[0]);
  ThreadPool::instance().setNumThreads(0);
  EXPECT_TRUE(Logits.ok()) << Z.Name << ": " << Logits.status().message();
  return Logits.ok() ? *Logits : std::vector<double>{};
}

void expectClose(const std::vector<double> &A, const std::vector<double> &B,
                 double Tol, const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_NEAR(A[I], B[I], Tol) << What << " logit " << I;
}

TEST(PipelineDifferentialTest, LazyMatchesEagerOnEveryZooModel) {
  for (const ZooModel &Z : zooModels()) {
    for (size_t Threads : {1u, 4u}) {
      std::vector<double> Eager = runModel(Z, RescaleMode::RM_Eager,
                                           PackingStrategy::PS_Bsgs,
                                           Threads);
      std::vector<double> Lazy = runModel(Z, RescaleMode::RM_Lazy,
                                          PackingStrategy::PS_Bsgs,
                                          Threads);
      expectClose(Eager, Lazy, kModeTolerance,
                  std::string(Z.Name) + " @" + std::to_string(Threads) +
                      " threads");
    }
  }
}

TEST(PipelineDifferentialTest, LazyLogitsBitIdenticalAcrossThreadCounts) {
  // Same program, different pool width: the determinism guarantee holds
  // for the lazily placed schedule too (its Cipher3 adds exercise
  // three-component hot loops the eager schedule never runs).
  for (const ZooModel &Z : zooModels()) {
    air::CompileOptions Opt = toyOptions();
    Opt.Rescale = RescaleMode::RM_Lazy;
    driver::AceCompiler Compiler(Opt);
    auto R = Compiler.compile(Z.Model, Z.Inputs);
    ASSERT_TRUE(R.ok()) << Z.Name << ": " << R.status().message();
    codegen::CkksExecutor Exec((*R)->Program, (*R)->State);
    ASSERT_FALSE(Exec.setup());
    auto Ct = Exec.encryptInput(Z.Inputs[0]);
    ASSERT_TRUE(Ct.ok());

    ThreadPool::instance().setNumThreads(1);
    auto SerialOut = Exec.run(*Ct);
    ASSERT_TRUE(SerialOut.ok()) << Z.Name;
    auto Serial = Exec.decryptLogits(*SerialOut);
    ASSERT_TRUE(Serial.ok());

    ThreadPool::instance().setNumThreads(4);
    auto Out = Exec.run(*Ct);
    ASSERT_TRUE(Out.ok()) << Z.Name;
    auto Logits = Exec.decryptLogits(*Out);
    ASSERT_TRUE(Logits.ok());
    ThreadPool::instance().setNumThreads(0);

    ASSERT_EQ(Logits->size(), Serial->size());
    EXPECT_EQ(std::memcmp(Logits->data(), Serial->data(),
                          Serial->size() * sizeof(double)),
              0)
        << Z.Name << ": lazy logits differ from serial at 4 threads";
  }
}

TEST(PipelineDifferentialTest, ExhaustiveModeAndPackingSweep) {
  if (std::getenv("ACE_EXHAUSTIVE") == nullptr)
    GTEST_SKIP() << "set ACE_EXHAUSTIVE=1 to run the full policy sweep";

  for (const ZooModel &Z : zooModels()) {
    std::vector<double> Reference = runModel(Z, RescaleMode::RM_Waterline,
                                             PackingStrategy::PS_Bsgs, 1);
    for (RescaleMode Rescale :
         {RescaleMode::RM_Eager, RescaleMode::RM_Waterline,
          RescaleMode::RM_Lazy}) {
      for (PackingStrategy Packing :
           {PackingStrategy::PS_Auto, PackingStrategy::PS_Diag,
            PackingStrategy::PS_Bsgs, PackingStrategy::PS_Column}) {
        std::vector<double> Logits = runModel(Z, Rescale, Packing, 4);
        expectClose(Reference, Logits, kModeTolerance,
                    std::string(Z.Name) + " rescale=" +
                        rescaleModeName(Rescale) + " packing=" +
                        packingStrategyName(Packing));
      }
    }
  }
}

} // namespace
