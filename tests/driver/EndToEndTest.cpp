//===----------------------------------------------------------------------===//
// End-to-end pipeline tests: compile a model through all five IR levels,
// run encrypted inference on the ACEfhe runtime, and compare against the
// cleartext executor (the core correctness claim of the compiler).
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;

namespace {

air::CompileOptions toyOptions() {
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 4;
  Opt.Seed = 11;
  return Opt;
}

std::vector<nn::Tensor> randomInputs(const std::vector<int64_t> &Shape,
                                     int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<nn::Tensor> Out;
  for (int I = 0; I < Count; ++I) {
    nn::Tensor T;
    T.Shape = Shape;
    int64_t N = T.elementCount();
    T.Values.resize(N);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Out.push_back(std::move(T));
  }
  return Out;
}

void expectLogitsClose(const std::vector<double> &Encrypted,
                       const nn::Tensor &Clear, double Tol) {
  ASSERT_EQ(Encrypted.size(), Clear.Values.size());
  for (size_t I = 0; I < Encrypted.size(); ++I)
    EXPECT_NEAR(Encrypted[I], Clear.Values[I], Tol) << "logit " << I;
}

TEST(EndToEndTest, LinearInferMatchesCleartext) {
  // The paper's Figure 4 motivating model: one gemv.
  onnx::Model Model = nn::buildLinearInfer(3);
  auto Inputs = randomInputs({1, 84}, 3, 17);

  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Inputs, /*KeepDumps=*/true);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &R = **Result;

  // No ReLU: no bootstrapping needed, shallow chain.
  EXPECT_EQ(R.State.BootstrapCount, 0u);
  EXPECT_GE(R.PhaseNodeCounts["CKKS"], 8u);

  codegen::CkksExecutor Exec(R.Program, R.State);
  ASSERT_FALSE(Exec.setup());
  for (const auto &In : Inputs) {
    auto Clear = nn::executeSingle(Model.MainGraph, In);
    ASSERT_TRUE(Clear.ok());
    auto Logits = Exec.infer(In);
    ASSERT_TRUE(Logits.ok()) << Logits.status().message();
    expectLogitsClose(*Logits, *Clear, 0.02);
  }
}

TEST(EndToEndTest, MlpWithReluMatchesCleartext) {
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  auto Inputs = randomInputs({1, 16}, 4, 19);

  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Inputs);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &R = **Result;

  // One ReLU layer: exactly one bootstrap site.
  EXPECT_EQ(R.State.BootstrapCount, 1u);
  EXPECT_TRUE(R.State.NeedsRelin);

  codegen::CkksExecutor Exec(R.Program, R.State);
  ASSERT_FALSE(Exec.setup());
  for (const auto &In : Inputs) {
    auto Clear = nn::executeSingle(Model.MainGraph, In);
    ASSERT_TRUE(Clear.ok());
    auto Logits = Exec.infer(In);
    ASSERT_TRUE(Logits.ok()) << Logits.status().message();
    // ReLU is approximated; compare with a tolerance proportional to the
    // activation scale.
    expectLogitsClose(*Logits, *Clear, 0.25);
  }
}

TEST(EndToEndTest, TinyCnnMatchesCleartext) {
  nn::NanoResNetSpec Spec;
  Spec.Name = "test-cnn";
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  nn::Dataset Data = nn::makeSyntheticDataset(
      {1, Spec.InputChannels, Spec.InputHW, Spec.InputHW}, Spec.Classes, 6,
      0.1, 23);
  auto ModelOr = nn::buildNanoResNet(Spec, Data, 29);
  ASSERT_TRUE(ModelOr.ok()) << ModelOr.status().message();
  onnx::Model Model = ModelOr.take();

  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Data.Images);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &R = **Result;
  EXPECT_GT(R.State.BootstrapCount, 0u);
  EXPECT_FALSE(R.State.RotationSteps.empty());

  codegen::CkksExecutor Exec(R.Program, R.State);
  ASSERT_FALSE(Exec.setup());
  size_t Agree = 0;
  for (size_t I = 0; I < 3; ++I) {
    auto Clear = nn::executeSingle(Model.MainGraph, Data.Images[I]);
    ASSERT_TRUE(Clear.ok());
    auto Logits = Exec.infer(Data.Images[I]);
    ASSERT_TRUE(Logits.ok()) << Logits.status().message();
    nn::Tensor L;
    L.Shape = {1, static_cast<int64_t>(Logits->size())};
    L.Values.assign(Logits->begin(), Logits->end());
    Agree += nn::argmax(L) == nn::argmax(*Clear);
  }
  EXPECT_GE(Agree, 2u) << "encrypted decisions diverged from cleartext";
}

TEST(EndToEndTest, ExecutorPropagatesInjectedFaults) {
  // A fault injected at encryption must abort the encrypted inference
  // with a diagnostic Status - the full compiled pipeline never crashes
  // and never returns wrong logits.
  onnx::Model Model = nn::buildLinearInfer(3);
  auto Inputs = randomInputs({1, 84}, 1, 17);

  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Inputs);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &R = **Result;

  codegen::CkksExecutor Exec(R.Program, R.State);
  ASSERT_FALSE(Exec.setup());

  FaultInjector::instance().reset();
  for (FaultKind Kind :
       {FaultKind::ScaleDrift, FaultKind::SlotCorrupt,
        FaultKind::TruncateChain}) {
    FaultInjector::instance().arm(Kind);
    auto Logits = Exec.infer(Inputs[0]);
    FaultInjector::instance().reset();
    ASSERT_FALSE(Logits.ok())
        << "fault " << faultKindName(Kind) << " was swallowed";
    EXPECT_FALSE(Logits.status().message().empty());
    EXPECT_NE(Logits.status().code(), ErrorCode::Ok);
  }

  // With the injector quiet again the same executor still works.
  auto Clear = nn::executeSingle(Model.MainGraph, Inputs[0]);
  ASSERT_TRUE(Clear.ok());
  auto Logits = Exec.infer(Inputs[0]);
  ASSERT_TRUE(Logits.ok()) << Logits.status().message();
  expectLogitsClose(*Logits, *Clear, 0.02);
}

} // namespace
