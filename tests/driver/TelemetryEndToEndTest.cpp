//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Telemetry across the full pipeline:
//  - property: enabling telemetry does not change encrypted-inference
//    results (bit-identical logits against a disabled run);
//  - golden counters: a small MLP compile+run produces telemetry counts
//    that equal the evaluator's own OpCounters and the compiler's
//    bootstrap plan (the paper's op-count story);
//  - trace contents: the compile emits a span per compiler phase and the
//    run emits the mul/rotate/rescale/bootstrap runtime op spans.
//
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace ace;
using namespace ace::telemetry;

namespace {

air::CompileOptions toyOptions() {
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 4;
  Opt.Seed = 11;
  return Opt;
}

std::vector<nn::Tensor> randomInputs(const std::vector<int64_t> &Shape,
                                     int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<nn::Tensor> Out;
  for (int I = 0; I < Count; ++I) {
    nn::Tensor T;
    T.Shape = Shape;
    int64_t N = T.elementCount();
    T.Values.resize(N);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Out.push_back(std::move(T));
  }
  return Out;
}

/// Compiles and runs the small bootstrap-bearing MLP; returns the logits.
std::vector<double> runMlp(const onnx::Model &Model,
                           const std::vector<nn::Tensor> &Inputs,
                           std::unique_ptr<driver::CompileResult> *KeepR,
                           std::unique_ptr<codegen::CkksExecutor> *KeepE) {
  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Inputs);
  EXPECT_TRUE(Result.ok()) << Result.status().message();
  auto R = std::move(*Result);
  auto Exec = std::make_unique<codegen::CkksExecutor>(R->Program, R->State);
  Status S = Exec->setup();
  EXPECT_FALSE(S) << S.message();
  auto Logits = Exec->infer(Inputs[0]);
  EXPECT_TRUE(Logits.ok()) << Logits.status().message();
  if (KeepR)
    *KeepR = std::move(R);
  if (KeepE)
    *KeepE = std::move(Exec);
  return Logits.ok() ? *Logits : std::vector<double>();
}

class TelemetryEndToEndTest : public ::testing::Test {
protected:
  void SetUp() override {
    Telemetry::instance().setEnabled(false);
    Telemetry::instance().clear();
  }
  void TearDown() override {
    Telemetry::instance().setEnabled(false);
    Telemetry::instance().clear();
  }
};

TEST_F(TelemetryEndToEndTest, EnablingTelemetryDoesNotChangeResults) {
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  auto Inputs = randomInputs({1, 16}, 4, 19);

  std::vector<double> Off = runMlp(Model, Inputs, nullptr, nullptr);
  Telemetry::instance().setEnabled(true);
  std::vector<double> On = runMlp(Model, Inputs, nullptr, nullptr);

  ASSERT_EQ(Off.size(), On.size());
  ASSERT_FALSE(Off.empty());
  for (size_t I = 0; I < Off.size(); ++I)
    EXPECT_EQ(Off[I], On[I]) << "logit " << I
                             << " changed when telemetry was enabled";
}

TEST_F(TelemetryEndToEndTest, GoldenCountersMatchEvaluatorAndPlan) {
  Telemetry::instance().setEnabled(true);
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  auto Inputs = randomInputs({1, 16}, 4, 19);

  std::unique_ptr<driver::CompileResult> R;
  std::unique_ptr<codegen::CkksExecutor> Exec;
  std::vector<double> Logits = runMlp(Model, Inputs, &R, &Exec);
  ASSERT_FALSE(Logits.empty());

  CounterSnapshot S = Telemetry::instance().counters();
  const fhe::OpCounters &Ops = Exec->counters();

  // Telemetry hooks sit at exactly the evaluator's counter sites, so the
  // two tallies must agree op for op. The ReLU layer forces real work:
  // every category below is non-zero on this model.
  EXPECT_EQ(Ops.MulCipher, S.get(Counter::CtCtMul));
  EXPECT_EQ(Ops.MulPlain, S.get(Counter::CtPtMul));
  EXPECT_EQ(Ops.Add, S.get(Counter::Add));
  EXPECT_EQ(Ops.Rotate, S.get(Counter::Rotate));
  EXPECT_EQ(Ops.Conjugate, S.get(Counter::Conjugate));
  EXPECT_EQ(Ops.Relinearize, S.get(Counter::Relinearize));
  EXPECT_EQ(Ops.Rescale, S.get(Counter::Rescale));
  EXPECT_EQ(Ops.ModSwitch, S.get(Counter::ModSwitch));
  EXPECT_EQ(Ops.KeySwitch, S.get(Counter::KeySwitch));
  EXPECT_GT(S.get(Counter::CtCtMul), 0u);
  EXPECT_GT(S.get(Counter::Rotate), 0u);
  EXPECT_GT(S.get(Counter::Rescale), 0u);
  EXPECT_GT(S.get(Counter::NttForward), 0u);
  EXPECT_GT(S.get(Counter::KeySwitchDigit), S.get(Counter::KeySwitch));

  // Bootstrap executions match the compiler's plan.
  EXPECT_EQ(R->State.BootstrapCount, S.get(Counter::Bootstrap));
  EXPECT_GT(S.get(Counter::Bootstrap), 0u);
}

TEST_F(TelemetryEndToEndTest, TraceContainsPassAndRuntimeOpSpans) {
  Telemetry::instance().setEnabled(true);
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  auto Inputs = randomInputs({1, 16}, 4, 19);
  std::vector<double> Logits = runMlp(Model, Inputs, nullptr, nullptr);
  ASSERT_FALSE(Logits.empty());

  std::set<std::string> Names;
  for (const TraceEvent &E : Telemetry::instance().eventsCopy())
    Names.insert(E.Name);

  // One span per compiler phase...
  for (const char *Phase : {"NN", "VECTOR", "SIHE", "CKKS", "compile"})
    EXPECT_TRUE(Names.count(Phase)) << "missing compiler span " << Phase;
  // ...and the runtime primitives the acceptance criteria name.
  for (const char *Op :
       {"ct-ct-mul", "ct-pt-mul", "rotate", "rescale", "bootstrap",
        "key-switch", "relinearize"})
    EXPECT_TRUE(Names.count(Op)) << "missing runtime op span " << Op;
  // Bootstrap stage spans nest inside the bootstrap op span.
  for (const char *Stage :
       {"ModRaise", "SubSum", "CoeffToSlot", "EvalMod", "SlotToCoeff"})
    EXPECT_TRUE(Names.count(Stage)) << "missing bootstrap stage " << Stage;

  // Health was recorded with plausible CKKS quantities.
  bool SawMulHealth = false;
  for (const auto &[Op, H] : Telemetry::instance().health()) {
    if (Op == Counter::CtCtMul) {
      SawMulHealth = true;
      EXPECT_GT(H.Count, 0u);
      EXPECT_GE(H.MinLevel, 1);
      EXPECT_GT(H.MinNoiseBudgetBits, 0.0);
    }
  }
  EXPECT_TRUE(SawMulHealth);

  // The written trace is structurally valid Chrome JSON.
  std::string Json;
  {
    std::ostringstream OS;
    Telemetry::instance().writeChromeTrace(OS);
    Json = OS.str();
  }
  EXPECT_EQ('{', Json.front());
  EXPECT_NE(std::string::npos, Json.find("\"traceEvents\":["));
  EXPECT_NE(std::string::npos, Json.find("\"noiseBudgetBits\""));
}

} // namespace
