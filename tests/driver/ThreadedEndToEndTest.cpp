//===----------------------------------------------------------------------===//
// Threaded end-to-end test: the full compiled pipeline (MLP with a
// bootstrap, run by CkksExecutor) must decrypt to bit-identical logits
// whether the runtime pool is serial or 8-wide - the user-visible form
// of the determinism guarantee in support/ThreadPool.h.
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ace;

namespace {

class ThreadedEndToEndTest : public ::testing::Test {
protected:
  void TearDown() override { ThreadPool::instance().setNumThreads(0); }
};

TEST_F(ThreadedEndToEndTest, MlpLogitsBitIdenticalAcrossThreadCounts) {
  onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
  Rng R(19);
  std::vector<nn::Tensor> Inputs;
  for (int I = 0; I < 4; ++I) {
    nn::Tensor T;
    T.Shape = {1, 16};
    T.Values.resize(16);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1.0, 1.0));
    Inputs.push_back(std::move(T));
  }

  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 4;
  Opt.Seed = 11;
  driver::AceCompiler Compiler(Opt);
  auto Result = Compiler.compile(Model, Inputs);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &Compiled = **Result;
  ASSERT_EQ(Compiled.State.BootstrapCount, 1u); // the nonlinear path

  codegen::CkksExecutor Exec(Compiled.Program, Compiled.State);
  ASSERT_FALSE(Exec.setup());

  // Encrypt ONCE: infer() re-encrypts and would advance the RNG, so the
  // comparison runs every thread count over the same ciphertext.
  auto Ct = Exec.encryptInput(Inputs[0]);
  ASSERT_TRUE(Ct.ok()) << Ct.status().message();

  ThreadPool::instance().setNumThreads(1);
  auto SerialOut = Exec.run(*Ct);
  ASSERT_TRUE(SerialOut.ok()) << SerialOut.status().message();
  auto SerialLogits = Exec.decryptLogits(*SerialOut);
  ASSERT_TRUE(SerialLogits.ok());

  for (size_t Threads : {2u, 8u}) {
    ThreadPool::instance().setNumThreads(Threads);
    auto Out = Exec.run(*Ct);
    ASSERT_TRUE(Out.ok()) << Out.status().message();
    auto Logits = Exec.decryptLogits(*Out);
    ASSERT_TRUE(Logits.ok());
    ASSERT_EQ(Logits->size(), SerialLogits->size());
    EXPECT_EQ(std::memcmp(Logits->data(), SerialLogits->data(),
                          SerialLogits->size() * sizeof(double)),
              0)
        << "logits differ from serial at " << Threads << " threads";
  }
}

} // namespace
