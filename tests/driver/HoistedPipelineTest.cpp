//===----------------------------------------------------------------------===//
// Pipeline-level proof of rotation hoisting: compiling a diagonal matvec
// model and running it on the executor must perform exactly ONE digit
// decomposition (ModUp) for the whole baby-step batch - the telemetry
// counters make the sharing observable - while the logits still match
// the cleartext reference.
//===----------------------------------------------------------------------===//

#include "codegen/CkksExecutor.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace ace;
using telemetry::Counter;
using telemetry::CounterSnapshot;
using telemetry::Telemetry;

namespace {

air::CompileOptions toyOptions() {
  air::CompileOptions Opt;
  Opt.ToyParameters = true;
  Opt.LogScale = 45;
  Opt.LogFirstModulus = 55;
  Opt.CalibrationSamples = 4;
  Opt.Seed = 11;
  // This test proves BSGS baby-step hoisting; pin the strategy so the
  // ACE_PACKING CI matrix cannot redirect the gemv lowering.
  Opt.Packing = PackingStrategy::PS_Bsgs;
  return Opt;
}

nn::Tensor randomInput(uint64_t Seed) {
  nn::Tensor T;
  T.Shape = {1, 84};
  T.Values.resize(84);
  Rng R(Seed);
  for (auto &V : T.Values)
    V = static_cast<float>(R.uniformReal(-1.0, 1.0));
  return T;
}

class HoistedPipelineTest : public ::testing::Test {
protected:
  void TearDown() override {
    ThreadPool::instance().setNumThreads(0);
    Telemetry::instance().setEnabled(false);
    Telemetry::instance().clear();
  }
};

TEST_F(HoistedPipelineTest, LinearMatvecPaysOneModUpForBabySteps) {
  onnx::Model Model = nn::buildLinearInfer(3);
  std::vector<nn::Tensor> Inputs = {randomInput(23), randomInput(29)};

  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Inputs);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &R = **Result;

  // BSGS lowering: the rotation-key working set of an 84-wide gemv is
  // sqrt-scale (babies + giants), not one key per nonzero diagonal.
  EXPECT_FALSE(R.State.RotationSteps.empty());
  EXPECT_LE(R.State.RotationSteps.size(), 24u)
      << "BSGS key budget regressed toward one key per diagonal";

  codegen::CkksExecutor Exec(R.Program, R.State);
  ASSERT_FALSE(Exec.setup());
  auto Ct = Exec.encryptInput(Inputs[0]);
  ASSERT_TRUE(Ct.ok());

  Telemetry::instance().setEnabled(true);
  CounterSnapshot Before = Telemetry::instance().counters();
  auto Out = Exec.run(*Ct);
  CounterSnapshot D = Telemetry::instance().counters().deltaSince(Before);
  Telemetry::instance().setEnabled(false);
  ASSERT_TRUE(Out.ok()) << Out.status().message();

  // The model is one linear layer: every key switch is a rotation, the
  // baby steps form ONE hoisted batch, and each giant rotation is a
  // singleton. So the decomposition count must be exactly
  //   ModUp = (Rotate - HoistedKeySwitch) + 1
  // (N rotations -> 1 ModUp for the batch). Before hoisting this was
  // ModUp == Rotate.
  ASSERT_GT(D.get(Counter::Rotate), 0u);
  EXPECT_EQ(D.get(Counter::KeySwitch), D.get(Counter::Rotate));
  EXPECT_GE(D.get(Counter::HoistedKeySwitch), 2u);
  EXPECT_EQ(D.get(Counter::ModUp),
            D.get(Counter::Rotate) - D.get(Counter::HoistedKeySwitch) + 1);

  // And the hoisted path still computes the right thing.
  auto Logits = Exec.decryptLogits(*Out);
  ASSERT_TRUE(Logits.ok());
  auto Clear = nn::executeSingle(Model.MainGraph, Inputs[0]);
  ASSERT_TRUE(Clear.ok());
  ASSERT_EQ(Logits->size(), Clear->Values.size());
  for (size_t I = 0; I < Logits->size(); ++I)
    EXPECT_NEAR((*Logits)[I], Clear->Values[I], 0.02) << "logit " << I;
}

TEST_F(HoistedPipelineTest, LogitsBitIdenticalAcrossThreadCounts) {
  // The hoisted batches run on the thread pool; the pool contract says
  // the ciphertext (and thus every logit bit) cannot depend on the
  // worker count.
  onnx::Model Model = nn::buildLinearInfer(3);
  std::vector<nn::Tensor> Inputs = {randomInput(31)};

  driver::AceCompiler Compiler(toyOptions());
  auto Result = Compiler.compile(Model, Inputs);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  auto &R = **Result;

  auto RunAt = [&](size_t Threads) {
    ThreadPool::instance().setNumThreads(Threads);
    codegen::CkksExecutor Exec(R.Program, R.State);
    EXPECT_FALSE(Exec.setup());
    auto Logits = Exec.infer(Inputs[0]);
    EXPECT_TRUE(Logits.ok());
    return *Logits;
  };

  std::vector<double> Serial = RunAt(1);
  std::vector<double> Threaded = RunAt(4);
  ASSERT_EQ(Serial.size(), Threaded.size());
  for (size_t I = 0; I < Serial.size(); ++I)
    EXPECT_EQ(Serial[I], Threaded[I]) << "logit " << I;
}

} // namespace
