//===----------------------------------------------------------------------===//
// Code-emitter tests: the generated C program references the CApi
// correctly and externalizes every constant (paper Sec. 3.4).
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace ace;

namespace {

std::unique_ptr<driver::CompileResult> compileLinear() {
  onnx::Model M = nn::buildLinearInfer(3);
  Rng R(7);
  std::vector<nn::Tensor> Calib(2);
  for (auto &T : Calib) {
    T.Shape = {1, 84};
    T.Values.resize(84);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1, 1));
  }
  // The emitted-program shape assertions below (const counts, sqrt-scale
  // key set) are BSGS facts; pin the strategy against the ACE_PACKING
  // CI matrix.
  air::CompileOptions Opt;
  Opt.Packing = PackingStrategy::PS_Bsgs;
  driver::AceCompiler Compiler(Opt);
  auto Result = Compiler.compile(M, Calib);
  EXPECT_TRUE(Result.ok());
  return Result.take();
}

TEST(EmitterTest, GeneratesWellFormedC) {
  auto R = compileLinear();
  auto P = codegen::emitC(R->Program, R->State, "w.bin");
  EXPECT_NE(P.CSource.find("#include \"fhe/CApi.h\""), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_create("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_keygen("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_encrypt("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_mul_plain("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_rotate("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_decrypt("), std::string::npos);
  // Weights externalized (paper Sec. 3.4): source stays small while the
  // blob carries all constants.
  EXPECT_GT(P.Weights.size(), 1000u);
  EXPECT_GT(P.ConstCount, 10u);
  EXPECT_LT(P.CSource.size(), 200000u);
}

TEST(EmitterTest, KeygenUsesSqrtScaleRotationKeySet) {
  // The BSGS matvec lowering keeps the emitted program's rotation-key
  // set at babies + giants (~2*sqrt(capacity)) instead of one key per
  // nonzero diagonal. For the 84-wide gemv (capacity 128, BS 16) that is
  // at most 15 babies + 8 giants; the naive diagonal form needed ~90.
  auto R = compileLinear();
  ASSERT_FALSE(R->State.RotationSteps.empty());
  EXPECT_LE(R->State.RotationSteps.size(), 24u);

  auto P = codegen::emitC(R->Program, R->State, "w.bin");
  size_t Begin = P.CSource.find("steps[] = {0");
  ASSERT_NE(Begin, std::string::npos);
  size_t End = P.CSource.find('}', Begin);
  ASSERT_NE(End, std::string::npos);
  // The steps array holds a leading sentinel plus one entry per key.
  size_t Keys = 0;
  for (size_t I = Begin; I < End; ++I)
    if (P.CSource[I] == ',')
      ++Keys;
  EXPECT_EQ(Keys, R->State.RotationSteps.size());
  EXPECT_LE(Keys, 24u);
}

TEST(EmitterTest, WritesSourceAndWeights) {
  auto R = compileLinear();
  auto P = codegen::emitC(R->Program, R->State, "/tmp/ace_emit.weights");
  ASSERT_TRUE(codegen::writeProgram(P, "/tmp/ace_emit").ok());
  std::ifstream C("/tmp/ace_emit.c");
  EXPECT_TRUE(C.good());
  std::ifstream W("/tmp/ace_emit.weights", std::ios::binary);
  ASSERT_TRUE(W.good());
  W.seekg(0, std::ios::end);
  EXPECT_EQ(static_cast<size_t>(W.tellg()),
            P.Weights.size() * sizeof(double));
}

} // namespace
