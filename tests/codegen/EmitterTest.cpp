//===----------------------------------------------------------------------===//
// Code-emitter tests: the generated C program references the CApi
// correctly and externalizes every constant (paper Sec. 3.4).
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace ace;

namespace {

std::unique_ptr<driver::CompileResult> compileLinear() {
  onnx::Model M = nn::buildLinearInfer(3);
  Rng R(7);
  std::vector<nn::Tensor> Calib(2);
  for (auto &T : Calib) {
    T.Shape = {1, 84};
    T.Values.resize(84);
    for (auto &V : T.Values)
      V = static_cast<float>(R.uniformReal(-1, 1));
  }
  driver::AceCompiler Compiler(air::CompileOptions{});
  auto Result = Compiler.compile(M, Calib);
  EXPECT_TRUE(Result.ok());
  return Result.take();
}

TEST(EmitterTest, GeneratesWellFormedC) {
  auto R = compileLinear();
  auto P = codegen::emitC(R->Program, R->State, "w.bin");
  EXPECT_NE(P.CSource.find("#include \"fhe/CApi.h\""), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_create("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_keygen("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_encrypt("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_mul_plain("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_rotate("), std::string::npos);
  EXPECT_NE(P.CSource.find("ace_decrypt("), std::string::npos);
  // Weights externalized (paper Sec. 3.4): source stays small while the
  // blob carries all constants.
  EXPECT_GT(P.Weights.size(), 1000u);
  EXPECT_GT(P.ConstCount, 10u);
  EXPECT_LT(P.CSource.size(), 200000u);
}

TEST(EmitterTest, WritesSourceAndWeights) {
  auto R = compileLinear();
  auto P = codegen::emitC(R->Program, R->State, "/tmp/ace_emit.weights");
  ASSERT_TRUE(codegen::writeProgram(P, "/tmp/ace_emit").ok());
  std::ifstream C("/tmp/ace_emit.c");
  EXPECT_TRUE(C.good());
  std::ifstream W("/tmp/ace_emit.weights", std::ios::binary);
  ASSERT_TRUE(W.good());
  W.seekg(0, std::ios::end);
  EXPECT_EQ(static_cast<size_t>(W.tellg()),
            P.Weights.size() * sizeof(double));
}

} // namespace
